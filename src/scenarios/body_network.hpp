#pragma once

/// \file body_network.hpp
/// A larger, realistic automotive network used for stress testing and the
/// scalability evaluation: two CAN buses joined by a gateway ECU plus a
/// FlexRay-style time-triggered link analysed separately.
///
/// Topology (all signal timing loosely modelled on body/comfort traffic):
///
///   powertrain CAN: engine(20ms) + wheel(10ms) packed into PT1 (direct),
///                   temp(500ms, pending) + oil(1s, pending) in PT2 (periodic 100ms)
///   body CAN:       door(50ms) + light(100ms) into BD1 (direct),
///                   climate(200ms, pending) into BD2 (mixed 100ms)
///   gateway:        forwards wheel + temp from powertrain to body CAN in GW1
///   ECUs:           dashboard (wheel, temp, climate), body controller
///                   (door, light)
///
/// The builder is parameterised by a scale factor that multiplies the
/// number of source/receiver replicas, for scalability sweeps.

#include "model/cpa_engine.hpp"
#include "model/system.hpp"

namespace hem::scenarios {

struct BodyNetworkParams {
  int replicas = 1;     ///< replicate the source/receiver pattern N times
  Time time_unit = 10;  ///< ticks per 0.1 ms (scales all timing)
};

/// Build the network; tasks are suffixed "_<replica>" when replicas > 1.
[[nodiscard]] cpa::System build_body_network(const BodyNetworkParams& params = {});

/// Convenience: build and analyse.
[[nodiscard]] cpa::AnalysisReport analyze_body_network(const BodyNetworkParams& params = {});

}  // namespace hem::scenarios
