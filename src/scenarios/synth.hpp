#pragma once

/// \file synth.hpp
/// Seeded wide-system synthesiser for scaling benchmarks and stress tests:
/// hundreds of resources, thousands of tasks, layered gateway chains.
///
/// The generator produces systems shaped like large automotive/industrial
/// networks — the regime the paper's compositional approach targets and
/// the one where parallel analysis has to pay off:
///
///   * resources are split into `layers` contiguous blocks; every fourth
///     resource is a CAN bus (static-priority non-preemptive), the rest
///     are SPP CPUs;
///   * layer-0 tasks are stimulated by external periodic-with-jitter
///     sources; deeper-layer tasks are, with ~50% probability, activated
///     by the output of one (occasionally the OR of two) task(s) on the
///     previous layer — gateway chains that force multiple global
///     iterations of output-stream propagation;
///   * per-resource utilisation is split over its tasks with the classic
///     UUniFast algorithm, and worst-case execution times are sized from
///     each task's effective activation period so the target utilisation
///     holds along chains.
///
/// Determinism: all randomness comes from one std::mt19937_64 (exactly
/// specified by the standard) consumed with integer arithmetic; the only
/// floating-point steps are UUniFast's pow() and the final CET scaling.
/// Same seed + same build => identical System, and therefore (engine
/// guarantee) bit-identical analysis reports for every job count.

#include <cstdint>
#include <string>

#include "model/sensitivity.hpp"
#include "model/system.hpp"

namespace hem::scenarios {

struct SynthParams {
  int resources = 100;       ///< >= 1
  int tasks = 1000;          ///< >= resources (every resource gets >= 1 task)
  std::uint64_t seed = 1;    ///< generator seed; same seed -> same system
  double utilization = 0.5;  ///< per-resource utilisation target, (0, 1)
  int layers = 4;            ///< gateway-chain depth (capped to `resources`)
  Time min_period = 100;     ///< shortest external source period
  Time max_period = 100000;  ///< longest external source period
  /// Per-mille of CAN-bus tasks turned into packed COM frames (external
  /// trig/pend signal sources plus an optional periodic send timer), with
  /// some deeper CPU tasks activated by unpacking their inner streams —
  /// the paper's hierarchical regime.  0 (the default) draws nothing from
  /// the RNG, so existing seeds keep producing byte-identical systems.
  int packed_permille = 0;
  /// Per-mille of CPU resources re-policied as TDMA / round-robin (time-
  /// driven arbitration alongside the priority-driven default).  Selection
  /// is pure modulo arithmetic over the resource index — zero RNG draws,
  /// so any (tdma, rr) mix leaves every other draw of the same seed
  /// untouched.  TDMA/RR tasks get slots sized from their worst-case
  /// execution times and TDMA cycles of twice the slot sum, which keeps
  /// the time-driven resources schedulable at the same utilisation target.
  int tdma_permille = 0;
  int rr_permille = 0;
};

/// Build the synthetic system.  Throws std::invalid_argument on degenerate
/// parameters (resources < 1, tasks < resources, utilisation outside (0,1)).
[[nodiscard]] cpa::System build_synth_system(const SynthParams& params = {});

/// Serialise a System (plus optional deadline constraints) to the textual
/// `.hemcpa` format understood by textual_config.hpp.  External event
/// models become named `source` statements (shared nodes are emitted once
/// and referenced by name); pack timers become `timer=<period>` arguments.
/// Parsing the result reconstructs a system whose analysis report is
/// bit-identical to the original's (tests/integration/synth_roundtrip).
///
/// Throws std::invalid_argument when the system cannot be expressed in the
/// format: external model kinds without a source-statement form (traces,
/// arbitrary delta curves), non-periodic pack timers, or entity names that
/// are not single whitespace-free tokens.
[[nodiscard]] std::string to_config_text(const cpa::System& system,
                                         const cpa::DeadlineMap& deadlines = {});

}  // namespace hem::scenarios
