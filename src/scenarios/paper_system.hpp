#pragma once

/// \file paper_system.hpp
/// The paper's evaluation system (Fig. 2, Tables 1-3): four sources write
/// COM signals, two CAN frames transport them, three SPP tasks on CPU1
/// consume the signals of frame F1 (S4 travels in F2 to a second CPU).
///
///   Sources (Table 1):  S1 P=250 triggering, S2 P=450 triggering,
///                       S3 P=1000 pending,   S4 P=400 triggering
///   Bus (Table 2):      CAN-scheduled; F1 transmission [4:4], high prio;
///                       F2 transmission [2:2], low prio
///   CPU1 (Table 3):     SPP; T1 CET [24:24] high, T2 [32:32] med,
///                       T3 [40:40] low
///
/// The paper's Table 2 lists "payload size" [4:4]/[2:2]; absolute time
/// units are not given, so this reproduction interprets the bracketed
/// values directly as transmission-time intervals in ticks (consistent
/// with every other bracketed quantity in the paper's tables).  See
/// EXPERIMENTS.md.
///
/// Two analysis modes:
///   * flat - receiver tasks are activated by the total frame arrival
///     stream (classic flat event streams; the paper's baseline);
///   * HEM  - receiver tasks are activated by the unpacked per-signal
///     inner streams (the paper's contribution).

#include <string>
#include <vector>

#include "com/com_layer.hpp"
#include "model/analysis_report.hpp"
#include "model/cpa_engine.hpp"
#include "model/system.hpp"
#include "sim/simulator.hpp"

namespace hem::scenarios {

/// Parameters of the paper system, defaulted to the paper's values; the
/// ablation benchmarks sweep them.
struct PaperSystemParams {
  Time s1_period = 250;
  Time s2_period = 450;
  Time s3_period = 1000;
  Time s4_period = 400;
  Time s1_jitter = 0;
  Time s2_jitter = 0;
  Time s3_jitter = 0;
  Time s4_jitter = 0;
  Time f1_time = 4;   ///< F1 transmission time [f1:f1]
  Time f2_time = 2;   ///< F2 transmission time [f2:f2]
  Time t1_cet = 24;
  Time t2_cet = 32;
  Time t3_cet = 40;
  Time t4_cet = 10;   ///< receiver of S4 on CPU2 (not part of Table 3)
};

/// One row of the reproduced Table 3.
struct Table3Row {
  std::string task;
  Time cet;
  std::string priority;
  Time wcrt_flat;
  Time wcrt_hem;
  double reduction_percent;  ///< (flat - hem) / flat * 100
};

/// Everything the paper's evaluation section reports.
struct PaperSystemResults {
  cpa::AnalysisReport flat;   ///< full report, flat mode
  cpa::AnalysisReport hem;    ///< full report, HEM mode
  std::vector<Table3Row> table3;  ///< T1..T3
  ModelPtr f1_total;          ///< output stream of F1 (total frame arrivals)
  std::vector<ModelPtr> f1_unpacked;  ///< unpacked activation models of T1..T3
};

/// Build the system in flat or HEM mode.
[[nodiscard]] cpa::System build_paper_system(const PaperSystemParams& p, bool hierarchical);

/// Run both modes and assemble the Table 3 / Figure 4 data.
[[nodiscard]] PaperSystemResults analyze_paper_system(const PaperSystemParams& p = {});

/// The COM layer view of the paper system (frames F1/F2 with signals),
/// for direct use of the com:: API in tests and examples.
[[nodiscard]] com::ComLayer make_paper_com_layer(const PaperSystemParams& p = {});

/// Simulation configuration matching the paper system.
[[nodiscard]] sim::SimConfig make_paper_sim_config(const PaperSystemParams& p, Time horizon,
                                                   sim::GenMode mode, std::uint64_t seed);

}  // namespace hem::scenarios
