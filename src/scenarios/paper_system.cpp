#include "scenarios/paper_system.hpp"

#include "core/standard_event_model.hpp"

namespace hem::scenarios {

namespace {

using cpa::PackedActivation;
using cpa::Policy;
using cpa::System;
using cpa::TaskId;

ModelPtr src(Time period, Time jitter) {
  return jitter > 0 ? StandardEventModel::periodic_with_jitter(period, jitter)
                    : StandardEventModel::periodic(period);
}

}  // namespace

cpa::System build_paper_system(const PaperSystemParams& p, bool hierarchical) {
  System sys;
  const auto bus = sys.add_resource({"CAN", Policy::kSpnpCan});
  const auto cpu1 = sys.add_resource({"CPU1", Policy::kSppPreemptive});
  const auto cpu2 = sys.add_resource({"CPU2", Policy::kSppPreemptive});

  const TaskId f1 = sys.add_task({"F1", bus, 1, sched::ExecutionTime(p.f1_time)});
  const TaskId f2 = sys.add_task({"F2", bus, 2, sched::ExecutionTime(p.f2_time)});
  const TaskId t1 = sys.add_task({"T1", cpu1, 1, sched::ExecutionTime(p.t1_cet)});
  const TaskId t2 = sys.add_task({"T2", cpu1, 2, sched::ExecutionTime(p.t2_cet)});
  const TaskId t3 = sys.add_task({"T3", cpu1, 3, sched::ExecutionTime(p.t3_cet)});
  const TaskId t4 = sys.add_task({"T4", cpu2, 1, sched::ExecutionTime(p.t4_cet)});

  // F1 packs S1 (triggering), S2 (triggering), S3 (pending); direct frame.
  sys.activate_packed(f1, {{src(p.s1_period, p.s1_jitter), SignalCoupling::kTriggering},
                           {src(p.s2_period, p.s2_jitter), SignalCoupling::kTriggering},
                           {src(p.s3_period, p.s3_jitter), SignalCoupling::kPending}});
  // F2 packs S4 (triggering); direct frame.
  sys.activate_packed(f2, {{src(p.s4_period, p.s4_jitter), SignalCoupling::kTriggering}});

  if (hierarchical) {
    sys.activate_unpacked(t1, f1, 0);
    sys.activate_unpacked(t2, f1, 1);
    sys.activate_unpacked(t3, f1, 2);
    sys.activate_unpacked(t4, f2, 0);
  } else {
    // Flat baseline: every frame arrival conservatively activates every
    // receiver of that frame.
    sys.activate_by(t1, {f1});
    sys.activate_by(t2, {f1});
    sys.activate_by(t3, {f1});
    sys.activate_by(t4, {f2});
  }
  return sys;
}

PaperSystemResults analyze_paper_system(const PaperSystemParams& p) {
  PaperSystemResults out;
  {
    cpa::System flat_sys = build_paper_system(p, /*hierarchical=*/false);
    out.flat = cpa::CpaEngine(flat_sys).run();
  }
  {
    cpa::System hem_sys = build_paper_system(p, /*hierarchical=*/true);
    out.hem = cpa::CpaEngine(hem_sys).run();
  }

  out.f1_total = out.hem.task("F1").output;
  for (const char* name : {"T1", "T2", "T3"})
    out.f1_unpacked.push_back(out.hem.task(name).activation);

  const struct {
    const char* name;
    Time cet;
    const char* prio;
  } rows[] = {{"T1", p.t1_cet, "High"}, {"T2", p.t2_cet, "Med"}, {"T3", p.t3_cet, "Low"}};
  for (const auto& r : rows) {
    const Time flat_wcrt = out.flat.task(r.name).wcrt;
    const Time hem_wcrt = out.hem.task(r.name).wcrt;
    const double red =
        flat_wcrt > 0
            ? 100.0 * static_cast<double>(flat_wcrt - hem_wcrt) / static_cast<double>(flat_wcrt)
            : 0.0;
    out.table3.push_back(Table3Row{r.name, r.cet, r.prio, flat_wcrt, hem_wcrt, red});
  }
  return out;
}

com::ComLayer make_paper_com_layer(const PaperSystemParams& p) {
  using com::Frame;
  using com::FrameType;
  using com::Signal;
  using com::SignalKind;

  Frame f1;
  f1.name = "F1";
  f1.type = FrameType::kDirect;
  f1.priority = 1;
  f1.signals = {
      Signal{"s1", src(p.s1_period, p.s1_jitter), SignalKind::kTriggering, 1, "T1", ""},
      Signal{"s2", src(p.s2_period, p.s2_jitter), SignalKind::kTriggering, 1, "T2", ""},
      Signal{"s3", src(p.s3_period, p.s3_jitter), SignalKind::kPending, 2, "T3", ""},
  };
  f1.transmission_time = sched::ExecutionTime(p.f1_time);

  Frame f2;
  f2.name = "F2";
  f2.type = FrameType::kDirect;
  f2.priority = 2;
  f2.signals = {Signal{"s4", src(p.s4_period, p.s4_jitter), SignalKind::kTriggering, 2, "T4", ""}};
  f2.transmission_time = sched::ExecutionTime(p.f2_time);

  return com::ComLayer({std::move(f1), std::move(f2)});
}

sim::SimConfig make_paper_sim_config(const PaperSystemParams& p, Time horizon,
                                     sim::GenMode mode, std::uint64_t seed) {
  sim::SimConfig cfg;
  cfg.source_names = {"S1", "S2", "S3", "S4"};
  cfg.sources = {
      sim::SourceSpec{p.s1_period, p.s1_jitter, 0, 0},
      sim::SourceSpec{p.s2_period, p.s2_jitter, 0, 0},
      sim::SourceSpec{p.s3_period, p.s3_jitter, 0, 0},
      sim::SourceSpec{p.s4_period, p.s4_jitter, 0, 0},
  };

  sim::SimFrame f1;
  f1.name = "F1";
  f1.priority = 1;
  f1.c_best = f1.c_worst = p.f1_time;
  f1.signals = {
      sim::SimSignal{"s1", 0, true, "T1"},
      sim::SimSignal{"s2", 1, true, "T2"},
      sim::SimSignal{"s3", 2, false, "T3"},
  };

  sim::SimFrame f2;
  f2.name = "F2";
  f2.priority = 2;
  f2.c_best = f2.c_worst = p.f2_time;
  f2.signals = {sim::SimSignal{"s4", 3, true, ""}};  // T4 lives on another CPU

  cfg.frames = {f1, f2};
  cfg.tasks = {
      sim::SimTask{"T1", 1, p.t1_cet, p.t1_cet},
      sim::SimTask{"T2", 2, p.t2_cet, p.t2_cet},
      sim::SimTask{"T3", 3, p.t3_cet, p.t3_cet},
  };
  cfg.horizon = horizon;
  cfg.mode = mode;
  cfg.seed = seed;
  cfg.worst_case_exec = true;
  return cfg;
}

}  // namespace hem::scenarios
