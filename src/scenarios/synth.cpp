#include "scenarios/synth.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/standard_event_model.hpp"

namespace hem::scenarios {

namespace {

/// Integer draw in [0, n) from the exactly-specified mt19937_64 stream.
/// Modulo bias is irrelevant here (n is tiny against 2^64) and the result
/// is identical on every platform.
std::uint64_t draw(std::mt19937_64& rng, std::uint64_t n) { return rng() % n; }

/// Uniform double in [0, 1) with 53 significant bits.
double draw01(std::mt19937_64& rng) {
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

/// Classic UUniFast: split total utilisation `u` uniformly over `m` tasks.
std::vector<double> uunifast(std::mt19937_64& rng, std::size_t m, double u) {
  std::vector<double> shares(m, u);
  double sum = u;
  for (std::size_t i = 0; i + 1 < m; ++i) {
    const double next =
        sum * std::pow(draw01(rng), 1.0 / static_cast<double>(m - 1 - i));
    shares[i] = sum - next;
    sum = next;
  }
  if (m > 0) shares[m - 1] = sum;
  return shares;
}

/// Log-ish-uniform period from an all-integer decade ladder:
/// min_period * 10^d * f with f in [1, 9], clamped to [min, max].
Time draw_period(std::mt19937_64& rng, Time min_period, Time max_period) {
  int decades = 0;
  for (Time p = min_period; p * 10 <= max_period; p *= 10) ++decades;
  Time scale = min_period;
  for (std::uint64_t d = draw(rng, static_cast<std::uint64_t>(decades) + 1); d > 0; --d)
    scale *= 10;
  const Time factor = 1 + static_cast<Time>(draw(rng, 9));
  return std::clamp(sat_mul(scale, factor), min_period, max_period);
}

}  // namespace

cpa::System build_synth_system(const SynthParams& params) {
  if (params.resources < 1) throw std::invalid_argument("synth: resources must be >= 1");
  if (params.tasks < params.resources)
    throw std::invalid_argument("synth: tasks must be >= resources");
  if (!(params.utilization > 0.0) || !(params.utilization < 1.0))
    throw std::invalid_argument("synth: utilization must be in (0, 1)");
  if (params.min_period < 1 || params.max_period < params.min_period)
    throw std::invalid_argument("synth: need 1 <= min_period <= max_period");

  const auto n_res = static_cast<std::size_t>(params.resources);
  const auto n_tasks = static_cast<std::size_t>(params.tasks);
  const auto layers = static_cast<std::size_t>(
      std::clamp(params.layers, 1, params.resources));
  std::mt19937_64 rng(params.seed);
  cpa::System sys;

  // Resources: contiguous layer blocks, every fourth one a CAN bus.
  std::vector<std::size_t> layer_of(n_res);
  for (std::size_t r = 0; r < n_res; ++r) {
    layer_of[r] = r * layers / n_res;
    cpa::ResourceSpec spec;
    spec.policy = r % 4 == 3 ? cpa::Policy::kSpnpCan : cpa::Policy::kSppPreemptive;
    spec.name = (spec.policy == cpa::Policy::kSpnpCan ? "bus" : "cpu") + std::to_string(r) +
                "_l" + std::to_string(layer_of[r]);
    sys.add_resource(std::move(spec));
  }

  // Tasks: near-even split, remainder to the lowest-numbered resources, so
  // every resource carries at least one task.
  std::vector<std::vector<cpa::TaskId>> on_resource(n_res);
  std::vector<std::vector<cpa::TaskId>> on_layer(layers);
  std::vector<Time> eff_period(n_tasks, 0);  ///< period the CET is sized against
  for (std::size_t r = 0; r < n_res; ++r) {
    const std::size_t count = n_tasks / n_res + (r < n_tasks % n_res ? 1 : 0);
    for (std::size_t i = 0; i < count; ++i) {
      cpa::TaskSpec spec;
      spec.resource = r;
      spec.priority = static_cast<int>(i);  // unique within the resource
      spec.name = "t" + std::to_string(r) + "_" + std::to_string(i);
      const cpa::TaskId t = sys.add_task(std::move(spec));
      on_resource[r].push_back(t);
      on_layer[layer_of[r]].push_back(t);
    }
  }

  // Activations: externals on layer 0 (and as the fallback everywhere);
  // deeper layers chain onto previous-layer outputs with ~50% probability.
  const auto activate_external = [&](cpa::TaskId t) {
    const Time period = draw_period(rng, params.min_period, params.max_period);
    const Time jitter = static_cast<Time>(draw(rng, static_cast<std::uint64_t>(period / 2) + 1));
    eff_period[t] = period;
    sys.activate_external(t, StandardEventModel::periodic_with_jitter(period, jitter));
  };
  for (std::size_t r = 0; r < n_res; ++r) {
    const std::size_t layer = layer_of[r];
    for (cpa::TaskId t : on_resource[r]) {
      const std::vector<cpa::TaskId>* pool = layer > 0 ? &on_layer[layer - 1] : nullptr;
      if (pool == nullptr || pool->empty() || draw(rng, 2) == 0) {
        activate_external(t);
        continue;
      }
      const cpa::TaskId p1 = (*pool)[draw(rng, pool->size())];
      // Occasionally OR-combine two upstream streams (event-rate adds up).
      if (pool->size() > 1 && draw(rng, 4) == 0) {
        cpa::TaskId p2 = (*pool)[draw(rng, pool->size())];
        if (p2 != p1) {
          const Time pa = eff_period[p1];
          const Time pb = eff_period[p2];
          eff_period[t] = std::max<Time>(1, pa * pb / (pa + pb));
          sys.activate_by(t, {p1, p2});
          continue;
        }
      }
      eff_period[t] = eff_period[p1];
      sys.activate_by(t, {p1});
    }
  }

  // Execution times: UUniFast utilisation shares within each resource,
  // scaled by the task's effective activation period.
  for (std::size_t r = 0; r < n_res; ++r) {
    const std::vector<double> shares =
        uunifast(rng, on_resource[r].size(), params.utilization);
    for (std::size_t i = 0; i < on_resource[r].size(); ++i) {
      const cpa::TaskId t = on_resource[r][i];
      const Time wcet = std::max<Time>(
          1, static_cast<Time>(shares[i] * static_cast<double>(eff_period[t])));
      const Time bcet = std::max<Time>(1, wcet / 2);
      sys.set_task_cet(t, sched::ExecutionTime{bcet, wcet});
    }
  }

  return sys;
}

}  // namespace hem::scenarios
