#include "scenarios/synth.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <random>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "core/delta_function_model.hpp"
#include "core/leaky_bucket_model.hpp"
#include "core/offset_transaction_model.hpp"
#include "core/standard_event_model.hpp"

namespace hem::scenarios {

namespace {

/// Integer draw in [0, n) from the exactly-specified mt19937_64 stream.
/// Modulo bias is irrelevant here (n is tiny against 2^64) and the result
/// is identical on every platform.
std::uint64_t draw(std::mt19937_64& rng, std::uint64_t n) { return rng() % n; }

/// Uniform double in [0, 1) with 53 significant bits.
double draw01(std::mt19937_64& rng) {
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

/// Classic UUniFast: split total utilisation `u` uniformly over `m` tasks.
std::vector<double> uunifast(std::mt19937_64& rng, std::size_t m, double u) {
  std::vector<double> shares(m, u);
  double sum = u;
  for (std::size_t i = 0; i + 1 < m; ++i) {
    const double next =
        sum * std::pow(draw01(rng), 1.0 / static_cast<double>(m - 1 - i));
    shares[i] = sum - next;
    sum = next;
  }
  if (m > 0) shares[m - 1] = sum;
  return shares;
}

/// Log-ish-uniform period from an all-integer decade ladder:
/// min_period * 10^d * f with f in [1, 9], clamped to [min, max].
Time draw_period(std::mt19937_64& rng, Time min_period, Time max_period) {
  int decades = 0;
  for (Time p = min_period; p * 10 <= max_period; p *= 10) ++decades;
  Time scale = min_period;
  for (std::uint64_t d = draw(rng, static_cast<std::uint64_t>(decades) + 1); d > 0; --d)
    scale *= 10;
  const Time factor = 1 + static_cast<Time>(draw(rng, 9));
  return std::clamp(sat_mul(scale, factor), min_period, max_period);
}

}  // namespace

cpa::System build_synth_system(const SynthParams& params) {
  if (params.resources < 1) throw std::invalid_argument("synth: resources must be >= 1");
  if (params.tasks < params.resources)
    throw std::invalid_argument("synth: tasks must be >= resources");
  if (!(params.utilization > 0.0) || !(params.utilization < 1.0))
    throw std::invalid_argument("synth: utilization must be in (0, 1)");
  if (params.min_period < 1 || params.max_period < params.min_period)
    throw std::invalid_argument("synth: need 1 <= min_period <= max_period");
  if (params.tdma_permille < 0 || params.rr_permille < 0 ||
      params.tdma_permille + params.rr_permille > 1000)
    throw std::invalid_argument("synth: need tdma_permille + rr_permille in [0, 1000]");

  const auto n_res = static_cast<std::size_t>(params.resources);
  const auto n_tasks = static_cast<std::size_t>(params.tasks);
  const auto layers = static_cast<std::size_t>(
      std::clamp(params.layers, 1, params.resources));
  std::mt19937_64 rng(params.seed);
  cpa::System sys;

  // Resources: contiguous layer blocks, every fourth one a CAN bus.  With
  // tdma/rr_permille > 0 a deterministic share of the CPUs is re-policied
  // time-driven: (r * 131) mod 1000 walks a permutation of the residues
  // (gcd(131, 1000) = 1) that is well-spread even over the first handful
  // of indices, so the share is near-exact at any fleet size and
  // — crucially — costs zero RNG draws: the same seed still produces the
  // same periods, chains, and utilisation shares for every other resource.
  // TDMA cycles are provisional here; they are sized from the slots once
  // execution times exist (below).
  std::vector<std::size_t> layer_of(n_res);
  for (std::size_t r = 0; r < n_res; ++r) {
    layer_of[r] = r * layers / n_res;
    cpa::ResourceSpec spec;
    const char* prefix = "cpu";
    if (r % 4 == 3) {
      spec.policy = cpa::Policy::kSpnpCan;
      prefix = "bus";
    } else {
      const int mix = static_cast<int>(r * 131 % 1000);
      if (mix < params.tdma_permille) {
        spec.policy = cpa::Policy::kTdma;
        spec.tdma_cycle = 1;  // provisional; sized from the slots below
        prefix = "tdma";
      } else if (mix < params.tdma_permille + params.rr_permille) {
        spec.policy = cpa::Policy::kRoundRobin;
        prefix = "rr";
      } else {
        spec.policy = cpa::Policy::kSppPreemptive;
      }
    }
    spec.name = prefix + std::to_string(r) + "_l" + std::to_string(layer_of[r]);
    sys.add_resource(std::move(spec));
  }

  // Tasks: near-even split, remainder to the lowest-numbered resources, so
  // every resource carries at least one task.
  std::vector<std::vector<cpa::TaskId>> on_resource(n_res);
  std::vector<std::vector<cpa::TaskId>> on_layer(layers);
  std::vector<Time> eff_period(n_tasks, 0);  ///< period the CET is sized against
  for (std::size_t r = 0; r < n_res; ++r) {
    const std::size_t count = n_tasks / n_res + (r < n_tasks % n_res ? 1 : 0);
    for (std::size_t i = 0; i < count; ++i) {
      cpa::TaskSpec spec;
      spec.resource = r;
      spec.priority = static_cast<int>(i);  // unique within the resource
      spec.name = "t" + std::to_string(r) + "_" + std::to_string(i);
      const cpa::TaskId t = sys.add_task(std::move(spec));
      on_resource[r].push_back(t);
      on_layer[layer_of[r]].push_back(t);
    }
  }

  // Activations: externals on layer 0 (and as the fallback everywhere);
  // deeper layers chain onto previous-layer outputs with ~50% probability.
  // With packed_permille > 0, some CAN-bus tasks become packed COM frames
  // and some deeper CPU tasks unpack their inner streams.  All packed-mode
  // draws are guarded so the default (0) consumes nothing from the RNG and
  // earlier seeds stay byte-identical.
  struct Frame {
    cpa::TaskId task = 0;
    Time eff = 0;                     ///< effective frame send period
    std::vector<Time> input_periods;  ///< per inner signal
    std::vector<bool> triggering;
  };
  std::vector<Frame> frames;
  const auto activate_external = [&](cpa::TaskId t) {
    const Time period = draw_period(rng, params.min_period, params.max_period);
    const Time jitter = static_cast<Time>(draw(rng, static_cast<std::uint64_t>(period / 2) + 1));
    eff_period[t] = period;
    sys.activate_external(t, StandardEventModel::periodic_with_jitter(period, jitter));
  };
  // Integer OR-rate combination: two streams of periods a and b interleave
  // with an effective period of a*b/(a+b) (rates add up).
  const auto combine_periods = [](Time a, Time b) {
    return std::max<Time>(1, a * b / (a + b));
  };
  const auto activate_packed = [&](cpa::TaskId t) {
    Frame frame;
    frame.task = t;
    std::vector<cpa::PackedActivation::Input> inputs;
    Time eff = 0;
    const std::size_t n_inputs = 2 + draw(rng, 2);  // 2..3 signals per frame
    for (std::size_t i = 0; i < n_inputs; ++i) {
      const Time period = draw_period(rng, params.min_period, params.max_period);
      const Time jitter =
          static_cast<Time>(draw(rng, static_cast<std::uint64_t>(period / 2) + 1));
      // The first signal always triggers so the frame is sendable without a
      // timer (hemlint HL008); the rest draw their coupling.
      const bool trig = i == 0 || draw(rng, 2) == 0;
      inputs.push_back({StandardEventModel::periodic_with_jitter(period, jitter),
                        trig ? SignalCoupling::kTriggering : SignalCoupling::kPending});
      frame.input_periods.push_back(period);
      frame.triggering.push_back(trig);
      if (trig) eff = eff == 0 ? period : combine_periods(eff, period);
    }
    ModelPtr timer;
    if (draw(rng, 2) == 0) {
      const Time period = draw_period(rng, params.min_period, params.max_period);
      timer = StandardEventModel::periodic(period);
      eff = eff == 0 ? period : combine_periods(eff, period);
    }
    sys.activate_packed(t, std::move(inputs), std::move(timer));
    frame.eff = eff;
    eff_period[t] = eff;
    frames.push_back(std::move(frame));
  };
  for (std::size_t r = 0; r < n_res; ++r) {
    const std::size_t layer = layer_of[r];
    const bool is_can = sys.resources()[r].policy == cpa::Policy::kSpnpCan;
    for (cpa::TaskId t : on_resource[r]) {
      if (params.packed_permille > 0 && is_can &&
          draw(rng, 1000) < static_cast<std::uint64_t>(params.packed_permille)) {
        activate_packed(t);
        continue;
      }
      // CPU tasks can consume a previously created frame's inner stream.
      if (params.packed_permille > 0 && !is_can && !frames.empty() && draw(rng, 4) == 0) {
        const Frame& frame = frames[draw(rng, frames.size())];
        const std::size_t index = draw(rng, frame.input_periods.size());
        sys.activate_unpacked(t, frame.task, index);
        // A triggering signal's inner stream is the signal itself; a pending
        // one is carried at most once per frame.
        eff_period[t] = frame.triggering[index]
                            ? frame.input_periods[index]
                            : std::max(frame.input_periods[index], frame.eff);
        continue;
      }
      const std::vector<cpa::TaskId>* pool = layer > 0 ? &on_layer[layer - 1] : nullptr;
      if (pool == nullptr || pool->empty() || draw(rng, 2) == 0) {
        activate_external(t);
        continue;
      }
      const cpa::TaskId p1 = (*pool)[draw(rng, pool->size())];
      // Occasionally OR-combine two upstream streams (event-rate adds up).
      if (pool->size() > 1 && draw(rng, 4) == 0) {
        cpa::TaskId p2 = (*pool)[draw(rng, pool->size())];
        if (p2 != p1) {
          const Time pa = eff_period[p1];
          const Time pb = eff_period[p2];
          eff_period[t] = std::max<Time>(1, pa * pb / (pa + pb));
          sys.activate_by(t, {p1, p2});
          continue;
        }
      }
      eff_period[t] = eff_period[p1];
      sys.activate_by(t, {p1});
    }
  }

  // Execution times: UUniFast utilisation shares within each resource,
  // scaled by the task's effective activation period.  Time-driven
  // resources additionally get their slot table here — one slot per task,
  // sized to fit its WCET, with TDMA cycles of twice the slot sum so every
  // task's slot recurs with slack.  All slot arithmetic is derived from
  // already-drawn values: still zero extra RNG draws.
  for (std::size_t r = 0; r < n_res; ++r) {
    const std::vector<double> shares =
        uunifast(rng, on_resource[r].size(), params.utilization);
    Time slot_sum = 0;
    for (std::size_t i = 0; i < on_resource[r].size(); ++i) {
      const cpa::TaskId t = on_resource[r][i];
      const Time wcet = std::max<Time>(
          1, static_cast<Time>(shares[i] * static_cast<double>(eff_period[t])));
      const Time bcet = std::max<Time>(1, wcet / 2);
      sys.set_task_cet(t, sched::ExecutionTime{bcet, wcet});
      const cpa::Policy policy = sys.resources()[r].policy;
      if (policy == cpa::Policy::kTdma || policy == cpa::Policy::kRoundRobin) {
        sys.set_task_slot(t, wcet);
        slot_sum = sat_add(slot_sum, wcet);
      }
    }
    if (sys.resources()[r].policy == cpa::Policy::kTdma)
      sys.set_resource_tdma_cycle(r, sat_mul(slot_sum, 2));
  }

  return sys;
}

namespace {

/// The textual format tokenises on whitespace and uses '#', '=', ':' and ','
/// structurally, so entity names must be single clean tokens.
void check_token(const std::string& name, const char* what) {
  if (name.empty())
    throw std::invalid_argument(std::string("to_config_text: empty ") + what + " name");
  for (const char c : name) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '#' || c == '=' || c == ':' ||
        c == ',')
      throw std::invalid_argument(std::string("to_config_text: ") + what + " name '" + name +
                                  "' is not a single clean token");
  }
}

/// `source <name> <kind> <params>` tail for one external model node, or
/// throws std::invalid_argument when the node has no statement form.
std::string source_stmt_tail(const EventModel& model) {
  std::ostringstream os;
  if (const auto* sem = dynamic_cast<const StandardEventModel*>(&model)) {
    if (sem->jitter() == 0 && sem->d_min() == sem->period())
      os << "periodic period=" << sem->period();
    else
      os << "sem period=" << sem->period() << " jitter=" << sem->jitter()
         << " dmin=" << sem->d_min();
  } else if (const auto* burst = dynamic_cast<const DeltaFunctionModel*>(&model)) {
    if (!burst->is_periodic_burst())
      throw std::invalid_argument(
          "to_config_text: arbitrary delta-curve model has no source statement form: " +
          model.describe());
    os << "burst size=" << burst->burst_size() << " inner=" << burst->burst_inner()
       << " period=" << burst->burst_outer();
  } else if (const auto* leaky = dynamic_cast<const LeakyBucketModel*>(&model)) {
    os << "leaky burst=" << leaky->burst() << " spacing=" << leaky->spacing();
  } else if (const auto* ofs = dynamic_cast<const OffsetTransactionModel*>(&model)) {
    os << "offsets period=" << ofs->period() << " at=";
    for (std::size_t i = 0; i < ofs->offsets().size(); ++i)
      os << (i > 0 ? "," : "") << ofs->offsets()[i];
    if (ofs->jitter() > 0) os << " jitter=" << ofs->jitter();
  } else {
    throw std::invalid_argument("to_config_text: external model kind not expressible: " +
                                model.describe());
  }
  return os.str();
}

/// Pack timers are parsed as `timer=<period>` -> StandardEventModel::periodic,
/// so only strictly periodic SEM timers round-trip.
Time timer_period(const ModelPtr& timer) {
  const auto* sem = dynamic_cast<const StandardEventModel*>(timer.get());
  if (sem == nullptr || sem->jitter() != 0 || sem->d_min() != sem->period())
    throw std::invalid_argument(
        "to_config_text: pack timer is not a strictly periodic SEM: " + timer->describe());
  return sem->period();
}

}  // namespace

std::string to_config_text(const cpa::System& system, const cpa::DeadlineMap& deadlines) {
  const auto& resources = system.resources();
  const auto& tasks = system.tasks();

  std::set<std::string> task_names;
  for (const auto& t : tasks) {
    check_token(t.name, "task");
    task_names.insert(t.name);
  }
  for (const auto& r : resources) check_token(r.name, "resource");

  // Assign stable names to external model nodes (shared nodes emitted once).
  // `activate from=` and `packed inputs=` resolve task names before source
  // names, so a source name must not collide with any task name.
  std::map<const EventModel*, std::string> source_names;
  std::vector<const EventModel*> source_order;
  std::size_t next_source = 0;
  const auto name_source = [&](const ModelPtr& model) -> const std::string& {
    const auto it = source_names.find(model.get());
    if (it != source_names.end()) return it->second;
    std::string name;
    do {
      name = "s" + std::to_string(next_source++);
    } while (task_names.count(name) != 0);
    source_order.push_back(model.get());
    return source_names.emplace(model.get(), std::move(name)).first->second;
  };
  std::ostringstream sources_out;
  const auto declare_source = [&](const ModelPtr& model) -> const std::string& {
    if (model == nullptr)
      throw std::invalid_argument("to_config_text: null external model");
    const bool fresh = source_names.count(model.get()) == 0;
    const std::string& name = name_source(model);
    if (fresh)
      sources_out << "source " << name << " " << source_stmt_tail(*model) << "\n";
    return name;
  };

  std::ostringstream body;
  for (cpa::TaskId t = 0; t < tasks.size(); ++t) {
    const cpa::ActivationSpec& spec = system.activation(t);
    const std::string& name = tasks[t].name;
    if (const auto* ext = std::get_if<cpa::ExternalActivation>(&spec)) {
      body << "activate " << name << " from=" << declare_source(ext->model) << "\n";
    } else if (const auto* out = std::get_if<cpa::TaskOutputActivation>(&spec)) {
      if (out->producers.empty())
        throw std::invalid_argument("to_config_text: task '" + name + "' has no producers");
      body << "activate " << name << (out->producers.size() == 1 ? " from=" : " or=");
      for (std::size_t i = 0; i < out->producers.size(); ++i)
        body << (i > 0 ? "," : "") << tasks[out->producers[i]].name;
      body << "\n";
    } else if (const auto* land = std::get_if<cpa::AndActivation>(&spec)) {
      body << "activate " << name << " and=";
      for (std::size_t i = 0; i < land->producers.size(); ++i)
        body << (i > 0 ? "," : "") << tasks[land->producers[i]].name;
      body << " period=" << land->period << "\n";
    } else if (const auto* packed = std::get_if<cpa::PackedActivation>(&spec)) {
      body << "packed " << name << " inputs=";
      for (std::size_t i = 0; i < packed->inputs.size(); ++i) {
        const auto& input = packed->inputs[i];
        body << (i > 0 ? "," : "");
        if (const auto* producer = std::get_if<cpa::TaskId>(&input.source))
          body << tasks[*producer].name;
        else
          body << declare_source(std::get<ModelPtr>(input.source));
        body << (input.coupling == SignalCoupling::kTriggering ? ":trig" : ":pend");
      }
      if (packed->timer != nullptr) body << " timer=" << timer_period(packed->timer);
      body << "\n";
    } else if (const auto* unpacked = std::get_if<cpa::UnpackedActivation>(&spec)) {
      body << "unpack " << name << " frame=" << tasks[unpacked->frame_task].name
           << " index=" << unpacked->index << "\n";
    } else {
      throw std::invalid_argument("to_config_text: task '" + name + "' has no activation");
    }
  }

  std::ostringstream os;
  for (const auto& r : resources) {
    os << "resource " << r.name << " ";
    switch (r.policy) {
      case cpa::Policy::kSppPreemptive: os << "spp"; break;
      case cpa::Policy::kSpnpCan: os << "can"; break;
      case cpa::Policy::kRoundRobin: os << "rr"; break;
      case cpa::Policy::kTdma: os << "tdma cycle=" << r.tdma_cycle; break;
      case cpa::Policy::kFlexRayStatic:
        os << "flexray cycle=" << r.tdma_cycle << " slot=" << r.slot_length;
        break;
      case cpa::Policy::kEdf: os << "edf"; break;
    }
    os << "\n";
  }
  os << sources_out.str();
  for (const auto& t : tasks) {
    os << "task " << t.name << " resource=" << resources[t.resource].name
       << " priority=" << t.priority << " cet=" << t.cet.best << ":" << t.cet.worst;
    if (t.slot != 0) os << " slot=" << t.slot;
    if (t.deadline != 0) os << " deadline=" << t.deadline;
    os << "\n";
  }
  os << body.str();
  for (const auto& [task, ticks] : deadlines) {
    if (task_names.count(task) == 0)
      throw std::invalid_argument("to_config_text: deadline for unknown task '" + task + "'");
    os << "deadline " << task << " " << ticks << "\n";
  }
  return os.str();
}

}  // namespace hem::scenarios
