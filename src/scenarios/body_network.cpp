#include "scenarios/body_network.hpp"

#include <string>

#include "core/standard_event_model.hpp"

namespace hem::scenarios {

namespace {

using cpa::Policy;
using cpa::System;
using cpa::TaskId;

}  // namespace

cpa::System build_body_network(const BodyNetworkParams& params) {
  if (params.replicas < 1) throw std::invalid_argument("build_body_network: replicas >= 1");
  if (params.time_unit < 1) throw std::invalid_argument("build_body_network: time_unit >= 1");
  const Time u = params.time_unit;

  System sys;
  const auto pt_can = sys.add_resource({"PT_CAN", Policy::kSpnpCan});
  const auto bd_can = sys.add_resource({"BD_CAN", Policy::kSpnpCan});
  const auto gw_cpu = sys.add_resource({"GW_CPU", Policy::kSppPreemptive});
  const auto dash_cpu = sys.add_resource({"DASH_CPU", Policy::kSppPreemptive});
  const auto bc_cpu = sys.add_resource({"BC_CPU", Policy::kSppPreemptive});

  const auto src = [&](Time period) { return StandardEventModel::periodic(period * u); };

  for (int r = 0; r < params.replicas; ++r) {
    const std::string sfx = params.replicas > 1 ? "_" + std::to_string(r) : "";
    const int pb = 10 * r;  // priority base per replica

    // --- powertrain CAN ----------------------------------------------------
    const TaskId pt1 = sys.add_task({"PT1" + sfx, pt_can, pb + 1, sched::ExecutionTime(13)});
    sys.activate_packed(pt1, {{src(100), SignalCoupling::kTriggering},   // wheel, 1 ms*u
                              {src(200), SignalCoupling::kTriggering}}); // engine
    const TaskId pt2 = sys.add_task({"PT2" + sfx, pt_can, pb + 2, sched::ExecutionTime(11)});
    sys.activate_packed(pt2,
                        {{src(5000), SignalCoupling::kPending},          // temp
                         {src(10000), SignalCoupling::kPending}},        // oil
                        StandardEventModel::periodic(1000 * u));         // periodic frame

    // --- gateway -------------------------------------------------------------
    const TaskId gw_wheel =
        sys.add_task({"gw_wheel" + sfx, gw_cpu, 2 * r + 1, sched::ExecutionTime(3, 5)});
    sys.activate_unpacked(gw_wheel, pt1, 0);
    const TaskId gw_temp =
        sys.add_task({"gw_temp" + sfx, gw_cpu, 2 * r + 2, sched::ExecutionTime(3, 6)});
    sys.activate_unpacked(gw_temp, pt2, 0);

    // --- body CAN -----------------------------------------------------------
    const TaskId bd1 = sys.add_task({"BD1" + sfx, bd_can, pb + 1, sched::ExecutionTime(12)});
    sys.activate_packed(bd1, {{src(500), SignalCoupling::kTriggering},   // door
                              {src(1000), SignalCoupling::kTriggering}}); // light
    const TaskId bd2 = sys.add_task({"BD2" + sfx, bd_can, pb + 2, sched::ExecutionTime(10)});
    sys.activate_packed(bd2, {{src(2000), SignalCoupling::kPending}},    // climate
                        StandardEventModel::periodic(1000 * u));
    const TaskId gw1 = sys.add_task({"GW1" + sfx, bd_can, pb + 3, sched::ExecutionTime(14)});
    sys.activate_packed(gw1, {{gw_wheel, SignalCoupling::kTriggering},
                              {gw_temp, SignalCoupling::kPending}});

    // --- dashboard ------------------------------------------------------------
    const TaskId dash_wheel =
        sys.add_task({"dash_wheel" + sfx, dash_cpu, 3 * r + 1, sched::ExecutionTime(50)});
    sys.activate_unpacked(dash_wheel, gw1, 0);
    const TaskId dash_temp =
        sys.add_task({"dash_temp" + sfx, dash_cpu, 3 * r + 2, sched::ExecutionTime(80)});
    sys.activate_unpacked(dash_temp, gw1, 1);
    const TaskId dash_climate =
        sys.add_task({"dash_climate" + sfx, dash_cpu, 3 * r + 3, sched::ExecutionTime(60)});
    sys.activate_unpacked(dash_climate, bd2, 0);

    // --- body controller ------------------------------------------------------
    const TaskId bc_door =
        sys.add_task({"bc_door" + sfx, bc_cpu, 2 * r + 1, sched::ExecutionTime(40)});
    sys.activate_unpacked(bc_door, bd1, 0);
    const TaskId bc_light =
        sys.add_task({"bc_light" + sfx, bc_cpu, 2 * r + 2, sched::ExecutionTime(30)});
    sys.activate_unpacked(bc_light, bd1, 1);
  }
  return sys;
}

cpa::AnalysisReport analyze_body_network(const BodyNetworkParams& params) {
  auto sys = build_body_network(params);
  return cpa::CpaEngine(sys).run();
}

}  // namespace hem::scenarios
