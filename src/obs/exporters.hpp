#pragma once

/// \file exporters.hpp
/// Serialisation of collected observability data:
///   * Chrome trace_event JSON (the "JSON Object Format": a top-level object
///     with a `traceEvents` array) - loadable in about:tracing, Perfetto, or
///     `chrome://tracing`.  Spans become 'X' (complete) events with
///     microsecond timestamps/durations, instants become 'i' events, and
///     every registry counter is appended as a 'C' (counter) sample so the
///     trace is self-contained (delta-cache hit rates next to the spans they
///     explain).
///   * a plain-text metrics dump: one `name value` line per counter and a
///     `name count=.. sum=.. min=.. max=.. mean=..` line per histogram,
///     sorted by name (stable for diffing and CI greps).

#include <iosfwd>

#include "obs/obs.hpp"

namespace hem::obs {

/// Write the trace_event JSON for `tracer`'s events plus one final counter
/// sample per `registry` counter.
void write_chrome_trace(std::ostream& os, const Tracer& tracer, const Registry& registry);

/// Write the plain-text metrics dump of every counter and histogram.
void write_metrics_text(std::ostream& os, const Registry& registry);

/// Escape a string for embedding in a JSON string literal (quotes not
/// included).  Exposed for tests.
[[nodiscard]] std::string json_escape(const std::string& text);

}  // namespace hem::obs
