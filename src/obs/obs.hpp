#pragma once

/// \file obs.hpp
/// Lightweight observability layer: named counters/histograms and scoped
/// trace spans with thread ids and monotonic timestamps.
///
/// Design goals, in order:
///   1. Near-zero overhead when disabled.  Collection is gated twice:
///      * compile time - defining HEM_OBS_DISABLE compiles every probe down
///        to nothing (constant-folded `if (false)` branches);
///      * run time - with the layer compiled in, every probe first performs
///        one relaxed atomic load (`counting()` for counters, `tracer()`
///        for spans) and branches away when observability is off.  Disabled
///        runs therefore pay one predictable-not-taken branch per probe.
///   2. Bit-identical analysis results.  Probes only *read* analysis state;
///      enabling or disabling them never changes control flow of the
///      instrumented code (contention-counted locks still always acquire).
///   3. Thread safety.  Counters are single atomics, histograms are arrays
///      of atomics, the span sink is mutex-guarded (spans are coarse:
///      per-resource local analyses and per-iteration phases, not per-query
///      events, so sink contention is negligible).
///
/// The exporters (Chrome trace_event JSON for about:tracing / Perfetto and
/// a plain-text metrics dump) live in obs/exporters.hpp.  Typical use:
///
///   obs::Tracer tracer;
///   obs::set_tracer(&tracer);         // also enables counting
///   ... run the analysis ...
///   obs::set_tracer(nullptr);
///   obs::write_chrome_trace(file, tracer, obs::registry());
///
/// Instrumented code declares probes like:
///
///   obs::Counter& hits = obs::registry().counter("engine.cache.hit");
///   ...
///   obs::bump(hits);                                   // hot path
///   obs::Span span("engine", [&] { return "local:" + name; });
///   span.arg("cause", cause);

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#ifndef HEM_OBS_DISABLE
#define HEM_OBS_ENABLED 1
#else
#define HEM_OBS_ENABLED 0
#endif

namespace hem::obs {

// ---------------------------------------------------------------------------
// Counters and histograms
// ---------------------------------------------------------------------------

/// Monotonic named counter.  Incremented from any thread; reads are
/// approximate while writers are active (relaxed ordering is sufficient for
/// statistics).
class Counter {
 public:
  void add(long v) noexcept { value_.fetch_add(v, std::memory_order_relaxed); }
  [[nodiscard]] long value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<long> value_{0};
};

/// Histogram of non-negative long samples: count/sum/min/max plus
/// power-of-two buckets (bucket i counts samples in [2^(i-1), 2^i), bucket 0
/// counts zeros).  Lock-free.
class Histogram {
 public:
  static constexpr int kBuckets = 40;

  void record(long sample) noexcept;

  [[nodiscard]] long count() const noexcept { return count_.load(std::memory_order_relaxed); }
  [[nodiscard]] long sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  [[nodiscard]] long min() const noexcept { return min_.load(std::memory_order_relaxed); }
  [[nodiscard]] long max() const noexcept { return max_.load(std::memory_order_relaxed); }
  [[nodiscard]] long bucket(int i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const noexcept {
    const long n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
  }
  void reset() noexcept;

 private:
  std::atomic<long> count_{0};
  std::atomic<long> sum_{0};
  std::atomic<long> min_{0};
  std::atomic<long> max_{0};
  std::atomic<bool> has_sample_{false};
  std::atomic<long> buckets_[kBuckets] = {};
};

/// Name -> counter/histogram registry.  Lookup is mutex-guarded (intended
/// for one-time probe setup at namespace scope, not per-event); returned
/// references are stable for the registry's lifetime.
class Registry {
 public:
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Histogram& histogram(const std::string& name);

  /// Visit all instruments in name order (exporters and tests).
  void for_each_counter(const std::function<void(const std::string&, const Counter&)>& fn) const;
  void for_each_histogram(
      const std::function<void(const std::string&, const Histogram&)>& fn) const;

  /// Zero every instrument (names stay registered).  Test isolation helper.
  void reset();

 private:
  mutable std::mutex mu_;
  // std::map keeps iteration deterministic and node addresses stable.
  std::map<std::string, Counter> counters_;
  std::map<std::string, Histogram> histograms_;
};

/// The process-wide registry.  Probes in analysis code register here once
/// at static-init/first-use; `EngineStats` and the exporters read it.
[[nodiscard]] Registry& registry();

// ---------------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------------

/// One recorded trace event (Chrome trace_event vocabulary: 'X' = complete
/// span with duration, 'i' = instant).  Timestamps are steady-clock
/// nanoseconds since the tracer was constructed.
struct TraceEvent {
  std::string name;
  const char* category = "";
  char phase = 'X';
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;
  std::vector<std::pair<std::string, std::string>> args;  ///< pre-rendered values
};

/// Collects completed trace events.  Thread-safe; events arrive in
/// completion order (the exporter sorts by begin timestamp).
class Tracer {
 public:
  Tracer() : epoch_(std::chrono::steady_clock::now()) {}

  [[nodiscard]] std::uint64_t now_ns() const noexcept {
    return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                          std::chrono::steady_clock::now() - epoch_)
                                          .count());
  }

  void record(TraceEvent&& ev);
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;
  [[nodiscard]] std::size_t size() const;

 private:
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

// ---------------------------------------------------------------------------
// Global enablement (runtime null-sink check)
// ---------------------------------------------------------------------------

namespace detail {
#if HEM_OBS_ENABLED
extern std::atomic<Tracer*> g_tracer;
extern std::atomic<bool> g_counting;
#endif
}  // namespace detail

/// Active tracer, or nullptr when tracing is off.  One relaxed load.
[[nodiscard]] inline Tracer* tracer() noexcept {
#if HEM_OBS_ENABLED
  return detail::g_tracer.load(std::memory_order_relaxed);
#else
  return nullptr;
#endif
}

/// Whether hot-path counters should record.  One relaxed load.
[[nodiscard]] inline bool counting() noexcept {
#if HEM_OBS_ENABLED
  return detail::g_counting.load(std::memory_order_relaxed);
#else
  return false;
#endif
}

/// Install (or remove, with nullptr) the process-wide tracer.  Installing a
/// tracer also enables counting; removing it leaves counting as-is.
void set_tracer(Tracer* t) noexcept;

/// Enable/disable hot-path counter collection independently of tracing
/// (`hemcpa --metrics` without `--trace-out`).
void set_counting(bool on) noexcept;

// ---------------------------------------------------------------------------
// Probes
// ---------------------------------------------------------------------------

/// Hot-path counter bump: a relaxed load + untaken branch when disabled.
inline void bump(Counter& c, long v = 1) noexcept {
  if (counting()) c.add(v);
}

inline void observe(Histogram& h, long sample) noexcept {
  if (counting()) h.record(sample);
}

/// Acquire `lock` (a deferred unique_lock), counting failed immediate
/// acquisitions into `contention`.  The lock is ALWAYS acquired; only the
/// bookkeeping is conditional, so locking behaviour is identical whether
/// observability is on or off.
inline void lock_counted(std::unique_lock<std::mutex>& lock, Counter& contention) {
  if (counting()) {
    if (lock.try_lock()) return;
    contention.add(1);
  }
  lock.lock();
}

/// Small dense thread id for trace events (0 = first observed thread).
[[nodiscard]] std::uint32_t thread_id() noexcept;

/// RAII scoped span.  The name callback only runs when a tracer is
/// installed, so building dynamic names costs nothing when tracing is off.
class Span {
 public:
  template <typename NameFn>
  Span(const char* category, NameFn&& name) {
    if (Tracer* t = obs::tracer()) begin(t, category, std::forward<NameFn>(name)());
  }
  Span(const char* category, const char* name) {
    if (Tracer* t = obs::tracer()) begin(t, category, std::string(name));
  }
  ~Span() {
    if (tracer_) finish();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach a key/value argument; no-ops (without building the value) when
  /// the span is inactive.
  void arg(const char* key, const std::string& value) {
    if (tracer_) event_.args.emplace_back(key, value);
  }
  void arg(const char* key, const char* value) {
    if (tracer_) event_.args.emplace_back(key, value);
  }
  void arg(const char* key, long value) {
    if (tracer_) event_.args.emplace_back(key, std::to_string(value));
  }

 private:
  void begin(Tracer* t, const char* category, std::string name);
  void finish();

  Tracer* tracer_ = nullptr;
  TraceEvent event_;
};

/// Record an instant event ('i' phase), e.g. a convergence decision.
template <typename NameFn>
void instant(const char* category, NameFn&& name,
             std::vector<std::pair<std::string, std::string>> args = {}) {
  if (Tracer* t = tracer()) {
    TraceEvent ev;
    ev.name = std::forward<NameFn>(name)();
    ev.category = category;
    ev.phase = 'i';
    ev.ts_ns = t->now_ns();
    ev.tid = thread_id();
    ev.args = std::move(args);
    t->record(std::move(ev));
  }
}

}  // namespace hem::obs
