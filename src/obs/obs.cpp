#include "obs/obs.hpp"

namespace hem::obs {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

namespace {

/// Bucket index for a sample: 0 for <= 0, otherwise 1 + floor(log2(sample)),
/// clamped to the last bucket.
int bucket_index(long sample) noexcept {
  if (sample <= 0) return 0;
  int i = 1;
  unsigned long v = static_cast<unsigned long>(sample);
  while (v > 1 && i < Histogram::kBuckets - 1) {
    v >>= 1U;
    ++i;
  }
  return i;
}

/// Relaxed fetch-min/max via CAS (no atomic<long>::fetch_min pre-C++26).
void atomic_min(std::atomic<long>& a, long v) noexcept {
  long cur = a.load(std::memory_order_relaxed);
  while (v < cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<long>& a, long v) noexcept {
  long cur = a.load(std::memory_order_relaxed);
  while (v > cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::record(long sample) noexcept {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
  if (!has_sample_.exchange(true, std::memory_order_relaxed)) {
    // First sample seeds min/max; racing seeds converge via the CAS loops.
    min_.store(sample, std::memory_order_relaxed);
    max_.store(sample, std::memory_order_relaxed);
  }
  atomic_min(min_, sample);
  atomic_max(max_, sample);
  buckets_[bucket_index(sample)].fetch_add(1, std::memory_order_relaxed);
}

void Histogram::reset() noexcept {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  has_sample_.store(false, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Counter& Registry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  return counters_[name];
}

Histogram& Registry::histogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  return histograms_[name];
}

void Registry::for_each_counter(
    const std::function<void(const std::string&, const Counter&)>& fn) const {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) fn(name, c);
}

void Registry::for_each_histogram(
    const std::function<void(const std::string&, const Histogram&)>& fn) const {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, h] : histograms_) fn(name, h);
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

Registry& registry() {
  // Leaked singleton: probes at namespace scope in other translation units
  // call this during static initialisation (construction on first use keeps
  // that order-safe), and a worker thread hard-abandoned by the JobPool
  // watchdog may still bump counters while the process exits — a destructed
  // registry would hand that thread freed memory.  Never destroying it
  // makes process exit safe without std::_Exit.
  static Registry* instance = new Registry;
  return *instance;
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

void Tracer::record(TraceEvent&& ev) {
  const std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(ev));
}

std::vector<TraceEvent> Tracer::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::size_t Tracer::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

// ---------------------------------------------------------------------------
// Global enablement
// ---------------------------------------------------------------------------

namespace detail {
#if HEM_OBS_ENABLED
std::atomic<Tracer*> g_tracer{nullptr};
std::atomic<bool> g_counting{false};
#endif
}  // namespace detail

void set_tracer(Tracer* t) noexcept {
#if HEM_OBS_ENABLED
  detail::g_tracer.store(t, std::memory_order_relaxed);
  if (t != nullptr) detail::g_counting.store(true, std::memory_order_relaxed);
#else
  (void)t;
#endif
}

void set_counting(bool on) noexcept {
#if HEM_OBS_ENABLED
  detail::g_counting.store(on, std::memory_order_relaxed);
#else
  (void)on;
#endif
}

std::uint32_t thread_id() noexcept {
#if HEM_OBS_ENABLED
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
#else
  return 0;
#endif
}

// ---------------------------------------------------------------------------
// Span
// ---------------------------------------------------------------------------

void Span::begin(Tracer* t, const char* category, std::string name) {
  tracer_ = t;
  event_.name = std::move(name);
  event_.category = category;
  event_.phase = 'X';
  event_.tid = thread_id();
  event_.ts_ns = t->now_ns();
}

void Span::finish() {
  // A tracer swapped out mid-span still receives the event: `tracer_` pins
  // the sink the span began on, so begin/end always pair up.
  event_.dur_ns = tracer_->now_ns() - event_.ts_ns;
  tracer_->record(std::move(event_));
}

}  // namespace hem::obs
