#include "obs/exporters.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace hem::obs {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

/// Nanoseconds -> the microsecond `ts`/`dur` unit of the trace_event format,
/// keeping sub-microsecond resolution as a decimal fraction.
void write_us(std::ostream& os, std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  os << buf;
}

void write_args(std::ostream& os,
                const std::vector<std::pair<std::string, std::string>>& args) {
  os << "{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i != 0) os << ",";
    os << "\"" << json_escape(args[i].first) << "\":\"" << json_escape(args[i].second) << "\"";
  }
  os << "}";
}

}  // namespace

void write_chrome_trace(std::ostream& os, const Tracer& tracer, const Registry& registry) {
  std::vector<TraceEvent> events = tracer.snapshot();
  // Events arrive at span *completion*; viewers expect begin-timestamp order.
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) { return a.ts_ns < b.ts_ns; });
  const std::uint64_t end_ts = events.empty() ? 0 : tracer.now_ns();

  os << "{\"traceEvents\":[\n";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  for (const TraceEvent& ev : events) {
    sep();
    os << "{\"name\":\"" << json_escape(ev.name) << "\",\"cat\":\"" << json_escape(ev.category)
       << "\",\"ph\":\"" << ev.phase << "\",\"pid\":1,\"tid\":" << ev.tid << ",\"ts\":";
    write_us(os, ev.ts_ns);
    if (ev.phase == 'X') {
      os << ",\"dur\":";
      write_us(os, ev.dur_ns);
    }
    if (ev.phase == 'i') os << ",\"s\":\"t\"";  // thread-scoped instant
    if (!ev.args.empty()) {
      os << ",\"args\":";
      write_args(os, ev.args);
    }
    os << "}";
  }
  // Final counter samples: one 'C' event per registry counter at the trace
  // end timestamp, so Perfetto renders them as counter tracks and the JSON
  // itself carries the cache statistics.
  registry.for_each_counter([&](const std::string& name, const Counter& c) {
    sep();
    os << "{\"name\":\"" << json_escape(name) << "\",\"cat\":\"metrics\",\"ph\":\"C\","
       << "\"pid\":1,\"tid\":0,\"ts\":";
    write_us(os, end_ts);
    os << ",\"args\":{\"value\":" << c.value() << "}}";
  });
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void write_metrics_text(std::ostream& os, const Registry& registry) {
  registry.for_each_counter(
      [&](const std::string& name, const Counter& c) { os << name << " " << c.value() << "\n"; });
  registry.for_each_histogram([&](const std::string& name, const Histogram& h) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", h.mean());
    os << name << " count=" << h.count() << " sum=" << h.sum() << " min=" << h.min()
       << " max=" << h.max() << " mean=" << buf << "\n";
  });
}

}  // namespace hem::obs
