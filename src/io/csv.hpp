#pragma once

/// \file csv.hpp
/// CSV import/export: analysis reports, event traces, and delta curves.
/// Traces use one timestamp per line ('#' comments allowed) so they round-
/// trip with standard tooling; reports and curves use a header row.

#include <iosfwd>
#include <span>
#include <vector>

#include "core/event_model.hpp"
#include "model/analysis_report.hpp"

namespace hem::io {

/// Write the per-task results as CSV:
/// `task,resource,bcrt,wcrt,activations,busy_period,utilization,status`.
/// Text fields are RFC-4180 quoted when they contain a delimiter, quote, or
/// newline; utilization is rendered with a fixed six decimals.
void write_report_csv(std::ostream& os, const cpa::AnalysisReport& report);

/// RFC-4180 field encoding: returns `text` unchanged when it contains no
/// comma, double quote, or line break; otherwise wraps it in double quotes
/// with embedded quotes doubled.
[[nodiscard]] std::string csv_field(const std::string& text);

/// Write one event timestamp per line.
void write_trace_csv(std::ostream& os, std::span<const Time> trace);

/// Read a trace written by write_trace_csv (or any newline-separated list
/// of integers; blank lines and '#' comments are skipped).
/// \throws std::invalid_argument on malformed lines.
[[nodiscard]] std::vector<Time> read_trace_csv(std::istream& is);

/// Write `n,delta_min,delta_plus` rows for n in [2, n_max]
/// (infinite values as the literal `inf`).
void write_delta_csv(std::ostream& os, const EventModel& model, Count n_max);

}  // namespace hem::io
