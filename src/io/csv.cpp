#include "io/csv.hpp"

#include <cmath>
#include <cstdio>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

#include "core/model_io.hpp"

namespace hem::io {

namespace {

std::string csv_time(Time t) { return is_infinite(t) ? "inf" : std::to_string(t); }
std::string csv_count(Count n) { return is_infinite_count(n) ? "inf" : std::to_string(n); }

/// Fixed six-decimal rendering: the default operator<< (6 significant
/// digits) silently rounds large utilizations and switches to scientific
/// notation, which breaks downstream numeric parsers.
std::string csv_double(double v) {
  if (std::isinf(v)) return "inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

}  // namespace

std::string csv_field(const std::string& text) {
  if (text.find_first_of(",\"\r\n") == std::string::npos) return text;
  std::string out;
  out.reserve(text.size() + 2);
  out += '"';
  for (const char c : text) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void write_report_csv(std::ostream& os, const cpa::AnalysisReport& report) {
  os << "task,resource,bcrt,wcrt,activations,busy_period,utilization,status\n";
  for (const auto& t : report.tasks) {
    os << csv_field(t.name) << ',' << csv_field(t.resource) << ',' << csv_time(t.bcrt) << ','
       << csv_time(t.wcrt) << ',' << csv_count(t.activations_in_busy_period) << ','
       << csv_time(t.busy_period) << ',' << csv_double(t.utilization) << ','
       << csv_field(cpa::to_string(t.status)) << '\n';
  }
}

void write_trace_csv(std::ostream& os, std::span<const Time> trace) {
  for (const Time t : trace) os << t << '\n';
}

std::vector<Time> read_trace_csv(std::istream& is) {
  std::vector<Time> trace;
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    // Trim whitespace.
    const auto begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos) continue;
    const auto end = line.find_last_not_of(" \t\r");
    const std::string token = line.substr(begin, end - begin + 1);
    try {
      std::size_t pos = 0;
      const long long v = std::stoll(token, &pos);
      if (pos != token.size()) throw std::invalid_argument("");
      trace.push_back(static_cast<Time>(v));
    } catch (...) {
      throw std::invalid_argument("read_trace_csv: line " + std::to_string(line_no) +
                                  ": not a timestamp: '" + token + "'");
    }
  }
  return trace;
}

void write_delta_csv(std::ostream& os, const EventModel& model, Count n_max) {
  os << "n,delta_min,delta_plus\n";
  for (Count n = 2; n <= n_max; ++n)
    os << n << ',' << format_time(model.delta_min(n)) << ','
       << format_time(model.delta_plus(n)) << '\n';
}

}  // namespace hem::io
