#pragma once

/// \file resource_server.hpp
/// Hierarchical scheduling substrate: the periodic resource model of
/// Shin & Lee (RTSS'03), which the paper cites as the established way to
/// extend *local* analysis to scheduling hierarchies (its point being that
/// event *streams* lacked an equivalent hierarchy).
///
/// A periodic resource Gamma = (Pi, Theta) guarantees Theta ticks of
/// service every Pi ticks.  Its supply bound function (worst-case phasing:
/// the component has just consumed its budget, giving a 2*(Pi - Theta)
/// blackout) is
///
///   sbf(t) = k * Theta + max(0, rem - (Pi - Theta))
///      with t' = max(0, t - (Pi - Theta)),  k = floor(t' / Pi),
///           rem = t' - k * Pi
///
/// SPP analysis *under* a server replaces physical time with supplied time:
/// the q-th completion is the smallest t with sbf(t) >= q*C+_i +
/// interference(t).  On the parent level, a server is simply a periodic
/// task (P = Pi, C = Theta), so parent schedulability reuses SppAnalysis.

#include <memory>
#include <string>
#include <vector>

#include "sched/busy_window.hpp"

namespace hem::sched {

/// Abstract resource supply: how much service a (virtual) resource
/// guarantees in any time window.  Implementations must be monotone and
/// provide the exact pseudo-inverse.
class SupplyModel {
 public:
  virtual ~SupplyModel() = default;

  /// Guaranteed service in any window of size t (non-decreasing).
  [[nodiscard]] virtual Time sbf(Time t) const = 0;

  /// Smallest window guaranteeing `demand` ticks of service.
  [[nodiscard]] virtual Time sbf_inverse(Time demand) const = 0;

  /// Long-run supplied fraction of the resource.
  [[nodiscard]] virtual double utilization() const = 0;

  [[nodiscard]] virtual std::string describe() const = 0;
};

using SupplyPtr = std::shared_ptr<const SupplyModel>;

/// A periodic resource Gamma = (Pi, Theta) (Shin/Lee).
class PeriodicServer final : public SupplyModel {
 public:
  PeriodicServer(Time pi, Time theta);

  [[nodiscard]] Time pi() const noexcept { return pi_; }
  [[nodiscard]] Time theta() const noexcept { return theta_; }

  [[nodiscard]] Time sbf(Time t) const override;
  [[nodiscard]] Time sbf_inverse(Time demand) const override;
  [[nodiscard]] double utilization() const noexcept override {
    return static_cast<double>(theta_) / static_cast<double>(pi_);
  }
  [[nodiscard]] std::string describe() const override;

 private:
  Time pi_;
  Time theta_;
};

/// Bounded-delay resource model (alpha, Delta), the Real-Time-Calculus
/// abstraction: after an initial service delay of at most Delta, supply
/// accrues at least at rate num/den:
///
///   sbf(t) = max(0, (t - Delta) * num / den)   (integer floor)
///
/// Any periodic server (Pi, Theta) conforms to the bounded-delay model
/// with rate Theta/Pi and Delta = 2 (Pi - Theta); the bounded-delay form
/// is coarser but composes across arbitrary server implementations.
class BoundedDelayServer final : public SupplyModel {
 public:
  /// \param delay     Delta >= 0.
  /// \param rate_num  supplied ticks per `rate_den` ticks of real time,
  ///                  0 < rate_num <= rate_den.
  BoundedDelayServer(Time delay, Time rate_num, Time rate_den);

  [[nodiscard]] Time delay() const noexcept { return delay_; }

  [[nodiscard]] Time sbf(Time t) const override;
  [[nodiscard]] Time sbf_inverse(Time demand) const override;
  [[nodiscard]] double utilization() const noexcept override {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }
  [[nodiscard]] std::string describe() const override;

  /// The bounded-delay abstraction of a periodic server.
  [[nodiscard]] static BoundedDelayServer from_periodic(const PeriodicServer& server);

 private:
  Time delay_;
  Time num_;
  Time den_;
};

/// SPP response-time analysis of a task set running inside a resource
/// server.  Identical structure to SppAnalysis but with the demand equation
/// inverted through the supply bound function.
class ServerSppAnalysis {
 public:
  ServerSppAnalysis(SupplyPtr supply, std::vector<TaskParams> tasks,
                    FixpointLimits limits = {});

  /// Convenience: run inside a periodic server.
  ServerSppAnalysis(const PeriodicServer& server, std::vector<TaskParams> tasks,
                    FixpointLimits limits = {});

  [[nodiscard]] ResponseResult analyze(std::size_t index) const;
  [[nodiscard]] std::vector<ResponseResult> analyze_all() const;

  [[nodiscard]] const SupplyModel& server() const noexcept { return *supply_; }

 private:
  SupplyPtr supply_;
  std::vector<TaskParams> tasks_;
  FixpointLimits limits_;
};

}  // namespace hem::sched
