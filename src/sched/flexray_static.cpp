#include "sched/flexray_static.hpp"

#include <algorithm>

namespace hem::sched {

FlexRayStaticAnalysis::FlexRayStaticAnalysis(std::vector<FlexRayFrame> frames, Time cycle,
                                             Time slot_length, FixpointLimits limits)
    : frames_(std::move(frames)), cycle_(cycle), slot_length_(slot_length), limits_(limits) {
  if (frames_.empty()) throw std::invalid_argument("FlexRayStaticAnalysis: no frames");
  if (cycle <= 0 || slot_length <= 0 || slot_length > cycle)
    throw std::invalid_argument("FlexRayStaticAnalysis: need 0 < slot_length <= cycle");
  for (const auto& f : frames_) {
    if (!f.params.activation)
      throw std::invalid_argument("FlexRayStaticAnalysis: frame '" + f.params.name +
                                  "' has no activation model");
    if (f.params.cet.worst > slot_length)
      throw std::invalid_argument("FlexRayStaticAnalysis: frame '" + f.params.name +
                                  "' does not fit its slot");
  }
}

ResponseResult FlexRayStaticAnalysis::analyze(std::size_t index) const {
  const FlexRayFrame& self = frames_.at(index);
  const Time c = self.params.cet.worst;

  // Busy period: one slot per cycle serves the backlog.
  const Time busy = least_fixpoint(
      [&](Time w) {
        const Count n = self.params.activation->eta_plus(w);
        if (is_infinite_count(n))
          throw AnalysisError("FlexRayStaticAnalysis: unbounded burst from '" +
                              self.params.name + "'");
        return sat_add(sat_mul(cycle_, std::max<Count>(1, n)), c);
      },
      sat_add(cycle_, c), limits_,
      "FlexRayStaticAnalysis(" + self.params.name + ") busy period");

  const Count q_max = std::max<Count>(1, self.params.activation->eta_plus(busy));

  ResponseResult res;
  res.name = self.params.name;
  res.busy_period = busy;
  res.activations = q_max;
  // Best case: the slot starts right away.
  res.bcrt = self.params.cet.best;

  std::vector<Time> completions;
  completions.reserve(static_cast<std::size_t>(q_max));
  for (Count q = 1; q <= q_max; ++q) {
    const Time completion = sat_add(sat_mul(cycle_, q), c);
    completions.push_back(completion);
    res.wcrt = std::max(res.wcrt, completion - self.params.activation->delta_min(q));
  }
  res.backlog = backlog_bound(*self.params.activation, completions);
  return res;
}

std::vector<ResponseResult> FlexRayStaticAnalysis::analyze_all() const {
  std::vector<ResponseResult> out;
  out.reserve(frames_.size());
  for (std::size_t i = 0; i < frames_.size(); ++i) out.push_back(analyze(i));
  return out;
}

}  // namespace hem::sched
