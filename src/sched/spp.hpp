#pragma once

/// \file spp.hpp
/// Static-priority preemptive (SPP) response-time analysis.
///
/// The classic CPU analysis of compositional frameworks: multi-activation
/// busy-window analysis for arbitrary activation models (not just periodic
/// tasks), supporting arbitrary deadlines (response times beyond the
/// period).  For task i with higher-priority set hp(i):
///
///   L    = lfp  L  = sum_{j in hp(i) U {i}} eta+_j(L) * C+_j
///   Q    = eta+_i(L)
///   w(q) = lfp  w  = q * C+_i + sum_{j in hp(i)} eta+_j(w) * C+_j
///   R+   = max_{q=1..Q} ( w(q) - delta-_i(q) )
///   R-   = C-_i
///
/// delta-_i(q) is the earliest arrival of the q-th activation after the
/// critical instant (delta-_i(1) = 0).

#include <vector>

#include "sched/busy_window.hpp"

namespace hem::sched {

class SppAnalysis {
 public:
  /// \param tasks  all tasks sharing the processor; priorities must be
  ///               pairwise distinct (smaller value = higher priority).
  explicit SppAnalysis(std::vector<TaskParams> tasks, FixpointLimits limits = {});

  /// Response-time analysis for the task at `index` (into the constructor
  /// task vector).
  [[nodiscard]] ResponseResult analyze(std::size_t index) const;

  /// Analyse every task; results in constructor order.
  [[nodiscard]] std::vector<ResponseResult> analyze_all() const;

  [[nodiscard]] const std::vector<TaskParams>& tasks() const noexcept { return tasks_; }

 private:
  std::vector<TaskParams> tasks_;
  FixpointLimits limits_;
};

}  // namespace hem::sched
