#pragma once

/// \file can_bus.hpp
/// CAN bus response-time analysis: static-priority non-preemptive (SPNP)
/// arbitration with blocking, after Tindell/Davis adapted to arbitrary
/// activation event models (the form used inside compositional analysis
/// tools for the paper's "Bus (CAN - scheduled)" resource).
///
/// For frame i with higher-priority set hp(i) and lower-priority set lp(i):
///
///   B_i  = max_{j in lp(i)} C+_j                    (blocking, 0 if none)
///   L    = lfp L = B_i + sum_{j in hp(i) U {i}} eta+_j(L) * C+_j
///   Q    = eta+_i(L)
///   w(q) = lfp w = B_i + (q-1) * C+_i + sum_{j in hp(i)} eta+_j(w + 1) * C+_j
///   R+   = max_{q=1..Q} ( w(q) + C+_i - delta-_i(q) )
///   R-   = C-_i
///
/// w(q) is the queueing delay of the q-th instance (start of transmission);
/// the "+1" in the interference term accounts for higher-priority frames
/// arriving at the very instant arbitration would start (integer-tick
/// equivalent of the +tau_bit in the classic analysis).

#include <vector>

#include "sched/busy_window.hpp"

namespace hem::sched {

class CanBusAnalysis {
 public:
  /// \param frames  all frames on the bus; priorities (CAN identifiers)
  ///                must be pairwise distinct, smaller = higher priority.
  explicit CanBusAnalysis(std::vector<TaskParams> frames, FixpointLimits limits = {});

  [[nodiscard]] ResponseResult analyze(std::size_t index) const;
  [[nodiscard]] std::vector<ResponseResult> analyze_all() const;

  /// Blocking time suffered by the frame at `index`.
  [[nodiscard]] Time blocking(std::size_t index) const;

  [[nodiscard]] const std::vector<TaskParams>& frames() const noexcept { return frames_; }

 private:
  std::vector<TaskParams> frames_;
  FixpointLimits limits_;
};

}  // namespace hem::sched
