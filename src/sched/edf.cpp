#include "sched/edf.hpp"

#include <algorithm>

namespace hem::sched {

EdfAnalysis::EdfAnalysis(std::vector<EdfTask> tasks, FixpointLimits limits)
    : tasks_(std::move(tasks)), limits_(limits) {
  if (tasks_.empty()) throw std::invalid_argument("EdfAnalysis: empty task set");
  for (const auto& t : tasks_) {
    if (!t.params.activation)
      throw std::invalid_argument("EdfAnalysis: task '" + t.params.name +
                                  "' has no activation model");
    if (t.deadline <= 0)
      throw std::invalid_argument("EdfAnalysis: task '" + t.params.name +
                                  "' needs a positive deadline");
  }
}

Time EdfAnalysis::demand_bound(std::size_t index, Time t) const {
  const EdfTask& task = tasks_.at(index);
  if (t < task.deadline) return 0;
  // Jobs arriving within the closed window [0, t - D] have their deadline
  // inside [0, t]; eta+(x + 1) counts arrivals in a closed window of x.
  const Count n = task.params.activation->eta_plus(t - task.deadline + 1);
  if (is_infinite_count(n))
    throw AnalysisError("EdfAnalysis: unbounded burst from '" + task.params.name + "'");
  return sat_mul(task.params.cet.worst, n);
}

Time EdfAnalysis::demand_bound(Time t) const {
  Time sum = 0;
  for (std::size_t i = 0; i < tasks_.size(); ++i) sum = sat_add(sum, demand_bound(i, t));
  return sum;
}

Time EdfAnalysis::busy_period() const {
  return least_fixpoint(
      [&](Time w) {
        Time sum = 0;
        for (const auto& t : tasks_) {
          const Count n = t.params.activation->eta_plus(w);
          if (is_infinite_count(n))
            throw AnalysisError("EdfAnalysis: unbounded burst from '" + t.params.name + "'");
          sum = sat_add(sum, sat_mul(t.params.cet.worst, n));
        }
        return std::max<Time>(sum, 1);
      },
      1, limits_, "EdfAnalysis busy period");
}

bool EdfAnalysis::schedulable() const {
  const Time horizon = busy_period();
  // Check dbf(t) <= t at every absolute deadline within the busy period:
  // t = delta-_i(q) + D_i for the q-th synchronous activation of task i.
  for (const auto& task : tasks_) {
    for (Count q = 1;; ++q) {
      const Time arrival = task.params.activation->delta_min(q);
      if (arrival >= horizon) break;
      const Time t = arrival + task.deadline;
      if (demand_bound(t) > t) return false;
    }
  }
  return true;
}

ResponseResult EdfAnalysis::analyze(std::size_t index) const {
  const EdfTask& self = tasks_.at(index);
  const Time horizon = busy_period();
  const Count q_max = std::max<Count>(1, self.params.activation->eta_plus(horizon));

  ResponseResult res;
  res.name = self.params.name;
  res.bcrt = self.params.cet.best;
  res.busy_period = horizon;
  res.activations = q_max;

  for (Count q = 1; q <= q_max; ++q) {
    // Spuri-style offset scan: the deadline busy period may start x ticks
    // BEFORE the first job of the analysed task arrives, admitting more
    // same-or-earlier-deadline interference.  The response as a function of
    // x is piecewise and peaks exactly where our job's absolute deadline
    // aligns with another task's job deadline, so scanning those alignment
    // candidates (plus x = 0) is exhaustive.
    std::vector<Time> candidates{0};
    for (std::size_t j = 0; j < tasks_.size(); ++j) {
      if (j == index) continue;
      const auto& other = tasks_[j];
      const Count kj = other.params.activation->eta_plus(horizon);
      for (Count k = 1; k <= kj; ++k) {
        const Time x = other.params.activation->delta_min(k) + other.deadline -
                       self.deadline - self.params.activation->delta_min(q);
        if (x > 0 && x <= horizon) candidates.push_back(x);
      }
    }

    for (const Time x : candidates) {
      const Time arrival = x + self.params.activation->delta_min(q);
      const Time deadline_abs = arrival + self.deadline;
      // Interference: jobs of other tasks arriving in the busy window with
      // absolute deadline <= ours.
      const auto interference = [&](Time w) {
        Time sum = 0;
        for (std::size_t j = 0; j < tasks_.size(); ++j) {
          if (j == index) continue;
          const auto& other = tasks_[j];
          const Time dl_window = deadline_abs - other.deadline + 1;
          if (dl_window <= 0) continue;
          const Count by_deadline = other.params.activation->eta_plus(dl_window);
          const Count by_arrival = other.params.activation->eta_plus(sat_add(w, 1));
          if (is_infinite_count(by_deadline) || is_infinite_count(by_arrival))
            throw AnalysisError("EdfAnalysis: unbounded burst from '" + other.params.name +
                                "'");
          sum =
              sat_add(sum, sat_mul(other.params.cet.worst, std::min(by_deadline, by_arrival)));
        }
        return sum;
      };
      const Time w = least_fixpoint(
          [&](Time w_cur) {
            return sat_add(sat_mul(self.params.cet.worst, q), interference(w_cur));
          },
          sat_mul(self.params.cet.worst, q), limits_,
          "EdfAnalysis(" + self.params.name + ") q=" + std::to_string(q));
      if (w <= arrival) continue;  // busy period ends before our job arrives: infeasible x
      res.wcrt = std::max(res.wcrt, w - arrival);
    }
  }
  return res;
}

std::vector<ResponseResult> EdfAnalysis::analyze_all() const {
  std::vector<ResponseResult> out;
  out.reserve(tasks_.size());
  for (std::size_t i = 0; i < tasks_.size(); ++i) out.push_back(analyze(i));
  return out;
}

}  // namespace hem::sched
