#pragma once

/// \file busy_window.hpp
/// Shared types and fixpoint machinery for busy-window local analyses
/// (Lehoczky's technique, as used at the component level of compositional
/// scheduling analysis).
///
/// All local analyses in this library follow the same scheme: determine the
/// length L of the maximal level-i busy period, the number Q of activations
/// of the task under analysis inside it, compute per-activation completion
/// times w(q) as least fixpoints of a demand equation, and report
///
///     R+ = max_{q in 1..Q} ( w(q) - delta-(q) )
///
/// where delta-(q) is the earliest arrival of the q-th activation relative
/// to the critical instant.

#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include "core/event_model.hpp"
#include "core/errors.hpp"
#include "exec/cancel.hpp"

namespace hem::sched {

/// Best-case / worst-case execution (or transmission) time interval [C-, C+].
struct ExecutionTime {
  Time best;
  Time worst;

  ExecutionTime(Time b, Time w) : best(b), worst(w) {
    if (b < 0 || w < b) throw std::invalid_argument("ExecutionTime: need 0 <= C- <= C+");
  }
  /// Deterministic execution time [c, c].
  explicit ExecutionTime(Time c) : ExecutionTime(c, c) {}
};

/// A task (or bus frame) as seen by a local analysis.
struct TaskParams {
  std::string name;
  int priority;  ///< numerically smaller value = higher priority
  ExecutionTime cet;
  ModelPtr activation;  ///< activation event model (outer stream for HEMs)
};

/// Result of a local response-time analysis for one task.
struct ResponseResult {
  std::string name;
  Time bcrt = 0;         ///< best-case response time r-
  Time wcrt = 0;         ///< worst-case response time r+
  Count activations = 0; ///< activations examined in the busy period
  Time busy_period = 0;  ///< length of the maximal level-i busy period
  Count backlog = 0;     ///< max simultaneously pending activations (buffer bound)
};

/// Maximum number of simultaneously pending activations within a busy
/// period, given the earliest arrival curve and the per-activation
/// completion times w(1..Q): when the q-th activation arrives at
/// delta-(q), exactly those p with w(p) <= delta-(q) have completed.
/// Sizing the activation queue to this bound guarantees no overflow.
[[nodiscard]] Count backlog_bound(const EventModel& activation,
                                  const std::vector<Time>& completion_times);

/// Iteration limits for all fixpoint computations.  A busy window that grows
/// beyond `max_window` or needs more than `max_iterations` steps indicates
/// an overloaded resource; the analyses then throw AnalysisError.
struct FixpointLimits {
  /// Busy windows beyond this length indicate an overloaded resource in any
  /// realistic tick granularity; keeping the cap moderate also bounds the
  /// memory of lazily materialised output-stream recursions during
  /// divergence.  Raise it for very fine-grained tick units.
  Time max_window = Time{1} << 28;
  long max_iterations = 1'000'000;
  /// Wall-clock deadline shared by every fixpoint computation of one
  /// analysis run (the global engine derives it from its own budget).
  /// Checked coarsely (every few thousand steps); exceeding it throws
  /// AnalysisError with ErrorCode::kTimeBudget.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  /// Optional cooperative cancellation token, polled at the same coarse
  /// checkpoints as the deadline.  When it fires, the fixpoint throws
  /// AnalysisError with ErrorCode::kCancelled — which graceful mode does
  /// NOT degrade away (the engine rethrows it).  Not owned.
  const exec::CancelToken* cancel = nullptr;
};

/// Least fixpoint of the monotone demand function `f`, starting from
/// `start`:  w_{k+1} = f(w_k) until w stabilises.
/// \throws AnalysisError when limits are exceeded.
[[nodiscard]] Time least_fixpoint(const std::function<Time(Time)>& f, Time start,
                                  const FixpointLimits& limits, const std::string& what);

/// Validate a task set for priority-based analyses: non-empty names,
/// pairwise distinct priorities, non-null activation models.
void validate_priority_task_set(const std::vector<TaskParams>& tasks, const std::string& what);

}  // namespace hem::sched
