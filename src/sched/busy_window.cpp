#include "sched/busy_window.hpp"

#include <algorithm>
#include <set>

#include "obs/obs.hpp"

namespace hem::sched {

namespace {

// Fixpoint probes: one least_fixpoint call per busy-window / completion-time
// candidate, so `candidates` counts the w(q) evaluations of a run and the
// histogram shows how many demand-function steps each needed.
obs::Counter& g_fixpoint_candidates = obs::registry().counter("sched.busy_window.candidates");
obs::Counter& g_fixpoint_steps = obs::registry().counter("sched.busy_window.fixpoint_steps");
obs::Histogram& g_fixpoint_hist =
    obs::registry().histogram("sched.busy_window.steps_per_fixpoint");

}  // namespace

Time least_fixpoint(const std::function<Time(Time)>& f, Time start, const FixpointLimits& limits,
                    const std::string& what) {
  const bool bounded_clock =
      limits.deadline != std::chrono::steady_clock::time_point::max();
  Time w = start;
  for (long it = 0; it < limits.max_iterations; ++it) {
    if ((it & 4095) == 0) {
      if (limits.cancel != nullptr && limits.cancel->cancelled())
        throw AnalysisError(what + ": cancelled (" +
                                std::string(exec::to_string(limits.cancel->reason())) +
                                ") after " + std::to_string(it) + " fixpoint steps",
                            ErrorCode::kCancelled);
      if (bounded_clock && std::chrono::steady_clock::now() >= limits.deadline)
        throw AnalysisError(what + ": wall-clock budget exhausted after " + std::to_string(it) +
                                " fixpoint steps",
                            ErrorCode::kTimeBudget);
    }
    const Time next = f(w);
    if (next < w)
      throw AnalysisError(what + ": demand function is not monotone (internal error)");
    if (next == w) {
      if (obs::counting()) {
        g_fixpoint_candidates.add(1);
        g_fixpoint_steps.add(it + 1);
        g_fixpoint_hist.record(it + 1);
      }
      return w;
    }
    if (next > limits.max_window)
      throw AnalysisError(what + ": busy window exceeds limit (" +
                              std::to_string(limits.max_window) +
                              " ticks) - resource overloaded?",
                          ErrorCode::kWindowLimit);
    w = next;
  }
  throw AnalysisError(what + ": fixpoint iteration did not converge within " +
                          std::to_string(limits.max_iterations) + " steps",
                      ErrorCode::kIterationLimit);
}

Count backlog_bound(const EventModel& activation, const std::vector<Time>& completion_times) {
  Count worst = 0;
  for (Count q = 1; q <= static_cast<Count>(completion_times.size()); ++q) {
    const Time arrival = activation.delta_min(q);
    Count completed = 0;
    for (const Time w : completion_times) {
      if (w <= arrival) ++completed;
    }
    worst = std::max(worst, q - completed);
  }
  return worst;
}

void validate_priority_task_set(const std::vector<TaskParams>& tasks, const std::string& what) {
  if (tasks.empty()) throw std::invalid_argument(what + ": empty task set");
  std::set<int> prios;
  for (const auto& t : tasks) {
    if (t.name.empty()) throw std::invalid_argument(what + ": task with empty name");
    if (!t.activation)
      throw std::invalid_argument(what + ": task '" + t.name + "' has no activation model");
    if (!prios.insert(t.priority).second)
      throw std::invalid_argument(what + ": duplicate priority " + std::to_string(t.priority) +
                                  " (task '" + t.name + "')");
  }
}

}  // namespace hem::sched
