#pragma once

/// \file flexray_static.hpp
/// FlexRay static-segment analysis: every frame owns one static slot per
/// communication cycle, giving full temporal isolation between frames
/// (like TDMA) but at most ONE transmission per cycle per frame.
///
/// Worst case for the q-th queued instance of a frame: the triggering
/// event just misses the frame's slot, waits out the rest of the cycle,
/// and q - 1 earlier instances each consume one slot:
///
///   completion(q) = q * cycle + C
///   R+            = max_q ( completion(q) - delta-(q) )
///
/// The busy period (backlog drain horizon) is the least fixpoint of
/// L = eta+(L) * cycle + C.  Frames whose long-run activation rate exceeds
/// one per cycle are unschedulable (AnalysisError).

#include <vector>

#include "sched/busy_window.hpp"

namespace hem::sched {

/// A frame in the static segment.  `params.priority` is unused (slots
/// isolate); `params.cet` is the transmission time within the slot.
struct FlexRayFrame {
  TaskParams params;
};

class FlexRayStaticAnalysis {
 public:
  /// \param cycle        communication cycle length.
  /// \param slot_length  static slot length; every frame's C+ must fit.
  FlexRayStaticAnalysis(std::vector<FlexRayFrame> frames, Time cycle, Time slot_length,
                        FixpointLimits limits = {});

  [[nodiscard]] ResponseResult analyze(std::size_t index) const;
  [[nodiscard]] std::vector<ResponseResult> analyze_all() const;

  [[nodiscard]] Time cycle() const noexcept { return cycle_; }

 private:
  std::vector<FlexRayFrame> frames_;
  Time cycle_;
  Time slot_length_;
  FixpointLimits limits_;
};

}  // namespace hem::sched
