#pragma once

/// \file tdma.hpp
/// TDMA response-time analysis.
///
/// Each task owns an exclusive slot of size theta_i in a cycle of size c
/// (sum of all slots <= c; unassigned remainder is idle or used by others).
/// TDMA isolates tasks completely: the analysis of task i only needs its
/// own demand and the worst-case slot alignment.  The guaranteed service in
/// any interval dt (lower service curve) is
///
///   beta(dt) = k * theta + min(theta, max(0, rem - (c - theta)))
///      with dt' = max(0, dt - (c - theta)),  k = floor(dt' / c),
///           rem = dt' - k*c
///
/// i.e. the task may have just missed its slot.  Completion of the q-th
/// activation is the smallest t with beta(t) >= q * C+.

#include <vector>

#include "sched/busy_window.hpp"

namespace hem::sched {

/// A task under TDMA arbitration.
struct TdmaTask {
  TaskParams params;
  Time slot;  ///< exclusive slot length theta_i > 0
};

class TdmaAnalysis {
 public:
  /// \param cycle  TDMA cycle length; must be >= the sum of all slots.
  TdmaAnalysis(std::vector<TdmaTask> tasks, Time cycle, FixpointLimits limits = {});

  [[nodiscard]] ResponseResult analyze(std::size_t index) const;
  [[nodiscard]] std::vector<ResponseResult> analyze_all() const;

  /// Guaranteed service for the task at `index` in any window of size dt.
  [[nodiscard]] Time service(std::size_t index, Time dt) const;

  /// Smallest window guaranteeing `demand` ticks of service for `index`.
  [[nodiscard]] Time service_inverse(std::size_t index, Time demand) const;

 private:
  std::vector<TdmaTask> tasks_;
  Time cycle_;
  FixpointLimits limits_;
};

}  // namespace hem::sched
