#pragma once

/// \file priority_assignment.hpp
/// Audsley's Optimal Priority Assignment (OPA) over the library's local
/// analyses: find static priorities such that every task meets its
/// deadline, if any such assignment exists.
///
/// OPA assigns the LOWEST free priority level to any task that is
/// schedulable at that level (with all still-unassigned tasks above it)
/// and recurses.  It is optimal for analyses where a task's response time
/// depends only on the SET of higher-priority tasks (not their relative
/// order) and does not improve when the task is raised - true for the
/// preemptive SPP analysis and for the CAN (SPNP) analysis with blocking.

#include <optional>
#include <vector>

#include "sched/busy_window.hpp"

namespace hem::sched {

/// A task to be placed: parameters (priority field ignored) + deadline.
struct OpaTask {
  TaskParams params;
  Time deadline;
};

/// Scheduling model the assignment is computed for.
enum class OpaPolicy { kSppPreemptive, kSpnpCan };

/// Compute a feasible priority assignment.
/// \return priorities aligned with the input order (1 = highest), or
///         std::nullopt if no static-priority assignment is feasible under
///         the chosen analysis.
[[nodiscard]] std::optional<std::vector<int>> assign_priorities_opa(
    const std::vector<OpaTask>& tasks, OpaPolicy policy = OpaPolicy::kSppPreemptive,
    FixpointLimits limits = {});

/// Deadline-monotonic assignment (optimal for constrained deadlines under
/// preemptive SPP without jitter; cheap heuristic otherwise).
/// \return priorities aligned with the input order (1 = highest).
[[nodiscard]] std::vector<int> assign_priorities_dm(const std::vector<OpaTask>& tasks);

}  // namespace hem::sched
