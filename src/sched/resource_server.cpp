#include "sched/resource_server.hpp"

#include <algorithm>

namespace hem::sched {

PeriodicServer::PeriodicServer(Time pi, Time theta) : pi_(pi), theta_(theta) {
  if (pi <= 0) throw std::invalid_argument("PeriodicServer: Pi must be positive");
  if (theta <= 0 || theta > pi)
    throw std::invalid_argument("PeriodicServer: need 0 < Theta <= Pi");
}

Time PeriodicServer::sbf(Time t) const {
  const Time gap = pi_ - theta_;
  const Time tp = t - gap;
  if (tp <= 0) return 0;
  const Time k = tp / pi_;
  const Time rem = tp - k * pi_;
  return k * theta_ + std::max<Time>(0, rem - gap);
}

Time PeriodicServer::sbf_inverse(Time demand) const {
  if (demand <= 0) return 0;
  const Time gap = pi_ - theta_;
  // demand = k * Theta + rem with rem in (0, Theta].
  const Time k = (demand - 1) / theta_;
  const Time rem = demand - k * theta_;
  // Initial blackout gap, k whole periods, another gap inside the period,
  // then rem ticks of supply.
  return gap + k * pi_ + gap + rem;
}

BoundedDelayServer::BoundedDelayServer(Time delay, Time rate_num, Time rate_den)
    : delay_(delay), num_(rate_num), den_(rate_den) {
  if (delay < 0) throw std::invalid_argument("BoundedDelayServer: negative delay");
  if (rate_num <= 0 || rate_den <= 0 || rate_num > rate_den)
    throw std::invalid_argument("BoundedDelayServer: need 0 < rate <= 1");
}

Time BoundedDelayServer::sbf(Time t) const {
  if (t <= delay_) return 0;
  return (t - delay_) * num_ / den_;
}

Time BoundedDelayServer::sbf_inverse(Time demand) const {
  if (demand <= 0) return 0;
  // Smallest t with (t - delay) * num / den >= demand.
  return delay_ + ceil_div(demand * den_, num_);
}

std::string BoundedDelayServer::describe() const {
  return "BoundedDelay(Delta=" + std::to_string(delay_) + ", rate=" + std::to_string(num_) +
         "/" + std::to_string(den_) + ")";
}

BoundedDelayServer BoundedDelayServer::from_periodic(const PeriodicServer& server) {
  return BoundedDelayServer(2 * (server.pi() - server.theta()), server.theta(), server.pi());
}

std::string PeriodicServer::describe() const {
  return "PeriodicServer(Pi=" + std::to_string(pi_) + ", Theta=" + std::to_string(theta_) + ")";
}

ServerSppAnalysis::ServerSppAnalysis(SupplyPtr supply, std::vector<TaskParams> tasks,
                                     FixpointLimits limits)
    : supply_(std::move(supply)), tasks_(std::move(tasks)), limits_(limits) {
  if (!supply_) throw std::invalid_argument("ServerSppAnalysis: null supply model");
  validate_priority_task_set(tasks_, "ServerSppAnalysis");
}

ServerSppAnalysis::ServerSppAnalysis(const PeriodicServer& server,
                                     std::vector<TaskParams> tasks, FixpointLimits limits)
    : ServerSppAnalysis(std::make_shared<PeriodicServer>(server), std::move(tasks), limits) {}

ResponseResult ServerSppAnalysis::analyze(std::size_t index) const {
  const TaskParams& self = tasks_.at(index);
  std::vector<const TaskParams*> hp;
  for (const auto& t : tasks_)
    if (t.priority < self.priority) hp.push_back(&t);

  // Closed-window interference (+1), matching the SPP convention.
  const auto demand = [&](Time w, Count q) {
    Time sum = sat_mul(self.cet.worst, q);
    for (const TaskParams* j : hp) {
      const Count n = j->activation->eta_plus(sat_add(w, 1));
      if (is_infinite_count(n))
        throw AnalysisError("ServerSppAnalysis: unbounded burst from '" + j->name + "'");
      sum = sat_add(sum, sat_mul(j->cet.worst, n));
    }
    return sum;
  };

  // Busy period in physical time: smallest t with sbf(t) >= level-i demand.
  const Time busy = least_fixpoint(
      [&](Time w) {
        const Count own = self.activation->eta_plus(w);
        if (is_infinite_count(own))
          throw AnalysisError("ServerSppAnalysis: unbounded burst from '" + self.name + "'");
        return supply_->sbf_inverse(demand(w, std::max<Count>(1, own)));
      },
      supply_->sbf_inverse(self.cet.worst), limits_,
      "ServerSppAnalysis(" + self.name + ") busy period");

  const Count q_max = std::max<Count>(1, self.activation->eta_plus(busy));

  ResponseResult res;
  res.name = self.name;
  res.busy_period = busy;
  res.activations = q_max;
  // Best case: full supply available immediately and no interference.
  res.bcrt = self.cet.best;

  Time w_prev = 0;
  for (Count q = 1; q <= q_max; ++q) {
    const Time w = least_fixpoint(
        [&](Time w_cur) { return supply_->sbf_inverse(demand(w_cur, q)); },
        std::max(w_prev, supply_->sbf_inverse(sat_mul(self.cet.worst, q))), limits_,
        "ServerSppAnalysis(" + self.name + ") q=" + std::to_string(q));
    w_prev = w;
    res.wcrt = std::max(res.wcrt, w - self.activation->delta_min(q));
  }
  return res;
}

std::vector<ResponseResult> ServerSppAnalysis::analyze_all() const {
  std::vector<ResponseResult> out;
  out.reserve(tasks_.size());
  for (std::size_t i = 0; i < tasks_.size(); ++i) out.push_back(analyze(i));
  return out;
}

}  // namespace hem::sched
