#include "sched/can_bus.hpp"

#include <algorithm>

namespace hem::sched {

CanBusAnalysis::CanBusAnalysis(std::vector<TaskParams> frames, FixpointLimits limits)
    : frames_(std::move(frames)), limits_(limits) {
  validate_priority_task_set(frames_, "CanBusAnalysis");
}

Time CanBusAnalysis::blocking(std::size_t index) const {
  const TaskParams& self = frames_.at(index);
  Time b = 0;
  for (const auto& f : frames_)
    if (f.priority > self.priority) b = std::max(b, f.cet.worst);
  return b;
}

ResponseResult CanBusAnalysis::analyze(std::size_t index) const {
  const TaskParams& self = frames_.at(index);
  std::vector<const TaskParams*> hp;
  for (const auto& f : frames_)
    if (f.priority < self.priority) hp.push_back(&f);
  const Time block = blocking(index);

  const auto interference = [&](Time w) {
    Time sum = 0;
    for (const TaskParams* j : hp) {
      const Count n = j->activation->eta_plus(sat_add(w, 1));
      if (is_infinite_count(n))
        throw AnalysisError("CanBusAnalysis: unbounded burst from '" + j->name + "'");
      sum = sat_add(sum, sat_mul(j->cet.worst, n));
    }
    return sum;
  };

  const Time busy = least_fixpoint(
      [&](Time w) {
        const Count own = self.activation->eta_plus(w);
        if (is_infinite_count(own))
          throw AnalysisError("CanBusAnalysis: unbounded burst from '" + self.name + "'");
        return sat_add(block, sat_add(sat_mul(self.cet.worst, own), interference(w)));
      },
      sat_add(block, self.cet.worst), limits_, "CanBusAnalysis(" + self.name + ") busy period");

  const Count q_max = std::max<Count>(1, self.activation->eta_plus(busy));

  ResponseResult res;
  res.name = self.name;
  res.bcrt = self.cet.best;
  res.busy_period = busy;
  res.activations = q_max;

  Time w_prev = 0;
  std::vector<Time> completions;
  completions.reserve(static_cast<std::size_t>(q_max));
  for (Count q = 1; q <= q_max; ++q) {
    const Time base = sat_add(block, sat_mul(self.cet.worst, q - 1));
    const Time w = least_fixpoint(
        [&](Time w_cur) { return sat_add(base, interference(w_cur)); }, std::max(w_prev, base),
        limits_, "CanBusAnalysis(" + self.name + ") q=" + std::to_string(q));
    w_prev = w;
    completions.push_back(w + self.cet.worst);
    const Time response = w + self.cet.worst - self.activation->delta_min(q);
    res.wcrt = std::max(res.wcrt, response);
  }
  res.backlog = backlog_bound(*self.activation, completions);
  return res;
}

std::vector<ResponseResult> CanBusAnalysis::analyze_all() const {
  std::vector<ResponseResult> out;
  out.reserve(frames_.size());
  for (std::size_t i = 0; i < frames_.size(); ++i) out.push_back(analyze(i));
  return out;
}

}  // namespace hem::sched
