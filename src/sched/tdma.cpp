#include "sched/tdma.hpp"

#include <algorithm>
#include <numeric>

namespace hem::sched {

TdmaAnalysis::TdmaAnalysis(std::vector<TdmaTask> tasks, Time cycle, FixpointLimits limits)
    : tasks_(std::move(tasks)), cycle_(cycle), limits_(limits) {
  if (tasks_.empty()) throw std::invalid_argument("TdmaAnalysis: empty task set");
  Time total = 0;
  for (const auto& t : tasks_) {
    if (!t.params.activation)
      throw std::invalid_argument("TdmaAnalysis: task '" + t.params.name +
                                  "' has no activation model");
    if (t.slot <= 0)
      throw std::invalid_argument("TdmaAnalysis: task '" + t.params.name +
                                  "' needs a positive slot");
    total = sat_add(total, t.slot);
  }
  if (cycle_ < total)
    throw std::invalid_argument("TdmaAnalysis: slots exceed the cycle length");
}

Time TdmaAnalysis::service(std::size_t index, Time dt) const {
  // Worst-case alignment: the window opens exactly when the slot closes, so
  // the supply pattern seen is (gap, slot, gap, slot, ...).
  if (dt <= 0) return 0;
  const Time theta = tasks_.at(index).slot;
  const Time gap = cycle_ - theta;
  const Time k = dt / cycle_;
  const Time rem = dt - k * cycle_;
  return k * theta + std::min(theta, std::max<Time>(0, rem - gap));
}

Time TdmaAnalysis::service_inverse(std::size_t index, Time demand) const {
  if (demand <= 0) return 0;
  const Time theta = tasks_.at(index).slot;
  const Time gap = cycle_ - theta;
  // demand = k full slots + rem with rem in (0, theta]: k whole cycles plus
  // the initial gap plus rem ticks into the (k+1)-th slot.
  const Time k = (demand - 1) / theta;
  const Time rem = demand - k * theta;
  return k * cycle_ + gap + rem;
}

ResponseResult TdmaAnalysis::analyze(std::size_t index) const {
  const TdmaTask& self = tasks_.at(index);
  const Time c = self.params.cet.worst;

  // Busy period: smallest t with service(t) >= demand(t).
  const Time busy = least_fixpoint(
      [&](Time w) {
        const Count own = self.params.activation->eta_plus(w);
        if (is_infinite_count(own))
          throw AnalysisError("TdmaAnalysis: unbounded burst from '" + self.params.name + "'");
        return service_inverse(index, sat_mul(c, std::max<Count>(1, own)));
      },
      service_inverse(index, c), limits_, "TdmaAnalysis(" + self.params.name + ") busy period");

  const Count q_max = std::max<Count>(1, self.params.activation->eta_plus(busy));

  ResponseResult res;
  res.name = self.params.name;
  res.busy_period = busy;
  res.activations = q_max;
  // Best case: the slot is immediately available and the demand fits into
  // consecutive slots with no waiting beyond mandatory gaps.
  const Time cb = self.params.cet.best;
  const Time kb = cb > 0 ? (cb - 1) / self.slot : 0;
  res.bcrt = cb + kb * (cycle_ - self.slot);

  for (Count q = 1; q <= q_max; ++q) {
    const Time completion = service_inverse(index, sat_mul(c, q));
    res.wcrt = std::max(res.wcrt, completion - self.params.activation->delta_min(q));
  }
  return res;
}

std::vector<ResponseResult> TdmaAnalysis::analyze_all() const {
  std::vector<ResponseResult> out;
  out.reserve(tasks_.size());
  for (std::size_t i = 0; i < tasks_.size(); ++i) out.push_back(analyze(i));
  return out;
}

}  // namespace hem::sched
