#pragma once

/// \file edf.hpp
/// Earliest-Deadline-First schedulability and response-time analysis via
/// demand bound functions (the analysis style Gresser's event-vector work
/// introduced - cited as [4] in the paper's related work).
///
/// For a task i with relative deadline D_i activated by an event model,
/// the demand bound function on an interval of size t is the execution
/// demand of all activations that both arrive and have their deadline
/// inside the interval:
///
///   dbf_i(t) = eta+_i(t - D_i + 1) * C+_i          (t >= D_i, else 0)
///
/// (with the library's strict-inequality eta+ semantics, eta+(x + 1)
/// counts events within a closed window of length x).  The task set is
/// EDF-schedulable iff  sum_i dbf_i(t) <= t  for all t up to the busy
/// period.  Worst-case response times follow Spuri's analysis generalised
/// to event models: the deadline busy period may start before the analysed
/// job's arrival, so responses are maximised over an offset scan whose
/// candidates are the alignments of the job's absolute deadline with other
/// tasks' job deadlines (the response is piecewise between alignments).
/// The offset scan is validated against a preemptive EDF simulator in
/// tests/sim/edf_cpu_sim_test.cpp - the synchronous-only variant is
/// demonstrably unsound there.

#include <vector>

#include "sched/busy_window.hpp"

namespace hem::sched {

/// A task under EDF: base parameters (priority ignored) plus its relative
/// deadline.
struct EdfTask {
  TaskParams params;
  Time deadline;  ///< relative deadline D_i > 0
};

class EdfAnalysis {
 public:
  explicit EdfAnalysis(std::vector<EdfTask> tasks, FixpointLimits limits = {});

  /// Total demand bound of the task set on an interval of size t.
  [[nodiscard]] Time demand_bound(Time t) const;

  /// Demand bound of one task on an interval of size t.
  [[nodiscard]] Time demand_bound(std::size_t index, Time t) const;

  /// Length of the synchronous busy period (the horizon that must be
  /// checked).
  [[nodiscard]] Time busy_period() const;

  /// True iff dbf(t) <= t for every t in the busy period.
  [[nodiscard]] bool schedulable() const;

  /// Worst-case response time of the task at `index` (Spuri-style search
  /// over deadline-ordered busy periods).
  /// \throws AnalysisError if the task set is not schedulable.
  [[nodiscard]] ResponseResult analyze(std::size_t index) const;
  [[nodiscard]] std::vector<ResponseResult> analyze_all() const;

 private:
  std::vector<EdfTask> tasks_;
  FixpointLimits limits_;
};

}  // namespace hem::sched
