#include "sched/priority_assignment.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "sched/can_bus.hpp"
#include "sched/spp.hpp"

namespace hem::sched {

namespace {

/// Response time of `candidate` when it sits at the lowest priority among
/// `unassigned`, with `assigned_below` strictly below it (relevant for CAN
/// blocking only).
Time response_at_level(const std::vector<OpaTask>& tasks, std::size_t candidate,
                       const std::vector<std::size_t>& unassigned,
                       const std::vector<std::size_t>& assigned_below, OpaPolicy policy,
                       const FixpointLimits& limits) {
  std::vector<TaskParams> params;
  std::size_t candidate_pos = 0;
  int prio = 1;
  for (const std::size_t i : unassigned) {
    TaskParams p = tasks[i].params;
    if (i == candidate) {
      p.priority = 1000;  // lowest among the unassigned
      candidate_pos = params.size();
    } else {
      p.priority = prio++;
    }
    params.push_back(std::move(p));
  }
  // Already-assigned tasks sit strictly below; they only matter through
  // non-preemptive blocking.
  int below = 2000;
  for (const std::size_t i : assigned_below) {
    TaskParams p = tasks[i].params;
    p.priority = below++;
    params.push_back(std::move(p));
  }

  if (policy == OpaPolicy::kSppPreemptive) {
    return SppAnalysis(std::move(params), limits).analyze(candidate_pos).wcrt;
  }
  return CanBusAnalysis(std::move(params), limits).analyze(candidate_pos).wcrt;
}

}  // namespace

std::optional<std::vector<int>> assign_priorities_opa(const std::vector<OpaTask>& tasks,
                                                      OpaPolicy policy,
                                                      FixpointLimits limits) {
  if (tasks.empty()) throw std::invalid_argument("assign_priorities_opa: empty task set");
  for (const auto& t : tasks) {
    if (!t.params.activation)
      throw std::invalid_argument("assign_priorities_opa: task '" + t.params.name +
                                  "' has no activation model");
    if (t.deadline <= 0)
      throw std::invalid_argument("assign_priorities_opa: task '" + t.params.name +
                                  "' needs a positive deadline");
  }

  std::vector<std::size_t> unassigned(tasks.size());
  std::iota(unassigned.begin(), unassigned.end(), 0);
  std::vector<std::size_t> assigned_below;
  std::vector<int> result(tasks.size(), 0);

  for (int level = static_cast<int>(tasks.size()); level >= 1; --level) {
    bool placed = false;
    for (std::size_t pos = 0; pos < unassigned.size(); ++pos) {
      const std::size_t candidate = unassigned[pos];
      Time wcrt;
      try {
        wcrt = response_at_level(tasks, candidate, unassigned, assigned_below, policy, limits);
      } catch (const AnalysisError&) {
        continue;  // diverges at this level; try another candidate
      }
      if (wcrt <= tasks[candidate].deadline) {
        result[candidate] = level;
        assigned_below.push_back(candidate);
        unassigned.erase(unassigned.begin() + static_cast<std::ptrdiff_t>(pos));
        placed = true;
        break;
      }
    }
    if (!placed) return std::nullopt;  // no task schedulable at this level
  }
  return result;
}

std::vector<int> assign_priorities_dm(const std::vector<OpaTask>& tasks) {
  if (tasks.empty()) throw std::invalid_argument("assign_priorities_dm: empty task set");
  std::vector<std::size_t> order(tasks.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return tasks[a].deadline < tasks[b].deadline;
  });
  std::vector<int> result(tasks.size(), 0);
  for (std::size_t rank = 0; rank < order.size(); ++rank)
    result[order[rank]] = static_cast<int>(rank) + 1;
  return result;
}

}  // namespace hem::sched
