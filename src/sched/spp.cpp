#include "sched/spp.hpp"

#include <algorithm>

namespace hem::sched {

SppAnalysis::SppAnalysis(std::vector<TaskParams> tasks, FixpointLimits limits)
    : tasks_(std::move(tasks)), limits_(limits) {
  validate_priority_task_set(tasks_, "SppAnalysis");
}

ResponseResult SppAnalysis::analyze(std::size_t index) const {
  const TaskParams& self = tasks_.at(index);
  std::vector<const TaskParams*> hp;
  for (const auto& t : tasks_)
    if (t.priority < self.priority) hp.push_back(&t);

  // Interference counts arrivals in the CLOSED window [0, w]: a
  // higher-priority job released at the very completion instant still
  // preempts under tie-breaking-by-priority semantics (eta+ uses strict
  // inequalities, hence the +1).
  const auto interference = [&](Time w) {
    Time sum = 0;
    for (const TaskParams* j : hp) {
      const Count n = j->activation->eta_plus(sat_add(w, 1));
      if (is_infinite_count(n))
        throw AnalysisError("SppAnalysis: unbounded burst from '" + j->name + "'");
      sum = sat_add(sum, sat_mul(j->cet.worst, n));
    }
    return sum;
  };

  // Maximal level-i busy period.
  const Time busy = least_fixpoint(
      [&](Time w) {
        const Count own = self.activation->eta_plus(w);
        if (is_infinite_count(own))
          throw AnalysisError("SppAnalysis: unbounded burst from '" + self.name + "'");
        return sat_add(sat_mul(self.cet.worst, own), interference(w));
      },
      self.cet.worst, limits_, "SppAnalysis(" + self.name + ") busy period");

  const Count q_max = std::max<Count>(1, self.activation->eta_plus(busy));

  ResponseResult res;
  res.name = self.name;
  res.bcrt = self.cet.best;
  res.busy_period = busy;
  res.activations = q_max;

  Time w_prev = 0;
  std::vector<Time> completions;
  completions.reserve(static_cast<std::size_t>(q_max));
  for (Count q = 1; q <= q_max; ++q) {
    const Time w = least_fixpoint(
        [&](Time w_cur) { return sat_add(sat_mul(self.cet.worst, q), interference(w_cur)); },
        std::max(w_prev, sat_mul(self.cet.worst, q)), limits_,
        "SppAnalysis(" + self.name + ") q=" + std::to_string(q));
    w_prev = w;
    completions.push_back(w);
    const Time response = w - self.activation->delta_min(q);
    res.wcrt = std::max(res.wcrt, response);
  }
  res.backlog = backlog_bound(*self.activation, completions);
  return res;
}

std::vector<ResponseResult> SppAnalysis::analyze_all() const {
  std::vector<ResponseResult> out;
  out.reserve(tasks_.size());
  for (std::size_t i = 0; i < tasks_.size(); ++i) out.push_back(analyze(i));
  return out;
}

}  // namespace hem::sched
