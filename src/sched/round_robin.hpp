#pragma once

/// \file round_robin.hpp
/// Round-robin response-time analysis (conservative CPA-style bound).
///
/// Each task owns a slot of size theta_i per round.  While the task under
/// analysis still has pending demand, every other task can consume per round
/// at most its slot - and never more than its total pending demand.  For q
/// activations of task i:
///
///   w(q) = lfp w = q*C+_i + sum_{j != i} min( eta+_j(w)*C+_j,
///                                             rounds_i(q) * theta_j )
///   rounds_i(q) = ceil( q*C+_i / theta_i )
///   R+   = max_q ( w(q) - delta-_i(q) )
///
/// This is the classic conservative round-robin bound used in compositional
/// tools; it never claims more interference than either the other task's
/// own demand bound or its slot allowance.

#include <vector>

#include "sched/busy_window.hpp"

namespace hem::sched {

/// A task under round-robin arbitration: the base parameters plus its slot.
struct RoundRobinTask {
  TaskParams params;
  Time slot;  ///< theta_i > 0, service granted per round
};

class RoundRobinAnalysis {
 public:
  explicit RoundRobinAnalysis(std::vector<RoundRobinTask> tasks, FixpointLimits limits = {});

  [[nodiscard]] ResponseResult analyze(std::size_t index) const;
  [[nodiscard]] std::vector<ResponseResult> analyze_all() const;

 private:
  std::vector<RoundRobinTask> tasks_;
  FixpointLimits limits_;
};

}  // namespace hem::sched
