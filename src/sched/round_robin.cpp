#include "sched/round_robin.hpp"

#include <algorithm>

namespace hem::sched {

RoundRobinAnalysis::RoundRobinAnalysis(std::vector<RoundRobinTask> tasks, FixpointLimits limits)
    : tasks_(std::move(tasks)), limits_(limits) {
  if (tasks_.empty()) throw std::invalid_argument("RoundRobinAnalysis: empty task set");
  for (const auto& t : tasks_) {
    if (!t.params.activation)
      throw std::invalid_argument("RoundRobinAnalysis: task '" + t.params.name +
                                  "' has no activation model");
    if (t.slot <= 0)
      throw std::invalid_argument("RoundRobinAnalysis: task '" + t.params.name +
                                  "' needs a positive slot");
  }
}

ResponseResult RoundRobinAnalysis::analyze(std::size_t index) const {
  const RoundRobinTask& self = tasks_.at(index);

  const auto interference = [&](Time w, Count rounds) {
    Time sum = 0;
    for (std::size_t j = 0; j < tasks_.size(); ++j) {
      if (j == index) continue;
      const auto& other = tasks_[j];
      const Count n = other.params.activation->eta_plus(sat_add(w, 1));
      if (is_infinite_count(n))
        throw AnalysisError("RoundRobinAnalysis: unbounded burst from '" + other.params.name +
                            "'");
      const Time by_demand = sat_mul(other.params.cet.worst, n);
      const Time by_slots = sat_mul(other.slot, rounds);
      sum = sat_add(sum, std::min(by_demand, by_slots));
    }
    return sum;
  };

  // Busy period: all demand of self plus bounded interference.
  const Time c = self.params.cet.worst;
  const auto rounds_for = [&](Count q) {
    return static_cast<Count>(ceil_div(std::max<Time>(1, sat_mul(c, q)), self.slot));
  };

  const Time busy = least_fixpoint(
      [&](Time w) {
        const Count own = self.params.activation->eta_plus(w);
        if (is_infinite_count(own))
          throw AnalysisError("RoundRobinAnalysis: unbounded burst from '" + self.params.name +
                              "'");
        return sat_add(sat_mul(c, own), interference(w, rounds_for(std::max<Count>(1, own))));
      },
      c, limits_, "RoundRobinAnalysis(" + self.params.name + ") busy period");

  const Count q_max = std::max<Count>(1, self.params.activation->eta_plus(busy));

  ResponseResult res;
  res.name = self.params.name;
  res.bcrt = self.params.cet.best;
  res.busy_period = busy;
  res.activations = q_max;

  Time w_prev = 0;
  for (Count q = 1; q <= q_max; ++q) {
    const Count rounds = rounds_for(q);
    const Time w = least_fixpoint(
        [&](Time w_cur) { return sat_add(sat_mul(c, q), interference(w_cur, rounds)); },
        std::max(w_prev, sat_mul(c, q)), limits_,
        "RoundRobinAnalysis(" + self.params.name + ") q=" + std::to_string(q));
    w_prev = w;
    res.wcrt = std::max(res.wcrt, w - self.params.activation->delta_min(q));
  }
  return res;
}

std::vector<ResponseResult> RoundRobinAnalysis::analyze_all() const {
  std::vector<ResponseResult> out;
  out.reserve(tasks_.size());
  for (std::size_t i = 0; i < tasks_.size(); ++i) out.push_back(analyze(i));
  return out;
}

}  // namespace hem::sched
