#include "sim/system_simulator.hpp"

#include <algorithm>
#include <deque>
#include <functional>
#include <memory>
#include <stdexcept>

#include "core/standard_event_model.hpp"
#include "sim/bus_sim.hpp"
#include "sim/cpu_sim.hpp"

namespace hem::sim {

namespace {

using cpa::Policy;
using cpa::System;
using cpa::TaskId;

SourceSpec spec_from(const ModelPtr& model) {
  const auto* sem = dynamic_cast<const StandardEventModel*>(model.get());
  if (sem == nullptr)
    throw std::invalid_argument(
        "SystemSimulator: external/timer models must be StandardEventModels to generate "
        "conforming traces (got " +
        model->describe() + ")");
  return SourceSpec{sem->period(), sem->jitter(), sem->d_min(), 0};
}

/// Where a task lives in the simulation.
struct Location {
  enum class Kind { kCpu, kBusFrame } kind = Kind::kCpu;
  std::size_t resource_slot = 0;  ///< index into cpus_ / buses_
  std::size_t local = 0;          ///< index within the CpuSim / BusSim
};

}  // namespace

SystemSimulator::SystemSimulator(const cpa::System& system, Options options)
    : system_(system), options_(options) {
  system_.validate();
}

SystemSimResult SystemSimulator::run() {
  EventCalendar cal;
  std::mt19937_64 rng(options_.seed);
  const auto& tasks = system_.tasks();
  const auto& resources = system_.resources();

  // ---- per-task simulation state -----------------------------------------
  struct FrameState {
    std::vector<bool> fresh;                      // per packed input
    std::deque<std::vector<bool>> latched;        // snapshots in flight
    std::deque<Time> request_times;               // FIFO for response pairing
  };
  std::vector<Location> where(tasks.size());
  std::vector<FrameState> frame_state(tasks.size());
  std::vector<std::vector<Time>> activations(tasks.size());
  std::vector<std::vector<Time>> responses(tasks.size());

  // consumers_on_complete[t]: tasks activated by t's output (OR edges).
  std::vector<std::vector<TaskId>> consumers_on_complete(tasks.size());
  // and_edges: consumer -> token counters per producer.
  struct AndState {
    std::vector<TaskId> producers;
    std::vector<Count> tokens;
  };
  std::map<TaskId, AndState> and_state;
  // producer -> AND consumers.
  std::vector<std::vector<TaskId>> and_consumers(tasks.size());
  // packed_input_feeds[t]: (frame, input index) pairs fed by t's output.
  std::vector<std::vector<std::pair<TaskId, std::size_t>>> packed_feeds(tasks.size());
  // unpack_consumers[frame][input index] -> consumer tasks.
  std::vector<std::map<std::size_t, std::vector<TaskId>>> unpack_consumers(tasks.size());

  // ---- build resources -----------------------------------------------------
  std::vector<std::unique_ptr<CpuSim>> cpus;
  std::vector<std::unique_ptr<BusSim>> buses;
  std::vector<std::vector<TaskId>> cpu_members;   // per cpu slot
  std::vector<std::vector<TaskId>> bus_members;   // per bus slot
  std::map<std::size_t, std::size_t> cpu_slot_of_resource;
  std::map<std::size_t, std::size_t> bus_slot_of_resource;

  for (std::size_t r = 0; r < resources.size(); ++r) {
    std::vector<TaskId> members;
    for (TaskId t = 0; t < tasks.size(); ++t)
      if (tasks[t].resource == r) members.push_back(t);
    if (members.empty()) continue;
    switch (resources[r].policy) {
      case Policy::kSppPreemptive:
        cpu_slot_of_resource[r] = cpu_members.size();
        cpu_members.push_back(std::move(members));
        break;
      case Policy::kSpnpCan:
        bus_slot_of_resource[r] = bus_members.size();
        bus_members.push_back(std::move(members));
        break;
      default:
        throw std::invalid_argument("SystemSimulator: resource '" + resources[r].name +
                                    "' uses a policy the simulator does not support");
    }
  }

  // Forward declaration of the activation dispatcher.
  std::function<void(TaskId)> activate;

  // Common fan-out when any task (CPU job or bus frame) completes: plain
  // output consumers, AND-junction token bookkeeping, and packed inputs of
  // downstream frames.
  const auto notify_completion = [&](TaskId t) {
    for (const TaskId c : consumers_on_complete[t]) activate(c);
    for (const TaskId c : and_consumers[t]) {
      AndState& st = and_state.at(c);
      for (std::size_t p = 0; p < st.producers.size(); ++p)
        if (st.producers[p] == t) ++st.tokens[p];
      if (std::all_of(st.tokens.begin(), st.tokens.end(), [](Count n) { return n > 0; })) {
        for (auto& n : st.tokens) --n;
        activate(c);
      }
    }
    for (const auto& [frame, idx] : packed_feeds[t]) {
      frame_state[frame].fresh[idx] = true;
      const auto* packed = std::get_if<cpa::PackedActivation>(&system_.activation(frame));
      if (packed->inputs[idx].coupling == SignalCoupling::kTriggering) activate(frame);
    }
  };

  // The delivery fan-out after a frame completes.
  const auto deliver_frame = [&](TaskId frame) {
    FrameState& st = frame_state[frame];
    // Response bookkeeping.
    responses[frame].push_back(cal.now() - st.request_times.front());
    st.request_times.pop_front();
    notify_completion(frame);
    if (st.latched.empty()) return;  // non-packed bus task: nothing to unpack
    const std::vector<bool> snapshot = st.latched.front();
    st.latched.pop_front();
    for (std::size_t i = 0; i < snapshot.size(); ++i) {
      if (!snapshot[i]) continue;
      const auto it = unpack_consumers[frame].find(i);
      if (it == unpack_consumers[frame].end()) continue;
      for (const TaskId c : it->second) activate(c);
    }
  };

  // Build CpuSims.
  for (auto& members : cpu_members) {
    std::vector<CpuSim::TaskDef> defs;
    for (const TaskId t : members)
      defs.push_back(CpuSim::TaskDef{tasks[t].name, tasks[t].priority, tasks[t].cet.best,
                                     tasks[t].cet.worst});
    cpus.push_back(std::make_unique<CpuSim>(cal, std::move(defs), options_.worst_case_exec,
                                            rng));
    for (std::size_t local = 0; local < members.size(); ++local)
      where[members[local]] = {Location::Kind::kCpu, cpus.size() - 1, local};
  }

  // Build BusSims (hooks filled below via captured ids).
  for (auto& members : bus_members) {
    std::vector<BusSim::FrameDef> defs;
    const std::size_t slot = buses.size();
    for (std::size_t local = 0; local < members.size(); ++local) {
      const TaskId t = members[local];
      defs.push_back(BusSim::FrameDef{
          tasks[t].name, tasks[t].priority, tasks[t].cet.best, tasks[t].cet.worst,
          /*on_start=*/
          [&, t] {
            FrameState& st = frame_state[t];
            if (!st.fresh.empty()) {
              st.latched.push_back(st.fresh);
              st.fresh.assign(st.fresh.size(), false);
            }
          },
          /*on_complete=*/[&, t] { deliver_frame(t); }});
      where[t] = {Location::Kind::kBusFrame, slot, local};
    }
    buses.push_back(
        std::make_unique<BusSim>(cal, std::move(defs), options_.worst_case_exec, rng));
  }

  // ---- activation dispatcher -------------------------------------------
  activate = [&](TaskId t) {
    activations[t].push_back(cal.now());
    const Location& loc = where[t];
    if (loc.kind == Location::Kind::kCpu) {
      cpus[loc.resource_slot]->activate(loc.local);
    } else {
      frame_state[t].request_times.push_back(cal.now());
      buses[loc.resource_slot]->request(loc.local);
    }
  };

  // CPU completion chains.
  for (std::size_t slot = 0; slot < cpus.size(); ++slot) {
    cpus[slot]->on_complete = [&, slot](std::size_t local) {
      const TaskId t = cpu_members[slot][local];
      responses[t].push_back(cpus[slot]->responses(local).back());
      notify_completion(t);
    };
  }

  // ---- wire activation specs -----------------------------------------
  std::vector<std::pair<SourceSpec, std::function<void()>>> generators;
  for (TaskId t = 0; t < tasks.size(); ++t) {
    const auto& spec = system_.activation(t);
    if (const auto* ext = std::get_if<cpa::ExternalActivation>(&spec)) {
      generators.emplace_back(spec_from(ext->model), [&, t] { activate(t); });
      continue;
    }
    if (const auto* by = std::get_if<cpa::TaskOutputActivation>(&spec)) {
      for (const TaskId p : by->producers) consumers_on_complete[p].push_back(t);
      continue;
    }
    if (const auto* andj = std::get_if<cpa::AndActivation>(&spec)) {
      AndState st;
      st.producers = andj->producers;
      st.tokens.assign(andj->producers.size(), 0);
      and_state[t] = std::move(st);
      for (const TaskId p : andj->producers) and_consumers[p].push_back(t);
      continue;
    }
    if (const auto* packed = std::get_if<cpa::PackedActivation>(&spec)) {
      if (where[t].kind != Location::Kind::kBusFrame)
        throw std::invalid_argument(
            "SystemSimulator: packed activations are only supported on CAN resources");
      frame_state[t].fresh.assign(packed->inputs.size(), false);
      for (std::size_t i = 0; i < packed->inputs.size(); ++i) {
        const auto& input = packed->inputs[i];
        if (const auto* producer = std::get_if<TaskId>(&input.source)) {
          packed_feeds[*producer].emplace_back(t, i);
        } else {
          const auto& model = std::get<ModelPtr>(input.source);
          const bool triggering = input.coupling == SignalCoupling::kTriggering;
          generators.emplace_back(spec_from(model), [&, t, i, triggering] {
            frame_state[t].fresh[i] = true;
            if (triggering) activate(t);
          });
        }
      }
      if (packed->timer)
        generators.emplace_back(spec_from(packed->timer), [&, t] { activate(t); });
      continue;
    }
    if (const auto* up = std::get_if<cpa::UnpackedActivation>(&spec)) {
      unpack_consumers[up->frame_task][up->index].push_back(t);
      continue;
    }
  }

  // ---- schedule the external stimuli and run ------------------------------
  const FaultInjection& faults = options_.faults;
  if (faults.drop_rate < 0.0 || faults.drop_rate > 1.0)
    throw std::invalid_argument("SystemSimulator: drop_rate must be within [0, 1]");
  if (faults.extra_jitter < 0 || faults.burst < 1)
    throw std::invalid_argument("SystemSimulator: need extra_jitter >= 0 and burst >= 1");
  std::uniform_real_distribution<double> drop_dist(0.0, 1.0);
  std::uniform_int_distribution<Time> jitter_dist(0, std::max<Time>(faults.extra_jitter, 0));
  for (const auto& [src, fire] : generators) {
    const auto arrivals = generate_arrivals(src, options_.horizon, options_.mode, rng);
    for (const Time a : arrivals) {
      if (faults.drop_rate > 0.0 && drop_dist(rng) < faults.drop_rate) continue;
      Time when = a;
      if (faults.extra_jitter > 0) when += jitter_dist(rng);
      if (when >= options_.horizon) continue;
      for (Count b = 0; b < faults.burst; ++b) {
        auto f = fire;  // copy for the calendar closure
        cal.at(when, std::move(f));
      }
    }
  }
  cal.run_until(options_.horizon);

  // ---- collect -------------------------------------------------------
  SystemSimResult result;
  for (TaskId t = 0; t < tasks.size(); ++t) {
    SystemSimResult::TaskStats stats;
    stats.activations = activations[t];
    stats.responses = responses[t];
    stats.wcrt = stats.responses.empty()
                     ? 0
                     : *std::max_element(stats.responses.begin(), stats.responses.end());
    result.tasks[tasks[t].name] = std::move(stats);
  }
  return result;
}

}  // namespace hem::sim
