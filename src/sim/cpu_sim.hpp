#pragma once

/// \file cpu_sim.hpp
/// Simulated CPU with static-priority preemptive (SPP) scheduling.
///
/// Jobs are queued per task; the highest-priority task with pending jobs
/// runs.  Preemption is modelled exactly: a completion event carries an
/// epoch counter and is invalidated when the running job is preempted; the
/// job's remaining execution time is updated on every switch.

#include <cstdint>
#include <deque>
#include <functional>
#include <random>
#include <string>
#include <vector>

#include "core/time.hpp"
#include "sim/event_calendar.hpp"

namespace hem::sim {

class CpuSim {
 public:
  struct TaskDef {
    std::string name;
    int priority;  ///< smaller = higher priority; must be pairwise distinct
    Time c_best;
    Time c_worst;
  };

  CpuSim(EventCalendar& cal, std::vector<TaskDef> tasks, bool worst_case, std::mt19937_64& rng);

  /// Release one job of task `idx` at calendar time.
  void activate(std::size_t idx);

  /// Invoked (if set) after each job completion with the task index; used
  /// to chain activations through the system simulator.
  std::function<void(std::size_t)> on_complete;

  [[nodiscard]] const std::vector<Time>& activations(std::size_t idx) const {
    return activations_.at(idx);
  }
  [[nodiscard]] const std::vector<Time>& responses(std::size_t idx) const {
    return responses_.at(idx);
  }
  [[nodiscard]] Time worst_response(std::size_t idx) const;

 private:
  struct Job {
    Time arrival;
    Time remaining;
  };

  void reschedule();
  [[nodiscard]] std::size_t highest_ready() const;

  EventCalendar& cal_;
  std::vector<TaskDef> tasks_;
  std::vector<std::deque<Job>> queues_;
  std::vector<std::vector<Time>> activations_;
  std::vector<std::vector<Time>> responses_;

  static constexpr std::size_t kIdle = static_cast<std::size_t>(-1);
  std::size_t running_ = kIdle;
  Time resumed_at_ = 0;
  std::uint64_t epoch_ = 0;

  bool worst_case_;
  std::mt19937_64& rng_;
};

}  // namespace hem::sim
