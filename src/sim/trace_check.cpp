#include "sim/trace_check.hpp"

#include <sstream>

#include "core/trace_model.hpp"

namespace hem::sim {

std::vector<std::string> check_trace_against_model(const std::vector<Time>& trace,
                                                   const EventModel& model, Time dt_max,
                                                   Time step, Count n_max,
                                                   bool check_delta_plus) {
  std::vector<std::string> violations;
  const TraceModel observed(trace);

  for (Time dt = step; dt <= dt_max; dt += step) {
    const Count seen = observed.max_events_in_window(dt);
    const Count bound = model.eta_plus(dt);
    if (seen > bound) {
      std::ostringstream os;
      os << "eta+ violated at dt=" << dt << ": observed " << seen << " > bound " << bound;
      violations.push_back(os.str());
    }
  }

  const Count n_limit = std::min<Count>(n_max, observed.length());
  for (Count n = 2; n <= n_limit; ++n) {
    const Time seen_min = observed.delta_min(n);
    const Time bound_min = model.delta_min(n);
    if (seen_min < bound_min) {
      std::ostringstream os;
      os << "delta- violated at n=" << n << ": observed " << seen_min << " < bound "
         << bound_min;
      violations.push_back(os.str());
    }
    if (check_delta_plus) {
      const Time seen_max = observed.delta_plus(n);
      const Time bound_max = model.delta_plus(n);
      if (!is_infinite(bound_max) && seen_max > bound_max) {
        std::ostringstream os;
        os << "delta+ violated at n=" << n << ": observed " << seen_max << " > bound "
           << bound_max;
        violations.push_back(os.str());
      }
    }
  }
  return violations;
}

bool trace_conforms(const std::vector<Time>& trace, const EventModel& model, Time dt_max,
                    Time step, Count n_max, bool check_delta_plus) {
  return check_trace_against_model(trace, model, dt_max, step, n_max, check_delta_plus).empty();
}

}  // namespace hem::sim
