#include "sim/simulator.hpp"

#include <stdexcept>

namespace hem::sim {

Simulator::Simulator(SimConfig config) : config_(std::move(config)) {
  if (config_.sources.empty()) throw std::invalid_argument("Simulator: no sources");
  if (config_.source_names.size() != config_.sources.size())
    throw std::invalid_argument("Simulator: source_names/sources size mismatch");
  if (config_.frames.empty()) throw std::invalid_argument("Simulator: no frames");
  for (const auto& f : config_.frames)
    for (const auto& s : f.signals)
      if (s.source >= config_.sources.size())
        throw std::invalid_argument("Simulator: signal '" + s.name +
                                    "' references unknown source");
}

SimResult Simulator::run() {
  EventCalendar cal;
  std::mt19937_64 rng(config_.seed);

  // --- CPU ---------------------------------------------------------------
  std::vector<CpuSim::TaskDef> task_defs;
  for (const auto& t : config_.tasks)
    task_defs.push_back(CpuSim::TaskDef{t.name, t.priority, t.c_best, t.c_worst});
  const bool has_tasks = !task_defs.empty();
  if (!has_tasks) task_defs.push_back(CpuSim::TaskDef{"_idle", 0, 0, 0});
  CpuSim cpu(cal, std::move(task_defs), config_.worst_case_exec, rng);

  const auto task_index = [&](const std::string& name) -> std::size_t {
    for (std::size_t i = 0; i < config_.tasks.size(); ++i)
      if (config_.tasks[i].name == name) return i;
    throw std::invalid_argument("Simulator: unknown destination task '" + name + "'");
  };

  // --- COM layer ----------------------------------------------------------
  std::vector<ComSim::FrameDef> com_frames;
  for (const auto& f : config_.frames) {
    ComSim::FrameDef def;
    def.name = f.name;
    def.has_timer = f.has_timer;
    def.period = f.period;
    for (const auto& s : f.signals) def.signals.push_back({s.name, s.triggering});
    com_frames.push_back(std::move(def));
  }
  ComSim com(cal, std::move(com_frames));

  // --- Bus ------------------------------------------------------------
  std::vector<BusSim::FrameDef> bus_frames;
  for (std::size_t i = 0; i < config_.frames.size(); ++i) {
    const auto& f = config_.frames[i];
    bus_frames.push_back(BusSim::FrameDef{
        f.name, f.priority, f.c_best, f.c_worst,
        /*on_start=*/[&com, i] { com.latch(i); },
        /*on_complete=*/[&com, i] { com.deliver(i); }});
  }
  BusSim bus(cal, std::move(bus_frames), config_.worst_case_exec, rng);
  com.attach_bus(bus);

  // Deliveries activate destination tasks.
  com.on_deliver = [&](std::size_t frame, std::size_t sig) {
    const auto& dest = config_.frames[frame].signals[sig].dest_task;
    if (!dest.empty() && has_tasks) cpu.activate(task_index(dest));
  };

  // --- Sources --------------------------------------------------------
  SimResult result;
  for (std::size_t s = 0; s < config_.sources.size(); ++s) {
    const std::vector<Time> arrivals =
        generate_arrivals(config_.sources[s], config_.horizon, config_.mode, rng);
    result.source_events[config_.source_names[s]] = arrivals;
    for (const Time t : arrivals) {
      cal.at(t, [&com, s, this] {
        for (std::size_t f = 0; f < config_.frames.size(); ++f)
          for (std::size_t j = 0; j < config_.frames[f].signals.size(); ++j)
            if (config_.frames[f].signals[j].source == s) com.write_signal(f, j);
      });
    }
  }
  com.start_timers(config_.horizon);

  // --- Run -------------------------------------------------------------
  cal.run_until(config_.horizon);

  // --- Collect -----------------------------------------------------------
  for (std::size_t i = 0; i < config_.frames.size(); ++i) {
    result.frame_completions[config_.frames[i].name] = bus.completions(i);
    for (std::size_t j = 0; j < config_.frames[i].signals.size(); ++j)
      result.signal_deliveries[config_.frames[i].name + "." +
                               config_.frames[i].signals[j].name] = com.deliveries(i, j);
  }
  for (std::size_t i = 0; i < config_.tasks.size(); ++i) {
    SimResult::TaskStats stats;
    stats.activations = cpu.activations(i);
    stats.responses = cpu.responses(i);
    stats.wcrt = cpu.worst_response(i);
    result.tasks[config_.tasks[i].name] = std::move(stats);
  }
  return result;
}

}  // namespace hem::sim
