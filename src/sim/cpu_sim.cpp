#include "sim/cpu_sim.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace hem::sim {

CpuSim::CpuSim(EventCalendar& cal, std::vector<TaskDef> tasks, bool worst_case,
               std::mt19937_64& rng)
    : cal_(cal), tasks_(std::move(tasks)), worst_case_(worst_case), rng_(rng) {
  if (tasks_.empty()) throw std::invalid_argument("CpuSim: no tasks");
  std::set<int> prios;
  for (const auto& t : tasks_) {
    if (t.c_best < 0 || t.c_worst < t.c_best)
      throw std::invalid_argument("CpuSim: invalid execution time for '" + t.name + "'");
    if (!prios.insert(t.priority).second)
      throw std::invalid_argument("CpuSim: duplicate priority for '" + t.name + "'");
  }
  queues_.resize(tasks_.size());
  activations_.resize(tasks_.size());
  responses_.resize(tasks_.size());
}

void CpuSim::activate(std::size_t idx) {
  Time exec = tasks_.at(idx).c_worst;
  if (!worst_case_ && tasks_[idx].c_worst > tasks_[idx].c_best) {
    std::uniform_int_distribution<Time> dist(tasks_[idx].c_best, tasks_[idx].c_worst);
    exec = dist(rng_);
  }
  activations_[idx].push_back(cal_.now());
  queues_[idx].push_back(Job{cal_.now(), exec});
  reschedule();
}

std::size_t CpuSim::highest_ready() const {
  std::size_t best = kIdle;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (queues_[i].empty()) continue;
    if (best == kIdle || tasks_[i].priority < tasks_[best].priority) best = i;
  }
  return best;
}

void CpuSim::reschedule() {
  const std::size_t next = highest_ready();
  if (next == running_) return;  // includes both idle, or same task keeps running

  // Preempt the running job: account for the progress it made.
  if (running_ != kIdle) {
    Job& job = queues_[running_].front();
    job.remaining -= (cal_.now() - resumed_at_);
    ++epoch_;  // invalidate its completion event
  }

  running_ = next;
  if (running_ == kIdle) return;
  resumed_at_ = cal_.now();
  ++epoch_;
  const std::uint64_t my_epoch = epoch_;
  const std::size_t task = running_;
  const Time remaining = queues_[task].front().remaining;
  cal_.after(remaining, [this, my_epoch, task] {
    if (my_epoch != epoch_) return;  // stale: the job was preempted meanwhile
    Job job = queues_[task].front();
    queues_[task].pop_front();
    responses_[task].push_back(cal_.now() - job.arrival);
    running_ = kIdle;
    if (on_complete) on_complete(task);
    reschedule();
  });
}

Time CpuSim::worst_response(std::size_t idx) const {
  const auto& r = responses_.at(idx);
  return r.empty() ? 0 : *std::max_element(r.begin(), r.end());
}

}  // namespace hem::sim
