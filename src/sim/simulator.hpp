#pragma once

/// \file simulator.hpp
/// End-to-end simulator of the paper's system class: event sources write
/// COM-layer signals, frames are arbitrated on a CAN-style bus, receiver
/// tasks run on an SPP-scheduled CPU.
///
/// The simulator validates the analysis: every observed activation trace
/// must respect the analytic event-model bounds, and every observed
/// response time must not exceed the analytic WCRT.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/com_sim.hpp"
#include "sim/cpu_sim.hpp"
#include "sim/source_generator.hpp"

namespace hem::sim {

/// A signal inside a frame, fed by a source, destined for a CPU task.
struct SimSignal {
  std::string name;
  std::size_t source = 0;  ///< index into SimConfig::sources
  bool triggering = true;
  std::string dest_task;   ///< name of the receiving task ("" = none)
};

struct SimFrame {
  std::string name;
  int priority = 0;
  Time c_best = 1;
  Time c_worst = 1;
  bool has_timer = false;
  Time period = 0;
  std::vector<SimSignal> signals;
};

struct SimTask {
  std::string name;
  int priority = 0;
  Time c_best = 1;
  Time c_worst = 1;
};

struct SimConfig {
  std::vector<std::string> source_names;
  std::vector<SourceSpec> sources;
  std::vector<SimFrame> frames;
  std::vector<SimTask> tasks;
  Time horizon = 1'000'000;
  GenMode mode = GenMode::kRandom;
  std::uint64_t seed = 1;
  bool worst_case_exec = true;
};

struct SimResult {
  struct TaskStats {
    std::vector<Time> activations;
    std::vector<Time> responses;
    Time wcrt = 0;
  };
  std::map<std::string, std::vector<Time>> source_events;
  std::map<std::string, std::vector<Time>> frame_completions;
  /// Delivery times of fresh values, keyed "frame.signal".
  std::map<std::string, std::vector<Time>> signal_deliveries;
  std::map<std::string, TaskStats> tasks;
};

class Simulator {
 public:
  explicit Simulator(SimConfig config);

  [[nodiscard]] SimResult run();

 private:
  SimConfig config_;
};

}  // namespace hem::sim
