#pragma once

/// \file system_simulator.hpp
/// Discrete-event simulation of an arbitrary cpa::System: every SPP CPU
/// becomes a preemptive scheduler, every CAN resource a non-preemptive
/// arbiter, packed activations get COM-layer register/latch semantics, and
/// activation edges (task outputs, OR/AND junctions, unpack deliveries)
/// are wired as completion callbacks.
///
/// This closes the validation loop at the SYSTEM level: the same System
/// object analysed by CpaEngine can be executed, and every observed
/// response time must stay within the analytic worst case
/// (tests/integration/system_sim_test.cpp).
///
/// Supported subset (throws std::invalid_argument otherwise):
///   * resources: kSppPreemptive, kSpnpCan;
///   * packed activations on CAN resources only;
///   * external activation models that are StandardEventModels (the
///     simulator must generate conforming traces).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "model/system.hpp"
#include "sim/source_generator.hpp"

namespace hem::sim {

struct SystemSimResult {
  struct TaskStats {
    std::vector<Time> activations;
    std::vector<Time> responses;
    Time wcrt = 0;
  };
  std::map<std::string, TaskStats> tasks;
};

class SystemSimulator {
 public:
  /// Fault-injection knobs applied to every external stimulus (sources,
  /// packed data inputs, COM timers).  Dropping events only removes load, so
  /// analytic bounds must still dominate the observed responses; extra
  /// jitter and burst replication are adversarial (they inject load beyond
  /// the declared event models) and are meant for exercising the degraded
  /// fallback bounds, which are infinite or envelope-based and therefore
  /// still dominate.
  struct FaultInjection {
    double drop_rate = 0.0;  ///< probability in [0,1] of dropping an arrival
    Time extra_jitter = 0;   ///< uniform extra delay in [0, extra_jitter] per arrival
    Count burst = 1;         ///< replicate each surviving arrival this many times
  };

  struct Options {
    Time horizon = 500'000;
    GenMode mode = GenMode::kRandom;
    std::uint64_t seed = 1;
    bool worst_case_exec = true;
    FaultInjection faults;
  };

  SystemSimulator(const cpa::System& system, Options options);

  [[nodiscard]] SystemSimResult run();

 private:
  const cpa::System& system_;
  Options options_;
};

}  // namespace hem::sim
