#pragma once

/// \file system_simulator.hpp
/// Discrete-event simulation of an arbitrary cpa::System: every SPP CPU
/// becomes a preemptive scheduler, every CAN resource a non-preemptive
/// arbiter, packed activations get COM-layer register/latch semantics, and
/// activation edges (task outputs, OR/AND junctions, unpack deliveries)
/// are wired as completion callbacks.
///
/// This closes the validation loop at the SYSTEM level: the same System
/// object analysed by CpaEngine can be executed, and every observed
/// response time must stay within the analytic worst case
/// (tests/integration/system_sim_test.cpp).
///
/// Supported subset (throws std::invalid_argument otherwise):
///   * resources: kSppPreemptive, kSpnpCan;
///   * packed activations on CAN resources only;
///   * external activation models that are StandardEventModels (the
///     simulator must generate conforming traces).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "model/system.hpp"
#include "sim/source_generator.hpp"

namespace hem::sim {

struct SystemSimResult {
  struct TaskStats {
    std::vector<Time> activations;
    std::vector<Time> responses;
    Time wcrt = 0;
  };
  std::map<std::string, TaskStats> tasks;
};

class SystemSimulator {
 public:
  struct Options {
    Time horizon = 500'000;
    GenMode mode = GenMode::kRandom;
    std::uint64_t seed = 1;
    bool worst_case_exec = true;
  };

  SystemSimulator(const cpa::System& system, Options options);

  [[nodiscard]] SystemSimResult run();

 private:
  const cpa::System& system_;
  Options options_;
};

}  // namespace hem::sim
