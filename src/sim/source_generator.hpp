#pragma once

/// \file source_generator.hpp
/// Arrival-schedule generation for simulation sources.
///
/// Generates concrete event sequences that CONFORM to a standard event
/// model (P, J, dmin): every generated trace satisfies
///   delta-(n) >= max((n-1)P - J, (n-1)dmin)   and
///   delta+(n) <= (n-1)P + J.
/// Three modes:
///   * kNominal  - strictly periodic (jitter unused);
///   * kEarliest - every event as early as the model allows (maximal
///                 initial burst; the analysis' critical-instant shape);
///   * kRandom   - uniform jitter sampling, seeded and reproducible.

#include <cstdint>
#include <random>
#include <vector>

#include "core/time.hpp"

namespace hem::sim {

enum class GenMode { kNominal, kEarliest, kRandom };

struct SourceSpec {
  Time period = 0;
  Time jitter = 0;
  Time d_min = 0;
  Time phase = 0;  ///< offset of the nominal grid
};

/// Generate all event times in [0, horizon] for `spec`.
[[nodiscard]] std::vector<Time> generate_arrivals(const SourceSpec& spec, Time horizon,
                                                  GenMode mode, std::mt19937_64& rng);

}  // namespace hem::sim
