#pragma once

/// \file event_calendar.hpp
/// Minimal discrete-event simulation kernel: a time-ordered calendar of
/// callbacks.  Events at equal times run in scheduling order (stable).
///
/// The simulator is intentionally independent of the analysis code: it
/// shares only the Time type, so that simulation results can falsify the
/// analytic bounds without sharing their assumptions.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "core/time.hpp"

namespace hem::sim {

class EventCalendar {
 public:
  using Handler = std::function<void()>;

  /// Schedule `h` at absolute time `t` (>= now).
  void at(Time t, Handler h);

  /// Schedule `h` `delay` ticks from now.
  void after(Time delay, Handler h) { at(now_ + delay, std::move(h)); }

  /// Pop and run the earliest event.  Returns false if the calendar is
  /// empty.
  bool step();

  /// Run events until the calendar is empty or the next event is later
  /// than `horizon`.
  void run_until(Time horizon);

  [[nodiscard]] Time now() const noexcept { return now_; }

  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }

 private:
  struct Entry {
    Time t;
    std::uint64_t seq;
    Handler h;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::uint64_t next_seq_ = 0;
  Time now_ = 0;
};

}  // namespace hem::sim
