#pragma once

/// \file quantum_cpu_sim.hpp
/// Simulated CPU with quantum-based round-robin scheduling.
///
/// Ready tasks take turns; a running job executes for at most its task's
/// quantum (or until completion), then the next ready task in rotation
/// runs.  A task with several pending jobs serves them FIFO within its
/// turns.  Validates the conservative RoundRobinAnalysis bounds.

#include <deque>
#include <string>
#include <vector>

#include "core/time.hpp"
#include "sim/event_calendar.hpp"

namespace hem::sim {

class QuantumCpuSim {
 public:
  struct TaskDef {
    std::string name;
    Time execution;  ///< per-job execution demand
    Time quantum;    ///< slot length per round-robin turn
  };

  QuantumCpuSim(EventCalendar& cal, std::vector<TaskDef> tasks);

  /// Release one job of task `idx` at calendar time.
  void activate(std::size_t idx);

  [[nodiscard]] const std::vector<Time>& responses(std::size_t idx) const {
    return responses_.at(idx);
  }
  [[nodiscard]] Time worst_response(std::size_t idx) const;

 private:
  struct Job {
    Time arrival;
    Time remaining;
  };

  void dispatch();  ///< pick the next ready task if the CPU is idle

  EventCalendar& cal_;
  std::vector<TaskDef> tasks_;
  std::vector<std::deque<Job>> queues_;
  std::vector<std::vector<Time>> responses_;

  std::size_t rotor_ = 0;  ///< next task index to offer a turn
  bool busy_ = false;
};

}  // namespace hem::sim
