#pragma once

/// \file com_sim.hpp
/// Simulated COM layer: registers, dirty flags, frame triggering, latching.
///
/// Semantics follow the paper's section 4 exactly:
///   * a source event writes its signal's register (overwriting) and marks
///     it fresh;
///   * a triggering signal additionally requests a frame transmission;
///   * periodic/mixed frames also request transmissions on a timer;
///   * when the bus STARTS transmitting a frame, the register states are
///     latched and the fresh flags cleared;
///   * when the transmission COMPLETES, every receiver whose signal was
///     fresh in the latched snapshot is activated.

#include <functional>
#include <string>
#include <vector>

#include "core/time.hpp"
#include "sim/bus_sim.hpp"
#include "sim/event_calendar.hpp"

namespace hem::sim {

class ComSim {
 public:
  struct SignalDef {
    std::string name;
    bool triggering = true;
  };
  struct FrameDef {
    std::string name;
    bool has_timer = false;
    Time period = 0;  ///< timer period, required when has_timer
    std::vector<SignalDef> signals;
  };

  ComSim(EventCalendar& cal, std::vector<FrameDef> frames);

  /// Wire the bus (must be called before any traffic; the BusSim frame
  /// indices must match this ComSim's frame indices).
  void attach_bus(BusSim& bus);

  /// Schedule all periodic frame timers up to `horizon`.
  void start_timers(Time horizon);

  /// A source event arrived for signal `sig` of frame `frame`.
  void write_signal(std::size_t frame, std::size_t sig);

  /// BusSim on_start hook for frame `frame`.
  void latch(std::size_t frame);

  /// BusSim on_complete hook for frame `frame`.
  void deliver(std::size_t frame);

  /// Called on delivery of a fresh value of (frame, signal).
  std::function<void(std::size_t frame, std::size_t sig)> on_deliver;

  /// Delivery times of fresh values per (frame, signal).
  [[nodiscard]] const std::vector<Time>& deliveries(std::size_t frame, std::size_t sig) const {
    return deliveries_.at(frame).at(sig);
  }

  [[nodiscard]] const std::vector<FrameDef>& frames() const noexcept { return frames_; }

 private:
  EventCalendar& cal_;
  std::vector<FrameDef> frames_;
  BusSim* bus_ = nullptr;

  std::vector<std::vector<bool>> fresh_;  ///< per frame, per signal
  std::vector<std::vector<std::vector<bool>>> latched_;  ///< FIFO of snapshots per frame
  std::vector<std::vector<std::vector<Time>>> deliveries_;
};

}  // namespace hem::sim
