#include "sim/source_generator.hpp"

#include <algorithm>
#include <stdexcept>

namespace hem::sim {

std::vector<Time> generate_arrivals(const SourceSpec& spec, Time horizon, GenMode mode,
                                    std::mt19937_64& rng) {
  if (spec.period <= 0) throw std::invalid_argument("generate_arrivals: period must be > 0");
  if (spec.jitter < 0 || spec.d_min < 0 || spec.d_min > spec.period)
    throw std::invalid_argument("generate_arrivals: invalid jitter/d_min");

  std::vector<Time> out;
  Time prev = std::numeric_limits<Time>::min() / 4;
  for (Count k = 0;; ++k) {
    const Time nominal = spec.phase + k * spec.period;
    Time t = nominal;
    switch (mode) {
      case GenMode::kNominal:
        break;
      case GenMode::kEarliest:
        t = nominal - spec.jitter;
        break;
      case GenMode::kRandom: {
        if (spec.jitter > 0) {
          std::uniform_int_distribution<Time> dist(-spec.jitter, 0);
          t = nominal + dist(rng);
        }
        break;
      }
    }
    // Enforce dmin without ever exceeding the late bound (dmin <= P keeps
    // the clamp inside [nominal - J, nominal]).
    t = std::max(t, prev + spec.d_min);
    t = std::min(t, nominal);
    if (t < 0) t = std::max<Time>(0, prev + spec.d_min);
    if (t > horizon) break;
    out.push_back(t);
    prev = t;
  }
  return out;
}

}  // namespace hem::sim
