#include "sim/bus_sim.hpp"

#include <set>
#include <stdexcept>

namespace hem::sim {

BusSim::BusSim(EventCalendar& cal, std::vector<FrameDef> frames, bool worst_case,
               std::mt19937_64& rng)
    : cal_(cal), frames_(std::move(frames)), worst_case_(worst_case), rng_(rng) {
  if (frames_.empty()) throw std::invalid_argument("BusSim: no frames");
  std::set<int> prios;
  for (const auto& f : frames_) {
    if (f.c_best < 0 || f.c_worst < f.c_best)
      throw std::invalid_argument("BusSim: invalid transmission time for '" + f.name + "'");
    if (!prios.insert(f.priority).second)
      throw std::invalid_argument("BusSim: duplicate priority for '" + f.name + "'");
  }
  pending_.assign(frames_.size(), 0);
  completions_.resize(frames_.size());
}

void BusSim::request(std::size_t idx) {
  ++pending_.at(idx);
  if (!busy_) try_start();
}

void BusSim::try_start() {
  // Arbitration: highest priority (smallest number) with pending requests.
  std::size_t winner = frames_.size();
  for (std::size_t i = 0; i < frames_.size(); ++i) {
    if (pending_[i] > 0 && (winner == frames_.size() || frames_[i].priority < frames_[winner].priority))
      winner = i;
  }
  if (winner == frames_.size()) return;  // nothing to send

  busy_ = true;
  --pending_[winner];
  if (frames_[winner].on_start) frames_[winner].on_start();
  Time duration = frames_[winner].c_worst;
  if (!worst_case_ && frames_[winner].c_worst > frames_[winner].c_best) {
    std::uniform_int_distribution<Time> dist(frames_[winner].c_best, frames_[winner].c_worst);
    duration = dist(rng_);
  }
  cal_.after(duration, [this, winner] {
    completions_[winner].push_back(cal_.now());
    if (frames_[winner].on_complete) frames_[winner].on_complete();
    busy_ = false;
    try_start();
  });
}

}  // namespace hem::sim
