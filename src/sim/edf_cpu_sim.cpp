#include "sim/edf_cpu_sim.hpp"

#include <algorithm>
#include <stdexcept>

namespace hem::sim {

EdfCpuSim::EdfCpuSim(EventCalendar& cal, std::vector<TaskDef> tasks)
    : cal_(cal), tasks_(std::move(tasks)) {
  if (tasks_.empty()) throw std::invalid_argument("EdfCpuSim: no tasks");
  for (const auto& t : tasks_) {
    if (t.execution <= 0 || t.deadline <= 0)
      throw std::invalid_argument("EdfCpuSim: task '" + t.name +
                                  "' needs positive execution and deadline");
  }
  queues_.resize(tasks_.size());
  responses_.resize(tasks_.size());
}

void EdfCpuSim::activate(std::size_t idx) {
  queues_.at(idx).push_back(
      Job{cal_.now(), cal_.now() + tasks_[idx].deadline, tasks_[idx].execution});
  reschedule();
}

std::size_t EdfCpuSim::earliest_deadline_task() const {
  std::size_t best = kIdle;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (queues_[i].empty()) continue;
    if (best == kIdle || queues_[i].front().abs_deadline < queues_[best].front().abs_deadline)
      best = i;
  }
  return best;
}

void EdfCpuSim::reschedule() {
  const std::size_t next = earliest_deadline_task();
  if (next == running_) return;

  if (running_ != kIdle) {
    Job& job = queues_[running_].front();
    job.remaining -= (cal_.now() - resumed_at_);
    ++epoch_;
  }

  running_ = next;
  if (running_ == kIdle) return;
  resumed_at_ = cal_.now();
  ++epoch_;
  const std::uint64_t my_epoch = epoch_;
  const std::size_t task = running_;
  cal_.after(queues_[task].front().remaining, [this, my_epoch, task] {
    if (my_epoch != epoch_) return;
    const Job job = queues_[task].front();
    queues_[task].pop_front();
    const Time response = cal_.now() - job.arrival;
    responses_[task].push_back(response);
    if (response > tasks_[task].deadline) ++misses_;
    running_ = kIdle;
    reschedule();
  });
}

Time EdfCpuSim::worst_response(std::size_t idx) const {
  const auto& r = responses_.at(idx);
  return r.empty() ? 0 : *std::max_element(r.begin(), r.end());
}

}  // namespace hem::sim
