#include "sim/com_sim.hpp"

#include <stdexcept>

namespace hem::sim {

ComSim::ComSim(EventCalendar& cal, std::vector<FrameDef> frames)
    : cal_(cal), frames_(std::move(frames)) {
  if (frames_.empty()) throw std::invalid_argument("ComSim: no frames");
  fresh_.resize(frames_.size());
  latched_.resize(frames_.size());
  deliveries_.resize(frames_.size());
  for (std::size_t i = 0; i < frames_.size(); ++i) {
    if (frames_[i].signals.empty())
      throw std::invalid_argument("ComSim: frame '" + frames_[i].name + "' has no signals");
    if (frames_[i].has_timer && frames_[i].period <= 0)
      throw std::invalid_argument("ComSim: frame '" + frames_[i].name +
                                  "' timer needs a period");
    fresh_[i].assign(frames_[i].signals.size(), false);
    deliveries_[i].resize(frames_[i].signals.size());
  }
}

void ComSim::attach_bus(BusSim& bus) { bus_ = &bus; }

void ComSim::start_timers(Time horizon) {
  if (bus_ == nullptr) throw std::logic_error("ComSim: bus not attached");
  for (std::size_t i = 0; i < frames_.size(); ++i) {
    if (!frames_[i].has_timer) continue;
    for (Time t = 0; t <= horizon; t += frames_[i].period)
      cal_.at(t, [this, i] { bus_->request(i); });
  }
}

void ComSim::write_signal(std::size_t frame, std::size_t sig) {
  if (bus_ == nullptr) throw std::logic_error("ComSim: bus not attached");
  fresh_.at(frame).at(sig) = true;
  if (frames_[frame].signals.at(sig).triggering) bus_->request(frame);
}

void ComSim::latch(std::size_t frame) {
  latched_.at(frame).push_back(fresh_.at(frame));
  fresh_[frame].assign(frames_[frame].signals.size(), false);
}

void ComSim::deliver(std::size_t frame) {
  auto& fifo = latched_.at(frame);
  if (fifo.empty()) throw std::logic_error("ComSim: delivery without latch");
  const std::vector<bool> snapshot = fifo.front();
  fifo.erase(fifo.begin());
  for (std::size_t s = 0; s < snapshot.size(); ++s) {
    if (!snapshot[s]) continue;
    deliveries_[frame][s].push_back(cal_.now());
    if (on_deliver) on_deliver(frame, s);
  }
}

}  // namespace hem::sim
