#pragma once

/// \file edf_cpu_sim.hpp
/// Simulated CPU with preemptive earliest-deadline-first scheduling.
/// Validates the EDF demand-bound analysis (EdfAnalysis).

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "core/time.hpp"
#include "sim/event_calendar.hpp"

namespace hem::sim {

class EdfCpuSim {
 public:
  struct TaskDef {
    std::string name;
    Time execution;
    Time deadline;  ///< relative deadline
  };

  EdfCpuSim(EventCalendar& cal, std::vector<TaskDef> tasks);

  /// Release one job of task `idx` at calendar time.
  void activate(std::size_t idx);

  [[nodiscard]] const std::vector<Time>& responses(std::size_t idx) const {
    return responses_.at(idx);
  }
  [[nodiscard]] Time worst_response(std::size_t idx) const;

  /// Number of deadline misses observed (response > relative deadline).
  [[nodiscard]] Count deadline_misses() const noexcept { return misses_; }

 private:
  struct Job {
    Time arrival;
    Time abs_deadline;
    Time remaining;
  };

  void reschedule();
  [[nodiscard]] std::size_t earliest_deadline_task() const;

  EventCalendar& cal_;
  std::vector<TaskDef> tasks_;
  std::vector<std::deque<Job>> queues_;  ///< FIFO per task (equal rel. deadlines)
  std::vector<std::vector<Time>> responses_;

  static constexpr std::size_t kIdle = static_cast<std::size_t>(-1);
  std::size_t running_ = kIdle;
  Time resumed_at_ = 0;
  std::uint64_t epoch_ = 0;
  Count misses_ = 0;
};

}  // namespace hem::sim
