#pragma once

/// \file trace_check.hpp
/// Cross-checking observed simulation traces against analytic event-model
/// bounds.  Used by the validation tests and the bound-tightness benchmark.

#include <string>
#include <vector>

#include "core/event_model.hpp"

namespace hem::sim {

/// Check that an observed trace is consistent with an analytic model:
///   * observed max window counts never exceed eta+(dt) (dt sampled up to
///     dt_max in steps of `step`),
///   * observed spans of n consecutive events lie within
///     [delta-(n), delta+(n)] for n up to n_max.
/// Returns human-readable violation descriptions; empty means the trace
/// conforms.
///
/// Note on delta+: a finite trace can only check delta+ against windows it
/// contains; the last partial window (events cut off by the simulation
/// horizon) is skipped automatically because spans are only measured
/// between observed events.
[[nodiscard]] std::vector<std::string> check_trace_against_model(const std::vector<Time>& trace,
                                                                 const EventModel& model,
                                                                 Time dt_max, Time step,
                                                                 Count n_max,
                                                                 bool check_delta_plus = true);

/// Convenience wrapper: true when check_trace_against_model found nothing.
[[nodiscard]] bool trace_conforms(const std::vector<Time>& trace, const EventModel& model,
                                  Time dt_max, Time step, Count n_max,
                                  bool check_delta_plus = true);

}  // namespace hem::sim
