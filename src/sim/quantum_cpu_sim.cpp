#include "sim/quantum_cpu_sim.hpp"

#include <algorithm>
#include <stdexcept>

namespace hem::sim {

QuantumCpuSim::QuantumCpuSim(EventCalendar& cal, std::vector<TaskDef> tasks)
    : cal_(cal), tasks_(std::move(tasks)) {
  if (tasks_.empty()) throw std::invalid_argument("QuantumCpuSim: no tasks");
  for (const auto& t : tasks_) {
    if (t.execution <= 0 || t.quantum <= 0)
      throw std::invalid_argument("QuantumCpuSim: task '" + t.name +
                                  "' needs positive execution and quantum");
  }
  queues_.resize(tasks_.size());
  responses_.resize(tasks_.size());
}

void QuantumCpuSim::activate(std::size_t idx) {
  queues_.at(idx).push_back(Job{cal_.now(), tasks_[idx].execution});
  if (!busy_) dispatch();
}

void QuantumCpuSim::dispatch() {
  // Rotate to the next task with pending work.
  for (std::size_t probe = 0; probe < tasks_.size(); ++probe) {
    const std::size_t idx = (rotor_ + probe) % tasks_.size();
    if (queues_[idx].empty()) continue;

    rotor_ = (idx + 1) % tasks_.size();  // next turn goes to the following task
    busy_ = true;
    Job& job = queues_[idx].front();
    const Time slice = std::min(job.remaining, tasks_[idx].quantum);
    cal_.after(slice, [this, idx, slice] {
      Job& running = queues_[idx].front();
      running.remaining -= slice;
      if (running.remaining == 0) {
        responses_[idx].push_back(cal_.now() - running.arrival);
        queues_[idx].pop_front();
      }
      busy_ = false;
      dispatch();
    });
    return;
  }
  busy_ = false;  // nothing ready
}

Time QuantumCpuSim::worst_response(std::size_t idx) const {
  const auto& r = responses_.at(idx);
  return r.empty() ? 0 : *std::max_element(r.begin(), r.end());
}

}  // namespace hem::sim
