#pragma once

/// \file bus_sim.hpp
/// Simulated CAN-style bus: static-priority non-preemptive arbitration.
///
/// Transmission requests are queued per frame (counting semantics: every
/// trigger enqueues one transmission).  Whenever the bus is idle, the
/// highest-priority frame with pending requests wins arbitration and
/// transmits non-preemptively for its (sampled) transmission time.

#include <functional>
#include <random>
#include <string>
#include <vector>

#include "core/time.hpp"
#include "sim/event_calendar.hpp"

namespace hem::sim {

class BusSim {
 public:
  struct FrameDef {
    std::string name;
    int priority;  ///< smaller = higher priority; must be pairwise distinct
    Time c_best;
    Time c_worst;
    /// Called when transmission starts (latch the COM registers here).
    std::function<void()> on_start;
    /// Called when transmission completes (deliver to receivers here).
    std::function<void()> on_complete;
  };

  /// \param worst_case  if true, every transmission takes c_worst; else the
  ///                    duration is sampled uniformly from [c_best, c_worst].
  BusSim(EventCalendar& cal, std::vector<FrameDef> frames, bool worst_case,
         std::mt19937_64& rng);

  /// Enqueue one transmission request for frame `idx` (at calendar time).
  void request(std::size_t idx);

  /// Completion times of every transmission of frame `idx`.
  [[nodiscard]] const std::vector<Time>& completions(std::size_t idx) const {
    return completions_.at(idx);
  }

 private:
  void try_start();

  EventCalendar& cal_;
  std::vector<FrameDef> frames_;
  std::vector<Count> pending_;
  std::vector<std::vector<Time>> completions_;
  bool busy_ = false;
  bool worst_case_;
  std::mt19937_64& rng_;
};

}  // namespace hem::sim
