#include "sim/event_calendar.hpp"

#include <stdexcept>

namespace hem::sim {

void EventCalendar::at(Time t, Handler h) {
  if (t < now_) throw std::invalid_argument("EventCalendar: scheduling into the past");
  queue_.push(Entry{t, next_seq_++, std::move(h)});
}

bool EventCalendar::step() {
  if (queue_.empty()) return false;
  // priority_queue::top is const; the handler is moved out via const_cast,
  // which is safe because the entry is popped immediately afterwards.
  Entry e = std::move(const_cast<Entry&>(queue_.top()));
  queue_.pop();
  now_ = e.t;
  e.h();
  return true;
}

void EventCalendar::run_until(Time horizon) {
  while (!queue_.empty() && queue_.top().t <= horizon) step();
}

}  // namespace hem::sim
