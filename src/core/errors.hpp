#pragma once

/// \file errors.hpp
/// Error types thrown by the HEM/CPA library.

#include <stdexcept>
#include <string>

namespace hem {

/// A scheduling analysis could not produce a bound: the resource is
/// overloaded, a fixpoint iteration diverged, or a model is used outside its
/// validity domain (e.g. shaping a stream whose long-run rate exceeds the
/// shaper rate).
class AnalysisError : public std::runtime_error {
 public:
  explicit AnalysisError(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace hem
