#pragma once

/// \file errors.hpp
/// Error types thrown by the HEM/CPA library.

#include <stdexcept>
#include <string>

namespace hem {

/// Machine-readable cause of an AnalysisError.  The global engine uses the
/// code to decide which degraded status and fallback bound to substitute
/// when running in graceful (non-strict) mode.
enum class ErrorCode {
  kGeneric,         ///< unclassified analysis failure
  kOverload,        ///< long-run load of a resource exceeds 1
  kWindowLimit,     ///< busy window grew beyond FixpointLimits::max_window
  kIterationLimit,  ///< fixpoint iteration count budget exhausted
  kTimeBudget,      ///< wall-clock budget (FixpointLimits::deadline) exhausted
  kUnbounded,       ///< a model query is unbounded where a bound is required
  kCancelled,       ///< run aborted via an exec::CancelToken (watchdog/shutdown)
};

/// A scheduling analysis could not produce a bound: the resource is
/// overloaded, a fixpoint iteration diverged, or a model is used outside its
/// validity domain (e.g. shaping a stream whose long-run rate exceeds the
/// shaper rate).
class AnalysisError : public std::runtime_error {
 public:
  explicit AnalysisError(const std::string& what, ErrorCode code = ErrorCode::kGeneric)
      : std::runtime_error(what), code_(code) {}

  [[nodiscard]] ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

}  // namespace hem
