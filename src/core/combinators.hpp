#pragma once

/// \file combinators.hpp
/// Stream combination operations: OR- and AND-activation.
///
/// OR-activation (paper eqs. 3-4, originally Jersak): a task activated by
/// any event of any input sees the union of the input streams.  For the
/// contribution vector K = (k_1..k_m) with sum k_i = n:
///
///   delta-_or(n) = min_K  max_i delta-_i(k_i)                      (3)
///   delta+_or(n) = max_{K: sum = n-2}  min_i delta+_i(k_i + 2)     (4)
///
/// Both folds are associative, so m-ary combination is built from binary
/// nodes; each binary query costs O(n) child evaluations and is memoised.
///
/// AND-activation: an activation occurs once every input has delivered an
/// event.  Following Jersak/SymTA/S practice, AND requires all inputs to
/// share the same long-run period (otherwise token buffers grow without
/// bound); the result is a SEM with the common period, the maximum input
/// jitter, and the minimum input dmin (conservative: consecutive AND
/// completions are separated by at least min_i dmin_i).

#include <span>
#include <string>

#include "core/event_model.hpp"

namespace hem {

/// Binary OR-combination node (eqs. 3-4).
class OrModel final : public EventModel {
 public:
  OrModel(ModelPtr left, ModelPtr right);

  [[nodiscard]] const ModelPtr& left() const noexcept { return left_; }
  [[nodiscard]] const ModelPtr& right() const noexcept { return right_; }

  [[nodiscard]] std::string describe() const override;

 protected:
  [[nodiscard]] Time delta_min_raw(Count n) const override;
  [[nodiscard]] Time delta_plus_raw(Count n) const override;

 private:
  ModelPtr left_;
  ModelPtr right_;
};

/// m-ary OR-combination by pairwise folding.  Requires at least one input;
/// a single input is returned unchanged.
[[nodiscard]] ModelPtr or_combine(std::span<const ModelPtr> inputs);

/// AND-combination of standard event models with a common period.
/// \throws std::invalid_argument if any input is not a StandardEventModel
///         or periods differ.
[[nodiscard]] ModelPtr and_combine(std::span<const ModelPtr> inputs);

}  // namespace hem
