#pragma once

/// \file model_io.hpp
/// Formatting helpers for event models: eta/delta series for reports,
/// benchmark tables, and CSV export (used to regenerate the paper's
/// figure 4 series).

#include <iosfwd>
#include <string>
#include <vector>

#include "core/event_model.hpp"

namespace hem {

/// One sampled series of eta+ values.
struct EtaSeries {
  std::string label;
  std::vector<Time> dt;      ///< sampled interval sizes
  std::vector<Count> value;  ///< eta+(dt) per sample
};

/// Sample eta+ of `model` at dt = step, 2*step, ..., dt_max.
[[nodiscard]] EtaSeries sample_eta_plus(const EventModel& model, std::string label, Time dt_max,
                                        Time step);

/// Render several eta+ series as an aligned text table (one row per dt).
[[nodiscard]] std::string format_eta_table(const std::vector<EtaSeries>& series);

/// Write several eta+ series as CSV: "dt,label1,label2,...".
void write_eta_csv(std::ostream& os, const std::vector<EtaSeries>& series);

/// Render delta-(n) / delta+(n) for n in [2, n_max] as a text table.
[[nodiscard]] std::string format_delta_table(const EventModel& model, Count n_max);

/// Format a Time value, printing "inf" for the infinity sentinel.
[[nodiscard]] std::string format_time(Time t);

}  // namespace hem
