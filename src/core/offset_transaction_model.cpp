#include "core/offset_transaction_model.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace hem {

OffsetTransactionModel::OffsetTransactionModel(Time period, std::vector<Time> offsets,
                                               Time jitter)
    : period_(period), offsets_(std::move(offsets)), jitter_(jitter) {
  if (period <= 0) throw std::invalid_argument("OffsetTransactionModel: period must be > 0");
  if (offsets_.empty())
    throw std::invalid_argument("OffsetTransactionModel: needs at least one offset");
  if (jitter < 0) throw std::invalid_argument("OffsetTransactionModel: negative jitter");
  std::sort(offsets_.begin(), offsets_.end());
  for (const Time o : offsets_) {
    if (o < 0 || o >= period)
      throw std::invalid_argument("OffsetTransactionModel: offsets must lie in [0, period)");
  }
  // Order stability: jitter must not exceed the smallest inter-offset gap
  // (including the wrap-around gap).
  Time min_gap = kTimeInfinity;
  for (std::size_t i = 0; i + 1 < offsets_.size(); ++i)
    min_gap = std::min(min_gap, offsets_[i + 1] - offsets_[i]);
  min_gap = std::min(min_gap, period_ - offsets_.back() + offsets_.front());
  if (jitter_ > 0 && jitter_ > min_gap)
    throw std::invalid_argument(
        "OffsetTransactionModel: jitter exceeds the smallest inter-offset gap; event order "
        "would not be stable (use a StandardEventModel over-approximation instead)");
}

Time OffsetTransactionModel::nominal_span(std::size_t i, Count steps) const {
  const auto k = static_cast<Count>(offsets_.size());
  const Count target = static_cast<Count>(i) + steps;
  const Count wraps = target / k;
  const auto idx = static_cast<std::size_t>(target % k);
  return sat_add(sat_mul(period_, wraps), offsets_[idx] - offsets_[i]);
}

Time OffsetTransactionModel::delta_min_raw(Count n) const {
  Time best = kTimeInfinity;
  for (std::size_t i = 0; i < offsets_.size(); ++i)
    best = std::min(best, nominal_span(i, n - 1));
  return std::max<Time>(0, sat_sub(best, jitter_));
}

Time OffsetTransactionModel::delta_plus_raw(Count n) const {
  Time worst = 0;
  for (std::size_t i = 0; i < offsets_.size(); ++i)
    worst = std::max(worst, nominal_span(i, n - 1));
  return sat_add(worst, jitter_);
}

std::string OffsetTransactionModel::describe() const {
  std::ostringstream os;
  os << "Offsets(T=" << period_ << ", k=" << offsets_.size() << ", J=" << jitter_ << ")";
  return os.str();
}

}  // namespace hem
