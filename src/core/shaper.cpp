#include "core/shaper.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "core/errors.hpp"

namespace hem {

MinDistanceShaper::MinDistanceShaper(ModelPtr input, Time distance, Count horizon)
    : input_(std::move(input)), distance_(distance) {
  if (!input_) throw std::invalid_argument("MinDistanceShaper: null input model");
  if (distance <= 0) throw std::invalid_argument("MinDistanceShaper: distance must be > 0");
  if (horizon < 2) throw std::invalid_argument("MinDistanceShaper: horizon must be >= 2");
  // Delay bound: the i-th event of a maximal burst leaves at (i-1)*d after
  // the burst head but may arrive as early as delta-(i) after it.
  Time best = 0;
  Count best_n = 1;
  for (Count n = 2; n <= horizon; ++n) {
    const Time dmin = input_->delta_min(n);
    if (is_infinite(dmin)) break;  // stream exhausted; delay cannot grow further
    const Time lag = sat_mul(distance_, n - 1) - dmin;
    if (lag > best) {
      best = lag;
      best_n = n;
    }
  }
  if (best_n == horizon)
    throw AnalysisError(
        "MinDistanceShaper: delay bound still growing at the scan horizon; the input's "
        "long-run rate exceeds the shaper rate (input " +
        input_->describe() + ", d=" + std::to_string(distance) + ")");
  delay_bound_ = best;
}

Time MinDistanceShaper::delta_min_raw(Count n) const {
  // Max-plus convolution of the input curve with the shaping curve
  // (k = n gives delta-(n), k = 1 gives (n-1)*d; interior splits tighten).
  Time best = 0;
  for (Count k = 1; k <= n; ++k)
    best = std::max(best, sat_add(input_->delta_min(k), sat_mul(distance_, n - k)));
  return best;
}

Time MinDistanceShaper::delta_plus_raw(Count n) const {
  return sat_add(input_->delta_plus(n), delay_bound_);
}

std::string MinDistanceShaper::describe() const {
  std::ostringstream os;
  os << "Shaper(d=" << distance_ << ", D=" << delay_bound_ << ", " << input_->describe() << ")";
  return os.str();
}

}  // namespace hem
