#include "core/combinators.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "core/standard_event_model.hpp"

namespace hem {

OrModel::OrModel(ModelPtr left, ModelPtr right)
    : left_(std::move(left)), right_(std::move(right)) {
  if (!left_ || !right_) throw std::invalid_argument("OrModel: null input model");
}

Time OrModel::delta_min_raw(Count n) const {
  // eq. (3): min over k + (n - k) splits of max(delta-_l(k), delta-_r(n-k)).
  // a(k) = delta-_l(k) is non-decreasing and b(k) = delta-_r(n-k) is
  // non-increasing, so max(a, b) is valley-shaped; the minimum sits at the
  // crossing point, found by binary search in O(log n) child evaluations.
  const auto a = [&](Count k) { return left_->delta_min(k); };
  const auto b = [&](Count k) { return right_->delta_min(n - k); };
  // Smallest k in [0, n] with a(k) >= b(k); k = n always qualifies
  // (b(n) = delta-_r(0) = 0).
  Count lo = 0, hi = n;
  while (lo < hi) {
    const Count mid = lo + (hi - lo) / 2;
    if (a(mid) >= b(mid))
      hi = mid;
    else
      lo = mid + 1;
  }
  Time best = a(lo);                                  // k >= k*: max = a(k), min at k*
  if (lo > 0) best = std::min(best, b(lo - 1));       // k <  k*: max = b(k), min at k*-1
  return best;
}

Time OrModel::delta_plus_raw(Count n) const {
  // eq. (4): max over k_l + k_r = n - 2 of min(delta+_l(k_l + 2),
  // delta+_r(k_r + 2)).  A(k) = delta+_l(k+2) is non-decreasing and
  // B(k) = delta+_r(n-k) is non-increasing, so min(A, B) is hill-shaped;
  // binary search for the crossing point.
  const auto A = [&](Count k) { return left_->delta_plus(k + 2); };
  const auto B = [&](Count k) { return right_->delta_plus(n - k); };
  const Count k_max = n - 2;
  // Smallest k in [0, k_max] with A(k) >= B(k), or k_max + 1 if none.
  Count lo = 0, hi = k_max + 1;
  while (lo < hi) {
    const Count mid = lo + (hi - lo) / 2;
    if (mid <= k_max && A(mid) >= B(mid))
      hi = mid;
    else
      lo = mid + 1;
  }
  Time best = 0;
  if (lo <= k_max) best = std::max(best, B(lo));       // k >= k*: min = B(k), max at k*
  if (lo > 0) best = std::max(best, A(lo - 1));        // k <  k*: min = A(k), max at k*-1
  return best;
}

std::string OrModel::describe() const {
  std::ostringstream os;
  os << "OR(" << left_->describe() << ", " << right_->describe() << ")";
  return os.str();
}

ModelPtr or_combine(std::span<const ModelPtr> inputs) {
  if (inputs.empty()) throw std::invalid_argument("or_combine: no inputs");
  ModelPtr acc = inputs[0];
  for (std::size_t i = 1; i < inputs.size(); ++i)
    acc = std::make_shared<OrModel>(acc, inputs[i]);
  return acc;
}

ModelPtr and_combine(std::span<const ModelPtr> inputs) {
  if (inputs.empty()) throw std::invalid_argument("and_combine: no inputs");
  Time period = -1;
  Time jitter = 0;
  Time d_min = kTimeInfinity;
  for (const ModelPtr& m : inputs) {
    const auto* sem = dynamic_cast<const StandardEventModel*>(m.get());
    if (sem == nullptr)
      throw std::invalid_argument(
          "and_combine: AND-activation requires standard event models (got " + m->describe() +
          ")");
    if (period == -1) period = sem->period();
    if (sem->period() != period)
      throw std::invalid_argument(
          "and_combine: AND-activation requires a common period (token buffers would grow "
          "without bound otherwise)");
    jitter = std::max(jitter, sem->jitter());
    d_min = std::min(d_min, sem->d_min());
  }
  return std::make_shared<StandardEventModel>(period, jitter, d_min);
}

}  // namespace hem
