#pragma once

/// \file leaky_bucket_model.hpp
/// Leaky-bucket (token-bucket) arrival model: the network-calculus style
/// specification "at most b events at once, then at most one event every
/// `spacing` ticks" - the affine arrival curve alpha(dt) = b + dt/spacing.
///
///   eta+(dt)  = b + floor((dt - 1) / spacing) + ...   (derived)
///   delta-(n) = max(0, (n - b) * spacing)             for n >= 2
///   delta+(n) = infinity                              (no lower arrival bound)
///
/// Useful to express specifications given as (burst, rate) pairs and to
/// cross-validate against Real-Time-Calculus-style inputs.  A leaky bucket
/// bounds only the eta+/delta- direction; eta- is zero (the stream may be
/// silent), matching the usual upper-arrival-curve semantics.

#include <string>

#include "core/event_model.hpp"

namespace hem {

class LeakyBucketModel final : public EventModel {
 public:
  /// \param burst    b >= 1 events that may arrive back to back.
  /// \param spacing  sustained minimum spacing (> 0) once the bucket is
  ///                 drained.
  LeakyBucketModel(Count burst, Time spacing);

  [[nodiscard]] Count burst() const noexcept { return burst_; }
  [[nodiscard]] Time spacing() const noexcept { return spacing_; }

  [[nodiscard]] std::string describe() const override;

 protected:
  [[nodiscard]] Time delta_min_raw(Count n) const override;
  [[nodiscard]] Time delta_plus_raw(Count n) const override;

 private:
  Count burst_;
  Time spacing_;
};

}  // namespace hem
