#pragma once

/// \file shaper.hpp
/// Greedy minimum-distance shaper (traffic shaping stream operation).
///
/// The shaper releases event i at s_i = max(a_i, s_{i-1} + d): events pass
/// through unchanged unless they would violate the minimum distance d.
/// With D := max_n ( (n-1) d - delta-(n) )^+ the worst-case shaping delay,
/// the output stream satisfies (the delta-domain counterpart of the
/// network-calculus result that a greedy shaper's output conforms to the
/// min-plus convolution of input arrival curve and shaping curve):
///
///   delta'-(n) = max_{k in [1, n]} ( delta-(k) + (n - k) d )
///   delta'+(n) = delta+(n) + D
///
/// The shaper is stable only if the input's long-run rate does not exceed
/// 1/d; otherwise the backlog (and D) grows without bound and construction
/// throws AnalysisError.  Shapers are the classic remedy for the transient
/// bursts that packing operations and jitter propagation create, and are
/// used in the ablation benchmarks to isolate the benefit of HEMs over
/// "shape the frame stream and stay flat" approaches.

#include <string>

#include "core/event_model.hpp"

namespace hem {

class MinDistanceShaper final : public EventModel {
 public:
  /// \param input       stream to shape.
  /// \param distance    d > 0, enforced minimum output distance.
  /// \param horizon     number of events scanned when bounding the shaping
  ///                    delay; the default is ample for streams whose curves
  ///                    settle within a few thousand events.
  /// \throws AnalysisError if the shaper is overloaded (delay bound still
  ///         growing at the scan horizon).
  explicit MinDistanceShaper(ModelPtr input, Time distance, Count horizon = 1 << 14);

  /// Worst-case delay the shaper adds to any event.
  [[nodiscard]] Time delay_bound() const noexcept { return delay_bound_; }

  [[nodiscard]] std::string describe() const override;

 protected:
  [[nodiscard]] Time delta_min_raw(Count n) const override;
  [[nodiscard]] Time delta_plus_raw(Count n) const override;

 private:
  ModelPtr input_;
  Time distance_;
  Time delay_bound_ = 0;
};

}  // namespace hem
