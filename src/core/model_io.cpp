#include "core/model_io.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace hem {

std::string format_time(Time t) {
  if (is_infinite(t)) return "inf";
  return std::to_string(t);
}

EtaSeries sample_eta_plus(const EventModel& model, std::string label, Time dt_max, Time step) {
  if (step <= 0 || dt_max < step)
    throw std::invalid_argument("sample_eta_plus: need 0 < step <= dt_max");
  EtaSeries s;
  s.label = std::move(label);
  for (Time dt = step; dt <= dt_max; dt += step) {
    s.dt.push_back(dt);
    s.value.push_back(model.eta_plus(dt));
  }
  return s;
}

std::string format_eta_table(const std::vector<EtaSeries>& series) {
  if (series.empty()) return {};
  const std::size_t rows = series.front().dt.size();
  for (const auto& s : series)
    if (s.dt.size() != rows)
      throw std::invalid_argument("format_eta_table: series have different sample counts");

  std::ostringstream os;
  os << std::setw(10) << "dt";
  for (const auto& s : series) os << std::setw(14) << s.label;
  os << '\n';
  for (std::size_t r = 0; r < rows; ++r) {
    os << std::setw(10) << series.front().dt[r];
    for (const auto& s : series) {
      if (is_infinite_count(s.value[r]))
        os << std::setw(14) << "inf";
      else
        os << std::setw(14) << s.value[r];
    }
    os << '\n';
  }
  return os.str();
}

void write_eta_csv(std::ostream& os, const std::vector<EtaSeries>& series) {
  if (series.empty()) return;
  os << "dt";
  for (const auto& s : series) os << ',' << s.label;
  os << '\n';
  const std::size_t rows = series.front().dt.size();
  for (std::size_t r = 0; r < rows; ++r) {
    os << series.front().dt[r];
    for (const auto& s : series) os << ',' << s.value[r];
    os << '\n';
  }
}

std::string format_delta_table(const EventModel& model, Count n_max) {
  std::ostringstream os;
  os << std::setw(6) << "n" << std::setw(14) << "delta-" << std::setw(14) << "delta+" << '\n';
  for (Count n = 2; n <= n_max; ++n) {
    os << std::setw(6) << n << std::setw(14) << format_time(model.delta_min(n)) << std::setw(14)
       << format_time(model.delta_plus(n)) << '\n';
  }
  return os.str();
}

}  // namespace hem
