#pragma once

/// \file delta_function_model.hpp
/// Event model defined by explicit delta curves.
///
/// Stores delta-(n) and delta+(n) point-wise for n = 2 .. 1 + prefix length
/// and extends both curves linearly beyond the stored prefix:
///
///   delta(n) = delta(n - q) + p        for n beyond the prefix
///
/// where (q, p) is the extension pair (q events recur every p ticks).  This
/// is the general "arbitrary curve" representation used to express measured
/// or hand-constructed streams (e.g. bursty patterns that no SEM captures),
/// mirroring the role of finite curve prefixes with periodic extension in
/// Real-Time Calculus tooling.

#include <string>
#include <vector>

#include "core/event_model.hpp"

namespace hem {

class DeltaFunctionModel final : public EventModel {
 public:
  /// \param dmin_prefix   delta-(2), delta-(3), ... (at least one value).
  /// \param dplus_prefix  delta+(2), delta+(3), ...; must have the same
  ///                      length as dmin_prefix.  Entries may be
  ///                      kTimeInfinity (and then all later ones must be).
  /// \param extension_events  q >= 1, events per extension period.
  /// \param extension_time    p >= 0, ticks per extension period
  ///                          (kTimeInfinity extends delta+ as unbounded).
  /// \throws std::invalid_argument if a curve is not non-decreasing, if
  ///         dmin exceeds dplus anywhere, or if the extension would break
  ///         monotonicity.
  DeltaFunctionModel(std::vector<Time> dmin_prefix, std::vector<Time> dplus_prefix,
                     Count extension_events, Time extension_time);

  /// A strictly periodic burst pattern: bursts of `burst_size` events with
  /// inner distance `inner_distance`, bursts repeating every `outer_period`.
  /// The classic stream shape that standard event models over-approximate.
  [[nodiscard]] static ModelPtr periodic_burst(Count burst_size, Time inner_distance,
                                               Time outer_period);

  /// True when this node was built by periodic_burst(), i.e. the burst-shape
  /// accessors below describe it exactly.  The textual `.hemcpa` format can
  /// only express that factory shape (`source ... burst size= inner=
  /// period=`), not arbitrary curve prefixes, so the serialiser
  /// (scenarios::to_config_text) keys off this flag.
  [[nodiscard]] bool is_periodic_burst() const noexcept { return burst_size_ >= 1; }
  [[nodiscard]] Count burst_size() const noexcept { return burst_size_; }
  [[nodiscard]] Time burst_inner() const noexcept { return burst_inner_; }
  [[nodiscard]] Time burst_outer() const noexcept { return burst_outer_; }

  [[nodiscard]] std::string describe() const override;

 protected:
  [[nodiscard]] Time delta_min_raw(Count n) const override;
  [[nodiscard]] Time delta_plus_raw(Count n) const override;

 private:
  [[nodiscard]] Time eval(const std::vector<Time>& prefix, Count n) const;

  std::vector<Time> dmin_;   // dmin_[i] == delta-(i + 2)
  std::vector<Time> dplus_;  // dplus_[i] == delta+(i + 2)
  Count ext_events_;
  Time ext_time_;
  // Burst-shape record, set only by the periodic_burst() factory.
  Count burst_size_ = 0;
  Time burst_inner_ = 0;
  Time burst_outer_ = 0;
};

}  // namespace hem
