#pragma once

/// \file output_model.hpp
/// Output event stream of an analysed task (operation Theta_tau).
///
/// Given the input stream F = (delta-, delta+) and the task's response-time
/// interval [r-, r+] delivered by local analysis, the output stream (paper,
/// section 3) is:
///
///   delta'-(n) = max{ delta-(n) - (r+ - r-),  delta'-(n - 1) + r- }
///   delta'+(n) = delta+(n) + (r+ - r-)
///
/// The first term of delta'- shifts the input curve by the response-time
/// spread (classic jitter propagation); the recursive second term encodes
/// that consecutive completions of one task on one resource are separated by
/// at least the minimum response time.

#include <atomic>
#include <string>

#include "core/curve_cache.hpp"
#include "core/event_model.hpp"

namespace hem {

class OutputModel final : public EventModel {
 public:
  /// \param input    activation stream of the analysed task.
  /// \param r_minus  minimum response time, 0 <= r- <= r+.
  /// \param r_plus   maximum response time (finite; an unbounded response
  ///                 time means the analysis failed upstream).
  OutputModel(ModelPtr input, Time r_minus, Time r_plus);

  [[nodiscard]] const ModelPtr& input() const noexcept { return input_; }
  [[nodiscard]] Time r_minus() const noexcept { return r_minus_; }
  [[nodiscard]] Time r_plus() const noexcept { return r_plus_; }

  [[nodiscard]] std::string describe() const override;

 protected:
  [[nodiscard]] Time delta_min_raw(Count n) const override;
  [[nodiscard]] Time delta_plus_raw(Count n) const override;

 private:
  ModelPtr input_;
  Time r_minus_;
  Time r_plus_;

  // The recursive delta'- is materialised incrementally: rec_[i] holds
  // delta'-(i + 2) for every prefix value computed so far, and rec_len_ is
  // the length of the published contiguous prefix.  Output nodes are shared
  // across concurrently analysed resources; instead of serialising prefix
  // extension behind a mutex (which would also serialise the input sub-DAG
  // queries it performs), each thread extends the recursion in a private
  // evaluation arena — the running `prev` value lives in its registers and
  // the input sub-DAG is queried with no lock held — and then publishes the
  // extension: slot stores into the lock-free table (races write identical
  // values; models are pure) followed by a CAS-max of rec_len_.  Readers
  // below rec_len_ (acquire) are guaranteed a complete prefix.
  mutable AtomicCurveCache rec_;
  mutable std::atomic<std::size_t> rec_len_{0};
};

}  // namespace hem
