#pragma once

/// \file event_model.hpp
/// Abstract event model: the function tuple F = (delta-(n), delta+(n)).
///
/// Following Richter's compositional analysis framework (and section 3 of
/// Rox/Ernst, DATE'08), an event stream is abstracted by four characteristic
/// functions:
///
///   eta+(dt)   - maximum number of events in any time interval of size dt
///   eta-(dt)   - minimum number of events in any time interval of size dt
///   delta-(n)  - minimum distance between the first and last of any
///                n consecutive events (a lower bound)
///   delta+(n)  - maximum distance between the first and last of any
///                n consecutive events (an upper bound)
///
/// eta+ and eta- are derivable from delta- and delta+ via the paper's
/// eqs. (1) and (2):
///
///   eta+(dt) = max_{n >= 2} [ { n | delta-(n) < dt } U { 1 } ]       (1)
///   eta-(dt) = min_{n >= 0}   { n | delta+(n + 2) > dt }             (2)
///
/// hence the library stores F = (delta-, delta+) as the primitive pair and
/// derives the eta functions generically (concrete models may override the
/// derivation with closed forms; consistency is checked by property tests).
///
/// Event models are immutable, shareable nodes: stream operations (OR
/// combination, task output calculation, shaping, packing) produce new nodes
/// referencing their operands, forming a DAG.  Evaluation is lazy and
/// memoised per node, so deeply composed models remain cheap to query.

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "core/curve_cache.hpp"
#include "core/time.hpp"

namespace hem::rtc {
struct CompileOptions;
class CompiledModel;
}  // namespace hem::rtc

namespace hem {

class EventModel;

/// Shared handle to an immutable event model node.
using ModelPtr = std::shared_ptr<const EventModel>;

/// Abstract base for all event models.
///
/// Derived classes implement `delta_min_raw(n)` / `delta_plus_raw(n)` for
/// n >= 2; the base class fixes the n < 2 boundary (distance between fewer
/// than two events is zero), memoises evaluations, and derives the eta
/// functions.  All query methods are `const`; models must be immutable after
/// construction.
class EventModel {
 public:
  virtual ~EventModel();

  EventModel(const EventModel&) = delete;
  EventModel& operator=(const EventModel&) = delete;

  /// Minimum distance between n consecutive events.  Zero for n < 2.
  /// Non-decreasing in n.  Served from the compiled flat form when the
  /// node has been lowered (see `ensure_compiled`), the lazy memoised DAG
  /// otherwise — the two are bit-identical inside the compiled horizon
  /// (checked by AX12).
  [[nodiscard]] Time delta_min(Count n) const;

  /// Maximum distance between n consecutive events.  Zero for n < 2.
  /// Non-decreasing in n; `kTimeInfinity` when unbounded.
  [[nodiscard]] Time delta_plus(Count n) const;

  /// Maximum number of events in any time interval of size dt (eq. 1).
  /// Returns 0 for dt <= 0 and `kCountInfinity` when the model allows
  /// unbounded bursts within dt.
  [[nodiscard]] Count eta_plus(Time dt) const;

  /// Minimum number of events in any time interval of size dt (eq. 2).
  /// Returns 0 when the stream can be silent for dt (e.g. delta+(2) = inf).
  [[nodiscard]] Count eta_minus(Time dt) const;

  /// The lazy DAG evaluation path, bypassing any compiled form.  Used by
  /// the lowering pass itself, by the compiled-vs-lazy contract checks
  /// (AX12/AX13), and as the baseline arm of the algebra benchmarks.
  [[nodiscard]] Time delta_min_lazy(Count n) const;
  [[nodiscard]] Time delta_plus_lazy(Count n) const;
  [[nodiscard]] Count eta_plus_lazy(Time dt) const;
  [[nodiscard]] Count eta_minus_lazy(Time dt) const;

  /// Lower this node to its flat compiled form (see rtc/compile.hpp) and
  /// cache it on the node.  Idempotent and thread-safe: the first
  /// publication wins and is never replaced, so returned references stay
  /// valid for the node's lifetime; a concurrent loser discards its own
  /// candidate.  Subsequent delta/eta queries consult the compiled form
  /// first and fall back to the lazy DAG beyond its horizon.
  const rtc::CompiledModel& ensure_compiled() const;
  const rtc::CompiledModel& ensure_compiled(const rtc::CompileOptions& options) const;

  /// The cached compiled form, or nullptr when the node was never lowered.
  [[nodiscard]] const rtc::CompiledModel* compiled() const noexcept {
    return compiled_.load(std::memory_order_acquire);
  }

  /// Largest number of events that may occur simultaneously, i.e. the
  /// largest n with delta-(n) == 0.  Used as parameter `k` of the inner
  /// update function (paper Def. 9).  At least 1 for any non-empty stream.
  [[nodiscard]] Count max_simultaneous_events() const { return eta_plus(1); }

  /// Human-readable description, used in reports and error messages.
  [[nodiscard]] virtual std::string describe() const = 0;

 protected:
  EventModel() = default;

  /// delta-(n) for n >= 2 (callee may assume n >= 2).
  [[nodiscard]] virtual Time delta_min_raw(Count n) const = 0;

  /// delta+(n) for n >= 2 (callee may assume n >= 2).
  [[nodiscard]] virtual Time delta_plus_raw(Count n) const = 0;

  /// Override point for closed-form eta+ (dt > 0 guaranteed).
  /// The default performs a galloping + binary search inversion of delta-.
  [[nodiscard]] virtual Count eta_plus_raw(Time dt) const;

  /// Override point for closed-form eta- (dt > 0 guaranteed).
  [[nodiscard]] virtual Count eta_minus_raw(Time dt) const;

 private:
  // Dense memoisation of delta values, indexed by n - 2.  Activation DAGs
  // are shared between resources that the CPA engine analyses on concurrent
  // worker threads; the memo tables are lock-free (see curve_cache.hpp) so
  // concurrent queries of one shared node never serialise behind each
  // other.  Raw evaluation happens before publication: models are pure, so
  // two threads racing on the same uncached n compute the same value and
  // the duplicated work is benign.
  mutable AtomicCurveCache dmin_cache_;
  mutable AtomicCurveCache dplus_cache_;

  // Flat compiled form (rtc/compile.hpp), owned by the node.  Published
  // once by a first-wins CAS in ensure_compiled(); queries take one acquire
  // load and then touch only immutable arrays.
  mutable std::atomic<const rtc::CompiledModel*> compiled_{nullptr};
};

/// Search ceiling for the generic eta+ inversion.  A well-formed stream's
/// delta-(n) grows without bound; if delta-(n) is still below the queried
/// interval at this n, the stream is treated as allowing unbounded bursts
/// and `kCountInfinity` is returned.
inline constexpr Count kEtaSearchCeiling = Count{1} << 24;

/// Compare two models by sampling both delta curves on n in [2, n_max].
/// Used for CPA fixpoint detection and in tests.
[[nodiscard]] bool models_equal(const EventModel& a, const EventModel& b, Count n_max);

}  // namespace hem
