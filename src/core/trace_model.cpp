#include "core/trace_model.hpp"

#include <algorithm>
#include <sstream>

namespace hem {

TraceModel::TraceModel(std::vector<Time> timestamps) : times_(std::move(timestamps)) {
  std::sort(times_.begin(), times_.end());
}

Time TraceModel::delta_min_raw(Count n) const {
  if (n > length()) return kTimeInfinity;
  Time best = kTimeInfinity;
  const auto span = static_cast<std::size_t>(n - 1);
  for (std::size_t i = 0; i + span < times_.size(); ++i)
    best = std::min(best, times_[i + span] - times_[i]);
  return best;
}

Time TraceModel::delta_plus_raw(Count n) const {
  if (n > length()) return kTimeInfinity;
  Time best = 0;
  const auto span = static_cast<std::size_t>(n - 1);
  for (std::size_t i = 0; i + span < times_.size(); ++i)
    best = std::max(best, times_[i + span] - times_[i]);
  return best;
}

Count TraceModel::max_events_in_window(Time dt) const {
  if (dt <= 0 || times_.empty()) return 0;
  Count best = 0;
  std::size_t lo = 0;
  for (std::size_t hi = 0; hi < times_.size(); ++hi) {
    while (times_[hi] - times_[lo] >= dt) ++lo;
    best = std::max(best, static_cast<Count>(hi - lo + 1));
  }
  return best;
}

std::string TraceModel::describe() const {
  std::ostringstream os;
  os << "Trace(" << times_.size() << " events";
  if (!times_.empty()) os << ", [" << times_.front() << ", " << times_.back() << "]";
  os << ")";
  return os.str();
}

}  // namespace hem
