#include "core/standard_event_model.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace hem {

StandardEventModel::StandardEventModel(Time period, Time jitter, Time d_min)
    : period_(period), jitter_(jitter), d_min_(d_min) {
  if (period <= 0) throw std::invalid_argument("SEM: period must be positive");
  if (is_infinite(period)) throw std::invalid_argument("SEM: period must be finite");
  if (jitter < 0) throw std::invalid_argument("SEM: jitter must be non-negative");
  if (d_min < 0) throw std::invalid_argument("SEM: d_min must be non-negative");
  if (d_min > period)
    throw std::invalid_argument("SEM: d_min > period is inconsistent with the long-run rate");
}

ModelPtr StandardEventModel::periodic(Time period) {
  return std::make_shared<StandardEventModel>(period, 0, period);
}

ModelPtr StandardEventModel::periodic_with_jitter(Time period, Time jitter) {
  return std::make_shared<StandardEventModel>(period, jitter, 0);
}

ModelPtr StandardEventModel::sporadic(Time period, Time jitter, Time d_min) {
  return std::make_shared<StandardEventModel>(period, jitter, d_min);
}

Time StandardEventModel::delta_min_raw(Count n) const {
  const Time spread = sat_mul(period_, n - 1);
  const Time jittered = std::max<Time>(0, sat_sub(spread, jitter_));
  return std::max(jittered, sat_mul(d_min_, n - 1));
}

Time StandardEventModel::delta_plus_raw(Count n) const {
  if (is_infinite(jitter_)) return kTimeInfinity;
  return sat_add(sat_mul(period_, n - 1), jitter_);
}

Count StandardEventModel::eta_plus_raw(Time dt) const {
  // Largest n with delta-(n) < dt, i.e. both (n-1)P - J < dt and
  // (n-1)dmin < dt.  Each bound inverts to a ceiling expression.
  if (is_infinite(dt)) return kCountInfinity;
  const Count by_period =
      is_infinite(jitter_) ? kCountInfinity : static_cast<Count>(ceil_div(dt + jitter_, period_));
  const Count by_dmin =
      d_min_ > 0 ? static_cast<Count>(ceil_div(dt, d_min_)) : kCountInfinity;
  const Count n = std::min(by_period, by_dmin);
  return n >= kCountInfinity ? kCountInfinity : n;
}

Count StandardEventModel::eta_minus_raw(Time dt) const {
  if (is_infinite(jitter_)) return 0;
  if (is_infinite(dt)) return kCountInfinity;
  if (dt <= jitter_) return 0;
  return static_cast<Count>(floor_div(dt - jitter_, period_));
}

std::string StandardEventModel::describe() const {
  std::ostringstream os;
  os << "SEM(P=" << period_ << ", J=" << jitter_ << ", dmin=" << d_min_ << ")";
  return os.str();
}

}  // namespace hem
