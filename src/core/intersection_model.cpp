#include "core/intersection_model.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace hem {

IntersectionModel::IntersectionModel(ModelPtr a, ModelPtr b, Count check_horizon)
    : a_(std::move(a)), b_(std::move(b)) {
  if (!a_ || !b_) throw std::invalid_argument("IntersectionModel: null input model");
  for (Count n = 2; n <= check_horizon; ++n) {
    if (delta_min_raw(n) > delta_plus_raw(n))
      throw std::invalid_argument(
          "IntersectionModel: contradictory specifications at n=" + std::to_string(n) + " (" +
          a_->describe() + " vs " + b_->describe() + ")");
  }
}

Time IntersectionModel::delta_min_raw(Count n) const {
  return std::max(a_->delta_min(n), b_->delta_min(n));
}

Time IntersectionModel::delta_plus_raw(Count n) const {
  return std::min(a_->delta_plus(n), b_->delta_plus(n));
}

std::string IntersectionModel::describe() const {
  std::ostringstream os;
  os << "Intersect(" << a_->describe() << ", " << b_->describe() << ")";
  return os.str();
}

}  // namespace hem
