#pragma once

/// \file curve_cache.hpp
/// Lock-free dense memo table for lazily evaluated curve samples.
///
/// Event-model nodes memoise delta-(n) / delta+(n) samples indexed by
/// n - 2.  The nodes are shared DAG vertices queried from every engine
/// worker thread at once, so the table must support concurrent reads and
/// insert-if-absent writes without serialising the (recursive, potentially
/// expensive) raw curve evaluation behind a lock.  Three properties of the
/// workload make a very simple design sufficient:
///
///   * values are pure functions of the index — two threads racing on the
///     same uncached index compute the SAME value, so duplicated work is
///     benign and "last writer wins" is correct;
///   * every value is a single non-negative 64-bit integer — one atomic
///     slot holds the complete payload, no slot ever needs a two-word
///     update;
///   * the index space is dense and grows from zero — a segmented array
///     with geometrically growing, individually published segments gives
///     O(1) wait-free lookup with bounded (2x) over-allocation and, unlike
///     a resizable vector, never moves published slots.
///
/// The table therefore is an array of `kSegments` atomically published
/// segments; segment s holds `kSeg0 << s` slots.  Readers take one acquire
/// load of the segment pointer plus one relaxed load of the slot; writers
/// allocate missing segments with a compare-exchange (the loser frees its
/// copy) and publish values with a single exchange.  No mutex, no spin —
/// every operation is wait-free apart from the one-time segment allocation.
///
/// Indices at or beyond `kCapacity` are not stored: `load` reports them
/// absent and `store` returns `kOverflow`.  Galloping searches probe indices
/// up to 2^24; bounding the table keeps a divergent probe from committing
/// gigabytes (the previous dense-vector design had the same cutoff).

#include <atomic>
#include <cstddef>

#include "core/time.hpp"

namespace hem {

class AtomicCurveCache {
 public:
  /// Sentinel for "not yet computed".  Curve samples are always >= 0, so -1
  /// can never be a legitimate value.
  static constexpr Time kUnset = -1;

  static constexpr std::size_t kSegments = 16;
  static constexpr std::size_t kSeg0 = 64;  ///< slots in segment 0
  /// Total slots: kSeg0 * (2^kSegments - 1) ~ 4.2M samples (~33 MB if a
  /// node is ever queried that densely; segments materialise on demand).
  static constexpr std::size_t kCapacity = kSeg0 * ((std::size_t{1} << kSegments) - 1);

  enum class StoreResult {
    kStored,     ///< first publication of this slot
    kDuplicate,  ///< another thread published the (identical) value first
    kOverflow,   ///< index beyond kCapacity; value not stored
  };

  AtomicCurveCache() = default;
  ~AtomicCurveCache() {
    for (auto& seg : segs_) delete[] seg.load(std::memory_order_relaxed);
  }

  AtomicCurveCache(const AtomicCurveCache&) = delete;
  AtomicCurveCache& operator=(const AtomicCurveCache&) = delete;

  /// Value at `idx`, or kUnset when absent or beyond capacity.  Wait-free.
  [[nodiscard]] Time load(std::size_t idx) const noexcept {
    if (idx >= kCapacity) return kUnset;
    const Pos p = locate(idx);
    const std::atomic<Time>* seg = segs_[p.seg].load(std::memory_order_acquire);
    if (seg == nullptr) return kUnset;
    // The slot is the complete payload: a relaxed load either observes
    // kUnset or a fully published value, never a torn one.
    return seg[p.off].load(std::memory_order_relaxed);
  }

  /// Publish `value` at `idx`.  Callers must only ever store one value per
  /// index (the memoised function is pure); kDuplicate reports that another
  /// thread won the race with the same value.
  StoreResult store(std::size_t idx, Time value) noexcept {
    bool allocated = false;
    return store(idx, value, allocated);
  }

  /// As above, and set `allocated` iff THIS call materialised the backing
  /// segment.  Per-call precise — unlike diffing `allocations()` around the
  /// call, which can observe (and misattribute) a concurrent caller's
  /// allocation on the same shared cache.
  StoreResult store(std::size_t idx, Time value, bool& allocated) noexcept {
    allocated = false;
    if (idx >= kCapacity) return StoreResult::kOverflow;
    const Pos p = locate(idx);
    std::atomic<Time>* seg = segment(p.seg, allocated);
    const Time prev = seg[p.off].exchange(value, std::memory_order_relaxed);
    return prev == kUnset ? StoreResult::kStored : StoreResult::kDuplicate;
  }

  /// Segments this cache has materialised so far (observability).
  [[nodiscard]] long allocations() const noexcept {
    return allocations_.load(std::memory_order_relaxed);
  }

 private:
  struct Pos {
    std::size_t seg;
    std::size_t off;
  };

  /// Segment s covers indices [kSeg0*(2^s - 1), kSeg0*(2^(s+1) - 1)).
  [[nodiscard]] static Pos locate(std::size_t idx) noexcept {
    std::size_t bucket = idx / kSeg0 + 1;  // >= 1
    std::size_t s = 0;
    while (bucket > 1) {
      bucket >>= 1;
      ++s;
    }
    return Pos{s, idx - kSeg0 * ((std::size_t{1} << s) - 1)};
  }

  /// Get segment `s`, allocating and publishing it if absent; `allocated`
  /// is set iff this call's candidate won the publication race.
  [[nodiscard]] std::atomic<Time>* segment(std::size_t s, bool& allocated) noexcept {
    std::atomic<Time>* seg = segs_[s].load(std::memory_order_acquire);
    if (seg != nullptr) return seg;
    const std::size_t size = kSeg0 << s;
    auto* fresh = new std::atomic<Time>[size];
    for (std::size_t i = 0; i < size; ++i) fresh[i].store(kUnset, std::memory_order_relaxed);
    std::atomic<Time>* expected = nullptr;
    // Release publication pairs with the acquire loads above, so readers of
    // the pointer see fully kUnset-initialised slots.
    if (segs_[s].compare_exchange_strong(expected, fresh, std::memory_order_release,
                                         std::memory_order_acquire)) {
      allocations_.fetch_add(1, std::memory_order_relaxed);
      allocated = true;
      return fresh;
    }
    delete[] fresh;  // another thread published first
    return expected;
  }

  mutable std::atomic<std::atomic<Time>*> segs_[kSegments] = {};
  std::atomic<long> allocations_{0};
};

}  // namespace hem
