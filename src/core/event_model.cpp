#include "core/event_model.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "rtc/compile.hpp"

namespace hem {

namespace {

// Observability probes for the per-node delta caches (aggregated across all
// nodes; recorded only while obs::counting() is on).  publish_race counts a
// store that lost to a concurrent identical computation — the lock-free
// analogue of the old lock_contention probe; segment_alloc counts memo
// arena (segment) materialisations.
obs::Counter& g_cache_hit = obs::registry().counter("engine.cache.hit");
obs::Counter& g_cache_miss = obs::registry().counter("engine.cache.miss");
obs::Counter& g_cache_race = obs::registry().counter("engine.cache.publish_race");
obs::Counter& g_cache_alloc = obs::registry().counter("engine.cache.segment_alloc");

/// Publish a computed sample, tracking duplicate-computation races and
/// fresh segment allocations.  The store itself reports whether THIS call
/// materialised a segment: diffing the cache-wide allocation counter around
/// the call would attribute a concurrent work unit's allocation on the same
/// shared node to whichever unit happened to be inside the window.
void publish(AtomicCurveCache& cache, std::size_t idx, Time v) {
  bool allocated = false;
  const auto result = cache.store(idx, v, allocated);
  if (!obs::counting()) return;
  if (result == AtomicCurveCache::StoreResult::kDuplicate) g_cache_race.add(1);
  if (allocated) g_cache_alloc.add(1);
}

}  // namespace

EventModel::~EventModel() { delete compiled_.load(std::memory_order_acquire); }

Time EventModel::delta_min(Count n) const {
  if (const auto* c = compiled_.load(std::memory_order_acquire)) {
    Time v;
    if (c->try_delta_min(n, v)) return v;
  }
  return delta_min_lazy(n);
}

Time EventModel::delta_plus(Count n) const {
  if (const auto* c = compiled_.load(std::memory_order_acquire)) {
    Time v;
    if (c->try_delta_plus(n, v)) return v;
  }
  return delta_plus_lazy(n);
}

Count EventModel::eta_plus(Time dt) const {
  if (const auto* c = compiled_.load(std::memory_order_acquire)) {
    Count v;
    if (c->try_eta_plus(dt, v)) return v;
  }
  return eta_plus_lazy(dt);
}

Count EventModel::eta_minus(Time dt) const {
  if (const auto* c = compiled_.load(std::memory_order_acquire)) {
    Count v;
    if (c->try_eta_minus(dt, v)) return v;
  }
  return eta_minus_lazy(dt);
}

Time EventModel::delta_min_lazy(Count n) const {
  if (n < 2) return 0;
  const auto idx = static_cast<std::size_t>(n - 2);
  const Time cached = dmin_cache_.load(idx);
  if (cached != AtomicCurveCache::kUnset) {
    obs::bump(g_cache_hit);
    return cached;
  }
  obs::bump(g_cache_miss);
  const Time v = delta_min_raw(n);  // evaluated before publication; models are pure
  publish(dmin_cache_, idx, v);
  return v;
}

Time EventModel::delta_plus_lazy(Count n) const {
  if (n < 2) return 0;
  const auto idx = static_cast<std::size_t>(n - 2);
  const Time cached = dplus_cache_.load(idx);
  if (cached != AtomicCurveCache::kUnset) {
    obs::bump(g_cache_hit);
    return cached;
  }
  obs::bump(g_cache_miss);
  const Time v = delta_plus_raw(n);  // evaluated before publication; models are pure
  publish(dplus_cache_, idx, v);
  return v;
}

Count EventModel::eta_plus_lazy(Time dt) const {
  if (dt <= 0) return 0;
  return eta_plus_raw(dt);
}

Count EventModel::eta_minus_lazy(Time dt) const {
  if (dt <= 0) return 0;
  return eta_minus_raw(dt);
}

const rtc::CompiledModel& EventModel::ensure_compiled() const {
  return ensure_compiled(rtc::CompileOptions{});
}

const rtc::CompiledModel& EventModel::ensure_compiled(const rtc::CompileOptions& options) const {
  if (const auto* existing = compiled_.load(std::memory_order_acquire)) return *existing;
  auto candidate = rtc::CompiledModel::lower(*this, options);
  const rtc::CompiledModel* expected = nullptr;
  const rtc::CompiledModel* raw = candidate.get();
  // First publication wins and is never replaced: queries may hold the
  // pointer across the CAS, so a published form must live as long as the
  // node.  The losing candidate was never visible and is safe to discard.
  if (compiled_.compare_exchange_strong(expected, raw, std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
    (void)candidate.release();
    return *raw;
  }
  return *expected;
}

Count EventModel::eta_plus_raw(Time dt) const {
  // eq. (1): eta+(dt) = max [ { n >= 2 | delta-(n) < dt } U { 1 } ].
  if (delta_min(2) >= dt) return 1;
  // Galloping search for the first n with delta-(n) >= dt.
  Count lo = 2;  // delta-(lo) < dt invariant
  Count hi = 4;
  while (hi <= kEtaSearchCeiling && delta_min(hi) < dt) {
    lo = hi;
    hi *= 2;
  }
  if (hi > kEtaSearchCeiling) return kCountInfinity;
  // Binary search: find largest n in [lo, hi) with delta-(n) < dt.
  while (lo + 1 < hi) {
    const Count mid = lo + (hi - lo) / 2;
    if (delta_min(mid) < dt)
      lo = mid;
    else
      hi = mid;
  }
  return lo;
}

Count EventModel::eta_minus_raw(Time dt) const {
  // eq. (2): eta-(dt) = min { n >= 0 | delta+(n + 2) > dt }.
  if (delta_plus(2) > dt) return 0;
  // Galloping search for the first n with delta+(n + 2) > dt.
  Count lo = 0;  // delta+(lo + 2) <= dt invariant
  Count hi = 2;
  while (hi <= kEtaSearchCeiling && delta_plus(hi + 2) <= dt) {
    lo = hi;
    hi *= 2;
  }
  if (hi > kEtaSearchCeiling) return kCountInfinity;
  while (lo + 1 < hi) {
    const Count mid = lo + (hi - lo) / 2;
    if (delta_plus(mid + 2) <= dt)
      lo = mid;
    else
      hi = mid;
  }
  return hi;
}

bool models_equal(const EventModel& a, const EventModel& b, Count n_max) {
  // Nodes are immutable, so pointer identity implies equality; the sample
  // loop below exits on the first mismatch and reads memoised delta values
  // on nodes that were queried before.
  if (&a == &b) return true;
  for (Count n = 2; n <= n_max; ++n) {
    if (a.delta_min(n) != b.delta_min(n)) return false;
    if (a.delta_plus(n) != b.delta_plus(n)) return false;
  }
  return true;
}

}  // namespace hem
