#include "core/event_model.hpp"

#include <algorithm>

#include "obs/obs.hpp"

namespace hem {

namespace {

constexpr Time kUnset = -1;

/// Upper bound on the dense delta caches; very large n (from galloping
/// searches) are computed without being stored.
constexpr std::size_t kMaxCache = std::size_t{1} << 20;

// Observability probes for the per-node delta caches (aggregated across all
// nodes; recorded only while obs::counting() is on).
obs::Counter& g_cache_hit = obs::registry().counter("model.delta_cache.hit");
obs::Counter& g_cache_miss = obs::registry().counter("model.delta_cache.miss");
obs::Counter& g_cache_contention = obs::registry().counter("model.delta_cache.lock_contention");

}  // namespace

Time EventModel::delta_min(Count n) const {
  if (n < 2) return 0;
  const auto idx = static_cast<std::size_t>(n - 2);
  {
    std::unique_lock<std::mutex> lock(cache_mu_, std::defer_lock);
    obs::lock_counted(lock, g_cache_contention);
    if (idx < dmin_cache_.size() && dmin_cache_[idx] != kUnset) {
      obs::bump(g_cache_hit);
      return dmin_cache_[idx];
    }
  }
  obs::bump(g_cache_miss);
  const Time v = delta_min_raw(n);  // evaluated unlocked; see cache_mu_ note
  std::unique_lock<std::mutex> lock(cache_mu_, std::defer_lock);
  obs::lock_counted(lock, g_cache_contention);
  if (idx >= dmin_cache_.size() && idx < kMaxCache)
    dmin_cache_.resize(std::max(dmin_cache_.size() * 2, idx + 1), kUnset);
  if (idx < dmin_cache_.size()) dmin_cache_[idx] = v;
  return v;
}

Time EventModel::delta_plus(Count n) const {
  if (n < 2) return 0;
  const auto idx = static_cast<std::size_t>(n - 2);
  {
    std::unique_lock<std::mutex> lock(cache_mu_, std::defer_lock);
    obs::lock_counted(lock, g_cache_contention);
    if (idx < dplus_cache_.size() && dplus_cache_[idx] != kUnset) {
      obs::bump(g_cache_hit);
      return dplus_cache_[idx];
    }
  }
  obs::bump(g_cache_miss);
  const Time v = delta_plus_raw(n);  // evaluated unlocked; see cache_mu_ note
  std::unique_lock<std::mutex> lock(cache_mu_, std::defer_lock);
  obs::lock_counted(lock, g_cache_contention);
  if (idx >= dplus_cache_.size() && idx < kMaxCache)
    dplus_cache_.resize(std::max(dplus_cache_.size() * 2, idx + 1), kUnset);
  if (idx < dplus_cache_.size()) dplus_cache_[idx] = v;
  return v;
}

Count EventModel::eta_plus(Time dt) const {
  if (dt <= 0) return 0;
  return eta_plus_raw(dt);
}

Count EventModel::eta_minus(Time dt) const {
  if (dt <= 0) return 0;
  return eta_minus_raw(dt);
}

Count EventModel::eta_plus_raw(Time dt) const {
  // eq. (1): eta+(dt) = max [ { n >= 2 | delta-(n) < dt } U { 1 } ].
  if (delta_min(2) >= dt) return 1;
  // Galloping search for the first n with delta-(n) >= dt.
  Count lo = 2;  // delta-(lo) < dt invariant
  Count hi = 4;
  while (hi <= kEtaSearchCeiling && delta_min(hi) < dt) {
    lo = hi;
    hi *= 2;
  }
  if (hi > kEtaSearchCeiling) return kCountInfinity;
  // Binary search: find largest n in [lo, hi) with delta-(n) < dt.
  while (lo + 1 < hi) {
    const Count mid = lo + (hi - lo) / 2;
    if (delta_min(mid) < dt)
      lo = mid;
    else
      hi = mid;
  }
  return lo;
}

Count EventModel::eta_minus_raw(Time dt) const {
  // eq. (2): eta-(dt) = min { n >= 0 | delta+(n + 2) > dt }.
  if (delta_plus(2) > dt) return 0;
  // Galloping search for the first n with delta+(n + 2) > dt.
  Count lo = 0;  // delta+(lo + 2) <= dt invariant
  Count hi = 2;
  while (hi <= kEtaSearchCeiling && delta_plus(hi + 2) <= dt) {
    lo = hi;
    hi *= 2;
  }
  if (hi > kEtaSearchCeiling) return kCountInfinity;
  while (lo + 1 < hi) {
    const Count mid = lo + (hi - lo) / 2;
    if (delta_plus(mid + 2) <= dt)
      lo = mid;
    else
      hi = mid;
  }
  return hi;
}

bool models_equal(const EventModel& a, const EventModel& b, Count n_max) {
  // Nodes are immutable, so pointer identity implies equality; the sample
  // loop below exits on the first mismatch and reads memoised delta values
  // on nodes that were queried before.
  if (&a == &b) return true;
  for (Count n = 2; n <= n_max; ++n) {
    if (a.delta_min(n) != b.delta_min(n)) return false;
    if (a.delta_plus(n) != b.delta_plus(n)) return false;
  }
  return true;
}

}  // namespace hem
