#include "core/output_model.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "obs/obs.hpp"

namespace hem {

namespace {

// Probes for the materialised delta'- recursion shared across threads.
// publish_race counts prefix extensions another thread (redundantly,
// identically) computed first — the lock-free analogue of the old
// lock_contention probe.
obs::Counter& g_rec_hit = obs::registry().counter("engine.cache.rec_hit");
obs::Counter& g_rec_extend = obs::registry().counter("engine.cache.rec_extend");
obs::Counter& g_rec_race = obs::registry().counter("engine.cache.rec_publish_race");

}  // namespace

OutputModel::OutputModel(ModelPtr input, Time r_minus, Time r_plus)
    : input_(std::move(input)), r_minus_(r_minus), r_plus_(r_plus) {
  if (!input_) throw std::invalid_argument("OutputModel: null input model");
  if (r_minus < 0 || r_plus < r_minus)
    throw std::invalid_argument("OutputModel: need 0 <= r- <= r+");
  if (is_infinite(r_plus))
    throw std::invalid_argument("OutputModel: unbounded response time (analysis failed?)");
}

Time OutputModel::delta_min_raw(Count n) const {
  const auto need = static_cast<std::size_t>(n - 2);  // base class guarantees n >= 2
  const std::size_t have = rec_len_.load(std::memory_order_acquire);
  if (have > need) {
    // Slots below the published prefix length are complete: the release
    // CAS below pairs with this acquire load.
    obs::bump(g_rec_hit);
    return rec_.load(need);
  }
  obs::bump(g_rec_extend);

  // Extend the recursion in a private arena: `prev` rides in a register,
  // the input sub-DAG is queried with no lock held, and concurrent
  // extensions of the same range compute identical values (the model is
  // pure), so the racing slot stores are benign.
  const Time spread = r_plus_ - r_minus_;
  Time prev = have == 0 ? 0 : rec_.load(have - 1);  // delta'-(have + 1)
  for (std::size_t i = have; i <= need; ++i) {
    const auto m = static_cast<Count>(i) + 2;  // the n this slot holds
    const Time shifted = std::max<Time>(0, sat_sub(input_->delta_min(m), spread));
    prev = std::max(shifted, sat_add(prev, r_minus_));
    (void)rec_.store(i, prev);
  }

  // Publish the extended prefix with a CAS-max, capped at the table's
  // capacity (an unstored slot must never fall below the published length).
  const std::size_t len = std::min(need + 1, AtomicCurveCache::kCapacity);
  std::size_t cur = rec_len_.load(std::memory_order_relaxed);
  while (cur < len) {
    if (rec_len_.compare_exchange_weak(cur, len, std::memory_order_release,
                                       std::memory_order_relaxed))
      break;
    obs::bump(g_rec_race);
  }
  return prev;
}

Time OutputModel::delta_plus_raw(Count n) const {
  return sat_add(input_->delta_plus(n), r_plus_ - r_minus_);
}

std::string OutputModel::describe() const {
  std::ostringstream os;
  os << "Out(" << input_->describe() << ", r=[" << r_minus_ << ":" << r_plus_ << "])";
  return os.str();
}

}  // namespace hem
