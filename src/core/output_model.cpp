#include "core/output_model.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "obs/obs.hpp"

namespace hem {

namespace {

// Probes for the materialised delta'- recursion shared across threads.
obs::Counter& g_rec_hit = obs::registry().counter("model.output_rec.hit");
obs::Counter& g_rec_extend = obs::registry().counter("model.output_rec.extend");
obs::Counter& g_rec_contention = obs::registry().counter("model.output_rec.lock_contention");

}  // namespace

OutputModel::OutputModel(ModelPtr input, Time r_minus, Time r_plus)
    : input_(std::move(input)), r_minus_(r_minus), r_plus_(r_plus) {
  if (!input_) throw std::invalid_argument("OutputModel: null input model");
  if (r_minus < 0 || r_plus < r_minus)
    throw std::invalid_argument("OutputModel: need 0 <= r- <= r+");
  if (is_infinite(r_plus))
    throw std::invalid_argument("OutputModel: unbounded response time (analysis failed?)");
}

Time OutputModel::delta_min_raw(Count n) const {
  std::unique_lock<std::mutex> lock(rec_mu_, std::defer_lock);
  obs::lock_counted(lock, g_rec_contention);
  if (static_cast<Count>(rec_dmin_.size()) + 1 >= n)
    obs::bump(g_rec_hit);
  else
    obs::bump(g_rec_extend);
  const Time spread = r_plus_ - r_minus_;
  // Extend the materialised recursion up to n.
  while (static_cast<Count>(rec_dmin_.size()) + 1 < n) {
    const Count m = static_cast<Count>(rec_dmin_.size()) + 2;  // next n to compute
    const Time prev = rec_dmin_.empty() ? 0 : rec_dmin_.back();  // delta'-(m - 1)
    const Time shifted = std::max<Time>(0, sat_sub(input_->delta_min(m), spread));
    rec_dmin_.push_back(std::max(shifted, sat_add(prev, r_minus_)));
  }
  return rec_dmin_[static_cast<std::size_t>(n - 2)];
}

Time OutputModel::delta_plus_raw(Count n) const {
  return sat_add(input_->delta_plus(n), r_plus_ - r_minus_);
}

std::string OutputModel::describe() const {
  std::ostringstream os;
  os << "Out(" << input_->describe() << ", r=[" << r_minus_ << ":" << r_plus_ << "])";
  return os.str();
}

}  // namespace hem
