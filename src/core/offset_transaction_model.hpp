#pragma once

/// \file offset_transaction_model.hpp
/// Transaction source: k events per period T at fixed offsets, each with a
/// release jitter.  Models multi-rate runnables triggered from one OS
/// table, or frames scheduled at offsets to de-burst a bus (the classic
/// "offset scheduling" optimisation).
///
/// Events: t = m * T + o_i + x,  x in [0, J],  i in [0, k).
/// Exact curves are computed by enumerating window start offsets over one
/// hyper-period (the offset pattern repeats with T):
///
///   delta-(n) = min_i ( span_i(n) ) - J
///   delta+(n) = max_i ( span_i(n) ) + J
///
/// where span_i(n) is the distance from offset event i to the (n-1)-th
/// next offset event in the nominal (jitter-free) pattern.  Requires
/// J small enough to keep event order stable (J <= min inter-offset gap),
/// which the constructor enforces; this keeps the curves exact instead of
/// conservative.

#include <string>
#include <vector>

#include "core/event_model.hpp"

namespace hem {

class OffsetTransactionModel final : public EventModel {
 public:
  /// \param period   T > 0.
  /// \param offsets  event offsets within the period; values in [0, T),
  ///                 at least one, will be sorted; duplicates allowed only
  ///                 when jitter == 0.
  /// \param jitter   J >= 0 per-event release jitter; must not exceed the
  ///                 smallest inter-offset gap (order stability).
  OffsetTransactionModel(Time period, std::vector<Time> offsets, Time jitter = 0);

  [[nodiscard]] Time period() const noexcept { return period_; }
  [[nodiscard]] const std::vector<Time>& offsets() const noexcept { return offsets_; }
  [[nodiscard]] Time jitter() const noexcept { return jitter_; }

  [[nodiscard]] std::string describe() const override;

 protected:
  [[nodiscard]] Time delta_min_raw(Count n) const override;
  [[nodiscard]] Time delta_plus_raw(Count n) const override;

 private:
  /// Nominal distance from offset event `i` to the event `steps` positions
  /// later in the infinite offset pattern.
  [[nodiscard]] Time nominal_span(std::size_t i, Count steps) const;

  Time period_;
  std::vector<Time> offsets_;
  Time jitter_;
};

}  // namespace hem
