#include "core/sem_fit.hpp"

#include <algorithm>

#include "core/errors.hpp"

namespace hem {

std::shared_ptr<const StandardEventModel> fit_sem(const EventModel& model, Time period,
                                                  SemFitOptions options) {
  if (period < 0) throw std::invalid_argument("fit_sem: negative period");
  Time p = period;
  if (p == 0) {
    const Count n = model.eta_plus(options.rate_horizon);
    if (is_infinite_count(n))
      throw AnalysisError("fit_sem: model admits unbounded bursts (" + model.describe() + ")");
    if (n == 0)
      throw AnalysisError("fit_sem: cannot estimate a rate for " + model.describe());
    // Floor: a smaller period admits more events, the conservative
    // direction for interference bounds.
    p = std::max<Time>(1, options.rate_horizon / n);
  }

  const Time d_min = std::min(model.delta_min(2), p);

  Time jitter = 0;
  for (Count n = 2; n <= options.horizon_events; ++n) {
    const Time nominal = sat_mul(p, n - 1);
    const Time dmin_n = model.delta_min(n);
    if (is_infinite(dmin_n)) break;  // finite stream; transient fully covered
    jitter = std::max(jitter, nominal - dmin_n);
    const Time dplus_n = model.delta_plus(n);
    // delta+ = inf (e.g. pending streams) cannot be matched by any finite
    // SEM; the fit then only bounds the eta+/delta- direction, which is
    // the one interference analysis consumes.
    if (!is_infinite(dplus_n)) jitter = std::max(jitter, dplus_n - nominal);
  }

  return std::make_shared<StandardEventModel>(p, jitter, std::max<Time>(d_min, 0));
}

}  // namespace hem
