#pragma once

/// \file sem_fit.hpp
/// Fitting a Standard Event Model to an arbitrary event model.
///
/// Classic compositional tools (SymTA/S) propagate PARAMETERS, not curves:
/// after local analysis, the output stream is re-fitted to the (P, J, dmin)
/// triple, losing curve information but keeping the representation closed.
/// This module provides that lossy fit:
///
///   P    - preserved from the long-run rate (the fit assumes the input has
///          a well-defined period; for OR-combinations of periodic streams
///          the fit uses the measured long-run rate over a horizon)
///   dmin - delta-(2)
///   J    - the smallest jitter such that the SEM curves bound the model's
///          curves on the fitted horizon:
///            J >= (n-1)P - delta-(n)   and   J >= delta+(n) - (n-1)P
///
/// The fitted SEM CONTAINS the original model (every behaviour admitted by
/// the model is admitted by the SEM) on the fitted horizon; the ablation
/// benchmark bench_ablation_semfit quantifies how much precision the fit
/// costs compared to exact curve propagation.

#include "core/event_model.hpp"
#include "core/standard_event_model.hpp"

namespace hem {

struct SemFitOptions {
  /// Number of curve points used for the fit (n = 2 .. horizon_events).
  Count horizon_events = 256;
  /// Horizon used to estimate the long-run period when none is supplied.
  Time rate_horizon = 1'000'000;
};

/// Fit a SEM that conservatively bounds `model`.
/// \param period  long-run period to use; pass 0 to estimate it from the
///                model's eta+ over the rate horizon (rounded down, which
///                is the conservative direction for interference).
/// \throws AnalysisError if the model admits unbounded bursts (no finite
///         SEM can bound it) or the rate cannot be estimated.
[[nodiscard]] std::shared_ptr<const StandardEventModel> fit_sem(const EventModel& model,
                                                                Time period = 0,
                                                                SemFitOptions options = {});

}  // namespace hem
