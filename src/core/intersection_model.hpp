#pragma once

/// \file intersection_model.hpp
/// Intersection of two event-model specifications: a stream known to
/// conform to BOTH models conforms to the point-wise tightest combination
///
///   delta-(n) = max( a.delta-(n), b.delta-(n) )
///   delta+(n) = min( a.delta+(n), b.delta+(n) )
///
/// Useful when independent knowledge sources constrain the same stream
/// (e.g. a leaky-bucket contract plus a measured trace envelope, or a SEM
/// datasheet plus an offset table).  Construction validates consistency
/// (delta- <= delta+ point-wise on a horizon); contradictory
/// specifications are rejected.

#include <string>

#include "core/event_model.hpp"

namespace hem {

class IntersectionModel final : public EventModel {
 public:
  /// \param check_horizon  number of curve points validated for
  ///                       consistency at construction.
  IntersectionModel(ModelPtr a, ModelPtr b, Count check_horizon = 64);

  [[nodiscard]] std::string describe() const override;

 protected:
  [[nodiscard]] Time delta_min_raw(Count n) const override;
  [[nodiscard]] Time delta_plus_raw(Count n) const override;

 private:
  ModelPtr a_;
  ModelPtr b_;
};

}  // namespace hem
