#pragma once

/// \file standard_event_model.hpp
/// Standard Event Models (SEM) after Richter: the parameter triple
/// (period P, jitter J, minimum distance dmin) used by SymTA/S as the
/// parameterised representation of the four characteristic functions.
///
/// Curves:
///   delta-(n) = max( (n-1) * P - J, (n-1) * dmin )      for n >= 2
///   delta+(n) = (n-1) * P + J                           for n >= 2
///   eta+(dt)  = min( ceil((dt + J) / P), ceil(dt / dmin) )   for dt > 0
///   eta-(dt)  = max( 0, floor((dt - J) / P) )
///
/// The closed-form eta functions override the generic pseudo-inversion; a
/// property test asserts that both agree on dense parameter sweeps.

#include <string>

#include "core/event_model.hpp"

namespace hem {

/// Periodic-with-jitter event model, optionally burst-limited by dmin.
class StandardEventModel final : public EventModel {
 public:
  /// \param period  P > 0, the long-run distance between events.
  /// \param jitter  J >= 0, maximum deviation from the periodic grid.
  /// \param d_min   dmin >= 0, minimum distance between any two events.
  ///                dmin > P is invalid (the stream could not sustain P).
  /// \throws std::invalid_argument on out-of-range parameters.
  StandardEventModel(Time period, Time jitter, Time d_min);

  /// Strictly periodic stream (J = 0, dmin = P).
  [[nodiscard]] static ModelPtr periodic(Time period);

  /// Periodic stream with jitter (dmin defaults to 0: simultaneous arrivals
  /// allowed when J >= P, the classic "burst" regime).
  [[nodiscard]] static ModelPtr periodic_with_jitter(Time period, Time jitter);

  /// Sporadic stream: events at least `d_min` apart, long-run period P.
  [[nodiscard]] static ModelPtr sporadic(Time period, Time jitter, Time d_min);

  [[nodiscard]] Time period() const noexcept { return period_; }
  [[nodiscard]] Time jitter() const noexcept { return jitter_; }
  [[nodiscard]] Time d_min() const noexcept { return d_min_; }

  [[nodiscard]] std::string describe() const override;

 protected:
  [[nodiscard]] Time delta_min_raw(Count n) const override;
  [[nodiscard]] Time delta_plus_raw(Count n) const override;
  [[nodiscard]] Count eta_plus_raw(Time dt) const override;
  [[nodiscard]] Count eta_minus_raw(Time dt) const override;

 private:
  Time period_;
  Time jitter_;
  Time d_min_;
};

}  // namespace hem
