#pragma once

/// \file time.hpp
/// Discrete time base for the HEM/CPA library.
///
/// All timing quantities (periods, jitters, distances, response times) are
/// expressed as integer ticks.  The tick granularity is chosen by the user of
/// the library (the paper's example uses abstract time units).  Infinity is a
/// first-class value: the hierarchical event model assigns
/// `delta+ = infinity` to pending signal streams (paper eq. 8), and
/// `eta-` of any stream with unbounded gaps is zero.  All arithmetic helpers
/// below saturate at infinity instead of overflowing.

#include <cassert>
#include <cstdint>
#include <limits>

namespace hem {

/// A point or span in discrete time, measured in ticks.
using Time = std::int64_t;

/// A number of events.
using Count = std::int64_t;

/// Sentinel for an unbounded time span.  One quarter of the representable
/// range so that sums of a few "infinities" cannot wrap around.
inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::max() / 4;

/// Sentinel for an unbounded event count (e.g. eta+ of a stream that allows
/// infinitely dense bursts).
inline constexpr Count kCountInfinity = std::numeric_limits<Count>::max() / 4;

/// True if `t` represents an unbounded span.
[[nodiscard]] constexpr bool is_infinite(Time t) noexcept { return t >= kTimeInfinity; }

/// True if `n` represents an unbounded count.
[[nodiscard]] constexpr bool is_infinite_count(Count n) noexcept {
  return n >= kCountInfinity;
}

/// Saturating addition: infinity absorbs.
[[nodiscard]] constexpr Time sat_add(Time a, Time b) noexcept {
  if (is_infinite(a) || is_infinite(b)) return kTimeInfinity;
  const Time s = a + b;
  return s >= kTimeInfinity ? kTimeInfinity : s;
}

/// Saturating subtraction: `infinity - finite == infinity`.
/// Subtracting from a finite value never saturates (result may be negative).
[[nodiscard]] constexpr Time sat_sub(Time a, Time b) noexcept {
  if (is_infinite(a)) return kTimeInfinity;
  assert(!is_infinite(b) && "cannot subtract infinity from a finite time");
  return a - b;
}

/// Saturating multiplication of a time by a non-negative count.
[[nodiscard]] constexpr Time sat_mul(Time a, Count k) noexcept {
  assert(k >= 0);
  if (k == 0) return 0;
  if (is_infinite(a)) return kTimeInfinity;
  if (a != 0 && k > kTimeInfinity / (a < 0 ? -a : a)) return kTimeInfinity;
  const Time p = a * k;
  return p >= kTimeInfinity ? kTimeInfinity : p;
}

/// Ceiling division of non-negative integers; `ceil_div(x, y) == ceil(x/y)`.
[[nodiscard]] constexpr Time ceil_div(Time num, Time den) noexcept {
  assert(den > 0);
  assert(num >= 0);
  return (num + den - 1) / den;
}

/// Floor division that is well defined for negative numerators
/// (rounds towards minus infinity, unlike C++ integer division).
[[nodiscard]] constexpr Time floor_div(Time num, Time den) noexcept {
  assert(den > 0);
  Time q = num / den;
  if (num % den != 0 && num < 0) --q;
  return q;
}

}  // namespace hem
