#include "core/leaky_bucket_model.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace hem {

LeakyBucketModel::LeakyBucketModel(Count burst, Time spacing)
    : burst_(burst), spacing_(spacing) {
  if (burst < 1) throw std::invalid_argument("LeakyBucketModel: burst must be >= 1");
  if (spacing <= 0) throw std::invalid_argument("LeakyBucketModel: spacing must be > 0");
}

Time LeakyBucketModel::delta_min_raw(Count n) const {
  if (n <= burst_) return 0;
  return sat_mul(spacing_, n - burst_);
}

Time LeakyBucketModel::delta_plus_raw(Count) const { return kTimeInfinity; }

std::string LeakyBucketModel::describe() const {
  std::ostringstream os;
  os << "LeakyBucket(b=" << burst_ << ", spacing=" << spacing_ << ")";
  return os.str();
}

}  // namespace hem
