#pragma once

/// \file trace_model.hpp
/// Event model derived from a concrete, finite event trace.
///
/// Given the timestamps of one observed event sequence, the trace model
/// reports the tightest delta curves consistent with that observation:
///
///   delta-(n) = min_i ( t[i + n - 1] - t[i] )
///   delta+(n) = max_i ( t[i + n - 1] - t[i] )
///
/// For n beyond the trace length both curves are `kTimeInfinity` (the trace
/// observes nothing there).  A TraceModel is an *observation summary*, used
/// by the simulator-based validation to check analytic bounds
/// (observed eta+ <= analytic eta+, observed delta- >= analytic delta-); it
/// is not a sound abstraction of the underlying stream beyond the trace.

#include <string>
#include <vector>

#include "core/event_model.hpp"

namespace hem {

class TraceModel final : public EventModel {
 public:
  /// \param timestamps  event times; will be sorted.  May be empty.
  explicit TraceModel(std::vector<Time> timestamps);

  [[nodiscard]] Count length() const noexcept { return static_cast<Count>(times_.size()); }
  [[nodiscard]] const std::vector<Time>& timestamps() const noexcept { return times_; }

  /// Largest number of trace events inside any half-open window [t, t + dt).
  /// Equals eta_plus(dt) derived from the delta curves via eq. (1); exposed
  /// separately for direct window-counting cross-checks in tests.
  [[nodiscard]] Count max_events_in_window(Time dt) const;

  [[nodiscard]] std::string describe() const override;

 protected:
  [[nodiscard]] Time delta_min_raw(Count n) const override;
  [[nodiscard]] Time delta_plus_raw(Count n) const override;

 private:
  std::vector<Time> times_;
};

}  // namespace hem
