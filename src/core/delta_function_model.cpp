#include "core/delta_function_model.hpp"

#include <sstream>
#include <stdexcept>

namespace hem {

namespace {

void check_monotone(const std::vector<Time>& v, const char* name) {
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i] < v[i - 1])
      throw std::invalid_argument(std::string("DeltaFunctionModel: ") + name +
                                  " must be non-decreasing");
  }
}

}  // namespace

DeltaFunctionModel::DeltaFunctionModel(std::vector<Time> dmin_prefix,
                                       std::vector<Time> dplus_prefix, Count extension_events,
                                       Time extension_time)
    : dmin_(std::move(dmin_prefix)),
      dplus_(std::move(dplus_prefix)),
      ext_events_(extension_events),
      ext_time_(extension_time) {
  if (dmin_.empty()) throw std::invalid_argument("DeltaFunctionModel: empty dmin prefix");
  if (dmin_.size() != dplus_.size())
    throw std::invalid_argument("DeltaFunctionModel: prefix length mismatch");
  if (ext_events_ < 1)
    throw std::invalid_argument("DeltaFunctionModel: extension_events must be >= 1");
  if (ext_time_ < 0)
    throw std::invalid_argument("DeltaFunctionModel: extension_time must be >= 0");
  check_monotone(dmin_, "dmin");
  check_monotone(dplus_, "dplus");
  for (std::size_t i = 0; i < dmin_.size(); ++i) {
    if (dmin_[i] < 0) throw std::invalid_argument("DeltaFunctionModel: negative distance");
    if (dmin_[i] > dplus_[i])
      throw std::invalid_argument("DeltaFunctionModel: dmin must not exceed dplus");
  }
  // Extension must keep the curves non-decreasing: stepping back q events and
  // adding p must not drop below the last prefix value.
  if (static_cast<Count>(dmin_.size()) > ext_events_) {
    const std::size_t last = dmin_.size() - 1;
    const std::size_t back = last - static_cast<std::size_t>(ext_events_);
    if (sat_add(dmin_[back], ext_time_) < dmin_[last] ||
        sat_add(dplus_[back], ext_time_) < dplus_[last])
      throw std::invalid_argument("DeltaFunctionModel: extension breaks monotonicity");
  }
}

ModelPtr DeltaFunctionModel::periodic_burst(Count burst_size, Time inner_distance,
                                            Time outer_period) {
  if (burst_size < 1) throw std::invalid_argument("periodic_burst: burst_size must be >= 1");
  if (inner_distance < 0 || outer_period <= 0)
    throw std::invalid_argument("periodic_burst: invalid distances");
  if (sat_mul(inner_distance, burst_size - 1) >= outer_period)
    throw std::invalid_argument("periodic_burst: burst does not fit into the outer period");
  // Exact distances within one hyper-period of burst_size events: the i-th
  // and (i+n-1)-th event of the pattern.  Because the pattern is strictly
  // periodic, delta- == delta+ and one period of values suffices.
  std::vector<Time> prefix;
  for (Count n = 2; n <= burst_size + 1; ++n) {
    // n consecutive events span (n - 1) inner gaps unless they wrap the
    // outer period boundary; minimum span keeps them within one burst where
    // possible, maximum span wraps as early as possible.
    if (n <= burst_size) {
      prefix.push_back(inner_distance * (n - 1));
    } else {
      // n == burst_size + 1: must wrap exactly once.
      prefix.push_back(outer_period);
    }
  }
  std::vector<Time> dmin = prefix;
  std::vector<Time> dplus(prefix.size());
  // Maximum span of n events: start as late in a burst as possible so the
  // window wraps the inter-burst gap as often as possible.  For n within
  // one burst-worth of events the worst case spans the gap once:
  for (Count n = 2; n <= burst_size + 1; ++n) {
    if (n <= burst_size) {
      // A window of n <= B events either stays inside one burst
      // (span (n-1)*d) or straddles the inter-burst gap exactly once; a
      // straddling window starting at in-burst index i spans
      // T + (n - B - 1) * d independent of i.
      dplus[static_cast<std::size_t>(n - 2)] =
          outer_period - inner_distance * (burst_size - (n - 1));
    } else {
      // n == B + 1 events always span exactly one full outer period.
      dplus[static_cast<std::size_t>(n - 2)] = outer_period;
    }
  }
  // Monotonicity fix-up (the straddle formula can undershoot dmin for tiny n
  // when inner_distance is large relative to the gap).
  for (std::size_t i = 0; i < dplus.size(); ++i) {
    if (dplus[i] < dmin[i]) dplus[i] = dmin[i];
    if (i > 0 && dplus[i] < dplus[i - 1]) dplus[i] = dplus[i - 1];
  }
  auto model = std::make_shared<DeltaFunctionModel>(std::move(dmin), std::move(dplus),
                                                    burst_size, outer_period);
  model->burst_size_ = burst_size;
  model->burst_inner_ = inner_distance;
  model->burst_outer_ = outer_period;
  return model;
}

Time DeltaFunctionModel::eval(const std::vector<Time>& prefix, Count n) const {
  const Count last_n = static_cast<Count>(prefix.size()) + 1;  // prefix covers n in [2, last_n]
  if (n <= last_n) return prefix[static_cast<std::size_t>(n - 2)];
  const Count overflow = n - last_n;
  const Count periods = (overflow + ext_events_ - 1) / ext_events_;
  const Count base_n = n - periods * ext_events_;
  const Time base = base_n < 2 ? 0 : prefix[static_cast<std::size_t>(base_n - 2)];
  return sat_add(base, sat_mul(ext_time_, periods));
}

Time DeltaFunctionModel::delta_min_raw(Count n) const { return eval(dmin_, n); }

Time DeltaFunctionModel::delta_plus_raw(Count n) const { return eval(dplus_, n); }

std::string DeltaFunctionModel::describe() const {
  std::ostringstream os;
  os << "DeltaCurves(prefix=" << dmin_.size() << ", ext=" << ext_events_ << "ev/" << ext_time_
     << "t)";
  return os.str();
}

}  // namespace hem
