#include "core/grouped_stream_model.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace hem {

GroupedStreamModel::GroupedStreamModel(ModelPtr outer, Count group_size, Time spacing)
    : outer_(std::move(outer)), group_size_(group_size), spacing_(spacing) {
  if (!outer_) throw std::invalid_argument("GroupedStreamModel: null outer model");
  if (group_size < 1) throw std::invalid_argument("GroupedStreamModel: group_size must be >= 1");
  if (spacing < 0) throw std::invalid_argument("GroupedStreamModel: spacing must be >= 0");
}

Time GroupedStreamModel::delta_min_raw(Count n) const {
  const Count groups = (n + group_size_ - 1) / group_size_;  // ceil(n / B)
  const Time outer_span = outer_->delta_min(groups);
  const Time spread = sat_mul(spacing_, group_size_ - 1);
  return std::max<Time>(0, sat_sub(outer_span, spread));
}

Time GroupedStreamModel::delta_plus_raw(Count n) const {
  const Count groups = (n - 2) / group_size_ + 2;
  const Time outer_span = outer_->delta_plus(groups);
  const Time spread = sat_mul(spacing_, group_size_ - 1);
  return sat_add(outer_span, spread);
}

std::string GroupedStreamModel::describe() const {
  std::ostringstream os;
  os << "Grouped(B=" << group_size_ << ", s=" << spacing_ << ", " << outer_->describe() << ")";
  return os.str();
}

}  // namespace hem
