#pragma once

/// \file grouped_stream_model.hpp
/// Hierarchical SINGLE-stream event model in the style of Albers et al.
/// (cited as [1] by the paper): each event of an outer stream does not
/// stand for a single event but for an entire embedded inner sequence.
///
/// This is the related-work baseline the paper contrasts with: it can
/// describe the burst structure of ONE stream precisely (e.g. "every frame
/// carries B signal updates back to back"), but it remains a flat stream -
/// there is no notion of which embedded event belongs to which original
/// signal, so receiver-side unpacking is impossible.  The comparison
/// benchmark (bench_ablation_grouped) quantifies the difference.
///
/// Model: every outer event releases a group of `group_size` inner events
/// spaced `spacing` apart.  Sound conservative curves (groups may overlap
/// arbitrarily, so per-group block reasoning only bounds, not determines,
/// the merged stream):
///
///   delta-(n) = max(0, delta-_out(ceil(n / B)) - (B - 1) * s)
///   delta+(n) = delta+_out(floor((n - 2) / B) + 2) + (B - 1) * s
///
/// (n events touch at least ceil(n/B) distinct groups; n consecutive
/// events span at most floor((n-2)/B) + 2 groups plus the intra-group
/// spread.)

#include <string>

#include "core/event_model.hpp"

namespace hem {

class GroupedStreamModel final : public EventModel {
 public:
  /// \param outer       event model of the group releases.
  /// \param group_size  B >= 1 inner events per outer event.
  /// \param spacing     s >= 0 distance between inner events of one group.
  GroupedStreamModel(ModelPtr outer, Count group_size, Time spacing);

  [[nodiscard]] Count group_size() const noexcept { return group_size_; }
  [[nodiscard]] Time spacing() const noexcept { return spacing_; }

  [[nodiscard]] std::string describe() const override;

 protected:
  [[nodiscard]] Time delta_min_raw(Count n) const override;
  [[nodiscard]] Time delta_plus_raw(Count n) const override;

 private:
  ModelPtr outer_;
  Count group_size_;
  Time spacing_;
};

}  // namespace hem
