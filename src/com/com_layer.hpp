#pragma once

/// \file com_layer.hpp
/// The COM layer: turns frame definitions into hierarchical event models
/// (section 5.1 of the paper) and prepares the bus analysis inputs.
///
/// For each frame the layer provides
///   * the frame *activation* model (OR of all triggering signals, with the
///     periodic send timer as one more triggering signal - section 4), and
///   * the packed hierarchical event model Omega_pa (Def. 8), whose outer
///     stream equals the activation model and whose inner streams bound,
///     per signal, the frames that carry a new value of that signal.
///
/// After the bus analysis delivered the frame's response times [r-, r+],
/// `transmitted()` applies Theta_tau to the HEM (outer output stream +
/// inner update, section 5.2); `unpack` (Psi_pa, Def. 10) then yields the
/// receiver-side activation models.

#include <vector>

#include "com/frame.hpp"
#include "hierarchical/hierarchical_event_model.hpp"

namespace hem::com {

class ComLayer {
 public:
  /// \param frames  validated on construction.
  explicit ComLayer(std::vector<Frame> frames);

  [[nodiscard]] const std::vector<Frame>& frames() const noexcept { return frames_; }
  [[nodiscard]] const Frame& frame(std::size_t i) const { return frames_.at(i); }

  /// Activation stream of frame `i` (the outer stream of its HEM).
  [[nodiscard]] ModelPtr activation_model(std::size_t i) const;

  /// Packed hierarchical event model of frame `i` (Omega_pa).
  /// Inner stream j corresponds to the j-th DELIVERY UNIT of the frame
  /// (`Frame::delivery_units()`): an ungrouped signal, or a whole signal
  /// group (whose delivery stream is the OR of its members).  For frames
  /// without groups this is signal order.
  [[nodiscard]] HemPtr packed_model(std::size_t i) const;

  /// HEM of frame `i` after transmission with response interval [r-, r+]
  /// (outer stream via Theta_tau, inner streams via Def. 9).
  [[nodiscard]] HemPtr transmitted(std::size_t i, Time r_minus, Time r_plus) const;

  /// Flat baseline for comparison: the receiver of ANY signal of frame `i`
  /// is conservatively activated by EVERY frame arrival - the total frame
  /// output stream, with no per-signal information (what a flat event
  /// stream model must assume; paper section 6, "flat" column).
  [[nodiscard]] ModelPtr flat_receiver_model(std::size_t i, Time r_minus, Time r_plus) const;

  /// Result of analysing every frame on one CAN bus.
  struct CanBusResult {
    std::vector<sched::ResponseResult> responses;  ///< per frame
    std::vector<HemPtr> transmitted;  ///< per frame, HEM after the bus hop
  };

  /// Convenience: run the CAN (SPNP) bus analysis over all frames (using
  /// each frame's transmission_time, which must be set) and apply the
  /// response intervals to the packed hierarchical models.
  [[nodiscard]] CanBusResult analyze_on_can(sched::FixpointLimits limits = {}) const;

 private:
  std::vector<Frame> frames_;
};

}  // namespace hem::com
