#pragma once

/// \file can_timing.hpp
/// CAN frame transmission-time helpers.
///
/// A CAN data frame with an s-byte payload occupies, excluding/including
/// worst-case bit stuffing:
///
///   11-bit identifier:  best 47 + 8 s bits,  worst 55 + 10 s bits
///   29-bit identifier:  best 67 + 8 s bits,  worst 80 + 10 s bits
///
/// (the classic Tindell/Davis accounting: 34 resp. 54 control bits plus the
/// payload are subject to stuffing, 13 bits of EOF/interframe space are
/// not).  The helpers convert a payload size and a bit time into the
/// ExecutionTime interval used by the bus analysis.

#include "sched/busy_window.hpp"

namespace hem::com {

enum class CanIdFormat { kStandard11, kExtended29 };

/// Transmission time interval [C-, C+] in ticks for a payload of
/// `payload_bytes` (0..8) at `ticks_per_bit` ticks per bit.
[[nodiscard]] sched::ExecutionTime can_frame_time(int payload_bytes, Time ticks_per_bit,
                                                  CanIdFormat format = CanIdFormat::kStandard11);

/// Worst-case frame length in bits (including stuffing).
[[nodiscard]] Time can_frame_bits_worst(int payload_bytes,
                                        CanIdFormat format = CanIdFormat::kStandard11);

/// Best-case frame length in bits (no stuffing).
[[nodiscard]] Time can_frame_bits_best(int payload_bytes,
                                       CanIdFormat format = CanIdFormat::kStandard11);

/// CAN FD transmission time: the arbitration phase runs at the nominal bit
/// rate, the data phase (DLC + payload + CRC) at the (faster) data bit
/// rate.  Payload up to 64 bytes.  Worst case includes stuffing in both
/// phases (arbitration ~30 stuffed control bits; data phase stuff ratio
/// 1/4 plus fixed stuff bits in the CRC field, approximated
/// conservatively).
[[nodiscard]] sched::ExecutionTime can_fd_frame_time(int payload_bytes,
                                                     Time ticks_per_arb_bit,
                                                     Time ticks_per_data_bit);

/// Switched-Ethernet frame transmission time on one link: preamble/SFD (8)
/// + header (14) + payload (padded to 46..1500) + FCS (4) + inter-frame
/// gap (12), at `ticks_per_byte` (e.g. 100 Mbit/s with 1 us ticks ->
/// ticks_per_byte = 8 bits / 100 Mbit/s = 0.08 us: pass scaled ticks).
/// Deterministic: best == worst.
[[nodiscard]] sched::ExecutionTime ethernet_frame_time(int payload_bytes, Time ticks_per_byte);

}  // namespace hem::com
