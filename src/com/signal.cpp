#include "com/signal.hpp"

// Signal is a plain aggregate; this translation unit exists so the header
// participates in the library build (and future validation helpers have a
// home).
