#pragma once

/// \file frame.hpp
/// Frames of the AUTOSAR-style COM layer (paper section 4).
///
/// A frame transports all register values assigned to it.  Transmission is
/// triggered according to the frame type:
///   * periodic - sent strictly periodically, signal arrivals are ignored;
///   * direct   - sent whenever a triggering signal arrives;
///   * mixed    - both: periodically AND on every triggering signal.

#include <optional>
#include <string>
#include <vector>

#include "com/signal.hpp"
#include "sched/busy_window.hpp"

namespace hem::com {

enum class FrameType { kPeriodic, kDirect, kMixed };

/// A frame definition: its trigger rule, its bus priority, and the signals
/// packed into it.
struct Frame {
  std::string name;
  FrameType type = FrameType::kDirect;
  Time period = 0;  ///< send period for periodic/mixed frames (> 0 there)
  int priority = 0; ///< bus priority (CAN identifier order): smaller = higher
  std::vector<Signal> signals;

  /// Transmission time on the bus.  Either set explicitly, or derive it
  /// from the total signal payload via can_frame_time().
  std::optional<sched::ExecutionTime> transmission_time;

  /// Sum of the signal register widths in bytes.
  [[nodiscard]] int payload_bytes() const;

  /// Validates the definition (positive period where required, at least one
  /// signal, at least one trigger source, payload <= 8 bytes when the
  /// transmission time is to be derived from CAN timing).
  void validate() const;

  /// True if the signal at `index` actually triggers this frame: it must be
  /// a triggering signal AND the frame type must react to signals.  In a
  /// periodic frame every signal is effectively pending.
  [[nodiscard]] bool signal_triggers(std::size_t index) const;

  /// A delivery unit: an ungrouped signal, or all members of one signal
  /// group.  The COM layer packs/unpacks one inner stream per unit.
  struct DeliveryUnit {
    std::string name;                  ///< signal name or group name
    std::vector<std::size_t> members;  ///< indices into `signals`
  };

  /// Delivery units in declaration order (a group appears at the position
  /// of its first member).
  [[nodiscard]] std::vector<DeliveryUnit> delivery_units() const;
};

}  // namespace hem::com
