#include "com/com_layer.hpp"

#include <stdexcept>

#include "core/combinators.hpp"
#include "core/output_model.hpp"
#include "core/standard_event_model.hpp"
#include "hierarchical/pack_constructor.hpp"
#include "sched/can_bus.hpp"

namespace hem::com {

namespace {

std::vector<PackInput> pack_inputs_for(const Frame& f) {
  // One pack input per delivery unit: an ungrouped signal keeps its own
  // source model; a signal group's delivery stream is the OR of its
  // members (any member update refreshes the group).
  std::vector<PackInput> inputs;
  const auto units = f.delivery_units();
  inputs.reserve(units.size());
  for (const auto& unit : units) {
    std::vector<ModelPtr> sources;
    sources.reserve(unit.members.size());
    for (const std::size_t m : unit.members) sources.push_back(f.signals[m].source);
    inputs.push_back(PackInput{or_combine(sources), f.signal_triggers(unit.members.front())
                                                        ? SignalCoupling::kTriggering
                                                        : SignalCoupling::kPending});
  }
  return inputs;
}

ModelPtr timer_for(const Frame& f) {
  if (f.type == FrameType::kPeriodic || f.type == FrameType::kMixed)
    return StandardEventModel::periodic(f.period);
  return nullptr;
}

}  // namespace

ComLayer::ComLayer(std::vector<Frame> frames) : frames_(std::move(frames)) {
  if (frames_.empty()) throw std::invalid_argument("ComLayer: no frames");
  for (const auto& f : frames_) f.validate();
}

ModelPtr ComLayer::activation_model(std::size_t i) const {
  return packed_model(i)->outer();
}

HemPtr ComLayer::packed_model(std::size_t i) const {
  const Frame& f = frames_.at(i);
  return pack(pack_inputs_for(f), timer_for(f));
}

HemPtr ComLayer::transmitted(std::size_t i, Time r_minus, Time r_plus) const {
  return packed_model(i)->after_response(r_minus, r_plus);
}

ModelPtr ComLayer::flat_receiver_model(std::size_t i, Time r_minus, Time r_plus) const {
  return std::make_shared<OutputModel>(activation_model(i), r_minus, r_plus);
}

ComLayer::CanBusResult ComLayer::analyze_on_can(sched::FixpointLimits limits) const {
  std::vector<sched::TaskParams> params;
  std::vector<HemPtr> packed;
  for (std::size_t i = 0; i < frames_.size(); ++i) {
    if (!frames_[i].transmission_time.has_value())
      throw std::invalid_argument("ComLayer::analyze_on_can: frame '" + frames_[i].name +
                                  "' has no transmission time");
    packed.push_back(packed_model(i));
    params.push_back(sched::TaskParams{frames_[i].name, frames_[i].priority,
                                       *frames_[i].transmission_time, packed.back()->outer()});
  }
  CanBusResult result;
  result.responses = sched::CanBusAnalysis(std::move(params), limits).analyze_all();
  for (std::size_t i = 0; i < frames_.size(); ++i)
    result.transmitted.push_back(
        packed[i]->after_response(result.responses[i].bcrt, result.responses[i].wcrt));
  return result;
}

}  // namespace hem::com
