#include "com/frame.hpp"

#include <stdexcept>

namespace hem::com {

int Frame::payload_bytes() const {
  int total = 0;
  for (const auto& s : signals) total += s.width_bytes;
  return total;
}

void Frame::validate() const {
  if (name.empty()) throw std::invalid_argument("Frame: empty name");
  if (signals.empty()) throw std::invalid_argument("Frame '" + name + "': no signals");
  for (const auto& s : signals) {
    if (!s.source)
      throw std::invalid_argument("Frame '" + name + "': signal '" + s.name +
                                  "' has no source model");
    if (s.width_bytes <= 0)
      throw std::invalid_argument("Frame '" + name + "': signal '" + s.name +
                                  "' has non-positive width");
  }
  const bool timed = type == FrameType::kPeriodic || type == FrameType::kMixed;
  if (timed && period <= 0)
    throw std::invalid_argument("Frame '" + name + "': periodic/mixed frame needs a period");
  if (!timed) {
    bool any_trigger = false;
    for (const auto& s : signals) any_trigger |= (s.kind == SignalKind::kTriggering);
    if (!any_trigger)
      throw std::invalid_argument("Frame '" + name +
                                  "': direct frame with only pending signals is never sent");
  }
  // Signal-group members are latched and delivered together; mixing
  // triggering and pending members would make the group's delivery timing
  // ill-defined.
  for (const auto& unit : delivery_units()) {
    for (const std::size_t m : unit.members) {
      if (signals[m].kind != signals[unit.members.front()].kind)
        throw std::invalid_argument("Frame '" + name + "': signal group '" + unit.name +
                                    "' mixes triggering and pending members");
    }
  }
}

bool Frame::signal_triggers(std::size_t index) const {
  if (type == FrameType::kPeriodic) return false;
  return signals.at(index).kind == SignalKind::kTriggering;
}

std::vector<Frame::DeliveryUnit> Frame::delivery_units() const {
  std::vector<DeliveryUnit> units;
  for (std::size_t i = 0; i < signals.size(); ++i) {
    const std::string& group = signals[i].group;
    if (group.empty()) {
      units.push_back(DeliveryUnit{signals[i].name, {i}});
      continue;
    }
    bool merged = false;
    for (auto& u : units) {
      if (u.name == group && !signals[u.members.front()].group.empty()) {
        u.members.push_back(i);
        merged = true;
        break;
      }
    }
    if (!merged) units.push_back(DeliveryUnit{group, {i}});
  }
  return units;
}

}  // namespace hem::com
