#pragma once

/// \file signal.hpp
/// Signals of the AUTOSAR-style COM layer (paper section 4).
///
/// A task does not access the bus directly; it writes its output value into
/// a register provided by the communication layer, overwriting the previous
/// value.  Each register has a fixed position in a frame.  A signal is
/// either *triggering* (its arrival triggers the transmission of its frame,
/// for direct/mixed frames) or *pending* (the value waits in the register
/// for the next transmission).

#include <string>

#include "core/event_model.hpp"
#include "hierarchical/pack_constructor.hpp"

namespace hem::com {

/// How a signal asks its frame to be sent.
enum class SignalKind { kTriggering, kPending };

/// One signal: a named stream of value updates written into a COM register.
struct Signal {
  std::string name;
  ModelPtr source;      ///< event model of the writing task's output stream
  SignalKind kind = SignalKind::kTriggering;
  int width_bytes = 1;  ///< register width; frame payload must cover all signals
  std::string destination;  ///< receiver task name (informational routing)
  /// AUTOSAR signal group: members with the same non-empty group name in
  /// one frame are latched and delivered together (one receiver-side
  /// activation per group update, not per member).
  std::string group;
};

}  // namespace hem::com
