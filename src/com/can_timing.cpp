#include "com/can_timing.hpp"

#include <algorithm>
#include <stdexcept>

namespace hem::com {

namespace {

void check_payload(int payload_bytes) {
  if (payload_bytes < 0 || payload_bytes > 8)
    throw std::invalid_argument("CAN payload must be 0..8 bytes");
}

}  // namespace

Time can_frame_bits_best(int payload_bytes, CanIdFormat format) {
  check_payload(payload_bytes);
  const Time overhead = format == CanIdFormat::kStandard11 ? 47 : 67;
  return overhead + 8 * payload_bytes;
}

Time can_frame_bits_worst(int payload_bytes, CanIdFormat format) {
  check_payload(payload_bytes);
  if (format == CanIdFormat::kStandard11) return 55 + 10 * payload_bytes;
  return 80 + 10 * payload_bytes;
}

sched::ExecutionTime can_frame_time(int payload_bytes, Time ticks_per_bit, CanIdFormat format) {
  if (ticks_per_bit <= 0) throw std::invalid_argument("ticks_per_bit must be positive");
  return sched::ExecutionTime(can_frame_bits_best(payload_bytes, format) * ticks_per_bit,
                              can_frame_bits_worst(payload_bytes, format) * ticks_per_bit);
}

sched::ExecutionTime can_fd_frame_time(int payload_bytes, Time ticks_per_arb_bit,
                                       Time ticks_per_data_bit) {
  if (payload_bytes < 0 || payload_bytes > 64)
    throw std::invalid_argument("CAN FD payload must be 0..64 bytes");
  if (ticks_per_arb_bit <= 0 || ticks_per_data_bit <= 0)
    throw std::invalid_argument("bit times must be positive");
  if (ticks_per_data_bit > ticks_per_arb_bit)
    throw std::invalid_argument("CAN FD data phase must not be slower than arbitration");
  // Arbitration phase (11-bit id): ~30 control bits best, 38 with stuffing.
  const Time arb_best = 30, arb_worst = 38;
  // Data phase: DLC/ESI/BRS (~10) + payload + CRC (21 for <=16B, 25 above)
  // + fixed/dynamic stuffing (~1/4 of the stuffable bits, conservative).
  const Time crc = payload_bytes <= 16 ? 21 : 25;
  const Time data_raw = 10 + 8 * static_cast<Time>(payload_bytes) + crc;
  const Time data_best = data_raw;
  const Time data_worst = data_raw + data_raw / 4 + 5;
  return sched::ExecutionTime(
      arb_best * ticks_per_arb_bit + data_best * ticks_per_data_bit,
      arb_worst * ticks_per_arb_bit + data_worst * ticks_per_data_bit);
}

sched::ExecutionTime ethernet_frame_time(int payload_bytes, Time ticks_per_byte) {
  if (payload_bytes < 0 || payload_bytes > 1500)
    throw std::invalid_argument("Ethernet payload must be 0..1500 bytes");
  if (ticks_per_byte <= 0) throw std::invalid_argument("ticks_per_byte must be positive");
  const Time padded = std::max<Time>(payload_bytes, 46);
  const Time wire_bytes = 8 + 14 + padded + 4 + 12;
  return sched::ExecutionTime(wire_bytes * ticks_per_byte);
}

}  // namespace hem::com
