#include "verify/contracts.hpp"

#include "verify/model_checker.hpp"

namespace hem::verify {

namespace {

CheckerOptions contract_options() {
  CheckerOptions opts;
  opts.horizon = kContractHorizon;
  opts.check_eta = false;  // galloping searches are too hot for a per-construction contract
  return opts;
}

[[noreturn]] void raise(const ModelChecker& checker, const char* site) {
  throw ContractViolation(std::string("model-algebra contract violated at ") + site + ":\n" +
                          checker.format());
}

}  // namespace

void enforce_pack_contract(const HierarchicalEventModel& hem, const char* site) {
  ModelChecker checker(contract_options());
  checker.check_hierarchical(hem, site, /*outer_bounds_inner=*/true);
  if (!checker.ok()) raise(checker, site);
}

void enforce_inner_update_contract(const EventModel& before, const EventModel& after,
                                   Time r_minus, Time r_plus, const char* site) {
  ModelChecker checker(contract_options());
  checker.check_inner_update(before, after, r_minus, r_plus, site);
  if (!checker.ok()) raise(checker, site);
}

}  // namespace hem::verify
