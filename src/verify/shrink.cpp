#include "verify/shrink.hpp"

#include <algorithm>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace hem::verify {

namespace {

/// One line of the configuration, tokenised on whitespace with `#` comments
/// stripped.  Blank/comment lines keep empty token lists and are preserved
/// verbatim until a structural edit rebuilds `raw` from `tokens`.
struct Stmt {
  std::string raw;
  std::vector<std::string> tokens;

  [[nodiscard]] const std::string& keyword() const {
    static const std::string kEmpty;
    return tokens.empty() ? kEmpty : tokens.front();
  }
  [[nodiscard]] const std::string& entity() const {
    static const std::string kEmpty;
    return tokens.size() < 2 ? kEmpty : tokens[1];
  }

  void rebuild_raw() {
    std::string out;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      if (i > 0) out += ' ';
      out += tokens[i];
    }
    raw = std::move(out);
  }
};

std::vector<Stmt> parse_lines(const std::string& text) {
  std::vector<Stmt> stmts;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    Stmt s;
    s.raw = line;
    const std::string code = line.substr(0, line.find('#'));
    std::istringstream ls(code);
    std::string tok;
    while (ls >> tok) s.tokens.push_back(tok);
    stmts.push_back(std::move(s));
  }
  return stmts;
}

std::string render(const std::vector<Stmt>& stmts) {
  std::string out;
  for (const Stmt& s : stmts) {
    out += s.raw;
    out += '\n';
  }
  return out;
}

/// Value of `key=` in the statement, or empty.
std::string arg_value(const Stmt& s, const std::string& key) {
  const std::string prefix = key + '=';
  for (const std::string& tok : s.tokens)
    if (tok.rfind(prefix, 0) == 0) return tok.substr(prefix.size());
  return {};
}

/// Replace (or append) `key=value`; empty value removes the argument.
void set_arg(Stmt& s, const std::string& key, const std::string& value) {
  const std::string prefix = key + '=';
  for (std::size_t i = 0; i < s.tokens.size(); ++i) {
    if (s.tokens[i].rfind(prefix, 0) == 0) {
      if (value.empty())
        s.tokens.erase(s.tokens.begin() + static_cast<std::ptrdiff_t>(i));
      else
        s.tokens[i] = prefix + value;
      s.rebuild_raw();
      return;
    }
  }
  if (!value.empty()) {
    s.tokens.push_back(prefix + value);
    s.rebuild_raw();
  }
}

std::vector<std::string> split_list(const std::string& list) {
  std::vector<std::string> parts;
  std::string cur;
  for (const char c : list) {
    if (c == ',') {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) parts.push_back(cur);
  return parts;
}

std::string join_list(const std::vector<std::string>& parts) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += ',';
    out += parts[i];
  }
  return out;
}

/// Name before the `:coupling` suffix of one packed input.
std::string input_name(const std::string& part) { return part.substr(0, part.find(':')); }

struct RemovalSet {
  std::set<std::string> resources;
  std::set<std::string> sources;
  std::set<std::string> tasks;

  [[nodiscard]] bool dead_ref(const std::string& name) const {
    return tasks.count(name) != 0 || sources.count(name) != 0;
  }
};

/// Expand the removal set to its lexical closure and drop every statement
/// that declares, targets, or depends on a removed entity.
std::vector<Stmt> apply_removal(const std::vector<Stmt>& in, RemovalSet rm) {
  bool grew = true;
  while (grew) {
    grew = false;
    for (const Stmt& s : in) {
      const std::string& kw = s.keyword();
      if (kw == "task") {
        if (rm.resources.count(arg_value(s, "resource")) != 0 &&
            rm.tasks.insert(s.entity()).second)
          grew = true;
      } else if (kw == "activate") {
        if (rm.tasks.count(s.entity()) != 0) continue;
        bool dead = false;
        if (const std::string from = arg_value(s, "from"); !from.empty())
          dead = rm.dead_ref(from);
        for (const char* key : {"or", "and"})
          for (const std::string& part : split_list(arg_value(s, key)))
            dead = dead || rm.dead_ref(part);
        if (dead && rm.tasks.insert(s.entity()).second) grew = true;
      } else if (kw == "packed") {
        if (rm.tasks.count(s.entity()) != 0) continue;
        bool dead = false;
        for (const std::string& part : split_list(arg_value(s, "inputs")))
          dead = dead || rm.dead_ref(input_name(part));
        if (dead && rm.tasks.insert(s.entity()).second) grew = true;
      } else if (kw == "unpack") {
        if (rm.tasks.count(s.entity()) != 0) continue;
        if (rm.tasks.count(arg_value(s, "frame")) != 0 && rm.tasks.insert(s.entity()).second)
          grew = true;
      }
    }
  }

  std::vector<Stmt> out;
  for (const Stmt& s : in) {
    const std::string& kw = s.keyword();
    if (kw == "resource" && rm.resources.count(s.entity()) != 0) continue;
    if (kw == "source" && rm.sources.count(s.entity()) != 0) continue;
    if (kw == "task" && rm.tasks.count(s.entity()) != 0) continue;
    if ((kw == "activate" || kw == "packed" || kw == "unpack" || kw == "deadline") &&
        rm.tasks.count(s.entity()) != 0)
      continue;
    out.push_back(s);
  }
  return out;
}

std::vector<std::string> declared(const std::vector<Stmt>& stmts, const std::string& keyword) {
  std::vector<std::string> names;
  for (const Stmt& s : stmts)
    if (s.keyword() == keyword && !s.entity().empty()) names.push_back(s.entity());
  return names;
}

/// Drop packed input `index` of frame `frame` and renumber the unpack
/// statements that extract later inner streams.
void drop_packed_input(std::vector<Stmt>& stmts, const std::string& frame, std::size_t index) {
  for (Stmt& s : stmts) {
    if (s.keyword() == "packed" && s.entity() == frame) {
      std::vector<std::string> inputs = split_list(arg_value(s, "inputs"));
      if (index >= inputs.size()) return;
      inputs.erase(inputs.begin() + static_cast<std::ptrdiff_t>(index));
      set_arg(s, "inputs", join_list(inputs));
    }
  }
  std::vector<Stmt> kept;
  for (Stmt& s : stmts) {
    if (s.keyword() == "unpack" && arg_value(s, "frame") == frame) {
      const std::size_t i = static_cast<std::size_t>(std::stoul(arg_value(s, "index")));
      if (i == index) continue;  // the extracted stream is gone with its input
      if (i > index) set_arg(s, "index", std::to_string(i - 1));
    }
    kept.push_back(std::move(s));
  }
  stmts = std::move(kept);
}

/// Driver state for one shrink run: applies a candidate, asks the
/// predicate, and keeps the candidate on success.
struct Shrinker {
  std::vector<Stmt> current;
  const std::function<bool(const std::string&)>& still_fails;
  int attempts = 0;
  int max_attempts;
  bool changed = false;

  [[nodiscard]] bool budget_left() const { return attempts < max_attempts; }

  /// True (and adopts the candidate) when it still reproduces the failure.
  bool try_adopt(std::vector<Stmt> candidate) {
    const std::string text = render(candidate);
    if (text == render(current)) return false;
    if (!budget_left()) return false;
    ++attempts;
    if (!still_fails(text)) return false;
    current = std::move(candidate);
    changed = true;
    return true;
  }
};

/// Try to remove each declared entity of one kind, re-enumerating after
/// every successful removal (the closure may have taken neighbours along).
bool pass_drop_entities(Shrinker& sh, const std::string& keyword,
                        std::set<std::string> RemovalSet::*member) {
  bool progress = false;
  std::set<std::string> tried;
  bool scan = true;
  while (scan && sh.budget_left()) {
    scan = false;
    for (const std::string& name : declared(sh.current, keyword)) {
      if (!tried.insert(name).second) continue;
      RemovalSet rm;
      (rm.*member).insert(name);
      if (sh.try_adopt(apply_removal(sh.current, rm))) {
        progress = true;
        scan = true;  // entity list changed under us; restart enumeration
        break;
      }
      if (!sh.budget_left()) break;
    }
  }
  return progress;
}

bool pass_drop_signals(Shrinker& sh) {
  bool progress = false;
  bool scan = true;
  while (scan && sh.budget_left()) {
    scan = false;
    for (const Stmt& s : sh.current) {
      if (s.keyword() == "packed") {
        const std::vector<std::string> inputs = split_list(arg_value(s, "inputs"));
        if (inputs.size() > 1) {
          for (std::size_t i = 0; i < inputs.size(); ++i) {
            std::vector<Stmt> candidate = sh.current;
            drop_packed_input(candidate, s.entity(), i);
            if (sh.try_adopt(std::move(candidate))) {
              progress = scan = true;
              break;
            }
          }
          if (scan) break;
        }
        if (!arg_value(s, "timer").empty()) {
          std::vector<Stmt> candidate = sh.current;
          for (Stmt& c : candidate)
            if (c.keyword() == "packed" && c.entity() == s.entity()) set_arg(c, "timer", "");
          if (sh.try_adopt(std::move(candidate))) {
            progress = scan = true;
            break;
          }
        }
      } else if (s.keyword() == "activate") {
        const std::vector<std::string> producers = split_list(arg_value(s, "or"));
        if (producers.size() > 1) {
          for (std::size_t i = 0; i < producers.size(); ++i) {
            std::vector<Stmt> candidate = sh.current;
            for (Stmt& c : candidate) {
              if (c.keyword() != "activate" || c.entity() != s.entity()) continue;
              std::vector<std::string> kept = producers;
              kept.erase(kept.begin() + static_cast<std::ptrdiff_t>(i));
              if (kept.size() == 1) {
                // `or=` needs >= 1 entry; a single producer is `from=`.
                set_arg(c, "or", "");
                set_arg(c, "from", kept.front());
              } else {
                set_arg(c, "or", join_list(kept));
              }
            }
            if (sh.try_adopt(std::move(candidate))) {
              progress = scan = true;
              break;
            }
          }
          if (scan) break;
        }
      }
    }
  }
  return progress;
}

bool pass_simplify(Shrinker& sh) {
  bool progress = false;
  // Dead weight first: deadline / option lines, then unreferenced sources.
  for (const char* keyword : {"deadline", "option"}) {
    bool scan = true;
    while (scan && sh.budget_left()) {
      scan = false;
      for (std::size_t i = 0; i < sh.current.size(); ++i) {
        if (sh.current[i].keyword() != keyword) continue;
        std::vector<Stmt> candidate = sh.current;
        candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
        if (sh.try_adopt(std::move(candidate))) {
          progress = scan = true;
          break;
        }
      }
    }
  }
  if (pass_drop_entities(sh, "source", &RemovalSet::sources)) progress = true;

  // Model simplifications on the surviving sources.
  bool scan = true;
  while (scan && sh.budget_left()) {
    scan = false;
    for (const Stmt& s : sh.current) {
      if (s.keyword() != "source" || s.tokens.size() < 3) continue;
      const std::string& kind = s.tokens[2];
      const std::string period = arg_value(s, "period");
      std::vector<Stmt> candidate = sh.current;
      bool edited = false;
      for (Stmt& c : candidate) {
        if (c.keyword() != "source" || c.entity() != s.entity()) continue;
        if (kind == "sem" && !period.empty()) {
          c.tokens = {"source", c.entity(), "periodic", "period=" + period};
          c.rebuild_raw();
          edited = true;
        } else if (kind != "periodic" && !period.empty()) {
          c.tokens = {"source", c.entity(), "periodic", "period=" + period};
          c.rebuild_raw();
          edited = true;
        }
      }
      if (edited && sh.try_adopt(std::move(candidate))) {
        progress = scan = true;
        break;
      }
      // Weaker fallback for SEMs the full rewrite could not keep failing:
      // zero the jitter only.
      if (kind == "sem" && !arg_value(s, "jitter").empty()) {
        candidate = sh.current;
        for (Stmt& c : candidate)
          if (c.keyword() == "source" && c.entity() == s.entity()) set_arg(c, "jitter", "");
        if (sh.try_adopt(std::move(candidate))) {
          progress = scan = true;
          break;
        }
      }
    }
  }
  return progress;
}

}  // namespace

ShrinkResult shrink_config(const std::string& text,
                           const std::function<bool(const std::string&)>& still_fails,
                           const ShrinkOptions& options) {
  Shrinker sh{parse_lines(text), still_fails, 0, options.max_attempts, false};
  // Strip comment/blank lines once — pure noise for a reproducer.
  std::vector<Stmt> stripped;
  for (const Stmt& s : sh.current)
    if (!s.tokens.empty()) stripped.push_back(s);
  if (stripped.size() != sh.current.size()) sh.try_adopt(std::move(stripped));

  bool progress = true;
  while (progress && sh.budget_left()) {
    progress = false;
    progress |= pass_drop_entities(sh, "resource", &RemovalSet::resources);
    progress |= pass_drop_entities(sh, "task", &RemovalSet::tasks);
    progress |= pass_drop_signals(sh);
    progress |= pass_simplify(sh);
  }
  return {render(sh.current), sh.attempts, sh.changed};
}

std::string mutate_config(const std::string& text, std::uint64_t seed) {
  std::vector<Stmt> stmts = parse_lines(text);
  std::mt19937_64 rng(seed);
  const auto draw = [&](std::uint64_t n) { return n == 0 ? 0 : rng() % n; };
  const auto pick_stmt = [&](const std::string& keyword) -> Stmt* {
    std::vector<Stmt*> matches;
    for (Stmt& s : stmts)
      if (s.keyword() == keyword) matches.push_back(&s);
    if (matches.empty()) return nullptr;
    return matches[draw(matches.size())];
  };

  const int ops = 1 + static_cast<int>(draw(3));
  for (int op = 0; op < ops; ++op) {
    switch (draw(8)) {
      case 0: {  // scale a task's execution times
        if (Stmt* s = pick_stmt("task")) {
          const std::string cet = arg_value(*s, "cet");
          const std::size_t colon = cet.find(':');
          const long factor = draw(2) == 0 ? 2 : 8;
          try {
            if (colon == std::string::npos) {
              set_arg(*s, "cet", std::to_string(std::stol(cet) * factor));
            } else {
              set_arg(*s, "cet",
                      std::to_string(std::stol(cet.substr(0, colon)) * factor) + ":" +
                          std::to_string(std::stol(cet.substr(colon + 1)) * factor));
            }
          } catch (const std::exception&) {
          }
        }
        break;
      }
      case 1: {  // perturb a priority
        if (Stmt* s = pick_stmt("task")) {
          try {
            const long p = std::stol(arg_value(*s, "priority"));
            set_arg(*s, "priority", std::to_string(p + static_cast<long>(draw(5)) - 2));
          } catch (const std::exception&) {
          }
        }
        break;
      }
      case 2: {  // duplicate another task's priority (HL002 regime)
        Stmt* a = pick_stmt("task");
        Stmt* b = pick_stmt("task");
        if (a != nullptr && b != nullptr && a != b &&
            arg_value(*a, "resource") == arg_value(*b, "resource"))
          set_arg(*a, "priority", arg_value(*b, "priority"));
        break;
      }
      case 3: {  // inflate or zero a SEM's jitter
        if (Stmt* s = pick_stmt("source")) {
          if (s->tokens.size() > 2 && s->tokens[2] == "sem") {
            try {
              const long jitter = std::stol(arg_value(*s, "jitter"));
              set_arg(*s, "jitter", draw(2) == 0 ? "0" : std::to_string(jitter * 4 + 1));
            } catch (const std::exception&) {
            }
          }
        }
        break;
      }
      case 4: {  // move a SEM's dmin to an extreme
        if (Stmt* s = pick_stmt("source")) {
          if (s->tokens.size() > 2 && s->tokens[2] == "sem")
            set_arg(*s, "dmin", draw(2) == 0 ? "0" : arg_value(*s, "period"));
        }
        break;
      }
      case 5: {  // drop a task and its dependents
        const std::vector<std::string> tasks = declared(stmts, "task");
        if (!tasks.empty()) {
          RemovalSet rm;
          rm.tasks.insert(tasks[draw(tasks.size())]);
          stmts = apply_removal(stmts, rm);
        }
        break;
      }
      case 6: {  // duplicate a task (clone declaration + activation edges)
        const std::vector<std::string> tasks = declared(stmts, "task");
        if (tasks.empty()) break;
        const std::string victim = tasks[draw(tasks.size())];
        std::vector<Stmt> clones;
        for (const Stmt& s : stmts) {
          if (s.entity() != victim) continue;
          if (s.keyword() != "task" && s.keyword() != "activate" && s.keyword() != "packed" &&
              s.keyword() != "unpack")
            continue;
          Stmt clone = s;
          clone.tokens[1] = victim + "_d";
          clone.rebuild_raw();
          clones.push_back(std::move(clone));
        }
        for (Stmt& c : clones) stmts.push_back(std::move(c));
        break;
      }
      case 7: {  // packed-frame surgery: coupling flip, input drop, timer
        if (Stmt* s = pick_stmt("packed")) {
          std::vector<std::string> inputs = split_list(arg_value(*s, "inputs"));
          if (inputs.empty()) break;
          const std::string frame = s->entity();
          switch (draw(3)) {
            case 0: {  // flip a coupling, keeping the frame sendable
              const std::size_t i = draw(inputs.size());
              const bool to_pend = inputs[i].size() > 5 &&
                                   inputs[i].compare(inputs[i].size() - 5, 5, ":trig") == 0;
              std::size_t triggering = 0;
              for (const std::string& part : inputs)
                if (part.find(":trig") != std::string::npos) ++triggering;
              const bool has_timer = !arg_value(*s, "timer").empty();
              if (to_pend && triggering == 1 && !has_timer) break;  // would be HL008
              inputs[i] = input_name(inputs[i]) + (to_pend ? ":pend" : ":trig");
              set_arg(*s, "inputs", join_list(inputs));
              break;
            }
            case 1: {  // drop one input (with unpack renumbering)
              if (inputs.size() > 1) drop_packed_input(stmts, frame, draw(inputs.size()));
              break;
            }
            default: {  // toggle the send timer
              if (arg_value(*s, "timer").empty())
                set_arg(*s, "timer", std::to_string(100 * (1 + draw(50))));
              else if (std::count_if(inputs.begin(), inputs.end(), [](const std::string& p) {
                         return p.find(":trig") != std::string::npos;
                       }) > 0)
                set_arg(*s, "timer", "");
              break;
            }
          }
        }
        break;
      }
      default: break;
    }
  }
  return render(stmts);
}

}  // namespace hem::verify
