#include "verify/differential.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <random>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/errors.hpp"
#include "model/cpa_engine.hpp"
#include "model/engine_snapshot.hpp"
#include "rtc/compile.hpp"
#include "sim/system_simulator.hpp"
#include "sim/trace_check.hpp"
#include "verify/lint.hpp"
#include "verify/model_checker.hpp"

namespace hem::verify {

std::uint64_t fnv1a64(std::string_view data) {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t OracleFinding::bucket() const { return fnv1a64(oracle + '/' + fingerprint); }

namespace {

void mix_model(std::ostringstream& os, const ModelPtr& model) {
  if (model == nullptr) {
    os << "~|";
    return;
  }
  for (Count n = 2; n <= 9; ++n) os << model->delta_min(n) << ',' << model->delta_plus(n) << ';';
  os << '|';
}

/// Shared EngineOptions base so every oracle arm analyses under identical
/// budgets (only the knob under test differs between arms).
cpa::EngineOptions base_options(const DiffOptions& opts) {
  cpa::EngineOptions eo;
  eo.max_iterations = opts.max_iterations;
  eo.jobs = 1;
  return eo;
}

cpa::AnalysisReport run_engine(const cpa::System& system, const cpa::EngineOptions& eo) {
  cpa::CpaEngine engine(system, eo);
  return engine.run();
}

// ---------------------------------------------------------------------------
// Dominance: analytic bounds vs simulated observations.
// ---------------------------------------------------------------------------

class DominanceOracle final : public Oracle {
 public:
  [[nodiscard]] std::string name() const override { return "dominance"; }

  void check(const DiffInput& in, const DiffOptions& opts,
             std::vector<OracleFinding>& out) const override {
    const cpa::AnalysisReport report = run_engine(*in.system, base_options(opts));

    sim::SystemSimulator::Options sopts;
    sopts.horizon = opts.sim_horizon;
    sopts.mode = sim::GenMode::kRandom;
    sopts.seed = opts.sim_seed;
    sopts.worst_case_exec = true;
    sim::SystemSimResult observed;
    try {
      observed = sim::SystemSimulator(*in.system, sopts).run();
    } catch (const std::invalid_argument&) {
      return;  // system outside the simulator's supported subset
    }

    for (const cpa::TaskResult& task : report.tasks) {
      const auto it = observed.tasks.find(task.name);
      if (it == observed.tasks.end()) continue;
      const auto& stats = it->second;

      // (1) Observed worst response must stay within the analytic WCRT —
      // including fallback bounds, which claim conservativeness too.
      if (!is_infinite(task.wcrt) && !stats.responses.empty() && stats.wcrt > task.wcrt) {
        out.push_back({name(), "wcrt:" + task.name,
                       task.name + ": observed response " + std::to_string(stats.wcrt) +
                           " exceeds analytic wcrt " + std::to_string(task.wcrt) +
                           " (status " + cpa::to_string(task.status) + ")"});
      }

      // (2) Observed activation backlog must stay within the analytic queue
      // bound.  Completions at time x free their slot before activations at
      // x claim one (conservative tie-break for the observation).
      if (!is_infinite_count(task.backlog)) {
        std::vector<std::pair<Time, int>> events;
        events.reserve(stats.activations.size() + stats.responses.size());
        for (const Time a : stats.activations) events.emplace_back(a, 1);
        const std::size_t completed = std::min(stats.activations.size(), stats.responses.size());
        for (std::size_t i = 0; i < completed; ++i)
          events.emplace_back(stats.activations[i] + stats.responses[i], -1);
        std::sort(events.begin(), events.end(),
                  [](const auto& a, const auto& b) {
                    return a.first != b.first ? a.first < b.first : a.second < b.second;
                  });
        Count queue = 0;
        Count max_queue = 0;
        for (const auto& [when, delta] : events) {
          queue += delta;
          max_queue = std::max(max_queue, queue);
        }
        if (max_queue > task.backlog) {
          out.push_back({name(), "backlog:" + task.name,
                         task.name + ": observed backlog " + std::to_string(max_queue) +
                             " exceeds analytic bound " + std::to_string(task.backlog)});
        }
      }

      // (3) Observed traces must conform to the analytic stream models:
      // activations to the activation bound, completions to the output
      // bound.  Exact for converged tasks; degraded tasks carry envelope
      // models that must still contain the trace.
      const Time dt_max = std::min<Time>(opts.sim_horizon, 20'000);
      constexpr Time kStep = 257;
      constexpr Count kNMax = 12;
      if (task.activation != nullptr) {
        for (const std::string& v : sim::check_trace_against_model(
                 stats.activations, *task.activation, dt_max, kStep, kNMax))
          out.push_back({name(), "act-trace:" + task.name, task.name + ".activation: " + v});
      }
      if (task.output != nullptr && !stats.responses.empty()) {
        const std::size_t completed = std::min(stats.activations.size(), stats.responses.size());
        std::vector<Time> completions(completed);
        for (std::size_t i = 0; i < completed; ++i)
          completions[i] = stats.activations[i] + stats.responses[i];
        std::sort(completions.begin(), completions.end());
        for (const std::string& v : sim::check_trace_against_model(completions, *task.output,
                                                                   dt_max, kStep, kNMax))
          out.push_back({name(), "out-trace:" + task.name, task.name + ".output: " + v});
      }
    }
  }
};

// ---------------------------------------------------------------------------
// Determinism: bit-identical reports across execution strategies.
// ---------------------------------------------------------------------------

class DeterminismOracle final : public Oracle {
 public:
  [[nodiscard]] std::string name() const override { return "determinism"; }

  void check(const DiffInput& in, const DiffOptions& opts,
             std::vector<OracleFinding>& out) const override {
    const cpa::EngineOptions base = base_options(opts);
    cpa::CpaEngine cold(*in.system, base);
    const cpa::AnalysisReport cold_report = cold.run();
    const std::uint64_t cold_fp = report_fingerprint(cold_report);

    const auto compare_arm = [&](const char* arm, const cpa::AnalysisReport& report) {
      const std::uint64_t fp = report_fingerprint(report);
      if (fp != cold_fp) {
        std::ostringstream detail;
        detail << arm << " fingerprint " << std::hex << fp << " != serial cold fingerprint "
               << cold_fp;
        out.push_back({name(), std::string("fp:") + arm, detail.str()});
      }
    };

    cpa::EngineOptions wide = base;
    wide.jobs = opts.wide_jobs;
    compare_arm("jobs-wide", run_engine(*in.system, wide));

    cpa::EngineOptions full = base;
    full.incremental = false;
    compare_arm("non-incremental", run_engine(*in.system, full));

    const cpa::EngineSnapshot snapshot = cold.make_snapshot();
    if (snapshot.valid()) {
      cpa::System warm_system = *in.system;  // re-pointing externals mutates the copy
      cpa::intern_external_models(warm_system, snapshot);
      cpa::EngineOptions warm = base;
      warm.warm = &snapshot;
      compare_arm("warm-snapshot", run_engine(warm_system, warm));
    }
  }
};

// ---------------------------------------------------------------------------
// Compilation: compiled curves vs the lazy DAG.
// ---------------------------------------------------------------------------

class CompilationOracle final : public Oracle {
 public:
  [[nodiscard]] std::string name() const override { return "compilation"; }

  void check(const DiffInput& in, const DiffOptions& opts,
             std::vector<OracleFinding>& out) const override {
    const cpa::EngineOptions base = base_options(opts);
    const cpa::AnalysisReport compiled = run_engine(*in.system, base);

    cpa::EngineOptions lazy_opts = base;
    lazy_opts.compile_curves = false;
    const cpa::AnalysisReport lazy = run_engine(*in.system, lazy_opts);
    if (report_fingerprint(compiled) != report_fingerprint(lazy)) {
      out.push_back({name(), "fp:compile-toggle",
                     "analysis results differ between compile_curves on and off"});
    }

    // Full axiom sweep (AX1-AX13) over every per-task model the engine
    // published, plus random compiled-vs-lazy probes beyond the checker's
    // bend points.
    ModelChecker checker({opts.checker_horizon, /*check_eta=*/true});
    rtc::CompileOptions copts;
    copts.max_horizon = opts.checker_horizon;
    std::mt19937_64 rng(opts.sim_seed);
    for (const cpa::TaskResult& task : compiled.tasks) {
      if (task.activation != nullptr) {
        checker.check_model(*task.activation, task.name + ".activation");
        task.activation->ensure_compiled(copts);
        checker.check_compiled(*task.activation, task.name + ".activation");
        probe(rng, *task.activation, task.name + ".activation", opts, out);
      }
      if (task.output != nullptr) {
        checker.check_model(*task.output, task.name + ".output");
        task.output->ensure_compiled(copts);
        checker.check_compiled(*task.output, task.name + ".output");
        probe(rng, *task.output, task.name + ".output", opts, out);
      }
      // Inner-update results may legitimately fall below the outer's
      // serialisation bound, so AX9 is not asserted on engine outputs.
      if (task.hem_output != nullptr)
        checker.check_hierarchical(*task.hem_output, task.name + ".hem_output",
                                   /*outer_bounds_inner=*/false);
    }
    for (const AxiomViolation& v : checker.violations())
      out.push_back({name(), v.axiom + ":" + v.model, v.format()});
  }

 private:
  /// Compiled and lazy evaluation paths must agree on EVERY query: inside
  /// the compiled horizon by AX12, beyond it because queries fall back to
  /// the lazy DAG.  Random points extend the checker's deterministic grid.
  void probe(std::mt19937_64& rng, const EventModel& model, const std::string& path,
             const DiffOptions& opts, std::vector<OracleFinding>& out) const {
    for (int i = 0; i < opts.probe_points; ++i) {
      const Count n = 2 + static_cast<Count>(rng() % 4096);
      const Time dt = 1 + static_cast<Time>(rng() % 1'000'000);
      if (model.delta_min(n) != model.delta_min_lazy(n)) {
        out.push_back({name(), "probe-delta-min:" + path,
                       path + ": delta_min(" + std::to_string(n) + ") compiled " +
                           std::to_string(model.delta_min(n)) + " != lazy " +
                           std::to_string(model.delta_min_lazy(n))});
        return;  // one witness per model keeps buckets stable
      }
      if (model.delta_plus(n) != model.delta_plus_lazy(n)) {
        out.push_back({name(), "probe-delta-plus:" + path,
                       path + ": delta_plus(" + std::to_string(n) + ") compiled " +
                           std::to_string(model.delta_plus(n)) + " != lazy " +
                           std::to_string(model.delta_plus_lazy(n))});
        return;
      }
      if (model.eta_plus(dt) != model.eta_plus_lazy(dt)) {
        out.push_back({name(), "probe-eta-plus:" + path,
                       path + ": eta_plus(" + std::to_string(dt) + ") compiled " +
                           std::to_string(model.eta_plus(dt)) + " != lazy " +
                           std::to_string(model.eta_plus_lazy(dt))});
        return;
      }
      if (model.eta_minus(dt) != model.eta_minus_lazy(dt)) {
        out.push_back({name(), "probe-eta-minus:" + path,
                       path + ": eta_minus(" + std::to_string(dt) + ") compiled " +
                           std::to_string(model.eta_minus(dt)) + " != lazy " +
                           std::to_string(model.eta_minus_lazy(dt))});
        return;
      }
    }
  }
};

// ---------------------------------------------------------------------------
// Degradation: graceful vs strict, and hemlint HL001 vs engine overload.
// ---------------------------------------------------------------------------

class DegradationOracle final : public Oracle {
 public:
  [[nodiscard]] std::string name() const override { return "degradation"; }

  void check(const DiffInput& in, const DiffOptions& opts,
             std::vector<OracleFinding>& out) const override {
    const cpa::EngineOptions base = base_options(opts);
    const cpa::AnalysisReport graceful = run_engine(*in.system, base);

    cpa::EngineOptions strict_opts = base;
    strict_opts.strict = true;
    bool strict_threw = false;
    cpa::AnalysisReport strict;
    try {
      strict = run_engine(*in.system, strict_opts);
    } catch (const AnalysisError&) {
      strict_threw = true;
    }

    if (strict_threw) {
      // Strict found a failure, so graceful must have recorded degradation
      // for the same system instead of presenting exact-looking bounds.
      if (!graceful.degraded() && graceful.converged && graceful.diagnostics.empty()) {
        out.push_back({name(), "strict-throw-graceful-clean",
                       "strict mode threw AnalysisError but the graceful report is "
                       "converged, undegraded, and diagnostic-free"});
      }
    } else if (strict.converged) {
      // Whenever strict converges, graceful analysed the identical system
      // with identical budgets — its bounds must dominate strict's.
      for (const cpa::TaskResult& stask : strict.tasks) {
        const cpa::TaskResult& gtask = graceful.task(stask.name);
        if (gtask.wcrt < stask.wcrt || gtask.bcrt > stask.bcrt) {
          out.push_back({name(), "strict-dominance:" + stask.name,
                         stask.name + ": graceful [" + std::to_string(gtask.bcrt) + ", " +
                             std::to_string(gtask.wcrt) + "] does not contain strict [" +
                             std::to_string(stask.bcrt) + ", " + std::to_string(stask.wcrt) +
                             "]"});
        }
      }
    }

    if (!in.config_text.empty()) check_hl001(in, graceful, out);
  }

 private:
  void check_hl001(const DiffInput& in, const cpa::AnalysisReport& graceful,
                   std::vector<OracleFinding>& out) const {
    std::istringstream text(in.config_text);
    const LintResult lint = lint_config(text);
    if (!lint.parse_ok) return;
    bool lint_overload = false;
    for (const Diagnostic& d : lint.diagnostics) {
      // Cyclic-dependency configs degrade through a different engine path
      // (unresolved activations), where rate estimates are undefined.
      if (d.code == "HL006" || d.code == "HL007") return;
      if (d.code == "HL001") lint_overload = true;
    }
    bool engine_overload = false;
    for (const cpa::Diagnostic& d : graceful.diagnostics.entries())
      if (d.code == cpa::DiagCode::kResourceOverload) engine_overload = true;

    // hemlint and the engine estimate long-run load with independently
    // quantised rate sums; exactly at the load == 1 boundary they may
    // legitimately round to different sides, so the iff-check keeps a guard
    // band around 1.0.
    std::map<std::string, double> load;
    for (const cpa::TaskResult& task : graceful.tasks) load[task.resource] += task.utilization;
    for (const auto& [resource, value] : load)
      if (value > 0.999 && value < 1.001) return;

    if (lint_overload != engine_overload) {
      out.push_back({name(), "hl001-iff-overload",
                     std::string("hemlint HL001 ") + (lint_overload ? "fired" : "did not fire") +
                         " but the engine " + (engine_overload ? "reported" : "did not report") +
                         " resource overload"});
    }
  }
};

// ---------------------------------------------------------------------------
// Broken models for harness self-tests (mirroring tests/verify mocks).
// ---------------------------------------------------------------------------

/// delta- decreasing in n (violates AX1, and AX3 where it crosses delta+).
class BrokenAx1Model final : public EventModel {
 public:
  [[nodiscard]] std::string describe() const override { return "Broken(ax1)"; }

 protected:
  [[nodiscard]] Time delta_min_raw(Count n) const override {
    return std::max<Time>(0, 10000 - 10 * n);
  }
  [[nodiscard]] Time delta_plus_raw(Count n) const override { return sat_mul(10000, n - 1); }
};

/// delta- above delta+ everywhere (violates AX3).
class BrokenAx3Model final : public EventModel {
 public:
  [[nodiscard]] std::string describe() const override { return "Broken(ax3)"; }

 protected:
  [[nodiscard]] Time delta_min_raw(Count n) const override { return sat_mul(200, n - 1); }
  [[nodiscard]] Time delta_plus_raw(Count n) const override { return sat_mul(100, n - 1); }
};

/// Consistent periodic deltas but a non-monotone closed-form eta+ override
/// (violates AX4, and the AX7 pseudo-inverse relation).
class BrokenEtaPlusModel final : public EventModel {
 public:
  [[nodiscard]] std::string describe() const override { return "Broken(eta-plus)"; }

 protected:
  [[nodiscard]] Time delta_min_raw(Count n) const override { return sat_mul(100, n - 1); }
  [[nodiscard]] Time delta_plus_raw(Count n) const override { return sat_mul(100, n - 1); }
  [[nodiscard]] Count eta_plus_raw(Time dt) const override { return dt % 2 == 1 ? 100 : 1; }
};

/// Correct periodic deltas but a lazy eta+ that ignores them: the compiled
/// form inverts the (correct) curves, so compiled and lazy eta+ disagree
/// inside the horizon (violates AX12).
class BrokenCompileEtaModel final : public EventModel {
 public:
  [[nodiscard]] std::string describe() const override { return "Broken(compile-eta)"; }

 protected:
  [[nodiscard]] Time delta_min_raw(Count n) const override { return sat_mul(100, n - 1); }
  [[nodiscard]] Time delta_plus_raw(Count n) const override { return sat_mul(100, n - 1); }
  [[nodiscard]] Count eta_plus_raw(Time /*dt*/) const override { return 1; }
};

/// Flat (subadditive) delta-: the compiled lower curve's periodic extension
/// overtakes the true curve beyond the horizon (violates AX13).
class BrokenCompileDminModel final : public EventModel {
 public:
  [[nodiscard]] std::string describe() const override { return "Broken(compile-dmin)"; }

 protected:
  [[nodiscard]] Time delta_min_raw(Count /*n*/) const override { return 100; }
  [[nodiscard]] Time delta_plus_raw(Count n) const override { return sat_mul(100, n - 1); }
};

/// Quadratic (superadditive) delta+: the compiled upper curve's linear
/// extension undershoots the true curve beyond the horizon (violates AX13).
class BrokenCompileDplusModel final : public EventModel {
 public:
  [[nodiscard]] std::string describe() const override { return "Broken(compile-dplus)"; }

 protected:
  [[nodiscard]] Time delta_min_raw(Count n) const override { return n - 1; }
  [[nodiscard]] Time delta_plus_raw(Count n) const override { return sat_mul(n - 1, n - 1); }
};

}  // namespace

const std::vector<std::string>& broken_model_kinds() {
  static const std::vector<std::string> kinds = {"ax1",         "ax3",          "eta-plus",
                                                 "compile-eta", "compile-dmin", "compile-dplus"};
  return kinds;
}

ModelPtr make_broken_model(const std::string& kind) {
  if (kind == "ax1") return std::make_shared<BrokenAx1Model>();
  if (kind == "ax3") return std::make_shared<BrokenAx3Model>();
  if (kind == "eta-plus") return std::make_shared<BrokenEtaPlusModel>();
  if (kind == "compile-eta") return std::make_shared<BrokenCompileEtaModel>();
  if (kind == "compile-dmin") return std::make_shared<BrokenCompileDminModel>();
  if (kind == "compile-dplus") return std::make_shared<BrokenCompileDplusModel>();
  throw std::invalid_argument("unknown broken model kind '" + kind + "'");
}

int inject_broken_models(cpa::System& system, const std::string& kind) {
  const ModelPtr broken = make_broken_model(kind);
  int replaced = 0;
  for (cpa::TaskId t = 0; t < system.tasks().size(); ++t) {
    system.rewrite_external_models(t, [&](const ModelPtr& current) -> ModelPtr {
      if (current == nullptr) return nullptr;
      ++replaced;
      return broken;
    });
  }
  return replaced;
}

std::uint64_t report_fingerprint(const cpa::AnalysisReport& report) {
  std::ostringstream os;
  for (const cpa::TaskResult& task : report.tasks) {
    os << task.name << '|' << task.resource << '|' << cpa::to_string(task.status) << '|'
       << task.bcrt << '|' << task.wcrt << '|' << task.activations_in_busy_period << '|'
       << task.busy_period << '|' << task.backlog << '|';
    std::uint64_t util_bits = 0;
    static_assert(sizeof(util_bits) == sizeof(task.utilization));
    std::memcpy(&util_bits, &task.utilization, sizeof(util_bits));
    os << util_bits << '|';
    mix_model(os, task.activation);
    mix_model(os, task.output);
    os << '\n';
  }
  // Iteration counts (global and per-diagnostic) are work counters, not
  // results: a warm-seeded run reaches the same fixpoint in fewer rounds.
  os << report.converged << '\n';
  for (const cpa::Diagnostic& d : report.diagnostics.entries())
    os << cpa::to_string(d.severity) << '|' << cpa::to_string(d.code) << '|' << d.entity << '|'
       << d.detail << '\n';
  return fnv1a64(os.str());
}

OracleRegistry OracleRegistry::with_builtin_oracles() {
  OracleRegistry registry;
  registry.add(std::make_unique<DominanceOracle>());
  registry.add(std::make_unique<DeterminismOracle>());
  registry.add(std::make_unique<CompilationOracle>());
  registry.add(std::make_unique<DegradationOracle>());
  return registry;
}

void OracleRegistry::add(std::unique_ptr<Oracle> oracle) { oracles_.push_back(std::move(oracle)); }

const Oracle* OracleRegistry::find(std::string_view name) const {
  for (const auto& oracle : oracles_)
    if (oracle->name() == name) return oracle.get();
  return nullptr;
}

std::vector<OracleFinding> OracleRegistry::run(const DiffInput& in,
                                               const DiffOptions& opts) const {
  std::vector<OracleFinding> findings;
  for (const auto& oracle : oracles_) {
    try {
      oracle->check(in, opts, findings);
    } catch (const std::exception& e) {
      // A throwing oracle is itself a finding (e.g. HEM_VERIFY contract
      // violations raised by deliberately broken models); the fingerprint
      // stays free of the message so buckets remain stable.
      findings.push_back({oracle->name(), "exception", e.what()});
    }
  }
  return findings;
}

}  // namespace hem::verify
