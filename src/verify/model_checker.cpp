#include "verify/model_checker.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "rtc/compile.hpp"

namespace hem::verify {

namespace {

std::string time_str(Time t) { return is_infinite(t) ? "inf" : std::to_string(t); }
std::string count_str(Count n) { return is_infinite_count(n) ? "inf" : std::to_string(n); }

}  // namespace

std::string AxiomViolation::format() const {
  std::ostringstream os;
  os << axiom << " [" << model << "] @" << witness << ": " << detail;
  return os.str();
}

void ModelChecker::record(const std::string& axiom, const std::string& model, Count witness,
                          std::string detail) {
  // One report per (axiom, model path): a single broken curve would otherwise
  // produce a violation per sample point.
  for (const AxiomViolation& v : violations_)
    if (v.axiom == axiom && v.model == model) return;
  violations_.push_back({axiom, model, witness, std::move(detail)});
}

void ModelChecker::check_model(const EventModel& model, const std::string& path) {
  const std::string id = path + ": " + model.describe();
  const Count horizon = std::max<Count>(options_.horizon, 2);

  // ---- delta axioms AX1-AX3 (delta_min(1) == delta_plus(1) == 0 by base) --
  Time prev_dm = model.delta_min(1);
  Time prev_dp = model.delta_plus(1);
  for (Count n = 2; n <= horizon; ++n) {
    const Time dm = model.delta_min(n);
    const Time dp = model.delta_plus(n);
    if (dm < prev_dm)
      record("AX1", id, n,
             "delta-(" + std::to_string(n) + ")=" + time_str(dm) + " < delta-(" +
                 std::to_string(n - 1) + ")=" + time_str(prev_dm));
    if (dp < prev_dp)
      record("AX2", id, n,
             "delta+(" + std::to_string(n) + ")=" + time_str(dp) + " < delta+(" +
                 std::to_string(n - 1) + ")=" + time_str(prev_dp));
    if (dm > dp)
      record("AX3", id, n,
             "delta-(" + std::to_string(n) + ")=" + time_str(dm) + " > delta+(" +
                 std::to_string(n) + ")=" + time_str(dp));
    prev_dm = dm;
    prev_dp = dp;
  }

  if (!options_.check_eta) return;

  // ---- eta sample points: where the curves actually bend ------------------
  std::set<Time> samples{1, 2, 3};
  for (Count n = 2; n <= horizon; ++n) {
    const Time dm = model.delta_min(n);
    const Time dp = model.delta_plus(n);
    if (!is_infinite(dm)) {
      if (dm > 0) samples.insert(dm);
      samples.insert(dm + 1);
    }
    if (!is_infinite(dp)) {
      if (dp > 1) samples.insert(dp - 1);
      if (dp > 0) samples.insert(dp);
      samples.insert(dp + 1);
    }
  }

  // ---- eta monotonicity + ordering AX4-AX6 --------------------------------
  Count prev_ep = 0;
  Count prev_em = 0;
  Time prev_dt = 0;
  bool first = true;
  for (const Time dt : samples) {
    const Count ep = model.eta_plus(dt);
    const Count em = model.eta_minus(dt);
    if (!first) {
      if (ep < prev_ep)
        record("AX4", id, dt,
               "eta+(" + std::to_string(dt) + ")=" + count_str(ep) + " < eta+(" +
                   std::to_string(prev_dt) + ")=" + count_str(prev_ep));
      if (em < prev_em)
        record("AX5", id, dt,
               "eta-(" + std::to_string(dt) + ")=" + count_str(em) + " < eta-(" +
                   std::to_string(prev_dt) + ")=" + count_str(prev_em));
    }
    if (em > ep)
      record("AX6", id, dt,
             "eta-(" + std::to_string(dt) + ")=" + count_str(em) + " > eta+(" +
                 std::to_string(dt) + ")=" + count_str(ep));
    prev_ep = ep;
    prev_em = em;
    prev_dt = dt;
    first = false;
  }

  // ---- pseudo-inverse duality AX7 (eq. 1) ---------------------------------
  for (Count n = 2; n <= horizon; ++n) {
    const Time dm = model.delta_min(n);
    if (is_infinite(dm)) break;  // monotone: all later n are infinite too
    if (dm > 0) {
      const Count ep = model.eta_plus(dm);
      if (ep > n - 1)
        record("AX7", id, n,
               "eta+(delta-(" + std::to_string(n) + ")=" + time_str(dm) + ")=" + count_str(ep) +
                   " > " + std::to_string(n - 1));
    }
    const Count ep1 = model.eta_plus(dm + 1);
    if (ep1 < n)
      record("AX7", id, n,
             "eta+(delta-(" + std::to_string(n) + ")+1=" + std::to_string(dm + 1) +
                 ")=" + count_str(ep1) + " < " + std::to_string(n));
  }

  // ---- pseudo-inverse duality AX8 (eq. 2) ---------------------------------
  for (Count n = 2; n <= horizon; ++n) {
    const Time dp = model.delta_plus(n);
    if (is_infinite(dp)) break;
    if (dp <= 0) continue;  // eq. 2 is stated for dt > 0 only
    const Count em = model.eta_minus(dp);
    if (em < n - 1)
      record("AX8", id, n,
             "eta-(delta+(" + std::to_string(n) + ")=" + time_str(dp) + ")=" + count_str(em) +
                 " < " + std::to_string(n - 1));
    const Count em1 = model.eta_minus(dp - 1);
    if (em1 > n - 2)
      record("AX8", id, n,
             "eta-(delta+(" + std::to_string(n) + ")-1=" + std::to_string(dp - 1) +
                 ")=" + count_str(em1) + " > " + std::to_string(n - 2));
  }
}

void ModelChecker::check_hierarchical(const HierarchicalEventModel& hem, const std::string& path,
                                      bool outer_bounds_inner) {
  check_model(*hem.outer(), path + ".outer");
  const Count horizon = std::max<Count>(options_.horizon, 2);
  for (std::size_t i = 0; i < hem.inner_count(); ++i) {
    const std::string ipath = path + ".inner[" + std::to_string(i) + "]";
    const EventModel& inner = *hem.inner(i);
    check_model(inner, ipath);
    if (!outer_bounds_inner) continue;
    // AX9 (Def. 8): an inner stream is a subsequence of the outer stream, so
    // n inner events span at least what n outer events span.
    for (Count n = 2; n <= horizon; ++n) {
      const Time din = inner.delta_min(n);
      const Time dout = hem.outer()->delta_min(n);
      if (din < dout) {
        record("AX9", ipath + ": " + inner.describe(), n,
               "inner delta-(" + std::to_string(n) + ")=" + time_str(din) +
                   " < outer delta-(" + std::to_string(n) + ")=" + time_str(dout));
        break;
      }
    }
  }
}

void ModelChecker::check_inner_update(const EventModel& before, const EventModel& after,
                                      Time r_minus, Time r_plus, const std::string& path) {
  const std::string id = path + ": " + after.describe();
  const Count horizon = std::max<Count>(options_.horizon, 2);
  const std::string interval =
      " (response [" + time_str(r_minus) + ", " + time_str(r_plus) + "])";
  for (Count n = 2; n <= horizon; ++n) {
    // AX10: the eq.-8 fallback — events leaving a response-time operation are
    // serialised at least r- apart, so delta'-(n) >= (n-1)*r-.
    const Time floor = sat_mul(r_minus, n - 1);
    const Time da = after.delta_min(n);
    if (da < floor)
      record("AX10", id, n,
             "updated delta-(" + std::to_string(n) + ")=" + time_str(da) + " < (n-1)*r-=" +
                 time_str(floor) + interval);
    // AX11: the response spread can only widen the maximum distance.
    const Time dp_before = before.delta_plus(n);
    const Time dp_after = after.delta_plus(n);
    if (dp_after < dp_before)
      record("AX11", id, n,
             "updated delta+(" + std::to_string(n) + ")=" + time_str(dp_after) +
                 " < pre-update delta+(" + std::to_string(n) + ")=" + time_str(dp_before) +
                 interval);
  }
}

void ModelChecker::check_compiled(const EventModel& model, const std::string& path) {
  const rtc::CompiledModel& c = model.ensure_compiled();
  const std::string id = path + ": " + model.describe();
  /// How far past the compiled horizon the AX13 conservativeness probes
  /// reach — enough to exercise the affine tails, cheap enough to run on
  /// every node of a property sweep.
  constexpr Count kTailProbes = 16;

  // ---- AX12: bit-identity inside the compiled horizon ---------------------
  // The samples are frozen DAG evaluations, so any disagreement means the
  // flat indexing (or a later DAG change) broke the contract.  The probes
  // deliberately go through the try_* fast path on one side and the *_lazy
  // accessors on the other; the transparent base-class query would hide a
  // divergence by answering both from the same form.
  const Count dm_h = std::min<Count>(options_.horizon, c.delta_min_horizon());
  for (Count n = 2; n <= dm_h; ++n) {
    Time fast = 0;
    if (!c.try_delta_min(n, fast)) {
      record("AX12", id, n,
             "try_delta_min refused n=" + std::to_string(n) + " inside its advertised horizon " +
                 count_str(c.delta_min_horizon()));
      break;
    }
    const Time lazy = model.delta_min_lazy(n);
    if (fast != lazy) {
      record("AX12", id, n,
             "compiled delta-(" + std::to_string(n) + ")=" + time_str(fast) +
                 " != lazy delta-(" + std::to_string(n) + ")=" + time_str(lazy));
      break;
    }
  }
  const Count dp_h = std::min<Count>(options_.horizon, c.delta_plus_horizon());
  for (Count n = 2; n <= dp_h; ++n) {
    Time fast = 0;
    if (!c.try_delta_plus(n, fast)) {
      record("AX12", id, n,
             "try_delta_plus refused n=" + std::to_string(n) + " inside its advertised horizon " +
                 count_str(c.delta_plus_horizon()));
      break;
    }
    const Time lazy = model.delta_plus_lazy(n);
    if (fast != lazy) {
      record("AX12", id, n,
             "compiled delta+(" + std::to_string(n) + ")=" + time_str(fast) +
                 " != lazy delta+(" + std::to_string(n) + ")=" + time_str(lazy));
      break;
    }
  }

  // Eta agreement at the bend points of the compiled arrays (the exact
  // breakpoints of eqs. (1)/(2), where an off-by-one in the binary-search
  // inversion would show) plus their +-1 neighbours.
  if (options_.check_eta) {
    std::set<Time> samples{1, 2, 3};
    for (Count n = 2; n <= dm_h; ++n) {
      const Time dm = model.delta_min_lazy(n);
      if (dm > 0) samples.insert(dm);
      samples.insert(sat_add(dm, 1));
    }
    for (Count n = 2; n <= dp_h; ++n) {
      const Time dp = model.delta_plus_lazy(n);
      if (is_infinite(dp)) break;
      if (dp > 1) samples.insert(dp - 1);
      if (dp > 0) samples.insert(dp);
      samples.insert(dp + 1);
    }
    for (const Time dt : samples) {
      if (is_infinite(dt)) continue;
      Count fast = 0;
      if (c.try_eta_plus(dt, fast)) {
        const Count lazy = model.eta_plus_lazy(dt);
        if (fast != lazy) {
          record("AX12", id, dt,
                 "compiled eta+(" + std::to_string(dt) + ")=" + count_str(fast) +
                     " != lazy eta+(" + std::to_string(dt) + ")=" + count_str(lazy));
          break;
        }
      }
      if (c.try_eta_minus(dt, fast)) {
        const Count lazy = model.eta_minus_lazy(dt);
        if (fast != lazy) {
          record("AX12", id, dt,
                 "compiled eta-(" + std::to_string(dt) + ")=" + count_str(fast) +
                     " != lazy eta-(" + std::to_string(dt) + ")=" + count_str(lazy));
          break;
        }
      }
    }
  }

  // ---- AX13: curve conservativeness, inside AND beyond the horizon --------
  // The curve pair is the only part of the compiled form that extrapolates
  // (affine tails justified by super-/subadditivity), so probe it across the
  // horizon boundary where the extrapolation takes over from the samples.
  const rtc::Curve& lo = c.lower_curve();
  const Count lo_end = sat_add(c.delta_min_horizon(), kTailProbes);
  for (Count n = 2; n <= lo_end; ++n) {
    const Time lazy = model.delta_min_lazy(n);
    if (is_infinite(lazy)) break;  // any finite curve value lower-bounds inf
    const Time bound = lo.value(static_cast<Time>(n));
    if (bound > lazy) {
      record("AX13", id, n,
             "lower curve(" + std::to_string(n) + ")=" + time_str(bound) + " > delta-(" +
                 std::to_string(n) + ")=" + time_str(lazy) +
                 (n > c.delta_min_horizon() ? " (beyond compiled horizon)" : ""));
      break;
    }
  }
  if (const rtc::Curve* up = c.upper_curve()) {
    const Count up_end = sat_add(c.delta_plus_horizon(), kTailProbes);
    for (Count n = 2; n <= up_end; ++n) {
      const Time lazy = model.delta_plus_lazy(n);
      const Time bound = up->value(static_cast<Time>(n));
      if (is_infinite(lazy) || bound < lazy) {
        record("AX13", id, n,
               "upper curve(" + std::to_string(n) + ")=" + time_str(bound) + " < delta+(" +
                   std::to_string(n) + ")=" + time_str(lazy) +
                   (n > c.delta_plus_horizon() ? " (beyond compiled horizon)" : ""));
        break;
      }
    }
  }
}

std::string ModelChecker::format() const {
  std::ostringstream os;
  for (const AxiomViolation& v : violations_) os << v.format() << "\n";
  return os.str();
}

}  // namespace hem::verify
