#pragma once

/// \file differential.hpp
/// Differential verification oracles: each oracle cross-checks two
/// *independent* computations of the same truth about one system, so a bug
/// in either computation surfaces as a disagreement instead of silently
/// producing optimistic bounds.  This is the library core of the `hemfuzz`
/// driver (tools/hemfuzz.cpp) and the executable form of the paper's
/// conservativeness claim — every HEM bound must dominate any trace the
/// modeled system can produce.
///
/// Built-in oracle families (OracleRegistry::with_builtin_oracles):
///
///   dominance     analysis WCRT/backlog bounds vs src/sim observed maxima,
///                 plus trace_check conformance of observed activation and
///                 completion traces against the analytic stream models
///   determinism   report fingerprints bit-identical across jobs=1 vs
///                 jobs=N, incremental on vs off, and cold vs warm-snapshot
///                 re-analysis
///   compilation   compiled-curve vs lazy-DAG delta/eta identity (random
///                 probes beyond the AX12 bend points) plus a full
///                 ModelChecker AX1-AX13 sweep over every per-task model
///   degradation   graceful-mode bounds dominate strict-mode results
///                 whenever strict converges; strict failures imply a
///                 degraded graceful report; hemlint HL001 fires iff the
///                 engine diagnoses resource overload (guard-banded around
///                 load == 1 where the two load estimators may round apart)
///
/// Findings are value types carrying a *stable* fingerprint: the same
/// violation on the same system buckets identically across runs and
/// processes (fingerprints never embed pointers, timings, or iteration
/// counts), which is what makes hemfuzz's failure bucketing and the ddmin
/// shrinker's "still the same bug" predicate work.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "model/analysis_report.hpp"
#include "model/system.hpp"

namespace hem::verify {

/// Tuning knobs shared by all oracles.
struct DiffOptions {
  Time sim_horizon = 100'000;     ///< simulated ticks for the dominance oracle
  std::uint64_t sim_seed = 1;     ///< simulator + probe RNG seed
  int wide_jobs = 8;              ///< parallel arm of the determinism oracle
  Count checker_horizon = 32;     ///< ModelChecker horizon (compilation oracle)
  int probe_points = 24;          ///< random compiled-vs-lazy probes per model
  int max_iterations = 64;        ///< engine iteration budget for every run
};

/// One oracle violation.
struct OracleFinding {
  std::string oracle;       ///< oracle family name ("dominance", ...)
  std::string fingerprint;  ///< stable within-oracle failure key ("wcrt:T3")
  std::string detail;       ///< human-readable explanation with values

  /// Stable bucket id: FNV-1a of "<oracle>/<fingerprint>".  Deterministic
  /// across runs and processes by construction.
  [[nodiscard]] std::uint64_t bucket() const;
};

/// What the oracles examine.  `config_text` is optional: when empty, checks
/// that need the textual form (the HL001/hemlint cross-check) are skipped —
/// hemfuzz uses this for injected-fault runs where the text no longer
/// describes the mutated in-memory system.
struct DiffInput {
  const cpa::System* system = nullptr;
  std::string config_text;
};

/// One differential oracle.  Implementations must be deterministic: same
/// input + same options => same findings in the same order.
class Oracle {
 public:
  virtual ~Oracle() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  virtual void check(const DiffInput& in, const DiffOptions& opts,
                     std::vector<OracleFinding>& out) const = 0;
};

/// Ordered collection of oracles.  `run` executes every oracle, converting
/// an escaped exception into an "exception"-fingerprint finding for that
/// oracle (HEM_VERIFY contract violations on deliberately broken models
/// arrive this way) so one failing oracle never hides the others' verdicts.
class OracleRegistry {
 public:
  /// Registry with the four built-in oracle families, in a fixed order:
  /// dominance, determinism, compilation, degradation.
  [[nodiscard]] static OracleRegistry with_builtin_oracles();

  void add(std::unique_ptr<Oracle> oracle);

  [[nodiscard]] std::vector<OracleFinding> run(const DiffInput& in,
                                               const DiffOptions& opts) const;

  /// Registered oracle by name, or nullptr.
  [[nodiscard]] const Oracle* find(std::string_view name) const;

  [[nodiscard]] const std::vector<std::unique_ptr<Oracle>>& oracles() const noexcept {
    return oracles_;
  }

 private:
  std::vector<std::unique_ptr<Oracle>> oracles_;
};

/// FNV-1a 64-bit hash (stable across platforms and runs).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view data);

/// Order-sensitive fingerprint of everything result-relevant in a report:
/// per-task names, statuses, response/backlog bounds, utilization bit
/// patterns, short delta-curve samples of the activation and output models,
/// global convergence, and all diagnostics.  Deliberately excludes
/// EngineStats and every iteration count (global and per-diagnostic): work
/// counters legitimately vary with jobs/incremental/warm settings while
/// results must not.
[[nodiscard]] std::uint64_t report_fingerprint(const cpa::AnalysisReport& report);

/// Known deliberately-broken model kinds for self-tests of the harness
/// (mirroring the BrokenModel/BrokenCompileModel mocks in tests/verify):
/// "ax1" (delta- decreasing), "ax3" (delta- above delta+), "eta-plus"
/// (non-monotone closed-form eta+), "compile-eta" (lazy eta disagreeing
/// with its own delta curves, AX12), "compile-dmin" / "compile-dplus"
/// (sub/superadditive curves the lowering cannot bound, AX13).
[[nodiscard]] const std::vector<std::string>& broken_model_kinds();

/// One shared instance of the given broken kind.
/// \throws std::invalid_argument for unknown kinds.
[[nodiscard]] ModelPtr make_broken_model(const std::string& kind);

/// Replace every external event-model node of `system` (external
/// activations, packed sources, pack timers) with ONE shared broken node of
/// the given kind.  Sharing a single node keeps the memoisation footprint
/// of pathological curves bounded.  Returns the number of replaced nodes.
int inject_broken_models(cpa::System& system, const std::string& kind);

}  // namespace hem::verify
