#pragma once

/// \file model_checker.hpp
/// Model-algebra contract checker: verifies the paper's event-model axioms
/// on concrete EventModel instances over a configurable horizon.
///
/// The whole hierarchy of analyses rests on a handful of algebraic
/// properties of the characteristic functions (Rox/Ernst DATE'08, section 3
/// and Defs. 8-9); a model violating any of them silently produces
/// *optimistic* (wrong) response-time bounds downstream.  The checker tests:
///
///   AX1  delta-(n) non-decreasing in n, delta-(2) >= 0      (Def. of F)
///   AX2  delta+(n) non-decreasing in n, delta+(2) >= 0
///   AX3  delta-(n) <= delta+(n)
///   AX4  eta+(dt) non-decreasing in dt                      (eq. 1)
///   AX5  eta-(dt) non-decreasing in dt                      (eq. 2)
///   AX6  eta-(dt) <= eta+(dt)
///   AX7  eta+ is the pseudo-inverse of delta- (eq. 1):
///          eta+(delta-(n)) <= n-1 when delta-(n) > 0, and
///          eta+(delta-(n) + 1) >= n
///   AX8  eta- is the pseudo-inverse of delta+ (eq. 2):
///          eta-(delta+(n)) >= n-1, and
///          eta-(delta+(n) - 1) <= n-2 when delta+(n) > 0
///   AX9  HES conservativeness of pack outputs (Def. 8, eqs. 5-8): every
///        inner stream is a subsequence of the outer stream, so
///          delta-_inner(n) >= delta-_outer(n)
///   AX10 inner-update serialisation floor (Def. 9 / eq.-8 fallback):
///          delta'-(n) >= (n-1) * r-
///   AX11 inner update widens delta+ (Def. 9):
///          delta'+(n) >= delta+(n)
///   AX12 compiled-form agreement (rtc/compile.hpp): inside its advertised
///        horizon the lowered model reproduces the lazy DAG bit-for-bit,
///        for delta- and delta+ samples and for the eta inversions
///   AX13 compiled-curve conservativeness: the curve pair emitted by the
///        lowering bounds the lazy DAG at every probed n, including beyond
///        the compiled horizon (lower curve <= delta-, upper curve >= delta+)
///
/// Violations are *reported*, not thrown; see contracts.hpp for the
/// throwing HEM_VERIFY construction-time wrappers.

#include <string>
#include <vector>

#include "core/event_model.hpp"
#include "hierarchical/hierarchical_event_model.hpp"

namespace hem::verify {

/// One axiom violation: which axiom, on which model, witnessed where.
struct AxiomViolation {
  std::string axiom;   ///< stable axiom id, e.g. "AX1"
  std::string model;   ///< model path ("T3.activation: SEM(...)")
  Count witness = 0;   ///< witness point: n for delta axioms, dt for eta axioms
  std::string detail;  ///< the violated inequality with concrete values

  [[nodiscard]] std::string format() const;
};

/// Tuning knobs of a check run.
struct CheckerOptions {
  /// Largest n probed on the delta curves (and used to derive eta sample
  /// points).  Checks are O(horizon) delta queries + O(horizon) eta queries.
  Count horizon = 64;
  /// Probe the eta functions (AX4-AX8).  Costs a galloping search per
  /// sample; switched off by the cheap construction-time contracts.
  bool check_eta = true;
};

/// Axiom checker.  Accumulates violations across any number of check_*
/// calls; at most one violation per (axiom, model path) pair is recorded so
/// a single broken curve cannot flood the report.
class ModelChecker {
 public:
  explicit ModelChecker(CheckerOptions options = {}) : options_(options) {}

  /// Check AX1-AX8 on one flat model.  `path` names the model in reports
  /// (e.g. "T3.activation"); the model's describe() is appended.
  void check_model(const EventModel& model, const std::string& path);

  /// Check every component model of a HEM (AX1-AX8 each) plus, when
  /// `outer_bounds_inner`, the Def.-8 conservativeness AX9.  Pack
  /// constructor outputs must satisfy AX9; results of the Def.-9 inner
  /// update need not (the updated inner bound is conservative and may fall
  /// below the updated outer's recursive serialisation bound), so
  /// after_response() outputs are checked with `outer_bounds_inner=false`.
  void check_hierarchical(const HierarchicalEventModel& hem, const std::string& path,
                          bool outer_bounds_inner = true);

  /// Check an inner-update result against Def. 9: AX10 (eq.-8 serialisation
  /// floor) and AX11 (delta+ only widens) relative to the pre-update model.
  void check_inner_update(const EventModel& before, const EventModel& after, Time r_minus,
                          Time r_plus, const std::string& path);

  /// Lower `model` (reusing an already-published compiled form when one
  /// exists) and check the compilation axioms: AX12 — inside the compiled
  /// horizon the flat form agrees bit-for-bit with the lazy DAG on delta-
  /// and delta+ samples and on the eta inversions at every compiled bend
  /// point; AX13 — the emitted curve pair stays conservative at every
  /// probed n, in particular beyond the compiled horizon where queries
  /// fall back to the lazy DAG (lower curve <= delta-, upper >= delta+).
  void check_compiled(const EventModel& model, const std::string& path);

  [[nodiscard]] bool ok() const noexcept { return violations_.empty(); }
  [[nodiscard]] const std::vector<AxiomViolation>& violations() const noexcept {
    return violations_;
  }

  /// All violations, one formatted line each.
  [[nodiscard]] std::string format() const;

 private:
  void record(const std::string& axiom, const std::string& model, Count witness,
              std::string detail);

  CheckerOptions options_;
  std::vector<AxiomViolation> violations_;
};

}  // namespace hem::verify
