#include "verify/lint.hpp"

#include <algorithm>
#include <iomanip>
#include <map>
#include <optional>
#include <sstream>
#include <variant>

#include "daemon/protocol.hpp"
#include "model/analysis_report.hpp"
#include "model/system.hpp"
#include "model/textual_config.hpp"

namespace hem::verify {

namespace {

using cpa::ActivationSpec;
using cpa::ParsedSystem;
using cpa::SourceLoc;
using cpa::TaskId;

std::string fixed2(double v) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2) << v;
  return os.str();
}

/// All tasks whose *analysis results* a task's activation needs: the CPA
/// engine resolves an activation only once every referenced task (including
/// pending-coupled pack inputs and the unpack frame) has an output model.
std::vector<TaskId> referenced_tasks(const ActivationSpec& spec) {
  std::vector<TaskId> refs;
  if (const auto* out = std::get_if<cpa::TaskOutputActivation>(&spec)) {
    refs = out->producers;
  } else if (const auto* land = std::get_if<cpa::AndActivation>(&spec)) {
    refs = land->producers;
  } else if (const auto* packed = std::get_if<cpa::PackedActivation>(&spec)) {
    for (const auto& in : packed->inputs)
      if (const auto* task = std::get_if<TaskId>(&in.source)) refs.push_back(*task);
  } else if (const auto* unpack = std::get_if<cpa::UnpackedActivation>(&spec)) {
    refs.push_back(unpack->frame_task);
  }
  return refs;
}

class Linter {
 public:
  Linter(const ParsedSystem& parsed, std::vector<Diagnostic>& out)
      : parsed_(parsed), out_(out), tasks_(parsed.system.tasks()) {}

  void run() {
    check_unreferenced_sources();   // HL005
    check_activation_graph();       // HL006 + HL007
    check_pack_constructors();      // HL008
    check_utilization();            // HL001 (needs the graph's rates)
    check_duplicate_priorities();   // HL002
    check_strict_with_faults();     // HL009
    check_deadlines();              // HL010
  }

 private:
  void emit(LintSeverity severity, SourceLoc loc, const char* code, std::string message) {
    out_.push_back({severity, loc.line, loc.col, code, std::move(message)});
  }

  [[nodiscard]] SourceLoc task_loc(TaskId t) const {
    const auto it = parsed_.index.tasks.find(tasks_[t].name);
    return it == parsed_.index.tasks.end() ? SourceLoc{} : it->second;
  }

  // ---- HL005 --------------------------------------------------------------
  void check_unreferenced_sources() {
    for (const auto& [name, uses] : parsed_.index.source_refs) {
      if (uses > 0) continue;
      const auto loc = parsed_.index.sources.find(name);
      emit(LintSeverity::kWarning, loc == parsed_.index.sources.end() ? SourceLoc{} : loc->second,
           "HL005", "source '" + name + "' is declared but never referenced");
    }
  }

  // ---- HL006 / HL007 ------------------------------------------------------
  // The engine resolves a task's activation only after every referenced task
  // has been analysed, so any dependency cycle (which no member can enter
  // first) never bootstraps, and everything downstream of it starves too.
  void check_activation_graph() {
    const std::size_t n = tasks_.size();
    std::vector<std::vector<TaskId>> refs(n);
    for (TaskId t = 0; t < n; ++t) refs[t] = referenced_tasks(parsed_.system.activation(t));

    std::vector<bool> resolvable(n, false);
    for (bool changed = true; changed;) {
      changed = false;
      for (TaskId t = 0; t < n; ++t) {
        if (resolvable[t]) continue;
        const bool ok = std::all_of(refs[t].begin(), refs[t].end(),
                                    [&](TaskId d) { return resolvable[d]; });
        if (ok) {
          resolvable[t] = true;
          changed = true;
        }
      }
    }

    // Among the unresolvable tasks, cycle members are exactly those that can
    // reach themselves; mutual reachability groups them into components.
    std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
    for (TaskId t = 0; t < n; ++t) {
      if (resolvable[t]) continue;
      std::vector<TaskId> stack{t};
      while (!stack.empty()) {
        const TaskId u = stack.back();
        stack.pop_back();
        for (const TaskId d : refs[u])
          if (!resolvable[d] && !reach[t][d]) {
            reach[t][d] = true;
            stack.push_back(d);
          }
      }
    }

    std::vector<bool> reported(n, false);
    for (TaskId t = 0; t < n; ++t) {
      if (resolvable[t] || reported[t] || !reach[t][t]) continue;
      std::vector<std::string> members;
      for (TaskId u = 0; u < n; ++u)
        if (!resolvable[u] && reach[t][u] && reach[u][t]) {
          reported[u] = true;
          members.push_back(tasks_[u].name);
        }
      std::string list;
      for (const auto& m : members) list += (list.empty() ? "" : " -> ") + m;
      emit(LintSeverity::kError, task_loc(t), "HL007",
           "activation dependency cycle {" + list +
               "} has no external stimulus and can never bootstrap");
    }
    for (TaskId t = 0; t < n; ++t) {
      if (resolvable[t] || reach[t][t]) continue;  // cycle members got HL007
      emit(LintSeverity::kError, task_loc(t), "HL006",
           "task '" + tasks_[t].name +
               "' is unreachable: its activation depends (transitively) on a dependency "
               "cycle that never produces events");
    }
  }

  // ---- HL008 --------------------------------------------------------------
  void check_pack_constructors() {
    for (TaskId t = 0; t < tasks_.size(); ++t) {
      const auto* packed = std::get_if<cpa::PackedActivation>(&parsed_.system.activation(t));
      if (packed == nullptr || packed->timer) continue;
      const bool has_trigger =
          std::any_of(packed->inputs.begin(), packed->inputs.end(), [](const auto& in) {
            return in.coupling == SignalCoupling::kTriggering;
          });
      if (has_trigger) continue;
      emit(LintSeverity::kError, task_loc(t), "HL008",
           "frame task '" + tasks_[t].name +
               "' has no timer and no triggering input: the frame is never sent and its "
               "pending signals can never be flushed");
    }
  }

  // ---- HL001 --------------------------------------------------------------
  // Long-run activation rates propagate through the graph without running
  // the engine: a task's output preserves its activation rate (Theta_tau),
  // OR sums, AND fires once per token set, a packed frame once per
  // triggering event or timer tick, a pending inner stream at most at the
  // signal's own rate (and never above the frame rate).
  void check_utilization() {
    const std::size_t n = tasks_.size();
    std::vector<std::optional<double>> rate(n);
    for (std::size_t round = 0; round <= n; ++round) {
      for (TaskId t = 0; t < n; ++t) {
        if (rate[t].has_value()) continue;
        rate[t] = activation_rate(t, rate);
      }
    }

    for (std::size_t r = 0; r < parsed_.system.resources().size(); ++r) {
      double load = 0.0;
      bool complete = true;
      for (TaskId t = 0; t < n; ++t) {
        if (tasks_[t].resource != r) continue;
        if (!rate[t].has_value()) {
          complete = false;  // cycle upstream; HL006/HL007 already fired
          break;
        }
        load += *rate[t] * static_cast<double>(tasks_[t].cet.worst);
      }
      if (!complete || load <= 1.0 + 1e-9) continue;
      const std::string& name = parsed_.system.resources()[r].name;
      const auto loc = parsed_.index.resources.find(name);
      emit(LintSeverity::kError,
           loc == parsed_.index.resources.end() ? SourceLoc{} : loc->second, "HL001",
           "resource '" + name + "' long-run utilization " + fixed2(load) +
               " exceeds 1: the busy window diverges and no response-time bound exists");
    }
  }

  [[nodiscard]] std::optional<double> activation_rate(
      TaskId t, const std::vector<std::optional<double>>& rate) const {
    const ActivationSpec& spec = parsed_.system.activation(t);
    if (const auto* ext = std::get_if<cpa::ExternalActivation>(&spec))
      return model_rate(ext->model);
    if (const auto* out = std::get_if<cpa::TaskOutputActivation>(&spec))
      return sum_rates(out->producers, rate);
    if (const auto* land = std::get_if<cpa::AndActivation>(&spec))
      return land->period > 0 ? std::optional<double>(1.0 / static_cast<double>(land->period))
                              : std::nullopt;
    if (const auto* packed = std::get_if<cpa::PackedActivation>(&spec)) {
      double sum = packed->timer ? model_rate(packed->timer) : 0.0;
      for (const auto& in : packed->inputs) {
        if (in.coupling != SignalCoupling::kTriggering) continue;
        if (const auto* task = std::get_if<TaskId>(&in.source)) {
          if (!rate[*task].has_value()) return std::nullopt;
          sum += *rate[*task];
        } else {
          sum += model_rate(std::get<ModelPtr>(in.source));
        }
      }
      return sum;
    }
    if (const auto* unpack = std::get_if<cpa::UnpackedActivation>(&spec)) {
      const auto* frame =
          std::get_if<cpa::PackedActivation>(&parsed_.system.activation(unpack->frame_task));
      if (frame == nullptr || unpack->index >= frame->inputs.size()) return std::nullopt;
      if (!rate[unpack->frame_task].has_value()) return std::nullopt;
      const auto& in = frame->inputs[unpack->index];
      double signal = 0.0;
      if (const auto* task = std::get_if<TaskId>(&in.source)) {
        if (!rate[*task].has_value()) return std::nullopt;
        signal = *rate[*task];
      } else {
        signal = model_rate(std::get<ModelPtr>(in.source));
      }
      // A triggering signal's inner stream is the signal itself; a pending
      // signal is carried at most once per frame.
      return in.coupling == SignalCoupling::kTriggering
                 ? signal
                 : std::min(signal, *rate[unpack->frame_task]);
    }
    return std::nullopt;
  }

  [[nodiscard]] static std::optional<double> sum_rates(
      const std::vector<TaskId>& producers, const std::vector<std::optional<double>>& rate) {
    double sum = 0.0;
    for (const TaskId p : producers) {
      if (!rate[p].has_value()) return std::nullopt;
      sum += *rate[p];
    }
    return sum;
  }

  [[nodiscard]] static double model_rate(const ModelPtr& model) {
    // Lower the node first: packed frames and unpacked inner streams can
    // reference one external source several times, and the compiled form
    // (rtc/compile.hpp) answers each eta query of the rate estimate with a
    // flat binary search instead of a galloping DAG inversion.  Queries
    // beyond the compiled horizon fall back to the lazy DAG, so the rate is
    // bit-identical to the uncompiled evaluation.
    model->ensure_compiled();
    return cpa::long_run_rate(*model);
  }

  // ---- HL002 --------------------------------------------------------------
  void check_duplicate_priorities() {
    for (std::size_t r = 0; r < parsed_.system.resources().size(); ++r) {
      const cpa::Policy policy = parsed_.system.resources()[r].policy;
      if (policy != cpa::Policy::kSppPreemptive && policy != cpa::Policy::kSpnpCan) continue;
      std::map<int, std::string> seen;
      for (TaskId t = 0; t < tasks_.size(); ++t) {
        if (tasks_[t].resource != r) continue;
        const auto [it, inserted] = seen.emplace(tasks_[t].priority, tasks_[t].name);
        if (inserted) continue;
        emit(LintSeverity::kWarning, task_loc(t), "HL002",
             "task '" + tasks_[t].name + "' duplicates priority " +
                 std::to_string(tasks_[t].priority) + " of task '" + it->second +
                 "' on resource '" + parsed_.system.resources()[r].name +
                 "' (tie-breaking is analysis-dependent" +
                 (policy == cpa::Policy::kSpnpCan ? "; identical CAN identifiers are illegal on "
                                                    "a real bus"
                                                  : "") +
                 ")");
      }
    }
  }

  // ---- HL009 --------------------------------------------------------------
  void check_strict_with_faults() {
    if (!parsed_.strict) return;
    if (parsed_.sim_drop <= 0.0 && parsed_.sim_jitter <= 0 && parsed_.sim_burst <= 1) return;
    const auto loc = parsed_.index.options.find("strict");
    emit(LintSeverity::kWarning,
         loc == parsed_.index.options.end() ? SourceLoc{} : loc->second, "HL009",
         "option strict=on combined with sim fault injection: injected faults intentionally "
         "violate the analysed bounds, so strict simulation runs are expected to fail");
  }

  // ---- HL010 --------------------------------------------------------------
  void check_deadlines() {
    for (const auto& [name, deadline] : parsed_.deadlines) {
      const TaskId t = parsed_.system.task_id(name);
      if (deadline >= tasks_[t].cet.worst) continue;
      const auto loc = parsed_.index.deadlines.find(name);
      emit(LintSeverity::kError,
           loc == parsed_.index.deadlines.end() ? SourceLoc{} : loc->second, "HL010",
           "deadline " + std::to_string(deadline) + " of task '" + name +
               "' is below its worst-case execution time " + std::to_string(tasks_[t].cet.worst) +
               " and can never be met");
    }
    for (TaskId t = 0; t < tasks_.size(); ++t) {
      if (tasks_[t].deadline <= 0 || tasks_[t].deadline >= tasks_[t].cet.worst) continue;
      emit(LintSeverity::kError, task_loc(t), "HL010",
           "deadline " + std::to_string(tasks_[t].deadline) + " of task '" + tasks_[t].name +
               "' is below its worst-case execution time " +
               std::to_string(tasks_[t].cet.worst) + " and can never be met");
    }
  }

  const ParsedSystem& parsed_;
  std::vector<Diagnostic>& out_;
  const std::vector<cpa::TaskSpec>& tasks_;
};

}  // namespace

std::size_t LintResult::count(LintSeverity s) const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [s](const Diagnostic& d) { return d.severity == s; }));
}

bool LintResult::fails(bool werror) const {
  if (werror) return !diagnostics.empty();
  return std::any_of(diagnostics.begin(), diagnostics.end(),
                     [](const Diagnostic& d) { return d.is_error(); });
}

LintResult lint_config(std::istream& in) {
  LintResult result;
  ParsedSystem parsed;
  try {
    parsed = cpa::parse_system_config(in, &result.diagnostics);
  } catch (const std::exception&) {
    // Positioned diagnostics (incl. the failure itself) are already in
    // result.diagnostics; graph checks need a parsed system, so stop here.
    result.parse_ok = false;
    return result;
  }
  result.parse_ok = true;
  Linter(parsed, result.diagnostics).run();
  std::stable_sort(result.diagnostics.begin(), result.diagnostics.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return a.line != b.line ? a.line < b.line : a.col < b.col;
                   });
  return result;
}

int lint_exit_code(const LintResult& result, bool werror) {
  return result.fails(werror) ? 1 : 0;
}

std::string write_lint_json(const LintResult& result, const std::string& file, bool werror) {
  std::string diags = "[";
  for (std::size_t i = 0; i < result.diagnostics.size(); ++i) {
    const Diagnostic& d = result.diagnostics[i];
    if (i > 0) diags += ',';
    diags += daemon::JsonWriter()
                 .add("file", file)
                 .add("line", static_cast<long>(d.line))
                 .add("col", static_cast<long>(d.col))
                 .add("severity", to_string(d.severity))
                 .add("code", d.code)
                 .add("message", d.message)
                 .str();
  }
  diags += ']';
  return daemon::JsonWriter()
      .add("file", file)
      .add("parse_ok", result.parse_ok)
      .add("rejected", result.fails(werror))
      .add("warnings", static_cast<long>(result.count(LintSeverity::kWarning)))
      .add("errors", static_cast<long>(result.count(LintSeverity::kError)))
      .add_raw("diagnostics", diags)
      .str();
}

}  // namespace hem::verify
