#pragma once

/// \file lint.hpp
/// Graph-level static checks over a parsed `.hemcpa` configuration — the
/// engine of the `hemlint` tool, exposed as a library so tests can drive it
/// from strings.
///
/// Diagnostic codes (full table with rationale in docs/linting.md):
///
///   HL000  configuration does not parse (catch-all, positioned)   error
///   HL001  long-run resource utilization > 1                      error
///   HL002  duplicate priority on an SPP/CAN resource              warning
///   HL003  SEM jitter > period (burst regime)                     warning
///   HL004  SEM dmin > period (contradictory spacing)              error
///   HL005  declared event source never referenced                 warning
///   HL006  task unreachable (depends on an unresolvable cycle)    error
///   HL007  activation dependency cycle without external stimulus  error
///   HL008  packed frame with no timer and no triggering input     error
///   HL009  `option strict=on` combined with sim fault injection   warning
///   HL010  deadline below the task's worst-case execution time    error
///
/// HL000, HL003 and HL004 are emitted by the textual_config parser itself
/// (so `hemcpa --diagnostics` shows them too); the rest need the activation
/// graph and are computed here without running the CPA engine.

#include <istream>
#include <string>
#include <vector>

#include "verify/diagnostic.hpp"

namespace hem::verify {

/// Outcome of linting one configuration.
struct LintResult {
  std::vector<Diagnostic> diagnostics;  ///< in source order, parser first
  bool parse_ok = false;                ///< false: only parse diagnostics present

  [[nodiscard]] std::size_t count(LintSeverity s) const;

  /// True when the configuration should be rejected: any error, or any
  /// diagnostic at all under `werror`.
  [[nodiscard]] bool fails(bool werror) const;
};

/// Lint a configuration text.  Never throws on bad configurations — parse
/// failures become HL000/HL004 diagnostics with parse_ok = false.
[[nodiscard]] LintResult lint_config(std::istream& in);

/// CLI exit-code convention of `hemlint`: 0 clean (or warnings without
/// --werror), 1 findings reject the config.  (3, usage error, is decided by
/// the CLI itself.)
[[nodiscard]] int lint_exit_code(const LintResult& result, bool werror);

/// Machine-readable rendering of one lint run as a single JSON object:
///
/// ```json
/// {"file": "a.hemcpa", "parse_ok": true, "rejected": false,
///  "warnings": 1, "errors": 0,
///  "diagnostics": [{"file": "a.hemcpa", "line": 3, "col": 10,
///                   "severity": "warning", "code": "HL003",
///                   "message": "..."}]}
/// ```
///
/// Key order and escaping are stable (the daemon's json_escape), so the
/// output is fingerprintable; `rejected` matches `fails(werror)` and
/// therefore the text mode's exit code.  One object per input file —
/// callers linting several files emit one JSON line each (JSONL).
[[nodiscard]] std::string write_lint_json(const LintResult& result, const std::string& file,
                                          bool werror);

}  // namespace hem::verify
