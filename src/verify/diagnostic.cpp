#include "verify/diagnostic.hpp"

#include <sstream>

namespace hem::verify {

const char* to_string(LintSeverity s) noexcept {
  switch (s) {
    case LintSeverity::kWarning:
      return "warning";
    case LintSeverity::kError:
      return "error";
  }
  return "?";
}

std::string format(const Diagnostic& d) {
  std::ostringstream os;
  if (d.line > 0) {
    os << d.line << ":";
    if (d.col > 0) os << d.col << ":";
    os << " ";
  }
  os << to_string(d.severity) << ": " << d.message;
  if (!d.code.empty()) os << " [" << d.code << "]";
  return os.str();
}

std::string format(const Diagnostic& d, const std::string& file) {
  return file + ":" + format(d);
}

}  // namespace hem::verify
