#pragma once

/// \file contracts.hpp
/// Cheap construction-time contracts over the model algebra, compiled in
/// when HEM_VERIFY is ON (CMake option; default ON in Debug builds, OFF in
/// Release, mirroring the HEM_OBS gate).
///
/// The contracts run a small-horizon, eta-free ModelChecker pass at the two
/// construction sites where the paper's hierarchical guarantees are
/// established — the pack constructor Omega_pa (Def. 8) and the inner
/// update B (Def. 9) — and throw ContractViolation on any failure.
/// ContractViolation derives from std::logic_error, NOT AnalysisError: the
/// graceful engine degrades on AnalysisError, which would silently mask a
/// contract bug behind conservative fallback bounds.
///
/// Call sites use the HEM_VERIFY_* macros, which compile to nothing when
/// the CMake option is OFF (HEM_VERIFY_DISABLE defined).

#include <stdexcept>
#include <string>

#include "core/event_model.hpp"
#include "hierarchical/hierarchical_event_model.hpp"

namespace hem::verify {

/// A model-algebra axiom failed at a construction site.  Deliberately not
/// an AnalysisError: this is a bug in the model algebra, never a property
/// of the analysed system, and must not be degraded away.
class ContractViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Horizon of the construction-time checks: large enough to catch shape
/// errors, small enough to run at every pack()/after_response().
inline constexpr Count kContractHorizon = 8;

/// Check delta monotonicity/ordering on every component of `hem` plus the
/// Def.-8 outer-bounds-inners property.  Used on pack() outputs.
/// \throws ContractViolation listing the violated axioms.
void enforce_pack_contract(const HierarchicalEventModel& hem, const char* site);

/// Check an inner-update result against its eq.-8 fallback (Def. 9):
/// delta'-(n) >= (n-1)*r- and delta'+ only widens.
/// \throws ContractViolation listing the violated axioms.
void enforce_inner_update_contract(const EventModel& before, const EventModel& after,
                                   Time r_minus, Time r_plus, const char* site);

}  // namespace hem::verify

// The first parameter must not be spelled `hem`: macro substitution would
// also rewrite the `::hem::verify` qualifier in the expansion.
#ifndef HEM_VERIFY_DISABLE
#define HEM_VERIFY_PACK(hierarchy, site) ::hem::verify::enforce_pack_contract((hierarchy), (site))
#define HEM_VERIFY_INNER_UPDATE(before, after, r_minus, r_plus, site) \
  ::hem::verify::enforce_inner_update_contract((before), (after), (r_minus), (r_plus), (site))
#else
#define HEM_VERIFY_PACK(hierarchy, site) ((void)0)
#define HEM_VERIFY_INNER_UPDATE(before, after, r_minus, r_plus, site) ((void)0)
#endif
