#pragma once

/// \file diagnostic.hpp
/// Positioned configuration diagnostics, shared between the textual_config
/// parser (which emits warnings while parsing), the `hemlint` static config
/// analyzer (which adds graph-level checks), and the `hemcpa` CLI (which
/// prints parser warnings under `--diagnostics`).
///
/// Distinct from cpa::Diagnostic (src/model/diagnostics.hpp), which records
/// *engine* findings per analysis iteration; this struct records *config*
/// findings per source line/column, with stable `HL***` codes documented in
/// docs/linting.md.

#include <string>

namespace hem::verify {

/// Severity of a configuration diagnostic.
enum class LintSeverity {
  kWarning,  ///< suspicious but analysable configuration
  kError,    ///< the configuration is wrong (or cannot be analysed)
};

[[nodiscard]] const char* to_string(LintSeverity s) noexcept;

/// One positioned finding about a configuration.
struct Diagnostic {
  LintSeverity severity = LintSeverity::kWarning;
  int line = 0;         ///< 1-based source line; 0 = whole file
  int col = 0;          ///< 1-based source column; 0 = unknown
  std::string code;     ///< stable diagnostic code, e.g. "HL003"
  std::string message;  ///< human-readable description

  [[nodiscard]] bool is_error() const noexcept { return severity == LintSeverity::kError; }
};

/// gcc-style rendering: "<line>:<col>: <severity>: <message> [<code>]".
/// Line/column parts are omitted when unknown (0).
[[nodiscard]] std::string format(const Diagnostic& d);

/// Same, prefixed with a file name: "<file>:<line>:<col>: ...".
[[nodiscard]] std::string format(const Diagnostic& d, const std::string& file);

}  // namespace hem::verify
