#pragma once

/// \file shrink.hpp
/// Lexical `.hemcpa` reduction and mutation for the hemfuzz driver.
///
/// `shrink_config` is a greedy ddmin-style minimiser: it repeatedly removes
/// or simplifies statements of a failing configuration — whole resources
/// first, then tasks, then individual packed inputs / OR producers / pack
/// timers, then model simplifications (sem -> periodic, jitter -> 0) and
/// dead deadline/option lines — keeping every candidate for which the
/// caller's predicate still reproduces the original failure.  Removing a
/// declaration pulls its lexical closure along (statements referencing the
/// name, and the tasks those statements activate, recursively), so most
/// candidates stay parseable; candidates that are not are simply rejected
/// by the predicate, which must return false for configurations that do not
/// reproduce the failure *including* ones that no longer parse.
///
/// `mutate_config` is the fuzzing counterpart: seeded, deterministic
/// perturbations of a valid configuration (priority/jitter/dmin/cet
/// perturbations, task drop/duplicate, packed-input coupling flips and
/// timer toggles) used by hemfuzz to diversify the synthesiser's output.

#include <cstdint>
#include <functional>
#include <string>

namespace hem::verify {

struct ShrinkOptions {
  int max_attempts = 4096;  ///< predicate-evaluation budget
};

struct ShrinkResult {
  std::string text;   ///< minimised configuration (== input when nothing shrank)
  int attempts = 0;   ///< predicate evaluations spent
  bool changed = false;
};

/// Minimise `text` while `still_fails(candidate)` holds.  The input itself
/// is assumed to fail (the predicate is not re-checked on it).
[[nodiscard]] ShrinkResult shrink_config(const std::string& text,
                                         const std::function<bool(const std::string&)>& still_fails,
                                         const ShrinkOptions& options = {});

/// Deterministically perturb a configuration.  Same text + same seed =>
/// same result.  The result usually parses but is not guaranteed to
/// (mutations are lexical); callers must tolerate rejects.
[[nodiscard]] std::string mutate_config(const std::string& text, std::uint64_t seed);

}  // namespace hem::verify
