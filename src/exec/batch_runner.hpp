#pragma once

/// \file batch_runner.hpp
/// Fleet-scale batch execution of `.hemcpa` analyses: a job queue with
/// cooperative cancellation, a watchdog (soft-cancel -> SIGKILL for
/// isolated workers, hard-abandon as the legacy fallback), per-attempt
/// process isolation (`worker_process.hpp`) with supervised respawn and
/// two-strikes poisoning, retry-with-backoff for transient failures, an
/// exception firewall, crash-safe journaling (`journal.hpp`) with
/// `--resume`, and graceful SIGINT/SIGTERM draining.  Drives
/// `hemcpa --batch`; see docs/robustness.md for the job lifecycle state
/// machine.
///
/// Determinism: per-job analysis results are bit-identical for every
/// worker-pool size (the engine guarantees this per run; the batch layer
/// stores rows per job and emits the merged CSV in manifest order), so the
/// final report does not depend on `--batch-jobs`, `--jobs`, or on whether
/// the batch was interrupted and resumed.

#include <csignal>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/event_model.hpp"

namespace hem::exec {

struct BatchOptions {
  int parallel_jobs = 1;   ///< concurrently running configs (the pool width)
  int engine_jobs = 0;     ///< CpaEngine worker threads per job; 0 = config/default
  bool strict = false;     ///< force strict mode on every job
  long job_budget_ms = 0;  ///< watchdog per-job wall-clock budget; 0 = none
  long grace_ms = 2000;    ///< soft-cancel -> hard-abandon escalation delay
  int max_retries = 1;     ///< extra attempts for transient failures
  long retry_backoff_ms = 100;  ///< base backoff; multiplied by the attempt number
  int retry_budget_factor = 4;  ///< iteration/time budgets scale by this per retry
  int max_iterations = 64;      ///< global engine iterations (first attempt)
  long engine_budget_ms = 0;    ///< per-attempt engine wall-clock budget; 0 = none
  long fixpoint_max_iterations = 0;  ///< busy-window fixpoint step override; 0 = default
  Time fixpoint_max_window = 0;      ///< busy-window length override; 0 = default
  std::string journal_path;          ///< empty = journaling disabled
  bool resume = false;               ///< skip configs already terminal in the journal
  bool isolate = true;               ///< run each attempt in a forked worker process
  long worker_memory_mb = 0;   ///< per-worker RLIMIT_AS cap in MiB; 0 = inherit
  long worker_stack_mb = 0;    ///< per-worker RLIMIT_STACK cap in MiB; 0 = inherit
  long crash_backoff_ms = 250;  ///< respawn delay after a worker crash (doubles per crash)
};

/// Lifecycle: kQueued -> kRunning -> {kDone, kFailed, kCancelled,
/// kAbandoned, kCrashed, kPoisoned}; transient failures loop back through
/// kRunning until the retry budget is spent.  Jobs interrupted by shutdown
/// return to kQueued (they are NOT journaled, so --resume re-runs them).
/// kCrashed records a worker-process death (signal / OOM / rlimit) whose
/// respawn budget ran out; a config that crashes its worker twice is
/// promoted to kPoisoned — quarantined so --resume and every later run
/// skip it without re-executing.
enum class JobState {
  kQueued,
  kRunning,
  kDone,
  kFailed,
  kCancelled,
  kAbandoned,
  kCrashed,
  kPoisoned,
};

[[nodiscard]] const char* to_string(JobState s) noexcept;

/// Terminal record of one config's journey through the batch.
struct JobResult {
  std::string path;               ///< config path as listed
  std::uint64_t fingerprint = 0;  ///< config content stamp (0 = unreadable)
  JobState state = JobState::kQueued;
  int attempts = 0;        ///< analysis attempts actually executed (0 if skipped)
  long duration_ms = 0;    ///< wall clock of the terminal attempt
  bool degraded = false;   ///< report carried fallback bounds
  bool converged = false;  ///< global fixpoint reached
  bool transient = false;  ///< last failure was a retryable cause
  bool from_journal = false;  ///< restored by --resume, not executed this run
  std::string message;        ///< human-readable failure/cancel detail
  std::vector<std::string> rows;  ///< merged-CSV data rows (config column included)
};

struct BatchReport {
  std::vector<JobResult> jobs;  ///< manifest order, one entry per config
  bool interrupted = false;     ///< a shutdown request drained the batch
  long watchdog_cancels = 0;
  long abandoned = 0;
  long retries = 0;
  long journal_skips = 0;
  long crash_respawns = 0;  ///< worker crashes that earned a supervised respawn
  long poisoned = 0;        ///< configs quarantined after crashing twice

  /// Batch exit-code precedence (documented in README and
  /// docs/robustness.md): 6 interrupted > 5 failed/cancelled/abandoned/
  /// crashed/poisoned jobs > 4 degraded-but-complete > 0 clean.  Usage
  /// errors (3) never reach a report.
  [[nodiscard]] int exit_code() const;

  /// Merged CSV: `config,task,...` header, then per config (manifest
  /// order) either its report rows or one `-`-filled placeholder row
  /// carrying the job state.  Byte-identical across interruption/resume
  /// and for every jobs value.
  void write_csv(std::ostream& os) const;

  /// One-line-per-job progress summary plus totals.
  void write_summary(std::ostream& os) const;
};

/// Runs a list of configs to terminal states.  Construct once, call run()
/// once.
class BatchRunner {
 public:
  BatchRunner(std::vector<std::string> configs, BatchOptions options);

  /// Execute the batch.  `shutdown_flag` (usually set by a SIGINT/SIGTERM
  /// handler) is polled by the scheduler: once non-zero, queued jobs stay
  /// queued, running jobs are cancelled with CancelReason::kShutdown and
  /// drained, the journal is flushed, and the report comes back with
  /// `interrupted = true`.  `log` (optional) receives progress lines.
  [[nodiscard]] BatchReport run(const volatile std::sig_atomic_t* shutdown_flag = nullptr,
                                std::ostream* log = nullptr);

  /// Expand a batch operand: a directory yields all `*.hemcpa` files in it
  /// (sorted); a manifest file yields one config path per non-comment
  /// line, relative paths resolved against the manifest's directory.
  /// \throws std::invalid_argument when the operand does not exist or a
  ///         directory contains no configs.
  [[nodiscard]] static std::vector<std::string> collect_configs(const std::string& dir_or_manifest);

 private:
  std::vector<std::string> configs_;
  BatchOptions options_;
  bool ran_ = false;
};

}  // namespace hem::exec
