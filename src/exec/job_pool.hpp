#pragma once

/// \file job_pool.hpp
/// Reusable thread-per-job worker pool with a watchdog, extracted from the
/// batch runner so the analysis daemon (`src/daemon/`) can share the exact
/// soft-cancel -> hard-abandon machinery that `hemcpa --batch` ships.
///
/// The pool owns no queue: callers keep their own ready lists (the batch
/// scheduler's retry/backoff deque, the daemon's per-client fair queues)
/// and dispatch with `start()` whenever `available()` says a slot is free.
/// Each job gets a fresh CancelToken and an optional wall-clock budget; a
/// monitor thread soft-cancels jobs at their budget.  What happens when the
/// grace period passes without the cancel taking effect depends on how the
/// job was dispatched:
///
///   * with a **kill hook** (process-isolated jobs: the hook SIGKILLs the
///     worker child) the watchdog invokes it once and waits a second grace
///     window — the reaped worker unwinds within milliseconds, the job is
///     joined like any finished one, and nothing leaks;
///   * without one (legacy in-process jobs) the slot is marked abandoned
///     and its thread detached, exactly the old hard-abandon behaviour.
///
/// `wait_terminal()` hands terminal jobs back to the caller — finished
/// workers are joined, abandoned workers are detached.
///
/// Memory safety of abandonment: a worker thread only ever touches its own
/// Slot and the shared Sync block, both held via shared_ptr, so a detached
/// worker that wakes up minutes later (stuck in a busy-window fixpoint that
/// ignores its token) can never reach freed pool or caller state.

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "exec/cancel.hpp"

namespace hem::exec {

class JobPool {
 public:
  /// One dispatched job.  `phase`, `outcome_ready`, and the watchdog
  /// bookkeeping are guarded by the pool's internal mutex; `token` and
  /// `context` are safe to touch from any thread.
  struct Slot {
    enum Phase { kRunning, kFinished, kAbandoned };

    std::uint64_t id = 0;       ///< pool-unique dispatch id
    std::string label;          ///< caller-provided display/log label
    long budget_ms = 0;         ///< wall-clock budget; 0 = no watchdog
    CancelToken token;
    std::shared_ptr<void> context;  ///< caller payload, opaque to the pool

    /// Escalation hook set at dispatch: forcibly end the job's work (the
    /// isolated dispatch path SIGKILLs the worker child).  Must be
    /// thread-safe and idempotent; invoked at most once by the watchdog
    /// when the grace period expires.  Null = legacy detach-on-abandon.
    std::function<void()> kill;

    // Guarded by the pool mutex from here on.
    Phase phase = kRunning;
    std::chrono::steady_clock::time_point started;
    bool soft_cancelled = false;  ///< watchdog or escalating cancel armed
    std::chrono::steady_clock::time_point soft_cancel_at;
    bool watchdog_fired = false;  ///< soft-cancel came from the budget
    bool kill_fired = false;      ///< the kill hook has been invoked
    std::thread worker;
  };
  using Handle = std::shared_ptr<Slot>;

  /// A pool running at most `width` jobs with `grace_ms` between a
  /// soft-cancel and abandonment.  `log` (optional) receives watchdog
  /// progress lines; it is invoked without the pool lock held.
  JobPool(int width, long grace_ms, std::function<void(const std::string&)> log = nullptr);

  /// Cancels whatever still runs (kShutdown), waits out the grace period,
  /// and detaches anything that refuses to die.
  ~JobPool();

  JobPool(const JobPool&) = delete;
  JobPool& operator=(const JobPool&) = delete;

  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] std::size_t running() const;
  [[nodiscard]] bool available() const { return running() < static_cast<std::size_t>(width_); }

  /// Dispatch `work` on a fresh thread.  The callable runs exactly once and
  /// must not throw (wrap analysis in an exception firewall first; an
  /// escaped exception is swallowed to keep a poisoned job from taking the
  /// process down).  Never blocks; callers are expected to respect
  /// `available()` but over-dispatch only costs threads, not correctness.
  /// `kill` (optional) is the watchdog's grace-expiry escalation; see
  /// Slot::kill.
  Handle start(std::string label, long budget_ms, std::shared_ptr<void> context,
               std::function<void(const CancelToken&)> work,
               std::function<void()> kill = nullptr);

  /// Fire `handle`'s token with `reason`.  With `escalate` the grace timer
  /// is armed too: a worker that does not honour the cancel within grace_ms
  /// is abandoned (the batch shutdown path passes false so a drain waits
  /// indefinitely and preserves its journal/resume semantics).
  void cancel(const Handle& handle, CancelReason reason, bool escalate);

  /// cancel() every job still running.
  void cancel_all(CancelReason reason, bool escalate);

  /// Wait up to `timeout` for at least one job to turn terminal and return
  /// all terminal handles, removed from the active set.  Finished workers
  /// are joined, abandoned workers detached; `Slot::phase` tells which.
  [[nodiscard]] std::vector<Handle> wait_terminal(std::chrono::milliseconds timeout);

  [[nodiscard]] long watchdog_cancels() const;
  [[nodiscard]] long watchdog_kills() const;
  [[nodiscard]] long abandoned() const;

 private:
  /// State shared with worker threads (and therefore with detached,
  /// abandoned workers): keep it alive via shared_ptr independently of the
  /// pool object itself.
  struct Sync;

  void watchdog_loop();

  const int width_;
  const long grace_ms_;
  const std::function<void(const std::string&)> log_;
  std::shared_ptr<Sync> sync_;
  std::vector<Handle> active_;  ///< guarded by sync_->mx
  std::uint64_t next_id_ = 1;   ///< guarded by sync_->mx
  long watchdog_cancels_ = 0;   ///< guarded by sync_->mx
  long watchdog_kills_ = 0;     ///< guarded by sync_->mx
  long abandoned_ = 0;          ///< guarded by sync_->mx
  bool stop_watchdog_ = false;  ///< guarded by sync_->mx
  std::thread watchdog_;
};

}  // namespace hem::exec
