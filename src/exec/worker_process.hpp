#pragma once

/// \file worker_process.hpp
/// Out-of-process analysis sandbox: one forked child per attempt.
///
/// `WorkerProcess::run` forks, applies `setrlimit` caps in the child, runs
/// the caller's firewalled attempt there, and ships the `AttemptOutcome`
/// back over a pipe as one length-prefixed frame.  The parent classifies
/// whatever the child did:
///
///   * clean exit + complete frame            -> kResult (the outcome)
///   * SIGSEGV / SIGABRT / SIGBUS / nonzero   -> kCrashed (signal recorded)
///   * SIGXCPU / unexplained SIGKILL (OOM)    -> kResourceExhausted
///   * SIGKILL sent via kill() / cancel token -> kKilled (cancelled outcome)
///   * fork or pipe failure                   -> kSpawnFailed (nothing ran)
///
/// A crash therefore becomes a structured job status — never the death of
/// the batch scheduler or the daemon.  The parent polls the cancel token
/// while it waits, so for isolated jobs "cancel" means SIGKILL + reap: no
/// grace window, no detached thread, no `std::_Exit` at process end.
///
/// Only the data members of AttemptOutcome that serialise cross the pipe
/// (flags, reason, duration, message, rows, warm_seeded); `report` and
/// `snapshot` hold live model-DAG pointers and stay child-local, so callers
/// that want warm-cache snapshots must run in-process (`--no-isolate`).
///
/// Fork-safety: the child is forked from a multithreaded parent, so it must
/// not depend on locks other parent threads may have held at fork time.
/// glibc re-initialises its allocator locks across fork; the child
/// additionally drops the obs tracer/counters (their sinks belong to the
/// parent) and terminates with `_exit`, never running parent-registered
/// atexit handlers.

#include <atomic>
#include <functional>
#include <string>
#include <vector>

#include "exec/analysis_attempt.hpp"
#include "exec/cancel.hpp"

namespace hem::exec {

/// Hard resource caps applied in the child before the attempt runs.
/// A zero field inherits the parent's limit.
struct WorkerLimits {
  long long memory_bytes = 0;  ///< RLIMIT_AS: overcommit becomes bad_alloc / OOM-crash
  long cpu_seconds = 0;        ///< RLIMIT_CPU: runaway spin becomes SIGXCPU
  long long stack_bytes = 0;   ///< RLIMIT_STACK: runaway recursion becomes SIGSEGV
};

/// How the child ended, from the parent's point of view.
enum class WorkerExit {
  kResult,             ///< exit 0 with a complete outcome frame
  kCrashed,            ///< fatal signal, nonzero exit, or torn result frame
  kResourceExhausted,  ///< SIGXCPU, or a SIGKILL this process did not send (kernel OOM)
  kKilled,             ///< killed by kill() / the cancel token; outcome synthesised
  kSpawnFailed,        ///< fork()/pipe() failed; the attempt never started
};

[[nodiscard]] const char* to_string(WorkerExit e) noexcept;

/// Classified child result.  `outcome` is meaningful for kResult (decoded
/// from the frame) and kKilled (synthesised as cancelled); for the failure
/// kinds it carries only the parent-side message and duration.
struct WorkerReport {
  WorkerExit kind = WorkerExit::kSpawnFailed;
  int term_signal = 0;   ///< terminating signal when the child died on one
  int exit_status = 0;   ///< exit code when the child exited
  std::string detail;    ///< human-readable classification for diagnostics
  AttemptOutcome outcome;
};

/// Serialise the pipe-safe subset of an AttemptOutcome (everything except
/// `report`/`snapshot`) into the versioned frame payload, and back.
/// `decode_outcome` returns false on a torn or foreign frame.
[[nodiscard]] std::string encode_outcome(const AttemptOutcome& out);
[[nodiscard]] bool decode_outcome(const std::string& bytes, AttemptOutcome& out);

/// One child process per call to run().  The object may outlive the call;
/// kill() is safe from any thread at any time (before the fork it marks the
/// run as cancelled-on-arrival, after reaping it is a no-op) — this is the
/// hook the JobPool watchdog and the chaos harness use.
class WorkerProcess {
 public:
  /// Fork and run `work` in the child under `limits`.  Blocks until the
  /// child is reaped.  `cancel` (optional) is polled every ~20ms; a fired
  /// token SIGKILLs the child and yields kKilled with a cancelled outcome
  /// carrying the token's reason.  On non-POSIX hosts runs `work` inline
  /// (no isolation) and returns kResult.
  [[nodiscard]] WorkerReport run(const std::function<AttemptOutcome()>& work,
                                 const WorkerLimits& limits, const CancelToken* cancel);

  /// SIGKILL the live child (idempotent, thread-safe).  Called before the
  /// fork happens, it makes run() kill the child immediately after spawning.
  void kill() noexcept;

  /// True when real process isolation is available on this platform.
  [[nodiscard]] static bool supported() noexcept;

  /// Pids of every worker child currently alive in this process, for the
  /// chaos harness's kill-storm injector.
  [[nodiscard]] static std::vector<int> live_pids();

 private:
  std::atomic<long> pid_{0};
  std::atomic<bool> kill_requested_{false};
};

/// Map a per-job wall-clock budget and optional memory cap onto child
/// rlimits.  CPU seconds are derived as a generous multiple of the wall
/// budget (the cooperative watchdog remains the primary enforcement; the
/// rlimit is the uncooperative-worker backstop).  Zero budget_ms leaves the
/// CPU unlimited; zero memory_mb / stack_mb inherit.
[[nodiscard]] WorkerLimits limits_from_budget(long budget_ms, long memory_mb,
                                              long stack_mb = 0) noexcept;

}  // namespace hem::exec
