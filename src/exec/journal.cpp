#include "exec/journal.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace hem::exec {

namespace {

constexpr const char* kHeader = "hemcpa-journal v1";

/// Flush a path's data (or, for a directory, its entries) to stable
/// storage.  Crash durability only; a failed fsync is reported so callers
/// can decide, but the write itself already succeeded.
[[nodiscard]] bool sync_path(const std::string& path, bool directory) {
#if defined(__unix__) || defined(__APPLE__)
  const int fd = ::open(path.c_str(), directory ? (O_RDONLY | O_DIRECTORY) : O_RDONLY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
#else
  (void)path;
  (void)directory;
  return true;  // no fsync primitive on this platform; best effort
#endif
}

/// Directory part of `path` for fsync-after-rename ("" -> ".").
[[nodiscard]] std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

[[noreturn]] void corrupt(const std::string& path, int line_no, const std::string& why) {
  throw std::runtime_error("corrupt journal" + (path.empty() ? "" : " '" + path + "'") +
                           " (line " + std::to_string(line_no) + "): " + why +
                           " - delete the journal or rerun without --resume");
}

/// Consume `key=` at the current position and return the value up to the
/// next space.  The journal is machine-written, so any deviation is
/// corruption, not user error.
std::string take_field(const std::string& line, std::size_t& pos, const char* key,
                       const std::string& path, int line_no) {
  const std::string prefix = std::string(key) + "=";
  if (line.compare(pos, prefix.size(), prefix) != 0)
    corrupt(path, line_no, "expected '" + prefix + "'");
  pos += prefix.size();
  const std::size_t end = line.find(' ', pos);
  std::string value = line.substr(pos, end == std::string::npos ? end : end - pos);
  pos = end == std::string::npos ? line.size() : end + 1;
  return value;
}

long parse_long(const std::string& value, const std::string& path, int line_no, const char* what) {
  try {
    std::size_t used = 0;
    const long v = std::stol(value, &used);
    if (used != value.size() || v < 0) throw std::invalid_argument(what);
    return v;
  } catch (const std::exception&) {
    corrupt(path, line_no, std::string("bad ") + what + " '" + value + "'");
  }
}

bool valid_status(const std::string& s) {
  return s == "done" || s == "failed" || s == "cancelled" || s == "abandoned";
}

}  // namespace

std::uint64_t fingerprint_bytes(const void* data, std::size_t size) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 1099511628211ULL;  // FNV prime
  }
  return h;
}

std::uint64_t fingerprint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read config file '" + path + "' for fingerprinting");
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string bytes = buf.str();
  return fingerprint_bytes(bytes.data(), bytes.size());
}

std::string fingerprint_hex(std::uint64_t fp) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(fp));
  return std::string(buf, 16);
}

bool Journal::load() {
  std::ifstream in(path_, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  entries_ = parse(buf.str());
  return true;
}

void Journal::add(JournalEntry entry) {
  entries_.push_back(std::move(entry));
  save();
}

void Journal::clear() {
  entries_.clear();
  save();
}

const JournalEntry* Journal::find(const std::string& config_path,
                                  std::uint64_t fingerprint) const {
  for (const JournalEntry& e : entries_)
    if (e.config_path == config_path && e.fingerprint == fingerprint) return &e;
  return nullptr;
}

const JournalEntry* Journal::find(std::uint64_t fingerprint) const {
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it)
    if (it->fingerprint == fingerprint) return &*it;
  return nullptr;
}

std::string Journal::render() const {
  std::ostringstream out;
  out << kHeader << '\n';
  for (const JournalEntry& e : entries_) {
    out << "job fp=" << fingerprint_hex(e.fingerprint) << " status=" << e.status
        << " attempts=" << e.attempts << " duration_ms=" << e.duration_ms
        << " degraded=" << (e.degraded ? 1 : 0) << " rows=" << e.rows.size()
        << " path=" << e.config_path << '\n';
    for (const std::string& row : e.rows) out << "row " << row << '\n';
  }
  out << "end\n";
  return out.str();
}

std::vector<JournalEntry> Journal::parse(const std::string& text) {
  std::vector<JournalEntry> entries;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  if (!std::getline(in, line) || line != kHeader)
    corrupt("", 1, std::string("missing header '") + kHeader + "'");
  ++line_no;
  bool ended = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line == "end") {
      ended = true;
      break;
    }
    if (line.rfind("job ", 0) != 0) corrupt("", line_no, "expected 'job' or 'end'");
    JournalEntry e;
    std::size_t pos = 4;
    const std::string fp = take_field(line, pos, "fp", "", line_no);
    if (fp.size() != 16 || fp.find_first_not_of("0123456789abcdef") != std::string::npos)
      corrupt("", line_no, "bad fingerprint '" + fp + "'");
    e.fingerprint = std::stoull(fp, nullptr, 16);
    e.status = take_field(line, pos, "status", "", line_no);
    if (!valid_status(e.status)) corrupt("", line_no, "bad status '" + e.status + "'");
    e.attempts =
        static_cast<int>(parse_long(take_field(line, pos, "attempts", "", line_no), "", line_no,
                                    "attempts"));
    e.duration_ms =
        parse_long(take_field(line, pos, "duration_ms", "", line_no), "", line_no, "duration_ms");
    e.degraded =
        parse_long(take_field(line, pos, "degraded", "", line_no), "", line_no, "degraded") != 0;
    const long rows =
        parse_long(take_field(line, pos, "rows", "", line_no), "", line_no, "row count");
    // `path=` last: everything to end of line, spaces and '=' included.
    if (line.compare(pos, 5, "path=") != 0) corrupt("", line_no, "expected 'path='");
    e.config_path = line.substr(pos + 5);
    if (e.config_path.empty()) corrupt("", line_no, "empty config path");
    for (long i = 0; i < rows; ++i) {
      if (!std::getline(in, line)) corrupt("", line_no, "truncated row block");
      ++line_no;
      if (line.rfind("row ", 0) != 0) corrupt("", line_no, "expected 'row'");
      e.rows.push_back(line.substr(4));
    }
    entries.push_back(std::move(e));
  }
  if (!ended) corrupt("", line_no, "missing 'end' trailer (interrupted write?)");
  return entries;
}

void Journal::save() const {
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot write journal temp file '" + tmp + "'");
    out << render();
    out.flush();
    if (!out) throw std::runtime_error("failed writing journal temp file '" + tmp + "'");
  }
  // Durability before visibility: fsync the temp file so the rename can
  // never install a journal whose bytes are still only in the page cache —
  // a crash after rename-before-fsync could otherwise surface an empty or
  // torn file under the final name.
  if (!sync_path(tmp, /*directory=*/false)) {
    std::remove(tmp.c_str());
    throw std::runtime_error("cannot fsync journal temp file '" + tmp + "'");
  }
  // POSIX rename() atomically replaces the destination: readers see either
  // the old complete journal or the new one, never a torn file.
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("cannot atomically replace journal '" + path_ + "'");
  }
  // Persist the rename itself: fsync the parent directory so the new
  // directory entry survives a power failure.  Non-fatal if it fails (the
  // data is safe; only the entry's durability window is weaker).
  (void)sync_path(parent_dir(path_), /*directory=*/true);
}

}  // namespace hem::exec
