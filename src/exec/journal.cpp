#include "exec/journal.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace hem::exec {

namespace {

constexpr const char* kHeader = "hemcpa-journal v1";

/// Flush a path's data (or, for a directory, its entries) to stable
/// storage.  Crash durability only; a failed fsync is reported so callers
/// can decide, but the write itself already succeeded.
[[nodiscard]] bool sync_path(const std::string& path, bool directory) {
#if defined(__unix__) || defined(__APPLE__)
  const int fd = ::open(path.c_str(), directory ? (O_RDONLY | O_DIRECTORY) : O_RDONLY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
#else
  (void)path;
  (void)directory;
  return true;  // no fsync primitive on this platform; best effort
#endif
}

/// Directory part of `path` for fsync-after-rename ("" -> ".").
[[nodiscard]] std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

[[noreturn]] void corrupt(const std::string& path, int line_no, const std::string& why) {
  throw std::runtime_error("corrupt journal" + (path.empty() ? "" : " '" + path + "'") +
                           " (line " + std::to_string(line_no) + "): " + why +
                           " - delete the journal or rerun without --resume");
}

/// Consume `key=` at the current position and return the value up to the
/// next space.  The journal is machine-written, so any deviation is
/// corruption (strict parse) or a torn tail (tolerant parse).
bool take_field(const std::string& line, std::size_t& pos, const char* key, std::string& value) {
  const std::string prefix = std::string(key) + "=";
  if (line.compare(pos, prefix.size(), prefix) != 0) return false;
  pos += prefix.size();
  const std::size_t end = line.find(' ', pos);
  value = line.substr(pos, end == std::string::npos ? end : end - pos);
  pos = end == std::string::npos ? line.size() : end + 1;
  return true;
}

bool parse_long(const std::string& value, long& out) {
  try {
    std::size_t used = 0;
    out = std::stol(value, &used);
    return used == value.size() && out >= 0;
  } catch (const std::exception&) {
    return false;
  }
}

bool valid_status(const std::string& s) {
  return s == "done" || s == "failed" || s == "cancelled" || s == "abandoned" ||
         s == "crashed" || s == "poisoned";
}

/// Parse one `job ...` line without throwing; `err` explains a refusal.
bool parse_job_line(const std::string& line, JournalEntry& e, long& rows, std::string& err) {
  if (line.rfind("job ", 0) != 0) {
    err = "expected 'job' or 'end'";
    return false;
  }
  std::size_t pos = 4;
  std::string v;
  if (!take_field(line, pos, "fp", v) || v.size() != 16 ||
      v.find_first_not_of("0123456789abcdef") != std::string::npos) {
    err = "bad fingerprint '" + v + "'";
    return false;
  }
  e.fingerprint = std::stoull(v, nullptr, 16);
  if (!take_field(line, pos, "status", e.status) || !valid_status(e.status)) {
    err = "bad status '" + e.status + "'";
    return false;
  }
  long n = 0;
  if (!take_field(line, pos, "attempts", v) || !parse_long(v, n)) {
    err = "bad attempts '" + v + "'";
    return false;
  }
  e.attempts = static_cast<int>(n);
  if (!take_field(line, pos, "duration_ms", v) || !parse_long(v, n)) {
    err = "bad duration_ms '" + v + "'";
    return false;
  }
  e.duration_ms = n;
  if (!take_field(line, pos, "degraded", v) || !parse_long(v, n)) {
    err = "bad degraded '" + v + "'";
    return false;
  }
  e.degraded = n != 0;
  if (!take_field(line, pos, "rows", v) || !parse_long(v, rows)) {
    err = "bad row count '" + v + "'";
    return false;
  }
  // `path=` last: everything to end of line, spaces and '=' included.
  if (line.compare(pos, 5, "path=") != 0) {
    err = "expected 'path='";
    return false;
  }
  e.config_path = line.substr(pos + 5);
  if (e.config_path.empty()) {
    err = "empty config path";
    return false;
  }
  return true;
}

}  // namespace

std::uint64_t fingerprint_bytes(const void* data, std::size_t size) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 1099511628211ULL;  // FNV prime
  }
  return h;
}

std::uint64_t fingerprint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read config file '" + path + "' for fingerprinting");
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string bytes = buf.str();
  return fingerprint_bytes(bytes.data(), bytes.size());
}

std::string fingerprint_hex(std::uint64_t fp) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(fp));
  return std::string(buf, 16);
}

bool Journal::load() {
  recovery_ = Recovery{};
  std::ifstream in(path_, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  entries_ = parse_tolerant(text, recovery_);
  if (recovery_.torn) {
    // Park the torn bytes for post-mortem, then rewrite the journal as the
    // salvaged prefix so every later reader sees a well-formed file.
    recovery_.quarantine_path = path_ + ".torn";
    std::ofstream tail(recovery_.quarantine_path, std::ios::binary | std::ios::trunc);
    tail << text.substr(recovery_.valid_bytes);
    save();
  }
  return true;
}

void Journal::add(JournalEntry entry) {
  entries_.push_back(std::move(entry));
  save();
}

void Journal::clear() {
  entries_.clear();
  save();
}

const JournalEntry* Journal::find(const std::string& config_path,
                                  std::uint64_t fingerprint) const {
  for (const JournalEntry& e : entries_)
    if (e.config_path == config_path && e.fingerprint == fingerprint) return &e;
  return nullptr;
}

const JournalEntry* Journal::find(std::uint64_t fingerprint) const {
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it)
    if (it->fingerprint == fingerprint) return &*it;
  return nullptr;
}

std::string Journal::render() const {
  std::ostringstream out;
  out << kHeader << '\n';
  for (const JournalEntry& e : entries_) {
    out << "job fp=" << fingerprint_hex(e.fingerprint) << " status=" << e.status
        << " attempts=" << e.attempts << " duration_ms=" << e.duration_ms
        << " degraded=" << (e.degraded ? 1 : 0) << " rows=" << e.rows.size()
        << " path=" << e.config_path << '\n';
    for (const std::string& row : e.rows) out << "row " << row << '\n';
  }
  out << "end\n";
  return out.str();
}

std::vector<JournalEntry> Journal::parse(const std::string& text) {
  Recovery recovery;
  std::vector<JournalEntry> entries = parse_tolerant(text, recovery);
  if (recovery.torn)
    corrupt("", static_cast<int>(recovery.entries_kept) + 1,
            recovery.reason + " (torn tail after " + std::to_string(recovery.entries_kept) +
                " complete record(s))");
  return entries;
}

std::vector<JournalEntry> Journal::parse_tolerant(const std::string& text, Recovery& recovery) {
  recovery = Recovery{};
  std::vector<JournalEntry> entries;
  const std::string header_line = std::string(kHeader) + "\n";
  if (text.size() < header_line.size() ||
      text.compare(0, header_line.size(), header_line) != 0) {
    // A machine-written journal can only be short at the front because a
    // truncation cut the header itself; anything else was never a journal.
    if (header_line.compare(0, text.size(), text) == 0) {
      recovery.torn = true;
      recovery.reason = "truncated header";
      return entries;
    }
    corrupt("", 1, std::string("missing header '") + kHeader + "'");
  }

  std::size_t pos = header_line.size();
  std::size_t good = pos;  ///< end of the last complete record (or header)
  int line_no = 1;
  bool ended = false;
  std::string line;
  // 1 = complete line consumed, 0 = no bytes left, -1 = final line lacked
  // its newline (by construction a torn write — the renderer always
  // terminates lines).
  const auto next_line = [&](std::string& out_line) -> int {
    if (pos >= text.size()) return 0;
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) {
      out_line = text.substr(pos);
      pos = text.size();
      return -1;
    }
    out_line = text.substr(pos, nl - pos);
    pos = nl + 1;
    return 1;
  };

  while (true) {
    const int got = next_line(line);
    if (got == 0) {
      recovery.reason = "missing 'end' trailer (interrupted write?)";
      break;
    }
    ++line_no;
    if (got < 0) {
      recovery.reason = "line " + std::to_string(line_no) + " truncated mid-write";
      break;
    }
    if (line == "end") {
      ended = true;
      good = pos;
      break;
    }
    JournalEntry e;
    long rows = 0;
    std::string err;
    if (!parse_job_line(line, e, rows, err)) {
      recovery.reason = "line " + std::to_string(line_no) + ": " + err;
      break;
    }
    bool rows_ok = true;
    for (long i = 0; i < rows; ++i) {
      const int row_got = next_line(line);
      if (row_got != 0) ++line_no;
      if (row_got != 1 || line.rfind("row ", 0) != 0) {
        recovery.reason = "line " + std::to_string(line_no) + ": truncated row block";
        rows_ok = false;
        break;
      }
      e.rows.push_back(line.substr(4));
    }
    if (!rows_ok) break;
    entries.push_back(std::move(e));
    good = pos;
  }

  recovery.torn = !ended;
  recovery.valid_bytes = good;
  recovery.entries_kept = entries.size();
  return entries;
}

void Journal::save() const {
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot write journal temp file '" + tmp + "'");
    out << render();
    out.flush();
    if (!out) throw std::runtime_error("failed writing journal temp file '" + tmp + "'");
  }
  // Durability before visibility: fsync the temp file so the rename can
  // never install a journal whose bytes are still only in the page cache —
  // a crash after rename-before-fsync could otherwise surface an empty or
  // torn file under the final name.
  if (!sync_path(tmp, /*directory=*/false)) {
    std::remove(tmp.c_str());
    throw std::runtime_error("cannot fsync journal temp file '" + tmp + "'");
  }
  // POSIX rename() atomically replaces the destination: readers see either
  // the old complete journal or the new one, never a torn file.
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("cannot atomically replace journal '" + path_ + "'");
  }
  // Persist the rename itself: fsync the parent directory so the new
  // directory entry survives a power failure.  Non-fatal if it fails (the
  // data is safe; only the entry's durability window is weaker).
  (void)sync_path(parent_dir(path_), /*directory=*/true);
}

}  // namespace hem::exec
