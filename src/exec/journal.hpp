#pragma once

/// \file journal.hpp
/// Crash-safe batch checkpoint journal.
///
/// After every job that reaches a terminal state, the batch runner appends
/// a record to `<out>.journal` and atomically replaces the file on disk
/// (temp file + rename), so a crash or SIGKILL can never leave a torn
/// journal: either the previous complete journal or the new complete
/// journal is on disk.  `--resume` loads the journal, fingerprints every
/// config, and skips jobs whose (path, fingerprint) pair is already
/// terminal — reusing the stored CSV rows so the merged report is
/// byte-identical to an uninterrupted run.
///
/// Format (line-oriented, one file per batch output):
///
/// ```
/// hemcpa-journal v1
/// job fp=<16-hex> status=done|failed|cancelled|abandoned|crashed|poisoned
///     attempts=<n> duration_ms=<n> degraded=<0|1> rows=<k> path=<rest of line>
///     (one line; wrapped here for width)
/// row <one merged-CSV data row>          # exactly k of these
/// ...
/// end
/// ```
///
/// `path=` is always the LAST key so config paths may contain spaces or
/// '='; `end` is the completeness trailer.  `crashed` records a worker
/// process death (signal in the batch diagnostics); `poisoned` marks a
/// config that crashed its worker twice — `--resume` and a restarted
/// daemon skip it without re-running.
///
/// Loading distinguishes two failure shapes.  A *torn tail* — the file is
/// a truncated prefix of a valid journal, the only state a kill mid-write
/// can leave — is recovered: every complete record before the tear is
/// replayed, the torn bytes are quarantined to `<journal>.torn`, and the
/// journal is rewritten valid.  *Wholesale corruption* (the header line is
/// not even a prefix of a journal) still throws: that file was never ours.
/// See docs/robustness.md.

#include <cstdint>
#include <string>
#include <vector>

namespace hem::exec {

/// FNV-1a 64-bit over raw bytes — stable, dependency-free content stamp
/// for config files (collision resistance is ample for fleet-size sets).
[[nodiscard]] std::uint64_t fingerprint_bytes(const void* data, std::size_t size) noexcept;

/// Fingerprint a file's exact bytes (no newline normalisation: a config
/// edited in ANY way re-runs on resume).
/// \throws std::runtime_error when the file cannot be read.
[[nodiscard]] std::uint64_t fingerprint_file(const std::string& path);

/// Fixed-width 16-digit lowercase hex rendering used in the journal.
[[nodiscard]] std::string fingerprint_hex(std::uint64_t fp);

/// One terminal job record.
struct JournalEntry {
  std::string config_path;        ///< as given in the manifest / directory scan
  std::uint64_t fingerprint = 0;  ///< fingerprint_file() of the config at run time
  std::string status;  ///< done | failed | cancelled | abandoned | crashed | poisoned
  int attempts = 1;               ///< total attempts incl. the terminal one
  long duration_ms = 0;           ///< wall clock of the terminal attempt
  bool degraded = false;          ///< report carried fallback bounds
  std::vector<std::string> rows;  ///< merged-CSV data rows (config column included)

  /// Terminal-and-successful: resume reuses the stored rows.
  [[nodiscard]] bool completed() const { return status == "done"; }
};

/// The journal file: an in-memory entry list mirrored to disk with an
/// atomic whole-file rewrite after every append.
class Journal {
 public:
  /// Outcome of torn-tail recovery during load()/parse_tolerant().
  struct Recovery {
    bool torn = false;              ///< the text ended mid-record / without `end`
    std::size_t valid_bytes = 0;    ///< byte length of the replayable prefix
    std::size_t entries_kept = 0;   ///< complete records salvaged
    std::string reason;             ///< what the tear looked like
    std::string quarantine_path;    ///< where load() parked the torn bytes
  };

  explicit Journal(std::string path) : path_(std::move(path)) {}

  /// Load an existing journal from disk.  Returns false when the file does
  /// not exist (fresh batch).  A torn tail (truncated write) is recovered,
  /// not fatal: the complete-record prefix is replayed, the torn bytes move
  /// to `<journal>.torn`, the journal is rewritten valid, and
  /// last_recovery() describes what happened.
  /// \throws std::runtime_error on wholesale corruption (foreign header).
  bool load();

  /// Details of the torn-tail recovery performed by the last load(); torn
  /// is false when the file was intact.
  [[nodiscard]] const Recovery& last_recovery() const noexcept { return recovery_; }

  /// Record a terminal job and atomically persist the whole journal.
  /// \throws std::runtime_error when the journal cannot be written.
  void add(JournalEntry entry);

  /// Drop all entries and persist an empty journal — a fresh (non-resume)
  /// batch calls this up front, which also verifies writability before any
  /// work is spent.
  void clear();

  [[nodiscard]] const std::vector<JournalEntry>& entries() const noexcept { return entries_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  /// Find the terminal record for a config (path AND content fingerprint
  /// must match; a touched config re-runs).  Returns nullptr when absent.
  [[nodiscard]] const JournalEntry* find(const std::string& config_path,
                                         std::uint64_t fingerprint) const;

  /// Find by content fingerprint alone — the daemon's idempotency lookup,
  /// where submissions arrive as socket payloads without a stable path.
  /// Returns the most recent matching record, nullptr when absent.
  [[nodiscard]] const JournalEntry* find(std::uint64_t fingerprint) const;

  /// Render the full journal text (exposed for tests).
  [[nodiscard]] std::string render() const;

  /// Parse a journal text into entries (exposed for tests).
  /// \throws std::runtime_error on malformed input.
  [[nodiscard]] static std::vector<JournalEntry> parse(const std::string& text);

  /// Tolerant parse: salvage the longest prefix of complete records and
  /// report everything after it (the torn tail) in `recovery` — tolerant to
  /// truncation at ANY byte offset of a machine-written journal.
  /// \throws std::runtime_error only when the first line is not even a
  ///         truncation of the journal header (wholesale corruption).
  [[nodiscard]] static std::vector<JournalEntry> parse_tolerant(const std::string& text,
                                                                Recovery& recovery);

 private:
  void save() const;

  std::string path_;
  std::vector<JournalEntry> entries_;
  Recovery recovery_;
};

}  // namespace hem::exec
