#include "exec/job_pool.hpp"

#include <condition_variable>
#include <mutex>
#include <utility>

namespace hem::exec {

using steady = std::chrono::steady_clock;

struct JobPool::Sync {
  std::mutex mx;
  std::condition_variable cv;
};

JobPool::JobPool(int width, long grace_ms, std::function<void(const std::string&)> log)
    : width_(width < 1 ? 1 : width),
      grace_ms_(grace_ms < 0 ? 0 : grace_ms),
      log_(std::move(log)),
      sync_(std::make_shared<Sync>()) {
  watchdog_ = std::thread([this] { watchdog_loop(); });
}

JobPool::~JobPool() {
  cancel_all(CancelReason::kShutdown, /*escalate=*/true);
  // Drain: workers either honour the shutdown cancel or get abandoned by
  // the watchdog once the grace period runs out, so this terminates.
  for (;;) {
    const std::vector<Handle> reaped = wait_terminal(std::chrono::milliseconds(50));
    std::lock_guard<std::mutex> lk(sync_->mx);
    (void)reaped;
    if (active_.empty()) break;
  }
  {
    std::lock_guard<std::mutex> lk(sync_->mx);
    stop_watchdog_ = true;
  }
  sync_->cv.notify_all();
  watchdog_.join();
}

std::size_t JobPool::running() const {
  std::lock_guard<std::mutex> lk(sync_->mx);
  std::size_t n = 0;
  for (const Handle& h : active_)
    if (h->phase == Slot::kRunning) ++n;
  return n;
}

JobPool::Handle JobPool::start(std::string label, long budget_ms, std::shared_ptr<void> context,
                               std::function<void(const CancelToken&)> work,
                               std::function<void()> kill) {
  auto slot = std::make_shared<Slot>();
  slot->label = std::move(label);
  slot->budget_ms = budget_ms;
  slot->context = std::move(context);
  slot->kill = std::move(kill);
  slot->started = steady::now();
  const std::shared_ptr<Sync> sync = sync_;
  {
    std::lock_guard<std::mutex> lk(sync->mx);
    slot->id = next_id_++;
    // The worker captures only shared state (sync block + its own slot), so
    // it stays safe after abandonment outlives the pool.
    slot->worker = std::thread([sync, slot, fn = std::move(work)] {
      try {
        fn(slot->token);
      } catch (...) {
        // The work callable promised not to throw; keep the pool alive
        // anyway — the caller sees a job with whatever outcome its context
        // carries (typically "no outcome written" = failure).
      }
      std::lock_guard<std::mutex> guard(sync->mx);
      if (slot->phase == Slot::kRunning) slot->phase = Slot::kFinished;
      sync->cv.notify_all();
    });
    active_.push_back(slot);
  }
  sync->cv.notify_all();
  return slot;
}

void JobPool::cancel(const Handle& handle, CancelReason reason, bool escalate) {
  if (!handle) return;
  handle->token.cancel(reason);
  std::lock_guard<std::mutex> lk(sync_->mx);
  if (escalate && handle->phase == Slot::kRunning && !handle->soft_cancelled) {
    handle->soft_cancelled = true;
    handle->soft_cancel_at = steady::now();
  }
  sync_->cv.notify_all();
}

void JobPool::cancel_all(CancelReason reason, bool escalate) {
  std::vector<Handle> snapshot;
  {
    std::lock_guard<std::mutex> lk(sync_->mx);
    snapshot = active_;
  }
  for (const Handle& h : snapshot) cancel(h, reason, escalate);
}

std::vector<JobPool::Handle> JobPool::wait_terminal(std::chrono::milliseconds timeout) {
  std::vector<Handle> terminal;
  {
    std::unique_lock<std::mutex> lk(sync_->mx);
    const auto has_terminal = [this] {
      for (const Handle& h : active_)
        if (h->phase != Slot::kRunning) return true;
      return false;
    };
    if (!has_terminal()) sync_->cv.wait_for(lk, timeout, has_terminal);
    for (auto it = active_.begin(); it != active_.end();) {
      if ((*it)->phase == Slot::kRunning) {
        ++it;
        continue;
      }
      terminal.push_back(*it);
      it = active_.erase(it);
    }
  }
  // Join/detach outside the lock: a finishing worker's last step is to take
  // the lock and set its phase, so joining under the lock could deadlock.
  for (const Handle& h : terminal) {
    if (h->phase == Slot::kAbandoned)
      h->worker.detach();
    else
      h->worker.join();
  }
  return terminal;
}

long JobPool::watchdog_cancels() const {
  std::lock_guard<std::mutex> lk(sync_->mx);
  return watchdog_cancels_;
}

long JobPool::watchdog_kills() const {
  std::lock_guard<std::mutex> lk(sync_->mx);
  return watchdog_kills_;
}

long JobPool::abandoned() const {
  std::lock_guard<std::mutex> lk(sync_->mx);
  return abandoned_;
}

void JobPool::watchdog_loop() {
  std::unique_lock<std::mutex> lk(sync_->mx);
  while (!stop_watchdog_) {
    sync_->cv.wait_for(lk, std::chrono::milliseconds(25));
    const auto now = steady::now();
    std::vector<std::string> lines;
    for (const Handle& slot : active_) {
      if (slot->phase != Slot::kRunning) continue;
      if (!slot->soft_cancelled && slot->budget_ms > 0 &&
          now - slot->started >= std::chrono::milliseconds(slot->budget_ms)) {
        slot->token.cancel(CancelReason::kWatchdog);
        slot->soft_cancelled = true;
        slot->watchdog_fired = true;
        slot->soft_cancel_at = now;
        ++watchdog_cancels_;
        if (log_)
          lines.push_back("watchdog: soft-cancelled " + slot->label + " after " +
                          std::to_string(slot->budget_ms) + " ms");
      } else if (slot->soft_cancelled &&
                 now - slot->soft_cancel_at >= std::chrono::milliseconds(grace_ms_)) {
        if (slot->kill && !slot->kill_fired) {
          // A killable job (process-isolated worker) gets a true SIGKILL
          // instead of the legacy detach: the hook reaps the child, the
          // worker thread unwinds within milliseconds, and the job joins
          // like any finished one.  Re-arm the grace window so abandonment
          // stays the last resort should even the kill go unanswered.
          slot->kill_fired = true;
          slot->soft_cancel_at = now;
          ++watchdog_kills_;
          slot->kill();
          if (log_)
            lines.push_back("watchdog: killed unresponsive " + slot->label + " after " +
                            std::to_string(grace_ms_) + " ms grace");
        } else {
          slot->phase = Slot::kAbandoned;
          ++abandoned_;
          if (log_)
            lines.push_back("watchdog: abandoning unresponsive " + slot->label + " after " +
                            std::to_string(grace_ms_) + " ms grace");
          sync_->cv.notify_all();
        }
      }
    }
    if (!lines.empty()) {
      lk.unlock();
      for (const std::string& line : lines) log_(line);
      lk.lock();
    }
  }
}

}  // namespace hem::exec
