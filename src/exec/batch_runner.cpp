#include "exec/batch_runner.hpp"

#include <algorithm>
#include <chrono>
#include <deque>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "exec/analysis_attempt.hpp"
#include "exec/cancel.hpp"
#include "exec/job_pool.hpp"
#include "exec/journal.hpp"
#include "exec/worker_process.hpp"
#include "io/csv.hpp"
#include "model/textual_config.hpp"
#include "obs/obs.hpp"

namespace hem::exec {

namespace {

namespace fs = std::filesystem;
using steady = std::chrono::steady_clock;

obs::Counter& g_jobs_run = obs::registry().counter("batch.jobs_run");
obs::Counter& g_jobs_done = obs::registry().counter("batch.jobs_done");
obs::Counter& g_jobs_failed = obs::registry().counter("batch.jobs_failed");
obs::Counter& g_jobs_cancelled = obs::registry().counter("batch.jobs_cancelled");
obs::Counter& g_jobs_abandoned = obs::registry().counter("batch.jobs_abandoned");
obs::Counter& g_retries = obs::registry().counter("batch.retries");
obs::Counter& g_watchdog_cancels = obs::registry().counter("batch.watchdog_cancels");
obs::Counter& g_journal_skips = obs::registry().counter("batch.journal_skips");
obs::Counter& g_worker_crashes = obs::registry().counter("batch.worker_crashes");
obs::Counter& g_crash_respawns = obs::registry().counter("batch.crash_respawns");
obs::Counter& g_poisoned = obs::registry().counter("batch.poisoned");
obs::Histogram& g_job_ms = obs::registry().histogram("batch.job_duration_ms");

/// A config is quarantined (kPoisoned) once this many worker processes
/// have died running it: one supervised respawn, then never again.
constexpr int kPoisonThreshold = 2;

/// Per-dispatch payload carried through JobPool::Slot::context.  The
/// outcome is written by the worker before it flips its slot to kFinished
/// and read by the scheduler only after joining a finished worker, so no
/// extra locking is needed; an abandoned worker's outcome is never read.
struct AttemptCtx {
  std::size_t index = 0;
  int attempt = 1;
  bool isolated = false;  ///< ran in a forked worker; `worker` is meaningful
  WorkerReport worker;
  AttemptOutcome outcome;
};

/// Run one batch attempt: parse the config file, then hand the parsed
/// system to the shared analysis firewall (analysis_attempt.hpp) with the
/// budgets scaled for this attempt number.  Parse/read errors come back as
/// non-transient failures, never as escaped exceptions.
AttemptOutcome attempt_config(const std::string& path, const BatchOptions& opt, int attempt,
                              const CancelToken* token) {
  AttemptOutcome out;
  const auto t0 = steady::now();
  obs::Span span("batch", [&] { return "job:" + path; });
  span.arg("attempt", static_cast<long>(attempt));
  try {
    cpa::ParsedSystem parsed = cpa::parse_system_config_file(path);
    // Budgets scale by retry_budget_factor per extra attempt, so a
    // transient budget exhaustion is retried with more headroom.
    long scale = 1;
    for (int i = 1; i < attempt; ++i) scale *= opt.retry_budget_factor;
    AttemptOptions aopt;
    aopt.strict = opt.strict;
    aopt.engine_jobs = opt.engine_jobs;
    aopt.max_iterations = static_cast<int>(
        std::min<long>(static_cast<long>(opt.max_iterations) * scale, 1'000'000));
    if (opt.engine_budget_ms > 0) aopt.wall_budget_ms = opt.engine_budget_ms * scale;
    aopt.fixpoint_max_iterations = opt.fixpoint_max_iterations;
    aopt.fixpoint_max_window = opt.fixpoint_max_window;
    out = run_analysis_attempt(parsed, path, aopt, token);
  } catch (const std::exception& e) {
    out.message = e.what();  // parse / read errors: non-transient failure
  }
  // Wall clock of the full attempt, parse included (the firewall only
  // times the engine).
  out.duration_ms = static_cast<long>(
      std::chrono::duration_cast<std::chrono::milliseconds>(steady::now() - t0).count());
  span.arg("outcome", out.ok          ? "done"
                      : out.cancelled ? "cancelled"
                      : out.transient ? "transient-failure"
                                      : "failed");
  return out;
}

}  // namespace

const char* to_string(JobState s) noexcept {
  switch (s) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
    case JobState::kAbandoned:
      return "abandoned";
    case JobState::kCrashed:
      return "crashed";
    case JobState::kPoisoned:
      return "poisoned";
  }
  return "queued";
}

int BatchReport::exit_code() const {
  if (interrupted) return 6;
  bool failed = false;
  bool degraded_any = false;
  for (const JobResult& j : jobs) {
    if (j.state == JobState::kFailed || j.state == JobState::kCancelled ||
        j.state == JobState::kAbandoned || j.state == JobState::kCrashed ||
        j.state == JobState::kPoisoned)
      failed = true;
    else if (j.state == JobState::kDone && j.degraded)
      degraded_any = true;
  }
  if (failed) return 5;
  if (degraded_any) return 4;
  return 0;
}

void BatchReport::write_csv(std::ostream& os) const {
  os << "config,task,resource,bcrt,wcrt,activations,busy_period,utilization,status\n";
  for (const JobResult& j : jobs) {
    if (j.state == JobState::kDone) {
      for (const std::string& row : j.rows) os << row << '\n';
    } else {
      os << io::csv_field(j.path) << ",-,-,-,-,-,-,-," << to_string(j.state) << '\n';
    }
  }
}

void BatchReport::write_summary(std::ostream& os) const {
  long done = 0, degraded_n = 0, failed = 0, cancelled = 0, abandoned_n = 0, queued = 0;
  long crashed_n = 0, poisoned_n = 0;
  for (const JobResult& j : jobs) {
    switch (j.state) {
      case JobState::kDone:
        ++done;
        if (j.degraded) ++degraded_n;
        break;
      case JobState::kFailed:
        ++failed;
        break;
      case JobState::kCancelled:
        ++cancelled;
        break;
      case JobState::kAbandoned:
        ++abandoned_n;
        break;
      case JobState::kCrashed:
        ++crashed_n;
        break;
      case JobState::kPoisoned:
        ++poisoned_n;
        break;
      default:
        ++queued;
        break;
    }
  }
  os << "batch: " << jobs.size() << " configs, " << done << " done";
  if (degraded_n > 0) os << " (" << degraded_n << " degraded)";
  if (failed > 0) os << ", " << failed << " failed";
  if (cancelled > 0) os << ", " << cancelled << " cancelled";
  if (abandoned_n > 0) os << ", " << abandoned_n << " abandoned";
  if (crashed_n > 0) os << ", " << crashed_n << " crashed";
  if (poisoned_n > 0) os << ", " << poisoned_n << " poisoned";
  if (queued > 0) os << ", " << queued << " not run";
  if (journal_skips > 0) os << ", " << journal_skips << " restored from journal";
  if (retries > 0) os << ", " << retries << " retries";
  if (crash_respawns > 0) os << ", " << crash_respawns << " crash respawns";
  if (watchdog_cancels > 0) os << ", " << watchdog_cancels << " watchdog cancels";
  if (interrupted) os << " [interrupted]";
  os << '\n';
}

BatchRunner::BatchRunner(std::vector<std::string> configs, BatchOptions options)
    : configs_(std::move(configs)), options_(std::move(options)) {}

std::vector<std::string> BatchRunner::collect_configs(const std::string& dir_or_manifest) {
  std::error_code ec;
  if (fs::is_directory(dir_or_manifest, ec)) {
    std::vector<std::string> configs;
    for (const fs::directory_entry& entry : fs::directory_iterator(dir_or_manifest)) {
      if (entry.is_regular_file() && entry.path().extension() == ".hemcpa")
        configs.push_back(entry.path().string());
    }
    if (configs.empty())
      throw std::invalid_argument("batch directory '" + dir_or_manifest +
                                  "' contains no .hemcpa configs");
    std::sort(configs.begin(), configs.end());
    return configs;
  }
  std::ifstream in(dir_or_manifest);
  if (!in) {
    // Distinguish "you typo'd the path" from "the file is there but cannot
    // be opened" so the usage error (exit 3) tells the user what to fix.
    std::error_code exists_ec;
    if (!fs::exists(dir_or_manifest, exists_ec))
      throw std::invalid_argument("batch operand '" + dir_or_manifest +
                                  "' does not exist (expected a directory of .hemcpa configs "
                                  "or a manifest file listing one config path per line)");
    throw std::invalid_argument("batch manifest '" + dir_or_manifest +
                                "' exists but cannot be opened for reading "
                                "(check file permissions)");
  }
  const fs::path base = fs::path(dir_or_manifest).parent_path();
  std::vector<std::string> configs;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line_no == 1 && line.rfind("\xEF\xBB\xBF", 0) == 0) line.erase(0, 3);
    const std::size_t begin = line.find_first_not_of(" \t");
    if (begin == std::string::npos || line[begin] == '#') continue;
    const std::size_t end = line.find_last_not_of(" \t");
    const std::string entry = line.substr(begin, end - begin + 1);
    const fs::path p(entry);
    configs.push_back(p.is_absolute() || base.empty() ? p.string() : (base / p).string());
  }
  if (configs.empty())
    throw std::invalid_argument("batch manifest '" + dir_or_manifest + "' lists no configs");
  return configs;
}

BatchReport BatchRunner::run(const volatile std::sig_atomic_t* shutdown_flag, std::ostream* log) {
  if (ran_) throw std::logic_error("BatchRunner::run may only be called once");
  ran_ = true;

  BatchReport report;
  report.jobs.resize(configs_.size());
  for (std::size_t i = 0; i < configs_.size(); ++i) report.jobs[i].path = configs_[i];

  const bool journal_enabled = !options_.journal_path.empty();
  Journal journal(options_.journal_path);
  if (journal_enabled) {
    if (options_.resume) {
      journal.load();  // absent file = fresh batch
      const Journal::Recovery& rec = journal.last_recovery();
      if (rec.torn && log != nullptr)
        *log << "[batch] journal: torn tail recovered (" << rec.reason << "); kept "
             << rec.entries_kept << " complete record(s), torn bytes moved to "
             << rec.quarantine_path << '\n'
             << std::flush;
    } else {
      journal.clear();  // fail fast on an unwritable journal location
    }
  }

  // Build the initial ready queue: fingerprint every config and, on
  // --resume, restore jobs the journal already has in a terminal state.
  std::deque<std::pair<std::size_t, int>> ready;  // (index, attempt)
  for (std::size_t i = 0; i < configs_.size(); ++i) {
    JobResult& j = report.jobs[i];
    try {
      j.fingerprint = fingerprint_file(configs_[i]);
    } catch (const std::exception& e) {
      j.state = JobState::kFailed;
      j.message = e.what();
      obs::bump(g_jobs_failed);
      continue;
    }
    if (journal_enabled && options_.resume) {
      if (const JournalEntry* e = journal.find(configs_[i], j.fingerprint)) {
        j.from_journal = true;
        j.state = e->status == "done"        ? JobState::kDone
                  : e->status == "cancelled" ? JobState::kCancelled
                  : e->status == "abandoned" ? JobState::kAbandoned
                  : e->status == "crashed"   ? JobState::kCrashed
                  : e->status == "poisoned"  ? JobState::kPoisoned
                                             : JobState::kFailed;
        j.converged = e->completed();
        j.attempts = e->attempts;
        j.duration_ms = e->duration_ms;
        j.degraded = e->degraded;
        j.rows = e->rows;
        ++report.journal_skips;
        obs::bump(g_journal_skips);
        continue;
      }
    }
    ready.emplace_back(i, 1);
  }

  std::vector<std::pair<steady::time_point, std::pair<std::size_t, int>>> delayed;
  std::vector<int> crash_count(configs_.size(), 0);
  int in_flight = 0;
  bool interrupted = false;
  const int pool_width = std::max(1, options_.parallel_jobs);
  const int max_attempts = 1 + std::max(0, options_.max_retries);
  const bool isolate = options_.isolate && WorkerProcess::supported();

  const auto log_line = [&](const std::string& text) {
    if (log != nullptr) *log << "[batch] " << text << '\n' << std::flush;
  };

  const auto journal_terminal = [&](const JobResult& j) {
    if (!journal_enabled) return;
    JournalEntry e;
    e.config_path = j.path;
    e.fingerprint = j.fingerprint;
    e.status = to_string(j.state);
    e.attempts = j.attempts;
    e.duration_ms = j.duration_ms;
    e.degraded = j.degraded;
    e.rows = j.rows;
    journal.add(std::move(e));
  };

  // The pool supplies the worker threads and the monitor-thread watchdog
  // (soft-cancel at the wall-clock budget, hard-abandon once the grace
  // period passes without the cancel taking effect); the retry queue, the
  // journal, and the report stay here.  The pool's log callback counts
  // watchdog soft-cancels into the obs registry so the counter keeps its
  // fire-time semantics.
  JobPool pool(pool_width, options_.grace_ms, [&](const std::string& line) {
    if (line.rfind("watchdog: soft-cancelled", 0) == 0) obs::bump(g_watchdog_cancels);
    log_line(line);
  });

  while (true) {
    // Shutdown request: freeze the queue, cancel what is running, drain.
    // No escalation — the drain waits for the cooperative cancel so jobs
    // stay resumable (only a watchdog that already fired may still abandon).
    if (!interrupted && shutdown_flag != nullptr && *shutdown_flag != 0) {
      interrupted = true;
      ready.clear();
      delayed.clear();
      pool.cancel_all(CancelReason::kShutdown, /*escalate=*/false);
      log_line("shutdown requested: draining " + std::to_string(in_flight) +
               " in-flight job(s)");
    }

    // Promote retries whose backoff elapsed.
    const auto now = steady::now();
    for (auto it = delayed.begin(); it != delayed.end();) {
      if (it->first <= now) {
        ready.push_back(it->second);
        it = delayed.erase(it);
      } else {
        ++it;
      }
    }

    // Dispatch up to the pool width.
    while (!interrupted && in_flight < pool_width && !ready.empty()) {
      const auto [index, attempt] = ready.front();
      ready.pop_front();
      auto ctx = std::make_shared<AttemptCtx>();
      ctx->index = index;
      ctx->attempt = attempt;
      report.jobs[index].state = JobState::kRunning;
      obs::bump(g_jobs_run);
      // The worker owns copies/shared handles of everything it touches, so
      // a hard-abandoned worker can outlive this function safely.
      const std::string path = configs_[index];
      const BatchOptions opt = options_;
      if (isolate) {
        // Fork a sandboxed child for the attempt.  The pool's worker thread
        // blocks in run() polling the token (a fired token SIGKILLs the
        // child), and the kill hook gives the watchdog a true SIGKILL
        // escalation instead of the legacy thread detach.
        auto session = std::make_shared<WorkerProcess>();
        ctx->isolated = true;
        pool.start(
            path, options_.job_budget_ms, ctx,
            [ctx, path, opt, attempt, session](const CancelToken& token) {
              const WorkerLimits limits = limits_from_budget(
                  opt.job_budget_ms, opt.worker_memory_mb, opt.worker_stack_mb);
              // The token stays parent-side (a fork would freeze its state),
              // so the child runs uncancellable and the parent enforces the
              // budget with SIGKILL.
              ctx->worker = session->run(
                  [&path, &opt, attempt] { return attempt_config(path, opt, attempt, nullptr); },
                  limits, &token);
              ctx->outcome = ctx->worker.outcome;
              if (ctx->worker.kind == WorkerExit::kSpawnFailed) {
                // fork()/pipe() failed: nothing ran, so this is a retryable
                // environment failure, not a config failure.
                ctx->outcome.transient = true;
                ctx->outcome.message = ctx->worker.detail;
              }
            },
            [session] { session->kill(); });
      } else {
        pool.start(path, options_.job_budget_ms, ctx,
                   [ctx, path, opt, attempt](const CancelToken& token) {
                     ctx->outcome = attempt_config(path, opt, attempt, &token);
                   });
      }
      ++in_flight;
    }

    // Reap finished and abandoned jobs.
    for (const JobPool::Handle& slot : pool.wait_terminal(std::chrono::milliseconds(10))) {
      const auto ctx = std::static_pointer_cast<AttemptCtx>(slot->context);
      const std::size_t index = ctx->index;
      JobResult& j = report.jobs[index];
      --in_flight;
      if (slot->phase == JobPool::Slot::kAbandoned) {
        j.state = JobState::kAbandoned;
        j.attempts = ctx->attempt;
        j.duration_ms = static_cast<long>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                              steady::now() - slot->started)
                                              .count());
        j.message = "watchdog abandoned the job (cancel not honoured within grace period)";
        ++report.abandoned;
        obs::bump(g_jobs_abandoned);
        journal_terminal(j);
        log_line(configs_[index] + ": abandoned");
        continue;
      }
      AttemptOutcome& out = ctx->outcome;
      j.attempts = ctx->attempt;
      j.duration_ms = out.duration_ms;
      j.converged = out.converged;
      j.degraded = out.degraded;
      j.transient = out.transient;
      j.message = out.message;
      obs::observe(g_job_ms, out.duration_ms);
      if (ctx->isolated && (ctx->worker.kind == WorkerExit::kCrashed ||
                            ctx->worker.kind == WorkerExit::kResourceExhausted)) {
        // Supervised respawn with two-strikes quarantine: the first worker
        // death earns one backed-off respawn (absorbs one-off flakes / OOM
        // pressure), the second poisons the config so --resume and every
        // later run skip it without re-executing the crasher.
        const int crashes = ++crash_count[index];
        obs::bump(g_worker_crashes);
        if (crashes >= kPoisonThreshold) {
          j.state = JobState::kPoisoned;
          j.attempts = crashes;
          j.message = "poisoned: worker crashed " + std::to_string(crashes) +
                      " times (last: " + ctx->worker.detail + ")";
          ++report.poisoned;
          obs::bump(g_poisoned);
          journal_terminal(j);
          log_line(configs_[index] + ": poisoned after " + std::to_string(crashes) +
                   " worker crashes (" + ctx->worker.detail + ")");
        } else if (interrupted) {
          // Shutdown raced the crash: forget it so --resume replays the
          // full deterministic crash/respawn sequence from scratch.
          --crash_count[index];
          j.state = JobState::kQueued;
          j.attempts = 0;
          j.message = "interrupted before completion";
          log_line(configs_[index] + ": interrupted, will re-run on --resume");
        } else {
          const long backoff = options_.crash_backoff_ms << (crashes - 1);
          delayed.emplace_back(steady::now() + std::chrono::milliseconds(backoff),
                               std::make_pair(index, ctx->attempt));
          j.state = JobState::kQueued;
          j.message = ctx->worker.detail;
          ++report.crash_respawns;
          obs::bump(g_crash_respawns);
          log_line(configs_[index] + ": worker crashed (" + ctx->worker.detail +
                   "), respawning in " + std::to_string(backoff) + " ms (" +
                   std::to_string(crashes) + "/" + std::to_string(kPoisonThreshold) +
                   " strikes)");
        }
        continue;
      }
      if (out.cancelled && out.cancel_reason == CancelReason::kShutdown) {
        // Discarded, not journaled: --resume re-runs it from scratch so
        // the merged report stays byte-identical to an uninterrupted run.
        j.state = JobState::kQueued;
        j.attempts = 0;
        j.message = "interrupted before completion";
        log_line(configs_[index] + ": interrupted, will re-run on --resume");
      } else if (out.cancelled) {
        j.state = JobState::kCancelled;
        j.message = out.message + " [" + to_string(out.cancel_reason) + "]";
        obs::bump(g_jobs_cancelled);
        journal_terminal(j);
        log_line(configs_[index] + ": cancelled (" +
                 std::string(to_string(out.cancel_reason)) + ")");
      } else if (out.ok) {
        j.state = JobState::kDone;
        j.rows = std::move(out.rows);
        obs::bump(g_jobs_done);
        journal_terminal(j);
        log_line(configs_[index] + ": done in " + std::to_string(out.duration_ms) + " ms" +
                 (out.degraded ? " (degraded)" : ""));
      } else if (out.transient && ctx->attempt < max_attempts && !interrupted) {
        const long backoff = options_.retry_backoff_ms * ctx->attempt;
        delayed.emplace_back(steady::now() + std::chrono::milliseconds(backoff),
                             std::make_pair(index, ctx->attempt + 1));
        j.state = JobState::kQueued;
        ++report.retries;
        obs::bump(g_retries);
        log_line(configs_[index] + ": transient failure (" + out.message + "), retry " +
                 std::to_string(ctx->attempt + 1) + "/" + std::to_string(max_attempts) +
                 " in " + std::to_string(backoff) + " ms");
      } else if (out.transient && interrupted) {
        // Would have been retried: leave it queued and unjournaled so a
        // resumed batch repeats the full deterministic attempt sequence.
        j.state = JobState::kQueued;
        j.attempts = 0;
        j.message = "interrupted before completion";
        log_line(configs_[index] + ": interrupted during retry window, will re-run");
      } else {
        j.state = JobState::kFailed;
        obs::bump(g_jobs_failed);
        journal_terminal(j);
        log_line(configs_[index] + ": failed (" + out.message + ")");
      }
    }

    if (in_flight == 0 && ready.empty() && delayed.empty()) break;
  }
  report.watchdog_cancels = pool.watchdog_cancels();

  report.interrupted = interrupted;
  return report;
}

}  // namespace hem::exec
