#include "exec/work_pool.hpp"

#include <algorithm>

namespace hem::exec {

WorkPool::WorkPool(int threads) {
  const int helpers = std::max(0, threads - 1);
  helpers_.reserve(static_cast<std::size_t>(helpers));
  for (int h = 0; h < helpers; ++h)
    helpers_.emplace_back([this, h] { helper_loop(static_cast<std::size_t>(h)); });
}

WorkPool::~WorkPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : helpers_) t.join();
}

void WorkPool::run(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Auto-cap: engage at most n - 1 helpers, so a batch never pays wake-up
  // and hand-shake costs for workers that could not possibly get an item.
  const std::size_t engaged = std::min(helpers_.size(), n - 1);
  if (engaged == 0) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    fn_ = &fn;
    n_ = n;
    engaged_ = engaged;
    active_ = engaged;
    next_.store(0, std::memory_order_relaxed);
    ++epoch_;
  }
  start_cv_.notify_all();
  // The caller steals alongside the helpers.
  for (std::size_t i; (i = next_.fetch_add(1, std::memory_order_relaxed)) < n;) fn(i);
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [this] { return active_ == 0; });
  fn_ = nullptr;
}

void WorkPool::helper_loop(std::size_t rank) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t n = 0;
    bool engaged = false;
    {
      std::unique_lock<std::mutex> lk(mu_);
      start_cv_.wait(lk, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      engaged = rank < engaged_;
      fn = fn_;
      n = n_;
    }
    if (!engaged) continue;  // surplus worker for this batch; wait for the next
    for (std::size_t i; (i = next_.fetch_add(1, std::memory_order_relaxed)) < n;) (*fn)(i);
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--active_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace hem::exec
