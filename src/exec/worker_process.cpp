#include "exec/worker_process.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <set>

#include "obs/obs.hpp"

#if !defined(_WIN32)
#define HEM_WORKER_POSIX 1
#include <poll.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace hem::exec {

namespace {

constexpr char kFrameMagic[8] = {'h', 'e', 'm', 'w', '1', '\n', 0, 0};

void put_u64(std::string& out, std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  out.append(buf, 8);
}

void put_str(std::string& out, const std::string& s) {
  put_u64(out, s.size());
  out.append(s);
}

class Cursor {
 public:
  Cursor(const char* data, std::size_t size) : data_(data), size_(size) {}
  bool u64(std::uint64_t& v) {
    if (size_ - pos_ < 8) return false;
    v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data_[pos_ + i])) << (8 * i);
    pos_ += 8;
    return true;
  }
  bool str(std::string& s) {
    std::uint64_t n = 0;
    if (!u64(n) || size_ - pos_ < n) return false;
    s.assign(data_ + pos_, n);
    pos_ += n;
    return true;
  }
  [[nodiscard]] bool done() const { return pos_ == size_; }

 private:
  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace

const char* to_string(WorkerExit e) noexcept {
  switch (e) {
    case WorkerExit::kResult:
      return "result";
    case WorkerExit::kCrashed:
      return "crashed";
    case WorkerExit::kResourceExhausted:
      return "resource-exhausted";
    case WorkerExit::kKilled:
      return "killed";
    case WorkerExit::kSpawnFailed:
      return "spawn-failed";
  }
  return "unknown";
}

std::string encode_outcome(const AttemptOutcome& out) {
  std::string bytes(kFrameMagic, sizeof kFrameMagic);
  std::uint64_t flags = 0;
  if (out.ok) flags |= 1u << 0;
  if (out.degraded) flags |= 1u << 1;
  if (out.converged) flags |= 1u << 2;
  if (out.cancelled) flags |= 1u << 3;
  if (out.transient) flags |= 1u << 4;
  put_u64(bytes, flags);
  put_u64(bytes, static_cast<std::uint64_t>(out.cancel_reason));
  put_u64(bytes, static_cast<std::uint64_t>(out.duration_ms));
  put_u64(bytes, static_cast<std::uint64_t>(out.warm_seeded));
  put_str(bytes, out.message);
  put_u64(bytes, out.rows.size());
  for (const std::string& row : out.rows) put_str(bytes, row);
  return bytes;
}

bool decode_outcome(const std::string& bytes, AttemptOutcome& out) {
  if (bytes.size() < sizeof kFrameMagic ||
      std::memcmp(bytes.data(), kFrameMagic, sizeof kFrameMagic) != 0)
    return false;
  Cursor c(bytes.data() + sizeof kFrameMagic, bytes.size() - sizeof kFrameMagic);
  std::uint64_t flags = 0;
  std::uint64_t reason = 0;
  std::uint64_t duration = 0;
  std::uint64_t warm = 0;
  std::uint64_t n_rows = 0;
  AttemptOutcome dec;
  if (!c.u64(flags) || !c.u64(reason) || !c.u64(duration) || !c.u64(warm) ||
      !c.str(dec.message) || !c.u64(n_rows))
    return false;
  if (reason > static_cast<std::uint64_t>(CancelReason::kDisconnect)) return false;
  dec.ok = (flags & (1u << 0)) != 0;
  dec.degraded = (flags & (1u << 1)) != 0;
  dec.converged = (flags & (1u << 2)) != 0;
  dec.cancelled = (flags & (1u << 3)) != 0;
  dec.transient = (flags & (1u << 4)) != 0;
  dec.cancel_reason = static_cast<CancelReason>(reason);
  dec.duration_ms = static_cast<long>(duration);
  dec.warm_seeded = static_cast<long>(warm);
  dec.rows.reserve(static_cast<std::size_t>(n_rows));
  for (std::uint64_t i = 0; i < n_rows; ++i) {
    std::string row;
    if (!c.str(row)) return false;
    dec.rows.push_back(std::move(row));
  }
  if (!c.done()) return false;
  out = std::move(dec);
  return true;
}

WorkerLimits limits_from_budget(long budget_ms, long memory_mb, long stack_mb) noexcept {
  WorkerLimits limits;
  if (budget_ms > 0) {
    // 4x the wall budget in CPU seconds (a parallel attempt burns several
    // cores), minimum 2s so sub-second budgets don't SIGXCPU healthy jobs.
    // The watchdog's token fires long before this; the rlimit only matters
    // for a worker stuck outside every cancellation point.
    const long seconds = (budget_ms + 999) / 1000;
    limits.cpu_seconds = seconds * 4 + 2;
  }
  if (memory_mb > 0) limits.memory_bytes = static_cast<long long>(memory_mb) << 20;
  if (stack_mb > 0) limits.stack_bytes = static_cast<long long>(stack_mb) << 20;
  return limits;
}

#if defined(HEM_WORKER_POSIX)

namespace {

std::mutex g_live_mx;
std::set<pid_t> g_live_pids;

void register_live(pid_t pid) {
  const std::lock_guard<std::mutex> lock(g_live_mx);
  g_live_pids.insert(pid);
}

void unregister_live(pid_t pid) {
  const std::lock_guard<std::mutex> lock(g_live_mx);
  g_live_pids.erase(pid);
}

/// Best-effort: a cap the host refuses (e.g. over a hard limit) must not
/// turn into a spawn failure — the watchdog still bounds the job.
void cap_limit(int resource, rlim_t soft, rlim_t hard) {
  struct rlimit rl;
  rl.rlim_cur = soft;
  rl.rlim_max = hard;
  (void)::setrlimit(resource, &rl);
}

/// RLIMIT_AS caps total *virtual* address space.  AddressSanitizer reserves
/// terabytes of (NORESERVE) shadow mappings at startup, so under ASan any
/// realistic cap is already exceeded and every later allocation would fail —
/// in clean workers, not just misbehaving ones.  Skip the cap there; the
/// CPU backstop and the watchdog still bound the job.
constexpr bool address_space_cappable() {
#if defined(__SANITIZE_ADDRESS__)
  return false;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
  return false;
#else
  return true;
#endif
#else
  return true;
#endif
}

void apply_limits(const WorkerLimits& limits) {
  if (limits.memory_bytes > 0 && address_space_cappable()) {
    const auto bytes = static_cast<rlim_t>(limits.memory_bytes);
    cap_limit(RLIMIT_AS, bytes, bytes);
  }
  if (limits.cpu_seconds > 0) {
    // Soft limit delivers SIGXCPU; the hard limit one second later is the
    // SIGKILL backstop should the child ignore it.
    const auto secs = static_cast<rlim_t>(limits.cpu_seconds);
    cap_limit(RLIMIT_CPU, secs, secs + 1);
  }
  if (limits.stack_bytes > 0) {
    const auto bytes = static_cast<rlim_t>(limits.stack_bytes);
    cap_limit(RLIMIT_STACK, bytes, bytes);
  }
}

[[noreturn]] void child_main(int fd, const std::function<AttemptOutcome()>& work,
                             const WorkerLimits& limits) {
  apply_limits(limits);
  // The obs tracer/counter sinks belong to the parent; a child emitting
  // into them would interleave with the parent's own streams.
  obs::set_tracer(nullptr);
  obs::set_counting(false);
  ::signal(SIGPIPE, SIG_IGN);  // a vanished parent becomes an EPIPE write error
  std::string frame;
  try {
    frame = encode_outcome(work());
  } catch (...) {
    ::_exit(4);  // the attempt layer is firewalled; anything escaping is a bug
  }
  std::string wire;
  put_u64(wire, frame.size());
  wire += frame;
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = ::write(fd, wire.data() + sent, wire.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::_exit(2);
    }
    sent += static_cast<std::size_t>(n);
  }
  ::_exit(0);
}

}  // namespace

bool WorkerProcess::supported() noexcept { return true; }

std::vector<int> WorkerProcess::live_pids() {
  const std::lock_guard<std::mutex> lock(g_live_mx);
  return {g_live_pids.begin(), g_live_pids.end()};
}

void WorkerProcess::kill() noexcept {
  kill_requested_.store(true, std::memory_order_release);
  const long pid = pid_.load(std::memory_order_acquire);
  if (pid > 0) (void)::kill(static_cast<pid_t>(pid), SIGKILL);
}

WorkerReport WorkerProcess::run(const std::function<AttemptOutcome()>& work,
                                const WorkerLimits& limits, const CancelToken* cancel) {
  WorkerReport report;
  const auto t0 = std::chrono::steady_clock::now();
  const auto parent_ms = [&] {
    return static_cast<long>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count());
  };

  int fds[2];
  if (::pipe(fds) != 0) {
    report.detail = std::string("pipe: ") + std::strerror(errno);
    return report;
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    report.detail = std::string("fork: ") + std::strerror(errno);
    ::close(fds[0]);
    ::close(fds[1]);
    return report;
  }
  if (pid == 0) {
    ::close(fds[0]);
    child_main(fds[1], work, limits);
  }

  ::close(fds[1]);
  pid_.store(pid, std::memory_order_release);
  register_live(pid);
  bool killed_by_us = false;
  if (kill_requested_.load(std::memory_order_acquire)) {
    (void)::kill(pid, SIGKILL);  // kill() raced the fork; honour it now
    killed_by_us = true;
  }

  // Drain the pipe, watching the cancel token.  EOF (the child closed its
  // end, by exiting or dying) ends the loop.
  std::string wire;
  for (;;) {
    struct pollfd pfd;
    pfd.fd = fds[0];
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, 20);
    if (!killed_by_us &&
        ((cancel != nullptr && cancel->cancelled()) ||
         kill_requested_.load(std::memory_order_acquire))) {
      (void)::kill(pid, SIGKILL);
      killed_by_us = true;
    }
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) continue;
    char buf[4096];
    const ssize_t n = ::read(fds[0], buf, sizeof buf);
    if (n > 0) {
      wire.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // EOF or read error: the child is gone
  }
  ::close(fds[0]);

  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  unregister_live(pid);
  pid_.store(0, std::memory_order_release);

  report.outcome.duration_ms = parent_ms();
  if (killed_by_us) {
    report.kind = WorkerExit::kKilled;
    report.outcome.cancelled = true;
    report.outcome.cancel_reason =
        cancel != nullptr && cancel->reason() != CancelReason::kNone ? cancel->reason()
                                                                     : CancelReason::kUser;
    report.detail = "worker killed on cancellation (" +
                    std::string(exec::to_string(report.outcome.cancel_reason)) + ")";
    report.outcome.message = report.detail;
    if (WIFSIGNALED(status)) report.term_signal = WTERMSIG(status);
    return report;
  }
  if (WIFSIGNALED(status)) {
    report.term_signal = WTERMSIG(status);
    const char* name = ::strsignal(report.term_signal);
    if (report.term_signal == SIGXCPU) {
      report.kind = WorkerExit::kResourceExhausted;
      report.detail = "RLIMIT_CPU exceeded (SIGXCPU)";
    } else if (report.term_signal == SIGKILL) {
      // Not our kill: the kernel OOM killer or an external actor.  Either
      // way the job exhausted something this process did not grant it.
      report.kind = WorkerExit::kResourceExhausted;
      report.detail = "worker killed by SIGKILL (kernel OOM killer or external)";
    } else {
      report.kind = WorkerExit::kCrashed;
      report.detail = "worker crashed: signal " + std::to_string(report.term_signal) +
                      (name != nullptr ? std::string(" (") + name + ")" : std::string());
    }
    report.outcome.message = report.detail;
    return report;
  }
  report.exit_status = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  if (report.exit_status == 0) {
    // Frame: u64 length prefix + payload.  Anything short or mismatched is
    // a torn frame — classify as a crash, never trust partial rows.
    Cursor c(wire.data(), wire.size());
    std::uint64_t frame_len = 0;
    AttemptOutcome decoded;
    if (c.u64(frame_len) && wire.size() == 8 + frame_len &&
        decode_outcome(wire.substr(8), decoded)) {
      report.kind = WorkerExit::kResult;
      report.outcome = std::move(decoded);
      return report;
    }
    report.kind = WorkerExit::kCrashed;
    report.detail = "worker exited 0 with a torn result frame (" +
                    std::to_string(wire.size()) + " bytes)";
  } else {
    report.kind = WorkerExit::kCrashed;
    report.detail = "worker exited with status " + std::to_string(report.exit_status);
  }
  report.outcome.message = report.detail;
  return report;
}

#else  // !HEM_WORKER_POSIX

bool WorkerProcess::supported() noexcept { return false; }

std::vector<int> WorkerProcess::live_pids() { return {}; }

void WorkerProcess::kill() noexcept { kill_requested_.store(true, std::memory_order_release); }

WorkerReport WorkerProcess::run(const std::function<AttemptOutcome()>& work,
                                const WorkerLimits& /*limits*/, const CancelToken* /*cancel*/) {
  // No process isolation on this platform: run inline.  Crashes crash the
  // host process exactly as they would without the sandbox.
  WorkerReport report;
  report.kind = WorkerExit::kResult;
  report.outcome = work();
  return report;
}

#endif  // HEM_WORKER_POSIX

}  // namespace hem::exec
