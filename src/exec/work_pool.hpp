#pragma once

/// \file work_pool.hpp
/// Persistent barrier-style worker pool for data-parallel index loops.
///
/// The CPA engine fans the independent work items of one global iteration
/// (per-task local analyses across all dirty resources) onto worker
/// threads.  Spawning threads per iteration is exactly what made `--jobs`
/// a pessimisation on small systems (thread creation costs more than the
/// work); this pool spawns its helpers ONCE and parks them on a condition
/// variable between batches, so dispatching a batch costs two
/// notify/wait cycles instead of N thread spawns.
///
/// Scheduling is work-stealing over a shared atomic index: items are
/// claimed in ascending order, whichever thread is free takes the next
/// one.  The caller's thread participates in every batch (a pool of
/// `threads` serves batches with `threads - 1` helpers plus the caller),
/// and each batch engages at most `n - 1` helpers so surplus workers never
/// contend for tiny batches.
///
/// Determinism contract: the pool guarantees nothing about WHICH thread
/// runs an item, only that every index in [0, n) runs exactly once and
/// that all items completed when run() returns.  Callers that need
/// deterministic output must write results to disjoint per-index slots and
/// reduce after run() returns — exactly what the engine does.
///
/// `fn` must not throw: an exception would unwind a helper thread and
/// terminate the process.  Wrap fallible work in an exception firewall
/// (capture into a per-index std::exception_ptr slot and rethrow after the
/// batch, in index order, for deterministic error reporting).

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hem::exec {

class WorkPool {
 public:
  /// A pool serving batches with up to `threads` concurrent workers
  /// (`threads - 1` spawned helpers plus the calling thread).  `threads`
  /// values below 2 create no helpers; run() then degrades to a plain
  /// serial loop.
  explicit WorkPool(int threads);
  ~WorkPool();

  WorkPool(const WorkPool&) = delete;
  WorkPool& operator=(const WorkPool&) = delete;

  /// Invoke `fn(i)` for every i in [0, n), distributing the items over the
  /// caller plus the pool's helpers; returns when all n items completed.
  /// Not reentrant and not thread-safe: one batch at a time, dispatched
  /// from one thread.
  void run(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Workers a batch can use at most (helpers + the calling thread).
  [[nodiscard]] int threads() const noexcept { return static_cast<int>(helpers_.size()) + 1; }

 private:
  void helper_loop(std::size_t rank);

  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  // Batch state, guarded by mu_ (helpers read it after observing a new
  // epoch under the lock).
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t n_ = 0;
  std::size_t engaged_ = 0;  ///< helpers participating in the current batch
  std::size_t active_ = 0;   ///< engaged helpers that have not finished yet
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
  std::atomic<std::size_t> next_{0};  ///< shared steal index of the current batch
  std::vector<std::thread> helpers_;
};

}  // namespace hem::exec
