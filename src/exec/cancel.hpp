#pragma once

/// \file cancel.hpp
/// Cooperative cancellation for long-running analyses.
///
/// A `CancelToken` is a tiny thread-safe flag shared between a controller
/// (watchdog thread, signal handler driver, interactive UI) and an analysis
/// running elsewhere.  The analysis polls the token at its iteration
/// checkpoints — the global CPA loop once per iteration, every busy-window
/// fixpoint every few thousand steps (see sched::FixpointLimits::cancel) —
/// and aborts with `AnalysisError(ErrorCode::kCancelled)` when it fires.
/// Cancellation is deliberately an *exception*, not a degraded report:
/// a cancelled run was asked to stop producing results, so graceful-mode
/// fallback substitution does not apply (CpaEngine rethrows kCancelled even
/// in non-strict mode).
///
/// The header is dependency-free so the low-level scheduling layer can poll
/// a token without pulling in the batch-execution subsystem that usually
/// owns it.

#include <atomic>

namespace hem::exec {

/// Who fired the token.  First cancel wins; later calls keep the original
/// reason so escalation paths (watchdog soft-cancel followed by shutdown)
/// stay attributable.
enum class CancelReason {
  kNone = 0,
  kUser,        ///< explicit caller request
  kWatchdog,    ///< per-job wall-clock budget enforced by a monitor thread
  kShutdown,    ///< process is draining for SIGINT/SIGTERM
  kDisconnect,  ///< the client that submitted the job went away (daemon)
};

[[nodiscard]] constexpr const char* to_string(CancelReason r) noexcept {
  switch (r) {
    case CancelReason::kNone:
      return "none";
    case CancelReason::kUser:
      return "user";
    case CancelReason::kWatchdog:
      return "watchdog";
    case CancelReason::kShutdown:
      return "shutdown";
    case CancelReason::kDisconnect:
      return "disconnect";
  }
  return "none";
}

/// Thread-safe one-shot cancellation flag (resettable between job attempts
/// by the single scheduling thread, never while a worker still polls it).
class CancelToken {
 public:
  /// Fire the token.  Idempotent; the first reason sticks.
  void cancel(CancelReason reason = CancelReason::kUser) noexcept {
    int expected = static_cast<int>(CancelReason::kNone);
    reason_.compare_exchange_strong(expected, static_cast<int>(reason),
                                    std::memory_order_relaxed);
    cancelled_.store(true, std::memory_order_release);
  }

  /// Hot-path poll: one relaxed atomic load.
  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Reason of the first cancel, or kNone while the token is unfired.
  /// Reads `cancelled_` (acquire) before `reason_`: the winning CAS on
  /// `reason_` is sequenced before the release store of `cancelled_`, so any
  /// thread that observes the token as cancelled also observes a non-kNone
  /// reason — a reader can never see "cancelled, but for no reason".
  [[nodiscard]] CancelReason reason() const noexcept {
    if (!cancelled_.load(std::memory_order_acquire)) return CancelReason::kNone;
    return static_cast<CancelReason>(reason_.load(std::memory_order_relaxed));
  }

  /// Re-arm for a fresh attempt.  Only safe once no worker polls the token
  /// any more (the batch scheduler resets between joined attempts).
  void reset() noexcept {
    reason_.store(static_cast<int>(CancelReason::kNone), std::memory_order_relaxed);
    cancelled_.store(false, std::memory_order_release);
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<int> reason_{static_cast<int>(CancelReason::kNone)};
};

}  // namespace hem::exec
