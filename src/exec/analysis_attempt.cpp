#include "exec/analysis_attempt.hpp"

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <new>
#include <sstream>

#if !defined(_WIN32)
#include <sys/resource.h>
#endif

#include "core/errors.hpp"
#include "io/csv.hpp"
#include "model/cpa_engine.hpp"
#include "model/engine_snapshot.hpp"
#include "model/textual_config.hpp"

namespace hem::exec {

namespace {

using steady = std::chrono::steady_clock;

/// Split a converged report into merged-CSV rows, reusing the single-run
/// writer so batch/daemon rows are byte-identical to `hemcpa --csv` output.
std::vector<std::string> report_rows(const std::string& label, const cpa::AnalysisReport& rep) {
  std::ostringstream ss;
  io::write_report_csv(ss, rep);
  std::istringstream in(ss.str());
  std::vector<std::string> rows;
  std::string line;
  std::getline(in, line);  // drop the per-run header
  const std::string prefix = io::csv_field(label) + ",";
  while (std::getline(in, line)) rows.push_back(prefix + line);
  return rows;
}

[[nodiscard]] bool transient_code(ErrorCode code) noexcept {
  return code == ErrorCode::kTimeBudget || code == ErrorCode::kIterationLimit ||
         code == ErrorCode::kWindowLimit;
}

/// `inject_fault=oom`: allocate-and-touch until the allocator gives up,
/// then die the way a native out-of-memory process does — bypassing the
/// exception firewall (malloc, not new).  Self-caps RLIMIT_AS so a run
/// without a worker memory cap storms a sandboxed 512 MiB, not the host.
[[noreturn]] void oom_fault() {
#if !defined(_WIN32)
  struct rlimit rl {};
  if (::getrlimit(RLIMIT_AS, &rl) == 0) {
    const auto cap = static_cast<rlim_t>(512) << 20;
    if (rl.rlim_cur == RLIM_INFINITY || rl.rlim_cur > cap) {
      rl.rlim_cur = cap;
      if (rl.rlim_max == RLIM_INFINITY || rl.rlim_max > cap) rl.rlim_max = cap;
      (void)::setrlimit(RLIMIT_AS, &rl);
    }
  }
#endif
  constexpr std::size_t kChunk = std::size_t{16} << 20;
  for (int i = 0; i < (1 << 16); ++i) {
    void* p = std::malloc(kChunk);
    if (p == nullptr) break;
    std::memset(p, 0x5A, kChunk);
  }
  std::abort();
}

/// `inject_fault=stackoverflow`: unbounded non-tail recursion with a live
/// frame, so the guard page (or RLIMIT_STACK) delivers SIGSEGV.
int stack_fault(int depth) {  // NOLINT(misc-no-recursion)
  volatile char pad[4096];
  pad[0] = static_cast<char>(depth);
  if (depth < 0) return pad[0];  // unreachable; defeats tail-call folding
  return stack_fault(depth + 1) + pad[0];
}

/// Test-only crash hook (`option inject_fault=<kind>`): reproduces the
/// ways a native analysis can die, so the process sandbox and the chaos
/// harness exercise real worker deaths.  Kinds are validated at parse
/// time; an empty kind is the production no-op.
void trigger_injected_fault(const std::string& kind) {
  if (kind.empty()) return;
  if (kind == "abort") std::abort();
  if (kind == "segv") {
    (void)std::raise(SIGSEGV);
    std::abort();  // SIGSEGV ignored/blocked: still die
  }
  if (kind == "oom") oom_fault();
  if (kind == "stackoverflow") {
    (void)stack_fault(0);
    std::abort();
  }
  if (kind == "spin") {
    // Burn CPU outside every cancellation point: only SIGKILL (watchdog
    // escalation) or RLIMIT_CPU (SIGXCPU) can end this attempt.
    const auto until = steady::now() + std::chrono::minutes(10);
    while (steady::now() < until) {
    }
    std::abort();
  }
}

}  // namespace

AttemptOutcome run_analysis_attempt(const cpa::ParsedSystem& parsed, const std::string& label,
                                    const AttemptOptions& options, const CancelToken* cancel) {
  AttemptOutcome out;
  const auto t0 = steady::now();
  trigger_injected_fault(parsed.inject_fault);
  try {
    cpa::EngineOptions eopts;
    eopts.strict = options.strict || parsed.strict;
    eopts.check_overload = parsed.check_overload;
    eopts.jobs =
        options.engine_jobs != 0 ? options.engine_jobs : (parsed.jobs != 0 ? parsed.jobs : 1);
    eopts.max_iterations = options.max_iterations;
    if (options.wall_budget_ms > 0) eopts.wall_clock_budget_ms = options.wall_budget_ms;
    if (options.fixpoint_max_iterations > 0)
      eopts.fixpoint_limits.max_iterations = options.fixpoint_max_iterations;
    if (options.fixpoint_max_window > 0)
      eopts.fixpoint_limits.max_window = options.fixpoint_max_window;
    eopts.cancel = cancel;
    eopts.warm = options.warm;

    cpa::CpaEngine engine(parsed.system, eopts);
    cpa::AnalysisReport report = engine.run();
    out.converged = report.converged;
    out.degraded = report.degraded();
    out.warm_seeded = report.stats.warm_seeded;
    if (report.converged) {
      out.ok = true;
      out.rows = report_rows(label, report);
      if (options.make_snapshot)
        out.snapshot = std::make_shared<cpa::EngineSnapshot>(engine.make_snapshot());
    } else {
      // Graceful mode returned fallback bounds without a fixpoint — for a
      // batch that is a failure, but one more global iterations may fix.
      out.transient = true;
      out.message =
          "no global fixpoint within " + std::to_string(eopts.max_iterations) + " iterations";
    }
    if (options.keep_report)
      out.report = std::make_shared<cpa::AnalysisReport>(std::move(report));
  } catch (const AnalysisError& e) {
    if (e.code() == ErrorCode::kCancelled) {
      out.cancelled = true;
      out.cancel_reason = cancel != nullptr ? cancel->reason() : CancelReason::kNone;
    } else {
      out.transient = transient_code(e.code());
    }
    out.message = e.what();
  } catch (const std::bad_alloc&) {
    out.message = "out of memory (std::bad_alloc)";
  } catch (const std::exception& e) {
    out.message = e.what();  // ContractViolation, ...
  }
  out.duration_ms = static_cast<long>(
      std::chrono::duration_cast<std::chrono::milliseconds>(steady::now() - t0).count());
  return out;
}

}  // namespace hem::exec
