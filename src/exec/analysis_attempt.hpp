#pragma once

/// \file analysis_attempt.hpp
/// One analysis attempt behind an exception firewall, shared between the
/// batch runner (`hemcpa --batch`) and the analysis daemon (`hemcpad`).
///
/// Whatever a configuration does — overload in strict mode, a
/// ContractViolation out of the model algebra, std::bad_alloc, a
/// cooperative cancel — comes back as an AttemptOutcome, never as an
/// escaped exception.  Parsing stays with the caller (the batch reads
/// files, the daemon parses request bodies at admission time) so a parse
/// error can be classified there; this layer turns a *parsed* system into
/// classified results.

#include <memory>
#include <string>
#include <vector>

#include "core/event_model.hpp"
#include "exec/cancel.hpp"

namespace hem::cpa {
struct ParsedSystem;
struct AnalysisReport;
struct EngineSnapshot;
}  // namespace hem::cpa

namespace hem::exec {

struct AttemptOptions {
  bool strict = false;      ///< force strict mode (OR-ed with the config's option)
  int engine_jobs = 0;      ///< CpaEngine worker threads; 0 = config option or 1
  int max_iterations = 64;  ///< global engine iterations for this attempt
  long wall_budget_ms = 0;  ///< engine wall-clock budget; 0 = none
  long fixpoint_max_iterations = 0;  ///< busy-window step override; 0 = default
  Time fixpoint_max_window = 0;      ///< busy-window length override; 0 = default
  /// Warm-start snapshot from a previous converged run of a similar system
  /// (see model/engine_snapshot.hpp); nullptr = cold.
  const cpa::EngineSnapshot* warm = nullptr;
  bool keep_report = false;    ///< retain the full AnalysisReport in the outcome
  bool make_snapshot = false;  ///< capture a warm-start snapshot on convergence
};

/// Classified result of one attempt.  Exactly one of ok / cancelled /
/// "failed" (neither flag) holds; `transient` marks failures a retry with
/// bigger budgets may fix.
struct AttemptOutcome {
  bool ok = false;         ///< converged report, rows valid
  bool degraded = false;   ///< report carried fallback bounds
  bool converged = false;  ///< global fixpoint reached
  bool cancelled = false;
  bool transient = false;  ///< retry may succeed with raised budgets
  CancelReason cancel_reason = CancelReason::kNone;
  long duration_ms = 0;
  long warm_seeded = 0;  ///< tasks seeded from the warm snapshot (report stat)
  std::string message;            ///< human-readable failure/cancel detail
  std::vector<std::string> rows;  ///< merged-CSV rows, `label` as config column
  std::shared_ptr<const cpa::AnalysisReport> report;     ///< keep_report only
  std::shared_ptr<const cpa::EngineSnapshot> snapshot;   ///< make_snapshot only
};

/// Run one engine attempt over `parsed`.  `label` becomes the CSV config
/// column (the batch passes the config path, the daemon the submission
/// name).  Never throws.
[[nodiscard]] AttemptOutcome run_analysis_attempt(const cpa::ParsedSystem& parsed,
                                                  const std::string& label,
                                                  const AttemptOptions& options,
                                                  const CancelToken* cancel);

}  // namespace hem::exec
