#pragma once

/// \file compile.hpp
/// Lowering pass from the lazy event-model DAG to flat piecewise curves.
///
/// A converged `EventModel` node is a *what*: the function tuple
/// F = (delta-, delta+) defined by recursive equations over its operand
/// nodes.  Every query walks that DAG — virtual dispatch per node, one
/// atomic memo probe per sample, galloping inversions for the eta
/// functions.  HeRTA (see PAPERS.md) observes that these event bound
/// functions are exactly RTC-style curves, so once a node has converged it
/// can be *compiled* into the flat representation `src/rtc` already has:
///
///   * dense sample arrays dmin[i] = delta-(i+2), dplus[i] = delta+(i+2)
///     answering delta queries with one bounds check and one array read
///     (bit-identical to the DAG — the samples ARE DAG evaluations);
///   * eta+/eta- answered by one binary search over those arrays (the
///     direct inversion of the paper's eqs. (1)/(2), so again identical
///     to the generic galloping derivation);
///   * a compressed `rtc::Curve` pair (lower = delta-, upper = delta+) on
///     the x = n grid, with *provably conservative* affine tails beyond
///     the sampled horizon, for interop with the GPC analysis and for the
///     beyond-horizon conservativeness probes of the model checker.
///
/// Queries beyond the compiled horizon fall back to the lazy DAG, which is
/// trivially exact; inside the horizon the compiled form must be (and is
/// checked to be, AX12/AX13 in verify/model_checker.hpp) bit-identical.
///
/// The compiled form is cached per node alongside the existing
/// `AtomicCurveCache` memo tables: `EventModel::ensure_compiled()` publishes
/// a `CompiledModel` with a first-publication-wins CAS and every base-class
/// query consults it first (see core/event_model.hpp).  See
/// docs/compilation.md for the horizon policy and the conservativeness
/// argument.

#include <memory>
#include <optional>
#include <vector>

#include "core/time.hpp"
#include "rtc/curve.hpp"

namespace hem {
class EventModel;
}  // namespace hem

namespace hem::rtc {

/// Horizon policy for one lowering.  The sample budget always bounds the
/// work; the time horizon (when positive) stops sampling as soon as the
/// curves cover queries up to that interval length, whichever comes first.
struct CompileOptions {
  /// Maximum number of delta samples per function (n ranges over
  /// [2, 2 + max_horizon)).  Bounds both lowering time and memory.
  Count max_horizon = 1024;

  /// Stop sampling delta- once it reaches this interval length (and delta+
  /// once it exceeds it): eta queries for dt <= time_horizon are then
  /// answerable from the arrays.  0 disables the time-based cut
  /// (budget-only).  Typical choice: the analysis' largest busy window or
  /// the system hyperperiod.
  Time time_horizon = 0;
};

/// Flat compiled form of one event-model node.
///
/// Immutable after construction; safe to query from any number of threads
/// with no atomic traffic.  Holds a non-owning pointer to the source node
/// for beyond-horizon fallback — the node owns the CompiledModel (never the
/// other way around), so the pointer outlives `this` by construction.
class CompiledModel {
 public:
  /// Sample `source` up to the horizon and build the flat form.  Queries
  /// the source's (memoising) lazy path, so lowering also warms the DAG
  /// caches it falls back to.
  [[nodiscard]] static std::unique_ptr<const CompiledModel> lower(const EventModel& source,
                                                                  const CompileOptions& options);

  /// Largest n with a compiled delta-(n) sample (>= 1; n <= 1 is the fixed
  /// zero boundary).
  [[nodiscard]] Count delta_min_horizon() const noexcept {
    return static_cast<Count>(dmin_.size()) + 1;
  }

  /// Largest n with a compiled delta+(n) sample.  May be smaller than the
  /// delta- horizon: sampling stops at the first infinite delta+.
  [[nodiscard]] Count delta_plus_horizon() const noexcept {
    return static_cast<Count>(dplus_.size()) + 1;
  }

  /// delta-(n) from the flat samples.  `false` when n is beyond the
  /// compiled horizon (caller falls back to the lazy DAG).
  [[nodiscard]] bool try_delta_min(Count n, Time& out) const noexcept {
    if (n < 2) {
      out = 0;
      return true;
    }
    const auto idx = static_cast<std::size_t>(n - 2);
    if (idx >= dmin_.size()) return false;
    out = dmin_[idx];
    return true;
  }

  /// delta+(n) from the flat samples; `false` beyond the horizon.
  [[nodiscard]] bool try_delta_plus(Count n, Time& out) const noexcept {
    if (n < 2) {
      out = 0;
      return true;
    }
    const auto idx = static_cast<std::size_t>(n - 2);
    if (idx >= dplus_.size()) return false;
    out = dplus_[idx];
    return true;
  }

  /// eta+(dt) by binary search over the delta- samples (paper eq. (1)):
  /// the largest n >= 2 with delta-(n) < dt, or 1 when none.  `false` when
  /// the answer may lie beyond the compiled horizon (every sample < dt).
  [[nodiscard]] bool try_eta_plus(Time dt, Count& out) const noexcept;

  /// eta-(dt) by binary search over the delta+ samples (paper eq. (2)):
  /// the smallest n >= 0 with delta+(n + 2) > dt.  `false` when the answer
  /// may lie beyond the compiled horizon.
  [[nodiscard]] bool try_eta_minus(Time dt, Count& out) const noexcept;

  /// delta- as a compressed lower RTC curve on the x = n grid: exactly the
  /// samples for integer x <= delta_min_horizon(), and beyond it an affine
  /// tail of slope delta-(2) per event — conservative (a valid lower
  /// bound) by superadditivity: delta-(n+1) >= delta-(n) + delta-(2).
  [[nodiscard]] const Curve& lower_curve() const noexcept { return *lower_curve_; }

  /// delta+ as a compressed upper RTC curve on the x = n grid, affine tail
  /// of slope delta+(2) per event — conservative (a valid upper bound) by
  /// subadditivity: delta+(n+1) <= delta+(n) + delta+(2).  Absent when
  /// delta+(2) is unbounded (no finite upper curve exists).
  [[nodiscard]] const Curve* upper_curve() const noexcept {
    return upper_curve_ ? &*upper_curve_ : nullptr;
  }

  /// The node this form was lowered from (non-owning; the node owns us).
  [[nodiscard]] const EventModel& source() const noexcept { return *source_; }

 private:
  CompiledModel(const EventModel& source, std::vector<Time> dmin, std::vector<Time> dplus);

  const EventModel* source_;
  std::vector<Time> dmin_;   ///< dmin_[i] = delta-(i + 2); non-decreasing
  std::vector<Time> dplus_;  ///< dplus_[i] = delta+(i + 2); finite, non-decreasing
  std::optional<Curve> lower_curve_;
  std::optional<Curve> upper_curve_;
};

}  // namespace hem::rtc
