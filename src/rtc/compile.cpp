#include "rtc/compile.hpp"

#include <algorithm>

#include "core/event_model.hpp"

namespace hem::rtc {

namespace {

/// Compress integer-grid samples s[n] (n = 0 .. samples.size()-1) into a
/// breakpoint list.  A point is kept exactly where the per-step difference
/// changes, so every segment spans a run of constant integer step d: the
/// interpolation (x - x0) * (d * len) / len is an exact integer for every
/// integer x, hence `Curve::value` reproduces EVERY dropped sample exactly
/// under both rounding kinds.
std::vector<Curve::Point> compress_grid(const std::vector<Time>& samples) {
  std::vector<Curve::Point> pts;
  pts.push_back({0, samples.front()});
  const std::size_t last = samples.size() - 1;
  for (std::size_t n = 1; n < last; ++n) {
    const Time before = samples[n] - samples[n - 1];
    const Time after = samples[n + 1] - samples[n];
    if (before != after) pts.push_back({static_cast<Time>(n), samples[n]});
  }
  if (last > 0) pts.push_back({static_cast<Time>(last), samples[last]});
  return pts;
}

/// delta samples on the x = n grid including the fixed n < 2 boundary:
/// s[0] = s[1] = 0, s[n] = flat[n - 2].  Truncated to the finite prefix
/// (curves carry finite coordinates; infinite samples stay answerable from
/// the flat arrays and the DAG fallback).
std::vector<Time> grid_samples(const std::vector<Time>& flat) {
  std::vector<Time> s{0, 0};
  for (const Time v : flat) {
    if (is_infinite(v)) break;
    s.push_back(v);
  }
  return s;
}

}  // namespace

std::unique_ptr<const CompiledModel> CompiledModel::lower(const EventModel& source,
                                                          const CompileOptions& options) {
  const Count budget = std::max<Count>(1, options.max_horizon);

  // Sample the lazy DAG; these evaluations double as warm-up of the memo
  // tables the compiled form falls back to beyond the horizon.
  std::vector<Time> dmin;
  dmin.reserve(static_cast<std::size_t>(std::min<Count>(budget, 4096)));
  for (Count i = 0; i < budget; ++i) {
    const Time v = source.delta_min_lazy(i + 2);
    dmin.push_back(v);
    // Past these samples every answer is either infinite (exact via the
    // fallback) or beyond the requested eta coverage.
    if (is_infinite(v)) break;
    if (options.time_horizon > 0 && v >= options.time_horizon) break;
  }

  std::vector<Time> dplus;
  dplus.reserve(dmin.capacity());
  for (Count i = 0; i < budget; ++i) {
    const Time v = source.delta_plus_lazy(i + 2);
    dplus.push_back(v);
    if (is_infinite(v)) break;
    if (options.time_horizon > 0 && v > options.time_horizon) break;
  }

  return std::unique_ptr<const CompiledModel>(
      new CompiledModel(source, std::move(dmin), std::move(dplus)));
}

CompiledModel::CompiledModel(const EventModel& source, std::vector<Time> dmin,
                             std::vector<Time> dplus)
    : source_(&source), dmin_(std::move(dmin)), dplus_(std::move(dplus)) {
  // Lower curve (delta- on the x = n grid).  Tail slope delta-(2) per
  // event: superadditivity gives delta-(n + 1) >= delta-(n) + delta-(2),
  // so extending the last sample at that rate never overestimates.
  {
    const std::vector<Time> s = grid_samples(dmin_);
    Time tail_dy = s.size() > 2 ? s[2] : 0;  // delta-(2), if finite
    if (is_infinite(tail_dy)) tail_dy = 0;
    lower_curve_.emplace(CurveKind::kLower, compress_grid(s), tail_dy, 1);
  }

  // Upper curve (delta+).  Tail slope delta+(2) per event: subadditivity
  // gives delta+(n + 1) <= delta+(n) + delta+(2), so the tail never
  // underestimates — but only when every sampled value (and delta+(2)
  // itself) is finite; otherwise no finite upper curve exists.
  {
    const std::vector<Time> s = grid_samples(dplus_);
    const bool all_finite = s.size() == dplus_.size() + 2;
    if (all_finite && s.size() > 2) {
      upper_curve_.emplace(CurveKind::kUpper, compress_grid(s), s[2], 1);
    }
  }
}

bool CompiledModel::try_eta_plus(Time dt, Count& out) const noexcept {
  if (dt <= 0) {
    out = 0;
    return true;
  }
  // eq. (1): the largest n >= 2 with delta-(n) < dt, or 1 when delta-(2)
  // is already >= dt.  `it` is the first sample >= dt; when no sample
  // reaches dt the answer may lie beyond the horizon — fall back.
  const auto it = std::lower_bound(dmin_.begin(), dmin_.end(), dt);
  if (it == dmin_.end()) return false;
  const auto idx = static_cast<std::size_t>(it - dmin_.begin());
  out = idx == 0 ? 1 : static_cast<Count>(idx) + 1;  // sample idx holds n = idx + 2
  return true;
}

bool CompiledModel::try_eta_minus(Time dt, Count& out) const noexcept {
  if (dt <= 0) {
    out = 0;
    return true;
  }
  // eq. (2): the smallest n >= 0 with delta+(n + 2) > dt.
  const auto it = std::upper_bound(dplus_.begin(), dplus_.end(), dt);
  if (it == dplus_.end()) return false;
  out = static_cast<Count>(it - dplus_.begin());
  return true;
}

}  // namespace hem::rtc
