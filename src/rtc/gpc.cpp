#include "rtc/gpc.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/errors.hpp"

namespace hem::rtc {

Curve upper_arrival_from(const EventModel& model, Count n_max) {
  if (n_max < 3) throw std::invalid_argument("upper_arrival_from: n_max too small");
  std::vector<Curve::Point> pts;
  pts.push_back({0, 1});  // any non-empty window may hold one event
  for (Count n = 2; n <= n_max; ++n) {
    const Time x = model.delta_min(n);
    if (is_infinite(x)) break;  // finite stream: saturate
    if (x == pts.back().x) {
      pts.back().y = n;  // simultaneous events: lift the point
    } else {
      pts.push_back({x, n});
    }
  }
  // A model that keeps delta-(n) == 0 all the way to n_max admits an
  // unbounded simultaneous burst: no piecewise-linear curve with a finite
  // tail slope can upper-bound its arrivals.  The old behaviour silently
  // constructed a FLAT curve at y = n_max here — an unsound bound that the
  // stricter Curve contract audit flushed out.
  if (pts.size() == 1 && pts.back().y > 1 && pts.back().y >= n_max)
    throw AnalysisError("upper_arrival_from: unbounded burst (delta-(n) = 0 up to n_max)");
  // Tail slope from the last stretch of the curve (conservatively steep:
  // use the shortest span per event over the trailing window).
  Time dy = 0, dx = 1;
  if (pts.size() >= 2) {
    const std::size_t take = std::min<std::size_t>(pts.size() - 1, 8);
    const auto& a = pts[pts.size() - 1 - take];
    const auto& b = pts.back();
    dy = b.y - a.y;
    dx = b.x - a.x;
  }
  if (dy == 0) {  // degenerate (finite or single-point curve): flat tail
    dy = 0;
    dx = 1;
  }
  return Curve(CurveKind::kUpper, std::move(pts), dy, dx);
}

Curve full_service() { return Curve(CurveKind::kLower, {{0, 0}}, 1, 1); }

namespace {

Curve scaled(const Curve& c, Time factor) {
  std::vector<Curve::Point> pts;
  for (const auto& p : c.points()) pts.push_back({p.x, sat_mul(p.y, factor)});
  return Curve(c.kind(), std::move(pts), sat_mul(c.final_dy(), factor), c.final_dx());
}

/// Service curve in EVENT units: floor(beta / wcet) - conservative for a
/// lower service curve.
Curve scaled_down(const Curve& c, Time divisor) {
  std::vector<Curve::Point> pts;
  Time prev = 0;
  for (const auto& p : c.points()) {
    const Time y = std::max(prev, p.y / divisor);
    pts.push_back({p.x, y});
    prev = y;
  }
  return Curve(c.kind(), std::move(pts), c.final_dy(), sat_mul(c.final_dx(), divisor));
}

}  // namespace

GpcResult greedy_processing(const Curve& alpha_upper, const Curve& beta_lower, Time wcet) {
  if (wcet <= 0) throw std::invalid_argument("greedy_processing: wcet must be positive");
  const Curve demand = scaled(alpha_upper, wcet);

  GpcResult result{0,
                   0,
                   0,
                   Curve::zero(CurveKind::kUpper),
                   Curve::zero(CurveKind::kLower)};
  result.delay = demand.max_horizontal_deviation(beta_lower);
  result.backlog_time = demand.max_vertical_deviation(beta_lower);
  result.backlog_events = ceil_div(result.backlog_time, wcet);
  result.remaining_service = beta_lower.minus_clamped(demand);
  // Output arrival: the exact GPC bound alpha ⊘ (beta in event units),
  // intersected with the simpler shift-by-delay bound (both are sound).
  const Curve beta_events = scaled_down(beta_lower, wcet);
  result.output_arrival = alpha_upper.min_plus_deconv(beta_events)
                              .min_with(alpha_upper.shifted_left(result.delay));
  return result;
}

std::vector<RtcTaskResult> analyze_fp_rtc(const std::vector<RtcTask>& tasks) {
  if (tasks.empty()) throw std::invalid_argument("analyze_fp_rtc: empty task set");
  Curve beta = full_service();
  std::vector<RtcTaskResult> results;
  for (const auto& t : tasks) {
    const GpcResult r = greedy_processing(t.alpha, beta, t.wcet);
    results.push_back(RtcTaskResult{t.name, r.delay, r.backlog_events});
    beta = r.remaining_service;
  }
  return results;
}

}  // namespace hem::rtc
