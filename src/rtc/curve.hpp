#pragma once

/// \file curve.hpp
/// Piecewise-linear curves for Real-Time-Calculus style analysis - the
/// second compositional approach the paper discusses (Thiele et al. [11],
/// network calculus [3]).
///
/// A curve is a non-decreasing piecewise-linear function on Delta >= 0,
/// represented by breakpoints (x_i, y_i) with integer coordinates and a
/// final slope (rational, dy/dx) extending the last breakpoint to
/// infinity.  Upper curves (arrival alpha^u, service beta^u) are evaluated
/// with CEILING interpolation, lower curves (alpha^l, beta^l) with FLOOR -
/// both conservative directions.
///
/// Operations cover what the greedy-processing-component analysis needs:
/// evaluation, vertical/horizontal deviation (backlog/delay bounds),
/// curve arithmetic (sum, clamped difference), min/max envelopes, and
/// horizontal shift.

#include <string>
#include <vector>

#include "core/time.hpp"

namespace hem::rtc {

/// Interpolation/rounding direction of a curve.
enum class CurveKind { kUpper, kLower };

class Curve {
 public:
  struct Point {
    Time x;
    Time y;
  };

  /// Precondition contract (every violation throws std::invalid_argument
  /// with a POSITIONED message naming the offending index and values):
  ///
  ///   * at least one point, and points[0].x == 0;
  ///   * x strictly increasing — duplicate x is rejected as such (a jump
  ///     must be expressed by lifting the point's y, not by stacking two
  ///     points on one x);
  ///   * y non-decreasing, all coordinates non-negative and finite;
  ///   * final_dx > 0 and final_dy >= 0 (a curve extends to infinity with
  ///     a well-defined non-negative rational slope; "no growth" is
  ///     dy = 0, never dx <= 0).
  ///
  /// \param points       breakpoints, strictly increasing x, non-decreasing
  ///                     y; implicitly prefixed by (0, y0) = first point
  ///                     (whose x must be 0).
  /// \param final_dy/dx  slope after the last breakpoint (dx > 0, dy >= 0).
  Curve(CurveKind kind, std::vector<Point> points, Time final_dy, Time final_dx);

  /// The zero curve.
  [[nodiscard]] static Curve zero(CurveKind kind);

  /// Affine curve: y = burst + (dy/dx) * x for x >= 0, so value(0) ==
  /// burst (the leaky-bucket arrival curve when kind == kUpper).  The
  /// event-model convention eta(0) = 0 lives in the model layer: a Curve
  /// carries the burst at x = 0 so that evaluation stays monotone and
  /// breakpoint-exact; callers needing the eta convention query x > 0
  /// only.
  [[nodiscard]] static Curve affine(CurveKind kind, Time burst, Time dy, Time dx);

  /// Rate-latency service curve: y = max(0, (dy/dx) * (x - latency)).
  [[nodiscard]] static Curve rate_latency(CurveKind kind, Time latency, Time dy, Time dx);

  [[nodiscard]] CurveKind kind() const noexcept { return kind_; }
  [[nodiscard]] const std::vector<Point>& points() const noexcept { return points_; }
  [[nodiscard]] Time final_dy() const noexcept { return final_dy_; }
  [[nodiscard]] Time final_dx() const noexcept { return final_dx_; }

  /// Evaluate at x >= 0 (rounded according to the curve kind).
  [[nodiscard]] Time value(Time x) const;

  /// Smallest x with value(x) >= y (kTimeInfinity if never reached).
  [[nodiscard]] Time inverse(Time y) const;

  /// Long-run slope as a double (for overload checks).
  [[nodiscard]] double long_run_rate() const;

  /// Point-wise sum.
  [[nodiscard]] Curve plus(const Curve& other) const;

  /// Point-wise max(0, this - other); the result is evaluated with THIS
  /// curve's kind.
  [[nodiscard]] Curve minus_clamped(const Curve& other) const;

  /// Point-wise minimum / maximum envelope.
  [[nodiscard]] Curve min_with(const Curve& other) const;
  [[nodiscard]] Curve max_with(const Curve& other) const;

  /// The curve shifted left: x -> value(x + shift) (used for output
  /// arrival bounds alpha'(D) = alpha(D + delay)).
  [[nodiscard]] Curve shifted_left(Time shift) const;

  /// Maximum vertical distance max_x (this(x) - other(x)); clamped at 0.
  /// Requires both long-run rates to make the sup finite
  /// (throws AnalysisError otherwise).  This is the BACKLOG bound when
  /// `this` is an upper arrival and `other` a lower service curve.
  /// Exact at every breakpoint; between breakpoints the ceiling/floor
  /// interpolation can lift the true difference by one unit, which the
  /// bound includes exactly when some interval can round (see the rounding
  /// guard in the implementation) — always the conservative direction.
  [[nodiscard]] Time max_vertical_deviation(const Curve& other) const;

  /// Maximum horizontal distance: sup over y of
  /// (smallest x2 with other(x2) >= y) - (smallest x1 with this(x1) >= y).
  /// This is the DELAY bound when `this` is an upper arrival curve and
  /// `other` a lower service curve.
  [[nodiscard]] Time max_horizontal_deviation(const Curve& other) const;

  /// Min-plus convolution (this ⊗ other)(x) = min_{0<=l<=x} this(l) +
  /// other(x - l).  Exact for the piecewise-linear class up to the
  /// per-evaluation rounding; breakpoints are the pairwise sums of the
  /// operands' breakpoints.
  [[nodiscard]] Curve min_plus_conv(const Curve& other) const;

  /// Min-plus deconvolution (this ⊘ other)(x) = sup_{l>=0} this(x + l) -
  /// other(l), clamped at 0.  The exact output-arrival bound of a greedy
  /// component: alpha' = alpha ⊘ beta.
  /// \throws AnalysisError when this curve's long-run rate exceeds the
  ///         other's (the sup is unbounded).
  [[nodiscard]] Curve min_plus_deconv(const Curve& other) const;

  [[nodiscard]] std::string describe() const;

 private:
  /// x-coordinates where either curve breaks (merged grid), up to and a bit
  /// beyond the last breakpoint of both.
  [[nodiscard]] std::vector<Time> merged_grid(const Curve& other) const;

  CurveKind kind_;
  std::vector<Point> points_;  ///< sorted by x, points_[0].x == 0
  Time final_dy_;
  Time final_dx_;
};

}  // namespace hem::rtc
