#include "rtc/curve.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "core/errors.hpp"

namespace hem::rtc {

namespace {

/// Divide with the rounding direction of the curve kind.
Time rounded_div(Time num, Time den, CurveKind kind) {
  if (num <= 0) return 0;
  return kind == CurveKind::kUpper ? ceil_div(num, den) : num / den;
}

}  // namespace

namespace {

/// Positioned constructor-violation message: names the offending index and
/// values so a bad call site is identifiable from the exception alone.
[[noreturn]] void reject(const std::string& what) { throw std::invalid_argument(what); }

}  // namespace

Curve::Curve(CurveKind kind, std::vector<Point> points, Time final_dy, Time final_dx)
    : kind_(kind), points_(std::move(points)), final_dy_(final_dy), final_dx_(final_dx) {
  if (points_.empty()) reject("Curve: needs at least one point");
  if (points_.front().x != 0) {
    std::ostringstream os;
    os << "Curve: first point must be at x=0 (points[0].x = " << points_.front().x << ")";
    reject(os.str());
  }
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (points_[i].x == points_[i - 1].x) {
      std::ostringstream os;
      os << "Curve: duplicate x (points[" << i - 1 << "].x = points[" << i
         << "].x = " << points_[i].x << ")";
      reject(os.str());
    }
    if (points_[i].x < points_[i - 1].x) {
      std::ostringstream os;
      os << "Curve: x must be strictly increasing (points[" << i << "].x = " << points_[i].x
         << " < points[" << i - 1 << "].x = " << points_[i - 1].x << ")";
      reject(os.str());
    }
    if (points_[i].y < points_[i - 1].y) {
      std::ostringstream os;
      os << "Curve: y must be non-decreasing (points[" << i << "].y = " << points_[i].y
         << " < points[" << i - 1 << "].y = " << points_[i - 1].y << ")";
      reject(os.str());
    }
  }
  if (final_dx_ <= 0 || final_dy_ < 0) {
    std::ostringstream os;
    os << "Curve: final slope must be dy >= 0 over dx > 0 (got dy = " << final_dy_
       << ", dx = " << final_dx_ << ")";
    reject(os.str());
  }
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (points_[i].x < 0 || points_[i].y < 0) {
      std::ostringstream os;
      os << "Curve: negative coordinates (points[" << i << "] = (" << points_[i].x << ", "
         << points_[i].y << "))";
      reject(os.str());
    }
  }
}

Curve Curve::zero(CurveKind kind) { return Curve(kind, {{0, 0}}, 0, 1); }

Curve Curve::affine(CurveKind kind, Time burst, Time dy, Time dx) {
  if (burst < 0) throw std::invalid_argument("Curve::affine: negative burst");
  return Curve(kind, {{0, burst}}, dy, dx);
}

Curve Curve::rate_latency(CurveKind kind, Time latency, Time dy, Time dx) {
  if (latency < 0) throw std::invalid_argument("Curve::rate_latency: negative latency");
  if (latency == 0) return Curve(kind, {{0, 0}}, dy, dx);
  return Curve(kind, {{0, 0}, {latency, 0}}, dy, dx);
}

Time Curve::value(Time x) const {
  if (x < 0) throw std::invalid_argument("Curve::value: negative x");
  // Find the last breakpoint with px <= x.
  std::size_t i = points_.size() - 1;
  if (x < points_.back().x) {
    // Binary search for the segment.
    std::size_t lo = 0, hi = points_.size() - 1;
    while (lo + 1 < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (points_[mid].x <= x)
        lo = mid;
      else
        hi = mid;
    }
    i = lo;
    const Point& a = points_[i];
    const Point& b = points_[i + 1];
    return a.y + rounded_div((x - a.x) * (b.y - a.y), b.x - a.x, kind_);
  }
  const Point& last = points_.back();
  return sat_add(last.y, rounded_div(sat_mul(final_dy_, x - last.x), final_dx_, kind_));
}

Time Curve::inverse(Time y) const {
  if (y <= points_.front().y) return 0;
  // Unreachable if the curve saturates below y.
  const Point& last = points_.back();
  if (y > last.y && final_dy_ == 0) return kTimeInfinity;
  // Galloping + binary search on the monotone value().
  Time lo = 0;
  Time hi = std::max<Time>(1, last.x);
  while (value(hi) < y) {
    lo = hi;
    hi = sat_mul(hi, 2);
    if (is_infinite(hi)) return kTimeInfinity;
  }
  while (lo + 1 < hi) {
    const Time mid = lo + (hi - lo) / 2;
    if (value(mid) < y)
      lo = mid;
    else
      hi = mid;
  }
  return value(lo) >= y ? lo : hi;
}

double Curve::long_run_rate() const {
  return static_cast<double>(final_dy_) / static_cast<double>(final_dx_);
}

std::vector<Time> Curve::merged_grid(const Curve& other) const {
  std::vector<Time> xs;
  for (const auto& p : points_) xs.push_back(p.x);
  for (const auto& p : other.points_) xs.push_back(p.x);
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
  return xs;
}

namespace {

/// Build a curve through the sampled values with the combined final slope.
Curve from_samples(CurveKind kind, const std::vector<Time>& xs,
                   const std::vector<Time>& ys, Time final_dy, Time final_dx) {
  std::vector<Curve::Point> pts;
  Time prev_y = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const Time y = std::max(ys[i], prev_y);  // enforce monotonicity under rounding
    pts.push_back({xs[i], y});
    prev_y = y;
  }
  return Curve(kind, std::move(pts), final_dy, final_dx);
}

/// Breakpoints of both curves plus (a - b) sign-crossing candidates, both
/// between breakpoints and in the affine tails - required so that clamped
/// differences and envelopes get a breakpoint wherever the winner changes.
std::vector<Time> refined_grid(const Curve& a, const Curve& b) {
  std::vector<Time> xs;
  for (const auto& p : a.points()) xs.push_back(p.x);
  for (const auto& p : b.points()) xs.push_back(p.x);
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());

  std::vector<Time> extra;
  // Interior crossings (linear estimate, bracketed by a neighbour point).
  for (std::size_t i = 0; i + 1 < xs.size(); ++i) {
    const Time d0 = a.value(xs[i]) - b.value(xs[i]);
    const Time d1 = a.value(xs[i + 1]) - b.value(xs[i + 1]);
    if ((d0 < 0) != (d1 < 0) && xs[i + 1] - xs[i] > 1) {
      const Time span = xs[i + 1] - xs[i];
      const Time abs0 = d0 < 0 ? -d0 : d0;
      const Time abs1 = d1 < 0 ? -d1 : d1;
      const Time cross = xs[i] + span * abs0 / (abs0 + abs1);
      for (const Time c : {cross - 1, cross, cross + 1})
        if (c > xs[i] && c < xs[i + 1]) extra.push_back(c);
    }
  }
  // Tail crossing: beyond the last breakpoint both curves are affine with
  // slopes dya/dxa and dyb/dxb; insert the point where the difference
  // changes sign (if it does).
  const Time xl = xs.back();
  const Time d0 = a.value(xl) - b.value(xl);
  const Time num = a.final_dy() * b.final_dx() - b.final_dy() * a.final_dx();  // slope sign
  const Time den = a.final_dx() * b.final_dx();
  if (d0 < 0 && num > 0) {
    const Time cross = xl + ceil_div(-d0 * den, num);
    extra.push_back(cross);
    extra.push_back(cross + 1);
    if (cross > xl + 1) extra.push_back(cross - 1);
  } else if (d0 > 0 && num < 0) {
    const Time cross = xl + ceil_div(d0 * den, -num);
    extra.push_back(cross);
    extra.push_back(cross + 1);
    if (cross > xl + 1) extra.push_back(cross - 1);
  }
  xs.insert(xs.end(), extra.begin(), extra.end());
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
  return xs;
}

}  // namespace

Curve Curve::plus(const Curve& other) const {
  const auto xs = merged_grid(other);
  std::vector<Time> ys;
  for (const Time x : xs) ys.push_back(sat_add(value(x), other.value(x)));
  const Time dy = final_dy_ * other.final_dx_ + other.final_dy_ * final_dx_;
  const Time dx = final_dx_ * other.final_dx_;
  return from_samples(kind_, xs, ys, dy, dx);
}

Curve Curve::minus_clamped(const Curve& other) const {
  const auto xs = refined_grid(*this, other);
  std::vector<Time> ys;
  for (const Time x : xs) ys.push_back(std::max<Time>(0, value(x) - other.value(x)));
  const Time dy =
      std::max<Time>(0, final_dy_ * other.final_dx_ - other.final_dy_ * final_dx_);
  const Time dx = final_dx_ * other.final_dx_;
  return from_samples(kind_, xs, ys, dy, dx);
}

namespace {

Curve envelope(const Curve& a, const Curve& b, bool take_min) {
  const auto xs = refined_grid(a, b);
  std::vector<Time> ys;
  for (const Time x : xs)
    ys.push_back(take_min ? std::min(a.value(x), b.value(x))
                          : std::max(a.value(x), b.value(x)));
  // Final slope: the envelope's tail follows the smaller (min) or larger
  // (max) long-run rate.
  const Time ra = a.final_dy() * b.final_dx();
  const Time rb = b.final_dy() * a.final_dx();
  const bool use_a = take_min ? (ra <= rb) : (ra >= rb);
  const Time dy = use_a ? a.final_dy() : b.final_dy();
  const Time dx = use_a ? a.final_dx() : b.final_dx();
  std::vector<Curve::Point> pts;
  Time prev = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const Time y = std::max(ys[i], prev);
    pts.push_back({xs[i], y});
    prev = y;
  }
  return Curve(a.kind(), std::move(pts), dy, dx);
}

}  // namespace

Curve Curve::min_with(const Curve& other) const { return envelope(*this, other, true); }

Curve Curve::max_with(const Curve& other) const { return envelope(*this, other, false); }

Curve Curve::shifted_left(Time shift) const {
  if (shift < 0) throw std::invalid_argument("Curve::shifted_left: negative shift");
  if (shift == 0) return *this;
  std::vector<Point> pts;
  pts.push_back({0, value(shift)});
  for (const auto& p : points_) {
    if (p.x > shift) pts.push_back({p.x - shift, std::max(p.y, pts.back().y)});
  }
  return Curve(kind_, std::move(pts), final_dy_, final_dx_);
}

namespace {

/// True when `c` interpolates with a fractional slope anywhere strictly
/// inside the interval starting at grid point `x0` — i.e. its rounded
/// evaluation there can deviate from the exact linear value.  `x0` is a
/// merged-grid point, so the interval lies within ONE segment of `c` (or
/// its affine tail).
bool rounds_inside(const Curve& c, Time x0) {
  const auto& pts = c.points();
  if (x0 >= pts.back().x) return c.final_dy() % c.final_dx() != 0;
  std::size_t lo = 0, hi = pts.size() - 1;
  while (lo + 1 < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (pts[mid].x <= x0)
      lo = mid;
    else
      hi = mid;
  }
  const Time dy = pts[lo + 1].y - pts[lo].y;
  const Time dx = pts[lo + 1].x - pts[lo].x;
  return dy % dx != 0;
}

}  // namespace

Time Curve::max_vertical_deviation(const Curve& other) const {
  // Finite only if our long-run rate does not exceed the other's.
  if (final_dy_ * other.final_dx_ > other.final_dy_ * final_dx_)
    throw AnalysisError("Curve: vertical deviation unbounded (rate exceeds service)");
  const auto xs = merged_grid(other);
  Time best = 0;
  for (const Time x : xs) best = std::max(best, value(x) - other.value(x));

  // Rounding sweep.  The grid difference is exact AT every breakpoint, but
  // between breakpoints (and in the affine tail) the ceiling interpolation
  // of `this` and the floor interpolation of `other` each deviate from the
  // exact linear value by strictly less than 1 — so the rounded difference
  // can exceed the grid maximum by exactly one unit (e.g. two parallel
  // curves of slope 1/2: grid difference 0, but ceil(x/2) - floor(x/2) = 1
  // at every odd x).  The old implementation probed only the grid and
  // UNDERESTIMATED the sup in such cases.  Sweep the interior of every
  // interval where either operand actually rounds; where a sweep would
  // exceed the budget, fall back to the provable +1 slack (the exact
  // linear difference never exceeds the grid maximum — linear per interval
  // with all breakpoints on the grid, non-increasing in the tail by the
  // rate check — so sup <= grid max + 1 in integers).
  constexpr Time kScanLimit = Time{1} << 16;
  bool guard = false;
  for (std::size_t i = 0; i + 1 < xs.size(); ++i) {
    const Time x0 = xs[i];
    const Time x1 = xs[i + 1];
    if (x1 - x0 <= 1) continue;  // no interior integer, rounding cannot manifest
    if (!rounds_inside(*this, x0) && !rounds_inside(other, x0)) continue;
    if (x1 - x0 - 1 > kScanLimit) {
      guard = true;
      continue;
    }
    for (Time x = x0 + 1; x < x1; ++x) best = std::max(best, value(x) - other.value(x));
  }
  const Time xl = xs.back();
  if (rounds_inside(*this, xl) || rounds_inside(other, xl)) {
    // Tail: equal long-run rates make the rounded difference periodic in
    // lcm(final_dx) (a full period scanned = exact); a strictly smaller
    // rate makes the linear difference decrease, so once the rounded
    // difference (an upper bound on the linear one) falls 2 below the
    // running max, nothing later can beat it.
    const bool equal_rates = final_dy_ * other.final_dx_ == other.final_dy_ * final_dx_;
    Time period = 0;
    if (equal_rates) {
      const Time g = std::gcd(final_dx_, other.final_dx_);
      period = final_dx_ / g * other.final_dx_;
    }
    bool settled = false;
    for (Time x = xl + 1; x <= sat_add(xl, kScanLimit); ++x) {
      const Time d = value(x) - other.value(x);
      best = std::max(best, d);
      if (equal_rates ? (x - xl >= period) : (d + 2 <= best)) {
        settled = true;
        break;
      }
    }
    if (!settled) guard = true;
  }
  return guard ? best + 1 : best;
}

Time Curve::max_horizontal_deviation(const Curve& other) const {
  if (final_dy_ * other.final_dx_ > other.final_dy_ * final_dx_)
    throw AnalysisError("Curve: horizontal deviation unbounded (rate exceeds service)");
  // Candidates: our breakpoints, x-positions where our value crosses the
  // other's breakpoint ordinates (and the level just above each — the
  // other's inverse jumps BETWEEN integer levels, so a plateau's worst
  // backlog of demand sits one event above its ordinate), and one tail
  // point.  Each candidate is probed together with both neighbours: the
  // rounded value() can step between breakpoints, so the widest horizontal
  // gap may start one step off a breakpoint.
  std::vector<Time> candidates;
  for (const auto& p : points_) candidates.push_back(p.x);
  for (const auto& p : other.points_) {
    for (const Time level : {p.y, sat_add(p.y, 1)}) {
      const Time x = inverse(level);
      if (!is_infinite(x)) candidates.push_back(x);
    }
  }
  candidates.push_back(std::max(points_.back().x, other.points_.back().x) * 2 + 1);
  const std::size_t seeded = candidates.size();
  for (std::size_t i = 0; i < seeded; ++i) {
    if (candidates[i] > 0) candidates.push_back(candidates[i] - 1);
    candidates.push_back(sat_add(candidates[i], 1));
  }
  Time best = 0;
  for (const Time x : candidates) {
    if (is_infinite(x)) continue;  // saturated +1 neighbour of the tail probe
    const Time y = value(x);
    const Time x2 = other.inverse(y);
    if (is_infinite(x2))
      throw AnalysisError("Curve: horizontal deviation unbounded (service saturates)");
    if (x2 > x) best = std::max(best, x2 - x);
  }
  return best;
}

Curve Curve::min_plus_conv(const Curve& other) const {
  // Breakpoints of the convolution are sums of operand breakpoints.
  std::vector<Time> xs;
  for (const auto& pa : points_)
    for (const auto& pb : other.points_) xs.push_back(pa.x + pb.x);
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());

  // Split-candidate lambdas for a given x: own breakpoints and x minus the
  // other's breakpoints (the min of a PWL objective sits at a breakpoint of
  // either piece).
  const auto conv_at = [&](Time x) {
    Time best = kTimeInfinity;
    for (const auto& pa : points_) {
      if (pa.x > x) break;
      best = std::min(best, sat_add(value(pa.x), other.value(x - pa.x)));
    }
    for (const auto& pb : other.points_) {
      if (pb.x > x) break;
      best = std::min(best, sat_add(value(x - pb.x), other.value(pb.x)));
    }
    return best;
  };

  std::vector<Time> ys;
  for (const Time x : xs) ys.push_back(conv_at(x));
  // Tail: the flatter operand wins.
  const bool use_self = final_dy_ * other.final_dx_ <= other.final_dy_ * final_dx_;
  const Time dy = use_self ? final_dy_ : other.final_dy_;
  const Time dx = use_self ? final_dx_ : other.final_dx_;
  return from_samples(kind_, xs, ys, dy, dx);
}

Curve Curve::min_plus_deconv(const Curve& other) const {
  if (final_dy_ * other.final_dx_ > other.final_dy_ * final_dx_)
    throw AnalysisError("Curve: deconvolution unbounded (rate exceeds the deconvolver's)");
  // Output breakpoints: our breakpoints shifted by the other's breakpoints.
  std::vector<Time> xs{0};
  for (const auto& pa : points_) {
    xs.push_back(pa.x);
    for (const auto& pb : other.points_)
      if (pa.x > pb.x) xs.push_back(pa.x - pb.x);
  }
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());

  // Supremum candidates: the other's breakpoints, our breakpoints shifted
  // back, and one tail sample (the sup of an eventually-non-increasing PWL
  // objective sits at such a point).
  const Time tail = std::max(points_.back().x, other.points_.back().x) * 2 + 1;
  const auto deconv_at = [&](Time x) {
    Time best = 0;
    const auto probe = [&](Time l) {
      if (l < 0) return;
      best = std::max(best, value(sat_add(x, l)) - other.value(l));
    };
    for (const auto& pb : other.points_) probe(pb.x);
    for (const auto& pa : points_) probe(pa.x - x);
    probe(tail);
    return best;
  };

  std::vector<Time> ys;
  for (const Time x : xs) ys.push_back(deconv_at(x));
  return from_samples(kind_, xs, ys, final_dy_, final_dx_);
}

std::string Curve::describe() const {
  std::ostringstream os;
  os << (kind_ == CurveKind::kUpper ? "upper" : "lower") << "PWL(" << points_.size()
     << " pts, tail " << final_dy_ << "/" << final_dx_ << ")";
  return os.str();
}

}  // namespace hem::rtc
