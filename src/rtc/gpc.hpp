#pragma once

/// \file gpc.hpp
/// Greedy Processing Component - the building block of Real-Time-Calculus
/// performance analysis (Thiele et al., the paper's reference [11]).
///
/// A GPC processes one event stream (upper arrival curve alpha, events) on
/// a resource with lower service curve beta (time units), each event
/// costing up to `wcet` units:
///
///   delay    <= h( wcet * alpha, beta )      (max horizontal deviation)
///   backlog  <= v( wcet * alpha, beta )      (max vertical deviation)
///   beta'    =  sup-hull( beta - wcet*alpha )   (remaining service)
///   alpha'   =  alpha shifted left by the delay (output stream bound)
///
/// `analyze_fp_rtc` chains GPCs down a fixed-priority resource: each task
/// consumes service, the remainder serves the next priority level - the
/// RTC equivalent of the busy-window SPP analysis, used as a comparison
/// baseline (bench_ablation_rtc).

#include <string>
#include <vector>

#include "core/event_model.hpp"
#include "rtc/curve.hpp"

namespace hem::rtc {

/// Conservative upper arrival curve of an event model: the piecewise-linear
/// envelope through the points (delta-(n), n) for n = 2..n_max, extended
/// with the measured long-run rate.
[[nodiscard]] Curve upper_arrival_from(const EventModel& model, Count n_max = 64);

/// Full (unit-rate) service of a dedicated resource.
[[nodiscard]] Curve full_service();

struct GpcResult {
  Time delay = 0;           ///< response-time bound per event
  Time backlog_time = 0;    ///< pending work bound (time units)
  Count backlog_events = 0; ///< pending activations bound
  Curve output_arrival;     ///< upper arrival curve of the output stream
  Curve remaining_service;  ///< lower service curve left for lower priority
};

/// Analyse one greedy processing component.
/// \throws AnalysisError if the demand rate exceeds the service rate.
[[nodiscard]] GpcResult greedy_processing(const Curve& alpha_upper, const Curve& beta_lower,
                                          Time wcet);

/// One task of a fixed-priority RTC analysis (ordered highest first).
struct RtcTask {
  std::string name;
  Curve alpha;  ///< upper arrival curve (events)
  Time wcet;
};

struct RtcTaskResult {
  std::string name;
  Time delay = 0;
  Count backlog_events = 0;
};

/// Chain GPCs down the priority order on one dedicated resource.
[[nodiscard]] std::vector<RtcTaskResult> analyze_fp_rtc(const std::vector<RtcTask>& tasks);

}  // namespace hem::rtc
