#pragma once

/// \file textual_config.hpp
/// Plain-text system description format and parser, so systems can be
/// analysed without writing C++ (used by the `hemcpa` CLI tool).
///
/// Line-oriented; `#` starts a comment; keywords are case-sensitive.
/// Entities must be declared before they are referenced.
///
/// ```
/// # resources:  resource <name> spp|can|rr|tdma [cycle=<ticks>]
/// resource CPU1 spp
/// resource CAN  can
///
/// # sources:    source <name> periodic|sem|burst <params>
/// source s1 periodic period=250
/// source s2 sem period=450 jitter=30 dmin=5
/// source s3 burst size=3 inner=10 period=100
///
/// # tasks:      task <name> resource=<r> priority=<p> cet=<c>|<lo>:<hi>
/// #                         [slot=<ticks>]      (rr / tdma resources)
/// task T1 resource=CPU1 priority=1 cet=24
/// task F1 resource=CAN  priority=1 cet=4
///
/// # activations (choose one per task):
/// activate T1 from=s1              # external source or task output
/// activate T3 or=T1,T2             # OR-combination of task outputs
/// packed  F1 inputs=s1:trig,s2:trig,s3:pend [timer=<period>]
/// unpack  T2 frame=F1 index=1
///
/// # optional deadline constraints (consumed by the CLI / sensitivity):
/// deadline T1 100
///
/// # optional engine options (overridable from the CLI):
/// option jobs=4                    # worker threads for the local analyses
/// option trace=run.json            # Chrome trace_event output file
/// option metrics=on                # print the plain-text metrics dump
/// option strict=on                 # fail fast instead of degrading
/// option overload_check=off        # skip the load>1 pre-check (expert)
/// option sim_drop=0.1              # --sim fault injection defaults
/// option sim_jitter=30
/// option sim_burst=2
/// ```
///
/// Input robustness: a UTF-8 byte-order mark on the first line and CRLF
/// line endings are accepted; positions stay 1-based with column 1 being
/// the first character after the BOM.
///
/// The parser also emits *warnings* (suspicious-but-valid constructs, e.g.
/// jitter > period) as positioned verify::Diagnostic records; `hemlint`
/// layers its graph-level checks on top of them (see docs/linting.md).

#include <istream>
#include <map>
#include <string>
#include <vector>

#include "model/sensitivity.hpp"
#include "model/system.hpp"
#include "verify/diagnostic.hpp"

namespace hem::cpa {

/// 1-based position of a declaration in the configuration text.
struct SourceLoc {
  int line = 0;
  int col = 0;
};

/// Where every named entity was declared, plus reference counts — the
/// parser records this so `hemlint` can position its graph-level findings
/// without re-tokenising the file.
struct ConfigIndex {
  std::map<std::string, SourceLoc> resources;
  std::map<std::string, SourceLoc> sources;
  std::map<std::string, SourceLoc> tasks;
  std::map<std::string, SourceLoc> deadlines;  ///< `deadline` statements, by task
  std::map<std::string, SourceLoc> options;    ///< `option` keys seen
  std::map<std::string, int> source_refs;      ///< uses per source name
};

/// A parsed configuration: the system plus optional deadline constraints
/// and engine options.
struct ParsedSystem {
  System system;
  DeadlineMap deadlines;
  int jobs = 0;           ///< `option jobs=<n>`; 0 = not specified
  std::string trace_out;  ///< `option trace=<file>`; empty = no tracing
  bool metrics = false;   ///< `option metrics=on`
  bool strict = false;    ///< `option strict=on`
  bool check_overload = true;  ///< `option overload_check=off` clears this
  double sim_drop = 0.0;  ///< `option sim_drop=<rate>`; --sim fault default
  Time sim_jitter = 0;    ///< `option sim_jitter=<time>`
  Count sim_burst = 1;    ///< `option sim_burst=<count>`
  /// `option inject_fault=abort|segv|oom|stackoverflow|spin` — test-only
  /// crash hook: the attempt layer kills its own process this way before
  /// analysing, so worker isolation and the chaos harness can rehearse
  /// real crashes.  Empty = never fault (the production default).
  std::string inject_fault;
  std::vector<verify::Diagnostic> warnings;  ///< positioned parser warnings
  ConfigIndex index;
};

/// Parse a configuration from a stream.
///
/// Warnings land in ParsedSystem::warnings.  Fatal problems still throw;
/// when `diags` is non-null it additionally receives, before the throw, all
/// warnings collected so far plus one error-severity Diagnostic describing
/// the failure (positioned, with its HL*** code) — this is how `hemlint`
/// reports parse errors uniformly.
///
/// \throws std::invalid_argument with "line <l>[, col <c>]: <message>" on
///         syntax or reference errors.
[[nodiscard]] ParsedSystem parse_system_config(std::istream& in,
                                               std::vector<verify::Diagnostic>* diags = nullptr);

/// Parse a configuration file.
[[nodiscard]] ParsedSystem parse_system_config_file(const std::string& path);

}  // namespace hem::cpa
