#pragma once

/// \file engine_snapshot.hpp
/// Cross-run warm start for the CPA engine: a snapshot of one *converged*
/// run's per-task state, usable to seed a later run of the same or a
/// tweaked system so only the changed delta is re-analysed.
///
/// This makes the incremental engine's intra-run reuse (dirty-set
/// scheduling + node identity, see cpa_engine.hpp) work *across* engine
/// instances — the daemon (`hemcpad`) keeps snapshots alive in its warm
/// model cache keyed by config fingerprint, so resubmitting a variant of
/// an analysed configuration pays only its incremental cost.
///
/// Soundness model: the engine's dirty tracking is pointer-based, so warm
/// seeding only has to guarantee that a task seeded as "already analysed"
/// truly had an identical local-analysis input in the snapshot run.  That
/// holds when (a) the task's structural signature (resource spec, priority,
/// execution times, slot, deadline, activation shape) is unchanged, (b) its
/// external model nodes are pointer-identical (interning takes care of
/// that), (c) the full set of resource mates is unchanged (interference is
/// an input too), and (d) the snapshot task converged — converged bounds
/// are fixpoints and therefore independent of iteration/step budgets.
/// Everything not matching these rules simply starts cold: the result is
/// bit-identical to a cold run either way, only the work differs.

#include <cstdint>
#include <string>
#include <vector>

#include "core/event_model.hpp"
#include "hierarchical/hierarchical_event_model.hpp"
#include "model/system.hpp"

namespace hem::cpa {

/// Converged per-task state captured by CpaEngine::make_snapshot().
struct EngineSnapshot {
  struct TaskSnap {
    std::string name;
    std::string resource;   ///< resource name (mate-set check)
    std::string signature;  ///< task_signature() at capture time
    ModelPtr act_flat;      ///< resolved activation node (keeps memoisation warm)
    HemPtr act_hem;         ///< packed activation, frame tasks only
    ModelPtr out_flat;      ///< output node after the local analysis
    HemPtr out_hem;         ///< hierarchical output, frame tasks only
    std::vector<const void*> act_key;  ///< producer nodes act_flat was built from
    Time bcrt = 0;
    Time wcrt = 0;
    Count q_max = 0;
    Count backlog = 0;
    Time busy = 0;
    double rate = 0.0;  ///< memoised long_run_rate(act_flat)
    // External nodes referenced by the activation spec, for interning.
    ModelPtr external;                  ///< ExternalActivation model, if any
    std::vector<ModelPtr> pack_sources;  ///< per packed input; null for task outputs
    ModelPtr pack_timer;                 ///< packed send timer, if any
  };

  // Result-relevant engine options of the snapshot run; seeding requires an
  // exact match (a snapshot from a fitted-SEM run must not seed an exact
  // run and vice versa).
  bool propagate_fitted_sem = false;
  bool check_overload = true;
  Count compare_horizon = 64;

  std::vector<TaskSnap> tasks;  ///< converged tasks only

  [[nodiscard]] bool valid() const noexcept { return !tasks.empty(); }
  [[nodiscard]] const TaskSnap* find(const std::string& name) const;

  /// Approximate resident size: struct, string, and vector storage plus a
  /// fixed per-node estimate for each *distinct* model node reachable from
  /// the snapshot (nodes shared between tasks are counted once).  A cheap
  /// heuristic for the daemon's warm-cache byte cap, not an exact census —
  /// it deliberately does not walk into the model DAG's internals.
  [[nodiscard]] std::size_t approx_bytes() const;
};

/// Structural signature of one task: everything its local analysis consumes
/// except the event streams themselves (which are compared by node
/// identity).  Two tasks with equal signatures and pointer-identical
/// activation inputs have identical local-analysis inputs.
[[nodiscard]] std::string task_signature(const System& system, TaskId t);

/// True when `a` and `b` are interchangeable external sources: same dynamic
/// type with an exactly parameter-describing `describe()`.  Conservative —
/// trace models (whose describe is lossy) and unknown types never match.
[[nodiscard]] bool same_external_model(const EventModel& a, const EventModel& b);

/// Re-point the external event-model nodes of `system` (external
/// activations, packed ModelPtr sources, pack timers) at the snapshot's
/// nodes wherever `same_external_model` holds for the same task name.
/// Afterwards unchanged externals are pointer-identical to the snapshot
/// run, which is what lets warm seeding recognise them.  Returns the
/// number of nodes interned.
int intern_external_models(System& system, const EngineSnapshot& snapshot);

}  // namespace hem::cpa
