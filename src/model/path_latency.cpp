#include "model/path_latency.hpp"

#include <stdexcept>

namespace hem::cpa {

Time path_wcrt(const AnalysisReport& report, std::span<const std::string> tasks) {
  if (tasks.empty()) throw std::invalid_argument("path_wcrt: empty path");
  Time sum = 0;
  for (const auto& t : tasks) sum = sat_add(sum, report.task(t).wcrt);
  return sum;
}

Time path_bcrt(const AnalysisReport& report, std::span<const std::string> tasks) {
  if (tasks.empty()) throw std::invalid_argument("path_bcrt: empty path");
  Time sum = 0;
  for (const auto& t : tasks) sum = sat_add(sum, report.task(t).bcrt);
  return sum;
}

Time path_wcrt_with_sampling(const AnalysisReport& report,
                             std::span<const std::string> tasks,
                             std::span<const Time> sampling_delays) {
  Time sum = path_wcrt(report, tasks);
  for (const Time d : sampling_delays) {
    if (d < 0) throw std::invalid_argument("path_wcrt_with_sampling: negative delay");
    sum = sat_add(sum, d);
  }
  return sum;
}

}  // namespace hem::cpa
