#pragma once

/// \file system.hpp
/// Declarative system model for compositional performance analysis:
/// resources (with a local scheduling policy), tasks (computation or frame
/// transmission), and the event-stream graph connecting them.
///
/// This is the "abstract system model consisting of operations and event
/// streams" of the paper's Fig. 1: external sources stimulate tasks, task
/// outputs stimulate connected tasks (possibly OR-combined), a COM layer
/// packs signal streams into hierarchical frame streams, frames travel over
/// a bus task, and unpack edges extract the per-signal inner streams for
/// the receiving tasks.

#include <functional>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "core/event_model.hpp"
#include "hierarchical/pack_constructor.hpp"
#include "sched/busy_window.hpp"

namespace hem::cpa {

using TaskId = std::size_t;
using ResourceId = std::size_t;

/// Local scheduling policy of a resource.
enum class Policy {
  kSppPreemptive,  ///< static-priority preemptive (CPU)
  kSpnpCan,        ///< static-priority non-preemptive with blocking (CAN bus)
  kRoundRobin,     ///< round-robin with per-task slots
  kTdma,           ///< TDMA with per-task slots and a global cycle
  kFlexRayStatic,  ///< FlexRay static segment: one slot per frame per cycle
  kEdf             ///< earliest deadline first (per-task deadlines required)
};

struct ResourceSpec {
  std::string name;
  Policy policy = Policy::kSppPreemptive;
  Time tdma_cycle = 0;   ///< required for kTdma and kFlexRayStatic (cycle length)
  Time slot_length = 0;  ///< required for kFlexRayStatic
};

struct TaskSpec {
  std::string name;
  ResourceId resource = 0;
  int priority = 0;  ///< smaller value = higher priority (SPP / CAN)
  sched::ExecutionTime cet{0, 0};
  Time slot = 0;      ///< round-robin or TDMA slot, where applicable
  Time deadline = 0;  ///< relative deadline, required on EDF resources
};

/// Activation by an external stimulus with a fixed event model.
struct ExternalActivation {
  ModelPtr model;
};

/// Activation by the output streams of other tasks (OR-combined if > 1).
struct TaskOutputActivation {
  std::vector<TaskId> producers;
};

/// AND-activation: one activation per complete set of producer tokens
/// (Jersak semantics).  All producers must share the given long-run
/// period; their outputs are conservatively re-fitted to SEMs with that
/// period before combination.
struct AndActivation {
  std::vector<TaskId> producers;
  Time period = 0;
};

/// Activation of a *frame* task by a packed hierarchical stream (Omega_pa):
/// the sources are task outputs and/or external models, each triggering or
/// pending, plus an optional periodic send timer.
struct PackedActivation {
  struct Input {
    std::variant<TaskId, ModelPtr> source;
    SignalCoupling coupling = SignalCoupling::kTriggering;
  };
  std::vector<Input> inputs;
  ModelPtr timer;  ///< may be null (direct frames)
};

/// Activation by one inner stream of a frame task's hierarchical output
/// (deconstructor Psi_pa applied at `index`).
struct UnpackedActivation {
  TaskId frame_task = 0;
  std::size_t index = 0;
};

using ActivationSpec = std::variant<std::monostate, ExternalActivation, TaskOutputActivation,
                                    AndActivation, PackedActivation, UnpackedActivation>;

/// The system under analysis.  Build it up with the add_/activate_ methods,
/// then hand it to CpaEngine.
class System {
 public:
  ResourceId add_resource(ResourceSpec spec);
  TaskId add_task(TaskSpec spec);

  /// Stimulate `task` with a fixed external event model.
  void activate_external(TaskId task, ModelPtr model);

  /// Stimulate `task` with the (OR-combined) outputs of `producers`.
  void activate_by(TaskId task, std::vector<TaskId> producers);

  /// Stimulate `task` once per complete token set of `producers`
  /// (AND-activation); all producers must run at `period`.
  void activate_and(TaskId task, std::vector<TaskId> producers, Time period);

  /// Stimulate the frame task `frame` with the pack-HSC of `inputs`
  /// (+ optional periodic timer).
  void activate_packed(TaskId frame, std::vector<PackedActivation::Input> inputs,
                       ModelPtr timer = nullptr);

  /// Stimulate `task` with inner stream `index` of frame task `frame`.
  void activate_unpacked(TaskId task, TaskId frame, std::size_t index);

  [[nodiscard]] const std::vector<ResourceSpec>& resources() const noexcept {
    return resources_;
  }
  [[nodiscard]] const std::vector<TaskSpec>& tasks() const noexcept { return tasks_; }
  [[nodiscard]] const ActivationSpec& activation(TaskId t) const { return activations_.at(t); }

  [[nodiscard]] TaskId task_id(std::string_view name) const;

  /// Replace a task's execution-time interval (used by sensitivity
  /// analysis to probe design parameters).
  void set_task_cet(TaskId task, sched::ExecutionTime cet);

  /// Replace a task's priority (used by priority optimisation).
  void set_task_priority(TaskId task, int priority);

  /// Replace a task's round-robin/TDMA slot (used by the synthesiser, which
  /// only knows slot sizes once execution times are assigned).
  void set_task_slot(TaskId task, Time slot);

  /// Replace a TDMA/FlexRay resource's cycle length — again for builders
  /// that size the cycle from the slots they assigned after the fact.
  /// \throws std::invalid_argument for a non-positive cycle or a resource
  ///         whose policy has no cycle.
  void set_resource_tdma_cycle(ResourceId resource, Time cycle);

  /// Visit every external event-model slot of `task`'s activation (the
  /// ExternalActivation model, PackedActivation ModelPtr sources, and the
  /// pack timer) and let `fn` substitute a replacement node (return nullptr
  /// to keep the current one).  Used by warm-start interning
  /// (model/engine_snapshot.hpp) to re-point structurally identical sources
  /// at the cached run's immutable nodes, so the engine's pointer-based
  /// dirty tracking recognises them as unchanged.  The replacement must
  /// describe the same event stream; substituting a different stream is
  /// undefined behaviour of the analysis, not of the program.
  void rewrite_external_models(TaskId task,
                               const std::function<ModelPtr(const ModelPtr&)>& fn);

  /// Structural validation: every task has an activation, references are in
  /// range, resources have the parameters their policy needs.
  void validate() const;

 private:
  std::vector<ResourceSpec> resources_;
  std::vector<TaskSpec> tasks_;
  std::vector<ActivationSpec> activations_;
};

}  // namespace hem::cpa
