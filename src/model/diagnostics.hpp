#pragma once

/// \file diagnostics.hpp
/// Structured diagnostics and degraded-mode fallback machinery for the
/// global analysis.
///
/// Instead of aborting on the first overloaded resource or diverging
/// fixpoint, the engine (in its default graceful mode) records a
/// `Diagnostic` per failing entity in a `DiagnosticSink`, substitutes a
/// conservative fallback bound, and keeps analysing the rest of the system.
/// Two fallback building blocks live here:
///
///   * `SporadicEnvelopeModel` - the maximally conservative output stream of
///     a task whose response time could not be bounded: events keep a
///     minimum spacing (consecutive completions of one task are at least its
///     best-case response apart) but carry no arrival guarantee, i.e.
///     delta+ = infinity - exactly the pending-signal semantics of the
///     paper's eq. (8).
///   * `utilization_wcrt_envelope` - a HeRTA-style closed-form response-time
///     envelope for work-conserving resources, sound whenever the sampled
///     utilisation stays below 1 even if the exact busy-window fixpoint was
///     not computable within budget.

#include <string>
#include <vector>

#include "core/event_model.hpp"

namespace hem::cpa {

/// How bad a diagnostic is.
enum class Severity {
  kInfo,     ///< informational note, analysis unaffected
  kWarning,  ///< bounds valid but conservative (e.g. degraded upstream)
  kError,    ///< a local analysis failed; fallback bounds substituted
};

/// What went wrong (or what was degraded).
enum class DiagCode {
  kResourceOverload,     ///< long-run load of a resource exceeds 1
  kBusyWindowDivergence, ///< busy window exceeded FixpointLimits::max_window
  kBusyWindowBudget,     ///< fixpoint iteration/time budget exhausted locally
  kGlobalIterationLimit, ///< no global fixpoint within EngineOptions::max_iterations
  kWallClockBudget,      ///< EngineOptions::wall_clock_budget_ms exhausted
  kUnresolvedActivation, ///< activation never bootstrapped (dependency cycle)
  kInnerUpdateUnbounded, ///< HEM inner update undefined (unbounded simultaneity)
  kDegradedUpstream,     ///< a producer's bounds are fallback values
};

[[nodiscard]] const char* to_string(Severity s) noexcept;
[[nodiscard]] const char* to_string(DiagCode c) noexcept;

/// One structured finding of an analysis run.
struct Diagnostic {
  Severity severity = Severity::kInfo;
  DiagCode code = DiagCode::kDegradedUpstream;
  std::string entity;   ///< offending task/resource name ("system" for global)
  std::string detail;   ///< human-readable explanation
  int iteration = 0;    ///< global iteration during which it was (last) raised
};

/// Ordered collection of diagnostics.  Reporting the same (code, entity)
/// pair again replaces the earlier record (keeping first-seen order), so
/// re-detection across global iterations does not pile up duplicates.
class DiagnosticSink {
 public:
  void report(Diagnostic d);

  [[nodiscard]] const std::vector<Diagnostic>& entries() const noexcept { return entries_; }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] std::size_t count(Severity s) const;
  [[nodiscard]] bool has_errors() const { return count(Severity::kError) > 0; }

  /// Aligned text listing, one line per diagnostic.
  [[nodiscard]] std::string format() const;

 private:
  std::vector<Diagnostic> entries_;
};

/// Fallback output stream of a task without a finite response-time bound:
/// delta-(n) = (n-1) * spacing, delta+(n) = infinity (paper eq. 8, the
/// pending-signal shape).  `spacing` may be zero when not even a minimum
/// completion distance is known.
class SporadicEnvelopeModel final : public EventModel {
 public:
  explicit SporadicEnvelopeModel(Time spacing);

  [[nodiscard]] Time spacing() const noexcept { return spacing_; }

  [[nodiscard]] std::string describe() const override;

 protected:
  [[nodiscard]] Time delta_min_raw(Count n) const override;
  [[nodiscard]] Time delta_plus_raw(Count n) const override;

 private:
  Time spacing_;
};

/// One task's contribution to the fallback envelope of its resource.
struct EnvelopeTask {
  ModelPtr activation;  ///< resolved activation stream
  Time wcet = 0;        ///< worst-case execution/transmission time C+
};

/// Closed-form worst-case response-time envelope for a work-conserving
/// resource (SPP / CAN / EDF / round-robin), usable when the exact
/// busy-window fixpoint is unavailable.  Subadditivity of eta+ gives
/// eta+(dt) <= ceil(dt / H) * eta+(H), so total demand over any window dt is
/// at most D + dt * D / H with D = sum_i C+_i * eta+_i(H); if D < H the
/// busy period - and hence every response time - is bounded by
///
///     L* = ceil( D * H / (H - D) ).
///
/// Returns kTimeInfinity when the sampled demand reaches the horizon
/// (overload) or any activation allows unboundedly many events in H.
[[nodiscard]] Time utilization_wcrt_envelope(const std::vector<EnvelopeTask>& tasks,
                                             Time horizon = 200'000);

}  // namespace hem::cpa
