#include "model/textual_config.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "core/delta_function_model.hpp"
#include "core/leaky_bucket_model.hpp"
#include "core/offset_transaction_model.hpp"
#include "core/standard_event_model.hpp"

namespace hem::cpa {

namespace {

[[noreturn]] void fail(int line, const std::string& message) {
  throw std::invalid_argument("line " + std::to_string(line) + ": " + message);
}

[[noreturn]] void fail_at(int line, int col, const std::string& message) {
  throw std::invalid_argument("line " + std::to_string(line) + ", col " + std::to_string(col) +
                              ": " + message);
}

std::size_t edit_distance(std::string_view a, std::string_view b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      diag = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, sub});
    }
  }
  return row[b.size()];
}

/// " (did you mean 'x'?)" when a candidate is within edit distance 2,
/// empty otherwise.
std::string did_you_mean(std::string_view got,
                         std::initializer_list<std::string_view> candidates) {
  std::string_view best;
  std::size_t best_d = 3;
  for (const std::string_view c : candidates) {
    const std::size_t d = edit_distance(got, c);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  if (best.empty()) return "";
  return " (did you mean '" + std::string(best) + "'?)";
}

/// One statement: the tokens of a config line plus their 1-based columns.
struct Stmt {
  std::vector<std::string> tokens;
  std::vector<int> cols;
  int line = 0;
};

/// Split a line into whitespace-separated tokens, dropping comments and
/// remembering where each token starts.
Stmt tokenize(const std::string& raw, int line_no) {
  Stmt s;
  s.line = line_no;
  const std::string text = raw.substr(0, raw.find('#'));
  std::size_t i = 0;
  while (i < text.size()) {
    if (std::isspace(static_cast<unsigned char>(text[i])) != 0) {
      ++i;
      continue;
    }
    const std::size_t start = i;
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])) == 0) ++i;
    s.tokens.push_back(text.substr(start, i - start));
    s.cols.push_back(static_cast<int>(start) + 1);
  }
  return s;
}

[[noreturn]] void fail_positioned(int line, int col, const std::string& message) {
  if (col > 0) fail_at(line, col, message);
  fail(line, message);
}

/// Parse a time value, consuming the whole token.  Overflow and trailing
/// garbage are rejected with positioned errors; negative values are rejected
/// unless `allow_negative` (periods, jitters, distances, and execution times
/// are durations - a negative one silently corrupts the analysis).
/// Parse a decimal fraction (used by `option sim_drop=`), consuming the
/// whole token; positioned rejection like to_time_at.
double to_double_at(const std::string& text, int line, int col) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(text, &pos);
    if (pos != text.size())
      fail_positioned(line, col, "not a number: '" + text + "' (trailing characters)");
    return v;
  } catch (const std::out_of_range&) {
    fail_positioned(line, col, "number out of range: '" + text + "'");
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    if (what.rfind("line ", 0) == 0) throw;  // already positioned (trailing garbage)
    fail_positioned(line, col, "not a number: '" + text + "'");
  }
}

Time to_time_at(const std::string& text, int line, int col, bool allow_negative = false) {
  long long v = 0;
  try {
    std::size_t pos = 0;
    v = std::stoll(text, &pos);
    if (pos != text.size())
      fail_positioned(line, col, "not a number: '" + text + "' (trailing characters)");
  } catch (const std::out_of_range&) {
    fail_positioned(line, col, "number out of range: '" + text + "'");
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    if (what.rfind("line ", 0) == 0) throw;  // already positioned (trailing garbage)
    fail_positioned(line, col, "not a number: '" + text + "'");
  }
  if (!allow_negative && v < 0)
    fail_positioned(line, col, "negative value not allowed here: '" + text + "'");
  return static_cast<Time>(v);
}

/// Key=value arguments after the positional tokens.
class Args {
 public:
  Args(const Stmt& s, std::size_t first) : line_(s.line) {
    for (std::size_t i = first; i < s.tokens.size(); ++i) {
      const auto eq = s.tokens[i].find('=');
      if (eq == std::string::npos)
        fail_at(s.line, s.cols[i], "expected key=value, got '" + s.tokens[i] + "'");
      std::string key = s.tokens[i].substr(0, eq);
      // A silently-overwriting duplicate is almost always a typo'd edit of
      // the first occurrence; report the second one by column.
      if (kv_.count(key) != 0)
        fail_at(s.line, s.cols[i], "duplicate argument '" + key + "'");
      kv_[std::move(key)] = {s.tokens[i].substr(eq + 1), s.cols[i]};
    }
  }

  /// Reject any argument key outside `keys`, suggesting the closest match.
  void allow(std::initializer_list<std::string_view> keys) const {
    for (const auto& [key, val] : kv_) {
      if (std::find(keys.begin(), keys.end(), key) != keys.end()) continue;
      fail_at(line_, val.second, "unknown argument '" + key + "'" + did_you_mean(key, keys));
    }
  }

  [[nodiscard]] bool has(const std::string& key) const { return kv_.count(key) != 0; }

  [[nodiscard]] std::string str(const std::string& key) const {
    const auto it = kv_.find(key);
    if (it == kv_.end()) fail(line_, "missing required argument '" + key + "'");
    return it->second.first;
  }

  [[nodiscard]] std::string str_or(const std::string& key, const std::string& def) const {
    const auto it = kv_.find(key);
    return it == kv_.end() ? def : it->second.first;
  }

  [[nodiscard]] Time time(const std::string& key, bool allow_negative = false) const {
    return to_time_at(str(key), line_, col(key), allow_negative);
  }

  [[nodiscard]] Time time_or(const std::string& key, Time def) const {
    return has(key) ? time(key) : def;
  }

  [[nodiscard]] Time to_time(const std::string& text) const {
    return to_time_at(text, line_, 0 /* value inside a list; column unknown */);
  }

  /// 1-based column of the key=value token carrying `key` (0 if absent).
  [[nodiscard]] int col(const std::string& key) const {
    const auto it = kv_.find(key);
    return it == kv_.end() ? 0 : it->second.second;
  }

 private:
  std::map<std::string, std::pair<std::string, int>> kv_;
  int line_;
};

sched::ExecutionTime parse_cet(const std::string& text, int line, int col) {
  // Each half must consume its whole token: `cet=5x` or `cet=3:7junk` is a
  // typo, not a 5 or a 3:7.  Overflow and negatives get their own messages.
  const auto part = [&](const std::string& p) -> Time {
    try {
      std::size_t pos = 0;
      const long long v = std::stoll(p, &pos);
      if (pos != p.size())
        fail_positioned(line, col, "bad cet '" + text + "': trailing characters in '" + p + "'");
      if (v < 0)
        fail_positioned(line, col, "bad cet '" + text + "': negative execution time");
      return static_cast<Time>(v);
    } catch (const std::out_of_range&) {
      fail_positioned(line, col, "bad cet '" + text + "': number out of range");
    } catch (const std::invalid_argument& e) {
      const std::string what = e.what();
      if (what.rfind("line ", 0) == 0) throw;  // already positioned
      fail_positioned(line, col, "bad cet '" + text + "' (expected <c> or <lo>:<hi>)");
    }
  };
  const auto colon = text.find(':');
  try {
    if (colon == std::string::npos) return sched::ExecutionTime(part(text));
    return sched::ExecutionTime(part(text.substr(0, colon)), part(text.substr(colon + 1)));
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    if (what.rfind("line ", 0) == 0) throw;  // positioned errors from part()
    // ExecutionTime's own validation (lo <= hi).
    fail_positioned(line, col, "bad cet '" + text + "': " + what);
  }
}

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> parts;
  std::string cur;
  for (const char c : text) {
    if (c == ',') {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  parts.push_back(cur);
  return parts;
}

struct ParserState {
  System system;
  DeadlineMap deadlines;
  int jobs = 0;
  std::string trace_out;
  bool metrics = false;
  bool strict = false;
  bool check_overload = true;
  double sim_drop = 0.0;
  Time sim_jitter = 0;
  Count sim_burst = 1;
  std::string inject_fault;
  std::vector<verify::Diagnostic> warnings;
  ConfigIndex index;
  std::map<std::string, ResourceId> resources;
  std::map<std::string, TaskId> tasks;
  std::map<std::string, ModelPtr> sources;

  [[nodiscard]] ModelPtr stream_for(const std::string& name, int line) {
    const auto it = sources.find(name);
    if (it != sources.end()) {
      ++index.source_refs[name];
      return it->second;
    }
    fail(line, "unknown source '" + name + "'");
  }

  void warn(int line, int col, std::string code, std::string message) {
    warnings.push_back({verify::LintSeverity::kWarning, line, col, std::move(code),
                        std::move(message)});
  }

  /// Record an error-severity diagnostic, then throw it positioned.  Used
  /// where a lint code owns the failure (e.g. HL004), so hemlint reports
  /// the specific code instead of the generic parse-error HL000.
  [[noreturn]] void fail_diag(int line, int col, std::string code, const std::string& message) {
    warnings.push_back({verify::LintSeverity::kError, line, col, std::move(code), message});
    fail_positioned(line, col, message);
  }
};

void parse_resource(ParserState& st, const Stmt& s) {
  const int line = s.line;
  if (s.tokens.size() < 3) fail(line, "resource needs: resource <name> <policy>");
  const std::string& name = s.tokens[1];
  const std::string& policy = s.tokens[2];
  const Args args(s, 3);
  ResourceSpec spec;
  spec.name = name;
  if (policy == "spp") {
    args.allow({});
    spec.policy = Policy::kSppPreemptive;
  } else if (policy == "can") {
    args.allow({});
    spec.policy = Policy::kSpnpCan;
  } else if (policy == "rr") {
    args.allow({});
    spec.policy = Policy::kRoundRobin;
  } else if (policy == "tdma") {
    args.allow({"cycle"});
    spec.policy = Policy::kTdma;
    spec.tdma_cycle = args.time("cycle");
  } else if (policy == "flexray") {
    args.allow({"cycle", "slot"});
    spec.policy = Policy::kFlexRayStatic;
    spec.tdma_cycle = args.time("cycle");
    spec.slot_length = args.time("slot");
  } else if (policy == "edf") {
    args.allow({});
    spec.policy = Policy::kEdf;
  } else {
    fail_at(line, s.cols[2],
            "unknown policy '" + policy + "' (spp|can|rr|tdma|flexray|edf)" +
                did_you_mean(policy, {"spp", "can", "rr", "tdma", "flexray", "edf"}));
  }
  if (st.resources.count(name) != 0) fail(line, "duplicate resource '" + name + "'");
  st.index.resources[name] = {line, s.cols[1]};
  st.resources[name] = st.system.add_resource(std::move(spec));
}

void parse_source(ParserState& st, const Stmt& s) {
  const int line = s.line;
  if (s.tokens.size() < 3) fail(line, "source needs: source <name> <kind> <params>");
  const std::string& name = s.tokens[1];
  const std::string& kind = s.tokens[2];
  const Args args(s, 3);
  if (st.sources.count(name) != 0) fail(line, "duplicate source '" + name + "'");
  st.index.sources[name] = {line, s.cols[1]};
  st.index.source_refs.emplace(name, 0);
  try {
    if (kind == "periodic") {
      args.allow({"period"});
      st.sources[name] = StandardEventModel::periodic(args.time("period"));
    } else if (kind == "sem") {
      args.allow({"period", "jitter", "dmin"});
      const Time period = args.time("period");
      const Time jitter = args.time_or("jitter", 0);
      const Time dmin = args.time_or("dmin", 0);
      // Pre-check the SEM invariant so the finding carries its own lint
      // code and column instead of a generic constructor message.
      if (dmin > period)
        st.fail_diag(line, args.col("dmin"), "HL004",
                     "dmin=" + std::to_string(dmin) + " exceeds period=" +
                         std::to_string(period) +
                         " (a SEM cannot space events further apart than its period)");
      if (jitter > period)
        st.warn(line, args.col("jitter"),
                "HL003", "jitter=" + std::to_string(jitter) + " exceeds period=" +
                             std::to_string(period) +
                             " (burst regime: up to " + std::to_string(jitter / period + 1) +
                             " activations can pile up)");
      st.sources[name] = std::make_shared<StandardEventModel>(period, jitter, dmin);
    } else if (kind == "burst") {
      args.allow({"size", "inner", "period"});
      st.sources[name] = DeltaFunctionModel::periodic_burst(
          args.time("size"), args.time("inner"), args.time("period"));
    } else if (kind == "leaky") {
      args.allow({"burst", "spacing"});
      st.sources[name] =
          std::make_shared<LeakyBucketModel>(args.time("burst"), args.time("spacing"));
    } else if (kind == "offsets") {
      args.allow({"period", "at", "jitter"});
      std::vector<Time> offsets;
      for (const auto& part : split_list(args.str("at")))
        offsets.push_back(args.to_time(part));
      st.sources[name] = std::make_shared<OffsetTransactionModel>(
          args.time("period"), std::move(offsets), args.time_or("jitter", 0));
    } else {
      fail_at(line, s.cols[2],
              "unknown source kind '" + kind + "' (periodic|sem|burst|leaky|offsets)" +
                  did_you_mean(kind, {"periodic", "sem", "burst", "leaky", "offsets"}));
    }
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    if (what.rfind("line ", 0) == 0) throw;  // already positioned (bad number, unknown key)
    fail(line, "invalid source parameters: " + what);
  }
}

void parse_task(ParserState& st, const Stmt& s) {
  const int line = s.line;
  if (s.tokens.size() < 2) fail(line, "task needs a name");
  const std::string& name = s.tokens[1];
  const Args args(s, 2);
  args.allow({"resource", "priority", "cet", "slot", "deadline"});
  const auto res = st.resources.find(args.str("resource"));
  if (res == st.resources.end()) fail(line, "unknown resource '" + args.str("resource") + "'");
  TaskSpec spec{name, res->second,
                static_cast<int>(args.time("priority", /*allow_negative=*/true)),
                parse_cet(args.str("cet"), line, args.col("cet"))};
  spec.slot = args.time_or("slot", 0);
  spec.deadline = args.time_or("deadline", 0);
  if (st.tasks.count(name) != 0) fail(line, "duplicate task '" + name + "'");
  st.index.tasks[name] = {line, s.cols[1]};
  try {
    st.tasks[name] = st.system.add_task(std::move(spec));
  } catch (const std::invalid_argument& e) {
    fail(line, e.what());
  }
}

void parse_activate(ParserState& st, const Stmt& s) {
  const int line = s.line;
  if (s.tokens.size() < 2) fail(line, "activate needs a task name");
  const auto task = st.tasks.find(s.tokens[1]);
  if (task == st.tasks.end()) fail(line, "unknown task '" + s.tokens[1] + "'");
  const Args args(s, 2);
  args.allow({"from", "or", "and", "period"});
  if (args.has("from")) {
    const std::string from = args.str("from");
    if (const auto producer = st.tasks.find(from); producer != st.tasks.end()) {
      st.system.activate_by(task->second, {producer->second});
    } else {
      st.system.activate_external(task->second, st.stream_for(from, line));
    }
    return;
  }
  if (args.has("or")) {
    std::vector<TaskId> producers;
    for (const auto& part : split_list(args.str("or"))) {
      const auto producer = st.tasks.find(part);
      if (producer == st.tasks.end()) fail(line, "unknown producer task '" + part + "'");
      producers.push_back(producer->second);
    }
    st.system.activate_by(task->second, std::move(producers));
    return;
  }
  if (args.has("and")) {
    std::vector<TaskId> producers;
    for (const auto& part : split_list(args.str("and"))) {
      const auto producer = st.tasks.find(part);
      if (producer == st.tasks.end()) fail(line, "unknown producer task '" + part + "'");
      producers.push_back(producer->second);
    }
    try {
      st.system.activate_and(task->second, std::move(producers), args.time("period"));
    } catch (const std::invalid_argument& e) {
      fail(line, e.what());
    }
    return;
  }
  fail(line, "activate needs from=<source|task>, or=<t1,t2,...>, or and=<t1,t2,...> period=<T>");
}

void parse_packed(ParserState& st, const Stmt& s) {
  const int line = s.line;
  if (s.tokens.size() < 2) fail(line, "packed needs a frame task name");
  const auto frame = st.tasks.find(s.tokens[1]);
  if (frame == st.tasks.end()) fail(line, "unknown task '" + s.tokens[1] + "'");
  const Args args(s, 2);
  args.allow({"inputs", "timer"});
  std::vector<PackedActivation::Input> inputs;
  for (const auto& part : split_list(args.str("inputs"))) {
    const auto colon = part.find(':');
    if (colon == std::string::npos)
      fail(line, "packed input must be <name>:trig or <name>:pend, got '" + part + "'");
    const std::string src_name = part.substr(0, colon);
    const std::string coupling = part.substr(colon + 1);
    PackedActivation::Input input;
    if (const auto producer = st.tasks.find(src_name); producer != st.tasks.end())
      input.source = producer->second;
    else
      input.source = st.stream_for(src_name, line);
    if (coupling == "trig")
      input.coupling = SignalCoupling::kTriggering;
    else if (coupling == "pend")
      input.coupling = SignalCoupling::kPending;
    else
      fail(line, "unknown coupling '" + coupling + "' (trig|pend)" +
                     did_you_mean(coupling, {"trig", "pend"}));
    inputs.push_back(std::move(input));
  }
  ModelPtr timer;
  if (args.has("timer")) timer = StandardEventModel::periodic(args.time("timer"));
  try {
    st.system.activate_packed(frame->second, std::move(inputs), std::move(timer));
  } catch (const std::invalid_argument& e) {
    fail(line, e.what());
  }
}

void parse_unpack(ParserState& st, const Stmt& s) {
  const int line = s.line;
  if (s.tokens.size() < 2) fail(line, "unpack needs a task name");
  const auto task = st.tasks.find(s.tokens[1]);
  if (task == st.tasks.end()) fail(line, "unknown task '" + s.tokens[1] + "'");
  const Args args(s, 2);
  args.allow({"frame", "index"});
  const auto frame = st.tasks.find(args.str("frame"));
  if (frame == st.tasks.end()) fail(line, "unknown frame task '" + args.str("frame") + "'");
  st.system.activate_unpacked(task->second, frame->second,
                              static_cast<std::size_t>(args.time("index")));
}

void parse_option(ParserState& st, const Stmt& s) {
  const int line = s.line;
  const Args args(s, 1);
  args.allow({"jobs", "trace", "metrics", "strict", "overload_check", "sim_drop", "sim_jitter",
              "sim_burst", "inject_fault"});
  for (const char* key : {"jobs", "trace", "metrics", "strict", "overload_check", "sim_drop",
                          "sim_jitter", "sim_burst", "inject_fault"})
    if (args.has(key)) st.index.options[key] = {line, args.col(key)};
  if (args.has("jobs")) {
    const Time jobs = args.time("jobs", /*allow_negative=*/true);
    if (jobs < 1) fail(line, "jobs must be >= 1, got " + std::to_string(jobs));
    st.jobs = static_cast<int>(jobs);
  }
  if (args.has("trace")) {
    const std::string path = args.str("trace");
    if (path.empty()) fail_at(line, args.col("trace"), "trace needs a file path");
    st.trace_out = path;
  }
  if (args.has("metrics")) {
    const std::string v = args.str("metrics");
    if (v == "on" || v == "1" || v == "true")
      st.metrics = true;
    else if (v == "off" || v == "0" || v == "false")
      st.metrics = false;
    else
      fail_at(line, args.col("metrics"), "metrics must be on|off, got '" + v + "'");
  }
  if (args.has("strict")) {
    const std::string v = args.str("strict");
    if (v == "on" || v == "1" || v == "true")
      st.strict = true;
    else if (v == "off" || v == "0" || v == "false")
      st.strict = false;
    else
      fail_at(line, args.col("strict"), "strict must be on|off, got '" + v + "'");
  }
  if (args.has("overload_check")) {
    const std::string v = args.str("overload_check");
    if (v == "on" || v == "1" || v == "true")
      st.check_overload = true;
    else if (v == "off" || v == "0" || v == "false")
      st.check_overload = false;
    else
      fail_at(line, args.col("overload_check"),
              "overload_check must be on|off, got '" + v + "'");
  }
  if (args.has("sim_drop")) {
    const double rate = to_double_at(args.str("sim_drop"), line, args.col("sim_drop"));
    if (rate < 0.0 || rate > 1.0)
      fail_at(line, args.col("sim_drop"),
              "sim_drop must be a probability in [0, 1], got " + args.str("sim_drop"));
    st.sim_drop = rate;
  }
  if (args.has("sim_jitter")) st.sim_jitter = args.time("sim_jitter");
  if (args.has("sim_burst")) {
    const Time burst = args.time("sim_burst");
    if (burst < 1)
      fail_at(line, args.col("sim_burst"),
              "sim_burst must be >= 1, got " + std::to_string(burst));
    st.sim_burst = burst;
  }
  if (args.has("inject_fault")) {
    const std::string v = args.str("inject_fault");
    if (v != "abort" && v != "segv" && v != "oom" && v != "stackoverflow" && v != "spin" &&
        v != "none")
      fail_at(line, args.col("inject_fault"),
              "inject_fault must be abort|segv|oom|stackoverflow|spin|none, got '" + v + "'");
    st.inject_fault = v == "none" ? "" : v;
  }
}

void parse_deadline(ParserState& st, const Stmt& s) {
  const int line = s.line;
  if (s.tokens.size() != 3) fail(line, "deadline needs: deadline <task> <ticks>");
  if (st.tasks.count(s.tokens[1]) == 0) fail(line, "unknown task '" + s.tokens[1] + "'");
  st.index.deadlines[s.tokens[1]] = {line, s.cols[1]};
  st.deadlines[s.tokens[1]] = to_time_at(s.tokens[2], line, s.cols[2]);
}

/// Turn a thrown parser message ("line <l>[, col <c>]: <rest>") back into a
/// positioned error Diagnostic; unpositioned messages keep line/col = 0.
/// Generic parse failures carry the catch-all code HL000.
verify::Diagnostic error_diagnostic(const std::string& what) {
  verify::Diagnostic d{verify::LintSeverity::kError, 0, 0, "HL000", what};
  if (what.rfind("line ", 0) != 0) return d;
  std::size_t pos = 5;
  int line = 0;
  while (pos < what.size() && std::isdigit(static_cast<unsigned char>(what[pos])) != 0)
    line = line * 10 + (what[pos++] - '0');
  int col = 0;
  if (what.compare(pos, 6, ", col ") == 0) {
    pos += 6;
    while (pos < what.size() && std::isdigit(static_cast<unsigned char>(what[pos])) != 0)
      col = col * 10 + (what[pos++] - '0');
  }
  if (what.compare(pos, 2, ": ") != 0) return d;  // not the parser's format after all
  d.line = line;
  d.col = col;
  d.message = what.substr(pos + 2);
  return d;
}

}  // namespace

ParsedSystem parse_system_config(std::istream& in, std::vector<verify::Diagnostic>* diags) {
  ParserState st;
  try {
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
      ++line_no;
      // Robust input handling: CRLF files leave a trailing '\r' on every
      // line, and editors on some platforms prepend a UTF-8 byte-order
      // mark.  Strip both BEFORE tokenising so columns stay correct
      // (column 1 = first character after the BOM).
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line_no == 1 && line.rfind("\xEF\xBB\xBF", 0) == 0) line.erase(0, 3);
      const Stmt s = tokenize(line, line_no);
      if (s.tokens.empty()) continue;
      const std::string& keyword = s.tokens[0];
      if (keyword == "resource")
        parse_resource(st, s);
      else if (keyword == "source")
        parse_source(st, s);
      else if (keyword == "task")
        parse_task(st, s);
      else if (keyword == "activate")
        parse_activate(st, s);
      else if (keyword == "packed")
        parse_packed(st, s);
      else if (keyword == "unpack")
        parse_unpack(st, s);
      else if (keyword == "deadline")
        parse_deadline(st, s);
      else if (keyword == "option")
        parse_option(st, s);
      else
        fail_at(line_no, s.cols[0],
                "unknown keyword '" + keyword + "'" +
                    did_you_mean(keyword, {"resource", "source", "task", "activate", "packed",
                                           "unpack", "deadline", "option"}));
    }
    try {
      st.system.validate();
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument(std::string("configuration incomplete: ") + e.what());
    }
  } catch (const std::invalid_argument& e) {
    if (diags != nullptr) {
      *diags = st.warnings;
      const bool coded = std::any_of(diags->begin(), diags->end(),
                                     [](const verify::Diagnostic& d) { return d.is_error(); });
      if (!coded) diags->push_back(error_diagnostic(e.what()));
    }
    throw;
  }
  ParsedSystem parsed;
  parsed.system = std::move(st.system);
  parsed.deadlines = std::move(st.deadlines);
  parsed.jobs = st.jobs;
  parsed.trace_out = std::move(st.trace_out);
  parsed.metrics = st.metrics;
  parsed.strict = st.strict;
  parsed.check_overload = st.check_overload;
  parsed.sim_drop = st.sim_drop;
  parsed.sim_jitter = st.sim_jitter;
  parsed.sim_burst = st.sim_burst;
  parsed.inject_fault = std::move(st.inject_fault);
  parsed.warnings = st.warnings;
  parsed.index = std::move(st.index);
  if (diags != nullptr) *diags = parsed.warnings;
  return parsed;
}

ParsedSystem parse_system_config_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("cannot open configuration file '" + path + "'");
  return parse_system_config(in);
}

}  // namespace hem::cpa
