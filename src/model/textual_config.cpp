#include "model/textual_config.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/delta_function_model.hpp"
#include "core/leaky_bucket_model.hpp"
#include "core/offset_transaction_model.hpp"
#include "core/standard_event_model.hpp"

namespace hem::cpa {

namespace {

[[noreturn]] void fail(int line, const std::string& message) {
  throw std::invalid_argument("line " + std::to_string(line) + ": " + message);
}

/// Split a line into whitespace-separated tokens, dropping comments.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line.substr(0, line.find('#')));
  std::string tok;
  while (is >> tok) tokens.push_back(tok);
  return tokens;
}

/// Key=value arguments after the positional tokens.
class Args {
 public:
  Args(const std::vector<std::string>& tokens, std::size_t first, int line) : line_(line) {
    for (std::size_t i = first; i < tokens.size(); ++i) {
      const auto eq = tokens[i].find('=');
      if (eq == std::string::npos) fail(line, "expected key=value, got '" + tokens[i] + "'");
      kv_[tokens[i].substr(0, eq)] = tokens[i].substr(eq + 1);
    }
  }

  [[nodiscard]] bool has(const std::string& key) const { return kv_.count(key) != 0; }

  [[nodiscard]] std::string str(const std::string& key) const {
    const auto it = kv_.find(key);
    if (it == kv_.end()) fail(line_, "missing required argument '" + key + "'");
    return it->second;
  }

  [[nodiscard]] std::string str_or(const std::string& key, const std::string& def) const {
    const auto it = kv_.find(key);
    return it == kv_.end() ? def : it->second;
  }

  [[nodiscard]] Time time(const std::string& key) const { return to_time(str(key)); }

  [[nodiscard]] Time time_or(const std::string& key, Time def) const {
    return has(key) ? to_time(str(key)) : def;
  }

  [[nodiscard]] Time to_time(const std::string& text) const {
    try {
      std::size_t pos = 0;
      const long long v = std::stoll(text, &pos);
      if (pos != text.size()) throw std::invalid_argument("");
      return static_cast<Time>(v);
    } catch (...) {
      fail(line_, "not a number: '" + text + "'");
    }
  }

 private:
  std::map<std::string, std::string> kv_;
  int line_;
};

sched::ExecutionTime parse_cet(const std::string& text, int line) {
  const auto colon = text.find(':');
  try {
    if (colon == std::string::npos) {
      return sched::ExecutionTime(static_cast<Time>(std::stoll(text)));
    }
    return sched::ExecutionTime(static_cast<Time>(std::stoll(text.substr(0, colon))),
                                static_cast<Time>(std::stoll(text.substr(colon + 1))));
  } catch (const std::invalid_argument&) {
    fail(line, "bad cet '" + text + "' (expected <c> or <lo>:<hi>)");
  }
}

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> parts;
  std::string cur;
  for (const char c : text) {
    if (c == ',') {
      parts.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  parts.push_back(cur);
  return parts;
}

struct ParserState {
  System system;
  DeadlineMap deadlines;
  std::map<std::string, ResourceId> resources;
  std::map<std::string, TaskId> tasks;
  std::map<std::string, ModelPtr> sources;

  [[nodiscard]] ModelPtr stream_for(const std::string& name, int line) const {
    const auto it = sources.find(name);
    if (it != sources.end()) return it->second;
    fail(line, "unknown source '" + name + "'");
  }
};

void parse_resource(ParserState& st, const std::vector<std::string>& tokens, int line) {
  if (tokens.size() < 3) fail(line, "resource needs: resource <name> <policy>");
  const std::string& name = tokens[1];
  const std::string& policy = tokens[2];
  const Args args(tokens, 3, line);
  ResourceSpec spec;
  spec.name = name;
  if (policy == "spp") {
    spec.policy = Policy::kSppPreemptive;
  } else if (policy == "can") {
    spec.policy = Policy::kSpnpCan;
  } else if (policy == "rr") {
    spec.policy = Policy::kRoundRobin;
  } else if (policy == "tdma") {
    spec.policy = Policy::kTdma;
    spec.tdma_cycle = args.time("cycle");
  } else if (policy == "flexray") {
    spec.policy = Policy::kFlexRayStatic;
    spec.tdma_cycle = args.time("cycle");
    spec.slot_length = args.time("slot");
  } else if (policy == "edf") {
    spec.policy = Policy::kEdf;
  } else {
    fail(line, "unknown policy '" + policy + "' (spp|can|rr|tdma|flexray|edf)");
  }
  if (st.resources.count(name) != 0) fail(line, "duplicate resource '" + name + "'");
  st.resources[name] = st.system.add_resource(std::move(spec));
}

void parse_source(ParserState& st, const std::vector<std::string>& tokens, int line) {
  if (tokens.size() < 3) fail(line, "source needs: source <name> <kind> <params>");
  const std::string& name = tokens[1];
  const std::string& kind = tokens[2];
  const Args args(tokens, 3, line);
  if (st.sources.count(name) != 0) fail(line, "duplicate source '" + name + "'");
  try {
    if (kind == "periodic") {
      st.sources[name] = StandardEventModel::periodic(args.time("period"));
    } else if (kind == "sem") {
      st.sources[name] = std::make_shared<StandardEventModel>(
          args.time("period"), args.time_or("jitter", 0), args.time_or("dmin", 0));
    } else if (kind == "burst") {
      st.sources[name] = DeltaFunctionModel::periodic_burst(
          args.time("size"), args.time("inner"), args.time("period"));
    } else if (kind == "leaky") {
      st.sources[name] =
          std::make_shared<LeakyBucketModel>(args.time("burst"), args.time("spacing"));
    } else if (kind == "offsets") {
      std::vector<Time> offsets;
      for (const auto& part : split_list(args.str("at")))
        offsets.push_back(args.to_time(part));
      st.sources[name] = std::make_shared<OffsetTransactionModel>(
          args.time("period"), std::move(offsets), args.time_or("jitter", 0));
    } else {
      fail(line, "unknown source kind '" + kind +
                     "' (periodic|sem|burst|leaky|offsets)");
    }
  } catch (const std::invalid_argument& e) {
    fail(line, std::string("invalid source parameters: ") + e.what());
  }
}

void parse_task(ParserState& st, const std::vector<std::string>& tokens, int line) {
  if (tokens.size() < 2) fail(line, "task needs a name");
  const std::string& name = tokens[1];
  const Args args(tokens, 2, line);
  const auto res = st.resources.find(args.str("resource"));
  if (res == st.resources.end()) fail(line, "unknown resource '" + args.str("resource") + "'");
  TaskSpec spec{name, res->second, static_cast<int>(args.time("priority")),
                parse_cet(args.str("cet"), line)};
  spec.slot = args.time_or("slot", 0);
  spec.deadline = args.time_or("deadline", 0);
  if (st.tasks.count(name) != 0) fail(line, "duplicate task '" + name + "'");
  try {
    st.tasks[name] = st.system.add_task(std::move(spec));
  } catch (const std::invalid_argument& e) {
    fail(line, e.what());
  }
}

void parse_activate(ParserState& st, const std::vector<std::string>& tokens, int line) {
  if (tokens.size() < 2) fail(line, "activate needs a task name");
  const auto task = st.tasks.find(tokens[1]);
  if (task == st.tasks.end()) fail(line, "unknown task '" + tokens[1] + "'");
  const Args args(tokens, 2, line);
  if (args.has("from")) {
    const std::string from = args.str("from");
    if (const auto producer = st.tasks.find(from); producer != st.tasks.end()) {
      st.system.activate_by(task->second, {producer->second});
    } else {
      st.system.activate_external(task->second, st.stream_for(from, line));
    }
    return;
  }
  if (args.has("or")) {
    std::vector<TaskId> producers;
    for (const auto& part : split_list(args.str("or"))) {
      const auto producer = st.tasks.find(part);
      if (producer == st.tasks.end()) fail(line, "unknown producer task '" + part + "'");
      producers.push_back(producer->second);
    }
    st.system.activate_by(task->second, std::move(producers));
    return;
  }
  if (args.has("and")) {
    std::vector<TaskId> producers;
    for (const auto& part : split_list(args.str("and"))) {
      const auto producer = st.tasks.find(part);
      if (producer == st.tasks.end()) fail(line, "unknown producer task '" + part + "'");
      producers.push_back(producer->second);
    }
    try {
      st.system.activate_and(task->second, std::move(producers), args.time("period"));
    } catch (const std::invalid_argument& e) {
      fail(line, e.what());
    }
    return;
  }
  fail(line, "activate needs from=<source|task>, or=<t1,t2,...>, or and=<t1,t2,...> period=<T>");
}

void parse_packed(ParserState& st, const std::vector<std::string>& tokens, int line) {
  if (tokens.size() < 2) fail(line, "packed needs a frame task name");
  const auto frame = st.tasks.find(tokens[1]);
  if (frame == st.tasks.end()) fail(line, "unknown task '" + tokens[1] + "'");
  const Args args(tokens, 2, line);
  std::vector<PackedActivation::Input> inputs;
  for (const auto& part : split_list(args.str("inputs"))) {
    const auto colon = part.find(':');
    if (colon == std::string::npos)
      fail(line, "packed input must be <name>:trig or <name>:pend, got '" + part + "'");
    const std::string src_name = part.substr(0, colon);
    const std::string coupling = part.substr(colon + 1);
    PackedActivation::Input input;
    if (const auto producer = st.tasks.find(src_name); producer != st.tasks.end())
      input.source = producer->second;
    else
      input.source = st.stream_for(src_name, line);
    if (coupling == "trig")
      input.coupling = SignalCoupling::kTriggering;
    else if (coupling == "pend")
      input.coupling = SignalCoupling::kPending;
    else
      fail(line, "unknown coupling '" + coupling + "' (trig|pend)");
    inputs.push_back(std::move(input));
  }
  ModelPtr timer;
  if (args.has("timer")) timer = StandardEventModel::periodic(args.time("timer"));
  try {
    st.system.activate_packed(frame->second, std::move(inputs), std::move(timer));
  } catch (const std::invalid_argument& e) {
    fail(line, e.what());
  }
}

void parse_unpack(ParserState& st, const std::vector<std::string>& tokens, int line) {
  if (tokens.size() < 2) fail(line, "unpack needs a task name");
  const auto task = st.tasks.find(tokens[1]);
  if (task == st.tasks.end()) fail(line, "unknown task '" + tokens[1] + "'");
  const Args args(tokens, 2, line);
  const auto frame = st.tasks.find(args.str("frame"));
  if (frame == st.tasks.end()) fail(line, "unknown frame task '" + args.str("frame") + "'");
  st.system.activate_unpacked(task->second, frame->second,
                              static_cast<std::size_t>(args.time("index")));
}

void parse_deadline(ParserState& st, const std::vector<std::string>& tokens, int line) {
  if (tokens.size() != 3) fail(line, "deadline needs: deadline <task> <ticks>");
  if (st.tasks.count(tokens[1]) == 0) fail(line, "unknown task '" + tokens[1] + "'");
  const Args args(tokens, 3, line);
  st.deadlines[tokens[1]] = args.to_time(tokens[2]);
}

}  // namespace

ParsedSystem parse_system_config(std::istream& in) {
  ParserState st;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string& keyword = tokens[0];
    if (keyword == "resource")
      parse_resource(st, tokens, line_no);
    else if (keyword == "source")
      parse_source(st, tokens, line_no);
    else if (keyword == "task")
      parse_task(st, tokens, line_no);
    else if (keyword == "activate")
      parse_activate(st, tokens, line_no);
    else if (keyword == "packed")
      parse_packed(st, tokens, line_no);
    else if (keyword == "unpack")
      parse_unpack(st, tokens, line_no);
    else if (keyword == "deadline")
      parse_deadline(st, tokens, line_no);
    else
      fail(line_no, "unknown keyword '" + keyword + "'");
  }
  try {
    st.system.validate();
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(std::string("configuration incomplete: ") + e.what());
  }
  return ParsedSystem{std::move(st.system), std::move(st.deadlines)};
}

ParsedSystem parse_system_config_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("cannot open configuration file '" + path + "'");
  return parse_system_config(in);
}

}  // namespace hem::cpa
