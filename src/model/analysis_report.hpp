#pragma once

/// \file analysis_report.hpp
/// Results of a compositional system analysis run.

#include <optional>
#include <string>
#include <vector>

#include "core/event_model.hpp"
#include "hierarchical/hierarchical_event_model.hpp"
#include "model/diagnostics.hpp"

namespace hem::cpa {

/// Outcome class of one task's local analysis within the global run.
enum class TaskStatus {
  kConverged,         ///< exact bounds from a reached fixpoint
  kOverloaded,        ///< resource load > 1 (or busy window diverged); bounds are fallbacks
  kDiverged,          ///< global iteration found no fixpoint for this task
  kBudgetExhausted,   ///< iteration or wall-clock budget ran out; bounds are fallbacks
  kDegradedUpstream,  ///< own analysis fine, but a producer's bounds are fallbacks
};

[[nodiscard]] const char* to_string(TaskStatus s) noexcept;

/// Per-task outcome of the global analysis.
struct TaskResult {
  std::string name;
  std::string resource;
  Time bcrt = 0;
  Time wcrt = 0;
  Count activations_in_busy_period = 0;
  Time busy_period = 0;
  Count backlog = 0;  ///< activation-queue bound from the local analysis
  ModelPtr activation;   ///< flat activation model used by the local analysis
  ModelPtr output;       ///< flat output stream (Theta_tau applied)
  HemPtr hem_output;     ///< hierarchical output, for frame tasks only
  double utilization = 0.0;  ///< long-run load this task puts on its resource
  TaskStatus status = TaskStatus::kConverged;

  /// True when the bounds are conservative fallbacks rather than exact.
  [[nodiscard]] bool degraded() const noexcept { return status != TaskStatus::kConverged; }
};

/// Full report of a CpaEngine run.
struct AnalysisReport {
  std::vector<TaskResult> tasks;
  int iterations = 0;
  bool converged = false;
  DiagnosticSink diagnostics;  ///< structured findings of the run

  /// Lookup by task name; throws std::invalid_argument if absent.
  [[nodiscard]] const TaskResult& task(std::string_view name) const;

  /// True when any task carries fallback (non-exact) bounds.
  [[nodiscard]] bool degraded() const;

  /// Aligned text table of all task results.
  [[nodiscard]] std::string format() const;
};

/// Estimate the long-run event rate of a model as eta+(T)/T over a large
/// horizon (used for utilisation reporting and overload warnings).
[[nodiscard]] double long_run_rate(const EventModel& model, Time horizon = 1'000'000);

}  // namespace hem::cpa
