#pragma once

/// \file analysis_report.hpp
/// Results of a compositional system analysis run.

#include <optional>
#include <string>
#include <vector>

#include "core/event_model.hpp"
#include "hierarchical/hierarchical_event_model.hpp"
#include "model/diagnostics.hpp"

namespace hem::cpa {

/// Outcome class of one task's local analysis within the global run.
enum class TaskStatus {
  kConverged,         ///< exact bounds from a reached fixpoint
  kOverloaded,        ///< resource load > 1 (or busy window diverged); bounds are fallbacks
  kDiverged,          ///< global iteration found no fixpoint for this task
  kBudgetExhausted,   ///< iteration or wall-clock budget ran out; bounds are fallbacks
  kDegradedUpstream,  ///< own analysis fine, but a producer's bounds are fallbacks
};

[[nodiscard]] const char* to_string(TaskStatus s) noexcept;

/// Per-task outcome of the global analysis.
struct TaskResult {
  std::string name;
  std::string resource;
  Time bcrt = 0;
  Time wcrt = 0;
  Count activations_in_busy_period = 0;
  Time busy_period = 0;
  Count backlog = 0;  ///< activation-queue bound from the local analysis
  ModelPtr activation;   ///< flat activation model used by the local analysis
  ModelPtr output;       ///< flat output stream (Theta_tau applied)
  HemPtr hem_output;     ///< hierarchical output, for frame tasks only
  double utilization = 0.0;  ///< long-run load this task puts on its resource
  TaskStatus status = TaskStatus::kConverged;

  /// True when the bounds are conservative fallbacks rather than exact.
  [[nodiscard]] bool degraded() const noexcept { return status != TaskStatus::kConverged; }
};

/// Work counters of one CpaEngine run.  The incremental engine skips local
/// analyses whose inputs are unchanged and reuses event-model DAG nodes
/// (keeping their memoisation caches warm) across global iterations; these
/// counters quantify how much work that saved (see docs/performance.md).
/// The work counters are deterministic: they depend only on the system and
/// the engine options, never on the number of worker threads.  The
/// `cache_*`/`rec_extends` block is the exception — it mirrors the
/// process-wide lock-free model-cache probes (`engine.cache.*`), which are
/// only collected while obs counting is enabled and whose race counters
/// legitimately vary with thread interleaving.
struct EngineStats {
  long local_analyses_run = 0;      ///< resource-level local analyses executed
  long local_analyses_skipped = 0;  ///< clean resources that reused prior results
  long models_reused = 0;           ///< activation/output nodes reused across iterations
  long models_rebuilt = 0;          ///< activation/output nodes newly constructed
  long models_compiled = 0;         ///< nodes lowered to the flat compiled form
  long warm_seeded = 0;             ///< tasks pre-seeded from an EngineSnapshot
  int jobs = 1;                     ///< worker threads used by the run

  // engine.cache.* deltas over this run (zero unless obs::counting() was on
  // for the duration; best-effort when other engines run in-process).
  // The delta-memo and OutputModel-recursion race counters are reported
  // separately: they instrument different structures (per-sample slot
  // exchanges vs prefix-length CAS retries), and lumping the recursion
  // races into `cache_publish_races` — as earlier revisions did —
  // attributed OutputModel arena traffic to the curve caches.
  long cache_hits = 0;            ///< delta-curve samples served from a memo slot
  long cache_misses = 0;          ///< samples computed fresh (and then published)
  long cache_publish_races = 0;   ///< two workers computed the same delta sample
  long cache_segment_allocs = 0;  ///< lazy memo-segment allocations
  long rec_extends = 0;           ///< OutputModel recursion-prefix extensions
  long rec_publish_races = 0;     ///< OutputModel prefix-length CAS retries

  /// Fraction of resource-iteration slots served from the previous
  /// iteration's results instead of a fresh local analysis.
  [[nodiscard]] double analysis_cache_hit_rate() const noexcept {
    const long total = local_analyses_run + local_analyses_skipped;
    return total == 0 ? 0.0 : static_cast<double>(local_analyses_skipped) / total;
  }

  /// Fraction of per-iteration model-node demands served by reuse.
  [[nodiscard]] double node_reuse_rate() const noexcept {
    const long total = models_reused + models_rebuilt;
    return total == 0 ? 0.0 : static_cast<double>(models_reused) / total;
  }

  /// Fraction of delta-curve queries served from the lock-free memo
  /// (0 when obs counting was disabled and nothing was recorded).
  [[nodiscard]] double curve_cache_hit_rate() const noexcept {
    const long total = cache_hits + cache_misses;
    return total == 0 ? 0.0 : static_cast<double>(cache_hits) / total;
  }
};

/// Full report of a CpaEngine run.
struct AnalysisReport {
  std::vector<TaskResult> tasks;
  int iterations = 0;
  bool converged = false;
  EngineStats stats;           ///< work counters of the run
  DiagnosticSink diagnostics;  ///< structured findings of the run

  /// Lookup by task name; throws std::invalid_argument if absent.
  [[nodiscard]] const TaskResult& task(std::string_view name) const;

  /// True when any task carries fallback (non-exact) bounds.
  [[nodiscard]] bool degraded() const;

  /// Aligned text table of all task results.
  [[nodiscard]] std::string format() const;
};

/// Estimate the long-run event rate of a model as eta+(T)/T over a large
/// horizon (used for utilisation reporting and overload warnings).
[[nodiscard]] double long_run_rate(const EventModel& model, Time horizon = 1'000'000);

}  // namespace hem::cpa
