#pragma once

/// \file cpa_engine.hpp
/// Global compositional analysis: iterate between local scheduling analysis
/// and output event-stream calculation until the system reaches a fixpoint.
///
/// Each global iteration (paper section 1):
///   1. resolve every task's activation stream from the current output
///      streams of its producers (external models, OR-combinations, packed
///      hierarchical models, unpacked inner streams);
///   2. run the local analysis of every resource whose tasks are all
///      resolved, obtaining response-time intervals [r-, r+];
///   3. compute output streams: Theta_tau on flat streams, outer output +
///      inner update on hierarchical streams.
/// Convergence is detected by comparing response times and sampled
/// activation curves between consecutive iterations.
///
/// Failure handling comes in two modes:
///   * graceful (default): a failing local analysis (overload, busy-window
///     divergence, exhausted budget) is recorded as a Diagnostic, the
///     affected tasks receive conservative fallback bounds (utilisation
///     envelope or infinity, sporadic-envelope output streams), downstream
///     tasks are tainted as degraded, and the run completes with a full
///     AnalysisReport carrying per-task statuses;
///   * strict: the first failure throws AnalysisError (the classic
///     all-or-nothing behaviour, useful in tests and schedulability
///     oracles).

#include <chrono>
#include <map>

#include "model/analysis_report.hpp"
#include "model/diagnostics.hpp"
#include "model/system.hpp"

namespace hem::cpa {

struct EngineOptions {
  int max_iterations = 64;
  Count compare_horizon = 64;  ///< delta-curve samples used for convergence
  sched::FixpointLimits fixpoint_limits{};
  bool check_overload = true;  ///< detect resource load > 1 before local analysis
  /// Classic SymTA/S-style propagation: re-fit every output stream to a
  /// standard event model instead of propagating exact curves.  Lossy but
  /// keeps the representation closed; exposed for the A4 ablation and for
  /// users reproducing parameter-based tool results.
  bool propagate_fitted_sem = false;
  /// Throw AnalysisError on the first overload/divergence instead of
  /// degrading to conservative fallback bounds.
  bool strict = false;
  /// Wall-clock budget for the whole run in milliseconds (0 = unlimited).
  /// Propagated into every busy-window fixpoint via FixpointLimits; on
  /// exhaustion remaining tasks are reported as BudgetExhausted.
  long wall_clock_budget_ms = 0;
};

class CpaEngine {
 public:
  explicit CpaEngine(const System& system, EngineOptions options = {});

  /// Run the global iteration.  In graceful mode (default) always returns a
  /// report; per-task statuses and `report.diagnostics` describe any
  /// degradation.  In strict mode throws AnalysisError on divergence or
  /// overload.
  [[nodiscard]] AnalysisReport run();

 private:
  struct TaskState {
    ModelPtr act_flat;   ///< resolved flat activation (outer for HEMs)
    HemPtr act_hem;      ///< packed activation, if any
    ModelPtr out_flat;   ///< flat output after local analysis
    HemPtr out_hem;      ///< hierarchical output, frame tasks only
    bool analyzed = false;
    Time bcrt = 0;
    Time wcrt = 0;
    Count q_max = 0;
    Count backlog = 0;
    Time busy = 0;
    TaskStatus status = TaskStatus::kConverged;
    bool has_diag = false;      ///< `diag` carries a valid record for this task
    bool hem_degraded = false;  ///< inner streams replaced by fallback envelopes
    Diagnostic diag{};          ///< failure/degradation record, valid when has_diag
  };

  void resolve_activations();
  void check_resource_load();
  void analyze_resources();
  void compute_outputs();
  [[nodiscard]] std::vector<std::vector<Time>> signatures() const;

  void apply_resource_fallback(ResourceId r, const std::vector<TaskId>& ids,
                               TaskStatus status, DiagCode code, const std::string& detail);
  void finalize_divergence(bool budget_hit);
  void taint_downstream();
  [[nodiscard]] AnalysisReport assemble_report(int iterations, bool converged) const;

  const System& system_;
  EngineOptions options_;
  sched::FixpointLimits limits_;  ///< fixpoint limits incl. derived deadline
  std::vector<TaskState> state_;
  std::vector<char> resource_overloaded_;      ///< per-resource flag, this iteration
  std::map<ResourceId, Diagnostic> resource_diag_;
  std::vector<std::vector<Time>> prev_sig_;  ///< per-task signature, iteration N-1
  std::vector<std::vector<Time>> last_sig_;  ///< per-task signature, iteration N
  int current_iteration_ = 0;
};

}  // namespace hem::cpa
