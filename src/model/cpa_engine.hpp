#pragma once

/// \file cpa_engine.hpp
/// Global compositional analysis: iterate between local scheduling analysis
/// and output event-stream calculation until the system reaches a fixpoint.
///
/// Each global iteration (paper section 1):
///   1. resolve every task's activation stream from the current output
///      streams of its producers (external models, OR-combinations, packed
///      hierarchical models, unpacked inner streams);
///   2. run the local analysis of every resource whose tasks are all
///      resolved, obtaining response-time intervals [r-, r+];
///   3. compute output streams: Theta_tau on flat streams, outer output +
///      inner update on hierarchical streams.
/// Convergence is detected by comparing response times and sampled
/// activation curves between consecutive iterations.
///
/// The engine is INCREMENTAL and PARALLEL:
///   * Dirty-set scheduling - every model node carries a stable identity
///     (nodes are immutable), so an activation whose producer nodes did not
///     change between iterations is provably unchanged.  Resources whose
///     complete input set is clean skip their local analysis and keep the
///     prior ResponseResults; see AnalysisReport::stats for the counters.
///   * Node reuse - resolve/output steps return the previous DAG node
///     (keeping its warm delta-curve memoisation) when all inputs are
///     pointer-identical, instead of reconstructing OrModel/OutputModel/
///     pack nodes every round.
///   * Worker pool - each iteration flattens the dirty resources into
///     per-TASK work units (one busy-window analysis each) and fans them
///     onto a persistent work-stealing pool of `EngineOptions::jobs`
///     threads, so even a single wide resource parallelises.  Results,
///     diagnostics, and their order are bit-identical for every job count:
///     units write disjoint per-index slots, and the reduction (recording
///     results, emitting diagnostics, picking which error wins) happens
///     serially in resource/task order after the batch completes.
///
/// Failure handling comes in two modes:
///   * graceful (default): a failing local analysis (overload, busy-window
///     divergence, exhausted budget) is recorded as a Diagnostic, the
///     affected tasks receive conservative fallback bounds (utilisation
///     envelope or infinity, sporadic-envelope output streams), downstream
///     tasks are tainted as degraded, and the run completes with a full
///     AnalysisReport carrying per-task statuses;
///   * strict: the first failure throws AnalysisError (the classic
///     all-or-nothing behaviour, useful in tests and schedulability
///     oracles).  With jobs > 1 the failure of the lowest-numbered dirty
///     resource is rethrown, matching the serial engine.

#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "model/analysis_report.hpp"
#include "model/diagnostics.hpp"
#include "model/system.hpp"

namespace hem::exec {
class WorkPool;
}

namespace hem::cpa {

struct EngineSnapshot;

struct EngineOptions {
  int max_iterations = 64;
  Count compare_horizon = 64;  ///< delta-curve samples used for convergence
  sched::FixpointLimits fixpoint_limits{};
  bool check_overload = true;  ///< detect resource load > 1 before local analysis
  /// Classic SymTA/S-style propagation: re-fit every output stream to a
  /// standard event model instead of propagating exact curves.  Lossy but
  /// keeps the representation closed; exposed for the A4 ablation and for
  /// users reproducing parameter-based tool results.
  bool propagate_fitted_sem = false;
  /// Throw AnalysisError on the first overload/divergence instead of
  /// degrading to conservative fallback bounds.
  bool strict = false;
  /// Wall-clock budget for the whole run in milliseconds (0 = unlimited).
  /// Propagated into every busy-window fixpoint via FixpointLimits; on
  /// exhaustion remaining tasks are reported as BudgetExhausted.
  long wall_clock_budget_ms = 0;
  /// Worker threads for the per-iteration local analyses: 1 = serial,
  /// 0 = one per hardware thread.  Results are bit-identical for every
  /// value (modulo wall-clock budgets, which are inherently timing
  /// dependent).
  int jobs = 1;
  /// Re-analyse only resources whose activation inputs changed since their
  /// last local analysis and reuse event-model nodes (with their warm
  /// memoisation caches) across iterations.  Disable to force the classic
  /// full re-evaluation every round (benchmark baseline).
  bool incremental = true;
  /// Lower stable model nodes to the flat compiled form (rtc/compile.hpp):
  /// an activation node that survived its last local analysis unchanged is
  /// frozen into dense delta-sample arrays plus an arrival-curve pair, so
  /// busy-window fixpoints answer delta/eta queries with a branch-free
  /// binary search instead of virtual DAG dispatch and atomic memo traffic.
  /// After convergence every task's activation and output node is compiled
  /// for report consumers (hemlint rate propagation, ModelChecker sweeps).
  /// Queries beyond the compiled horizon fall back to the lazy DAG, so
  /// results are bit-identical with the flag off (see docs/compilation.md);
  /// disable to benchmark the pure-lazy baseline.
  bool compile_curves = true;
  /// Optional cooperative cancellation token (not owned).  Polled once per
  /// global iteration and, via FixpointLimits, every few thousand
  /// busy-window fixpoint steps.  When it fires, run() throws
  /// AnalysisError(ErrorCode::kCancelled) in BOTH graceful and strict mode:
  /// a cancelled run must not masquerade as a degraded-but-valid report.
  const exec::CancelToken* cancel = nullptr;
  /// Warm-start snapshot from a previous converged run (not owned; must
  /// outlive the engine).  Tasks that provably have the same local-analysis
  /// input as in the snapshot run — matching structural signature,
  /// pointer-identical external nodes (see intern_external_models), an
  /// unchanged resource mate set — start in the analysed/converged state,
  /// so only the changed delta is recomputed.  Results are bit-identical to
  /// a cold run; EngineStats::warm_seeded counts the seeded tasks.
  const EngineSnapshot* warm = nullptr;
};

class CpaEngine {
 public:
  explicit CpaEngine(const System& system, EngineOptions options = {});
  ~CpaEngine();  // out-of-line: WorkPool is incomplete here

  /// Run the global iteration.  In graceful mode (default) always returns a
  /// report; per-task statuses and `report.diagnostics` describe any
  /// degradation.  In strict mode throws AnalysisError on divergence or
  /// overload.
  [[nodiscard]] AnalysisReport run();

  /// Capture the converged per-task state of the last run() for cross-run
  /// warm starting (EngineOptions::warm).  Only converged tasks of a
  /// converged run are captured — their bounds are fixpoints and therefore
  /// budget-independent; an empty snapshot (valid() == false) comes back
  /// when the last run did not converge or run() was never called.
  [[nodiscard]] EngineSnapshot make_snapshot() const;

 private:
  struct TaskState {
    ModelPtr act_flat;   ///< resolved flat activation (outer for HEMs)
    HemPtr act_hem;      ///< packed activation, if any
    ModelPtr out_flat;   ///< flat output after local analysis
    HemPtr out_hem;      ///< hierarchical output, frame tasks only
    bool analyzed = false;
    Time bcrt = 0;
    Time wcrt = 0;
    Count q_max = 0;
    Count backlog = 0;
    Time busy = 0;
    TaskStatus status = TaskStatus::kConverged;
    bool has_diag = false;      ///< `diag` carries a valid analysis record
    Diagnostic diag{};          ///< local-analysis failure/degradation record
    bool out_has_diag = false;  ///< `out_diag` carries a valid output record
    Diagnostic out_diag{};      ///< inner-update degradation record
    bool hem_degraded = false;  ///< inner streams replaced by fallback envelopes

    // Incremental bookkeeping.  Event-model nodes are immutable, so the raw
    // pointer of a node is a version stamp: identical pointer == identical
    // stream.
    std::vector<const void*> act_key;    ///< producer nodes act_flat was built from
    const void* analyzed_act = nullptr;  ///< activation node of the last local analysis
    const void* out_key_act = nullptr;   ///< inputs the current outputs were built from
    const void* out_key_hem = nullptr;
    Time out_key_bcrt = -1;
    Time out_key_wcrt = -1;
    double rate = 0.0;                   ///< memoised long_run_rate(act_flat)
    const void* rate_key = nullptr;      ///< activation node `rate` belongs to

    // Convergence bookkeeping: previous iteration's observable state.
    ModelPtr prev_act;
    bool prev_analyzed = false;
    Time prev_bcrt = -1;
    Time prev_wcrt = -1;
  };

  void resolve_activations();
  void check_resource_load();
  void analyze_resources();

  /// Analyse-one-task closure for a resource's local analysis: calling it
  /// with task slot i (index into `ids`) returns that task's
  /// ResponseResult.  The underlying policy analysis object is shared and
  /// immutable after construction, so different slots may be evaluated
  /// concurrently from different threads.
  using LocalAnalyzeFn = std::function<sched::ResponseResult(std::size_t)>;
  [[nodiscard]] LocalAnalyzeFn make_local_analysis(ResourceId r,
                                                   const std::vector<TaskId>& ids) const;
  void compute_outputs();

  /// Compare this iteration's per-task state (analysed flag, response
  /// bounds, activation curves up to compare_horizon) against the previous
  /// iteration, recording per-task change flags for divergence handling.
  /// Early-exits per task: pointer-identical activation nodes are equal by
  /// construction, rebuilt nodes are sampled against the memoised previous
  /// curves only until the first mismatch.
  [[nodiscard]] bool update_convergence();

  [[nodiscard]] double cached_rate(TaskId t);
  [[nodiscard]] int effective_jobs() const;
  void seed_from_warm();

  void apply_resource_fallback(ResourceId r, const std::vector<TaskId>& ids,
                               TaskStatus status, DiagCode code, const std::string& detail);
  void finalize_divergence(bool budget_hit);
  void taint_downstream();
  [[nodiscard]] AnalysisReport assemble_report(int iterations, bool converged);

  const System& system_;
  EngineOptions options_;
  sched::FixpointLimits limits_;  ///< fixpoint limits incl. derived deadline
  std::vector<TaskState> state_;
  std::vector<char> resource_overloaded_;      ///< per-resource flag, this iteration
  std::map<ResourceId, Diagnostic> resource_diag_;
  std::vector<char> changed_;  ///< per-task: iteration N differs from N-1
  bool have_prev_ = false;     ///< at least one full iteration completed
  EngineStats stats_;
  /// Persistent worker pool for the per-task local-analysis units; created
  /// lazily on the first parallel batch (effective_jobs() > 1) and reused
  /// across global iterations so `--jobs` never pays per-iteration thread
  /// spawns.  Thread count is auto-capped to the system's task count — the
  /// maximum number of work units any batch can carry.
  std::unique_ptr<exec::WorkPool> pool_;
  int current_iteration_ = 0;
  long warm_seeded_ = 0;        ///< tasks seeded from EngineOptions::warm
  bool last_converged_ = false; ///< last run() reached the global fixpoint
};

}  // namespace hem::cpa
