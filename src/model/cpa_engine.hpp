#pragma once

/// \file cpa_engine.hpp
/// Global compositional analysis: iterate between local scheduling analysis
/// and output event-stream calculation until the system reaches a fixpoint.
///
/// Each global iteration (paper section 1):
///   1. resolve every task's activation stream from the current output
///      streams of its producers (external models, OR-combinations, packed
///      hierarchical models, unpacked inner streams);
///   2. run the local analysis of every resource whose tasks are all
///      resolved, obtaining response-time intervals [r-, r+];
///   3. compute output streams: Theta_tau on flat streams, outer output +
///      inner update on hierarchical streams.
/// Convergence is detected by comparing response times and sampled
/// activation curves between consecutive iterations.  Feed-forward systems
/// converge in as many iterations as the depth of the stream graph; cyclic
/// systems iterate to a fixpoint or hit the iteration cap (AnalysisError).

#include "model/analysis_report.hpp"
#include "model/system.hpp"

namespace hem::cpa {

struct EngineOptions {
  int max_iterations = 64;
  Count compare_horizon = 64;  ///< delta-curve samples used for convergence
  sched::FixpointLimits fixpoint_limits{};
  bool check_overload = true;  ///< fail fast when a resource's load exceeds 1
  /// Classic SymTA/S-style propagation: re-fit every output stream to a
  /// standard event model instead of propagating exact curves.  Lossy but
  /// keeps the representation closed; exposed for the A4 ablation and for
  /// users reproducing parameter-based tool results.
  bool propagate_fitted_sem = false;
};

class CpaEngine {
 public:
  explicit CpaEngine(const System& system, EngineOptions options = {});

  /// Run the global iteration; throws AnalysisError on divergence or
  /// overload.
  [[nodiscard]] AnalysisReport run();

 private:
  struct TaskState {
    ModelPtr act_flat;   ///< resolved flat activation (outer for HEMs)
    HemPtr act_hem;      ///< packed activation, if any
    ModelPtr out_flat;   ///< flat output after local analysis
    HemPtr out_hem;      ///< hierarchical output, frame tasks only
    bool analyzed = false;
    Time bcrt = 0;
    Time wcrt = 0;
    Count q_max = 0;
    Count backlog = 0;
    Time busy = 0;
  };

  void resolve_activations();
  void analyze_resources();
  void compute_outputs();
  [[nodiscard]] std::vector<Time> signature() const;
  void check_resource_load() const;

  const System& system_;
  EngineOptions options_;
  std::vector<TaskState> state_;
};

}  // namespace hem::cpa
