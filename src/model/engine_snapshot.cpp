#include "model/engine_snapshot.hpp"

#include <set>
#include <sstream>
#include <typeinfo>

#include "core/leaky_bucket_model.hpp"
#include "core/standard_event_model.hpp"

namespace hem::cpa {

const EngineSnapshot::TaskSnap* EngineSnapshot::find(const std::string& name) const {
  for (const TaskSnap& t : tasks)
    if (t.name == name) return &t;
  return nullptr;
}

std::size_t EngineSnapshot::approx_bytes() const {
  // Memoisation tables dominate a warm node, so a flat per-node estimate
  // beats sizeof(): 4 KiB ≈ a few hundred memoised points plus the node
  // itself.  Distinctness matters — act_flat of one task is frequently the
  // out_flat of its producer.
  constexpr std::size_t kPerNode = 4096;
  std::set<const void*> nodes;
  const auto note = [&nodes](const void* p) {
    if (p != nullptr) nodes.insert(p);
  };
  std::size_t bytes = sizeof(EngineSnapshot) + tasks.capacity() * sizeof(TaskSnap);
  for (const TaskSnap& t : tasks) {
    bytes += t.name.capacity() + t.resource.capacity() + t.signature.capacity();
    bytes += t.act_key.capacity() * sizeof(const void*);
    bytes += t.pack_sources.capacity() * sizeof(ModelPtr);
    note(t.act_flat.get());
    note(t.act_hem.get());
    note(t.out_flat.get());
    note(t.out_hem.get());
    note(t.external.get());
    note(t.pack_timer.get());
    for (const ModelPtr& s : t.pack_sources) note(s.get());
  }
  return bytes + nodes.size() * kPerNode;
}

std::string task_signature(const System& system, TaskId t) {
  const TaskSpec& task = system.tasks().at(t);
  const ResourceSpec& res = system.resources().at(task.resource);
  std::ostringstream os;
  os << task.name << '|' << res.name << ':' << static_cast<int>(res.policy) << ':'
     << res.tdma_cycle << ':' << res.slot_length << "|p" << task.priority << "|c"
     << task.cet.best << ':' << task.cet.worst << "|s" << task.slot << "|d" << task.deadline
     << '|';
  const ActivationSpec& spec = system.activation(t);
  const auto name_of = [&](TaskId p) { return system.tasks().at(p).name; };
  if (std::holds_alternative<ExternalActivation>(spec)) {
    os << "ext";
  } else if (const auto* by = std::get_if<TaskOutputActivation>(&spec)) {
    os << "or(";
    for (TaskId p : by->producers) os << name_of(p) << ',';
    os << ')';
  } else if (const auto* andj = std::get_if<AndActivation>(&spec)) {
    os << "and@" << andj->period << '(';
    for (TaskId p : andj->producers) os << name_of(p) << ',';
    os << ')';
  } else if (const auto* packed = std::get_if<PackedActivation>(&spec)) {
    os << "pack" << (packed->timer ? "+timer" : "") << '(';
    for (const PackedActivation::Input& in : packed->inputs) {
      if (const auto* tid = std::get_if<TaskId>(&in.source))
        os << name_of(*tid);
      else
        os << "<model>";
      os << ':' << static_cast<int>(in.coupling) << ',';
    }
    os << ')';
  } else if (const auto* up = std::get_if<UnpackedActivation>(&spec)) {
    os << "unpack(" << name_of(up->frame_task) << ',' << up->index << ')';
  } else {
    os << "none";
  }
  return os.str();
}

bool same_external_model(const EventModel& a, const EventModel& b) {
  if (&a == &b) return true;
  if (typeid(a) != typeid(b)) return false;
  // Whitelist of types whose describe() spells out every defining
  // parameter exactly.  TraceModel's describe is lossy (event count plus
  // endpoints) and OffsetTransactionModel's omits the offset values, so
  // those — and anything else — never intern.
  if (dynamic_cast<const StandardEventModel*>(&a) != nullptr ||
      dynamic_cast<const LeakyBucketModel*>(&a) != nullptr)
    return a.describe() == b.describe();
  return false;
}

int intern_external_models(System& system, const EngineSnapshot& snapshot) {
  int interned = 0;
  const auto& tasks = system.tasks();
  for (TaskId t = 0; t < tasks.size(); ++t) {
    const EngineSnapshot::TaskSnap* snap = snapshot.find(tasks[t].name);
    if (snap == nullptr) continue;
    // Candidate replacement nodes of this task in the snapshot run.
    std::vector<ModelPtr> pool;
    if (snap->external) pool.push_back(snap->external);
    for (const ModelPtr& m : snap->pack_sources)
      if (m) pool.push_back(m);
    if (snap->pack_timer) pool.push_back(snap->pack_timer);
    if (pool.empty()) continue;
    system.rewrite_external_models(t, [&](const ModelPtr& current) -> ModelPtr {
      for (const ModelPtr& candidate : pool) {
        if (candidate.get() == current.get()) return nullptr;  // already shared
        if (same_external_model(*current, *candidate)) {
          ++interned;
          return candidate;
        }
      }
      return nullptr;
    });
  }
  return interned;
}

}  // namespace hem::cpa
