#include "model/sensitivity.hpp"

#include "core/errors.hpp"

namespace hem::cpa {

FeasibilityResult check_feasible(const System& system, const DeadlineMap& deadlines,
                                 EngineOptions options) {
  FeasibilityResult result;
  try {
    result.report = CpaEngine(system, options).run();
  } catch (const AnalysisError& e) {
    result.feasible = false;
    result.reason = e.what();
    return result;
  }
  // Fallback bounds are conservative, not exact: a degraded report cannot
  // certify feasibility, and treating it as infeasible keeps the sensitivity
  // binary searches monotone in graceful mode.
  if (result.report.degraded()) {
    result.feasible = false;
    for (const Diagnostic& d : result.report.diagnostics.entries()) {
      if (d.severity == Severity::kError) {
        result.reason = "analysis degraded: " + std::string(to_string(d.code)) + " on '" +
                        d.entity + "'";
        break;
      }
    }
    if (result.reason.empty()) result.reason = "analysis degraded: fallback bounds in effect";
    return result;
  }
  for (const auto& [task, deadline] : deadlines) {
    const Time wcrt = result.report.task(task).wcrt;
    if (wcrt > deadline) {
      result.feasible = false;
      result.reason = "task '" + task + "' misses its deadline (" + std::to_string(wcrt) +
                      " > " + std::to_string(deadline) + ")";
      return result;
    }
  }
  result.feasible = true;
  return result;
}

namespace {

bool feasible_at(const System& base, const ParameterMutator& apply, Time value,
                 const DeadlineMap& deadlines, const EngineOptions& options) {
  System probe = base;  // Systems are value types; copying is cheap
  apply(probe, value);
  return check_feasible(probe, deadlines, options).feasible;
}

}  // namespace

Time max_feasible_value(const System& base, const ParameterMutator& apply, Time lo, Time hi,
                        const DeadlineMap& deadlines, EngineOptions options) {
  if (lo > hi) throw std::invalid_argument("max_feasible_value: empty interval");
  if (!feasible_at(base, apply, lo, deadlines, options)) return lo - 1;
  // Invariant: lo feasible, hi + 1 "infeasible frontier".
  while (lo < hi) {
    const Time mid = lo + (hi - lo + 1) / 2;
    if (feasible_at(base, apply, mid, deadlines, options))
      lo = mid;
    else
      hi = mid - 1;
  }
  return lo;
}

Time min_feasible_value(const System& base, const ParameterMutator& apply, Time lo, Time hi,
                        const DeadlineMap& deadlines, EngineOptions options) {
  if (lo > hi) throw std::invalid_argument("min_feasible_value: empty interval");
  if (!feasible_at(base, apply, hi, deadlines, options)) return hi + 1;
  while (lo < hi) {
    const Time mid = lo + (hi - lo) / 2;
    if (feasible_at(base, apply, mid, deadlines, options))
      hi = mid;
    else
      lo = mid + 1;
  }
  return lo;
}

Time max_feasible_cet(const System& base, const std::string& task, Time lo, Time hi,
                      const DeadlineMap& deadlines, EngineOptions options) {
  const TaskId id = base.task_id(task);
  return max_feasible_value(
      base,
      [id](System& sys, Time value) { sys.set_task_cet(id, sched::ExecutionTime(value)); },
      lo, hi, deadlines, options);
}

std::optional<std::map<std::string, int>> optimize_priorities(System& system,
                                                              const std::string& resource,
                                                              const DeadlineMap& deadlines,
                                                              EngineOptions options) {
  std::size_t rid = system.resources().size();
  for (std::size_t r = 0; r < system.resources().size(); ++r)
    if (system.resources()[r].name == resource) rid = r;
  if (rid == system.resources().size())
    throw std::invalid_argument("optimize_priorities: unknown resource '" + resource + "'");
  const Policy policy = system.resources()[rid].policy;
  if (policy != Policy::kSppPreemptive && policy != Policy::kSpnpCan)
    throw std::invalid_argument(
        "optimize_priorities: only static-priority resources are supported");

  std::vector<TaskId> members;
  for (TaskId t = 0; t < system.tasks().size(); ++t)
    if (system.tasks()[t].resource == rid) members.push_back(t);
  if (members.empty())
    throw std::invalid_argument("optimize_priorities: resource has no tasks");

  // Audsley: fill levels from the bottom; System `work` carries the levels
  // assigned so far, unassigned tasks get temporary top priorities.
  System work = system;
  std::vector<TaskId> unassigned = members;
  std::map<std::string, int> assignment;

  for (int level = static_cast<int>(members.size()); level >= 1; --level) {
    bool placed = false;
    for (std::size_t pos = 0; pos < unassigned.size(); ++pos) {
      const TaskId candidate = unassigned[pos];
      System probe = work;
      probe.set_task_priority(candidate, level);
      int filler = 1;
      for (const TaskId other : unassigned)
        if (other != candidate) probe.set_task_priority(other, filler++);

      // Audsley oracle: only the candidate's own deadline matters at this
      // level (other tasks are checked at their own levels).
      bool ok = true;
      try {
        const auto report = CpaEngine(probe, options).run();
        if (report.degraded()) ok = false;
        const auto& name = system.tasks()[candidate].name;
        const auto dl = deadlines.find(name);
        if (dl != deadlines.end() && report.task(name).wcrt > dl->second) ok = false;
      } catch (const AnalysisError&) {
        ok = false;
      }
      if (ok) {
        work.set_task_priority(candidate, level);
        assignment[system.tasks()[candidate].name] = level;
        unassigned.erase(unassigned.begin() + static_cast<std::ptrdiff_t>(pos));
        placed = true;
        break;
      }
    }
    if (!placed) return std::nullopt;
  }

  // Final sanity: the complete assignment must satisfy ALL deadlines.
  if (!check_feasible(work, deadlines, options).feasible) return std::nullopt;
  system = std::move(work);
  return assignment;
}

}  // namespace hem::cpa
