#pragma once

/// \file path_latency.hpp
/// End-to-end path latency over a chain of analysed tasks.
///
/// The classic compositional bound sums per-hop response times; because the
/// event models already carry the jitter accumulated upstream, the sum of
/// local WCRTs is a sound end-to-end bound for event-triggered chains
/// (every hop is activated by the previous hop's output).  For chains
/// crossing a pending COM signal, the sampling delay of up to one maximum
/// frame gap must be added; `path_wcrt_with_sampling` exposes that term.

#include <span>
#include <string>

#include "model/analysis_report.hpp"

namespace hem::cpa {

/// Sum of worst-case response times along `tasks` (in path order).
/// \throws std::invalid_argument if a task is unknown.
[[nodiscard]] Time path_wcrt(const AnalysisReport& report, std::span<const std::string> tasks);

/// Sum of best-case response times along the path.
[[nodiscard]] Time path_bcrt(const AnalysisReport& report, std::span<const std::string> tasks);

/// Path WCRT plus explicit sampling delays (e.g. the delta+_f(2) a pending
/// signal can wait in its COM register before hop k picks it up).
[[nodiscard]] Time path_wcrt_with_sampling(const AnalysisReport& report,
                                           std::span<const std::string> tasks,
                                           std::span<const Time> sampling_delays);

}  // namespace hem::cpa
