#pragma once

/// \file sensitivity.hpp
/// Sensitivity analysis on top of the CPA engine: how far can a design
/// parameter move before the system stops meeting its deadlines?  The
/// classic design-space question SymTA/S-class tools answer with repeated
/// global analyses and a binary search over one parameter.
///
/// Feasibility of a system is monotone in the supported parameters
/// (increasing a CET or decreasing a period only adds load), so binary
/// search applies.

#include <functional>
#include <map>
#include <optional>
#include <string>

#include "model/cpa_engine.hpp"
#include "model/system.hpp"

namespace hem::cpa {

/// Per-task deadline constraints (task name -> relative deadline).
/// Tasks not listed are unconstrained (only the analysis itself must
/// succeed, i.e. no overload/divergence).
using DeadlineMap = std::map<std::string, Time>;

struct FeasibilityResult {
  bool feasible = false;
  std::string reason;       ///< violated deadline or analysis error
  AnalysisReport report;    ///< valid only when the analysis converged
};

/// Run the engine and evaluate deadlines.
[[nodiscard]] FeasibilityResult check_feasible(const System& system,
                                               const DeadlineMap& deadlines,
                                               EngineOptions options = {});

/// Applies the probed value to a copy of the base system.
using ParameterMutator = std::function<void(System&, Time value)>;

/// Largest value in [lo, hi] for which the mutated system stays feasible.
/// Feasibility must be monotone non-increasing in the value (e.g. the value
/// is a CET).  Returns lo - 1 if even `lo` is infeasible.
[[nodiscard]] Time max_feasible_value(const System& base, const ParameterMutator& apply,
                                      Time lo, Time hi, const DeadlineMap& deadlines,
                                      EngineOptions options = {});

/// Smallest value in [lo, hi] for which the mutated system stays feasible.
/// Feasibility must be monotone non-decreasing in the value (e.g. the value
/// is a period).  Returns hi + 1 if even `hi` is infeasible.
[[nodiscard]] Time min_feasible_value(const System& base, const ParameterMutator& apply,
                                      Time lo, Time hi, const DeadlineMap& deadlines,
                                      EngineOptions options = {});

/// Convenience: the largest worst-case execution time of `task` (best-case
/// scaled along) meeting all deadlines.
[[nodiscard]] Time max_feasible_cet(const System& base, const std::string& task, Time lo,
                                    Time hi, const DeadlineMap& deadlines,
                                    EngineOptions options = {});

/// System-level Audsley priority optimisation: find priorities for the
/// tasks on `resource` (an SPP or CAN resource) such that the WHOLE system
/// meets `deadlines`, using the global engine as the schedulability oracle.
/// Tasks on other resources keep their priorities.  On success the mapping
/// task-name -> priority (1 = highest, within the resource) is returned
/// and `system` is updated in place; std::nullopt if no assignment works.
[[nodiscard]] std::optional<std::map<std::string, int>> optimize_priorities(
    System& system, const std::string& resource, const DeadlineMap& deadlines,
    EngineOptions options = {});

}  // namespace hem::cpa
