#include "model/diagnostics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace hem::cpa {

const char* to_string(Severity s) noexcept {
  switch (s) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

const char* to_string(DiagCode c) noexcept {
  switch (c) {
    case DiagCode::kResourceOverload: return "resource-overload";
    case DiagCode::kBusyWindowDivergence: return "busy-window-divergence";
    case DiagCode::kBusyWindowBudget: return "busy-window-budget";
    case DiagCode::kGlobalIterationLimit: return "global-iteration-limit";
    case DiagCode::kWallClockBudget: return "wall-clock-budget";
    case DiagCode::kUnresolvedActivation: return "unresolved-activation";
    case DiagCode::kInnerUpdateUnbounded: return "inner-update-unbounded";
    case DiagCode::kDegradedUpstream: return "degraded-upstream";
  }
  return "?";
}

void DiagnosticSink::report(Diagnostic d) {
  const auto it = std::find_if(entries_.begin(), entries_.end(), [&](const Diagnostic& e) {
    return e.code == d.code && e.entity == d.entity;
  });
  if (it != entries_.end())
    *it = std::move(d);
  else
    entries_.push_back(std::move(d));
}

std::size_t DiagnosticSink::count(Severity s) const {
  return static_cast<std::size_t>(std::count_if(
      entries_.begin(), entries_.end(), [s](const Diagnostic& d) { return d.severity == s; }));
}

std::string DiagnosticSink::format() const {
  std::ostringstream os;
  for (const Diagnostic& d : entries_) {
    os << "[" << to_string(d.severity) << "] " << to_string(d.code) << " '" << d.entity
       << "' (iteration " << d.iteration << "): " << d.detail << '\n';
  }
  return os.str();
}

SporadicEnvelopeModel::SporadicEnvelopeModel(Time spacing) : spacing_(spacing) {
  if (spacing < 0 || is_infinite(spacing))
    throw std::invalid_argument("SporadicEnvelopeModel: need 0 <= spacing < infinity");
}

Time SporadicEnvelopeModel::delta_min_raw(Count n) const { return sat_mul(spacing_, n - 1); }

Time SporadicEnvelopeModel::delta_plus_raw(Count) const { return kTimeInfinity; }

std::string SporadicEnvelopeModel::describe() const {
  std::ostringstream os;
  os << "SporadicEnvelope(dmin=" << spacing_ << ", delta+=inf)";
  return os.str();
}

Time utilization_wcrt_envelope(const std::vector<EnvelopeTask>& tasks, Time horizon) {
  if (horizon <= 0) throw std::invalid_argument("utilization_wcrt_envelope: need horizon > 0");
  double demand = 0.0;  // D = sum C+_i * eta+_i(H)
  for (const EnvelopeTask& t : tasks) {
    if (!t.activation) continue;
    const Count events = t.activation->eta_plus(horizon);
    if (is_infinite_count(events)) return kTimeInfinity;
    demand += static_cast<double>(t.wcet) * static_cast<double>(events);
  }
  const double h = static_cast<double>(horizon);
  if (demand >= h) return kTimeInfinity;  // sampled utilisation >= 1
  const double bound = std::ceil(demand * h / (h - demand));
  if (bound >= static_cast<double>(kTimeInfinity)) return kTimeInfinity;
  return static_cast<Time>(bound);
}

}  // namespace hem::cpa
