#include "model/analysis_report.hpp"

#include <algorithm>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace hem::cpa {

namespace {

/// Render times for the report table: the infinity sentinel prints as "inf".
std::string fmt_time(Time t) { return is_infinite(t) ? "inf" : std::to_string(t); }
std::string fmt_count(Count n) { return is_infinite_count(n) ? "inf" : std::to_string(n); }

}  // namespace

const char* to_string(TaskStatus s) noexcept {
  switch (s) {
    case TaskStatus::kConverged: return "converged";
    case TaskStatus::kOverloaded: return "overloaded";
    case TaskStatus::kDiverged: return "diverged";
    case TaskStatus::kBudgetExhausted: return "budget-exhausted";
    case TaskStatus::kDegradedUpstream: return "degraded-upstream";
  }
  return "?";
}

const TaskResult& AnalysisReport::task(std::string_view name) const {
  for (const auto& t : tasks)
    if (t.name == name) return t;
  throw std::invalid_argument("AnalysisReport: no task named '" + std::string(name) + "'");
}

bool AnalysisReport::degraded() const {
  return std::any_of(tasks.begin(), tasks.end(),
                     [](const TaskResult& t) { return t.degraded(); });
}

std::string AnalysisReport::format() const {
  std::ostringstream os;
  os << std::setw(12) << "task" << std::setw(12) << "resource" << std::setw(10) << "R-"
     << std::setw(10) << "R+" << std::setw(8) << "q_max" << std::setw(12) << "busy" << std::setw(8) << "queue" << std::setw(8)
     << "util%" << std::setw(18) << "status" << '\n';
  for (const auto& t : tasks) {
    os << std::setw(12) << t.name << std::setw(12) << t.resource << std::setw(10)
       << fmt_time(t.bcrt) << std::setw(10) << fmt_time(t.wcrt) << std::setw(8)
       << fmt_count(t.activations_in_busy_period) << std::setw(12) << fmt_time(t.busy_period)
       << std::setw(8) << fmt_count(t.backlog) << std::setw(8) << std::fixed
       << std::setprecision(1)
       << (t.utilization * 100.0) << std::setw(18) << to_string(t.status) << '\n';
  }
  os << "iterations: " << iterations << (converged ? " (converged)" : " (NOT converged)");
  if (degraded()) os << " [DEGRADED: conservative fallback bounds in effect]";
  os << '\n';
  if (!diagnostics.empty()) os << "diagnostics:\n" << diagnostics.format();
  return os.str();
}

double long_run_rate(const EventModel& model, Time horizon) {
  const Count n = model.eta_plus(horizon);
  if (is_infinite_count(n)) return std::numeric_limits<double>::infinity();
  return static_cast<double>(n) / static_cast<double>(horizon);
}

}  // namespace hem::cpa
