#include "model/analysis_report.hpp"

#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace hem::cpa {

const TaskResult& AnalysisReport::task(std::string_view name) const {
  for (const auto& t : tasks)
    if (t.name == name) return t;
  throw std::invalid_argument("AnalysisReport: no task named '" + std::string(name) + "'");
}

std::string AnalysisReport::format() const {
  std::ostringstream os;
  os << std::setw(12) << "task" << std::setw(12) << "resource" << std::setw(10) << "R-"
     << std::setw(10) << "R+" << std::setw(8) << "q_max" << std::setw(12) << "busy" << std::setw(8) << "queue" << std::setw(8)
     << "util%" << '\n';
  for (const auto& t : tasks) {
    os << std::setw(12) << t.name << std::setw(12) << t.resource << std::setw(10) << t.bcrt
       << std::setw(10) << t.wcrt << std::setw(8) << t.activations_in_busy_period << std::setw(12)
       << t.busy_period << std::setw(8) << t.backlog << std::setw(8) << std::fixed
       << std::setprecision(1)
       << (t.utilization * 100.0) << '\n';
  }
  os << "iterations: " << iterations << (converged ? " (converged)" : " (NOT converged)")
     << '\n';
  return os.str();
}

double long_run_rate(const EventModel& model, Time horizon) {
  const Count n = model.eta_plus(horizon);
  if (is_infinite_count(n)) return std::numeric_limits<double>::infinity();
  return static_cast<double>(n) / static_cast<double>(horizon);
}

}  // namespace hem::cpa
