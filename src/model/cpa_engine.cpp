#include "model/cpa_engine.hpp"

#include <algorithm>

#include "core/combinators.hpp"
#include "core/errors.hpp"
#include "core/output_model.hpp"
#include "core/sem_fit.hpp"
#include "sched/can_bus.hpp"
#include "sched/edf.hpp"
#include "sched/flexray_static.hpp"
#include "sched/round_robin.hpp"
#include "sched/spp.hpp"
#include "sched/tdma.hpp"

namespace hem::cpa {

CpaEngine::CpaEngine(const System& system, EngineOptions options)
    : system_(system), options_(options) {
  system_.validate();
  state_.resize(system_.tasks().size());
}

void CpaEngine::resolve_activations() {
  const auto& tasks = system_.tasks();
  for (TaskId t = 0; t < tasks.size(); ++t) {
    const ActivationSpec& spec = system_.activation(t);
    TaskState& st = state_[t];

    if (const auto* ext = std::get_if<ExternalActivation>(&spec)) {
      st.act_flat = ext->model;
      continue;
    }
    if (const auto* by = std::get_if<TaskOutputActivation>(&spec)) {
      std::vector<ModelPtr> producers;
      bool complete = true;
      for (TaskId p : by->producers) {
        if (!state_[p].out_flat) {
          complete = false;
          break;
        }
        producers.push_back(state_[p].out_flat);
      }
      if (complete) st.act_flat = or_combine(producers);
      continue;
    }
    if (const auto* andj = std::get_if<AndActivation>(&spec)) {
      std::vector<ModelPtr> fitted;
      bool complete = true;
      for (TaskId p : andj->producers) {
        if (!state_[p].out_flat) {
          complete = false;
          break;
        }
        fitted.push_back(fit_sem(*state_[p].out_flat, andj->period));
      }
      if (complete) st.act_flat = and_combine(fitted);
      continue;
    }
    if (const auto* packed = std::get_if<PackedActivation>(&spec)) {
      std::vector<PackInput> inputs;
      bool complete = true;
      for (const auto& in : packed->inputs) {
        ModelPtr m;
        if (const auto* tid = std::get_if<TaskId>(&in.source)) {
          m = state_[*tid].out_flat;
        } else {
          m = std::get<ModelPtr>(in.source);
        }
        if (!m) {
          complete = false;
          break;
        }
        inputs.push_back(PackInput{std::move(m), in.coupling});
      }
      if (complete) {
        st.act_hem = pack(inputs, packed->timer);
        st.act_flat = st.act_hem->outer();
      }
      continue;
    }
    if (const auto* up = std::get_if<UnpackedActivation>(&spec)) {
      const TaskState& frame = state_[up->frame_task];
      if (frame.out_hem) st.act_flat = frame.out_hem->inner(up->index);
      continue;
    }
  }
}

void CpaEngine::check_resource_load() const {
  const auto& tasks = system_.tasks();
  for (ResourceId r = 0; r < system_.resources().size(); ++r) {
    double load = 0.0;
    bool complete = true;
    for (TaskId t = 0; t < tasks.size(); ++t) {
      if (tasks[t].resource != r) continue;
      if (!state_[t].act_flat) {
        complete = false;
        break;
      }
      load +=
          long_run_rate(*state_[t].act_flat) * static_cast<double>(tasks[t].cet.worst);
    }
    if (complete && load > 1.0)
      throw AnalysisError("CpaEngine: resource '" + system_.resources()[r].name +
                          "' is overloaded (load " + std::to_string(load) + " > 1)");
  }
}

void CpaEngine::analyze_resources() {
  const auto& tasks = system_.tasks();
  for (ResourceId r = 0; r < system_.resources().size(); ++r) {
    const ResourceSpec& res = system_.resources()[r];
    // Analyse the resolved subset of the resource's tasks.  Tasks whose
    // activation depends on not-yet-analysed producers (e.g. same-resource
    // chains) join in a later global iteration; interference only grows, so
    // the iteration converges to the full-fixpoint result and the final
    // round always covers the complete task set.
    std::vector<TaskId> ids;
    for (TaskId t = 0; t < tasks.size(); ++t) {
      if (tasks[t].resource != r) continue;
      if (state_[t].act_flat) ids.push_back(t);
    }
    if (ids.empty()) continue;

    const auto record = [&](const std::vector<sched::ResponseResult>& results) {
      for (std::size_t i = 0; i < ids.size(); ++i) {
        TaskState& st = state_[ids[i]];
        st.analyzed = true;
        st.bcrt = results[i].bcrt;
        st.wcrt = results[i].wcrt;
        st.q_max = results[i].activations;
        st.backlog = results[i].backlog;
        st.busy = results[i].busy_period;
      }
    };

    const auto params_for = [&](TaskId t) {
      return sched::TaskParams{tasks[t].name, tasks[t].priority, tasks[t].cet,
                               state_[t].act_flat};
    };

    switch (res.policy) {
      case Policy::kSppPreemptive: {
        std::vector<sched::TaskParams> params;
        for (TaskId t : ids) params.push_back(params_for(t));
        record(sched::SppAnalysis(std::move(params), options_.fixpoint_limits).analyze_all());
        break;
      }
      case Policy::kSpnpCan: {
        std::vector<sched::TaskParams> params;
        for (TaskId t : ids) params.push_back(params_for(t));
        record(sched::CanBusAnalysis(std::move(params), options_.fixpoint_limits).analyze_all());
        break;
      }
      case Policy::kRoundRobin: {
        std::vector<sched::RoundRobinTask> params;
        for (TaskId t : ids)
          params.push_back(sched::RoundRobinTask{params_for(t), tasks[t].slot});
        record(
            sched::RoundRobinAnalysis(std::move(params), options_.fixpoint_limits).analyze_all());
        break;
      }
      case Policy::kTdma: {
        std::vector<sched::TdmaTask> params;
        for (TaskId t : ids) params.push_back(sched::TdmaTask{params_for(t), tasks[t].slot});
        record(sched::TdmaAnalysis(std::move(params), res.tdma_cycle, options_.fixpoint_limits)
                   .analyze_all());
        break;
      }
      case Policy::kFlexRayStatic: {
        std::vector<sched::FlexRayFrame> params;
        for (TaskId t : ids) params.push_back(sched::FlexRayFrame{params_for(t)});
        record(sched::FlexRayStaticAnalysis(std::move(params), res.tdma_cycle,
                                            res.slot_length, options_.fixpoint_limits)
                   .analyze_all());
        break;
      }
      case Policy::kEdf: {
        std::vector<sched::EdfTask> params;
        for (TaskId t : ids)
          params.push_back(sched::EdfTask{params_for(t), tasks[t].deadline});
        record(sched::EdfAnalysis(std::move(params), options_.fixpoint_limits).analyze_all());
        break;
      }
    }
  }
}

void CpaEngine::compute_outputs() {
  for (TaskState& st : state_) {
    if (!st.analyzed) continue;
    st.out_flat = std::make_shared<OutputModel>(st.act_flat, st.bcrt, st.wcrt);
    if (options_.propagate_fitted_sem) st.out_flat = fit_sem(*st.out_flat);
    if (st.act_hem) st.out_hem = st.act_hem->after_response(st.bcrt, st.wcrt);
  }
}

std::vector<Time> CpaEngine::signature() const {
  std::vector<Time> sig;
  for (const TaskState& st : state_) {
    sig.push_back(st.analyzed ? 1 : 0);
    sig.push_back(st.bcrt);
    sig.push_back(st.wcrt);
    if (st.act_flat) {
      for (Count n = 2; n <= options_.compare_horizon; ++n) {
        sig.push_back(st.act_flat->delta_min(n));
        sig.push_back(st.act_flat->delta_plus(n));
      }
    } else {
      sig.push_back(-2);
    }
  }
  return sig;
}

AnalysisReport CpaEngine::run() {
  std::vector<Time> prev_sig;
  int iter = 0;
  bool converged = false;

  for (iter = 1; iter <= options_.max_iterations; ++iter) {
    resolve_activations();
    if (options_.check_overload) check_resource_load();
    analyze_resources();
    compute_outputs();

    std::vector<Time> sig = signature();
    const bool all_analyzed =
        std::all_of(state_.begin(), state_.end(), [](const TaskState& s) { return s.analyzed; });
    if (all_analyzed && sig == prev_sig) {
      converged = true;
      break;
    }
    prev_sig = std::move(sig);
  }

  if (!converged) {
    std::string unresolved;
    for (TaskId t = 0; t < system_.tasks().size(); ++t) {
      if (!state_[t].analyzed) unresolved += (unresolved.empty() ? "" : ", ") + system_.tasks()[t].name;
    }
    throw AnalysisError(
        "CpaEngine: no fixpoint after " + std::to_string(options_.max_iterations) +
        " global iterations" +
        (unresolved.empty() ? std::string(" (cyclic dependency diverging)")
                            : " (unresolved activations: " + unresolved +
                                  " - likely a dependency cycle that cannot bootstrap)"));
  }

  AnalysisReport report;
  report.iterations = iter;
  report.converged = converged;
  const auto& tasks = system_.tasks();
  for (TaskId t = 0; t < tasks.size(); ++t) {
    const TaskState& st = state_[t];
    TaskResult res;
    res.name = tasks[t].name;
    res.resource = system_.resources()[tasks[t].resource].name;
    res.bcrt = st.bcrt;
    res.wcrt = st.wcrt;
    res.activations_in_busy_period = st.q_max;
    res.backlog = st.backlog;
    res.busy_period = st.busy;
    res.activation = st.act_flat;
    res.output = st.out_flat;
    res.hem_output = st.out_hem;
    res.utilization =
        long_run_rate(*st.act_flat) * static_cast<double>(tasks[t].cet.worst);
    report.tasks.push_back(std::move(res));
  }
  return report;
}

}  // namespace hem::cpa
