#include "model/cpa_engine.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <exception>
#include <memory>
#include <thread>
#include <utility>

#include "core/combinators.hpp"
#include "core/errors.hpp"
#include "core/output_model.hpp"
#include "core/sem_fit.hpp"
#include "exec/work_pool.hpp"
#include "model/engine_snapshot.hpp"
#include "hierarchical/inner_update.hpp"
#include "obs/obs.hpp"
#include "rtc/compile.hpp"
#include "sched/can_bus.hpp"
#include "sched/edf.hpp"
#include "sched/flexray_static.hpp"
#include "sched/round_robin.hpp"
#include "sched/spp.hpp"
#include "sched/tdma.hpp"

namespace hem::cpa {

namespace {

/// Compile budget for lowering a model node (rtc/compile.hpp).  The busy
/// window bounds the time range the local analysis actually queries; 2x
/// headroom covers growth in later global iterations.  With no finite busy
/// bound yet the default sample budget alone caps the horizon.
rtc::CompileOptions compile_options_for(Time busy) {
  rtc::CompileOptions opt;
  if (busy > 0 && !is_infinite(busy)) opt.time_horizon = sat_mul(busy, 2);
  return opt;
}

/// Degraded-status classification of a local-analysis failure.
TaskStatus status_for(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOverload:
    case ErrorCode::kWindowLimit:
      return TaskStatus::kOverloaded;
    case ErrorCode::kIterationLimit:
    case ErrorCode::kTimeBudget:
      return TaskStatus::kBudgetExhausted;
    default:
      return TaskStatus::kDiverged;
  }
}

DiagCode diag_for(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOverload:
      return DiagCode::kResourceOverload;
    case ErrorCode::kIterationLimit:
    case ErrorCode::kTimeBudget:
      return DiagCode::kBusyWindowBudget;
    default:
      return DiagCode::kBusyWindowDivergence;
  }
}

/// Sporadic fallback hierarchical output: outer and every inner stream
/// degrade to the eq.-8 pending shape (spacing, delta+ = inf).
HemPtr degraded_hem_output(const ModelPtr& outer, std::size_t inner_count, Time spacing) {
  std::vector<ModelPtr> inner(inner_count, std::make_shared<SporadicEnvelopeModel>(spacing));
  return std::make_shared<HierarchicalEventModel>(outer, std::move(inner),
                                                  PackRule::instance());
}

// EngineStats is the per-run view of these registry counters: the engine
// accumulates its work counters locally (deterministic, unaffected by other
// engines in the process) and publishes the totals here at the end of every
// run, where the metrics dump and the trace exporter pick them up.
obs::Counter& g_eng_analyses_run = obs::registry().counter("engine.local_analyses_run");
obs::Counter& g_eng_analyses_skipped = obs::registry().counter("engine.local_analyses_skipped");
obs::Counter& g_eng_models_reused = obs::registry().counter("engine.models_reused");
obs::Counter& g_eng_models_rebuilt = obs::registry().counter("engine.models_rebuilt");
obs::Counter& g_eng_iterations = obs::registry().counter("engine.iterations");
obs::Counter& g_eng_rate_hit = obs::registry().counter("engine.rate_memo.hit");
obs::Counter& g_eng_rate_miss = obs::registry().counter("engine.rate_memo.miss");
obs::Counter& g_eng_warm_seeded = obs::registry().counter("engine.warm_seeded");

// The lock-free model caches publish into these process-wide probes (see
// core/event_model.cpp and core/output_model.cpp); run() snapshot-diffs
// them into EngineStats.  Best-effort: only populated while obs counting is
// enabled, and polluted by other engines running concurrently in-process.
obs::Counter& g_cache_hit = obs::registry().counter("engine.cache.hit");
obs::Counter& g_cache_miss = obs::registry().counter("engine.cache.miss");
obs::Counter& g_cache_race = obs::registry().counter("engine.cache.publish_race");
obs::Counter& g_cache_alloc = obs::registry().counter("engine.cache.segment_alloc");
obs::Counter& g_cache_rec_race = obs::registry().counter("engine.cache.rec_publish_race");
obs::Counter& g_cache_rec_extend = obs::registry().counter("engine.cache.rec_extend");

}  // namespace

CpaEngine::CpaEngine(const System& system, EngineOptions options)
    : system_(system), options_(options), limits_(options.fixpoint_limits) {
  system_.validate();
  state_.resize(system_.tasks().size());
  resource_overloaded_.assign(system_.resources().size(), 0);
  changed_.assign(system_.tasks().size(), 1);
  if (options_.warm != nullptr && options_.incremental) seed_from_warm();
}

CpaEngine::~CpaEngine() = default;

void CpaEngine::seed_from_warm() {
  const EngineSnapshot& snap = *options_.warm;
  if (!snap.valid()) return;
  // Result-relevant options must match exactly: a fitted-SEM snapshot must
  // not seed an exact-curve run, a different convergence horizon changes
  // what "equal" meant, and the overload pre-check changes fallback paths.
  if (snap.propagate_fitted_sem != options_.propagate_fitted_sem ||
      snap.check_overload != options_.check_overload ||
      snap.compare_horizon != options_.compare_horizon)
    return;

  const auto& tasks = system_.tasks();
  std::vector<const EngineSnapshot::TaskSnap*> cand(tasks.size(), nullptr);
  for (TaskId t = 0; t < tasks.size(); ++t) {
    const EngineSnapshot::TaskSnap* s = snap.find(tasks[t].name);
    if (s == nullptr || s->signature != task_signature(system_, t)) continue;
    // Fixed external inputs must be pointer-identical (interning re-points
    // structurally equal nodes beforehand); task-output inputs are covered
    // by the signature plus the producers' own candidacy via act_key.
    const ActivationSpec& spec = system_.activation(t);
    if (const auto* ext = std::get_if<ExternalActivation>(&spec)) {
      if (ext->model.get() != s->external.get()) continue;
    } else if (const auto* packed = std::get_if<PackedActivation>(&spec)) {
      if (packed->inputs.size() != s->pack_sources.size() ||
          packed->timer.get() != s->pack_timer.get())
        continue;
      bool inputs_match = true;
      for (std::size_t i = 0; i < packed->inputs.size(); ++i) {
        const auto* m = std::get_if<ModelPtr>(&packed->inputs[i].source);
        const ModelPtr& sm = s->pack_sources[i];
        if ((m == nullptr) != (sm == nullptr) || (m != nullptr && m->get() != sm.get())) {
          inputs_match = false;
          break;
        }
      }
      if (!inputs_match) continue;
    }
    cand[t] = s;
  }

  // Interference is a local-analysis input too: a resource may only start
  // warm when its complete mate set is unchanged — every current task a
  // candidate and the snapshot knowing exactly this task set (a task that
  // was removed, added, or degraded in the snapshot run demotes its whole
  // resource to a cold start).
  std::map<std::string, std::size_t> snap_per_resource;
  for (const EngineSnapshot::TaskSnap& s : snap.tasks) ++snap_per_resource[s.resource];
  for (ResourceId r = 0; r < system_.resources().size(); ++r) {
    std::vector<TaskId> ids;
    for (TaskId t = 0; t < tasks.size(); ++t)
      if (tasks[t].resource == r) ids.push_back(t);
    if (ids.empty()) continue;
    bool all_candidates = true;
    for (TaskId t : ids) all_candidates = all_candidates && cand[t] != nullptr;
    const auto it = snap_per_resource.find(system_.resources()[r].name);
    const std::size_t snap_n = it == snap_per_resource.end() ? 0 : it->second;
    if (!all_candidates || snap_n != ids.size())
      for (TaskId t : ids) cand[t] = nullptr;
  }

  for (TaskId t = 0; t < tasks.size(); ++t) {
    const EngineSnapshot::TaskSnap* s = cand[t];
    if (s == nullptr) continue;
    TaskState& st = state_[t];
    st.act_flat = s->act_flat;
    st.act_hem = s->act_hem;
    st.out_flat = s->out_flat;
    st.out_hem = s->out_hem;
    st.act_key = s->act_key;
    st.analyzed = true;
    st.bcrt = s->bcrt;
    st.wcrt = s->wcrt;
    st.q_max = s->q_max;
    st.backlog = s->backlog;
    st.busy = s->busy;
    st.status = TaskStatus::kConverged;
    st.analyzed_act = st.act_flat.get();
    st.out_key_act = st.act_flat.get();
    st.out_key_hem = st.act_hem ? static_cast<const void*>(st.act_hem.get()) : nullptr;
    st.out_key_bcrt = st.bcrt;
    st.out_key_wcrt = st.wcrt;
    st.rate = s->rate;
    st.rate_key = st.act_flat.get();
    st.prev_act = st.act_flat;
    st.prev_analyzed = true;
    st.prev_bcrt = st.bcrt;
    st.prev_wcrt = st.wcrt;
    ++warm_seeded_;
  }
  // With seeds in place the first iteration can already detect convergence
  // (update_convergence compares against the seeded prev_* values).
  if (warm_seeded_ > 0) have_prev_ = true;
}

EngineSnapshot CpaEngine::make_snapshot() const {
  EngineSnapshot snap;
  if (!last_converged_) return snap;
  snap.propagate_fitted_sem = options_.propagate_fitted_sem;
  snap.check_overload = options_.check_overload;
  snap.compare_horizon = options_.compare_horizon;
  const auto& tasks = system_.tasks();
  for (TaskId t = 0; t < tasks.size(); ++t) {
    const TaskState& st = state_[t];
    if (!st.analyzed || st.status != TaskStatus::kConverged || !st.act_flat) continue;
    EngineSnapshot::TaskSnap s;
    s.name = tasks[t].name;
    s.resource = system_.resources()[tasks[t].resource].name;
    s.signature = task_signature(system_, t);
    s.act_flat = st.act_flat;
    s.act_hem = st.act_hem;
    s.out_flat = st.out_flat;
    s.out_hem = st.out_hem;
    s.act_key = st.act_key;
    s.bcrt = st.bcrt;
    s.wcrt = st.wcrt;
    s.q_max = st.q_max;
    s.backlog = st.backlog;
    s.busy = st.busy;
    s.rate = st.rate_key == st.act_flat.get() ? st.rate : long_run_rate(*st.act_flat);
    const ActivationSpec& spec = system_.activation(t);
    if (const auto* ext = std::get_if<ExternalActivation>(&spec)) {
      s.external = ext->model;
    } else if (const auto* packed = std::get_if<PackedActivation>(&spec)) {
      for (const PackedActivation::Input& in : packed->inputs) {
        const auto* m = std::get_if<ModelPtr>(&in.source);
        s.pack_sources.push_back(m != nullptr ? *m : nullptr);
      }
      s.pack_timer = packed->timer;
    }
    snap.tasks.push_back(std::move(s));
  }
  return snap;
}

int CpaEngine::effective_jobs() const {
  if (options_.jobs > 0) return options_.jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

double CpaEngine::cached_rate(TaskId t) {
  TaskState& st = state_[t];
  const void* key = st.act_flat.get();
  if (st.rate_key != key) {
    obs::bump(g_eng_rate_miss);
    st.rate = long_run_rate(*st.act_flat);
    st.rate_key = key;
  } else {
    obs::bump(g_eng_rate_hit);
  }
  return st.rate;
}

void CpaEngine::resolve_activations() {
  obs::Span span("engine", "resolve_activations");
  span.arg("iteration", static_cast<long>(current_iteration_));
  const bool inc = options_.incremental;
  const auto& tasks = system_.tasks();
  for (TaskId t = 0; t < tasks.size(); ++t) {
    const ActivationSpec& spec = system_.activation(t);
    TaskState& st = state_[t];

    // Reuse decision: nodes are immutable, so an activation built from the
    // same producer nodes as last iteration IS last iteration's activation;
    // returning the existing node keeps its delta-curve memoisation warm
    // and gives downstream dirty tracking a stable version stamp.
    const auto reuse = [&](const std::vector<const void*>& key) {
      if (inc && st.act_flat && key == st.act_key) {
        ++stats_.models_reused;
        return true;
      }
      st.act_key = key;
      ++stats_.models_rebuilt;
      return false;
    };

    if (const auto* ext = std::get_if<ExternalActivation>(&spec)) {
      if (!st.act_flat) st.act_flat = ext->model;  // external sources never change
      continue;
    }
    if (const auto* by = std::get_if<TaskOutputActivation>(&spec)) {
      std::vector<const void*> key;
      key.reserve(by->producers.size());
      bool complete = true;
      for (TaskId p : by->producers) {
        if (!state_[p].out_flat) {
          complete = false;
          break;
        }
        key.push_back(state_[p].out_flat.get());
      }
      if (!complete || reuse(key)) continue;
      std::vector<ModelPtr> producers;
      producers.reserve(by->producers.size());
      for (TaskId p : by->producers) producers.push_back(state_[p].out_flat);
      st.act_flat = or_combine(producers);
      continue;
    }
    if (const auto* andj = std::get_if<AndActivation>(&spec)) {
      std::vector<const void*> key;
      key.reserve(andj->producers.size());
      bool complete = true;
      for (TaskId p : andj->producers) {
        if (!state_[p].out_flat) {
          complete = false;
          break;
        }
        key.push_back(state_[p].out_flat.get());
      }
      if (!complete || reuse(key)) continue;
      std::vector<ModelPtr> fitted;
      fitted.reserve(andj->producers.size());
      for (TaskId p : andj->producers)
        fitted.push_back(fit_sem(*state_[p].out_flat, andj->period));
      st.act_flat = and_combine(fitted);
      continue;
    }
    if (const auto* packed = std::get_if<PackedActivation>(&spec)) {
      std::vector<const void*> key;
      key.reserve(packed->inputs.size());
      std::vector<PackInput> inputs;
      inputs.reserve(packed->inputs.size());
      bool complete = true;
      for (const auto& in : packed->inputs) {
        ModelPtr m;
        if (const auto* tid = std::get_if<TaskId>(&in.source)) {
          m = state_[*tid].out_flat;
        } else {
          m = std::get<ModelPtr>(in.source);
        }
        if (!m) {
          complete = false;
          break;
        }
        key.push_back(m.get());
        inputs.push_back(PackInput{std::move(m), in.coupling});
      }
      if (!complete || (st.act_hem && reuse(key))) continue;
      if (!st.act_hem) {
        st.act_key = key;
        ++stats_.models_rebuilt;
      }
      st.act_hem = pack(inputs, packed->timer);
      st.act_flat = st.act_hem->outer();
      continue;
    }
    if (const auto* up = std::get_if<UnpackedActivation>(&spec)) {
      const TaskState& frame = state_[up->frame_task];
      if (!frame.out_hem) continue;
      const ModelPtr& inner = frame.out_hem->inner(up->index);
      if (st.act_flat.get() == inner.get())
        ++stats_.models_reused;
      else
        ++stats_.models_rebuilt;
      st.act_flat = inner;
      continue;
    }
  }
}

void CpaEngine::check_resource_load() {
  const auto& tasks = system_.tasks();
  for (ResourceId r = 0; r < system_.resources().size(); ++r) {
    double load = 0.0;
    bool complete = true;
    for (TaskId t = 0; t < tasks.size(); ++t) {
      if (tasks[t].resource != r) continue;
      if (!state_[t].act_flat) {
        complete = false;
        break;
      }
      load += cached_rate(t) * static_cast<double>(tasks[t].cet.worst);
    }
    if (!complete || load <= 1.0) continue;
    if (options_.strict)
      throw AnalysisError("CpaEngine: resource '" + system_.resources()[r].name +
                              "' is overloaded (load " + std::to_string(load) + " > 1)",
                          ErrorCode::kOverload);
    resource_overloaded_[r] = 1;
    resource_diag_[r] = Diagnostic{Severity::kError, DiagCode::kResourceOverload,
                                   system_.resources()[r].name,
                                   "long-run load " + std::to_string(load) +
                                       " exceeds 1; tasks receive fallback bounds",
                                   current_iteration_};
  }
}

void CpaEngine::apply_resource_fallback(ResourceId r, const std::vector<TaskId>& ids,
                                        TaskStatus status, DiagCode code,
                                        const std::string& detail) {
  const auto& tasks = system_.tasks();
  const Policy policy = system_.resources()[r].policy;
  // The linear utilisation envelope assumes a work-conserving resource; the
  // slotted policies (TDMA, FlexRay static) idle between slots, so only
  // infinity is sound there.
  const bool work_conserving = policy == Policy::kSppPreemptive ||
                               policy == Policy::kSpnpCan || policy == Policy::kEdf ||
                               policy == Policy::kRoundRobin;
  Time envelope = kTimeInfinity;
  if (work_conserving) {
    std::vector<EnvelopeTask> inputs;
    for (TaskId t : ids) inputs.push_back(EnvelopeTask{state_[t].act_flat, tasks[t].cet.worst});
    envelope = utilization_wcrt_envelope(inputs);
  }
  for (TaskId t : ids) {
    TaskState& st = state_[t];
    st.analyzed = true;
    st.bcrt = tasks[t].cet.best;
    st.wcrt = std::max(envelope, st.bcrt);
    st.q_max = is_infinite(st.wcrt) ? kCountInfinity : st.act_flat->eta_plus(st.wcrt);
    st.backlog = st.q_max;
    st.busy = st.wcrt;
    st.status = status;
    st.has_diag = true;
    st.diag = Diagnostic{Severity::kError, code, tasks[t].name, detail, current_iteration_};
  }
}

CpaEngine::LocalAnalyzeFn CpaEngine::make_local_analysis(ResourceId r,
                                                         const std::vector<TaskId>& ids) const {
  const auto& tasks = system_.tasks();
  const ResourceSpec& res = system_.resources()[r];

  const auto params_for = [&](TaskId t) {
    return sched::TaskParams{tasks[t].name, tasks[t].priority, tasks[t].cet,
                             state_[t].act_flat};
  };

  // The analysis object owns copies of the task parameters (shared_ptr
  // activation nodes included) and is immutable after construction, so the
  // returned closure can be invoked for different slots from different
  // threads.
  switch (res.policy) {
    case Policy::kSppPreemptive: {
      std::vector<sched::TaskParams> params;
      for (TaskId t : ids) params.push_back(params_for(t));
      auto a = std::make_shared<const sched::SppAnalysis>(std::move(params), limits_);
      return [a](std::size_t i) { return a->analyze(i); };
    }
    case Policy::kSpnpCan: {
      std::vector<sched::TaskParams> params;
      for (TaskId t : ids) params.push_back(params_for(t));
      auto a = std::make_shared<const sched::CanBusAnalysis>(std::move(params), limits_);
      return [a](std::size_t i) { return a->analyze(i); };
    }
    case Policy::kRoundRobin: {
      std::vector<sched::RoundRobinTask> params;
      for (TaskId t : ids)
        params.push_back(sched::RoundRobinTask{params_for(t), tasks[t].slot});
      auto a = std::make_shared<const sched::RoundRobinAnalysis>(std::move(params), limits_);
      return [a](std::size_t i) { return a->analyze(i); };
    }
    case Policy::kTdma: {
      std::vector<sched::TdmaTask> params;
      for (TaskId t : ids) params.push_back(sched::TdmaTask{params_for(t), tasks[t].slot});
      auto a =
          std::make_shared<const sched::TdmaAnalysis>(std::move(params), res.tdma_cycle, limits_);
      return [a](std::size_t i) { return a->analyze(i); };
    }
    case Policy::kFlexRayStatic: {
      std::vector<sched::FlexRayFrame> params;
      for (TaskId t : ids) params.push_back(sched::FlexRayFrame{params_for(t)});
      auto a = std::make_shared<const sched::FlexRayStaticAnalysis>(
          std::move(params), res.tdma_cycle, res.slot_length, limits_);
      return [a](std::size_t i) { return a->analyze(i); };
    }
    case Policy::kEdf: {
      std::vector<sched::EdfTask> params;
      for (TaskId t : ids)
        params.push_back(sched::EdfTask{params_for(t), tasks[t].deadline});
      auto a = std::make_shared<const sched::EdfAnalysis>(std::move(params), limits_);
      return [a](std::size_t i) { return a->analyze(i); };
    }
  }
  return {};
}

void CpaEngine::analyze_resources() {
  const auto& tasks = system_.tasks();
  const std::size_t n_res = system_.resources().size();

  // Analyse the resolved subset of each resource's tasks.  Tasks whose
  // activation depends on not-yet-analysed producers (e.g. same-resource
  // chains) join in a later global iteration; interference only grows, so
  // the iteration converges to the full-fixpoint result and the final
  // round always covers the complete task set.
  std::vector<std::vector<TaskId>> ids(n_res);
  for (TaskId t = 0; t < tasks.size(); ++t)
    if (state_[t].act_flat) ids[tasks[t].resource].push_back(t);

  // Dirty set: a resource must be re-analysed iff the resolved task subset
  // or any resolved activation node changed since its last local analysis.
  // Nodes are immutable, so unchanged pointers guarantee an identical
  // analysis input and the prior ResponseResults (and per-task statuses /
  // diagnostics) are reused verbatim.  Resources whose tasks carry fallback
  // bounds stay dirty so their degradation record (incl. the iteration it
  // was raised in) tracks the classic engine exactly.
  std::vector<ResourceId> dirty;
  std::vector<const char*> causes;  ///< parallel to `dirty`; trace-span labels
  for (ResourceId r = 0; r < n_res; ++r) {
    if (ids[r].empty()) continue;
    const char* cause = options_.incremental ? nullptr : "full-reanalysis";
    for (TaskId t : ids[r]) {
      if (cause != nullptr) break;
      if (state_[t].act_flat.get() != state_[t].analyzed_act)
        cause = state_[t].analyzed_act == nullptr ? "first-analysis" : "activation-changed";
      else if (state_[t].status != TaskStatus::kConverged)
        cause = "degraded-status";
    }
    if (cause == nullptr) {
      ++stats_.local_analyses_skipped;
      obs::instant("engine", [&] { return "clean:" + system_.resources()[r].name; });
      continue;
    }
    dirty.push_back(r);
    causes.push_back(cause);
  }
  stats_.local_analyses_run += static_cast<long>(dirty.size());

  // Lower stable activation nodes before the parallel fan-out: a node that
  // survived a previous local analysis unchanged (pointer == analyzed-stamp
  // of a still-dirty resource) will be queried heavily again by this
  // iteration's busy-window fixpoints, so its delta samples are frozen once
  // into the flat compiled form (rtc/compile.hpp) and every query becomes a
  // binary search with zero virtual dispatch or atomic memo traffic.
  // Compilation happens serially here and depends only on pointer stamps,
  // keeping `models_compiled` deterministic across job counts; queries
  // beyond the compiled horizon fall back to the lazy DAG unchanged.
  if (options_.compile_curves) {
    for (ResourceId r : dirty) {
      for (TaskId t : ids[r]) {
        const TaskState& st = state_[t];
        if (!st.act_flat || st.act_flat.get() != st.analyzed_act) continue;
        if (st.act_flat->compiled() != nullptr) continue;
        st.act_flat->ensure_compiled(compile_options_for(st.busy));
        ++stats_.models_compiled;
      }
    }
  }

  // Reset the transient analysis outcome only where a fresh analysis will
  // rewrite it; skipped resources keep last iteration's statuses.
  for (ResourceId r : dirty) {
    for (TaskId t : ids[r]) {
      state_[t].status = TaskStatus::kConverged;
      state_[t].has_diag = false;
    }
  }

  // Flatten the dirty resources into per-TASK work units (one busy-window
  // fixpoint each) so a single wide resource parallelises just as well as
  // many narrow ones.  Each unit writes only its own disjoint result/error
  // slot; shared upstream event-model nodes are safe to query concurrently
  // (lock-free memoisation, see core/curve_cache.hpp).  The reduction below
  // runs serially in resource/task order, so recorded results, diagnostics,
  // and which error wins are bit-identical for every job count.
  struct ResourceWork {
    ResourceId r = 0;
    const std::vector<TaskId>* ids = nullptr;
    const char* cause = "";
    LocalAnalyzeFn analyze_one;  ///< empty: overload pre-check fallback, no units
    std::vector<sched::ResponseResult> results;
    std::vector<std::exception_ptr> errors;
    /// Lowest task slot that failed so far (racy CAS-min).  A unit only
    /// skips when a LOWER slot of its own resource already failed — the
    /// same units the serial early-stop path would skip — so the winning
    /// (lowest-index) error is identical for every job count.
    std::atomic<std::size_t> first_fail{static_cast<std::size_t>(-1)};
  };
  std::deque<ResourceWork> work;
  std::vector<std::pair<ResourceWork*, std::size_t>> units;  ///< (resource, task slot)
  for (std::size_t i = 0; i < dirty.size(); ++i) {
    const ResourceId r = dirty[i];
    work.emplace_back();
    ResourceWork& w = work.back();
    w.r = r;
    w.ids = &ids[r];
    w.cause = causes[i];
    if (!options_.strict && resource_overloaded_[r]) continue;  // handled in the reduction
    w.analyze_one = make_local_analysis(r, ids[r]);
    w.results.resize(ids[r].size());
    w.errors.resize(ids[r].size());
    for (std::size_t q = 0; q < ids[r].size(); ++q) units.emplace_back(&w, q);
  }

  const auto run_unit = [&](std::size_t u) {
    ResourceWork& w = *units[u].first;
    const std::size_t q = units[u].second;
    if (q > w.first_fail.load(std::memory_order_relaxed)) return;
    obs::Span span("engine", [&] { return "local:" + system_.resources()[w.r].name; });
    span.arg("cause", w.cause);
    span.arg("iteration", static_cast<long>(current_iteration_));
    span.arg("task", system_.tasks()[(*w.ids)[q]].name);
    try {
      w.results[q] = w.analyze_one(q);
    } catch (...) {
      w.errors[q] = std::current_exception();
      std::size_t cur = w.first_fail.load(std::memory_order_relaxed);
      while (q < cur &&
             !w.first_fail.compare_exchange_weak(cur, q, std::memory_order_relaxed)) {
      }
    }
  };

  const int jobs = effective_jobs();
  if (jobs <= 1 || units.size() <= 1) {
    // Serial early-stop: once a resource fails, its remaining (higher-slot)
    // units are skipped by the first_fail guard inside run_unit.
    for (std::size_t u = 0; u < units.size(); ++u) run_unit(u);
  } else {
    if (!pool_) {
      // Worker auto-cap: more threads than work units can never help, and
      // more threads than hardware cores only adds contention for this
      // pure-CPU workload — `--jobs 8` on a small system or a small machine
      // must never run slower than `--jobs 1`.  (stats_.jobs still reports
      // the requested value.)
      auto cap = std::min<std::size_t>(static_cast<std::size_t>(jobs),
                                       std::max<std::size_t>(system_.tasks().size(), 1));
      const unsigned hw = std::thread::hardware_concurrency();
      if (hw > 0) cap = std::min<std::size_t>(cap, hw);
      pool_ = std::make_unique<exec::WorkPool>(static_cast<int>(cap));
    }
    pool_->run(units.size(), run_unit);
  }

  // Deterministic reduction in resource order.  State mutation (recording
  // results, fallback bounds, analyzed-stamps) is all serial from here on.
  const auto mark_analyzed = [&](const std::vector<TaskId>& rids) {
    for (TaskId t : rids) state_[t].analyzed_act = state_[t].act_flat.get();
  };
  std::exception_ptr first_strict_error;
  for (ResourceWork& w : work) {
    if (!w.analyze_one) {
      // Overload pre-check tripped (graceful mode): no local analysis ran.
      obs::Span span("engine", [&] { return "local:" + system_.resources()[w.r].name; });
      span.arg("cause", w.cause);
      span.arg("iteration", static_cast<long>(current_iteration_));
      apply_resource_fallback(w.r, *w.ids, TaskStatus::kOverloaded, DiagCode::kResourceOverload,
                              "resource '" + system_.resources()[w.r].name +
                                  "' overloaded; unbounded fallback WCRT substituted");
      mark_analyzed(*w.ids);
      continue;
    }
    std::exception_ptr err;
    for (const std::exception_ptr& e : w.errors) {
      if (e) {
        err = e;
        break;
      }
    }
    if (!err) {
      for (std::size_t q = 0; q < w.ids->size(); ++q) {
        TaskState& st = state_[(*w.ids)[q]];
        st.analyzed = true;
        st.bcrt = w.results[q].bcrt;
        st.wcrt = w.results[q].wcrt;
        st.q_max = w.results[q].activations;
        st.backlog = w.results[q].backlog;
        st.busy = w.results[q].busy_period;
      }
      mark_analyzed(*w.ids);
      continue;
    }
    if (options_.strict) {
      // Keep only the lowest-numbered resource's failure - exactly the one
      // the serial engine would have thrown first.
      if (!first_strict_error) first_strict_error = err;
      continue;
    }
    try {
      std::rethrow_exception(err);
    } catch (const AnalysisError& e) {
      // Cancellation is a request to stop, not a failure to degrade around.
      if (e.code() == ErrorCode::kCancelled) throw;
      apply_resource_fallback(w.r, *w.ids, status_for(e.code()), diag_for(e.code()), e.what());
      mark_analyzed(*w.ids);
    }
    // Non-AnalysisError exceptions (e.g. invalid parameter sets) escape the
    // catch above and propagate, as they always did.
  }
  if (first_strict_error) std::rethrow_exception(first_strict_error);
}

void CpaEngine::compute_outputs() {
  obs::Span span("engine", "compute_outputs");
  span.arg("iteration", static_cast<long>(current_iteration_));
  const bool inc = options_.incremental;
  const auto& tasks = system_.tasks();
  for (TaskId t = 0; t < tasks.size(); ++t) {
    TaskState& st = state_[t];
    if (!st.analyzed) continue;

    // Outputs are a pure function of (activation node, r-, r+); when none
    // of them moved, last iteration's output nodes - including any
    // degradation flags and inner-update diagnostics - carry over.
    const void* act = st.act_flat.get();
    const void* hem = st.act_hem ? static_cast<const void*>(st.act_hem.get()) : nullptr;
    if (inc && st.out_flat && act == st.out_key_act && hem == st.out_key_hem &&
        st.bcrt == st.out_key_bcrt && st.wcrt == st.out_key_wcrt) {
      ++stats_.models_reused;
      continue;
    }
    st.out_key_act = act;
    st.out_key_hem = hem;
    st.out_key_bcrt = st.bcrt;
    st.out_key_wcrt = st.wcrt;
    st.hem_degraded = false;
    st.out_has_diag = false;
    ++stats_.models_rebuilt;

    if (is_infinite(st.wcrt)) {
      // No finite response bound: the output degrades to the sporadic
      // envelope (consecutive completions of one task stay >= r- apart,
      // no arrival guarantee).
      const Time spacing = std::max<Time>(st.bcrt, 0);
      st.out_flat = std::make_shared<SporadicEnvelopeModel>(spacing);
      if (st.act_hem) {
        st.out_hem = degraded_hem_output(st.out_flat, st.act_hem->inner_count(), spacing);
        st.hem_degraded = true;
      }
      continue;
    }
    st.out_flat = std::make_shared<OutputModel>(st.act_flat, st.bcrt, st.wcrt);
    if (options_.propagate_fitted_sem) st.out_flat = fit_sem(*st.out_flat);
    if (!st.act_hem) continue;
    if (options_.strict) {
      st.out_hem = st.act_hem->after_response(st.bcrt, st.wcrt);
      continue;
    }
    try {
      st.out_hem = st.act_hem->after_response(st.bcrt, st.wcrt);
    } catch (const AnalysisError& e) {
      if (e.code() == ErrorCode::kCancelled) throw;
      const Time spacing = std::max<Time>(st.bcrt, 0);
      st.out_hem = degraded_hem_output(st.out_flat, st.act_hem->inner_count(), spacing);
      st.hem_degraded = true;
      st.out_has_diag = true;
      st.out_diag = Diagnostic{Severity::kWarning, DiagCode::kInnerUpdateUnbounded,
                               tasks[t].name, e.what(), current_iteration_};
    }
  }
}

bool CpaEngine::update_convergence() {
  bool all_equal = have_prev_;
  for (std::size_t t = 0; t < state_.size(); ++t) {
    TaskState& st = state_[t];
    bool changed = !have_prev_;
    if (!changed) {
      if (st.analyzed != st.prev_analyzed || st.bcrt != st.prev_bcrt ||
          st.wcrt != st.prev_wcrt) {
        changed = true;
      } else if (st.act_flat.get() != st.prev_act.get()) {
        // A genuinely rebuilt node may still be semantically identical
        // (the classic fixpoint shape: values converged but nodes were
        // reconstructed); compare curves with early exit on the memoised
        // samples up to the convergence horizon.
        changed = !st.act_flat || !st.prev_act ||
                  !models_equal(*st.act_flat, *st.prev_act, options_.compare_horizon);
      }
    }
    changed_[t] = changed ? 1 : 0;
    all_equal = all_equal && !changed;
    st.prev_analyzed = st.analyzed;
    st.prev_bcrt = st.bcrt;
    st.prev_wcrt = st.wcrt;
    st.prev_act = st.act_flat;
  }
  have_prev_ = true;
  return all_equal;
}

void CpaEngine::finalize_divergence(bool budget_hit) {
  // Called in graceful mode when the global loop stopped without a fixpoint.
  // Bounds of tasks whose activation curves were still moving (or whose
  // producers'/resource-mates' were) are not sound; replace them with the
  // unbounded fallback.  Tasks whose entire dependency cone stabilised keep
  // their genuine fixpoint results.
  const auto& tasks = system_.tasks();
  std::vector<char> unstable(tasks.size(), 0);
  for (TaskId t = 0; t < tasks.size(); ++t)
    unstable[t] = !state_[t].analyzed || !have_prev_ || changed_[t];

  bool changed = true;
  while (changed) {
    changed = false;
    for (TaskId t = 0; t < tasks.size(); ++t) {
      if (unstable[t]) continue;
      bool taint = false;
      const ActivationSpec& spec = system_.activation(t);
      const auto check = [&](TaskId p) { taint = taint || unstable[p]; };
      if (const auto* by = std::get_if<TaskOutputActivation>(&spec))
        for (TaskId p : by->producers) check(p);
      if (const auto* andj = std::get_if<AndActivation>(&spec))
        for (TaskId p : andj->producers) check(p);
      if (const auto* packed = std::get_if<PackedActivation>(&spec))
        for (const auto& in : packed->inputs)
          if (const auto* tid = std::get_if<TaskId>(&in.source)) check(*tid);
      if (const auto* up = std::get_if<UnpackedActivation>(&spec)) check(up->frame_task);
      // Interference path: a resource-mate whose activation is unstable
      // makes this task's interference bound unstable as well.
      for (TaskId m = 0; m < tasks.size() && !taint; ++m)
        if (m != t && tasks[m].resource == tasks[t].resource && unstable[m]) taint = true;
      if (taint) {
        unstable[t] = 1;
        changed = true;
      }
    }
  }

  const TaskStatus status = budget_hit ? TaskStatus::kBudgetExhausted : TaskStatus::kDiverged;
  const DiagCode code = budget_hit ? DiagCode::kWallClockBudget : DiagCode::kGlobalIterationLimit;
  for (TaskId t = 0; t < tasks.size(); ++t) {
    if (!unstable[t]) continue;
    TaskState& st = state_[t];
    if (st.status != TaskStatus::kConverged) continue;  // keep the own-failure record
    if (!st.analyzed) {
      st.diag = Diagnostic{Severity::kError, DiagCode::kUnresolvedActivation, tasks[t].name,
                           "activation never resolved (dependency cycle cannot bootstrap)",
                           current_iteration_};
      if (!st.act_flat) st.act_flat = std::make_shared<SporadicEnvelopeModel>(0);
      st.analyzed = true;
    } else {
      st.diag = Diagnostic{
          Severity::kError, code, tasks[t].name,
          budget_hit ? "wall-clock budget exhausted before the global fixpoint"
                     : "no global fixpoint; last-iteration bounds unsound, substituting infinity",
          current_iteration_};
    }
    st.has_diag = true;
    st.status = status;
    st.bcrt = std::min(st.bcrt, tasks[t].cet.best);
    st.wcrt = kTimeInfinity;
    st.q_max = kCountInfinity;
    st.backlog = kCountInfinity;
    st.busy = kTimeInfinity;
    const Time spacing = std::max<Time>(st.bcrt, 0);
    st.out_flat = std::make_shared<SporadicEnvelopeModel>(spacing);
    if (st.act_hem) {
      st.out_hem = degraded_hem_output(st.out_flat, st.act_hem->inner_count(), spacing);
      st.hem_degraded = true;
    }
  }
}

void CpaEngine::taint_downstream() {
  const auto& tasks = system_.tasks();
  const auto degraded = [&](TaskId p) { return state_[p].status != TaskStatus::kConverged; };
  bool changed = true;
  while (changed) {
    changed = false;
    for (TaskId t = 0; t < tasks.size(); ++t) {
      TaskState& st = state_[t];
      if (st.status != TaskStatus::kConverged) continue;
      bool taint = false;
      const ActivationSpec& spec = system_.activation(t);
      if (const auto* by = std::get_if<TaskOutputActivation>(&spec))
        taint = std::any_of(by->producers.begin(), by->producers.end(), degraded);
      else if (const auto* andj = std::get_if<AndActivation>(&spec))
        taint = std::any_of(andj->producers.begin(), andj->producers.end(), degraded);
      else if (const auto* packed = std::get_if<PackedActivation>(&spec)) {
        for (const auto& in : packed->inputs)
          if (const auto* tid = std::get_if<TaskId>(&in.source)) taint = taint || degraded(*tid);
      } else if (const auto* up = std::get_if<UnpackedActivation>(&spec)) {
        taint = degraded(up->frame_task) || state_[up->frame_task].hem_degraded;
      }
      if (!taint) continue;
      st.status = TaskStatus::kDegradedUpstream;
      if (!st.has_diag && !st.out_has_diag) {
        st.has_diag = true;
        st.diag = Diagnostic{Severity::kWarning, DiagCode::kDegradedUpstream, tasks[t].name,
                             "activation derives from a producer with fallback bounds",
                             current_iteration_};
      }
      changed = true;
    }
  }
}

AnalysisReport CpaEngine::assemble_report(int iterations, bool converged) {
  AnalysisReport report;
  report.iterations = iterations;
  report.converged = converged;
  report.stats = stats_;
  for (const auto& [r, diag] : resource_diag_) report.diagnostics.report(diag);
  const auto& tasks = system_.tasks();
  for (TaskId t = 0; t < tasks.size(); ++t) {
    const TaskState& st = state_[t];
    TaskResult res;
    res.name = tasks[t].name;
    res.resource = system_.resources()[tasks[t].resource].name;
    res.bcrt = st.bcrt;
    res.wcrt = st.wcrt;
    res.activations_in_busy_period = st.q_max;
    res.backlog = st.backlog;
    res.busy_period = st.busy;
    res.activation = st.act_flat;
    res.output = st.out_flat;
    res.hem_output = st.out_hem;
    res.status = st.status;
    res.utilization = cached_rate(t) * static_cast<double>(tasks[t].cet.worst);
    if (st.has_diag)
      report.diagnostics.report(st.diag);
    else if (st.out_has_diag)
      report.diagnostics.report(st.out_diag);
    report.tasks.push_back(std::move(res));
  }
  return report;
}

AnalysisReport CpaEngine::run() {
  using clock = std::chrono::steady_clock;
  limits_ = options_.fixpoint_limits;
  if (options_.cancel != nullptr) limits_.cancel = options_.cancel;
  if (options_.wall_clock_budget_ms > 0) {
    const auto deadline = clock::now() + std::chrono::milliseconds(options_.wall_clock_budget_ms);
    limits_.deadline = std::min(limits_.deadline, deadline);
  }
  const bool budgeted = limits_.deadline != clock::time_point::max();
  stats_ = EngineStats{};
  stats_.jobs = effective_jobs();
  stats_.warm_seeded = warm_seeded_;
  last_converged_ = false;  // until this run proves otherwise

  // Baselines for the engine.cache.* snapshot-diff published at the end of
  // the run (all zero deltas when obs counting is off).
  const long cache_hit0 = g_cache_hit.value();
  const long cache_miss0 = g_cache_miss.value();
  const long cache_race0 = g_cache_race.value();
  const long cache_alloc0 = g_cache_alloc.value();
  const long rec_extend0 = g_cache_rec_extend.value();
  const long rec_race0 = g_cache_rec_race.value();

  int iter = 0;
  bool converged = false;
  bool budget_hit = false;

  {
    obs::Span run_span("engine", "CpaEngine::run");
    run_span.arg("tasks", static_cast<long>(system_.tasks().size()));
    run_span.arg("resources", static_cast<long>(system_.resources().size()));
    run_span.arg("jobs", static_cast<long>(stats_.jobs));

    for (iter = 1; iter <= options_.max_iterations; ++iter) {
      current_iteration_ = iter;
      if (limits_.cancel != nullptr && limits_.cancel->cancelled())
        throw AnalysisError("CpaEngine: cancelled (" +
                                std::string(exec::to_string(limits_.cancel->reason())) +
                                ") before iteration " + std::to_string(iter),
                            ErrorCode::kCancelled);
      if (budgeted && clock::now() >= limits_.deadline) {
        budget_hit = true;
        break;
      }
      obs::Span iter_span("engine", "iteration");
      iter_span.arg("n", static_cast<long>(iter));
      resource_overloaded_.assign(system_.resources().size(), 0);
      resource_diag_.clear();

      resolve_activations();
      if (options_.check_overload) check_resource_load();
      analyze_resources();
      compute_outputs();

      const bool all_analyzed = std::all_of(state_.begin(), state_.end(),
                                            [](const TaskState& s) { return s.analyzed; });
      const bool stable = update_convergence();
      if (all_analyzed && stable) {
        converged = true;
        break;
      }
    }
    if (iter > options_.max_iterations) iter = options_.max_iterations;
    obs::instant("engine", [&] {
      return converged ? std::string("converged")
                       : std::string(budget_hit ? "budget-exhausted" : "iteration-limit");
    }, {{"iterations", std::to_string(iter)}});
  }

  if (!converged) {
    if (options_.strict) {
      std::string unresolved;
      for (TaskId t = 0; t < system_.tasks().size(); ++t) {
        if (!state_[t].analyzed)
          unresolved += (unresolved.empty() ? "" : ", ") + system_.tasks()[t].name;
      }
      throw AnalysisError(
          "CpaEngine: no fixpoint after " + std::to_string(options_.max_iterations) +
              " global iterations" +
              (unresolved.empty() ? std::string(" (cyclic dependency diverging)")
                                  : " (unresolved activations: " + unresolved +
                                        " - likely a dependency cycle that cannot bootstrap)"),
          budget_hit ? ErrorCode::kTimeBudget : ErrorCode::kIterationLimit);
    }
    finalize_divergence(budget_hit);
  }

  if (!options_.strict) taint_downstream();
  last_converged_ = converged;

  // A converged run's model nodes are final: lower every task's activation
  // and output stream so report consumers (hemlint rate propagation,
  // ModelChecker sweeps, downstream what-if queries) hit the compiled fast
  // path.  Beyond the compiled horizon queries fall back to the lazy DAG,
  // so this is pure acceleration, never an approximation.
  if (converged && options_.compile_curves) {
    for (TaskState& st : state_) {
      for (const ModelPtr& m : {st.act_flat, st.out_flat}) {
        if (m && m->compiled() == nullptr) {
          m->ensure_compiled(compile_options_for(st.busy));
          ++stats_.models_compiled;
        }
      }
    }
  }

  AnalysisReport report = assemble_report(iter, converged);
  if (!converged) {
    report.diagnostics.report(Diagnostic{
        Severity::kError,
        budget_hit ? DiagCode::kWallClockBudget : DiagCode::kGlobalIterationLimit, "system",
        budget_hit
            ? "wall-clock budget (" + std::to_string(options_.wall_clock_budget_ms) +
                  " ms) exhausted after " + std::to_string(iter) + " global iterations"
            : "no global fixpoint within " + std::to_string(options_.max_iterations) +
                  " iterations",
        current_iteration_});
  }

  // Publish the run's work counters into the shared registry (see the
  // g_eng_* declarations above); EngineStats stays the authoritative,
  // per-run view inside the report.
  stats_.cache_hits = g_cache_hit.value() - cache_hit0;
  stats_.cache_misses = g_cache_miss.value() - cache_miss0;
  stats_.cache_publish_races = g_cache_race.value() - cache_race0;
  stats_.cache_segment_allocs = g_cache_alloc.value() - cache_alloc0;
  stats_.rec_extends = g_cache_rec_extend.value() - rec_extend0;
  stats_.rec_publish_races = g_cache_rec_race.value() - rec_race0;
  report.stats = stats_;

  g_eng_analyses_run.add(stats_.local_analyses_run);
  g_eng_analyses_skipped.add(stats_.local_analyses_skipped);
  g_eng_models_reused.add(stats_.models_reused);
  g_eng_models_rebuilt.add(stats_.models_rebuilt);
  g_eng_warm_seeded.add(stats_.warm_seeded);
  g_eng_iterations.add(iter);
  return report;
}

}  // namespace hem::cpa
