#include "model/cpa_engine.hpp"

#include <algorithm>

#include "core/combinators.hpp"
#include "core/errors.hpp"
#include "core/output_model.hpp"
#include "core/sem_fit.hpp"
#include "hierarchical/inner_update.hpp"
#include "sched/can_bus.hpp"
#include "sched/edf.hpp"
#include "sched/flexray_static.hpp"
#include "sched/round_robin.hpp"
#include "sched/spp.hpp"
#include "sched/tdma.hpp"

namespace hem::cpa {

namespace {

/// Degraded-status classification of a local-analysis failure.
TaskStatus status_for(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOverload:
    case ErrorCode::kWindowLimit:
      return TaskStatus::kOverloaded;
    case ErrorCode::kIterationLimit:
    case ErrorCode::kTimeBudget:
      return TaskStatus::kBudgetExhausted;
    default:
      return TaskStatus::kDiverged;
  }
}

DiagCode diag_for(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOverload:
      return DiagCode::kResourceOverload;
    case ErrorCode::kIterationLimit:
    case ErrorCode::kTimeBudget:
      return DiagCode::kBusyWindowBudget;
    default:
      return DiagCode::kBusyWindowDivergence;
  }
}

/// Sporadic fallback hierarchical output: outer and every inner stream
/// degrade to the eq.-8 pending shape (spacing, delta+ = inf).
HemPtr degraded_hem_output(const ModelPtr& outer, std::size_t inner_count, Time spacing) {
  std::vector<ModelPtr> inner(inner_count, std::make_shared<SporadicEnvelopeModel>(spacing));
  return std::make_shared<HierarchicalEventModel>(outer, std::move(inner),
                                                  PackRule::instance());
}

}  // namespace

CpaEngine::CpaEngine(const System& system, EngineOptions options)
    : system_(system), options_(options), limits_(options.fixpoint_limits) {
  system_.validate();
  state_.resize(system_.tasks().size());
  resource_overloaded_.assign(system_.resources().size(), 0);
}

void CpaEngine::resolve_activations() {
  const auto& tasks = system_.tasks();
  for (TaskId t = 0; t < tasks.size(); ++t) {
    const ActivationSpec& spec = system_.activation(t);
    TaskState& st = state_[t];

    if (const auto* ext = std::get_if<ExternalActivation>(&spec)) {
      st.act_flat = ext->model;
      continue;
    }
    if (const auto* by = std::get_if<TaskOutputActivation>(&spec)) {
      std::vector<ModelPtr> producers;
      bool complete = true;
      for (TaskId p : by->producers) {
        if (!state_[p].out_flat) {
          complete = false;
          break;
        }
        producers.push_back(state_[p].out_flat);
      }
      if (complete) st.act_flat = or_combine(producers);
      continue;
    }
    if (const auto* andj = std::get_if<AndActivation>(&spec)) {
      std::vector<ModelPtr> fitted;
      bool complete = true;
      for (TaskId p : andj->producers) {
        if (!state_[p].out_flat) {
          complete = false;
          break;
        }
        fitted.push_back(fit_sem(*state_[p].out_flat, andj->period));
      }
      if (complete) st.act_flat = and_combine(fitted);
      continue;
    }
    if (const auto* packed = std::get_if<PackedActivation>(&spec)) {
      std::vector<PackInput> inputs;
      bool complete = true;
      for (const auto& in : packed->inputs) {
        ModelPtr m;
        if (const auto* tid = std::get_if<TaskId>(&in.source)) {
          m = state_[*tid].out_flat;
        } else {
          m = std::get<ModelPtr>(in.source);
        }
        if (!m) {
          complete = false;
          break;
        }
        inputs.push_back(PackInput{std::move(m), in.coupling});
      }
      if (complete) {
        st.act_hem = pack(inputs, packed->timer);
        st.act_flat = st.act_hem->outer();
      }
      continue;
    }
    if (const auto* up = std::get_if<UnpackedActivation>(&spec)) {
      const TaskState& frame = state_[up->frame_task];
      if (frame.out_hem) st.act_flat = frame.out_hem->inner(up->index);
      continue;
    }
  }
}

void CpaEngine::check_resource_load() {
  const auto& tasks = system_.tasks();
  for (ResourceId r = 0; r < system_.resources().size(); ++r) {
    double load = 0.0;
    bool complete = true;
    for (TaskId t = 0; t < tasks.size(); ++t) {
      if (tasks[t].resource != r) continue;
      if (!state_[t].act_flat) {
        complete = false;
        break;
      }
      load +=
          long_run_rate(*state_[t].act_flat) * static_cast<double>(tasks[t].cet.worst);
    }
    if (!complete || load <= 1.0) continue;
    if (options_.strict)
      throw AnalysisError("CpaEngine: resource '" + system_.resources()[r].name +
                              "' is overloaded (load " + std::to_string(load) + " > 1)",
                          ErrorCode::kOverload);
    resource_overloaded_[r] = 1;
    resource_diag_[r] = Diagnostic{Severity::kError, DiagCode::kResourceOverload,
                                   system_.resources()[r].name,
                                   "long-run load " + std::to_string(load) +
                                       " exceeds 1; tasks receive fallback bounds",
                                   current_iteration_};
  }
}

void CpaEngine::apply_resource_fallback(ResourceId r, const std::vector<TaskId>& ids,
                                        TaskStatus status, DiagCode code,
                                        const std::string& detail) {
  const auto& tasks = system_.tasks();
  const Policy policy = system_.resources()[r].policy;
  // The linear utilisation envelope assumes a work-conserving resource; the
  // slotted policies (TDMA, FlexRay static) idle between slots, so only
  // infinity is sound there.
  const bool work_conserving = policy == Policy::kSppPreemptive ||
                               policy == Policy::kSpnpCan || policy == Policy::kEdf ||
                               policy == Policy::kRoundRobin;
  Time envelope = kTimeInfinity;
  if (work_conserving) {
    std::vector<EnvelopeTask> inputs;
    for (TaskId t : ids) inputs.push_back(EnvelopeTask{state_[t].act_flat, tasks[t].cet.worst});
    envelope = utilization_wcrt_envelope(inputs);
  }
  for (TaskId t : ids) {
    TaskState& st = state_[t];
    st.analyzed = true;
    st.bcrt = tasks[t].cet.best;
    st.wcrt = std::max(envelope, st.bcrt);
    st.q_max = is_infinite(st.wcrt) ? kCountInfinity : st.act_flat->eta_plus(st.wcrt);
    st.backlog = st.q_max;
    st.busy = st.wcrt;
    st.status = status;
    st.has_diag = true;
    st.diag = Diagnostic{Severity::kError, code, tasks[t].name, detail, current_iteration_};
  }
}

void CpaEngine::analyze_resources() {
  const auto& tasks = system_.tasks();
  for (ResourceId r = 0; r < system_.resources().size(); ++r) {
    const ResourceSpec& res = system_.resources()[r];
    // Analyse the resolved subset of the resource's tasks.  Tasks whose
    // activation depends on not-yet-analysed producers (e.g. same-resource
    // chains) join in a later global iteration; interference only grows, so
    // the iteration converges to the full-fixpoint result and the final
    // round always covers the complete task set.
    std::vector<TaskId> ids;
    for (TaskId t = 0; t < tasks.size(); ++t) {
      if (tasks[t].resource != r) continue;
      if (state_[t].act_flat) ids.push_back(t);
    }
    if (ids.empty()) continue;

    if (!options_.strict && resource_overloaded_[r]) {
      apply_resource_fallback(r, ids, TaskStatus::kOverloaded, DiagCode::kResourceOverload,
                              "resource '" + res.name +
                                  "' overloaded; unbounded fallback WCRT substituted");
      continue;
    }

    const auto record = [&](const std::vector<sched::ResponseResult>& results) {
      for (std::size_t i = 0; i < ids.size(); ++i) {
        TaskState& st = state_[ids[i]];
        st.analyzed = true;
        st.bcrt = results[i].bcrt;
        st.wcrt = results[i].wcrt;
        st.q_max = results[i].activations;
        st.backlog = results[i].backlog;
        st.busy = results[i].busy_period;
      }
    };

    const auto params_for = [&](TaskId t) {
      return sched::TaskParams{tasks[t].name, tasks[t].priority, tasks[t].cet,
                               state_[t].act_flat};
    };

    const auto run_local = [&] {
      switch (res.policy) {
        case Policy::kSppPreemptive: {
          std::vector<sched::TaskParams> params;
          for (TaskId t : ids) params.push_back(params_for(t));
          record(sched::SppAnalysis(std::move(params), limits_).analyze_all());
          break;
        }
        case Policy::kSpnpCan: {
          std::vector<sched::TaskParams> params;
          for (TaskId t : ids) params.push_back(params_for(t));
          record(sched::CanBusAnalysis(std::move(params), limits_).analyze_all());
          break;
        }
        case Policy::kRoundRobin: {
          std::vector<sched::RoundRobinTask> params;
          for (TaskId t : ids)
            params.push_back(sched::RoundRobinTask{params_for(t), tasks[t].slot});
          record(sched::RoundRobinAnalysis(std::move(params), limits_).analyze_all());
          break;
        }
        case Policy::kTdma: {
          std::vector<sched::TdmaTask> params;
          for (TaskId t : ids) params.push_back(sched::TdmaTask{params_for(t), tasks[t].slot});
          record(sched::TdmaAnalysis(std::move(params), res.tdma_cycle, limits_).analyze_all());
          break;
        }
        case Policy::kFlexRayStatic: {
          std::vector<sched::FlexRayFrame> params;
          for (TaskId t : ids) params.push_back(sched::FlexRayFrame{params_for(t)});
          record(sched::FlexRayStaticAnalysis(std::move(params), res.tdma_cycle,
                                              res.slot_length, limits_)
                     .analyze_all());
          break;
        }
        case Policy::kEdf: {
          std::vector<sched::EdfTask> params;
          for (TaskId t : ids)
            params.push_back(sched::EdfTask{params_for(t), tasks[t].deadline});
          record(sched::EdfAnalysis(std::move(params), limits_).analyze_all());
          break;
        }
      }
    };

    if (options_.strict) {
      run_local();
      continue;
    }
    try {
      run_local();
    } catch (const AnalysisError& e) {
      apply_resource_fallback(r, ids, status_for(e.code()), diag_for(e.code()), e.what());
    }
  }
}

void CpaEngine::compute_outputs() {
  const auto& tasks = system_.tasks();
  for (TaskId t = 0; t < tasks.size(); ++t) {
    TaskState& st = state_[t];
    if (!st.analyzed) continue;
    if (is_infinite(st.wcrt)) {
      // No finite response bound: the output degrades to the sporadic
      // envelope (consecutive completions of one task stay >= r- apart,
      // no arrival guarantee).
      const Time spacing = std::max<Time>(st.bcrt, 0);
      st.out_flat = std::make_shared<SporadicEnvelopeModel>(spacing);
      if (st.act_hem) {
        st.out_hem = degraded_hem_output(st.out_flat, st.act_hem->inner_count(), spacing);
        st.hem_degraded = true;
      }
      continue;
    }
    st.out_flat = std::make_shared<OutputModel>(st.act_flat, st.bcrt, st.wcrt);
    if (options_.propagate_fitted_sem) st.out_flat = fit_sem(*st.out_flat);
    if (!st.act_hem) continue;
    if (options_.strict) {
      st.out_hem = st.act_hem->after_response(st.bcrt, st.wcrt);
      continue;
    }
    try {
      st.out_hem = st.act_hem->after_response(st.bcrt, st.wcrt);
    } catch (const AnalysisError& e) {
      const Time spacing = std::max<Time>(st.bcrt, 0);
      st.out_hem = degraded_hem_output(st.out_flat, st.act_hem->inner_count(), spacing);
      st.hem_degraded = true;
      st.has_diag = true;
      st.diag = Diagnostic{Severity::kWarning, DiagCode::kInnerUpdateUnbounded, tasks[t].name,
                           e.what(), current_iteration_};
    }
  }
}

std::vector<std::vector<Time>> CpaEngine::signatures() const {
  std::vector<std::vector<Time>> sigs(state_.size());
  for (std::size_t i = 0; i < state_.size(); ++i) {
    const TaskState& st = state_[i];
    std::vector<Time>& sig = sigs[i];
    sig.push_back(st.analyzed ? 1 : 0);
    sig.push_back(st.bcrt);
    sig.push_back(st.wcrt);
    if (st.act_flat) {
      for (Count n = 2; n <= options_.compare_horizon; ++n) {
        sig.push_back(st.act_flat->delta_min(n));
        sig.push_back(st.act_flat->delta_plus(n));
      }
    } else {
      sig.push_back(-2);
    }
  }
  return sigs;
}

void CpaEngine::finalize_divergence(bool budget_hit) {
  // Called in graceful mode when the global loop stopped without a fixpoint.
  // Bounds of tasks whose activation curves were still moving (or whose
  // producers'/resource-mates' were) are not sound; replace them with the
  // unbounded fallback.  Tasks whose entire dependency cone stabilised keep
  // their genuine fixpoint results.
  const auto& tasks = system_.tasks();
  std::vector<char> unstable(tasks.size(), 0);
  for (TaskId t = 0; t < tasks.size(); ++t)
    unstable[t] = !state_[t].analyzed || prev_sig_.empty() || prev_sig_[t] != last_sig_[t];

  bool changed = true;
  while (changed) {
    changed = false;
    for (TaskId t = 0; t < tasks.size(); ++t) {
      if (unstable[t]) continue;
      bool taint = false;
      const ActivationSpec& spec = system_.activation(t);
      const auto check = [&](TaskId p) { taint = taint || unstable[p]; };
      if (const auto* by = std::get_if<TaskOutputActivation>(&spec))
        for (TaskId p : by->producers) check(p);
      if (const auto* andj = std::get_if<AndActivation>(&spec))
        for (TaskId p : andj->producers) check(p);
      if (const auto* packed = std::get_if<PackedActivation>(&spec))
        for (const auto& in : packed->inputs)
          if (const auto* tid = std::get_if<TaskId>(&in.source)) check(*tid);
      if (const auto* up = std::get_if<UnpackedActivation>(&spec)) check(up->frame_task);
      // Interference path: a resource-mate whose activation is unstable
      // makes this task's interference bound unstable as well.
      for (TaskId m = 0; m < tasks.size() && !taint; ++m)
        if (m != t && tasks[m].resource == tasks[t].resource && unstable[m]) taint = true;
      if (taint) {
        unstable[t] = 1;
        changed = true;
      }
    }
  }

  const TaskStatus status = budget_hit ? TaskStatus::kBudgetExhausted : TaskStatus::kDiverged;
  const DiagCode code = budget_hit ? DiagCode::kWallClockBudget : DiagCode::kGlobalIterationLimit;
  for (TaskId t = 0; t < tasks.size(); ++t) {
    if (!unstable[t]) continue;
    TaskState& st = state_[t];
    if (st.status != TaskStatus::kConverged) continue;  // keep the own-failure record
    if (!st.analyzed) {
      st.diag = Diagnostic{Severity::kError, DiagCode::kUnresolvedActivation, tasks[t].name,
                           "activation never resolved (dependency cycle cannot bootstrap)",
                           current_iteration_};
      if (!st.act_flat) st.act_flat = std::make_shared<SporadicEnvelopeModel>(0);
      st.analyzed = true;
    } else {
      st.diag = Diagnostic{
          Severity::kError, code, tasks[t].name,
          budget_hit ? "wall-clock budget exhausted before the global fixpoint"
                     : "no global fixpoint; last-iteration bounds unsound, substituting infinity",
          current_iteration_};
    }
    st.has_diag = true;
    st.status = status;
    st.bcrt = std::min(st.bcrt, tasks[t].cet.best);
    st.wcrt = kTimeInfinity;
    st.q_max = kCountInfinity;
    st.backlog = kCountInfinity;
    st.busy = kTimeInfinity;
    const Time spacing = std::max<Time>(st.bcrt, 0);
    st.out_flat = std::make_shared<SporadicEnvelopeModel>(spacing);
    if (st.act_hem) {
      st.out_hem = degraded_hem_output(st.out_flat, st.act_hem->inner_count(), spacing);
      st.hem_degraded = true;
    }
  }
}

void CpaEngine::taint_downstream() {
  const auto& tasks = system_.tasks();
  const auto degraded = [&](TaskId p) { return state_[p].status != TaskStatus::kConverged; };
  bool changed = true;
  while (changed) {
    changed = false;
    for (TaskId t = 0; t < tasks.size(); ++t) {
      TaskState& st = state_[t];
      if (st.status != TaskStatus::kConverged) continue;
      bool taint = false;
      const ActivationSpec& spec = system_.activation(t);
      if (const auto* by = std::get_if<TaskOutputActivation>(&spec))
        taint = std::any_of(by->producers.begin(), by->producers.end(), degraded);
      else if (const auto* andj = std::get_if<AndActivation>(&spec))
        taint = std::any_of(andj->producers.begin(), andj->producers.end(), degraded);
      else if (const auto* packed = std::get_if<PackedActivation>(&spec)) {
        for (const auto& in : packed->inputs)
          if (const auto* tid = std::get_if<TaskId>(&in.source)) taint = taint || degraded(*tid);
      } else if (const auto* up = std::get_if<UnpackedActivation>(&spec)) {
        taint = degraded(up->frame_task) || state_[up->frame_task].hem_degraded;
      }
      if (!taint) continue;
      st.status = TaskStatus::kDegradedUpstream;
      if (!st.has_diag) {
        st.has_diag = true;
        st.diag = Diagnostic{Severity::kWarning, DiagCode::kDegradedUpstream, tasks[t].name,
                             "activation derives from a producer with fallback bounds",
                             current_iteration_};
      }
      changed = true;
    }
  }
}

AnalysisReport CpaEngine::assemble_report(int iterations, bool converged) const {
  AnalysisReport report;
  report.iterations = iterations;
  report.converged = converged;
  for (const auto& [r, diag] : resource_diag_) report.diagnostics.report(diag);
  const auto& tasks = system_.tasks();
  for (TaskId t = 0; t < tasks.size(); ++t) {
    const TaskState& st = state_[t];
    TaskResult res;
    res.name = tasks[t].name;
    res.resource = system_.resources()[tasks[t].resource].name;
    res.bcrt = st.bcrt;
    res.wcrt = st.wcrt;
    res.activations_in_busy_period = st.q_max;
    res.backlog = st.backlog;
    res.busy_period = st.busy;
    res.activation = st.act_flat;
    res.output = st.out_flat;
    res.hem_output = st.out_hem;
    res.status = st.status;
    res.utilization =
        long_run_rate(*st.act_flat) * static_cast<double>(tasks[t].cet.worst);
    if (st.has_diag) report.diagnostics.report(st.diag);
    report.tasks.push_back(std::move(res));
  }
  return report;
}

AnalysisReport CpaEngine::run() {
  using clock = std::chrono::steady_clock;
  limits_ = options_.fixpoint_limits;
  if (options_.wall_clock_budget_ms > 0) {
    const auto deadline = clock::now() + std::chrono::milliseconds(options_.wall_clock_budget_ms);
    limits_.deadline = std::min(limits_.deadline, deadline);
  }
  const bool budgeted = limits_.deadline != clock::time_point::max();

  int iter = 0;
  bool converged = false;
  bool budget_hit = false;

  for (iter = 1; iter <= options_.max_iterations; ++iter) {
    current_iteration_ = iter;
    if (budgeted && clock::now() >= limits_.deadline) {
      budget_hit = true;
      break;
    }
    for (TaskState& st : state_) {
      st.status = TaskStatus::kConverged;
      st.has_diag = false;
      st.hem_degraded = false;
    }
    resource_overloaded_.assign(system_.resources().size(), 0);
    resource_diag_.clear();

    resolve_activations();
    if (options_.check_overload) check_resource_load();
    analyze_resources();
    compute_outputs();

    std::vector<std::vector<Time>> sig = signatures();
    const bool all_analyzed =
        std::all_of(state_.begin(), state_.end(), [](const TaskState& s) { return s.analyzed; });
    if (all_analyzed && !last_sig_.empty() && sig == last_sig_) {
      converged = true;
      prev_sig_ = last_sig_;
      last_sig_ = std::move(sig);
      break;
    }
    prev_sig_ = std::move(last_sig_);
    last_sig_ = std::move(sig);
  }
  if (iter > options_.max_iterations) iter = options_.max_iterations;

  if (!converged) {
    if (options_.strict) {
      std::string unresolved;
      for (TaskId t = 0; t < system_.tasks().size(); ++t) {
        if (!state_[t].analyzed)
          unresolved += (unresolved.empty() ? "" : ", ") + system_.tasks()[t].name;
      }
      throw AnalysisError(
          "CpaEngine: no fixpoint after " + std::to_string(options_.max_iterations) +
              " global iterations" +
              (unresolved.empty() ? std::string(" (cyclic dependency diverging)")
                                  : " (unresolved activations: " + unresolved +
                                        " - likely a dependency cycle that cannot bootstrap)"),
          budget_hit ? ErrorCode::kTimeBudget : ErrorCode::kIterationLimit);
    }
    finalize_divergence(budget_hit);
  }

  if (!options_.strict) taint_downstream();

  AnalysisReport report = assemble_report(iter, converged);
  if (!converged) {
    report.diagnostics.report(Diagnostic{
        Severity::kError,
        budget_hit ? DiagCode::kWallClockBudget : DiagCode::kGlobalIterationLimit, "system",
        budget_hit
            ? "wall-clock budget (" + std::to_string(options_.wall_clock_budget_ms) +
                  " ms) exhausted after " + std::to_string(iter) + " global iterations"
            : "no global fixpoint within " + std::to_string(options_.max_iterations) +
                  " iterations",
        current_iteration_});
  }
  return report;
}

}  // namespace hem::cpa
