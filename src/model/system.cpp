#include "model/system.hpp"

#include <stdexcept>

namespace hem::cpa {

ResourceId System::add_resource(ResourceSpec spec) {
  if (spec.name.empty()) throw std::invalid_argument("System: resource with empty name");
  if ((spec.policy == Policy::kTdma || spec.policy == Policy::kFlexRayStatic) &&
      spec.tdma_cycle <= 0)
    throw std::invalid_argument("System: resource '" + spec.name + "' needs a cycle");
  if (spec.policy == Policy::kFlexRayStatic &&
      (spec.slot_length <= 0 || spec.slot_length > spec.tdma_cycle))
    throw std::invalid_argument("System: FlexRay resource '" + spec.name +
                                "' needs 0 < slot_length <= cycle");
  resources_.push_back(std::move(spec));
  return resources_.size() - 1;
}

TaskId System::add_task(TaskSpec spec) {
  if (spec.name.empty()) throw std::invalid_argument("System: task with empty name");
  if (spec.resource >= resources_.size())
    throw std::invalid_argument("System: task '" + spec.name + "' references unknown resource");
  for (const auto& t : tasks_)
    if (t.name == spec.name)
      throw std::invalid_argument("System: duplicate task name '" + spec.name + "'");
  tasks_.push_back(std::move(spec));
  activations_.emplace_back();
  return tasks_.size() - 1;
}

void System::activate_external(TaskId task, ModelPtr model) {
  if (!model) throw std::invalid_argument("System: null external activation model");
  activations_.at(task) = ExternalActivation{std::move(model)};
}

void System::activate_by(TaskId task, std::vector<TaskId> producers) {
  if (producers.empty()) throw std::invalid_argument("System: empty producer list");
  for (TaskId p : producers)
    if (p >= tasks_.size() || p == task)
      throw std::invalid_argument("System: invalid producer for task '" + tasks_.at(task).name +
                                  "'");
  activations_.at(task) = TaskOutputActivation{std::move(producers)};
}

void System::activate_and(TaskId task, std::vector<TaskId> producers, Time period) {
  if (producers.size() < 2)
    throw std::invalid_argument("System: AND-activation needs at least two producers");
  if (period <= 0) throw std::invalid_argument("System: AND-activation needs a period");
  for (TaskId p : producers)
    if (p >= tasks_.size() || p == task)
      throw std::invalid_argument("System: invalid AND producer for task '" +
                                  tasks_.at(task).name + "'");
  activations_.at(task) = AndActivation{std::move(producers), period};
}

void System::activate_packed(TaskId frame, std::vector<PackedActivation::Input> inputs,
                             ModelPtr timer) {
  if (inputs.empty()) throw std::invalid_argument("System: packed activation without inputs");
  for (const auto& in : inputs) {
    if (const auto* tid = std::get_if<TaskId>(&in.source)) {
      if (*tid >= tasks_.size() || *tid == frame)
        throw std::invalid_argument("System: invalid packed input for frame '" +
                                    tasks_.at(frame).name + "'");
    } else if (!std::get<ModelPtr>(in.source)) {
      throw std::invalid_argument("System: null packed input model");
    }
  }
  activations_.at(frame) = PackedActivation{std::move(inputs), std::move(timer)};
}

void System::activate_unpacked(TaskId task, TaskId frame, std::size_t index) {
  if (frame >= tasks_.size() || frame == task)
    throw std::invalid_argument("System: invalid frame task reference");
  activations_.at(task) = UnpackedActivation{frame, index};
}

void System::rewrite_external_models(TaskId task,
                                     const std::function<ModelPtr(const ModelPtr&)>& fn) {
  ActivationSpec& spec = activations_.at(task);
  const auto swap_in = [&](ModelPtr& slot) {
    if (!slot) return;
    if (ModelPtr replacement = fn(slot)) slot = std::move(replacement);
  };
  if (auto* ext = std::get_if<ExternalActivation>(&spec)) {
    swap_in(ext->model);
    return;
  }
  if (auto* packed = std::get_if<PackedActivation>(&spec)) {
    for (PackedActivation::Input& in : packed->inputs)
      if (auto* m = std::get_if<ModelPtr>(&in.source)) swap_in(*m);
    swap_in(packed->timer);
  }
}

TaskId System::task_id(std::string_view name) const {
  for (TaskId i = 0; i < tasks_.size(); ++i)
    if (tasks_[i].name == name) return i;
  throw std::invalid_argument("System: no task named '" + std::string(name) + "'");
}

void System::set_task_cet(TaskId task, sched::ExecutionTime cet) {
  tasks_.at(task).cet = cet;
}

void System::set_task_priority(TaskId task, int priority) {
  tasks_.at(task).priority = priority;
}

void System::set_task_slot(TaskId task, Time slot) { tasks_.at(task).slot = slot; }

void System::set_resource_tdma_cycle(ResourceId resource, Time cycle) {
  ResourceSpec& res = resources_.at(resource);
  if (res.policy != Policy::kTdma && res.policy != Policy::kFlexRayStatic)
    throw std::invalid_argument("System: resource '" + res.name + "' has no TDMA cycle");
  if (cycle <= 0)
    throw std::invalid_argument("System: resource '" + res.name + "' needs a positive cycle");
  res.tdma_cycle = cycle;
}

void System::validate() const {
  if (tasks_.empty()) throw std::invalid_argument("System: no tasks");
  for (TaskId i = 0; i < tasks_.size(); ++i) {
    const auto& act = activations_[i];
    if (std::holds_alternative<std::monostate>(act))
      throw std::invalid_argument("System: task '" + tasks_[i].name + "' has no activation");
    if (const auto* up = std::get_if<UnpackedActivation>(&act)) {
      const auto& frame_act = activations_.at(up->frame_task);
      const auto* packed = std::get_if<PackedActivation>(&frame_act);
      if (packed == nullptr)
        throw std::invalid_argument("System: task '" + tasks_[i].name +
                                    "' unpacks from a task without packed activation");
      if (up->index >= packed->inputs.size())
        throw std::invalid_argument("System: task '" + tasks_[i].name +
                                    "' unpacks out-of-range inner stream");
    }
    const auto& res = resources_[tasks_[i].resource];
    if ((res.policy == Policy::kRoundRobin || res.policy == Policy::kTdma) &&
        tasks_[i].slot <= 0)
      throw std::invalid_argument("System: task '" + tasks_[i].name +
                                  "' needs a positive slot on resource '" + res.name + "'");
    if (res.policy == Policy::kEdf && tasks_[i].deadline <= 0)
      throw std::invalid_argument("System: task '" + tasks_[i].name +
                                  "' needs a positive deadline on EDF resource '" + res.name +
                                  "'");
  }
}

}  // namespace hem::cpa
