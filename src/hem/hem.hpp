#pragma once

/// \file hem.hpp
/// Umbrella public header of the HEM/CPA library.
///
/// Quick tour:
///   * core/        event-model algebra: SEM, curves, OR/AND, Theta_tau,
///                  shapers (the flat compositional-analysis substrate)
///   * sched/       local analyses: SPP, CAN (SPNP), round-robin, TDMA,
///                  periodic-resource servers
///   * hierarchical/ hierarchical event models: pack constructor Omega_pa,
///                  inner update B, deconstructor Psi  (the paper's core)
///   * com/         AUTOSAR-style COM layer: signals, frames, packing
///   * model/       system graph + global compositional analysis engine
///   * sim/         independent discrete-event simulator for validation

#include "core/combinators.hpp"
#include "core/delta_function_model.hpp"
#include "core/errors.hpp"
#include "core/event_model.hpp"
#include "core/grouped_stream_model.hpp"
#include "core/intersection_model.hpp"
#include "core/leaky_bucket_model.hpp"
#include "core/model_io.hpp"
#include "core/offset_transaction_model.hpp"
#include "core/output_model.hpp"
#include "core/sem_fit.hpp"
#include "core/shaper.hpp"
#include "core/standard_event_model.hpp"
#include "core/time.hpp"
#include "core/trace_model.hpp"

#include "io/csv.hpp"

#include "sched/busy_window.hpp"
#include "sched/can_bus.hpp"
#include "sched/edf.hpp"
#include "sched/flexray_static.hpp"
#include "sched/priority_assignment.hpp"
#include "sched/resource_server.hpp"
#include "sched/round_robin.hpp"
#include "sched/spp.hpp"
#include "sched/tdma.hpp"

#include "hierarchical/hierarchical_event_model.hpp"
#include "hierarchical/inner_update.hpp"
#include "hierarchical/pack_constructor.hpp"

#include "com/can_timing.hpp"
#include "com/com_layer.hpp"
#include "com/frame.hpp"
#include "com/signal.hpp"

#include "model/analysis_report.hpp"
#include "model/cpa_engine.hpp"
#include "model/path_latency.hpp"
#include "model/sensitivity.hpp"
#include "model/system.hpp"
#include "model/textual_config.hpp"

#include "rtc/curve.hpp"
#include "rtc/gpc.hpp"

// The simulators live in sim/ and are intentionally NOT pulled in here:
// they exist to validate the analyses independently, and keeping them out
// of the umbrella header preserves that separation for library users.
