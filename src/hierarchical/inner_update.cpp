#include "hierarchical/inner_update.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "core/errors.hpp"

namespace hem {

ResponseUpdatedInnerModel::ResponseUpdatedInnerModel(ModelPtr inner, Time r_minus, Time r_plus,
                                                     Count k)
    : inner_(std::move(inner)), r_minus_(r_minus), r_plus_(r_plus), k_(k) {
  if (!inner_) throw std::invalid_argument("ResponseUpdatedInnerModel: null inner model");
  if (r_minus < 0 || r_plus < r_minus)
    throw std::invalid_argument("ResponseUpdatedInnerModel: need 0 <= r- <= r+");
  if (is_infinite(r_plus))
    throw std::invalid_argument("ResponseUpdatedInnerModel: unbounded response time");
  if (k < 1) throw std::invalid_argument("ResponseUpdatedInnerModel: need k >= 1");
}

Time ResponseUpdatedInnerModel::delta_min_raw(Count n) const {
  const Time shrink = sat_add(r_plus_ - r_minus_, sat_mul(r_minus_, k_ - 1));
  const Time shifted = sat_sub(inner_->delta_min(n), shrink);
  return std::max(std::max<Time>(shifted, 0), sat_mul(r_minus_, n - 1));
}

Time ResponseUpdatedInnerModel::delta_plus_raw(Count n) const {
  const Time grow = sat_add(r_plus_ - r_minus_, sat_mul(r_minus_, k_ - 1));
  return sat_add(inner_->delta_plus(n), grow);
}

std::string ResponseUpdatedInnerModel::describe() const {
  std::ostringstream os;
  os << "InnerUpd(r=[" << r_minus_ << ":" << r_plus_ << "], k=" << k_ << ", "
     << inner_->describe() << ")";
  return os.str();
}

std::shared_ptr<const PackRule> PackRule::instance() {
  static const auto rule = std::make_shared<const PackRule>();
  return rule;
}

ModelPtr PackRule::update_inner_after_response(const ModelPtr& inner, const ModelPtr& outer_old,
                                               Time r_minus, Time r_plus) const {
  const Count k = outer_old->max_simultaneous_events();
  if (is_infinite_count(k))
    throw AnalysisError(
        "PackRule: outer stream allows unbounded simultaneous events; inner update undefined",
        ErrorCode::kUnbounded);
  return std::make_shared<ResponseUpdatedInnerModel>(inner, r_minus, r_plus, std::max<Count>(1, k));
}

}  // namespace hem
