#include "hierarchical/pack_constructor.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "core/combinators.hpp"
#include "hierarchical/inner_update.hpp"
#include "verify/contracts.hpp"

namespace hem {

PendingSignalModel::PendingSignalModel(ModelPtr signal, ModelPtr frame)
    : signal_(std::move(signal)), frame_(std::move(frame)) {
  if (!signal_ || !frame_) throw std::invalid_argument("PendingSignalModel: null model");
}

Time PendingSignalModel::delta_min_raw(Count n) const {
  // eq. (7): the first of the n signal events may arrive right after a frame
  // left, waiting up to delta+_f(2); the n-th is assumed to be carried
  // immediately (conservative).  Never less than the frame stream itself
  // allows for n frames.
  const Time via_signal = sat_sub(signal_->delta_min(n), frame_->delta_plus(2));
  return std::max(std::max<Time>(via_signal, 0), frame_->delta_min(n));
}

Time PendingSignalModel::delta_plus_raw(Count /*n*/) const {
  // eq. (8): no upper bound -- a pending value may wait arbitrarily long if
  // the source stalls.
  return kTimeInfinity;
}

std::string PendingSignalModel::describe() const {
  std::ostringstream os;
  os << "Pending(" << signal_->describe() << " in " << frame_->describe() << ")";
  return os.str();
}

HemPtr pack(const std::vector<PackInput>& inputs, ModelPtr timer) {
  if (inputs.empty()) throw std::invalid_argument("pack: no inputs");
  std::vector<ModelPtr> triggering;
  for (const auto& in : inputs) {
    if (!in.model) throw std::invalid_argument("pack: null input model");
    if (in.coupling == SignalCoupling::kTriggering) triggering.push_back(in.model);
  }
  if (timer) triggering.push_back(std::move(timer));
  if (triggering.empty())
    throw std::invalid_argument(
        "pack: no triggering input and no timer - the frame would never be sent");

  // Outer stream: OR-combination of all triggering streams (eqs. 3-4).
  ModelPtr outer = or_combine(triggering);

  // Inner streams, one per input, in input order.
  std::vector<ModelPtr> inner;
  inner.reserve(inputs.size());
  for (const auto& in : inputs) {
    if (in.coupling == SignalCoupling::kTriggering)
      inner.push_back(in.model);  // eqs. (5)-(6)
    else
      inner.push_back(std::make_shared<PendingSignalModel>(in.model, outer));  // eqs. (7)-(8)
  }

  auto hem = std::make_shared<HierarchicalEventModel>(std::move(outer), std::move(inner),
                                                      PackRule::instance());
  HEM_VERIFY_PACK(*hem, "pack (Omega_pa)");
  return hem;
}

}  // namespace hem
