#pragma once

/// \file hierarchical_event_model.hpp
/// Hierarchical event streams and hierarchical event models -- the core
/// contribution of Rox/Ernst (DATE'08).
///
/// A hierarchical event stream ES_h is the result of combining n input
/// streams; it keeps
///   * one OUTER event stream (the combined stream as a flat operation
///     would see it, e.g. the frame activations of a communication layer),
///   * one INNER event stream per combined input (the timing of exactly
///     those outer events that carry events of that input), and
///   * the CONSTRUCTION RULE that produced it (Def. 5: H = (F_out, L, C)).
///
/// Flat stream operations (task/bus transmission Theta_tau, shapers, ...)
/// are applied to the outer stream; the construction rule then provides the
/// matching *inner update function* (Def. 7) that transforms every inner
/// stream consistently.  The deconstructor Psi (Def. 6, Def. 10) finally
/// extracts the inner streams as ordinary flat models for downstream local
/// analysis -- which is where the precision gain over flat analysis comes
/// from.

#include <memory>
#include <string>
#include <vector>

#include "core/event_model.hpp"

namespace hem {

class HierarchicalEventModel;
using HemPtr = std::shared_ptr<const HierarchicalEventModel>;

/// Construction rule C of a hierarchical event model (Def. 5).  The rule
/// records *how* the inner streams relate to the outer stream and therefore
/// owns the inner update function B (Def. 7) for each supported operation.
class ConstructionRule {
 public:
  virtual ~ConstructionRule() = default;

  /// Inner update B_{Theta_tau, C} (Def. 7): adapt one inner model after the
  /// outer stream passed through a task/transmission operation with response
  /// times [r-, r+].
  ///
  /// \param inner      the inner model before the operation
  /// \param outer_old  the outer model before the operation (provides the
  ///                   simultaneity parameter k where needed)
  [[nodiscard]] virtual ModelPtr update_inner_after_response(const ModelPtr& inner,
                                                             const ModelPtr& outer_old,
                                                             Time r_minus,
                                                             Time r_plus) const = 0;

  [[nodiscard]] virtual std::string describe() const = 0;
};

/// A hierarchical event model H = (F_out, L, C) (Def. 5).
///
/// Immutable: operations return new instances.
class HierarchicalEventModel {
 public:
  HierarchicalEventModel(ModelPtr outer, std::vector<ModelPtr> inner,
                         std::shared_ptr<const ConstructionRule> rule);

  /// The outer event stream F_out -- what any flat operation sees.
  [[nodiscard]] const ModelPtr& outer() const noexcept { return outer_; }

  /// Number of embedded inner streams.
  [[nodiscard]] std::size_t inner_count() const noexcept { return inner_.size(); }

  /// Deconstructor Psi (Def. 6 / Def. 10): the i-th inner stream, L(i),
  /// as a flat event model (0-based index).
  [[nodiscard]] const ModelPtr& inner(std::size_t i) const { return inner_.at(i); }

  /// All inner streams (Psi applied to every index).
  [[nodiscard]] const std::vector<ModelPtr>& unpack() const noexcept { return inner_; }

  /// The construction rule C.
  [[nodiscard]] const std::shared_ptr<const ConstructionRule>& rule() const noexcept {
    return rule_;
  }

  /// Apply a task/transmission operation Theta_tau with response-time
  /// interval [r-, r+] to the hierarchical stream: the outer stream becomes
  /// the operation's output stream and every inner stream is transformed by
  /// the rule's inner update function (section 5.2 of the paper).
  [[nodiscard]] HemPtr after_response(Time r_minus, Time r_plus) const;

  [[nodiscard]] std::string describe() const;

 private:
  ModelPtr outer_;
  std::vector<ModelPtr> inner_;
  std::shared_ptr<const ConstructionRule> rule_;
};

}  // namespace hem
