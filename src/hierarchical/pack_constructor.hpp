#pragma once

/// \file pack_constructor.hpp
/// The "pack" hierarchical stream constructor Omega_pa (paper Def. 8).
///
/// Models a communication layer that packs several signal streams into one
/// frame stream:
///
///   * The OUTER stream is the OR-combination of all *triggering* inputs
///     (a periodic send timer, if any, is simply one more triggering input):
///       delta-_out(n) = min_K max_{i in T} delta-_i(k_i)
///       delta+_out(n) = max_K min_{i in T} delta+_i(k_i + 2)
///   * A *triggering* input's inner stream is the input itself
///     (eqs. 5-6: every signal event causes an immediate frame).
///   * A *pending* input's inner stream bounds the frames that carry a NEW
///     value of the signal (eqs. 7-8): the first of n signal events may just
///     miss a frame, so
///       delta'-_i(n) = max( delta-_i(n) - delta+_out(2), delta-_out(n) )
///       delta'+_i(n) = infinity
///
/// The returned HierarchicalEventModel carries the PackRule construction
/// rule, whose inner update function implements Def. 9 (see inner_update.hpp).

#include <vector>

#include "hierarchical/hierarchical_event_model.hpp"

namespace hem {

/// How a signal is coupled to its frame (paper section 4).
enum class SignalCoupling {
  kTriggering,  ///< each signal event triggers a frame transmission
  kPending      ///< the signal waits in its register for the next frame
};

/// One input stream of the pack constructor.
struct PackInput {
  ModelPtr model;
  SignalCoupling coupling;
};

/// Inner model of a pending input (eqs. 7-8).  Public for direct testing.
class PendingSignalModel final : public EventModel {
 public:
  PendingSignalModel(ModelPtr signal, ModelPtr frame);

  [[nodiscard]] std::string describe() const override;

 protected:
  [[nodiscard]] Time delta_min_raw(Count n) const override;
  [[nodiscard]] Time delta_plus_raw(Count n) const override;

 private:
  ModelPtr signal_;
  ModelPtr frame_;
};

/// Build the hierarchical event model Omega_pa(inputs [, timer]).
///
/// \param inputs  the signal streams to pack; one inner stream is created
///                per input, in order.
/// \param timer   optional periodic send timer (periodic / mixed frames).
///                Participates in the outer OR-combination but has no inner
///                stream of its own.
/// \throws std::invalid_argument if no input (or timer) can ever trigger a
///         frame, or inputs are empty/null.
[[nodiscard]] HemPtr pack(const std::vector<PackInput>& inputs, ModelPtr timer = nullptr);

}  // namespace hem
