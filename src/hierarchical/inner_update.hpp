#pragma once

/// \file inner_update.hpp
/// Inner update function B_{Theta_tau, C_pa} (paper Def. 9) and the
/// construction rule of the pack constructor.
///
/// When the outer stream of a pack-constructed HEM passes through a
/// task/transmission operation with response-time interval [r-, r+], two
/// effects reach the inner streams:
///   1. jitter: any distance can shrink/grow by the response spread
///      (r+ - r-), exactly as for flat output streams;
///   2. serialisation: events that arrived simultaneously (up to k of them,
///      where k is the maximum number of simultaneous outer events before
///      the operation) leave separated by at least r-, so an inner event can
///      additionally be delayed by (k - 1) * r-; conversely, consecutive
///      inner events can never leave closer than r- apart.
///
///   delta'-(n) = max( delta-(n) - (r+ - r-) - (k-1)*r-,  (n-1)*r- )
///   delta'+(n) = delta+(n) + (r+ - r-) + (k-1)*r-

#include <memory>
#include <string>

#include "hierarchical/hierarchical_event_model.hpp"

namespace hem {

/// Inner stream after the outer stream passed a response-time operation
/// (Def. 9).  Public for direct testing.
class ResponseUpdatedInnerModel final : public EventModel {
 public:
  /// \param inner    inner model before the operation.
  /// \param r_minus  minimum response time of the operation, >= 0.
  /// \param r_plus   maximum response time, >= r_minus, finite.
  /// \param k        maximum number of simultaneous outer events before the
  ///                 operation, >= 1.
  ResponseUpdatedInnerModel(ModelPtr inner, Time r_minus, Time r_plus, Count k);

  [[nodiscard]] Count k() const noexcept { return k_; }

  [[nodiscard]] std::string describe() const override;

 protected:
  [[nodiscard]] Time delta_min_raw(Count n) const override;
  [[nodiscard]] Time delta_plus_raw(Count n) const override;

 private:
  ModelPtr inner_;
  Time r_minus_;
  Time r_plus_;
  Count k_;
};

/// Construction rule C_pa of pack-constructed HEMs.
class PackRule final : public ConstructionRule {
 public:
  [[nodiscard]] static std::shared_ptr<const PackRule> instance();

  [[nodiscard]] ModelPtr update_inner_after_response(const ModelPtr& inner,
                                                     const ModelPtr& outer_old, Time r_minus,
                                                     Time r_plus) const override;

  [[nodiscard]] std::string describe() const override { return "C_pa"; }
};

}  // namespace hem
