#include "hierarchical/hierarchical_event_model.hpp"

#include <sstream>
#include <stdexcept>

#include "core/output_model.hpp"
#include "verify/contracts.hpp"

namespace hem {

HierarchicalEventModel::HierarchicalEventModel(ModelPtr outer, std::vector<ModelPtr> inner,
                                               std::shared_ptr<const ConstructionRule> rule)
    : outer_(std::move(outer)), inner_(std::move(inner)), rule_(std::move(rule)) {
  if (!outer_) throw std::invalid_argument("HierarchicalEventModel: null outer model");
  if (inner_.empty())
    throw std::invalid_argument("HierarchicalEventModel: needs at least one inner stream");
  for (const auto& m : inner_)
    if (!m) throw std::invalid_argument("HierarchicalEventModel: null inner model");
  if (!rule_) throw std::invalid_argument("HierarchicalEventModel: null construction rule");
}

HemPtr HierarchicalEventModel::after_response(Time r_minus, Time r_plus) const {
  // Outer stream: ordinary flat output stream calculation Theta_tau.
  ModelPtr new_outer = std::make_shared<OutputModel>(outer_, r_minus, r_plus);
  // Inner streams: rule-specific inner update function B (Def. 7).
  std::vector<ModelPtr> new_inner;
  new_inner.reserve(inner_.size());
  for (const auto& m : inner_) {
    ModelPtr updated = rule_->update_inner_after_response(m, outer_, r_minus, r_plus);
    HEM_VERIFY_INNER_UPDATE(*m, *updated, r_minus, r_plus, "after_response (Def. 9)");
    new_inner.push_back(std::move(updated));
  }
  return std::make_shared<HierarchicalEventModel>(std::move(new_outer), std::move(new_inner),
                                                  rule_);
}

std::string HierarchicalEventModel::describe() const {
  std::ostringstream os;
  os << "HEM{outer=" << outer_->describe() << ", inner=" << inner_.size()
     << ", rule=" << rule_->describe() << "}";
  return os.str();
}

}  // namespace hem
