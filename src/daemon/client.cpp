#include "daemon/client.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#define HEM_DAEMON_POSIX 1
#else
#define HEM_DAEMON_POSIX 0
#endif

namespace hem::daemon {

#if HEM_DAEMON_POSIX

namespace {

/// connect() errors worth retrying: the daemon is starting up (no socket
/// yet), restarting (stale socket refuses), was interrupted mid-handshake,
/// or reset us off a full backlog.  Everything else is a configuration
/// problem that a retry cannot fix.
[[nodiscard]] bool transient_connect_errno(int err) noexcept {
  return err == ECONNREFUSED || err == ENOENT || err == EINTR || err == ECONNRESET ||
         err == EAGAIN;
}

/// Deterministic per-process jitter source — enough to decorrelate a fleet
/// of clients hammering one restarting daemon, no <random> needed.
[[nodiscard]] long backoff_ms(int attempt) noexcept {
  const long base = 50L << std::min(attempt, 5);  // 50, 100, 200, ... capped
  const auto now = std::chrono::steady_clock::now().time_since_epoch().count();
  const long jitter = static_cast<long>(static_cast<unsigned long>(now) % 32);
  return std::min(base, 2000L) + jitter;
}

}  // namespace

Client::Client(const std::string& socket_path, long io_timeout_ms, int connect_retries)
    : io_timeout_ms_(io_timeout_ms), reader_(-1) {
  if (socket_path.size() >= sizeof(sockaddr_un{}.sun_path))
    throw std::runtime_error("daemon socket path too long: '" + socket_path + "'");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof addr.sun_path, "%s", socket_path.c_str());
  int last_errno = 0;
  for (int attempt = 0; attempt <= std::max(0, connect_retries); ++attempt) {
    if (attempt > 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms(attempt - 1)));
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) throw std::runtime_error("cannot create client socket");
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0) {
      reader_ = LineReader(fd_);
      return;
    }
    last_errno = errno;
    ::close(fd_);
    fd_ = -1;
    if (!transient_connect_errno(last_errno)) break;
  }
  throw std::runtime_error("cannot connect to daemon at '" + socket_path +
                           "' (is hemcpad running?): " + std::strerror(last_errno));
}

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::string Client::request(const std::string& verb,
                            const std::vector<std::pair<std::string, std::string>>& kv,
                            const std::string& payload, bool has_payload) {
  if (fd_ < 0) throw std::runtime_error("daemon connection is closed");
  std::string frame = render_request_line(verb, kv);
  if (has_payload) frame += payload;
  if (write_all(fd_, frame, io_timeout_ms_) != IoStatus::kOk)
    throw std::runtime_error("writing to the daemon failed (peer gone or stalled)");
  std::string line;
  const IoStatus st = reader_.read_line(line, io_timeout_ms_);
  if (st != IoStatus::kOk)
    throw std::runtime_error(std::string("reading the daemon response failed (") +
                             to_string(st) + ")");
  return line;
}

std::string Client::submit(const std::string& config_text,
                           const std::vector<std::pair<std::string, std::string>>& kv) {
  std::vector<std::pair<std::string, std::string>> full = kv;
  full.emplace_back("bytes", std::to_string(config_text.size()));
  return request("submit", full, config_text, /*has_payload=*/true);
}

std::string Client::wait_result(std::uint64_t id, long timeout_ms) {
  // The server-side wait is bounded by timeout_ms; give the socket read a
  // little slack on top so the response frame always beats the deadline.
  const long saved = io_timeout_ms_;
  io_timeout_ms_ = timeout_ms + 2000;
  std::string out;
  try {
    out = request("result", {{"id", std::to_string(id)},
                             {"wait", "1"},
                             {"timeout_ms", std::to_string(timeout_ms)}});
  } catch (...) {
    io_timeout_ms_ = saved;
    throw;
  }
  io_timeout_ms_ = saved;
  return out;
}

std::string Client::cancel(std::uint64_t id) {
  return request("cancel", {{"id", std::to_string(id)}});
}

std::string Client::drain(bool force_stop) {
  if (force_stop) return request("drain", {{"force", "1"}});
  return request("drain");
}

#else  // !HEM_DAEMON_POSIX

Client::Client(const std::string&, long io_timeout_ms, int)
    : io_timeout_ms_(io_timeout_ms), reader_(-1) {
  throw std::runtime_error("hemcpad requires a POSIX platform");
}
Client::~Client() = default;
void Client::close() {}
std::string Client::request(const std::string&,
                            const std::vector<std::pair<std::string, std::string>>&,
                            const std::string&, bool) {
  return "";
}
std::string Client::submit(const std::string&,
                           const std::vector<std::pair<std::string, std::string>>&) {
  return "";
}
std::string Client::wait_result(std::uint64_t, long) { return ""; }
std::string Client::cancel(std::uint64_t) { return ""; }
std::string Client::drain(bool) { return ""; }

#endif

}  // namespace hem::daemon
