#include "daemon/server.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "daemon/model_cache.hpp"
#include "daemon/protocol.hpp"
#include "exec/journal.hpp"
#include "exec/worker_process.hpp"
#include "model/engine_snapshot.hpp"
#include "model/textual_config.hpp"
#include "obs/obs.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#define HEM_DAEMON_POSIX 1
#else
#define HEM_DAEMON_POSIX 0
#endif

namespace hem::daemon {

namespace {

using steady = std::chrono::steady_clock;

obs::Counter& g_submitted = obs::registry().counter("daemon.submitted");
obs::Counter& g_rej_overloaded = obs::registry().counter("daemon.rejected_overloaded");
obs::Counter& g_rej_quota = obs::registry().counter("daemon.rejected_quota");
obs::Counter& g_rej_too_large = obs::registry().counter("daemon.rejected_too_large");
obs::Counter& g_rej_draining = obs::registry().counter("daemon.rejected_draining");
obs::Counter& g_jobs_done = obs::registry().counter("daemon.jobs_done");
obs::Counter& g_jobs_failed = obs::registry().counter("daemon.jobs_failed");
obs::Counter& g_jobs_cancelled = obs::registry().counter("daemon.jobs_cancelled");
obs::Counter& g_jobs_abandoned = obs::registry().counter("daemon.jobs_abandoned");
obs::Counter& g_disconnect_cancels = obs::registry().counter("daemon.disconnect_cancels");
obs::Counter& g_journal_hits = obs::registry().counter("daemon.journal_hits");
obs::Counter& g_jobs_crashed = obs::registry().counter("daemon.jobs_crashed");
obs::Counter& g_jobs_poisoned = obs::registry().counter("daemon.jobs_poisoned");
obs::Counter& g_poisoned_rejects = obs::registry().counter("daemon.poisoned_rejects");
obs::Histogram& g_job_ms = obs::registry().histogram("daemon.job_duration_ms");

/// A fingerprint is quarantined once this many workers died running it.
constexpr int kPoisonThreshold = 2;

[[nodiscard]] std::string error_json(const char* code, const std::string& message) {
  return JsonWriter{}.add("ok", false).add("error", code).add("message", message).str();
}

[[nodiscard]] bool terminal(JobPhase p) noexcept {
  return p != JobPhase::kQueued && p != JobPhase::kRunning;
}

}  // namespace

const char* to_string(JobPhase p) noexcept {
  switch (p) {
    case JobPhase::kQueued: return "queued";
    case JobPhase::kRunning: return "running";
    case JobPhase::kDone: return "done";
    case JobPhase::kFailed: return "failed";
    case JobPhase::kCancelled: return "cancelled";
    case JobPhase::kAbandoned: return "abandoned";
    case JobPhase::kCrashed: return "crashed";
    case JobPhase::kPoisoned: return "poisoned";
  }
  return "?";
}

/// One submitted job.  Immutable identity fields are set at admission;
/// everything below the marker is guarded by Impl::mx.
struct Server::JobRecord {
  std::uint64_t id = 0;
  std::string label;
  std::string client;
  std::uint64_t fingerprint = 0;
  std::string config_text;  ///< moved into the worker context at dispatch
  long budget_ms = 0;
  bool detach = false;       ///< survive the submitting connection
  std::uint64_t conn_id = 0;

  // Guarded by Impl::mx.
  JobPhase phase = JobPhase::kQueued;
  bool cached = false;  ///< served from the journal, not run
  exec::CancelReason cancel_reason = exec::CancelReason::kNone;
  long duration_ms = 0;
  bool converged = false;
  bool degraded = false;
  long warm_seeded = 0;
  std::string message;
  std::vector<std::string> rows;
  exec::JobPool::Handle handle;  ///< set while running
};

namespace {

/// JobPool context payload.  The worker writes `outcome` and reads the
/// immutable inputs; it never touches the record (whose mutable state
/// belongs to the server mutex).  The scheduler reads `outcome` only for
/// kFinished slots (the join is the synchronisation point); an abandoned
/// worker's outcome is never read.
struct DaemonCtx {
  std::shared_ptr<Server::JobRecord> rec;  ///< scheduler-side use only
  std::string config_text;
  std::string label;
  bool isolated = false;  ///< ran in a forked worker; `worker` is meaningful
  exec::WorkerReport worker;
  exec::AttemptOutcome outcome;
};

/// The analysis path of one submission: parse, warm up from the cache,
/// run behind the shared exception firewall.  Runs on a pool worker; only
/// touches reference-counted state so an abandoned (detached) worker can
/// never reach freed memory.
///
/// With `session` non-null the engine attempt runs in a forked worker
/// child instead of this thread.  Parsing and the warm-cache lookup still
/// happen HERE, pre-fork: the cache mutex may be held by a sibling worker
/// at any instant, and a child forked at that instant would inherit it
/// locked forever.  The parsed system and the (immutable, lock-free-read)
/// warm snapshot cross into the child via fork's memory image; only the
/// serialisable outcome comes back.  Isolated runs cannot return snapshots
/// (live DAG pointers do not survive the pipe), so keep_report and
/// make_snapshot are left off and the warm cache simply is not fed.
[[nodiscard]] exec::AttemptOutcome run_submission(DaemonCtx& ctx, const ServerOptions& opt,
                                                  const std::shared_ptr<WarmModelCache>& cache,
                                                  std::uint64_t fingerprint, long budget_ms,
                                                  exec::WorkerProcess* session,
                                                  const exec::CancelToken* token) {
  exec::AttemptOutcome out;
  cpa::ParsedSystem parsed;
  std::shared_ptr<const cpa::EngineSnapshot> warm;
  try {
    std::istringstream in(ctx.config_text);
    parsed = cpa::parse_system_config(in);
    warm = cache->find_exact(fingerprint);
    if (warm == nullptr) warm = cache->best_base(parsed.system);
    if (warm != nullptr) cpa::intern_external_models(parsed.system, *warm);
  } catch (const std::exception& e) {
    out.message = e.what();  // parse errors: non-transient failure
    return out;
  }
  exec::AttemptOptions aopt;
  aopt.strict = opt.strict;
  aopt.engine_jobs = opt.engine_jobs;
  aopt.max_iterations = opt.max_iterations;
  aopt.warm = warm.get();
  if (session == nullptr) {
    aopt.keep_report = true;    // stats (warm_seeded) for the result frame
    aopt.make_snapshot = true;  // feed the warm cache on convergence
    return exec::run_analysis_attempt(parsed, ctx.label, aopt, token);
  }
  const exec::WorkerLimits limits =
      exec::limits_from_budget(budget_ms, opt.worker_memory_mb, opt.worker_stack_mb);
  ctx.worker = session->run(
      [&parsed, &ctx, &aopt] { return exec::run_analysis_attempt(parsed, ctx.label, aopt, nullptr); },
      limits, token);
  return ctx.worker.outcome;
}

}  // namespace

#if HEM_DAEMON_POSIX

struct Server::Impl : std::enable_shared_from_this<Server::Impl> {
  explicit Impl(ServerOptions o) : opt(std::move(o)) {}

  ServerOptions opt;

  int listen_fd = -1;
  std::atomic<bool> stopping{false};  ///< teardown began: socket loops must exit

  // ---- run state, guarded by mx -------------------------------------------
  mutable std::mutex mx;
  std::condition_variable cv;  ///< result waiters + shutdown observers
  bool draining = false;
  bool force = false;
  bool run_done = false;  ///< scheduler loop exited
  int exit_code = 0;
  std::uint64_t next_job_id = 1;
  std::map<std::string, std::deque<std::shared_ptr<JobRecord>>> queues;
  std::vector<std::string> rr_order;  ///< round-robin client cursor order
  std::size_t rr_cursor = 0;
  std::size_t total_queued = 0;
  int in_flight = 0;
  std::map<std::string, int> client_active;  ///< queued + running per client
  std::map<std::uint64_t, std::shared_ptr<JobRecord>> jobs;
  std::deque<std::uint64_t> retired;  ///< terminal ids, oldest first (retention)
  /// Crash ledger: worker deaths per config fingerprint.  Seeded from the
  /// journal at startup so quarantine survives daemon restarts.
  std::map<std::uint64_t, int> crash_counts;

  // stats
  long submitted = 0, done = 0, failed = 0, cancelled = 0, abandoned = 0;
  long crashed = 0, poisoned = 0, poisoned_rejects = 0;
  long rej_overloaded = 0, rej_quota = 0, rej_too_large = 0, rej_draining = 0;
  long rej_protocol = 0, rej_busy = 0;
  long disconnect_cancels = 0, journal_hits = 0;
  steady::time_point started_at{};

  // ---- components ----------------------------------------------------------
  std::unique_ptr<exec::JobPool> pool;
  std::shared_ptr<WarmModelCache> cache;  ///< shared with pool workers
  std::unique_ptr<exec::Journal> journal;  ///< guarded by jmx
  std::mutex jmx;

  // ---- threads -------------------------------------------------------------
  std::thread scheduler;
  std::thread acceptor;
  struct ConnState {
    int fd = -1;
    std::uint64_t id = 0;
    std::thread th;
    std::atomic<bool> finished{false};
  };
  std::mutex cmx;
  std::map<std::uint64_t, std::unique_ptr<ConnState>> conns;  ///< guarded by cmx
  std::uint64_t next_conn_id = 1;

  // =========================================================================

  void bind_socket() {
    if (opt.socket_path.empty() || opt.socket_path.size() >= sizeof(sockaddr_un{}.sun_path))
      throw std::runtime_error("daemon socket path missing or too long: '" + opt.socket_path +
                               "'");
    listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd < 0) throw std::runtime_error("cannot create daemon socket");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof addr.sun_path, "%s", opt.socket_path.c_str());
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      // A stale socket file from a crashed daemon is the common case; probe
      // it and only steal the address when nothing answers.
      const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
      const bool live =
          probe >= 0 && ::connect(probe, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0;
      if (probe >= 0) ::close(probe);
      if (live) {
        ::close(listen_fd);
        listen_fd = -1;
        throw std::runtime_error("daemon already running on '" + opt.socket_path + "'");
      }
      ::unlink(opt.socket_path.c_str());
      if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
        ::close(listen_fd);
        listen_fd = -1;
        throw std::runtime_error("cannot bind daemon socket '" + opt.socket_path + "'");
      }
    }
    if (::listen(listen_fd, 64) != 0) {
      ::close(listen_fd);
      listen_fd = -1;
      ::unlink(opt.socket_path.c_str());
      throw std::runtime_error("cannot listen on daemon socket '" + opt.socket_path + "'");
    }
  }

  void load_journal() {
    if (opt.journal_path.empty()) return;
    journal = std::make_unique<exec::Journal>(opt.journal_path);
    try {
      (void)journal->load();  // torn tails are recovered inside load()
    } catch (const std::exception&) {
      // Availability over history: a wholesale-corrupt journal (foreign
      // header) is set aside (not deleted — it may be inspected) and the
      // daemon starts fresh.
      std::rename(opt.journal_path.c_str(), (opt.journal_path + ".corrupt").c_str());
      journal = std::make_unique<exec::Journal>(opt.journal_path);
    }
    // Rebuild the crash ledger so poisoned configs stay quarantined and a
    // config with one recorded crash keeps its single remaining strike
    // across restarts.
    for (const exec::JournalEntry& e : journal->entries()) {
      if (e.status == "crashed")
        crash_counts[e.fingerprint] = std::max(crash_counts[e.fingerprint], 1);
      else if (e.status == "poisoned")
        crash_counts[e.fingerprint] = std::max(crash_counts[e.fingerprint], kPoisonThreshold);
    }
  }

  // ---- scheduler -----------------------------------------------------------

  void scheduler_loop() {
    while (true) {
      for (const exec::JobPool::Handle& h : pool->wait_terminal(std::chrono::milliseconds(25)))
        finish(h);
      std::unique_lock<std::mutex> lk(mx);
      if (force) {
        fail_queued_for_shutdown_locked();
        lk.unlock();
        pool->cancel_all(exec::CancelReason::kShutdown, /*escalate=*/true);
        drain_in_flight();
        lk.lock();
        exit_code = 6;
        break;
      }
      if (draining && total_queued == 0 && in_flight == 0) {
        exit_code = 0;
        break;
      }
      while (!force && pool->available() && total_queued > 0) dispatch_next_locked();
    }
    {
      std::lock_guard<std::mutex> lk(mx);
      run_done = true;
    }
    cv.notify_all();
  }

  /// Force path: every queued job becomes kCancelled(kShutdown).
  void fail_queued_for_shutdown_locked() {
    for (auto& [client, q] : queues) {
      for (const std::shared_ptr<JobRecord>& rec : q) {
        rec->phase = JobPhase::kCancelled;
        rec->cancel_reason = exec::CancelReason::kShutdown;
        rec->message = "cancelled by forced shutdown";
        ++cancelled;
        --client_active[client];
        obs::bump(g_jobs_cancelled);
        journal_terminal(*rec);
        retire_locked(rec->id);
      }
    }
    queues.clear();
    total_queued = 0;
    cv.notify_all();
  }

  /// Reap until nothing is in flight (force path; abandonment bounds this
  /// by grace_ms per stubborn job).
  void drain_in_flight() {
    while (true) {
      for (const exec::JobPool::Handle& h : pool->wait_terminal(std::chrono::milliseconds(50)))
        finish(h);
      std::lock_guard<std::mutex> lk(mx);
      if (in_flight == 0) return;
    }
  }

  /// Round-robin pick across client queues; dispatch on the pool.
  void dispatch_next_locked() {
    std::shared_ptr<JobRecord> rec;
    for (std::size_t step = 0; step < rr_order.size(); ++step) {
      const std::string& client = rr_order[rr_cursor];
      rr_cursor = (rr_cursor + 1) % rr_order.size();
      auto it = queues.find(client);
      if (it != queues.end() && !it->second.empty()) {
        rec = it->second.front();
        it->second.pop_front();
        if (it->second.empty()) queues.erase(it);
        break;
      }
    }
    if (rec == nullptr) return;  // stale total_queued cannot happen; defensive
    --total_queued;
    rec->phase = JobPhase::kRunning;
    ++in_flight;
    auto ctx = std::make_shared<DaemonCtx>();
    ctx->rec = rec;
    ctx->config_text = std::move(rec->config_text);
    ctx->label = rec->label;
    const ServerOptions o = opt;
    const std::shared_ptr<WarmModelCache> c = cache;
    const std::uint64_t fp = rec->fingerprint;
    const long budget = rec->budget_ms;
    if (opt.isolate && exec::WorkerProcess::supported()) {
      // Sandboxed dispatch: the pool thread parses and warms pre-fork, the
      // engine runs in a forked child, and the watchdog's escalation is a
      // true SIGKILL of that child instead of a thread detach.
      auto session = std::make_shared<exec::WorkerProcess>();
      ctx->isolated = true;
      rec->handle = pool->start(
          rec->label, budget, ctx,
          [ctx, o, c, fp, budget, session](const exec::CancelToken& token) {
            ctx->outcome = run_submission(*ctx, o, c, fp, budget, session.get(), &token);
          },
          [session] { session->kill(); });
    } else {
      rec->handle = pool->start(rec->label, budget, ctx,
                                [ctx, o, c, fp, budget](const exec::CancelToken& token) {
                                  ctx->outcome =
                                      run_submission(*ctx, o, c, fp, budget, nullptr, &token);
                                });
    }
  }

  void finish(const exec::JobPool::Handle& slot) {
    const auto ctx = std::static_pointer_cast<DaemonCtx>(slot->context);
    const std::shared_ptr<JobRecord>& rec = ctx->rec;
    std::lock_guard<std::mutex> lk(mx);
    --in_flight;
    --client_active[rec->client];
    rec->handle.reset();
    if (slot->phase == exec::JobPool::Slot::kAbandoned) {
      rec->phase = JobPhase::kAbandoned;
      rec->duration_ms = static_cast<long>(
          std::chrono::duration_cast<std::chrono::milliseconds>(steady::now() - slot->started)
              .count());
      rec->message = "watchdog abandoned the job (cancel not honoured within grace period)";
      ++abandoned;
      obs::bump(g_jobs_abandoned);
    } else {
      exec::AttemptOutcome& out = ctx->outcome;
      rec->duration_ms = out.duration_ms;
      rec->converged = out.converged;
      rec->degraded = out.degraded;
      rec->message = out.message;
      rec->warm_seeded =
          out.report != nullptr ? out.report->stats.warm_seeded : out.warm_seeded;
      obs::observe(g_job_ms, out.duration_ms);
      if (ctx->isolated && (ctx->worker.kind == exec::WorkerExit::kCrashed ||
                            ctx->worker.kind == exec::WorkerExit::kResourceExhausted)) {
        // The worker process died (signal, OOM, rlimit); the daemon itself
        // is untouched.  First crash is reported as-is — the client may
        // resubmit — the second quarantines the config: the ledger spans
        // submissions and daemon restarts (rebuilt from the journal).
        const int crashes = ++crash_counts[rec->fingerprint];
        if (crashes >= kPoisonThreshold) {
          rec->phase = JobPhase::kPoisoned;
          rec->message = "poisoned: worker crashed " + std::to_string(crashes) +
                         " times (last: " + ctx->worker.detail + ")";
          ++poisoned;
          obs::bump(g_jobs_poisoned);
        } else {
          rec->phase = JobPhase::kCrashed;
          rec->message = ctx->worker.detail;
          ++crashed;
          obs::bump(g_jobs_crashed);
        }
      } else if (out.cancelled) {
        rec->phase = JobPhase::kCancelled;
        rec->cancel_reason = out.cancel_reason;
        ++cancelled;
        obs::bump(g_jobs_cancelled);
      } else if (out.ok) {
        rec->phase = JobPhase::kDone;
        rec->rows = std::move(out.rows);
        ++done;
        obs::bump(g_jobs_done);
        // Isolated runs carry no snapshot (the DAG cannot cross the worker
        // pipe); only in-process runs feed the warm cache.
        if (out.snapshot != nullptr) cache->insert(rec->fingerprint, out.snapshot);
      } else {
        rec->phase = JobPhase::kFailed;
        ++failed;
        obs::bump(g_jobs_failed);
      }
    }
    journal_terminal(*rec);
    retire_locked(rec->id);
    cv.notify_all();
  }

  /// Journal a terminal record (daemon jobs are journaled under their
  /// label so the file stays human-readable; the idempotency key is the
  /// fingerprint).
  void journal_terminal(const JobRecord& rec) {
    if (journal == nullptr || rec.cached) return;
    exec::JournalEntry e;
    e.config_path = rec.label;
    e.fingerprint = rec.fingerprint;
    switch (rec.phase) {
      case JobPhase::kDone: e.status = "done"; break;
      case JobPhase::kFailed: e.status = "failed"; break;
      case JobPhase::kCancelled: e.status = "cancelled"; break;
      case JobPhase::kAbandoned: e.status = "abandoned"; break;
      case JobPhase::kCrashed: e.status = "crashed"; break;
      case JobPhase::kPoisoned: e.status = "poisoned"; break;
      default: return;
    }
    e.attempts = 1;
    e.duration_ms = rec.duration_ms;
    e.degraded = rec.degraded;
    e.rows = rec.rows;
    std::lock_guard<std::mutex> jlock(jmx);
    try {
      journal->add(std::move(e));
    } catch (const std::exception&) {
      // Journal write failure must not take the daemon down; the job's
      // in-memory result is still served.  Disable further writes.
      journal.reset();
    }
  }

  /// Retention: keep at most result_retention terminal records.
  void retire_locked(std::uint64_t id) {
    retired.push_back(id);
    while (retired.size() > opt.result_retention) {
      jobs.erase(retired.front());
      retired.pop_front();
    }
  }

  // ---- connections ---------------------------------------------------------

  void accept_loop() {
    while (!stopping.load(std::memory_order_acquire)) {
      struct pollfd pfd{};
      pfd.fd = listen_fd;
      pfd.events = POLLIN;
      const int ready = ::poll(&pfd, 1, 250);
      reap_connections(/*all=*/false);
      if (ready <= 0) continue;
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) continue;
      bool admitted = false;
      {
        std::lock_guard<std::mutex> lk(cmx);
        if (conns.size() < static_cast<std::size_t>(opt.max_connections)) {
          auto conn = std::make_unique<ConnState>();
          conn->fd = fd;
          conn->id = next_conn_id++;
          ConnState* cp = conn.get();
          auto self = shared_from_this();
          conn->th = std::thread([self, cp] {
            self->connection_loop(*cp);
            cp->finished.store(true, std::memory_order_release);
          });
          conns.emplace(cp->id, std::move(conn));
          admitted = true;
        }
      }
      if (!admitted) {
        // Explicit turn-away outside the lock (the write may block up to
        // io_timeout_ms and must not stall accepted connections).
        {
          std::lock_guard<std::mutex> slk(mx);
          ++rej_busy;
        }
        (void)write_all(fd, error_json("busy", "connection limit reached") + "\n",
                        opt.io_timeout_ms);
        ::close(fd);
      }
    }
    reap_connections(/*all=*/false);
  }

  /// Join finished connection threads; with `all`, join every one (their
  /// sockets must already be shut down so the loops exit).
  void reap_connections(bool all) {
    std::vector<std::unique_ptr<ConnState>> to_join;
    {
      std::lock_guard<std::mutex> lk(cmx);
      for (auto it = conns.begin(); it != conns.end();) {
        if (all || it->second->finished.load(std::memory_order_acquire)) {
          to_join.push_back(std::move(it->second));
          it = conns.erase(it);
        } else {
          ++it;
        }
      }
    }
    for (auto& c : to_join)
      if (c->th.joinable()) c->th.join();
  }

  void connection_loop(ConnState& conn) {
    LineReader reader(conn.fd);
    bool alive = true;
    while (alive && !stopping.load(std::memory_order_acquire)) {
      std::string line;
      const IoStatus st = reader.read_line(line, opt.idle_timeout_ms);
      if (st == IoStatus::kOversize) {
        (void)write_all(conn.fd, error_json("protocol", "request line too long") + "\n",
                        opt.io_timeout_ms);
        break;
      }
      if (st != IoStatus::kOk) break;  // closed, idle/half-open timeout, error
      Request req;
      std::string perr;
      if (!parse_request_line(line, req, perr)) {
        {
          std::lock_guard<std::mutex> lk(mx);
          ++rej_protocol;
        }
        (void)write_all(conn.fd, error_json("protocol", perr) + "\n", opt.io_timeout_ms);
        break;  // cannot trust framing any more
      }
      const std::string response = handle_request(conn, reader, req, alive);
      if (write_all(conn.fd, response + "\n", opt.io_timeout_ms) != IoStatus::kOk) break;
    }
    on_disconnect(conn.id);
    {
      // fd write is cmx-guarded: teardown() walks conns to shutdown() live
      // sockets and must not race the close.
      std::lock_guard<std::mutex> lk(cmx);
      ::shutdown(conn.fd, SHUT_RDWR);
      ::close(conn.fd);
      conn.fd = -1;
    }
  }

  /// Cancel this connection's orphaned jobs (queued or running, not
  /// detached) with CancelReason::kDisconnect.
  void on_disconnect(std::uint64_t conn_id) {
    std::lock_guard<std::mutex> lk(mx);
    // Collect first: retiring a queued job may evict the oldest retained
    // record from `jobs`, which would invalidate a live iterator.
    std::vector<std::shared_ptr<JobRecord>> orphans;
    for (const auto& [id, rec] : jobs)
      if (rec->conn_id == conn_id && !rec->detach &&
          (rec->phase == JobPhase::kQueued || rec->phase == JobPhase::kRunning))
        orphans.push_back(rec);
    for (const std::shared_ptr<JobRecord>& rec : orphans) {
      if (rec->phase == JobPhase::kQueued) {
        remove_from_queue_locked(rec);
        rec->phase = JobPhase::kCancelled;
        rec->cancel_reason = exec::CancelReason::kDisconnect;
        rec->message = "client disconnected";
        ++cancelled;
        ++disconnect_cancels;
        --client_active[rec->client];
        obs::bump(g_jobs_cancelled);
        obs::bump(g_disconnect_cancels);
        journal_terminal(*rec);
        retire_locked(rec->id);
      } else if (rec->handle != nullptr) {
        ++disconnect_cancels;
        obs::bump(g_disconnect_cancels);
        pool->cancel(rec->handle, exec::CancelReason::kDisconnect, /*escalate=*/true);
      }
    }
    cv.notify_all();
  }

  void remove_from_queue_locked(const std::shared_ptr<JobRecord>& rec) {
    auto it = queues.find(rec->client);
    if (it == queues.end()) return;
    auto& q = it->second;
    q.erase(std::remove(q.begin(), q.end(), rec), q.end());
    if (q.empty()) queues.erase(it);
    --total_queued;
  }

  // ---- request handling ----------------------------------------------------

  [[nodiscard]] std::string handle_request(ConnState& conn, LineReader& reader,
                                           const Request& req, bool& alive) {
    if (req.verb == "ping") {
      return JsonWriter{}.add("ok", true).add("version", kProtocolVersion).str();
    }
    if (req.verb == "submit") return handle_submit(conn, reader, req, alive);
    if (req.verb == "status") return handle_status(req);
    if (req.verb == "result") return handle_result(req);
    if (req.verb == "cancel") return handle_cancel(req);
    if (req.verb == "stats") return handle_stats();
    if (req.verb == "drain") {
      if (req.get_long("force", 0) == 1)
        request_force();
      else
        request_drain_impl();
      return JsonWriter{}.add("ok", true).add("draining", true).str();
    }
    std::lock_guard<std::mutex> lk(mx);
    ++rej_protocol;
    return error_json("protocol", "unknown verb '" + req.verb + "'");
  }

  [[nodiscard]] std::string handle_submit(ConnState& conn, LineReader& reader,
                                          const Request& req, bool& alive) {
    const long bytes = req.get_long("bytes", -1);
    if (bytes < 0) {
      alive = false;  // framing unknown without a byte count
      return error_json("protocol", "submit requires bytes=<n>");
    }
    if (static_cast<std::size_t>(bytes) > opt.max_frame_bytes) {
      // The payload is not read: close after responding so an oversized
      // flood cannot make the daemon buffer it.
      {
        std::lock_guard<std::mutex> lk(mx);
        ++rej_too_large;
      }
      obs::bump(g_rej_too_large);
      alive = false;
      return error_json("too_large", "config payload of " + std::to_string(bytes) +
                                         " bytes exceeds the " +
                                         std::to_string(opt.max_frame_bytes) + " byte limit");
    }
    std::string body;
    if (reader.read_exact(body, static_cast<std::size_t>(bytes), opt.io_timeout_ms) !=
        IoStatus::kOk) {
      alive = false;
      return error_json("protocol", "config payload truncated");
    }
    const long budget_req = req.get_long("budget_ms", opt.default_budget_ms);
    const long detach_req = req.get_long("detach", 0);
    if (budget_req < 0 || detach_req < 0) return error_json("protocol", "malformed numeric value");
    const long budget = std::min(budget_req == 0 ? opt.default_budget_ms : budget_req,
                                 opt.max_budget_ms);
    const std::uint64_t fp = exec::fingerprint_bytes(body.data(), body.size());
    std::string client = req.get("client");
    if (client.empty()) client = "conn" + std::to_string(conn.id);
    std::string label = req.get("label");
    if (label.empty()) label = "submit:" + exec::fingerprint_hex(fp);

    std::lock_guard<std::mutex> lk(mx);
    if (draining || force) {
      ++rej_draining;
      obs::bump(g_rej_draining);
      return error_json("draining", "daemon is draining, not accepting work");
    }
    // Quarantine: a config whose workers already crashed twice is refused
    // without running — submitting the same bytes again cannot end well.
    if (const auto cit = crash_counts.find(fp);
        cit != crash_counts.end() && cit->second >= kPoisonThreshold) {
      auto rec = std::make_shared<JobRecord>();
      rec->id = next_job_id++;
      rec->label = label;
      rec->client = client;
      rec->fingerprint = fp;
      rec->conn_id = conn.id;
      rec->detach = detach_req == 1;
      rec->phase = JobPhase::kPoisoned;
      rec->cached = true;
      rec->message = "poisoned: this config crashed its worker " +
                     std::to_string(cit->second) + " times; refusing to re-run";
      jobs.emplace(rec->id, rec);
      retire_locked(rec->id);
      ++poisoned_rejects;
      obs::bump(g_poisoned_rejects);
      return JsonWriter{}
          .add("ok", true)
          .add("id", static_cast<long>(rec->id))
          .add("fingerprint", exec::fingerprint_hex(fp))
          .add("state", "poisoned")
          .add("cached", true)
          .str();
    }
    // Idempotent resubmission: a journaled completed run of the identical
    // bytes is served from the journal without re-running.
    if (journal != nullptr) {
      const exec::JournalEntry* e = nullptr;
      {
        std::lock_guard<std::mutex> jlock(jmx);
        e = journal->find(fp);
      }
      if (e != nullptr && e->completed()) {
        auto rec = std::make_shared<JobRecord>();
        rec->id = next_job_id++;
        rec->label = label;
        rec->client = client;
        rec->fingerprint = fp;
        rec->conn_id = conn.id;
        rec->detach = detach_req == 1;
        rec->phase = JobPhase::kDone;
        rec->cached = true;
        rec->converged = true;
        rec->degraded = e->degraded;
        rec->duration_ms = e->duration_ms;
        rec->rows = e->rows;
        jobs.emplace(rec->id, rec);
        retire_locked(rec->id);
        ++journal_hits;
        obs::bump(g_journal_hits);
        return JsonWriter{}
            .add("ok", true)
            .add("id", static_cast<long>(rec->id))
            .add("fingerprint", exec::fingerprint_hex(fp))
            .add("state", "done")
            .add("cached", true)
            .str();
      }
    }
    if (total_queued >= static_cast<std::size_t>(opt.queue_max)) {
      ++rej_overloaded;
      obs::bump(g_rej_overloaded);
      return error_json("overloaded",
                        "queue full (" + std::to_string(opt.queue_max) + " jobs)");
    }
    if (client_active[client] >= opt.client_quota) {
      ++rej_quota;
      obs::bump(g_rej_quota);
      return error_json("quota", "client '" + client + "' already has " +
                                     std::to_string(client_active[client]) +
                                     " jobs queued or running");
    }
    auto rec = std::make_shared<JobRecord>();
    rec->id = next_job_id++;
    rec->label = std::move(label);
    rec->client = client;
    rec->fingerprint = fp;
    rec->config_text = std::move(body);
    rec->budget_ms = budget;
    rec->detach = detach_req == 1;
    rec->conn_id = conn.id;
    jobs.emplace(rec->id, rec);
    if (std::find(rr_order.begin(), rr_order.end(), client) == rr_order.end())
      rr_order.push_back(client);
    queues[client].push_back(rec);
    ++total_queued;
    ++client_active[client];
    ++submitted;
    obs::bump(g_submitted);
    return JsonWriter{}
        .add("ok", true)
        .add("id", static_cast<long>(rec->id))
        .add("fingerprint", exec::fingerprint_hex(fp))
        .add("state", "queued")
        .add("cached", false)
        .add("queue_depth", static_cast<long>(total_queued))
        .str();
  }

  [[nodiscard]] std::string handle_status(const Request& req) {
    const long id = req.get_long("id", -1);
    if (id < 0) return error_json("protocol", "status requires id=<n>");
    std::lock_guard<std::mutex> lk(mx);
    const auto it = jobs.find(static_cast<std::uint64_t>(id));
    if (it == jobs.end())
      return error_json("unknown_id", "no job with id " + std::to_string(id));
    const JobRecord& rec = *it->second;
    return JsonWriter{}
        .add("ok", true)
        .add("id", id)
        .add("state", to_string(rec.phase))
        .add("cached", rec.cached)
        .add("queue_depth", static_cast<long>(total_queued))
        .str();
  }

  [[nodiscard]] std::string handle_result(const Request& req) {
    const long id = req.get_long("id", -1);
    if (id < 0) return error_json("protocol", "result requires id=<n>");
    const bool block = req.get_long("wait", 0) == 1;
    const long timeout_ms = std::clamp(req.get_long("timeout_ms", 60'000), 0L, 600'000L);
    std::unique_lock<std::mutex> lk(mx);
    const auto it = jobs.find(static_cast<std::uint64_t>(id));
    if (it == jobs.end())
      return error_json("unknown_id", "no job with id " + std::to_string(id));
    const std::shared_ptr<JobRecord> rec = it->second;
    if (block) {
      cv.wait_for(lk, std::chrono::milliseconds(timeout_ms), [&] {
        return terminal(rec->phase) || stopping.load(std::memory_order_acquire);
      });
    }
    if (!terminal(rec->phase)) {
      return JsonWriter{}
          .add("ok", true)
          .add("id", id)
          .add("state", to_string(rec->phase))
          .str();
    }
    JsonWriter w;
    w.add("ok", true)
        .add("id", id)
        .add("state", to_string(rec->phase))
        .add("cached", rec->cached)
        .add("converged", rec->converged)
        .add("degraded", rec->degraded)
        .add("duration_ms", rec->duration_ms)
        .add("warm_seeded", rec->warm_seeded);
    if (rec->phase == JobPhase::kCancelled)
      w.add("cancel_reason", exec::to_string(rec->cancel_reason));
    if (!rec->message.empty()) w.add("message", rec->message);
    w.add_strings("rows", rec->rows);
    return w.str();
  }

  [[nodiscard]] std::string handle_cancel(const Request& req) {
    const long id = req.get_long("id", -1);
    if (id < 0) return error_json("protocol", "cancel requires id=<n>");
    std::lock_guard<std::mutex> lk(mx);
    const auto it = jobs.find(static_cast<std::uint64_t>(id));
    if (it == jobs.end())
      return error_json("unknown_id", "no job with id " + std::to_string(id));
    const std::shared_ptr<JobRecord>& rec = it->second;
    if (rec->phase == JobPhase::kQueued) {
      remove_from_queue_locked(rec);
      rec->phase = JobPhase::kCancelled;
      rec->cancel_reason = exec::CancelReason::kUser;
      rec->message = "cancelled by client";
      ++cancelled;
      --client_active[rec->client];
      obs::bump(g_jobs_cancelled);
      journal_terminal(*rec);
      retire_locked(rec->id);
      cv.notify_all();
    } else if (rec->phase == JobPhase::kRunning && rec->handle != nullptr) {
      pool->cancel(rec->handle, exec::CancelReason::kUser, /*escalate=*/true);
    }
    // Terminal phases: cancel is idempotent, report the state as-is.
    return JsonWriter{}
        .add("ok", true)
        .add("id", id)
        .add("state", to_string(rec->phase))
        .str();
  }

  [[nodiscard]] std::string handle_stats() {
    std::lock_guard<std::mutex> lk(mx);
    const long uptime = static_cast<long>(
        std::chrono::duration_cast<std::chrono::milliseconds>(steady::now() - started_at)
            .count());
    return JsonWriter{}
        .add("ok", true)
        .add("version", kProtocolVersion)
        .add("uptime_ms", uptime)
        .add("draining", draining)
        .add("queue_depth", static_cast<long>(total_queued))
        .add("running", static_cast<long>(in_flight))
        .add("pool_width", opt.pool_width)
        .add("submitted", submitted)
        .add("done", done)
        .add("failed", failed)
        .add("cancelled", cancelled)
        .add("abandoned", abandoned)
        .add("crashed", crashed)
        .add("poisoned", poisoned)
        .add("poisoned_rejects", poisoned_rejects)
        .add("isolate", opt.isolate && exec::WorkerProcess::supported())
        .add("watchdog_cancels", pool->watchdog_cancels())
        .add("watchdog_kills", pool->watchdog_kills())
        .add("disconnect_cancels", disconnect_cancels)
        .add("journal_hits", journal_hits)
        .add("rejected_overloaded", rej_overloaded)
        .add("rejected_quota", rej_quota)
        .add("rejected_too_large", rej_too_large)
        .add("rejected_draining", rej_draining)
        .add("rejected_protocol", rej_protocol)
        .add("rejected_busy", rej_busy)
        .add("cache_entries", static_cast<long>(cache->size()))
        .add("cache_exact_hits", cache->exact_hits())
        .add("cache_base_hits", cache->base_hits())
        .add("cache_misses", cache->misses())
        .add("cache_evictions", cache->evictions())
        .add("cache_bytes", static_cast<long>(cache->bytes()))
        .str();
  }

  // ---- lifecycle -----------------------------------------------------------

  void request_drain_impl() {
    std::lock_guard<std::mutex> lk(mx);
    draining = true;
    cv.notify_all();
  }

  void request_force() {
    std::lock_guard<std::mutex> lk(mx);
    draining = true;
    force = true;
    cv.notify_all();
  }

  /// Join everything after the scheduler loop has exited.
  void teardown() {
    stopping.store(true, std::memory_order_release);
    cv.notify_all();
    if (acceptor.joinable()) acceptor.join();
    {
      // Wake blocked connection reads so their loops observe `stopping`.
      std::lock_guard<std::mutex> lk(cmx);
      for (auto& [id, conn] : conns)
        if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    }
    reap_connections(/*all=*/true);
    pool.reset();  // empty by now; destructor is a no-op drain
    if (listen_fd >= 0) {
      ::close(listen_fd);
      listen_fd = -1;
    }
    ::unlink(opt.socket_path.c_str());
  }
};

Server::Server(ServerOptions options)
    : impl_(std::make_shared<Impl>(options)), options_(std::move(options)) {}

Server::~Server() {
  if (impl_->scheduler.joinable()) {
    impl_->request_force();
    (void)wait();
  }
}

void Server::start() {
  Impl& d = *impl_;
  if (d.scheduler.joinable()) throw std::logic_error("Server::start called twice");
  d.bind_socket();
  try {
    d.load_journal();
    d.cache = std::make_shared<WarmModelCache>(d.opt.cache_capacity, d.opt.cache_bytes);
    d.pool = std::make_unique<exec::JobPool>(std::max(1, d.opt.pool_width), d.opt.grace_ms);
    d.started_at = steady::now();
    auto self = impl_;
    d.scheduler = std::thread([self] { self->scheduler_loop(); });
    d.acceptor = std::thread([self] { self->accept_loop(); });
  } catch (...) {
    if (d.listen_fd >= 0) {
      ::close(d.listen_fd);
      d.listen_fd = -1;
      ::unlink(d.opt.socket_path.c_str());
    }
    throw;
  }
}

void Server::request_drain() { impl_->request_drain_impl(); }

void Server::request_force_stop() { impl_->request_force(); }

int Server::wait() {
  Impl& d = *impl_;
  if (d.scheduler.joinable()) {
    {
      std::unique_lock<std::mutex> lk(d.mx);
      d.cv.wait(lk, [&] { return d.run_done; });
    }
    d.scheduler.join();
    d.teardown();
  }
  std::lock_guard<std::mutex> lk(d.mx);
  return d.exit_code;
}

bool Server::stopped() const {
  std::lock_guard<std::mutex> lk(impl_->mx);
  return impl_->run_done;
}

#else  // !HEM_DAEMON_POSIX

struct Server::Impl {};

Server::Server(ServerOptions options) : options_(std::move(options)) {}
Server::~Server() = default;
void Server::start() { throw std::runtime_error("hemcpad requires a POSIX platform"); }
void Server::request_drain() {}
void Server::request_force_stop() {}
int Server::wait() { return 0; }
bool Server::stopped() const { return true; }

#endif

}  // namespace hem::daemon
