#pragma once

/// \file protocol.hpp
/// Wire protocol of the analysis daemon (`hemcpad`), plus the socket I/O
/// helpers shared by server, client library, and fault tests.
///
/// Requests are a single line:
///
/// ```
/// hemcpad1 <verb> [key=value]...\n
/// ```
///
/// followed, when the line carries `bytes=<n>` (only `submit` does), by
/// exactly n raw payload bytes.  Values must not contain spaces or control
/// characters — configuration text travels in the payload, never in the
/// header line.  Responses are exactly one JSON object per request,
/// newline-terminated, e.g.
///
/// ```
/// {"ok":true,"id":7,"state":"done","rows":[...]}
/// {"ok":false,"error":"overloaded","message":"queue full (64 jobs)"}
/// ```
///
/// Robustness contract: every accepted request gets exactly one response —
/// rejections are explicit (`"error":"overloaded"`, `"quota"`,
/// `"too_large"`, `"draining"`, ...), never silent hangs.  Oversized or
/// malformed frames terminate the connection after an error response.  All
/// socket reads and writes go through poll() with caller-set timeouts so a
/// half-open peer or a reader that stops draining its socket can only
/// stall its own connection, never a daemon thread forever.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace hem::daemon {

/// Protocol magic + version tag, first token of every request line.
inline constexpr const char* kProtocolVersion = "hemcpad1";

/// Hard cap on the request *line* (not the payload) — a line this long is
/// a protocol violation, not a big config.
inline constexpr std::size_t kMaxLineBytes = 4096;

/// One parsed request line.
struct Request {
  std::string verb;
  std::map<std::string, std::string> kv;

  [[nodiscard]] bool has(const std::string& key) const { return kv.count(key) != 0; }
  [[nodiscard]] std::string get(const std::string& key, const std::string& fallback = "") const {
    const auto it = kv.find(key);
    return it == kv.end() ? fallback : it->second;
  }
  /// Non-negative integer value of `key`; `fallback` when absent, -1 when
  /// present but malformed (callers reject the request).
  [[nodiscard]] long get_long(const std::string& key, long fallback = 0) const;
};

/// Parse one request line.  Returns false (with `error` set to a
/// human-readable reason) on any violation: missing/wrong version token,
/// empty verb, malformed key=value tokens, embedded control characters.
[[nodiscard]] bool parse_request_line(const std::string& line, Request& out, std::string& error);

/// Render a request line (client side).  Values are validated with the
/// same rules the parser enforces; throws std::invalid_argument on values
/// that cannot travel in a header line.
[[nodiscard]] std::string render_request_line(
    const std::string& verb, const std::vector<std::pair<std::string, std::string>>& kv);

// ---------------------------------------------------------------------------
// Minimal JSON emission / extraction
// ---------------------------------------------------------------------------

/// JSON string escaping (quotes, backslash, control characters).
[[nodiscard]] std::string json_escape(const std::string& s);

/// Tiny single-object JSON writer — enough for the daemon's flat response
/// shapes (scalars plus one optional array of strings), avoiding a JSON
/// dependency.  Keys are emitted in add() order.
class JsonWriter {
 public:
  JsonWriter& add(const std::string& key, const std::string& value);
  JsonWriter& add(const std::string& key, const char* value);
  JsonWriter& add(const std::string& key, long value);
  JsonWriter& add(const std::string& key, int value) { return add(key, static_cast<long>(value)); }
  JsonWriter& add(const std::string& key, bool value);
  JsonWriter& add_raw(const std::string& key, const std::string& raw_json);
  JsonWriter& add_strings(const std::string& key, const std::vector<std::string>& values);

  /// Finished `{...}` object (no trailing newline).
  [[nodiscard]] std::string str() const { return "{" + body_ + "}"; }

 private:
  void key(const std::string& k);
  std::string body_;
};

/// Extract a top-level scalar field from a (daemon-produced) JSON object:
/// `json_find(text, "id")` -> "7", `json_find(text, "state")` -> "done".
/// Strings come back unescaped and unquoted; missing keys come back empty.
/// This is a protocol-shaped extractor for the client/tests, not a general
/// JSON parser — nested objects are not supported (the daemon emits none).
[[nodiscard]] std::string json_find(const std::string& json, const std::string& key);

/// Extract a top-level array of strings (`"rows":["a","b"]`).  Missing or
/// non-array keys yield an empty vector.
[[nodiscard]] std::vector<std::string> json_find_strings(const std::string& json,
                                                         const std::string& key);

// ---------------------------------------------------------------------------
// Socket I/O (POSIX only; every function is poll()-gated)
// ---------------------------------------------------------------------------

/// Result class of a socket read step.
enum class IoStatus {
  kOk,        ///< data delivered
  kClosed,    ///< orderly EOF from the peer
  kTimeout,   ///< poll() timeout expired before progress
  kError,     ///< socket error (errno-level)
  kOversize,  ///< line exceeded kMaxLineBytes before a newline arrived
};

[[nodiscard]] const char* to_string(IoStatus s) noexcept;

/// Buffered line/byte reader over a socket fd (not owned).  Each call
/// enforces `timeout_ms` of total wall-clock budget: a peer trickling one
/// byte per poll interval cannot stretch a read forever (slow-loris
/// defence).
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// Read up to and including the next '\n'; the newline is stripped from
  /// `line` (a trailing '\r' too, for telnet-style clients).
  [[nodiscard]] IoStatus read_line(std::string& line, long timeout_ms);

  /// Read exactly `n` payload bytes.
  [[nodiscard]] IoStatus read_exact(std::string& data, std::size_t n, long timeout_ms);

  /// True when buffered bytes are already available (no syscall).
  [[nodiscard]] bool buffered() const noexcept { return !buf_.empty(); }

 private:
  [[nodiscard]] IoStatus fill(long timeout_ms);

  int fd_;
  std::string buf_;
};

/// Write all of `data`, poll()-gating each chunk on writability with
/// `timeout_ms` total budget — a peer that stops draining its socket
/// (slow reader) times the write out instead of blocking the daemon.
[[nodiscard]] IoStatus write_all(int fd, const std::string& data, long timeout_ms);

}  // namespace hem::daemon
