#include "daemon/model_cache.hpp"

#include <algorithm>

#include "obs/obs.hpp"

namespace hem::daemon {

namespace {
// Used as a gauge: insertions add the entry size, evictions subtract it.
obs::Counter& g_cache_bytes = obs::registry().counter("daemon.cache.bytes");
}  // namespace

WarmModelCache::WarmModelCache(std::size_t capacity, std::size_t max_bytes)
    : capacity_(std::max<std::size_t>(1, capacity)), max_bytes_(max_bytes) {}

WarmModelCache::Entry* WarmModelCache::lookup(std::uint64_t fingerprint) {
  for (Entry& e : entries_)
    if (e.fingerprint == fingerprint) return &e;
  return nullptr;
}

void WarmModelCache::erase_locked(std::vector<Entry>::iterator it) {
  bytes_ -= it->bytes;
  g_cache_bytes.add(-static_cast<long>(it->bytes));
  entries_.erase(it);
}

void WarmModelCache::evict_lru_locked() {
  auto oldest = std::min_element(
      entries_.begin(), entries_.end(),
      [](const Entry& a, const Entry& b) { return a.last_used < b.last_used; });
  erase_locked(oldest);
  ++evictions_;
}

std::shared_ptr<const cpa::EngineSnapshot> WarmModelCache::find_exact(std::uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(mx_);
  if (Entry* e = lookup(fingerprint)) {
    e->last_used = ++clock_;
    ++exact_hits_;
    return e->snapshot;
  }
  // Not counted as a miss: the daemon always falls through to best_base(),
  // which does the counting, so one cold lookup is one miss.
  return nullptr;
}

std::shared_ptr<const cpa::EngineSnapshot> WarmModelCache::best_base(const cpa::System& system) {
  // Signatures of the incoming system, sorted for two-pointer intersection.
  std::vector<std::string> want;
  want.reserve(system.tasks().size());
  for (cpa::TaskId t = 0; t < system.tasks().size(); ++t)
    want.push_back(cpa::task_signature(system, t));
  std::sort(want.begin(), want.end());

  std::lock_guard<std::mutex> lock(mx_);
  Entry* best = nullptr;
  std::size_t best_overlap = 0;
  for (Entry& e : entries_) {
    std::size_t overlap = 0;
    for (std::size_t i = 0, j = 0; i < want.size() && j < e.signatures.size();) {
      const int cmp = want[i].compare(e.signatures[j]);
      if (cmp == 0) {
        ++overlap;
        ++i;
        ++j;
      } else if (cmp < 0) {
        ++i;
      } else {
        ++j;
      }
    }
    if (overlap > best_overlap ||
        (overlap == best_overlap && overlap > 0 && best != nullptr &&
         e.last_used > best->last_used)) {
      best = &e;
      best_overlap = overlap;
    }
  }
  if (best == nullptr || best_overlap == 0) {
    ++misses_;
    return nullptr;
  }
  best->last_used = ++clock_;
  ++base_hits_;
  return best->snapshot;
}

void WarmModelCache::insert(std::uint64_t fingerprint,
                            std::shared_ptr<const cpa::EngineSnapshot> snapshot) {
  if (snapshot == nullptr || !snapshot->valid()) return;
  std::vector<std::string> signatures;
  signatures.reserve(snapshot->tasks.size());
  for (const auto& t : snapshot->tasks) signatures.push_back(t.signature);
  std::sort(signatures.begin(), signatures.end());

  const std::size_t entry_bytes = snapshot->approx_bytes();

  std::lock_guard<std::mutex> lock(mx_);
  if (Entry* e = lookup(fingerprint)) {
    bytes_ -= e->bytes;
    g_cache_bytes.add(static_cast<long>(entry_bytes) - static_cast<long>(e->bytes));
    e->snapshot = std::move(snapshot);
    e->signatures = std::move(signatures);
    e->last_used = ++clock_;
    e->bytes = entry_bytes;
    bytes_ += entry_bytes;
    while (max_bytes_ != 0 && bytes_ > max_bytes_ && entries_.size() > 1) evict_lru_locked();
    return;
  }
  if (entries_.size() >= capacity_) evict_lru_locked();
  Entry e;
  e.fingerprint = fingerprint;
  e.snapshot = std::move(snapshot);
  e.signatures = std::move(signatures);
  e.last_used = ++clock_;
  e.bytes = entry_bytes;
  bytes_ += entry_bytes;
  g_cache_bytes.add(static_cast<long>(entry_bytes));
  entries_.push_back(std::move(e));
  // Byte cap: evict LRU-first until under budget, but never the entry just
  // inserted — one oversized snapshot shrinks the cache, it does not turn
  // every future insert into a no-op.
  while (max_bytes_ != 0 && bytes_ > max_bytes_ && entries_.size() > 1) evict_lru_locked();
}

std::size_t WarmModelCache::size() const {
  std::lock_guard<std::mutex> lock(mx_);
  return entries_.size();
}

std::size_t WarmModelCache::bytes() const {
  std::lock_guard<std::mutex> lock(mx_);
  return bytes_;
}

long WarmModelCache::exact_hits() const {
  std::lock_guard<std::mutex> lock(mx_);
  return exact_hits_;
}

long WarmModelCache::base_hits() const {
  std::lock_guard<std::mutex> lock(mx_);
  return base_hits_;
}

long WarmModelCache::misses() const {
  std::lock_guard<std::mutex> lock(mx_);
  return misses_;
}

long WarmModelCache::evictions() const {
  std::lock_guard<std::mutex> lock(mx_);
  return evictions_;
}

}  // namespace hem::daemon
