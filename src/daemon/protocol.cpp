#include "daemon/protocol.hpp"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#define HEM_DAEMON_POSIX 1
#else
#define HEM_DAEMON_POSIX 0
#endif

namespace hem::daemon {

namespace {

using steady = std::chrono::steady_clock;

[[nodiscard]] bool token_ok(const std::string& s) {
  if (s.empty()) return false;
  for (const char c : s)
    if (c == ' ' || static_cast<unsigned char>(c) < 0x20 || c == 0x7f) return false;
  return true;
}

/// Remaining milliseconds of a deadline, clamped to [0, timeout].
[[nodiscard]] int remaining_ms(steady::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(deadline - steady::now());
  if (left.count() <= 0) return 0;
  if (left.count() > 60'000) return 60'000;  // poll() int argument, re-armed per loop
  return static_cast<int>(left.count());
}

}  // namespace

long Request::get_long(const std::string& key, long fallback) const {
  const auto it = kv.find(key);
  if (it == kv.end()) return fallback;
  const std::string& v = it->second;
  if (v.empty() || v.size() > 18) return -1;
  long out = 0;
  for (const char c : v) {
    if (c < '0' || c > '9') return -1;
    out = out * 10 + (c - '0');
  }
  return out;
}

bool parse_request_line(const std::string& line, Request& out, std::string& error) {
  out = Request{};
  std::size_t pos = 0;
  const auto next_token = [&](std::string& tok) {
    while (pos < line.size() && line[pos] == ' ') ++pos;
    if (pos >= line.size()) return false;
    const std::size_t end = line.find(' ', pos);
    tok = line.substr(pos, end == std::string::npos ? end : end - pos);
    pos = end == std::string::npos ? line.size() : end;
    return true;
  };

  for (const char c : line)
    if (static_cast<unsigned char>(c) < 0x20 || c == 0x7f) {
      error = "control character in request line";
      return false;
    }

  std::string tok;
  if (!next_token(tok) || tok != kProtocolVersion) {
    error = "expected protocol header '" + std::string(kProtocolVersion) + "'";
    return false;
  }
  if (!next_token(out.verb) || out.verb.find('=') != std::string::npos) {
    error = "missing verb after protocol header";
    return false;
  }
  while (next_token(tok)) {
    const std::size_t eq = tok.find('=');
    if (eq == std::string::npos || eq == 0) {
      error = "malformed key=value token '" + tok + "'";
      return false;
    }
    const std::string key = tok.substr(0, eq);
    const std::string value = tok.substr(eq + 1);
    if (out.kv.count(key) != 0) {
      error = "duplicate key '" + key + "'";
      return false;
    }
    out.kv.emplace(key, value);
  }
  return true;
}

std::string render_request_line(const std::string& verb,
                                const std::vector<std::pair<std::string, std::string>>& kv) {
  if (!token_ok(verb) || verb.find('=') != std::string::npos)
    throw std::invalid_argument("invalid request verb '" + verb + "'");
  std::string line = std::string(kProtocolVersion) + " " + verb;
  for (const auto& [key, value] : kv) {
    if (!token_ok(key) || key.find('=') != std::string::npos)
      throw std::invalid_argument("invalid request key '" + key + "'");
    if (!value.empty() && !token_ok(value))
      throw std::invalid_argument("request value for '" + key +
                                  "' contains spaces or control characters");
    line += " " + key + "=" + value;
  }
  return line + "\n";
}

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c) & 0xff);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::key(const std::string& k) {
  if (!body_.empty()) body_ += ',';
  body_ += '"' + json_escape(k) + "\":";
}

JsonWriter& JsonWriter::add(const std::string& k, const std::string& value) {
  key(k);
  body_ += '"' + json_escape(value) + '"';
  return *this;
}

JsonWriter& JsonWriter::add(const std::string& k, const char* value) {
  return add(k, std::string(value));
}

JsonWriter& JsonWriter::add(const std::string& k, long value) {
  key(k);
  body_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::add(const std::string& k, bool value) {
  key(k);
  body_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::add_raw(const std::string& k, const std::string& raw_json) {
  key(k);
  body_ += raw_json;
  return *this;
}

JsonWriter& JsonWriter::add_strings(const std::string& k, const std::vector<std::string>& values) {
  key(k);
  body_ += '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) body_ += ',';
    body_ += '"' + json_escape(values[i]) + '"';
  }
  body_ += ']';
  return *this;
}

namespace {

/// Position just past `"key":` at the top level of `json`, or npos.
[[nodiscard]] std::size_t find_value(const std::string& json, const std::string& key) {
  const std::string needle = '"' + key + "\":";
  std::size_t from = 0;
  while (true) {
    const std::size_t at = json.find(needle, from);
    if (at == std::string::npos) return std::string::npos;
    // Reject matches inside string values: count unescaped quotes before.
    bool in_string = false;
    for (std::size_t i = 0; i < at; ++i) {
      if (json[i] == '\\' && in_string) {
        ++i;
      } else if (json[i] == '"') {
        in_string = !in_string;
      }
    }
    if (!in_string) return at + needle.size();
    from = at + 1;
  }
}

[[nodiscard]] std::string unescape_string(const std::string& json, std::size_t& pos) {
  // pos points at the opening quote.
  std::string out;
  for (++pos; pos < json.size(); ++pos) {
    const char c = json[pos];
    if (c == '"') {
      ++pos;
      break;
    }
    if (c == '\\' && pos + 1 < json.size()) {
      const char e = json[++pos];
      switch (e) {
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u':
          if (pos + 4 < json.size()) {
            out += static_cast<char>(std::stoi(json.substr(pos + 1, 4), nullptr, 16));
            pos += 4;
          }
          break;
        default: out += e;
      }
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string json_find(const std::string& json, const std::string& key) {
  std::size_t pos = find_value(json, key);
  if (pos == std::string::npos || pos >= json.size()) return "";
  if (json[pos] == '"') return unescape_string(json, pos);
  const std::size_t end = json.find_first_of(",}]", pos);
  return json.substr(pos, end == std::string::npos ? end : end - pos);
}

std::vector<std::string> json_find_strings(const std::string& json, const std::string& key) {
  std::vector<std::string> out;
  std::size_t pos = find_value(json, key);
  if (pos == std::string::npos || pos >= json.size() || json[pos] != '[') return out;
  ++pos;
  while (pos < json.size() && json[pos] != ']') {
    if (json[pos] == '"')
      out.push_back(unescape_string(json, pos));
    else
      ++pos;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Socket I/O
// ---------------------------------------------------------------------------

const char* to_string(IoStatus s) noexcept {
  switch (s) {
    case IoStatus::kOk: return "ok";
    case IoStatus::kClosed: return "closed";
    case IoStatus::kTimeout: return "timeout";
    case IoStatus::kError: return "error";
    case IoStatus::kOversize: return "oversize";
  }
  return "?";
}

#if HEM_DAEMON_POSIX

IoStatus LineReader::fill(long timeout_ms) {
  struct pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  const int ready = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
  if (ready == 0) return IoStatus::kTimeout;
  if (ready < 0) return errno == EINTR ? IoStatus::kTimeout : IoStatus::kError;
  char chunk[4096];
  const ssize_t n = ::read(fd_, chunk, sizeof chunk);
  if (n == 0) return IoStatus::kClosed;
  if (n < 0) return errno == EAGAIN || errno == EINTR ? IoStatus::kTimeout : IoStatus::kError;
  buf_.append(chunk, static_cast<std::size_t>(n));
  return IoStatus::kOk;
}

IoStatus LineReader::read_line(std::string& line, long timeout_ms) {
  const auto deadline = steady::now() + std::chrono::milliseconds(timeout_ms);
  while (true) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      line = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return IoStatus::kOk;
    }
    if (buf_.size() > kMaxLineBytes) return IoStatus::kOversize;
    const int left = remaining_ms(deadline);
    if (left == 0) return IoStatus::kTimeout;
    const IoStatus st = fill(left);
    // kTimeout from fill() can be an EINTR, not the deadline: loop and let
    // remaining_ms() decide whether time is actually up.
    if (st != IoStatus::kOk && st != IoStatus::kTimeout) return st;
  }
}

IoStatus LineReader::read_exact(std::string& data, std::size_t n, long timeout_ms) {
  const auto deadline = steady::now() + std::chrono::milliseconds(timeout_ms);
  while (buf_.size() < n) {
    const int left = remaining_ms(deadline);
    if (left == 0) return IoStatus::kTimeout;
    const IoStatus st = fill(left);
    if (st != IoStatus::kOk && st != IoStatus::kTimeout) return st;
  }
  data = buf_.substr(0, n);
  buf_.erase(0, n);
  return IoStatus::kOk;
}

IoStatus write_all(int fd, const std::string& data, long timeout_ms) {
  const auto deadline = steady::now() + std::chrono::milliseconds(timeout_ms);
  std::size_t off = 0;
  while (off < data.size()) {
    struct pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    const int left = remaining_ms(deadline);
    if (left == 0) return IoStatus::kTimeout;
    const int ready = ::poll(&pfd, 1, left);
    if (ready == 0) return IoStatus::kTimeout;
    if (ready < 0) {
      if (errno == EINTR) continue;
      return IoStatus::kError;
    }
    // send() + MSG_NOSIGNAL so a vanished peer surfaces as EPIPE instead of
    // a process-wide SIGPIPE (the daemon runs in-process in the fault tests,
    // which install no signal handlers).
#if defined(MSG_NOSIGNAL)
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
#else
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
#endif
    if (n < 0) {
      if (errno == EAGAIN || errno == EINTR) continue;
      return IoStatus::kError;  // EPIPE and friends: peer gone
    }
    off += static_cast<std::size_t>(n);
  }
  return IoStatus::kOk;
}

#else  // !HEM_DAEMON_POSIX — the daemon is POSIX-only; stubs keep the lib linking.

IoStatus LineReader::fill(long) { return IoStatus::kError; }
IoStatus LineReader::read_line(std::string&, long) { return IoStatus::kError; }
IoStatus LineReader::read_exact(std::string&, std::size_t, long) { return IoStatus::kError; }
IoStatus write_all(int, const std::string&, long) { return IoStatus::kError; }

#endif

}  // namespace hem::daemon
