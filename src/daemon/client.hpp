#pragma once

/// \file client.hpp
/// Minimal synchronous client for the analysis daemon, shared by the
/// `hemcpad` CLI client verbs and the daemon tests.  One connection, one
/// outstanding request at a time; every call returns the daemon's raw JSON
/// response line (use protocol.hpp's json_find helpers to pick fields) or
/// throws std::runtime_error on transport-level failure.

#include <cstdint>
#include <string>
#include <vector>

#include "daemon/protocol.hpp"

namespace hem::daemon {

class Client {
 public:
  /// Connect to the daemon socket.  Transient connect() failures — the
  /// socket not existing yet (daemon still starting), ECONNREFUSED (stale
  /// socket during a restart), EINTR, ECONNRESET (listener backlog reset) —
  /// are retried up to `connect_retries` extra times with jittered
  /// exponential backoff (~50 ms, ~100 ms, ~200 ms ... capped at 2 s).
  /// Non-transient errors (path too long, EACCES, ...) throw immediately.
  /// \throws std::runtime_error when the socket cannot be reached after
  /// all retries.
  explicit Client(const std::string& socket_path, long io_timeout_ms = 10'000,
                  int connect_retries = 3);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Send one request (optionally with a payload, for `submit`) and read
  /// the one-line JSON response.  `extra` keys are appended to the line.
  [[nodiscard]] std::string request(
      const std::string& verb,
      const std::vector<std::pair<std::string, std::string>>& kv = {},
      const std::string& payload = "", bool has_payload = false);

  /// `submit` with a config payload; returns the response JSON.
  [[nodiscard]] std::string submit(const std::string& config_text,
                                   const std::vector<std::pair<std::string, std::string>>& kv = {});

  /// `result id=<id> wait=1` — block (server side) until terminal.
  [[nodiscard]] std::string wait_result(std::uint64_t id, long timeout_ms = 60'000);

  [[nodiscard]] std::string ping() { return request("ping"); }
  [[nodiscard]] std::string stats() { return request("stats"); }
  [[nodiscard]] std::string cancel(std::uint64_t id);
  [[nodiscard]] std::string drain(bool force_stop = false);

  /// Raw socket fd — the fault tests use it to simulate misbehaving peers.
  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// Close the socket early (simulates client disconnect).
  void close();

 private:
  int fd_ = -1;
  long io_timeout_ms_;
  LineReader reader_;
};

}  // namespace hem::daemon
