#pragma once

/// \file server.hpp
/// The analysis daemon (`hemcpad`): a Unix-domain-socket server that runs
/// submitted configurations on a shared exec::JobPool and keeps the
/// immutable, memoisation-warm model DAGs of finished analyses alive in a
/// WarmModelCache so resubmissions and variants start warm.
///
/// Robustness model (see docs/daemon.md for the full contract):
///   * Admission control — a bounded global queue and a per-client quota;
///     over-limit submissions are rejected explicitly (`overloaded`,
///     `quota`), oversized payloads with `too_large`, submissions during a
///     drain with `draining`.  Accepted or rejected, every request gets
///     exactly one response: the daemon never sheds load by hanging.
///   * Fair queueing — one FIFO per client, dispatched round-robin, so a
///     flood from one client cannot starve the others.
///   * Deadlines — every job carries a wall-clock budget enforced by the
///     pool's watchdog: soft-cancel (CancelReason::kWatchdog) at the
///     budget, hard-abandon after the grace period.  An abandoned worker
///     is detached and its outcome never read.
///   * Disconnect detection — jobs whose connection vanishes are cancelled
///     with CancelReason::kDisconnect (unless submitted with detach=1).
///   * Slow peers — all socket I/O is poll()-gated; a half-open or
///     non-draining peer times out and only its own connection closes.
///   * Idempotent resubmission — terminal results are journaled
///     (exec::Journal, same format as `hemcpa --batch`) keyed by config
///     fingerprint; resubmitting an already-analysed config returns the
///     stored result (`"cached":true`) without re-running.
///   * Process isolation (default on) — every analysis runs in a forked,
///     rlimit-capped worker process (exec::WorkerProcess).  A config that
///     segfaults, aborts, or blows its memory budget becomes a `crashed`
///     job result carrying the signal; the daemon itself never dies.  A
///     config whose workers crash twice is quarantined (`poisoned`):
///     journaled, counted, and every later submission of the identical
///     bytes is refused without running — across daemon restarts, because
///     the crash ledger is rebuilt from the journal.  Isolated runs skip
///     warm-cache *insertion* (model DAGs cannot cross the pipe); reads
///     still warm the child because the lookup happens pre-fork.
///   * Graceful drain — request_drain() (SIGTERM, or the `drain` verb)
///     stops admission, finishes queued and running jobs, and run() exits
///     with code 0; request_force_stop() (second SIGTERM) cancels
///     everything and exits with code 6, matching the batch exit table.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "exec/analysis_attempt.hpp"
#include "exec/cancel.hpp"
#include "exec/job_pool.hpp"

namespace hem::daemon {

class WarmModelCache;

struct ServerOptions {
  std::string socket_path;          ///< Unix-domain socket to bind
  int pool_width = 2;               ///< concurrently running analyses
  long grace_ms = 2000;             ///< soft-cancel -> hard-abandon delay
  long default_budget_ms = 30'000;  ///< per-job deadline when the client sets none
  long max_budget_ms = 300'000;     ///< cap on client-requested budgets
  int queue_max = 64;               ///< global queued-job bound (admission control)
  int client_quota = 8;             ///< max queued+running jobs per client
  int max_connections = 64;         ///< concurrent connections before turn-away
  std::size_t max_frame_bytes = 1 << 20;  ///< config payload cap (`too_large` above)
  long io_timeout_ms = 5000;        ///< per-step socket read/write budget
  long idle_timeout_ms = 30'000;    ///< close connections idle this long
  std::size_t result_retention = 256;  ///< completed job records kept for `result`
  std::size_t cache_capacity = 16;  ///< warm snapshots kept (LRU)
  std::size_t cache_bytes = 0;      ///< approximate warm-cache byte cap; 0 = none
  std::string journal_path;         ///< terminal-result journal; empty = disabled
  bool strict = false;              ///< force strict mode on every job
  int engine_jobs = 0;              ///< CpaEngine threads per job; 0 = config/default
  int max_iterations = 64;          ///< global engine iterations per job
  bool isolate = true;         ///< fork one rlimit-capped worker process per job
  long worker_memory_mb = 0;   ///< per-worker RLIMIT_AS cap in MiB; 0 = inherit
  long worker_stack_mb = 0;    ///< per-worker RLIMIT_STACK cap in MiB; 0 = inherit
};

/// Lifecycle of one submitted job.  kCrashed = its worker process died
/// (signal / OOM / rlimit); kPoisoned = quarantined after crashing twice.
enum class JobPhase {
  kQueued,
  kRunning,
  kDone,
  kFailed,
  kCancelled,
  kAbandoned,
  kCrashed,
  kPoisoned,
};

[[nodiscard]] const char* to_string(JobPhase p) noexcept;

class Server {
 public:
  explicit Server(ServerOptions options);

  /// Force-stops and tears everything down if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind the socket, load the journal, spawn the accept and scheduler
  /// threads.  \throws std::runtime_error when the socket cannot be bound
  /// or the journal path cannot be written.
  void start();

  /// Stop admitting work, finish queued and running jobs, then shut down
  /// with exit code 0.  Idempotent.
  void request_drain();

  /// Cancel queued and running jobs (CancelReason::kShutdown, escalating)
  /// and shut down with exit code 6.  Idempotent; overrides a drain.
  void request_force_stop();

  /// Block until the server has shut down (via drain, force-stop, or the
  /// client `drain` verb) and teardown finished.  Returns the exit code:
  /// 0 = clean drain, 6 = forced.
  [[nodiscard]] int wait();

  [[nodiscard]] bool stopped() const;
  [[nodiscard]] const std::string& socket_path() const noexcept {
    return options_.socket_path;
  }
  [[nodiscard]] const ServerOptions& options() const noexcept { return options_; }

  struct Impl;
  struct JobRecord;
  struct Conn;

 private:
  std::shared_ptr<Impl> impl_;  ///< shared with server threads
  ServerOptions options_;
};

}  // namespace hem::daemon
