#pragma once

/// \file model_cache.hpp
/// Shared warm model cache of the analysis daemon: converged
/// cpa::EngineSnapshot objects (immutable, memoisation-warm event-model
/// DAGs) kept alive across requests, keyed by the submitted configuration's
/// content fingerprint.
///
/// Two lookup modes:
///   * find_exact(fingerprint) — the resubmission fast path: the identical
///     config was analysed before, its snapshot seeds every task, and the
///     engine converges in one verification iteration.
///   * best_base(system)       — the variant path: pick the cached snapshot
///     sharing the most task signatures with the incoming system, so an
///     edited config only pays for the delta around its edit.
///
/// Snapshots are immutable and handed out as shared_ptr<const ...>: eviction
/// never invalidates a snapshot a running job still warms from, and
/// concurrent jobs may warm from the same snapshot (the engine only reads
/// it).  All methods are thread-safe.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "model/engine_snapshot.hpp"

namespace hem::daemon {

class WarmModelCache {
 public:
  /// Cache keeping at most `capacity` snapshots (LRU eviction, minimum 1)
  /// totalling at most `max_bytes` approximate bytes
  /// (EngineSnapshot::approx_bytes(); 0 = no byte cap).  The byte cap
  /// evicts LRU-first but always retains the most recent insertion, so a
  /// single oversized snapshot degrades the cache to one entry instead of
  /// disabling it.  The current total is exported as the
  /// `daemon.cache.bytes` obs counter (used as a gauge).
  explicit WarmModelCache(std::size_t capacity, std::size_t max_bytes = 0);

  /// Snapshot of the byte-identical config, or nullptr.  A null return is
  /// not counted as a miss (callers fall through to best_base, which
  /// counts).
  [[nodiscard]] std::shared_ptr<const cpa::EngineSnapshot> find_exact(std::uint64_t fingerprint);

  /// Cached snapshot sharing the most task signatures with `system`
  /// (ties: most recently used).  Returns nullptr when no snapshot shares
  /// at least one signature — warming from an unrelated snapshot would be
  /// pure overhead.
  [[nodiscard]] std::shared_ptr<const cpa::EngineSnapshot> best_base(const cpa::System& system);

  /// Insert or replace the snapshot for `fingerprint`.  Invalid (empty)
  /// snapshots are ignored.
  void insert(std::uint64_t fingerprint, std::shared_ptr<const cpa::EngineSnapshot> snapshot);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t max_bytes() const noexcept { return max_bytes_; }
  /// Approximate bytes held right now (sum of entry approx_bytes()).
  [[nodiscard]] std::size_t bytes() const;
  [[nodiscard]] long exact_hits() const;
  [[nodiscard]] long base_hits() const;
  [[nodiscard]] long misses() const;
  [[nodiscard]] long evictions() const;

 private:
  struct Entry {
    std::uint64_t fingerprint = 0;
    std::shared_ptr<const cpa::EngineSnapshot> snapshot;
    std::vector<std::string> signatures;  ///< sorted task signatures
    std::uint64_t last_used = 0;          ///< logical clock for LRU + tie-break
    std::size_t bytes = 0;                ///< approx_bytes() at insert time
  };

  [[nodiscard]] Entry* lookup(std::uint64_t fingerprint);
  void erase_locked(std::vector<Entry>::iterator it);
  void evict_lru_locked();

  const std::size_t capacity_;
  const std::size_t max_bytes_;
  mutable std::mutex mx_;
  std::vector<Entry> entries_;
  std::size_t bytes_ = 0;  ///< running total of entry bytes
  std::uint64_t clock_ = 0;
  long exact_hits_ = 0;
  long base_hits_ = 0;
  long misses_ = 0;
  long evictions_ = 0;
};

}  // namespace hem::daemon
