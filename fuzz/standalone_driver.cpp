// Standalone replay driver for the fuzz harnesses on compilers without
// libFuzzer (the repo's default toolchain is GCC; `-fsanitize=fuzzer` is a
// Clang feature).  Feeds every argument file — or stdin when none — through
// LLVMFuzzerTestOneInput exactly once, so corpus regression replay and the
// CI smoke job work everywhere:
//
//   fuzz_textual_config fuzz/corpus/textual_config/*
//
// Under Clang this file is not compiled; libFuzzer provides main().

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <iterator>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size);

namespace {

int run_one(const std::string& name, const std::string& bytes) {
  (void)LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                               bytes.size());
  std::cout << name << ": " << bytes.size() << " bytes ok\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    const std::string bytes((std::istreambuf_iterator<char>(std::cin)),
                            std::istreambuf_iterator<char>());
    return run_one("<stdin>", bytes);
  }
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::cerr << "error: cannot open corpus file '" << argv[i] << "'\n";
      return 1;
    }
    const std::string bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    run_one(argv[i], bytes);
  }
  return 0;
}
