// libFuzzer harness for the hemcpad wire protocol (daemon/protocol.hpp).
//
// Invariants (violations trap):
//   1. parse_request_line never crashes and never leaves `out`/`error` in a
//      state that contradicts its return value;
//   2. parse -> render -> parse is the identity on accepted request lines
//      (the client's render must be able to reproduce anything the server
//      accepted, and the re-parse must agree verb-for-verb, key-for-key);
//   3. JSON emission round-trips: json_find(JsonWriter.add(k, v), k) == v
//      for arbitrary byte strings v (json_escape and the extractor's
//      unescaping are inverses).
//
// Build: -DHEM_FUZZ=ON (see fuzz/CMakeLists.txt).

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "daemon/protocol.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  if (size > hem::daemon::kMaxLineBytes) return 0;
  const std::string line(reinterpret_cast<const char*>(data), size);

  hem::daemon::Request request;
  std::string error;
  if (hem::daemon::parse_request_line(line, request, error)) {
    if (request.verb.empty()) __builtin_trap();  // invariant 1
    std::vector<std::pair<std::string, std::string>> kv(request.kv.begin(), request.kv.end());
    std::string rendered;
    try {
      rendered = hem::daemon::render_request_line(request.verb, kv);
    } catch (const std::invalid_argument&) {
      // The parser accepted a value the renderer refuses to emit — a
      // protocol asymmetry worth surfacing.
      __builtin_trap();
    }
    hem::daemon::Request again;
    if (!hem::daemon::parse_request_line(rendered, again, error)) __builtin_trap();
    if (again.verb != request.verb || again.kv != request.kv) __builtin_trap();  // invariant 2
  } else if (error.empty()) {
    __builtin_trap();  // rejection must carry a reason (invariant 1)
  }

  // Invariant 3: JSON round-trip on the raw bytes.
  const std::string json = hem::daemon::JsonWriter().add("k", line).str();
  if (hem::daemon::json_find(json, "k") != line) __builtin_trap();
  return 0;
}
