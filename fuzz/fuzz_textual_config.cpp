// libFuzzer harness for the `.hemcpa` textual pipeline.
//
// Invariants (any violation traps via __builtin_trap, which ASan reports):
//   1. lint_config never crashes, whatever the bytes (it owns all parse
//      failures and must turn them into HL000/HL004 diagnostics);
//   2. parsing is deterministic: a text the parser accepted once must be
//      accepted again;
//   3. the scenarios::to_config_text serialiser emits only parseable text
//      for any system the parser itself produced (round-trip closure).
//      Inexpressible constructs must surface as std::invalid_argument, not
//      as malformed output.
//
// Build: -DHEM_FUZZ=ON (see fuzz/CMakeLists.txt).  With Clang this links
// against libFuzzer + ASan/UBSan; with other compilers the standalone
// driver replays corpus files through the same entry point.

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

#include "model/textual_config.hpp"
#include "scenarios/synth.hpp"
#include "verify/lint.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  if (size > 64 * 1024) return 0;  // oversized inputs only slow exploration
  const std::string text(reinterpret_cast<const char*>(data), size);

  {
    std::istringstream in(text);
    (void)hem::verify::lint_config(in);  // invariant 1: never throws, never crashes
  }

  hem::cpa::ParsedSystem parsed;
  try {
    std::istringstream in(text);
    parsed = hem::cpa::parse_system_config(in);
  } catch (const std::invalid_argument&) {
    return 0;  // rejected input: nothing further to check
  }

  {
    // Invariant 2: accept-once implies accept-always.
    std::istringstream in(text);
    try {
      (void)hem::cpa::parse_system_config(in);
    } catch (const std::exception&) {
      __builtin_trap();
    }
  }

  std::string round_trip;
  try {
    round_trip = hem::scenarios::to_config_text(parsed.system, parsed.deadlines);
  } catch (const std::invalid_argument&) {
    return 0;  // declared-inexpressible (e.g. entity names with '=' or ':')
  }
  // Invariant 3: serialiser output must parse.
  std::istringstream in(round_trip);
  try {
    (void)hem::cpa::parse_system_config(in);
  } catch (const std::exception&) {
    __builtin_trap();
  }
  return 0;
}
