// hemlint — static analyzer for .hemcpa configuration files.
//
// Usage:
//   hemlint [--werror] [--json] <config> [<config> ...]
//
// Parses each configuration (same parser as hemcpa) and runs graph-level
// static checks WITHOUT running the CPA engine: utilization > 1, duplicate
// priorities, jitter/dmin vs period, unreferenced sources, unreachable
// tasks, activation dependency cycles, never-flushable pack constructors,
// strict + fault-injection combinations, unsatisfiable deadlines.  Findings
// carry stable HL*** codes and gcc-style file:line:col positions; see
// docs/linting.md for the full table.
//
// Options:
//   --werror   treat warnings as errors (any finding rejects the config)
//   --json     machine-readable output: one JSON object per input file
//              (JSONL, schema in verify/lint.hpp), no summary line.  Exit
//              codes are identical to text mode; `hemfuzz` and CI consume
//              this to bucket lint/engine disagreements.
//
// Exit status — the 0/1/3 subset of the unified code table documented in
// tools/hemcpa.cpp, README.md, and docs/robustness.md (3 = usage always
// wins; hemlint never uses the analysis-outcome codes 2/4/5/6):
//   0  all configurations clean (warnings allowed unless --werror)
//   1  at least one configuration rejected
//   3  usage error (no inputs, unknown flag, unreadable file)

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "verify/lint.hpp"

int main(int argc, char** argv) {
  bool werror = false;
  bool json = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--werror") {
      werror = true;
    } else if (arg == "--json") {
      json = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "error: unknown flag '" << arg << "'\n";
      std::cerr << "usage: hemlint [--werror] [--json] <config> [<config> ...]\n";
      return 3;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::cerr << "usage: hemlint [--werror] [--json] <config> [<config> ...]\n";
    return 3;
  }

  bool rejected = false;
  std::size_t warnings = 0;
  std::size_t errors = 0;
  for (const std::string& file : files) {
    std::ifstream in(file);
    if (!in) {
      std::cerr << "error: cannot open configuration file '" << file << "'\n";
      return 3;
    }
    const hem::verify::LintResult result = hem::verify::lint_config(in);
    if (json) {
      std::cout << hem::verify::write_lint_json(result, file, werror) << "\n";
    } else {
      for (const auto& d : result.diagnostics) std::cout << format(d, file) << "\n";
    }
    warnings += result.count(hem::verify::LintSeverity::kWarning);
    errors += result.count(hem::verify::LintSeverity::kError);
    rejected = rejected || result.fails(werror);
  }
  if (!json && warnings + errors > 0)
    std::cout << warnings << " warning(s), " << errors << " error(s)"
              << (rejected && errors == 0 ? " (warnings rejected by --werror)" : "") << "\n";
  return rejected ? 1 : 0;
}
