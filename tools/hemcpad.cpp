// hemcpad — fault-tolerant analysis daemon for the HEM compositional
// analysis engine, plus its command-line client.
//
// Server:
//   hemcpad serve --socket <path> [--pool-jobs <n>] [--queue-max <n>]
//                 [--client-quota <n>] [--budget-ms <ms>] [--max-budget-ms <ms>]
//                 [--grace-ms <ms>] [--max-frame-bytes <n>] [--io-timeout-ms <ms>]
//                 [--idle-timeout-ms <ms>] [--cache-size <n>] [--cache-bytes <n>]
//                 [--journal <file>] [--max-connections <n>] [--strict] [--jobs <n>]
//                 [--max-iterations <n>] [--isolate|--no-isolate]
//                 [--worker-memory-mb <n>] [--worker-stack-mb <n>]
//
//   The daemon analyses configurations submitted over the Unix-domain
//   socket, keeping finished model DAGs warm in an in-memory cache so
//   resubmissions and variants converge in a fraction of the cold time.
//   By default every analysis runs in a forked, rlimit-capped worker
//   process (--isolate): a config that segfaults, aborts, or exhausts its
//   memory budget becomes a `crashed` job result instead of killing the
//   daemon, and a config that crashes its worker twice is quarantined
//   (`poisoned`) — later submissions of the same bytes are refused without
//   running, across restarts.  --no-isolate restores in-process execution
//   (and with it warm-cache insertion, which isolated runs skip).
//   SIGTERM/SIGINT drains gracefully (stop admission, finish queued and
//   running work, exit 0); a second signal force-stops (cancel everything,
//   exit 6).  See docs/daemon.md and docs/robustness.md.
//
// Client:
//   hemcpad submit <config-file> --socket <path> [--wait] [--budget-ms <ms>]
//                  [--client <name>] [--label <name>] [--detach] [--retries <n>]
//   hemcpad status <id>  --socket <path>
//   hemcpad result <id>  --socket <path> [--timeout-ms <ms>]
//   hemcpad cancel <id>  --socket <path>
//   hemcpad stats        --socket <path>
//   hemcpad ping         --socket <path>
//   hemcpad drain        --socket <path> [--force]
//
//   All client verbs accept --retries <n> (default 3): transient connect
//   failures — daemon still starting, restarting, or resetting a full
//   backlog — are retried with jittered exponential backoff before the
//   verb gives up with exit 3.
//
// Exit codes (documented in docs/robustness.md):
//   serve:  0 clean drain | 2 startup failure | 6 forced shutdown | 3 usage
//   client: 0 ok/done | 2 job failed | 4 done but degraded |
//           5 cancelled/abandoned/crashed/poisoned/rejected |
//           3 usage or connect failure

#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "daemon/client.hpp"
#include "daemon/protocol.hpp"
#include "daemon/server.hpp"

namespace {

int usage() {
  std::cerr << "usage: hemcpad serve --socket <path> [server options]\n"
               "                     [--isolate|--no-isolate] [--worker-memory-mb <n>]\n"
               "                     [--worker-stack-mb <n>] [--cache-bytes <n>]\n"
               "       hemcpad submit <config> --socket <path> [--wait] [--budget-ms <ms>]\n"
               "                      [--client <name>] [--label <name>] [--detach]\n"
               "       hemcpad status|result|cancel <id> --socket <path>\n"
               "       hemcpad stats|ping|drain --socket <path> [--force]\n"
               "       (client verbs: --retries <n> retries transient connects, default 3)\n";
  return 3;
}

bool parse_ll(const char* arg, long long& out) {
  try {
    std::size_t pos = 0;
    out = std::stoll(arg, &pos);
    return pos == std::strlen(arg);
  } catch (...) {
    return false;
  }
}

int bad_number(const std::string& flag, const char* arg) {
  std::cerr << "error: argument to " << flag << " is not a number: '" << arg << "'\n";
  return 3;
}

// ---- serve mode -----------------------------------------------------------

volatile std::sig_atomic_t g_signals = 0;

extern "C" void handle_signal(int /*signum*/) { g_signals = g_signals + 1; }

int run_serve(int argc, char** argv) {
  hem::daemon::ServerOptions opts;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    long long v = 0;
    const auto take = [&](long long min_value) {
      if (i + 1 >= argc || !parse_ll(argv[i + 1], v) || v < min_value) return false;
      i += 1;
      return true;
    };
    if (flag == "--socket" && i + 1 < argc && argv[i + 1][0] != '\0') {
      opts.socket_path = argv[++i];
    } else if (flag == "--pool-jobs") {
      if (!take(1)) return bad_number(flag, i + 1 < argc ? argv[i + 1] : "");
      opts.pool_width = static_cast<int>(v);
    } else if (flag == "--queue-max") {
      if (!take(1)) return bad_number(flag, i + 1 < argc ? argv[i + 1] : "");
      opts.queue_max = static_cast<int>(v);
    } else if (flag == "--client-quota") {
      if (!take(1)) return bad_number(flag, i + 1 < argc ? argv[i + 1] : "");
      opts.client_quota = static_cast<int>(v);
    } else if (flag == "--budget-ms") {
      if (!take(0)) return bad_number(flag, i + 1 < argc ? argv[i + 1] : "");
      opts.default_budget_ms = v;
    } else if (flag == "--max-budget-ms") {
      if (!take(0)) return bad_number(flag, i + 1 < argc ? argv[i + 1] : "");
      opts.max_budget_ms = v;
    } else if (flag == "--grace-ms") {
      if (!take(0)) return bad_number(flag, i + 1 < argc ? argv[i + 1] : "");
      opts.grace_ms = v;
    } else if (flag == "--max-frame-bytes") {
      if (!take(1)) return bad_number(flag, i + 1 < argc ? argv[i + 1] : "");
      opts.max_frame_bytes = static_cast<std::size_t>(v);
    } else if (flag == "--io-timeout-ms") {
      if (!take(1)) return bad_number(flag, i + 1 < argc ? argv[i + 1] : "");
      opts.io_timeout_ms = v;
    } else if (flag == "--idle-timeout-ms") {
      if (!take(1)) return bad_number(flag, i + 1 < argc ? argv[i + 1] : "");
      opts.idle_timeout_ms = v;
    } else if (flag == "--cache-size") {
      if (!take(1)) return bad_number(flag, i + 1 < argc ? argv[i + 1] : "");
      opts.cache_capacity = static_cast<std::size_t>(v);
    } else if (flag == "--result-retention") {
      if (!take(1)) return bad_number(flag, i + 1 < argc ? argv[i + 1] : "");
      opts.result_retention = static_cast<std::size_t>(v);
    } else if (flag == "--max-connections") {
      if (!take(1)) return bad_number(flag, i + 1 < argc ? argv[i + 1] : "");
      opts.max_connections = static_cast<int>(v);
    } else if (flag == "--journal" && i + 1 < argc && argv[i + 1][0] != '\0') {
      opts.journal_path = argv[++i];
    } else if (flag == "--strict") {
      opts.strict = true;
    } else if (flag == "--jobs") {
      if (!take(1)) return bad_number(flag, i + 1 < argc ? argv[i + 1] : "");
      opts.engine_jobs = static_cast<int>(v);
    } else if (flag == "--max-iterations") {
      if (!take(1)) return bad_number(flag, i + 1 < argc ? argv[i + 1] : "");
      opts.max_iterations = static_cast<int>(v);
    } else if (flag == "--cache-bytes") {
      if (!take(0)) return bad_number(flag, i + 1 < argc ? argv[i + 1] : "");
      opts.cache_bytes = static_cast<std::size_t>(v);
    } else if (flag == "--isolate") {
      opts.isolate = true;
    } else if (flag == "--no-isolate") {
      opts.isolate = false;
    } else if (flag == "--worker-memory-mb") {
      if (!take(0)) return bad_number(flag, i + 1 < argc ? argv[i + 1] : "");
      opts.worker_memory_mb = v;
    } else if (flag == "--worker-stack-mb") {
      if (!take(0)) return bad_number(flag, i + 1 < argc ? argv[i + 1] : "");
      opts.worker_stack_mb = v;
    } else {
      std::cerr << "error: unknown serve option '" << flag << "'\n";
      return usage();
    }
  }
  if (opts.socket_path.empty()) {
    std::cerr << "error: serve requires --socket <path>\n";
    return usage();
  }

  hem::daemon::Server server(opts);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  std::cerr << "[hemcpad] serving on " << opts.socket_path << " (pool " << opts.pool_width
            << ", queue " << opts.queue_max << ")\n";

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
#if defined(SIGPIPE)
  std::signal(SIGPIPE, SIG_IGN);  // peer resets are per-connection events
#endif

  // Signal pump: first signal drains gracefully, a second one force-stops.
  std::sig_atomic_t seen = 0;
  while (!server.stopped()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (g_signals != seen) {
      seen = g_signals;
      if (seen == 1) {
        std::cerr << "[hemcpad] shutdown requested: draining\n";
        server.request_drain();
      } else {
        std::cerr << "[hemcpad] second signal: forcing shutdown\n";
        server.request_force_stop();
      }
    }
  }
  const int code = server.wait();
  std::cerr << "[hemcpad] exit " << code << (code == 0 ? " (clean drain)" : " (forced)") << "\n";
  return code;
}

// ---- client mode ----------------------------------------------------------

struct ClientArgs {
  std::string socket_path;
  std::string operand;  ///< config file or job id
  long long budget_ms = 0;
  long long timeout_ms = 60'000;
  long long retries = 3;
  std::string client_name;
  std::string label;
  bool wait = false;
  bool detach = false;
  bool force = false;
};

int parse_client_args(int argc, char** argv, int first, bool needs_operand, ClientArgs& out) {
  int pos_seen = 0;
  for (int i = first; i < argc; ++i) {
    const std::string flag = argv[i];
    long long v = 0;
    const auto take = [&](long long min_value) {
      if (i + 1 >= argc || !parse_ll(argv[i + 1], v) || v < min_value) return false;
      i += 1;
      return true;
    };
    if (flag == "--socket" && i + 1 < argc && argv[i + 1][0] != '\0') {
      out.socket_path = argv[++i];
    } else if (flag == "--budget-ms") {
      if (!take(0)) return bad_number(flag, i + 1 < argc ? argv[i + 1] : "");
      out.budget_ms = v;
    } else if (flag == "--timeout-ms") {
      if (!take(0)) return bad_number(flag, i + 1 < argc ? argv[i + 1] : "");
      out.timeout_ms = v;
    } else if (flag == "--retries") {
      if (!take(0)) return bad_number(flag, i + 1 < argc ? argv[i + 1] : "");
      out.retries = v;
    } else if (flag == "--client" && i + 1 < argc && argv[i + 1][0] != '\0') {
      out.client_name = argv[++i];
    } else if (flag == "--label" && i + 1 < argc && argv[i + 1][0] != '\0') {
      out.label = argv[++i];
    } else if (flag == "--wait") {
      out.wait = true;
    } else if (flag == "--detach") {
      out.detach = true;
    } else if (flag == "--force") {
      out.force = true;
    } else if (!flag.empty() && flag[0] != '-' && pos_seen == 0) {
      out.operand = flag;
      pos_seen = 1;
    } else {
      std::cerr << "error: unknown option '" << flag << "'\n";
      return usage();
    }
  }
  if (out.socket_path.empty()) {
    std::cerr << "error: --socket <path> is required\n";
    return usage();
  }
  if (needs_operand && out.operand.empty()) {
    std::cerr << "error: missing operand\n";
    return usage();
  }
  return 0;
}

/// Map a terminal result JSON to the client exit-code table.
int result_exit_code(const std::string& json) {
  const std::string state = hem::daemon::json_find(json, "state");
  if (state == "done")
    return hem::daemon::json_find(json, "degraded") == "true" ? 4 : 0;
  if (state == "failed") return 2;
  return 5;  // cancelled, abandoned
}

int run_client(const std::string& verb, int argc, char** argv) {
  const bool needs_operand = verb == "submit" || verb == "status" || verb == "result" ||
                             verb == "cancel";
  ClientArgs args;
  if (const int rc = parse_client_args(argc, argv, 2, needs_operand, args); rc != 0) return rc;

  try {
    hem::daemon::Client client(args.socket_path, args.timeout_ms + 5000,
                               static_cast<int>(args.retries));
    std::string response;
    if (verb == "submit") {
      std::ifstream in(args.operand, std::ios::binary);
      if (!in) {
        std::cerr << "error: cannot read config file '" << args.operand << "'\n";
        return 3;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      std::vector<std::pair<std::string, std::string>> kv;
      if (args.budget_ms > 0) kv.emplace_back("budget_ms", std::to_string(args.budget_ms));
      if (!args.client_name.empty()) kv.emplace_back("client", args.client_name);
      if (!args.label.empty()) kv.emplace_back("label", args.label);
      if (args.detach) kv.emplace_back("detach", "1");
      response = client.submit(buf.str(), kv);
      std::cout << response << "\n";
      if (hem::daemon::json_find(response, "ok") != "true") return 5;
      if (args.wait) {
        const std::string id = hem::daemon::json_find(response, "id");
        long long idv = 0;
        if (!parse_ll(id.c_str(), idv)) return 2;
        const std::string result =
            client.wait_result(static_cast<std::uint64_t>(idv), args.timeout_ms);
        std::cout << result << "\n";
        if (hem::daemon::json_find(result, "ok") != "true") return 5;
        return result_exit_code(result);
      }
      return 0;
    }
    if (verb == "status" || verb == "result" || verb == "cancel") {
      long long idv = 0;
      if (!parse_ll(args.operand.c_str(), idv) || idv < 0) {
        std::cerr << "error: '" << args.operand << "' is not a job id\n";
        return 3;
      }
      if (verb == "status")
        response = client.request("status", {{"id", args.operand}});
      else if (verb == "cancel")
        response = client.cancel(static_cast<std::uint64_t>(idv));
      else
        response = client.wait_result(static_cast<std::uint64_t>(idv), args.timeout_ms);
      std::cout << response << "\n";
      if (hem::daemon::json_find(response, "ok") != "true") return 5;
      if (verb == "result") return result_exit_code(response);
      return 0;
    }
    if (verb == "stats") {
      std::cout << client.stats() << "\n";
      return 0;
    }
    if (verb == "ping") {
      response = client.ping();
      std::cout << response << "\n";
      return hem::daemon::json_find(response, "ok") == "true" ? 0 : 5;
    }
    if (verb == "drain") {
      std::cout << client.drain(args.force) << "\n";
      return 0;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 3;
  }
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string verb = argv[1];
  if (verb == "serve") return run_serve(argc, argv);
  if (verb == "submit" || verb == "status" || verb == "result" || verb == "cancel" ||
      verb == "stats" || verb == "ping" || verb == "drain")
    return run_client(verb, argc, argv);
  return usage();
}
