// hemchaos — chaos harness for the crash-only analysis pipeline.
//
// Usage:
//   hemchaos [--scenario all|kill-storm|alloc-storm|torn-journal|daemon-smoke]
//            [--configs N] [--crashers K] [--seed S] [--batch-jobs N]
//            [--kill-interval-ms M] [--out-dir D] [--keep]
//
// Each scenario injects one class of real-world failure into a live run and
// checks the crash-only invariants the batch runner and the daemon promise:
//
//   kill-storm    SIGKILLs random live worker processes while a fleet runs.
//                 Invariants: the scheduler survives every kill, the journal
//                 stays loadable, every job reaches a terminal state, and
//                 the merged-CSV rows of jobs that still completed are
//                 bit-identical to an undisturbed baseline run.
//
//   alloc-storm   mixes allocation-bomb configs (`option inject_fault=oom`)
//                 into the fleet under a tight per-worker RLIMIT_AS.
//                 Invariants: the bombs die in their own processes and end
//                 quarantined (`poisoned`), clean jobs finish with baseline
//                 rows, exit-code precedence holds.
//
//   torn-journal  truncates a real journal at every byte offset.
//                 Invariants: Journal::load() recovers the complete-record
//                 prefix at every cut (never throws, quarantines the torn
//                 tail), and a --resume from a torn journal reproduces the
//                 baseline CSV byte-for-byte.
//
//   daemon-smoke  boots an in-process hemcpad server, SIGKILLs a worker
//                 mid-drain. Invariants: the daemon keeps serving, drains
//                 to exit 0, and its journal replays.
//
// Exit status (unified table, docs/robustness.md):
//   0  every invariant held
//   1  at least one invariant violated
//   3  usage error
//
// The harness runs everything in-process (forking workers like the real
// tools do), so an ASan/UBSan build of hemchaos checks the supervision
// paths for leaks and UB under fire — that is what CI's chaos-robustness
// job does.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "daemon/client.hpp"
#include "daemon/protocol.hpp"
#include "daemon/server.hpp"
#include "exec/batch_runner.hpp"
#include "exec/journal.hpp"
#include "exec/worker_process.hpp"
#include "scenarios/synth.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/types.h>
#include <unistd.h>
#define HEMCHAOS_POSIX 1
#else
#define HEMCHAOS_POSIX 0
#endif

namespace {

namespace fs = std::filesystem;

struct Args {
  std::string scenario = "all";
  int configs = 30;
  int crashers = 3;
  std::uint64_t seed = 1;
  int batch_jobs = 4;
  long kill_interval_ms = 25;
  std::string out_dir;
  bool keep = false;
};

int usage() {
  std::cerr << "usage: hemchaos [--scenario all|kill-storm|alloc-storm|torn-journal|"
               "daemon-smoke]\n"
               "                [--configs N] [--crashers K] [--seed S] [--batch-jobs N]\n"
               "                [--kill-interval-ms M] [--out-dir D] [--keep]\n";
  return 3;
}

int g_violations = 0;

/// Invariant check: prints PASS/FAIL and tallies failures for the exit code.
void check(bool ok, const std::string& what) {
  if (ok) {
    std::cout << "  ok    " << what << "\n";
  } else {
    ++g_violations;
    std::cout << "  FAIL  " << what << "\n";
  }
}

/// Small, fast, deterministic per-index analysis config.
std::string quick_config(std::uint64_t seed, int index) {
  // A synthesised multi-resource system keeps the analysis non-trivial
  // (layered gateway chains) while staying fast; seed+index makes every
  // config distinct so journal fingerprints never collide.
  hem::scenarios::SynthParams p;
  p.seed = seed * 1000 + static_cast<std::uint64_t>(index);
  p.resources = 3 + index % 4;
  p.tasks = p.resources * 3;
  p.layers = 1 + index % 3;
  p.utilization = 0.35;
  return hem::scenarios::to_config_text(hem::scenarios::build_synth_system(p));
}

/// Slow config for the kill-storm: analysis time grows with the jitter
/// (hundreds of milliseconds), so workers live long enough to be murdered.
/// Distinct jitters give distinct fingerprints and results.
std::string slow_config(int index) {
  return "resource R spp\n"
         "source s sem period=1000 jitter=" + std::to_string(600'000 + 1'000 * index) +
         "\n"
         "task H resource=R priority=2 cet=900\n"
         "activate H from=s\n"
         "option overload_check=off\n";
}

std::string crasher_config(const std::string& fault) {
  return "option inject_fault=" + fault +
         "\n"
         "resource CPU1 spp\n"
         "source s1 periodic period=250\n"
         "task T1 resource=CPU1 priority=1 cet=24\n"
         "activate T1 from=s1\n";
}

/// Write a fleet of `n` configs, the first `crashers` of them carrying the
/// injected fault, and return their paths in manifest order.
std::vector<std::string> write_fleet(const fs::path& dir, const Args& args,
                                     const std::string& fault, bool slow = false) {
  fs::create_directories(dir);
  std::vector<std::string> configs;
  for (int i = 0; i < args.configs; ++i) {
    const bool crash = i < args.crashers;
    std::ostringstream name;
    name << (i < 10 ? "0" : "") << i << (crash ? "_crash" : "_ok") << ".hemcpa";
    const fs::path p = dir / name.str();
    std::ofstream out(p, std::ios::binary);
    out << (crash ? crasher_config(fault) : slow ? slow_config(i) : quick_config(args.seed, i));
    configs.push_back(p.string());
  }
  return configs;
}

hem::exec::BatchOptions batch_options(const Args& args, const std::string& journal) {
  hem::exec::BatchOptions opt;
  opt.parallel_jobs = args.batch_jobs;
  opt.journal_path = journal;
  opt.crash_backoff_ms = 5;  // chaos runs should not sleep through the storm
  return opt;
}

std::string csv_of(const hem::exec::BatchReport& report) {
  std::ostringstream os;
  report.write_csv(os);
  return os.str();
}

/// Per-config CSV rows of the jobs that completed.
std::map<std::string, std::vector<std::string>> done_rows(const hem::exec::BatchReport& r) {
  std::map<std::string, std::vector<std::string>> rows;
  for (const hem::exec::JobResult& j : r.jobs)
    if (j.state == hem::exec::JobState::kDone) rows[j.path] = j.rows;
  return rows;
}

bool all_terminal(const hem::exec::BatchReport& r) {
  for (const hem::exec::JobResult& j : r.jobs)
    if (j.state == hem::exec::JobState::kQueued || j.state == hem::exec::JobState::kRunning)
      return false;
  return true;
}

// ---- kill-storm ----------------------------------------------------------

int scenario_kill_storm(const Args& args, const fs::path& dir) {
  std::cout << "scenario kill-storm: " << args.configs << " configs, "
            << args.crashers << " crashers, SIGKILL every " << args.kill_interval_ms
            << " ms\n";
  const auto configs = write_fleet(dir / "fleet", args, "segv", /*slow=*/true);

  // Baseline: no storm.  Crashers poison deterministically; everything
  // else completes.
  hem::exec::BatchReport baseline =
      hem::exec::BatchRunner(configs, batch_options(args, (dir / "baseline.journal").string()))
          .run();
  const auto baseline_rows = done_rows(baseline);
  check(static_cast<int>(baseline_rows.size()) == args.configs - args.crashers,
        "baseline: every clean config completed");

#if HEMCHAOS_POSIX
  // Storm run: a chaos thread SIGKILLs one live worker at a fixed cadence.
  // The kernel-style kill is indistinguishable from an OOM kill, so the
  // supervisor classifies it as resource exhaustion and respawns/poisons.
  std::atomic<bool> storming{true};
  long kills = 0;
  std::thread chaos([&] {
    while (storming.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(args.kill_interval_ms));
      const std::vector<int> pids = hem::exec::WorkerProcess::live_pids();
      if (!pids.empty()) {
        ::kill(static_cast<pid_t>(pids[kills % static_cast<long>(pids.size())]), SIGKILL);
        ++kills;
      }
    }
  });
  hem::exec::BatchReport stormed =
      hem::exec::BatchRunner(configs, batch_options(args, (dir / "storm.journal").string()))
          .run();
  storming.store(false);
  chaos.join();
  std::cout << "  (storm delivered " << kills << " SIGKILLs)\n";

  check(all_terminal(stormed), "storm: every job reached a terminal state");
  // Jobs that completed despite the storm carry bit-identical rows.
  bool rows_match = true;
  for (const auto& [path, rows] : done_rows(stormed)) {
    const auto base = baseline_rows.find(path);
    if (base == baseline_rows.end() || base->second != rows) rows_match = false;
  }
  check(rows_match, "storm: surviving jobs' rows are bit-identical to baseline");
  hem::exec::Journal journal((dir / "storm.journal").string());
  bool loadable = true;
  try {
    (void)journal.load();
  } catch (const std::exception&) {
    loadable = false;
  }
  check(loadable, "storm: journal stays loadable");
  check(!journal.entries().empty(), "storm: journal carries terminal records");
#else
  std::cout << "  (no POSIX process isolation: storm skipped)\n";
#endif
  return 0;
}

// ---- alloc-storm -----------------------------------------------------------

int scenario_alloc_storm(const Args& args, const fs::path& dir) {
  std::cout << "scenario alloc-storm: " << args.crashers
            << " allocation bombs under a 256 MiB worker cap\n";
  const auto configs = write_fleet(dir / "fleet", args, "oom");

  hem::exec::BatchOptions opt = batch_options(args, (dir / "alloc.journal").string());
  opt.worker_memory_mb = 256;  // the bomb dies on RLIMIT_AS, not the host
  hem::exec::BatchReport report = hem::exec::BatchRunner(configs, opt).run();

  check(all_terminal(report), "alloc: every job reached a terminal state");
  int poisoned = 0;
  int done = 0;
  for (const hem::exec::JobResult& j : report.jobs) {
    if (j.state == hem::exec::JobState::kPoisoned) ++poisoned;
    if (j.state == hem::exec::JobState::kDone) ++done;
  }
  check(poisoned == args.crashers, "alloc: every allocation bomb was quarantined");
  check(done == args.configs - args.crashers, "alloc: every clean config completed");
  check(report.exit_code() == 5, "alloc: poisoned jobs dominate the exit code");
  return 0;
}

// ---- torn-journal ----------------------------------------------------------

int scenario_torn_journal(const Args& args, const fs::path& dir) {
  // A small fleet is enough: the sweep cost is offsets x load, and the
  // resume equivalence check re-runs the batch per sampled offset.
  Args small = args;
  small.configs = std::min(args.configs, 6);
  small.crashers = 0;
  std::cout << "scenario torn-journal: " << small.configs
            << " configs, truncating at every byte offset\n";
  const auto configs = write_fleet(dir / "fleet", small, "segv");

  const std::string journal_path = (dir / "torn.journal").string();
  hem::exec::BatchReport baseline =
      hem::exec::BatchRunner(configs, batch_options(small, journal_path)).run();
  const std::string baseline_csv = csv_of(baseline);

  std::ifstream in(journal_path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  in.close();

  bool all_recover = true;
  bool prefix_exact = true;
  std::vector<std::size_t> resume_cuts;
  std::size_t last_kept = static_cast<std::size_t>(-1);
  for (std::size_t cut = 0; cut < text.size(); ++cut) {
    const fs::path torn = dir / "cut.journal";
    {
      std::ofstream out(torn, std::ios::binary | std::ios::trunc);
      out << text.substr(0, cut);
    }
    hem::exec::Journal j(torn.string());
    try {
      (void)j.load();
    } catch (const std::exception&) {
      all_recover = false;
      break;
    }
    const auto& rec = j.last_recovery();
    if (rec.valid_bytes > cut) prefix_exact = false;
    // Sample one cut per distinct salvaged-prefix size for the (expensive)
    // resume equivalence check below.
    if (j.entries().size() != last_kept) {
      last_kept = j.entries().size();
      resume_cuts.push_back(cut);
    }
    fs::remove(torn);
    fs::remove(torn.string() + ".torn");
  }
  check(all_recover, "torn: Journal::load() recovers at every byte offset");
  check(prefix_exact, "torn: recovery never claims bytes past the cut");

  bool resume_identical = true;
  for (const std::size_t cut : resume_cuts) {
    const std::string resumed_journal = (dir / "resume.journal").string();
    {
      std::ofstream out(resumed_journal, std::ios::binary | std::ios::trunc);
      out << text.substr(0, cut);
    }
    hem::exec::BatchOptions opt = batch_options(small, resumed_journal);
    opt.resume = true;
    hem::exec::BatchReport resumed = hem::exec::BatchRunner(configs, opt).run();
    if (csv_of(resumed) != baseline_csv) resume_identical = false;
    fs::remove(resumed_journal);
    fs::remove(resumed_journal + ".torn");
  }
  std::cout << "  (" << resume_cuts.size() << " distinct salvage points resumed)\n";
  check(resume_identical, "torn: --resume from any tear reproduces the baseline CSV");
  return 0;
}

// ---- daemon-smoke ----------------------------------------------------------

int scenario_daemon_smoke(const Args& args, const fs::path& dir) {
  (void)args;
#if HEMCHAOS_POSIX
  std::cout << "scenario daemon-smoke: SIGKILL a worker mid-drain\n";
  fs::create_directories(dir);
  hem::daemon::ServerOptions opts;
  opts.socket_path = (dir / ("chaos." + std::to_string(::getpid()) + ".sock")).string();
  opts.journal_path = (dir / "daemon.journal").string();
  opts.pool_width = 2;
  opts.default_budget_ms = 30'000;
  hem::daemon::Server server(opts);
  server.start();
  {
    hem::daemon::Client client(server.socket_path(), /*io_timeout_ms=*/30'000);

    // A handful of slow jobs (analysis time grows with jitter) keeps
    // workers alive long enough to be murdered mid-drain.
    std::vector<std::uint64_t> ids;
    for (int i = 0; i < 4; ++i) {
      const std::string slow =
          "resource R spp\n"
          "source s sem period=1000 jitter=" + std::to_string(2'000'000 + i) +
          "\n"
          "task H resource=R priority=2 cet=900\n"
          "activate H from=s\n"
          "option overload_check=off\n";
      const std::string sub = client.submit(slow, {{"label", "slow" + std::to_string(i)}});
      check(hem::daemon::json_find(sub, "ok") == "true", "daemon: submit accepted");
      ids.push_back(std::stoull(hem::daemon::json_find(sub, "id")));
    }

    // Wait for a live worker, ask for a drain, then kill the worker while
    // the daemon is finishing its queue.
    std::vector<int> pids;
    for (int spin = 0; spin < 500 && pids.empty(); ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      pids = hem::exec::WorkerProcess::live_pids();
    }
    check(!pids.empty(), "daemon: a worker process came up");
    (void)client.drain();
    if (!pids.empty()) ::kill(static_cast<pid_t>(pids[0]), SIGKILL);

    // The daemon must keep answering protocol requests while draining.
    check(hem::daemon::json_find(client.ping(), "ok") == "true",
          "daemon: still answers ping after the kill");
  }
  const int exit_code = server.wait();
  check(exit_code == 0, "daemon: drained to exit 0 (got " + std::to_string(exit_code) + ")");

  hem::exec::Journal journal(opts.journal_path);
  bool loadable = true;
  try {
    (void)journal.load();
  } catch (const std::exception&) {
    loadable = false;
  }
  check(loadable, "daemon: journal replays after the chaos");
#else
  (void)dir;
  std::cout << "scenario daemon-smoke skipped: no POSIX process isolation\n";
#endif
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string(argv[++i]);
    };
    try {
      if (arg == "--scenario") {
        const auto v = value();
        if (!v) return usage();
        args.scenario = *v;
      } else if (arg == "--configs") {
        const auto v = value();
        if (!v) return usage();
        args.configs = std::stoi(*v);
      } else if (arg == "--crashers") {
        const auto v = value();
        if (!v) return usage();
        args.crashers = std::stoi(*v);
      } else if (arg == "--seed") {
        const auto v = value();
        if (!v) return usage();
        args.seed = std::stoull(*v);
      } else if (arg == "--batch-jobs") {
        const auto v = value();
        if (!v) return usage();
        args.batch_jobs = std::stoi(*v);
      } else if (arg == "--kill-interval-ms") {
        const auto v = value();
        if (!v) return usage();
        args.kill_interval_ms = std::stol(*v);
      } else if (arg == "--out-dir") {
        const auto v = value();
        if (!v) return usage();
        args.out_dir = *v;
      } else if (arg == "--keep") {
        args.keep = true;
      } else {
        std::cerr << "error: unknown flag '" << arg << "'\n";
        return usage();
      }
    } catch (const std::exception&) {
      return usage();
    }
  }
  if (args.configs < 1 || args.crashers < 0 || args.crashers > args.configs ||
      args.batch_jobs < 1 || args.kill_interval_ms < 1)
    return usage();
  const bool all = args.scenario == "all";
  if (!all && args.scenario != "kill-storm" && args.scenario != "alloc-storm" &&
      args.scenario != "torn-journal" && args.scenario != "daemon-smoke")
    return usage();

  fs::path dir;
  if (args.out_dir.empty()) {
    dir = fs::temp_directory_path() / ("hemchaos-" +
#if HEMCHAOS_POSIX
                                       std::to_string(::getpid())
#else
                                       std::string("run")
#endif
                                      );
  } else {
    dir = args.out_dir;
  }
  fs::create_directories(dir);
  std::cout << "hemchaos: scratch dir " << dir.string() << "\n";

  // A scenario that escapes with an exception is itself a failed invariant
  // (the harness must survive whatever it injects), not a harness abort.
  const auto run_scenario = [&](const char* name, int (*fn)(const Args&, const fs::path&),
                                const fs::path& scratch) {
    try {
      (void)fn(args, scratch);
    } catch (const std::exception& e) {
      check(false, std::string(name) + ": escaped with exception: " + e.what());
    }
  };
  if (all || args.scenario == "kill-storm")
    run_scenario("kill-storm", scenario_kill_storm, dir / "kill");
  if (all || args.scenario == "alloc-storm")
    run_scenario("alloc-storm", scenario_alloc_storm, dir / "alloc");
  if (all || args.scenario == "torn-journal")
    run_scenario("torn-journal", scenario_torn_journal, dir / "torn");
  if (all || args.scenario == "daemon-smoke")
    run_scenario("daemon-smoke", scenario_daemon_smoke, dir / "daemon");

  if (g_violations == 0) {
    if (!args.keep) {
      std::error_code ec;
      fs::remove_all(dir, ec);
    }
    std::cout << "hemchaos: all invariants held\n";
    return 0;
  }
  std::cout << "hemchaos: " << g_violations << " invariant violation(s); artifacts kept in "
            << dir.string() << "\n";
  return 1;
}
