// hemfuzz — differential verification driver.
//
// Usage:
//   hemfuzz [--seeds A..B|N] [--budget-ms M] [--mutations K] [--out-dir D]
//           [--inject KIND] [--no-shrink] [--sim-horizon T] [--jobs N]
//
// For every seed, synthesises a system (src/scenarios/synth), serialises it
// to `.hemcpa` text, derives K mutated variants (verify/shrink.hpp's
// mutate_config: priority/jitter/dmin/cet perturbations, task
// drop/duplicate, packed-frame surgery), and runs the full oracle registry
// (verify/differential.hpp) on every variant that parses: dominance,
// determinism, compilation, degradation.  Variants the engine itself
// rejects (analysis preconditions a lexical mutation can break, e.g.
// duplicate priorities) are counted and skipped — every oracle would see
// the same exception, which is agreement, not a differential.  Failures
// are bucketed by stable
// fingerprint; the first hit of each bucket is minimised with the ddmin
// shrinker (re-checking the failing oracle after every removal) and written
// to a reproducer file.
//
// Options:
//   --seeds A..B     inclusive seed range (default 1..20); a single number
//                    N means 1..N
//   --budget-ms M    wall-clock budget for the whole run; 0 = unlimited
//                    (default).  Checked between candidates, so the run
//                    finishes the candidate in flight.
//   --mutations K    mutated variants per seed (default 4)
//   --out-dir D      directory for reproducer files (default ".")
//   --inject KIND    replace every external model with a deliberately
//                    broken node (harness self-test; kinds listed by
//                    verify::broken_model_kinds).  Disables the lint
//                    cross-check: the text no longer describes the system.
//   --no-shrink      emit reproducers without minimising them
//   --sim-horizon T  simulated ticks for the dominance oracle (default 50000)
//   --jobs N         parallel arm of the determinism oracle (default 8)
//
// Exit status (unified table, docs/robustness.md):
//   0  every oracle on every candidate agreed
//   1  at least one oracle finding (reproducers written)
//   3  usage error
//
// Determinism: same arguments => same candidates, same findings, same
// bucket ids, same reproducer bytes.  CI runs two passes and diffs them.

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "model/cpa_engine.hpp"
#include "model/textual_config.hpp"
#include "scenarios/synth.hpp"
#include "verify/differential.hpp"
#include "verify/shrink.hpp"

namespace {

using hem::verify::DiffInput;
using hem::verify::DiffOptions;
using hem::verify::Oracle;
using hem::verify::OracleFinding;
using hem::verify::OracleRegistry;

struct Args {
  std::uint64_t seed_lo = 1;
  std::uint64_t seed_hi = 20;
  long budget_ms = 0;
  int mutations = 4;
  std::string out_dir = ".";
  std::string inject;
  bool shrink = true;
  hem::Time sim_horizon = 50'000;
  int jobs = 8;
};

int usage() {
  std::cerr << "usage: hemfuzz [--seeds A..B|N] [--budget-ms M] [--mutations K]\n"
               "               [--out-dir D] [--inject KIND] [--no-shrink]\n"
               "               [--sim-horizon T] [--jobs N]\n";
  return 3;
}

bool parse_seeds(const std::string& spec, Args& args) {
  try {
    const std::size_t dots = spec.find("..");
    if (dots == std::string::npos) {
      args.seed_lo = 1;
      args.seed_hi = std::stoull(spec);
    } else {
      args.seed_lo = std::stoull(spec.substr(0, dots));
      args.seed_hi = std::stoull(spec.substr(dots + 2));
    }
  } catch (const std::exception&) {
    return false;
  }
  return args.seed_lo >= 1 && args.seed_lo <= args.seed_hi;
}

/// Seed-indexed synthesiser parameters: small systems, varied shape, packed
/// COM frames on even seeds.  Pure arithmetic — no hidden RNG — so the
/// candidate set is reproducible from the seed range alone.
hem::scenarios::SynthParams params_for(std::uint64_t seed) {
  hem::scenarios::SynthParams p;
  p.seed = seed;
  p.resources = static_cast<int>(3 + seed % 6);
  p.tasks = p.resources * static_cast<int>(2 + seed % 3);
  p.layers = static_cast<int>(1 + seed % 3);
  p.utilization = 0.3 + 0.05 * static_cast<double>(seed % 9);
  p.packed_permille = seed % 2 == 0 ? 250 : 0;
  return p;
}

std::string hex16(std::uint64_t v) {
  std::ostringstream os;
  os << std::hex << std::setw(16) << std::setfill('0') << v;
  return os.str();
}

/// Run one oracle with the registry's exception-to-finding convention.
std::vector<OracleFinding> run_one(const Oracle& oracle, const DiffInput& in,
                                   const DiffOptions& opts) {
  std::vector<OracleFinding> findings;
  try {
    oracle.check(in, opts, findings);
  } catch (const std::exception& e) {
    findings.push_back({oracle.name(), "exception", e.what()});
  }
  return findings;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string(argv[++i]);
    };
    try {
      if (arg == "--seeds") {
        const auto v = value();
        if (!v || !parse_seeds(*v, args)) return usage();
      } else if (arg == "--budget-ms") {
        const auto v = value();
        if (!v) return usage();
        args.budget_ms = std::stol(*v);
      } else if (arg == "--mutations") {
        const auto v = value();
        if (!v) return usage();
        args.mutations = std::stoi(*v);
      } else if (arg == "--out-dir") {
        const auto v = value();
        if (!v) return usage();
        args.out_dir = *v;
      } else if (arg == "--inject") {
        const auto v = value();
        if (!v) return usage();
        args.inject = *v;
      } else if (arg == "--no-shrink") {
        args.shrink = false;
      } else if (arg == "--sim-horizon") {
        const auto v = value();
        if (!v) return usage();
        args.sim_horizon = std::stol(*v);
      } else if (arg == "--jobs") {
        const auto v = value();
        if (!v) return usage();
        args.jobs = std::stoi(*v);
      } else {
        std::cerr << "error: unknown flag '" << arg << "'\n";
        return usage();
      }
    } catch (const std::exception&) {
      return usage();
    }
  }
  if (args.mutations < 0 || args.jobs < 1 || args.sim_horizon < 1) return usage();
  if (!args.inject.empty()) {
    try {
      (void)hem::verify::make_broken_model(args.inject);
    } catch (const std::invalid_argument& e) {
      std::cerr << "error: " << e.what() << " (kinds:";
      for (const std::string& kind : hem::verify::broken_model_kinds()) std::cerr << ' ' << kind;
      std::cerr << ")\n";
      return 3;
    }
  }

  DiffOptions opts;
  opts.sim_horizon = args.sim_horizon;
  opts.wide_jobs = args.jobs;
  const OracleRegistry registry = OracleRegistry::with_builtin_oracles();

  // Parse + optional fault injection; nullopt when the text does not
  // describe a valid system (mutations are lexical and may overshoot).
  const auto realise = [&](const std::string& text) -> std::optional<hem::cpa::System> {
    try {
      std::istringstream in(text);
      hem::cpa::System system = hem::cpa::parse_system_config(in).system;
      if (!args.inject.empty()) hem::verify::inject_broken_models(system, args.inject);
      return system;
    } catch (const std::exception&) {
      return std::nullopt;
    }
  };

  const auto start = std::chrono::steady_clock::now();
  const auto budget_exhausted = [&] {
    if (args.budget_ms <= 0) return false;
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(std::chrono::steady_clock::now() -
                                                              start);
    return elapsed.count() >= args.budget_ms;
  };

  std::map<std::uint64_t, OracleFinding> buckets;  // first hit per bucket
  long candidates = 0;
  long parse_rejects = 0;
  long engine_rejects = 0;
  bool out_of_budget = false;

  for (std::uint64_t seed = args.seed_lo; seed <= args.seed_hi && !out_of_budget; ++seed) {
    std::string base_text;
    try {
      base_text =
          hem::scenarios::to_config_text(hem::scenarios::build_synth_system(params_for(seed)));
    } catch (const std::exception& e) {
      std::cerr << "error: seed " << seed << " failed to synthesise: " << e.what() << "\n";
      return 3;  // the generator/serialiser pair must always produce valid text
    }

    for (int variant = 0; variant <= args.mutations; ++variant) {
      if (budget_exhausted()) {
        out_of_budget = true;
        break;
      }
      const std::string text =
          variant == 0 ? base_text
                       : hem::verify::mutate_config(base_text, seed * 1000 + variant);
      ++candidates;
      const std::optional<hem::cpa::System> system = realise(text);
      if (!system) {
        ++parse_rejects;
        continue;
      }
      // Pre-flight: a candidate the engine rejects outright (a mutation can
      // produce parseable text that violates an analysis precondition, e.g.
      // duplicate priorities on one resource) is not a differential target —
      // every oracle arm would throw the same way.  Skipped under --inject,
      // where engine exceptions on broken models ARE the expected signal.
      if (args.inject.empty()) {
        try {
          hem::cpa::EngineOptions preflight;
          preflight.jobs = 1;
          preflight.max_iterations = opts.max_iterations;
          (void)hem::cpa::CpaEngine(*system, preflight).run();
        } catch (const std::exception&) {
          ++engine_rejects;
          continue;
        }
      }
      DiffInput input;
      input.system = &*system;
      if (args.inject.empty()) input.config_text = text;

      for (const OracleFinding& finding : registry.run(input, opts)) {
        const std::uint64_t bucket = finding.bucket();
        if (buckets.count(bucket) != 0) continue;
        buckets.emplace(bucket, finding);

        std::string repro_text = text;
        if (args.shrink) {
          const auto still_fails = [&](const std::string& candidate) {
            const std::optional<hem::cpa::System> shrunk = realise(candidate);
            if (!shrunk) return false;
            DiffInput sin;
            sin.system = &*shrunk;
            if (args.inject.empty()) sin.config_text = candidate;
            const Oracle* oracle = registry.find(finding.oracle);
            if (oracle == nullptr) return false;
            for (const OracleFinding& f : run_one(*oracle, sin, opts))
              if (f.bucket() == bucket) return true;
            return false;
          };
          repro_text = hem::verify::shrink_config(text, still_fails).text;
        }

        const std::filesystem::path path =
            std::filesystem::path(args.out_dir) /
            ("repro-" + finding.oracle + "-" + hex16(bucket) + ".hemcpa");
        std::error_code ec;
        std::filesystem::create_directories(args.out_dir, ec);
        std::ofstream repro(path);
        repro << "# hemfuzz reproducer\n"
              << "# oracle: " << finding.oracle << "\n"
              << "# fingerprint: " << finding.fingerprint << "\n"
              << "# bucket: " << hex16(bucket) << "\n"
              << "# seed: " << seed << " variant: " << variant << "\n";
        if (!args.inject.empty()) repro << "# inject: " << args.inject << "\n";
        repro << "# detail: " << finding.detail << "\n" << repro_text;

        std::cout << "bucket=" << hex16(bucket) << " oracle=" << finding.oracle
                  << " fingerprint=" << finding.fingerprint << " seed=" << seed
                  << " variant=" << variant << " repro=" << path.string() << "\n";
      }
    }
  }

  std::cout << "hemfuzz: " << candidates << " candidate(s) from seeds " << args.seed_lo << ".."
            << args.seed_hi << ", " << parse_rejects << " parse reject(s), " << engine_rejects
            << " engine reject(s), " << buckets.size() << " failure bucket(s)"
            << (out_of_budget ? " [budget exhausted]" : "") << "\n";
  return buckets.empty() ? 0 : 1;
}
