// hemcpa — command-line compositional analysis.
//
// Usage:
//   hemcpa <config> [--eta <task> <dt_max> <step>] [--delta <task> <n_max>]
//          [--csv] [--sim <horizon> <seed>]
//
// --sim executes the system with the discrete-event simulator (worst-case
// burst stimulus) and prints observed vs analytic worst-case responses.
//
// Reads a system description (see src/model/textual_config.hpp for the
// format), runs the global analysis, prints the report, evaluates any
// `deadline` constraints from the file, and optionally dumps eta+/delta
// curves of a task's activation stream.
//
// Exit status: 0 analysis converged and all deadlines met; 1 deadline
// missed; 2 analysis failed; 3 usage/configuration error.

#include <cstring>
#include <iostream>
#include <string>

#include "core/errors.hpp"
#include "core/model_io.hpp"
#include "io/csv.hpp"
#include "model/sensitivity.hpp"
#include "model/textual_config.hpp"
#include "sim/system_simulator.hpp"

namespace {

int usage() {
  std::cerr << "usage: hemcpa <config> [--eta <task> <dt_max> <step>] "
               "[--delta <task> <n_max>]\n";
  return 3;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hem;

  if (argc < 2) return usage();

  cpa::ParsedSystem parsed;
  try {
    parsed = cpa::parse_system_config_file(argv[1]);
  } catch (const std::invalid_argument& e) {
    std::cerr << "configuration error: " << e.what() << "\n";
    return 3;
  }

  cpa::FeasibilityResult result;
  try {
    result = cpa::check_feasible(parsed.system, parsed.deadlines);
  } catch (const std::exception& e) {
    std::cerr << "analysis error: " << e.what() << "\n";
    return 2;
  }
  if (!result.feasible && result.report.tasks.empty()) {
    std::cerr << "analysis failed: " << result.reason << "\n";
    return 2;
  }

  std::cout << result.report.format();

  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    try {
      if (flag == "--eta" && i + 3 < argc) {
        const std::string task = argv[i + 1];
        const Time dt_max = std::stoll(argv[i + 2]);
        const Time step = std::stoll(argv[i + 3]);
        i += 3;
        const auto& model = result.report.task(task).activation;
        std::cout << "\neta+ of '" << task << "' activation:\n"
                  << format_eta_table({sample_eta_plus(*model, task, dt_max, step)});
      } else if (flag == "--csv") {
        std::cout << "\n";
        io::write_report_csv(std::cout, result.report);
      } else if (flag == "--sim" && i + 2 < argc) {
        sim::SystemSimulator::Options opts;
        opts.horizon = std::stoll(argv[i + 1]);
        opts.seed = static_cast<std::uint64_t>(std::stoll(argv[i + 2]));
        opts.mode = sim::GenMode::kEarliest;
        i += 2;
        const auto simres = sim::SystemSimulator(parsed.system, opts).run();
        std::cout << "\nsimulation (earliest-burst stimulus, horizon " << opts.horizon
                  << "):\n";
        for (const auto& t : result.report.tasks) {
          const auto& stats = simres.tasks.at(t.name);
          std::cout << "  " << t.name << ": observed " << stats.wcrt << " / bound " << t.wcrt
                    << " (" << stats.responses.size() << " jobs)"
                    << (stats.wcrt > t.wcrt ? "  **VIOLATION**" : "") << "\n";
        }
      } else if (flag == "--delta" && i + 2 < argc) {
        const std::string task = argv[i + 1];
        const Count n_max = std::stoll(argv[i + 2]);
        i += 2;
        const auto& model = result.report.task(task).activation;
        std::cout << "\ndelta curves of '" << task << "' activation:\n"
                  << format_delta_table(*model, n_max);
      } else {
        return usage();
      }
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 3;
    }
  }

  if (!parsed.deadlines.empty()) {
    if (result.feasible) {
      std::cout << "\nall deadlines met\n";
    } else {
      std::cout << "\nDEADLINE VIOLATION: " << result.reason << "\n";
      return 1;
    }
  }
  return 0;
}
