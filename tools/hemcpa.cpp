// hemcpa — command-line compositional analysis.
//
// Usage:
//   hemcpa <config> [options]
//   hemcpa --batch <dir|manifest> [batch options]
//
// Options:
//   --eta <task> <dt_max> <step>   print the eta+ table of a task's activation
//   --delta <task> <n_max>         print delta-/delta+ curves of a task's activation
//   --csv                          append the report as CSV (incl. per-task status)
//   --sim <horizon> <seed>         execute the system with the discrete-event
//                                  simulator (earliest-burst stimulus) and compare
//                                  observed vs analytic worst-case responses
//   --sim-drop <rate>              fault injection: drop each stimulus with
//                                  probability <rate> in [0,1] (requires --sim)
//   --sim-jitter <time>            fault injection: extra uniform arrival delay
//   --sim-burst <count>            fault injection: replicate each arrival
//   --strict                       fail (exit 2) on the first overload/divergence
//                                  instead of degrading to fallback bounds;
//                                  also settable as `option strict=on`
//   --diagnostics                  print the structured diagnostic records
//                                  and any positioned configuration warnings
//   --verify                       after convergence, run the model-algebra
//                                  axiom checker (docs/linting.md) over every
//                                  resolved activation/output model; exit 4
//                                  on any axiom violation
//   --jobs <n>                     worker threads for the per-iteration local
//                                  analyses (>= 1; 0 is rejected); overrides
//                                  `option jobs=<n>` from the configuration.
//                                  Results are identical for every job count.
//   --trace-out <file>             record the analysis as Chrome trace_event
//                                  JSON (open in about:tracing / Perfetto);
//                                  overrides `option trace=<file>`.  The
//                                  analysis results are bit-identical with
//                                  and without tracing.
//   --metrics                      print the observability counter/histogram
//                                  dump (delta-cache hits, busy-window
//                                  fixpoint steps, engine work counters)
//                                  after the report
//
// Batch options (fleet execution; see docs/robustness.md):
//   --out <file>                   merged CSV output (default batch_report.csv);
//                                  the checkpoint journal is <out>.journal
//   --batch-jobs <n>               configs analysed concurrently (default 1)
//   --jobs <n>                     CpaEngine worker threads per job
//   --job-budget-ms <ms>           watchdog wall-clock budget per job
//                                  (soft-cancel; 0 = none)
//   --grace-ms <ms>                soft-cancel -> hard-abandon escalation
//                                  delay (default 2000)
//   --retries <n>                  extra attempts for transient failures
//                                  (default 1)
//   --retry-backoff-ms <ms>        base retry backoff (default 100)
//   --max-iterations <n>           global engine iterations per attempt
//                                  (default 64; raised x4 per retry)
//   --engine-budget-ms <ms>        per-attempt engine wall-clock budget
//   --fixpoint-steps <n>           busy-window fixpoint step limit override
//   --fixpoint-window <ticks>      busy-window length limit override
//   --resume                       skip configs already terminal in the
//                                  journal (byte-identical merged CSV)
//   --strict                       force strict mode on every job
//   --isolate / --no-isolate       run every attempt in a forked, rlimit-
//                                  capped worker process (default ON where
//                                  supported): a crashing config becomes a
//                                  journaled `crashed`/`poisoned` record,
//                                  never the death of the batch
//   --worker-memory-mb <n>         RLIMIT_AS cap per worker process (MiB;
//                                  0 = inherit)
//   --worker-stack-mb <n>          RLIMIT_STACK cap per worker process
//                                  (MiB; 0 = inherit)
//   --crash-backoff-ms <ms>        respawn delay after a worker crash
//                                  (default 250; doubles per crash)
//   --trace-out <file> / --metrics observability, as in single-run mode
//
// Reads a system description (see src/model/textual_config.hpp for the
// format), runs the global analysis, prints the report, and evaluates any
// `deadline` constraints from the file.  `deadline` statements are only
// evaluated in single-run mode; batch mode reports per-task statuses in
// the merged CSV instead.
//
// Exit status — ONE precedence order, shared with hemlint (which uses the
// 0/1/3 subset) and asserted by tests/integration/batch_shutdown_test.cpp.
// Single run, strongest first: 3 > 2 > 1 > 4 > 0.  Batch run: 3 > 6 > 5 >
// 4 > 0.
//   0  analysis converged, all deadlines met (batch: every job done, exact)
//   1  deadline missed (or unverifiable because its task's bound degraded)
//   2  analysis failed (strict-mode divergence, simulation violation, ...)
//   3  usage or configuration error (including an unwritable --trace-out
//      file or a corrupt --resume journal)
//   4  degraded-but-bounded: no deadline violated, but at least one task
//      carries conservative fallback bounds (see --diagnostics), or
//      --verify found a model-algebra axiom violation; batch: every job
//      done but some carry fallback bounds
//   5  batch only: at least one job failed, was watchdog-cancelled, was
//      abandoned, crashed its worker process, or was poisoned (crashed
//      twice and quarantined; the merged CSV carries a placeholder row
//      for each)
//   6  batch only: interrupted by SIGINT/SIGTERM after draining in-flight
//      jobs; the journal is flushed and `--resume` continues the batch

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/errors.hpp"
#include "core/model_io.hpp"
#include "exec/batch_runner.hpp"
#include "io/csv.hpp"
#include "model/cpa_engine.hpp"
#include "model/textual_config.hpp"
#include "obs/exporters.hpp"
#include "obs/obs.hpp"
#include "sim/system_simulator.hpp"
#include "verify/model_checker.hpp"

namespace {

int usage() {
  std::cerr << "usage: hemcpa <config> [--eta <task> <dt_max> <step>] "
               "[--delta <task> <n_max>] [--csv]\n"
               "              [--sim <horizon> <seed>] [--sim-drop <rate>] "
               "[--sim-jitter <time>] [--sim-burst <count>]\n"
               "              [--strict] [--diagnostics] [--verify] [--jobs <n>] "
               "[--trace-out <file>] [--metrics]\n"
               "       hemcpa --batch <dir|manifest> [batch options]\n";
  return 3;
}

/// Parse a decimal integer argument; malformed input is a usage error (exit
/// code 3), never an uncaught std::stol crash.
bool parse_ll(const char* arg, long long& out) {
  try {
    std::size_t pos = 0;
    out = std::stoll(arg, &pos);
    return pos == std::strlen(arg);
  } catch (...) {
    return false;
  }
}

bool parse_double(const char* arg, double& out) {
  try {
    std::size_t pos = 0;
    out = std::stod(arg, &pos);
    return pos == std::strlen(arg);
  } catch (...) {
    return false;
  }
}

int bad_number(const std::string& flag, const char* arg) {
  std::cerr << "error: argument to " << flag << " is not a number: '" << arg << "'\n";
  return 3;
}

struct EtaRequest {
  std::string task;
  hem::Time dt_max = 0;
  hem::Time step = 0;
};

struct DeltaRequest {
  std::string task;
  hem::Count n_max = 0;
};

// ---- batch mode -----------------------------------------------------------

volatile std::sig_atomic_t g_shutdown = 0;

extern "C" void handle_shutdown(int /*signum*/) { g_shutdown = 1; }

int batch_usage() {
  std::cerr << "usage: hemcpa --batch <dir|manifest> [--out <file>] [--batch-jobs <n>] "
               "[--jobs <n>]\n"
               "              [--job-budget-ms <ms>] [--grace-ms <ms>] [--retries <n>] "
               "[--retry-backoff-ms <ms>]\n"
               "              [--max-iterations <n>] [--engine-budget-ms <ms>] "
               "[--fixpoint-steps <n>] [--fixpoint-window <ticks>]\n"
               "              [--isolate|--no-isolate] [--worker-memory-mb <n>] "
               "[--worker-stack-mb <n>] [--crash-backoff-ms <ms>]\n"
               "              [--resume] [--strict] [--trace-out <file>] [--metrics]\n";
  return 3;
}

int run_batch(int argc, char** argv) {
  using namespace hem;
  if (argc < 3 || argv[2][0] == '\0') return batch_usage();
  const std::string operand = argv[2];

  exec::BatchOptions bopts;
  std::string out_csv = "batch_report.csv";
  std::string trace_out;
  bool want_metrics = false;
  for (int i = 3; i < argc; ++i) {
    const std::string flag = argv[i];
    long long v = 0;
    const auto take_count = [&](long long min_value, long long& slot) {
      if (i + 1 >= argc) return false;
      if (!parse_ll(argv[i + 1], v) || v < min_value) return false;
      slot = v;
      i += 1;
      return true;
    };
    long long slot = 0;
    if (flag == "--out" && i + 1 < argc && argv[i + 1][0] != '\0') {
      out_csv = argv[++i];
    } else if (flag == "--batch-jobs") {
      if (!take_count(1, slot)) return bad_number(flag, i + 1 < argc ? argv[i + 1] : "");
      bopts.parallel_jobs = static_cast<int>(slot);
    } else if (flag == "--jobs") {
      if (!take_count(1, slot)) return bad_number(flag, i + 1 < argc ? argv[i + 1] : "");
      bopts.engine_jobs = static_cast<int>(slot);
    } else if (flag == "--job-budget-ms") {
      if (!take_count(0, slot)) return bad_number(flag, i + 1 < argc ? argv[i + 1] : "");
      bopts.job_budget_ms = slot;
    } else if (flag == "--grace-ms") {
      if (!take_count(0, slot)) return bad_number(flag, i + 1 < argc ? argv[i + 1] : "");
      bopts.grace_ms = slot;
    } else if (flag == "--retries") {
      if (!take_count(0, slot)) return bad_number(flag, i + 1 < argc ? argv[i + 1] : "");
      bopts.max_retries = static_cast<int>(slot);
    } else if (flag == "--retry-backoff-ms") {
      if (!take_count(0, slot)) return bad_number(flag, i + 1 < argc ? argv[i + 1] : "");
      bopts.retry_backoff_ms = slot;
    } else if (flag == "--max-iterations") {
      if (!take_count(1, slot)) return bad_number(flag, i + 1 < argc ? argv[i + 1] : "");
      bopts.max_iterations = static_cast<int>(slot);
    } else if (flag == "--engine-budget-ms") {
      if (!take_count(0, slot)) return bad_number(flag, i + 1 < argc ? argv[i + 1] : "");
      bopts.engine_budget_ms = slot;
    } else if (flag == "--fixpoint-steps") {
      if (!take_count(1, slot)) return bad_number(flag, i + 1 < argc ? argv[i + 1] : "");
      bopts.fixpoint_max_iterations = slot;
    } else if (flag == "--fixpoint-window") {
      if (!take_count(1, slot)) return bad_number(flag, i + 1 < argc ? argv[i + 1] : "");
      bopts.fixpoint_max_window = slot;
    } else if (flag == "--isolate") {
      bopts.isolate = true;
    } else if (flag == "--no-isolate") {
      bopts.isolate = false;
    } else if (flag == "--worker-memory-mb") {
      if (!take_count(0, slot)) return bad_number(flag, i + 1 < argc ? argv[i + 1] : "");
      bopts.worker_memory_mb = slot;
    } else if (flag == "--worker-stack-mb") {
      if (!take_count(0, slot)) return bad_number(flag, i + 1 < argc ? argv[i + 1] : "");
      bopts.worker_stack_mb = slot;
    } else if (flag == "--crash-backoff-ms") {
      if (!take_count(0, slot)) return bad_number(flag, i + 1 < argc ? argv[i + 1] : "");
      bopts.crash_backoff_ms = slot;
    } else if (flag == "--resume") {
      bopts.resume = true;
    } else if (flag == "--strict") {
      bopts.strict = true;
    } else if (flag == "--trace-out" && i + 1 < argc && argv[i + 1][0] != '\0') {
      trace_out = argv[++i];
    } else if (flag == "--metrics") {
      want_metrics = true;
    } else {
      std::cerr << "error: unknown or incomplete batch flag '" << flag << "'\n";
      return batch_usage();
    }
  }
  bopts.journal_path = out_csv + ".journal";

  std::vector<std::string> configs;
  try {
    configs = exec::BatchRunner::collect_configs(operand);
  } catch (const std::invalid_argument& e) {
    std::cerr << "batch error: " << e.what() << "\n";
    return 3;
  }

  // Heap-allocated so it can be leaked when a worker thread was hard-
  // abandoned (--no-isolate legacy escalation): such a thread may finish a
  // span long after this function returns, and the sink it pinned must
  // stay valid.  Leaking a tracer at exit is cheaper than std::_Exit.
  auto* tracer = new obs::Tracer;
  if (!trace_out.empty()) obs::set_tracer(tracer);
  if (want_metrics) obs::set_counting(true);

  // Drain gracefully on SIGINT/SIGTERM: the scheduler polls the flag,
  // cancels in-flight jobs, flushes the journal, and we exit with 6.
  std::signal(SIGINT, handle_shutdown);
  std::signal(SIGTERM, handle_shutdown);

  exec::BatchReport report;
  try {
    report = exec::BatchRunner(std::move(configs), bopts).run(&g_shutdown, &std::cerr);
  } catch (const std::exception& e) {
    // Corrupt --resume journal or unwritable journal location.
    std::cerr << "batch error: " << e.what() << "\n";
    return 3;
  }

  report.write_summary(std::cout);

  if (!report.interrupted) {
    // The merged CSV is written atomically (temp + rename) so readers and
    // an interrupting signal can never observe a partial line.
    const std::string tmp = out_csv + ".tmp";
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (out) report.write_csv(out);
      out.flush();
      if (!out) {
        std::cerr << "error: cannot write batch report '" << tmp << "'\n";
        return 3;
      }
    }
    if (std::rename(tmp.c_str(), out_csv.c_str()) != 0) {
      std::remove(tmp.c_str());
      std::cerr << "error: cannot atomically replace batch report '" << out_csv << "'\n";
      return 3;
    }
    std::cout << "merged report: " << out_csv << " (journal: " << bopts.journal_path << ")\n";
  } else {
    std::cout << "interrupted: merged report not written; journal " << bopts.journal_path
              << " is complete - continue with --resume\n";
  }

  if (want_metrics) {
    std::cout << "\nmetrics:\n";
    obs::write_metrics_text(std::cout, obs::registry());
  }
  if (!trace_out.empty()) {
    std::ofstream trace_file(trace_out);
    if (!trace_file) {
      std::cerr << "error: cannot open trace output file '" << trace_out << "'\n";
      return 3;
    }
    obs::write_chrome_trace(trace_file, *tracer, obs::registry());
  }

  // A hard-abandoned worker thread (legacy --no-isolate escalation) may
  // still be wedged inside an uncancellable analysis, but a normal return
  // is safe even then: the only shared state such a thread touches on its
  // way out is the obs registry (a deliberately leaked singleton, see
  // obs.cpp) and the tracer, which we leak here for exactly that case.
  // No std::_Exit: static destruction has nothing left to race.
  obs::set_tracer(nullptr);
  if (report.abandoned == 0) delete tracer;
  return report.exit_code();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hem;

  if (argc < 2) return usage();
  if (std::string(argv[1]) == "--batch") return run_batch(argc, argv);

  // ---- phase 1: parse ALL flags up front (usage errors exit 3 before any
  // analysis work happens) -------------------------------------------------
  std::vector<EtaRequest> eta_requests;
  std::vector<DeltaRequest> delta_requests;
  bool want_csv = false;
  bool want_diagnostics = false;
  bool want_verify = false;
  bool strict = false;
  bool want_sim = false;
  bool cli_sim_drop = false;  // whether the CLI set each fault-injection
  bool cli_sim_jitter = false;  // field ('option sim_*=' supplies defaults,
  bool cli_sim_burst = false;   // the CLI wins)
  long long cli_jobs = 0;  // 0 = not given on the command line
  std::string cli_trace_out;
  bool cli_metrics = false;
  sim::SystemSimulator::Options sim_opts;
  sim_opts.mode = sim::GenMode::kEarliest;

  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    long long v = 0;
    if (flag == "--eta" && i + 3 < argc) {
      EtaRequest req;
      req.task = argv[i + 1];
      if (!parse_ll(argv[i + 2], v)) return bad_number(flag, argv[i + 2]);
      req.dt_max = v;
      if (!parse_ll(argv[i + 3], v)) return bad_number(flag, argv[i + 3]);
      req.step = v;
      eta_requests.push_back(std::move(req));
      i += 3;
    } else if (flag == "--delta" && i + 2 < argc) {
      DeltaRequest req;
      req.task = argv[i + 1];
      if (!parse_ll(argv[i + 2], v)) return bad_number(flag, argv[i + 2]);
      req.n_max = v;
      delta_requests.push_back(std::move(req));
      i += 2;
    } else if (flag == "--csv") {
      want_csv = true;
    } else if (flag == "--sim" && i + 2 < argc) {
      if (!parse_ll(argv[i + 1], v)) return bad_number(flag, argv[i + 1]);
      sim_opts.horizon = v;
      if (!parse_ll(argv[i + 2], v)) return bad_number(flag, argv[i + 2]);
      sim_opts.seed = static_cast<std::uint64_t>(v);
      want_sim = true;
      i += 2;
    } else if (flag == "--sim-drop" && i + 1 < argc) {
      double rate = 0.0;
      if (!parse_double(argv[i + 1], rate)) return bad_number(flag, argv[i + 1]);
      sim_opts.faults.drop_rate = rate;
      cli_sim_drop = true;
      i += 1;
    } else if (flag == "--sim-jitter" && i + 1 < argc) {
      if (!parse_ll(argv[i + 1], v)) return bad_number(flag, argv[i + 1]);
      sim_opts.faults.extra_jitter = v;
      cli_sim_jitter = true;
      i += 1;
    } else if (flag == "--sim-burst" && i + 1 < argc) {
      if (!parse_ll(argv[i + 1], v)) return bad_number(flag, argv[i + 1]);
      sim_opts.faults.burst = v;
      cli_sim_burst = true;
      i += 1;
    } else if (flag == "--jobs" && i + 1 < argc) {
      if (!parse_ll(argv[i + 1], v)) return bad_number(flag, argv[i + 1]);
      if (v < 1) {
        std::cerr << "error: --jobs needs a thread count >= 1, got " << v << "\n";
        return 3;
      }
      cli_jobs = v;
      i += 1;
    } else if (flag == "--trace-out" && i + 1 < argc) {
      cli_trace_out = argv[i + 1];
      if (cli_trace_out.empty()) {
        std::cerr << "error: --trace-out needs a non-empty file name\n";
        return 3;
      }
      i += 1;
    } else if (flag == "--metrics") {
      cli_metrics = true;
    } else if (flag == "--strict") {
      strict = true;
    } else if (flag == "--diagnostics") {
      want_diagnostics = true;
    } else if (flag == "--verify") {
      want_verify = true;
    } else {
      std::cerr << "error: unknown or incomplete flag '" << flag << "'\n";
      return usage();
    }
  }

  // ---- phase 2: configuration --------------------------------------------
  cpa::ParsedSystem parsed;
  try {
    parsed = cpa::parse_system_config_file(argv[1]);
  } catch (const std::invalid_argument& e) {
    std::cerr << "configuration error: " << e.what() << "\n";
    return 3;
  }

  // Positioned parser warnings (e.g. jitter > period) surface under
  // --diagnostics; hemlint reports the same records with more checks.
  if (want_diagnostics && !parsed.warnings.empty()) {
    std::cout << "configuration warnings:\n";
    for (const auto& w : parsed.warnings)
      std::cout << "  " << argv[1] << ":" << verify::format(w) << "\n";
    std::cout << "\n";
  }

  // ---- phase 3: analysis --------------------------------------------------
  cpa::EngineOptions eopts;
  // `option strict=on` from the configuration file; the CLI can only add
  // strictness, not remove it.
  eopts.strict = strict || parsed.strict;
  // `option overload_check=off` (expert): skip the load>1 pre-check, so
  // genuinely divergent systems iterate to their busy-window limits.
  eopts.check_overload = parsed.check_overload;
  // Fault-injection defaults from `option sim_*=`; CLI flags win per field.
  if (!cli_sim_drop) sim_opts.faults.drop_rate = parsed.sim_drop;
  if (!cli_sim_jitter) sim_opts.faults.extra_jitter = parsed.sim_jitter;
  if (!cli_sim_burst) sim_opts.faults.burst = parsed.sim_burst;
  // CLI flag wins over `option jobs=<n>` from the configuration file.
  if (cli_jobs > 0)
    eopts.jobs = static_cast<int>(cli_jobs);
  else if (parsed.jobs > 0)
    eopts.jobs = parsed.jobs;

  // Same precedence for the observability options: the CLI wins over
  // `option trace=` / `option metrics=` from the configuration file.
  const std::string trace_out = !cli_trace_out.empty() ? cli_trace_out : parsed.trace_out;
  const bool want_metrics = cli_metrics || parsed.metrics;
  obs::Tracer tracer;
  if (!trace_out.empty()) obs::set_tracer(&tracer);
  if (want_metrics) obs::set_counting(true);

  cpa::AnalysisReport report;
  try {
    report = cpa::CpaEngine(parsed.system, eopts).run();
  } catch (const std::exception& e) {
    std::cerr << "analysis error: " << e.what() << "\n";
    return 2;
  }

  std::cout << report.format();

  if (want_diagnostics) {
    // The records themselves are part of report.format(); add the tally only.
    std::cout << "\ndiagnostic records: " << report.diagnostics.entries().size() << " ("
              << report.diagnostics.count(cpa::Severity::kError) << " errors, "
              << report.diagnostics.count(cpa::Severity::kWarning) << " warnings)\n";
  }

  // ---- phase 4: auxiliary outputs ----------------------------------------
  try {
    for (const EtaRequest& req : eta_requests) {
      const auto& model = report.task(req.task).activation;
      std::cout << "\neta+ of '" << req.task << "' activation:\n"
                << format_eta_table({sample_eta_plus(*model, req.task, req.dt_max, req.step)});
    }
    for (const DeltaRequest& req : delta_requests) {
      const auto& model = report.task(req.task).activation;
      std::cout << "\ndelta curves of '" << req.task << "' activation:\n"
                << format_delta_table(*model, req.n_max);
    }
    if (want_csv) {
      std::cout << "\n";
      io::write_report_csv(std::cout, report);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 3;
  }

  if (want_metrics) {
    std::cout << "\nmetrics:\n";
    obs::write_metrics_text(std::cout, obs::registry());
  }

  if (!trace_out.empty()) {
    std::ofstream trace_file(trace_out);
    if (!trace_file) {
      std::cerr << "error: cannot open trace output file '" << trace_out << "'\n";
      return 3;
    }
    obs::write_chrome_trace(trace_file, tracer, obs::registry());
    trace_file.flush();
    if (!trace_file) {
      std::cerr << "error: failed writing trace output file '" << trace_out << "'\n";
      return 3;
    }
  }

  bool sim_violation = false;
  if (want_sim) {
    try {
      const auto simres = sim::SystemSimulator(parsed.system, sim_opts).run();
      std::cout << "\nsimulation (earliest-burst stimulus, horizon " << sim_opts.horizon;
      if (sim_opts.faults.drop_rate > 0.0)
        std::cout << ", drop " << sim_opts.faults.drop_rate;
      if (sim_opts.faults.extra_jitter > 0)
        std::cout << ", jitter +" << sim_opts.faults.extra_jitter;
      if (sim_opts.faults.burst > 1) std::cout << ", burst x" << sim_opts.faults.burst;
      std::cout << "):\n";
      for (const auto& t : report.tasks) {
        const auto& stats = simres.tasks.at(t.name);
        const bool violated = stats.wcrt > t.wcrt;
        sim_violation = sim_violation || violated;
        std::cout << "  " << t.name << ": observed " << stats.wcrt << " / bound "
                  << (is_infinite(t.wcrt) ? "inf" : std::to_string(t.wcrt)) << " ("
                  << stats.responses.size() << " jobs)" << (violated ? "  **VIOLATION**" : "")
                  << "\n";
      }
    } catch (const std::exception& e) {
      std::cerr << "simulation error: " << e.what() << "\n";
      return 2;
    }
  }

  // ---- phase 4.5: model-algebra verification ------------------------------
  bool verify_failed = false;
  if (want_verify) {
    verify::ModelChecker checker;
    for (const auto& t : report.tasks) {
      if (t.activation) checker.check_model(*t.activation, t.name + ".activation");
      if (t.output) checker.check_model(*t.output, t.name + ".output");
      // Compilation axioms (AX12/AX13): the engine lowers converged nodes to
      // the flat compiled form, so verify the flat form agrees with the lazy
      // DAG inside its horizon and its curves stay conservative beyond it.
      if (t.activation) checker.check_compiled(*t.activation, t.name + ".activation");
      if (t.output) checker.check_compiled(*t.output, t.name + ".output");
      // after_response() outputs: per-model axioms + the Def.-9 floor are
      // checked; Def.-8 outer-bounds-inners only holds for fresh pack
      // outputs, not for updated HEMs (see model_checker.hpp).
      if (t.hem_output)
        checker.check_hierarchical(*t.hem_output, t.name + ".hem_output",
                                   /*outer_bounds_inner=*/false);
    }
    if (!checker.ok()) {
      verify_failed = true;
      std::cout << "\nmodel verification: " << checker.violations().size()
                << " axiom violation(s)\n";
      for (const auto& v : checker.violations()) std::cout << "  " << v.format() << "\n";
    } else {
      std::cout << "\nmodel verification: all axioms hold on " << report.tasks.size()
                << " task(s)\n";
    }
  }

  // ---- phase 5: verdict ---------------------------------------------------
  if (sim_violation) {
    std::cout << "\nSIMULATION VIOLATION: observed response above analytic bound\n";
    return 2;
  }

  if (!parsed.deadlines.empty()) {
    std::string violation;
    for (const auto& [task, deadline] : parsed.deadlines) {
      const Time wcrt = report.task(task).wcrt;
      if (wcrt > deadline) {
        violation = "task '" + task + "' misses its deadline (" +
                    (is_infinite(wcrt) ? "inf" : std::to_string(wcrt)) + " > " +
                    std::to_string(deadline) + ")";
        break;
      }
    }
    if (!violation.empty()) {
      std::cout << "\nDEADLINE VIOLATION: " << violation << "\n";
      return 1;
    }
    std::cout << "\nall deadlines met\n";
  }

  if (verify_failed) {
    std::cout << "\nMODEL VERIFICATION FAILED: axiom violation in a resolved model\n";
    return 4;
  }

  if (report.degraded()) {
    std::cout << "\nanalysis DEGRADED: conservative fallback bounds in effect"
              << (want_diagnostics ? "" : " (re-run with --diagnostics for details)") << "\n";
    return 4;
  }
  return 0;
}
