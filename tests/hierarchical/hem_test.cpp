#include "hierarchical/hierarchical_event_model.hpp"

#include <gtest/gtest.h>

#include "core/output_model.hpp"
#include "core/standard_event_model.hpp"
#include "hierarchical/inner_update.hpp"
#include "hierarchical/pack_constructor.hpp"

namespace hem {
namespace {

ModelPtr periodic(Time p) { return StandardEventModel::periodic(p); }

HemPtr paper_f1() {
  return pack({{periodic(250), SignalCoupling::kTriggering},
               {periodic(450), SignalCoupling::kTriggering},
               {periodic(1000), SignalCoupling::kPending}});
}

TEST(HemTest, ConstructionInvariants) {
  const auto hem = paper_f1();
  EXPECT_EQ(hem->inner_count(), 3u);
  EXPECT_NE(hem->outer(), nullptr);
  EXPECT_EQ(hem->rule()->describe(), "C_pa");
}

TEST(HemTest, DeconstructorReturnsInnerByIndex) {
  // Psi_pa (Def. 10): L(i).
  const auto hem = paper_f1();
  EXPECT_EQ(hem->unpack().size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(hem->unpack()[i].get(), hem->inner(i).get());
  EXPECT_THROW((void)hem->inner(3), std::out_of_range);
}

TEST(HemTest, AfterResponseOuterIsThetaTau) {
  const auto hem = paper_f1();
  const auto after = hem->after_response(4, 6);
  const OutputModel expected(hem->outer(), 4, 6);
  EXPECT_TRUE(models_equal(*after->outer(), expected, 24));
}

TEST(HemTest, AfterResponseUpdatesEveryInner) {
  const auto hem = paper_f1();
  const Count k = hem->outer()->max_simultaneous_events();
  ASSERT_GE(k, 2);  // S1 and S2 can coincide
  const auto after = hem->after_response(4, 6);
  for (std::size_t i = 0; i < hem->inner_count(); ++i) {
    const ResponseUpdatedInnerModel expected(hem->inner(i), 4, 6, k);
    EXPECT_TRUE(models_equal(*after->inner(i), expected, 24)) << "inner " << i;
  }
}

TEST(HemTest, AfterResponseKeepsRule) {
  const auto hem = paper_f1();
  const auto after = hem->after_response(4, 6);
  EXPECT_EQ(after->rule().get(), hem->rule().get());
}

TEST(HemTest, ChainedOperationsCompose) {
  // Two hops (e.g. gateway forwarding): apply after_response twice.
  const auto hem = paper_f1();
  const auto once = hem->after_response(4, 6);
  const auto twice = once->after_response(2, 8);
  // Inner curves only get wider with every hop.
  for (Count n = 2; n <= 16; ++n) {
    EXPECT_LE(twice->inner(0)->delta_min(n), once->inner(0)->delta_min(n));
    EXPECT_GE(twice->inner(0)->delta_plus(n), once->inner(0)->delta_plus(n));
  }
}

TEST(HemTest, InnerNeverDenserThanOuterAfterResponse) {
  // Soundness invariant: every inner stream remains a sub-stream of the
  // outer stream (eta+ ordering) after the transmission operation.
  const auto after = paper_f1()->after_response(4, 6);
  for (std::size_t i = 0; i < after->inner_count(); ++i)
    for (Time dt = 1; dt <= 2500; dt += 59)
      EXPECT_LE(after->inner(i)->eta_plus(dt) , after->outer()->eta_plus(dt) + 1)
          << "inner " << i << " dt=" << dt;
}

TEST(HemTest, HemUnpackedBoundsAreTighterThanFlat) {
  // The headline claim: for each signal, the unpacked inner stream allows at
  // most as many activations as the flat total-frame stream, and strictly
  // fewer for slow signals over large windows.
  const auto hem = paper_f1();
  const auto after = hem->after_response(4, 6);
  const auto flat = std::make_shared<OutputModel>(hem->outer(), 4, 6);
  bool strictly_tighter = false;
  for (std::size_t i = 0; i < after->inner_count(); ++i) {
    for (Time dt = 100; dt <= 5000; dt += 100) {
      EXPECT_LE(after->inner(i)->eta_plus(dt), flat->eta_plus(dt));
      if (after->inner(i)->eta_plus(dt) < flat->eta_plus(dt)) strictly_tighter = true;
    }
  }
  EXPECT_TRUE(strictly_tighter);
}

TEST(HemTest, ValidationErrors) {
  const auto m = periodic(100);
  EXPECT_THROW(HierarchicalEventModel(nullptr, {m}, PackRule::instance()),
               std::invalid_argument);
  EXPECT_THROW(HierarchicalEventModel(m, {}, PackRule::instance()), std::invalid_argument);
  EXPECT_THROW(HierarchicalEventModel(m, {nullptr}, PackRule::instance()),
               std::invalid_argument);
  EXPECT_THROW(HierarchicalEventModel(m, {m}, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace hem
