#include "hierarchical/pack_constructor.hpp"

#include <gtest/gtest.h>

#include "core/combinators.hpp"
#include "core/standard_event_model.hpp"

namespace hem {
namespace {

ModelPtr periodic(Time p) { return StandardEventModel::periodic(p); }

TEST(PackConstructorTest, OuterIsOrOfTriggeringInputs) {
  const auto s1 = periodic(250);
  const auto s2 = periodic(450);
  const auto hem = pack({{s1, SignalCoupling::kTriggering}, {s2, SignalCoupling::kTriggering}});
  const OrModel expected(s1, s2);
  EXPECT_TRUE(models_equal(*hem->outer(), expected, 32));
}

TEST(PackConstructorTest, PendingInputDoesNotTrigger) {
  const auto s1 = periodic(250);
  const auto s3 = periodic(1000);
  const auto hem = pack({{s1, SignalCoupling::kTriggering}, {s3, SignalCoupling::kPending}});
  // Outer = s1 alone.
  EXPECT_TRUE(models_equal(*hem->outer(), *s1, 32));
  EXPECT_EQ(hem->inner_count(), 2u);
}

TEST(PackConstructorTest, TimerActsAsTriggeringInput) {
  const auto s3 = periodic(1000);
  const auto timer = periodic(100);
  const auto hem = pack({{s3, SignalCoupling::kPending}}, timer);
  EXPECT_TRUE(models_equal(*hem->outer(), *timer, 32));
}

TEST(PackConstructorTest, TriggeringInnerIsInputItself) {
  // eqs. (5)-(6): the inner stream of a triggering signal equals the signal.
  const auto s1 = periodic(250);
  const auto s2 = periodic(450);
  const auto hem = pack({{s1, SignalCoupling::kTriggering}, {s2, SignalCoupling::kTriggering}});
  EXPECT_EQ(hem->inner(0).get(), s1.get());
  EXPECT_EQ(hem->inner(1).get(), s2.get());
}

TEST(PackConstructorTest, PendingInnerMatchesEquationSeven) {
  // delta'-(n) = max(delta_sig-(n) - delta_f+(2), delta_f-(n)); delta'+ = inf.
  const auto sig = periodic(1000);
  const auto trig = periodic(250);
  const auto hem = pack({{trig, SignalCoupling::kTriggering}, {sig, SignalCoupling::kPending}});
  const auto& inner = hem->inner(1);
  const auto& frame = hem->outer();
  for (Count n = 2; n <= 16; ++n) {
    const Time expect =
        std::max(std::max<Time>(0, sig->delta_min(n) - frame->delta_plus(2)),
                 frame->delta_min(n));
    EXPECT_EQ(inner->delta_min(n), expect) << "n=" << n;
    EXPECT_TRUE(is_infinite(inner->delta_plus(n))) << "n=" << n;
  }
}

TEST(PackConstructorTest, PendingInnerNeverDenserThanFrames) {
  // A pending signal can never be delivered more often than frames are sent.
  const auto sig = StandardEventModel::periodic_with_jitter(300, 800);  // bursty signal
  const auto trig = periodic(100);
  const auto hem = pack({{trig, SignalCoupling::kTriggering}, {sig, SignalCoupling::kPending}});
  for (Time dt = 1; dt <= 3000; dt += 37)
    EXPECT_LE(hem->inner(1)->eta_plus(dt), hem->outer()->eta_plus(dt)) << "dt=" << dt;
}

TEST(PackConstructorTest, PendingInnerNeverDenserThanSignalPlusSlack) {
  // The inner eta+ of a slow pending signal in a fast frame stays governed
  // by the signal period, not by the frame rate (the whole point of HEMs).
  const auto sig = periodic(1000);
  const auto trig = periodic(100);
  const auto hem = pack({{trig, SignalCoupling::kTriggering}, {sig, SignalCoupling::kPending}});
  // In 5000 ticks at most 6 fresh values (5 periods + 1 boundary effect +
  // the just-missed-frame slack).
  EXPECT_LE(hem->inner(1)->eta_plus(5000), 6);
  // The flat view would claim 50 frame arrivals.
  EXPECT_GE(hem->outer()->eta_plus(5000), 50);
}

TEST(PackConstructorTest, ValidationErrors) {
  const auto s = periodic(100);
  EXPECT_THROW(pack({}), std::invalid_argument);
  EXPECT_THROW(pack({{nullptr, SignalCoupling::kTriggering}}), std::invalid_argument);
  // Only pending inputs and no timer: frame never sent.
  EXPECT_THROW(pack({{s, SignalCoupling::kPending}}), std::invalid_argument);
  // With a timer it is fine.
  EXPECT_NO_THROW(pack({{s, SignalCoupling::kPending}}, periodic(50)));
}

TEST(PackConstructorTest, MixedFrameCombinesTimerAndTriggers) {
  const auto s1 = periodic(250);
  const auto timer = periodic(500);
  const auto hem = pack({{s1, SignalCoupling::kTriggering}}, timer);
  const OrModel expected(s1, timer);
  EXPECT_TRUE(models_equal(*hem->outer(), expected, 24));
}

}  // namespace
}  // namespace hem
