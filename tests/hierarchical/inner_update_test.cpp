#include "hierarchical/inner_update.hpp"

#include <gtest/gtest.h>

#include "core/standard_event_model.hpp"

namespace hem {
namespace {

ModelPtr periodic(Time p) { return StandardEventModel::periodic(p); }

TEST(InnerUpdateTest, MatchesDefinitionNine) {
  // delta'-(n) = max(delta-(n) - (r+ - r-) - (k-1) r-, (n-1) r-),
  // delta'+(n) = delta+(n) + (r+ - r-) + (k-1) r-.
  const auto inner = periodic(250);
  const Time rm = 4, rp = 6;
  const Count k = 2;
  const ResponseUpdatedInnerModel upd(inner, rm, rp, k);
  for (Count n = 2; n <= 20; ++n) {
    const Time shrink = (rp - rm) + (k - 1) * rm;
    EXPECT_EQ(upd.delta_min(n),
              std::max(inner->delta_min(n) - shrink, rm * (n - 1)))
        << "n=" << n;
    EXPECT_EQ(upd.delta_plus(n), inner->delta_plus(n) + shrink) << "n=" << n;
  }
}

TEST(InnerUpdateTest, KEqualsOneReducesToPlainJitterPlusSerialisation) {
  const auto inner = periodic(100);
  const ResponseUpdatedInnerModel upd(inner, 5, 12, 1);
  EXPECT_EQ(upd.delta_min(2), 100 - 7);
  EXPECT_EQ(upd.delta_plus(2), 100 + 7);
}

TEST(InnerUpdateTest, SerialisationFloorDominatesForDenseStreams) {
  const auto inner = StandardEventModel::periodic_with_jitter(50, 200);  // bursty
  const ResponseUpdatedInnerModel upd(inner, 10, 15, 3);
  for (Count n = 2; n <= 8; ++n) EXPECT_GE(upd.delta_min(n), 10 * (n - 1));
}

TEST(InnerUpdateTest, MonotoneCurves) {
  const auto inner = StandardEventModel::sporadic(100, 170, 8);
  const ResponseUpdatedInnerModel upd(inner, 3, 9, 4);
  for (Count n = 3; n <= 48; ++n) {
    EXPECT_LE(upd.delta_min(n - 1), upd.delta_min(n));
    EXPECT_LE(upd.delta_plus(n - 1), upd.delta_plus(n));
    EXPECT_LE(upd.delta_min(n), upd.delta_plus(n));
  }
}

TEST(InnerUpdateTest, InfiniteDeltaPlusStaysInfinite) {
  // Pending inner streams have delta+ = inf; the update must not turn that
  // into a finite value.
  class InfPlus final : public EventModel {
   public:
    [[nodiscard]] std::string describe() const override { return "infplus"; }

   protected:
    [[nodiscard]] Time delta_min_raw(Count n) const override { return 100 * (n - 1); }
    [[nodiscard]] Time delta_plus_raw(Count) const override { return kTimeInfinity; }
  };
  const ResponseUpdatedInnerModel upd(std::make_shared<InfPlus>(), 2, 5, 2);
  EXPECT_TRUE(is_infinite(upd.delta_plus(2)));
  EXPECT_TRUE(is_infinite(upd.delta_plus(10)));
}

TEST(InnerUpdateTest, ValidationErrors) {
  const auto inner = periodic(100);
  EXPECT_THROW(ResponseUpdatedInnerModel(nullptr, 1, 2, 1), std::invalid_argument);
  EXPECT_THROW(ResponseUpdatedInnerModel(inner, -1, 2, 1), std::invalid_argument);
  EXPECT_THROW(ResponseUpdatedInnerModel(inner, 5, 2, 1), std::invalid_argument);
  EXPECT_THROW(ResponseUpdatedInnerModel(inner, 1, 2, 0), std::invalid_argument);
  EXPECT_THROW(ResponseUpdatedInnerModel(inner, 1, kTimeInfinity, 1), std::invalid_argument);
}

TEST(PackRuleTest, DerivesKFromOuterSimultaneity) {
  // Outer with 3 simultaneous events -> k = 3 -> the inner update shrinks
  // delta- by (r+ - r-) + 2 r-.
  const auto outer = StandardEventModel::periodic_with_jitter(100, 250);
  ASSERT_EQ(outer->max_simultaneous_events(), 3);
  const auto inner = periodic(300);
  const auto rule = PackRule::instance();
  const auto upd = rule->update_inner_after_response(inner, outer, 4, 10);
  // shrink = 6 + 2*4 = 14.
  EXPECT_EQ(upd->delta_min(2), 300 - 14);
  EXPECT_EQ(upd->delta_plus(2), 300 + 14);
}

}  // namespace
}  // namespace hem
