// Tests of the hemlint library (src/verify/lint.hpp): every HL*** code
// fires on a seeded-bad configuration, clean configurations produce no
// diagnostics, and severities/exit codes follow the documented convention.

#include <algorithm>
#include <sstream>

#include <gtest/gtest.h>

#include "daemon/protocol.hpp"
#include "verify/lint.hpp"

namespace hem::verify {
namespace {

LintResult lint(const std::string& config) {
  std::istringstream in(config);
  return lint_config(in);
}

/// The diagnostic with `code`, or nullptr.
const Diagnostic* find(const LintResult& result, const std::string& code) {
  const auto it = std::find_if(result.diagnostics.begin(), result.diagnostics.end(),
                               [&](const Diagnostic& d) { return d.code == code; });
  return it == result.diagnostics.end() ? nullptr : &*it;
}

std::string dump(const LintResult& result) {
  std::string out;
  for (const auto& d : result.diagnostics) out += format(d) + "\n";
  return out;
}

TEST(Hemlint, CleanConfigHasNoDiagnostics) {
  const auto result = lint(R"(
resource CPU1 spp
resource BUS can
source s1 periodic period=250
source s2 sem period=450 jitter=30
source s3 periodic period=1000
task T1 resource=CPU1 priority=1 cet=24
task F1 resource=BUS priority=1 cet=4
task T2 resource=CPU1 priority=2 cet=12
activate T1 from=s1
packed F1 inputs=s2:trig,s3:pend
unpack T2 frame=F1 index=1
deadline T1 100
option jobs=2
)");
  EXPECT_TRUE(result.parse_ok);
  EXPECT_TRUE(result.diagnostics.empty()) << dump(result);
  EXPECT_EQ(lint_exit_code(result, /*werror=*/true), 0);
}

TEST(Hemlint, HL000ParseErrorIsPositioned) {
  const auto result = lint("resource CPU1 spp\nbogus line here\n");
  EXPECT_FALSE(result.parse_ok);
  const Diagnostic* d = find(result, "HL000");
  ASSERT_NE(d, nullptr) << dump(result);
  EXPECT_TRUE(d->is_error());
  EXPECT_EQ(d->line, 2);
  EXPECT_EQ(d->col, 1);
  EXPECT_EQ(lint_exit_code(result, /*werror=*/false), 1);
}

TEST(Hemlint, HL001UtilizationAboveOne) {
  const auto result = lint(R"(
resource CPU1 spp
source s1 periodic period=10
task T1 resource=CPU1 priority=1 cet=20
activate T1 from=s1
)");
  ASSERT_TRUE(result.parse_ok);
  const Diagnostic* d = find(result, "HL001");
  ASSERT_NE(d, nullptr) << dump(result);
  EXPECT_TRUE(d->is_error());
  EXPECT_EQ(d->line, 2);  // positioned at the resource declaration
  EXPECT_NE(d->message.find("2.00"), std::string::npos) << d->message;
}

TEST(Hemlint, HL002DuplicatePriority) {
  const auto result = lint(R"(
resource CPU1 spp
source s1 periodic period=100
source s2 periodic period=100
task T1 resource=CPU1 priority=3 cet=5
task T2 resource=CPU1 priority=3 cet=5
activate T1 from=s1
activate T2 from=s2
)");
  ASSERT_TRUE(result.parse_ok);
  const Diagnostic* d = find(result, "HL002");
  ASSERT_NE(d, nullptr) << dump(result);
  EXPECT_EQ(d->severity, LintSeverity::kWarning);
  EXPECT_EQ(d->line, 6);  // the second task with priority 3
  EXPECT_EQ(lint_exit_code(result, /*werror=*/false), 0);
  EXPECT_EQ(lint_exit_code(result, /*werror=*/true), 1);
}

TEST(Hemlint, HL003JitterAbovePeriod) {
  const auto result = lint(R"(
resource CPU1 spp
source s1 sem period=100 jitter=250
task T1 resource=CPU1 priority=1 cet=5
activate T1 from=s1
)");
  ASSERT_TRUE(result.parse_ok);
  const Diagnostic* d = find(result, "HL003");
  ASSERT_NE(d, nullptr) << dump(result);
  EXPECT_EQ(d->severity, LintSeverity::kWarning);
  EXPECT_EQ(d->line, 3);
  EXPECT_GT(d->col, 0);  // the jitter= token, not the line start
}

TEST(Hemlint, HL004DminAbovePeriod) {
  const auto result = lint(R"(
resource CPU1 spp
source s1 sem period=100 dmin=200
task T1 resource=CPU1 priority=1 cet=5
activate T1 from=s1
)");
  EXPECT_FALSE(result.parse_ok);  // the SEM is unconstructible
  const Diagnostic* d = find(result, "HL004");
  ASSERT_NE(d, nullptr) << dump(result);
  EXPECT_TRUE(d->is_error());
  EXPECT_EQ(d->line, 3);
  // No generic duplicate for the same failure.
  EXPECT_EQ(find(result, "HL000"), nullptr) << dump(result);
}

TEST(Hemlint, HL005UnreferencedSource) {
  const auto result = lint(R"(
resource CPU1 spp
source s1 periodic period=100
source unused periodic period=50
task T1 resource=CPU1 priority=1 cet=5
activate T1 from=s1
)");
  ASSERT_TRUE(result.parse_ok);
  const Diagnostic* d = find(result, "HL005");
  ASSERT_NE(d, nullptr) << dump(result);
  EXPECT_EQ(d->severity, LintSeverity::kWarning);
  EXPECT_EQ(d->line, 4);
  EXPECT_NE(d->message.find("unused"), std::string::npos);
}

TEST(Hemlint, HL006AndHL007CycleAndDownstream) {
  const auto result = lint(R"(
resource CPU1 spp
task T1 resource=CPU1 priority=1 cet=5
task T2 resource=CPU1 priority=2 cet=5
task T3 resource=CPU1 priority=3 cet=5
activate T1 from=T2
activate T2 from=T1
activate T3 from=T1
)");
  ASSERT_TRUE(result.parse_ok) << dump(result);
  const Diagnostic* cycle = find(result, "HL007");
  ASSERT_NE(cycle, nullptr) << dump(result);
  EXPECT_TRUE(cycle->is_error());
  EXPECT_NE(cycle->message.find("T1"), std::string::npos);
  EXPECT_NE(cycle->message.find("T2"), std::string::npos);
  const Diagnostic* downstream = find(result, "HL006");
  ASSERT_NE(downstream, nullptr) << dump(result);
  EXPECT_TRUE(downstream->is_error());
  EXPECT_NE(downstream->message.find("T3"), std::string::npos);
  // Exactly one HL007 for the two-task cycle, not one per member.
  EXPECT_EQ(std::count_if(result.diagnostics.begin(), result.diagnostics.end(),
                          [](const Diagnostic& d) { return d.code == "HL007"; }),
            1)
      << dump(result);
}

TEST(Hemlint, HL008PackWithoutTimerOrTrigger) {
  const auto result = lint(R"(
resource BUS can
resource CPU1 spp
source s1 periodic period=100
task F1 resource=BUS priority=1 cet=4
task T1 resource=CPU1 priority=1 cet=5
packed F1 inputs=s1:pend
unpack T1 frame=F1 index=0
)");
  ASSERT_TRUE(result.parse_ok) << dump(result);
  const Diagnostic* d = find(result, "HL008");
  ASSERT_NE(d, nullptr) << dump(result);
  EXPECT_TRUE(d->is_error());
  EXPECT_NE(d->message.find("F1"), std::string::npos);
}

TEST(Hemlint, HL009StrictWithFaultInjection) {
  const auto result = lint(R"(
resource CPU1 spp
source s1 periodic period=100
task T1 resource=CPU1 priority=1 cet=5
activate T1 from=s1
option strict=on
option sim_drop=0.25
)");
  ASSERT_TRUE(result.parse_ok) << dump(result);
  const Diagnostic* d = find(result, "HL009");
  ASSERT_NE(d, nullptr) << dump(result);
  EXPECT_EQ(d->severity, LintSeverity::kWarning);
  EXPECT_EQ(d->line, 6);  // positioned at the strict option
}

TEST(Hemlint, HL010DeadlineBelowWcet) {
  const auto result = lint(R"(
resource CPU1 spp
source s1 periodic period=100
task T1 resource=CPU1 priority=1 cet=10
activate T1 from=s1
deadline T1 5
)");
  ASSERT_TRUE(result.parse_ok);
  const Diagnostic* d = find(result, "HL010");
  ASSERT_NE(d, nullptr) << dump(result);
  EXPECT_TRUE(d->is_error());
  EXPECT_EQ(d->line, 6);
}

TEST(Hemlint, RatePropagatesThroughGraphForUtilization) {
  // The overload is on a DOWNSTREAM resource: s1 at period 10 activates T1
  // (cheap, on CPU1), whose output activates T2 on CPU2 with cet 20 — flat
  // rate propagation must carry 1/10 through T1's output.
  const auto result = lint(R"(
resource CPU1 spp
resource CPU2 spp
source s1 periodic period=10
task T1 resource=CPU1 priority=1 cet=1
task T2 resource=CPU2 priority=1 cet=20
activate T1 from=s1
activate T2 from=T1
)");
  ASSERT_TRUE(result.parse_ok);
  const Diagnostic* d = find(result, "HL001");
  ASSERT_NE(d, nullptr) << dump(result);
  EXPECT_NE(d->message.find("CPU2"), std::string::npos);
}

TEST(Hemlint, PendingUnpackRateIsCappedByFrameRate) {
  // s_slow (period 1000) pends into a frame timed at period 10: the
  // receiver is charged the SIGNAL rate (1/1000), not the frame rate —
  // cet=50 would overload at frame rate but is fine at signal rate.
  const auto result = lint(R"(
resource BUS can
resource CPU1 spp
source s_slow periodic period=1000
task F1 resource=BUS priority=1 cet=1
task T1 resource=CPU1 priority=1 cet=50
packed F1 inputs=s_slow:pend timer=10
unpack T1 frame=F1 index=0
)");
  ASSERT_TRUE(result.parse_ok);
  EXPECT_EQ(find(result, "HL001"), nullptr) << dump(result);
}

TEST(Hemlint, DiagnosticsAreSortedBySourcePosition) {
  const auto result = lint(R"(
resource CPU1 spp
source unused periodic period=50
source s1 sem period=100 jitter=300
task T1 resource=CPU1 priority=1 cet=5
activate T1 from=s1
deadline T1 2
)");
  ASSERT_TRUE(result.parse_ok);
  ASSERT_GE(result.diagnostics.size(), 3u) << dump(result);
  for (std::size_t i = 1; i < result.diagnostics.size(); ++i)
    EXPECT_LE(result.diagnostics[i - 1].line, result.diagnostics[i].line) << dump(result);
  EXPECT_EQ(result.count(LintSeverity::kWarning), 2u) << dump(result);
  EXPECT_EQ(result.count(LintSeverity::kError), 1u) << dump(result);
}

TEST(HemlintJson, FieldsMirrorTheTextModeOutcome) {
  const auto result = lint(R"(
resource CPU1 spp
source s1 periodic period=100
source unused periodic period=50
task T1 resource=CPU1 priority=1 cet=10
activate T1 from=s1
deadline T1 2
)");
  ASSERT_TRUE(result.parse_ok);
  ASSERT_EQ(result.count(LintSeverity::kWarning), 1u) << dump(result);  // HL005
  ASSERT_EQ(result.count(LintSeverity::kError), 1u) << dump(result);    // HL010

  const std::string json = write_lint_json(result, "sys.hemcpa", /*werror=*/false);
  EXPECT_EQ(daemon::json_find(json, "file"), "sys.hemcpa");
  EXPECT_EQ(daemon::json_find(json, "parse_ok"), "true");
  EXPECT_EQ(daemon::json_find(json, "warnings"), "1");
  EXPECT_EQ(daemon::json_find(json, "errors"), "1");
  // `rejected` must track fails(werror), i.e. the text mode's exit code.
  EXPECT_EQ(daemon::json_find(json, "rejected") == "true",
            lint_exit_code(result, /*werror=*/false) != 0);
  EXPECT_NE(json.find("\"HL005\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"HL010\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"severity\":\"warning\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"severity\":\"error\""), std::string::npos) << json;
  // One object per file, one line each (JSONL): no embedded newlines.
  EXPECT_EQ(json.find('\n'), std::string::npos);
}

TEST(HemlintJson, RejectedTracksWerror) {
  const auto result = lint(R"(
resource CPU1 spp
source s1 periodic period=100
source unused periodic period=50
task T1 resource=CPU1 priority=1 cet=10
activate T1 from=s1
)");
  ASSERT_TRUE(result.parse_ok);
  ASSERT_EQ(result.count(LintSeverity::kWarning), 1u) << dump(result);
  ASSERT_EQ(result.count(LintSeverity::kError), 0u) << dump(result);
  EXPECT_EQ(daemon::json_find(write_lint_json(result, "a", false), "rejected"), "false");
  EXPECT_EQ(daemon::json_find(write_lint_json(result, "a", true), "rejected"), "true");
}

TEST(HemlintJson, EscapesQuotesAndBackslashes) {
  // Entity names are whitespace-delimited tokens, so quotes and backslashes
  // are legal in them and flow into diagnostic messages (HL005 names the
  // unreferenced source); the JSON rendering must escape both, and the file
  // name goes through the same escaper.
  const auto result = lint(R"(
resource CPU1 spp
source s1 periodic period=100
source un"us\ed periodic period=50
task T1 resource=CPU1 priority=1 cet=10
activate T1 from=s1
)");
  ASSERT_TRUE(result.parse_ok);
  ASSERT_NE(find(result, "HL005"), nullptr) << dump(result);
  const std::string json = write_lint_json(result, "dir\\sys \"v2\".hemcpa", false);
  EXPECT_NE(json.find("un\\\"us\\\\ed"), std::string::npos) << json;
  EXPECT_NE(json.find("dir\\\\sys \\\"v2\\\".hemcpa"), std::string::npos) << json;
  EXPECT_EQ(json.find('\n'), std::string::npos);
}

TEST(HemlintJson, ParseFailureStillRendersDiagnostics) {
  const auto result = lint("resource CPU1 spp\nbogus line here\n");
  ASSERT_FALSE(result.parse_ok);
  const std::string json = write_lint_json(result, "broken.hemcpa", false);
  EXPECT_EQ(daemon::json_find(json, "parse_ok"), "false");
  EXPECT_EQ(daemon::json_find(json, "rejected"), "true");
  EXPECT_NE(json.find("\"HL000\""), std::string::npos) << json;
}

TEST(Hemlint, FormatRendersGccStyle) {
  const Diagnostic d{LintSeverity::kError, 12, 7, "HL001", "too hot"};
  EXPECT_EQ(format(d), "12:7: error: too hot [HL001]");
  EXPECT_EQ(format(d, "sys.hemcpa"), "sys.hemcpa:12:7: error: too hot [HL001]");
  const Diagnostic unpositioned{LintSeverity::kWarning, 0, 0, "", "hm"};
  EXPECT_EQ(format(unpositioned), "warning: hm");
}

}  // namespace
}  // namespace hem::verify
