// Property-style tests of the model-algebra contract checker
// (src/verify/model_checker.hpp):
//
//  * every EventModel subclass, built with randomized-but-seeded parameters
//    (fixed seeds in the source, no wall-clock entropy), satisfies all
//    axioms AX1-AX8 — plus AX9 on pack outputs and AX10/AX11 on inner
//    updates — with zero violations;
//  * a deliberately broken mock model makes every axiom id fire;
//  * the HEM_VERIFY construction-time contracts throw ContractViolation on
//    broken inputs (the enforce_* functions are always linked; only the
//    call-site macros are compiled out in Release).

#include <algorithm>
#include <random>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/combinators.hpp"
#include "core/delta_function_model.hpp"
#include "core/grouped_stream_model.hpp"
#include "core/intersection_model.hpp"
#include "core/leaky_bucket_model.hpp"
#include "core/offset_transaction_model.hpp"
#include "core/output_model.hpp"
#include "core/shaper.hpp"
#include "core/standard_event_model.hpp"
#include "core/trace_model.hpp"
#include "hierarchical/inner_update.hpp"
#include "hierarchical/pack_constructor.hpp"
#include "model/cpa_engine.hpp"
#include "model/diagnostics.hpp"
#include "rtc/compile.hpp"
#include "scenarios/synth.hpp"
#include "verify/contracts.hpp"
#include "verify/model_checker.hpp"

namespace hem::verify {
namespace {

constexpr Count kHorizon = 40;

CheckerOptions options() {
  CheckerOptions opts;
  opts.horizon = kHorizon;
  return opts;
}

/// Seeded PRNG drawing via modulo: deterministic on every platform.
class Rand {
 public:
  explicit Rand(std::uint64_t seed) : rng_(seed) {}
  Time range(Time lo, Time hi) {  // inclusive
    return lo + static_cast<Time>(rng_() % static_cast<std::uint64_t>(hi - lo + 1));
  }

 private:
  std::mt19937_64 rng_;
};

void expect_clean(const EventModel& model, const std::string& path) {
  ModelChecker checker(options());
  checker.check_model(model, path);
  // The compilation axioms (AX12/AX13) ride the same subclass sweep: lower
  // the node to a small horizon and verify the flat form agrees with the
  // lazy DAG inside it and its curve pair stays conservative beyond it.
  rtc::CompileOptions copts;
  copts.max_horizon = kHorizon;
  model.ensure_compiled(copts);
  checker.check_compiled(model, path);
  EXPECT_TRUE(checker.ok()) << checker.format();
}

bool fired(const ModelChecker& checker, const std::string& axiom) {
  return std::any_of(checker.violations().begin(), checker.violations().end(),
                     [&](const AxiomViolation& v) { return v.axiom == axiom; });
}

// ---------------------------------------------------------------------------
// Positive sweep: all subclasses, randomized-but-seeded parameters.
// ---------------------------------------------------------------------------

TEST(ModelCheckerProperty, AllSubclassesSatisfyAllAxioms) {
  Rand rnd(0xC0FFEE5EEDull);
  for (int round = 0; round < 20; ++round) {
    const Time period = rnd.range(10, 1000);
    const Time jitter = rnd.range(0, 3 * period);
    const Time dmin = rnd.range(0, period);

    // StandardEventModel: constructor + all three factories.
    expect_clean(StandardEventModel(period, jitter, dmin), "sem");
    expect_clean(*StandardEventModel::periodic(period), "periodic");
    expect_clean(*StandardEventModel::periodic_with_jitter(period, jitter), "periodic+j");
    expect_clean(*StandardEventModel::sporadic(period, jitter, dmin), "sporadic");

    // DeltaFunctionModel (periodic burst shape).
    const Count burst_size = rnd.range(1, 4);
    const Time inner = rnd.range(1, 10);
    const Time outer_period = (burst_size - 1) * inner + rnd.range(1, 500);
    const auto burst = DeltaFunctionModel::periodic_burst(burst_size, inner, outer_period);
    expect_clean(*burst, "burst");

    // LeakyBucketModel.
    expect_clean(LeakyBucketModel(rnd.range(1, 8), rnd.range(1, 100)), "leaky");

    // OffsetTransactionModel: distinct offsets in [0, P), jitter below the
    // smallest inter-offset gap (constructor requirement).
    {
      const Time p = rnd.range(50, 500);
      std::set<Time> offs;
      const Time k = rnd.range(1, 4);
      while (static_cast<Time>(offs.size()) < k) offs.insert(rnd.range(0, p - 1));
      std::vector<Time> offsets(offs.begin(), offs.end());
      Time min_gap = p - offsets.back() + offsets.front();
      for (std::size_t i = 1; i < offsets.size(); ++i)
        min_gap = std::min(min_gap, offsets[i] - offsets[i - 1]);
      const Time j = min_gap > 0 ? rnd.range(0, min_gap) : 0;
      expect_clean(OffsetTransactionModel(p, offsets, j), "offsets");
    }

    // TraceModel: sorted random timestamps (finite stream: delta curves go
    // to infinity past the trace length).
    {
      std::vector<Time> ts;
      Time t = 0;
      const Time len = rnd.range(5, 30);
      for (Time i = 0; i < len; ++i) ts.push_back(t += rnd.range(0, 200));
      expect_clean(TraceModel(std::move(ts)), "trace");
    }

    // Combinators: binary OrModel, m-ary or_combine, and_combine.
    const ModelPtr a = StandardEventModel::periodic_with_jitter(period, jitter);
    const ModelPtr b = StandardEventModel::periodic(rnd.range(10, 1000));
    expect_clean(OrModel(a, b), "or2");
    const std::vector<ModelPtr> three{a, b, StandardEventModel::periodic(rnd.range(10, 1000))};
    expect_clean(*or_combine(three), "or3");
    const std::vector<ModelPtr> same_period{StandardEventModel::periodic(period),
                                            StandardEventModel::periodic_with_jitter(
                                                period, rnd.range(0, period))};
    expect_clean(*and_combine(same_period), "and2");

    // OutputModel (Theta_tau) and MinDistanceShaper.
    const Time r_minus = rnd.range(0, 50);
    const Time r_plus = r_minus + rnd.range(0, 100);
    expect_clean(OutputModel(a, r_minus, r_plus), "output");
    expect_clean(MinDistanceShaper(a, rnd.range(1, period)), "shaper");

    // IntersectionModel (a model intersected with itself is always
    // consistent) and GroupedStreamModel.
    expect_clean(IntersectionModel(a, a), "intersect");
    expect_clean(GroupedStreamModel(a, rnd.range(1, 4), rnd.range(0, 20)), "grouped");

    // The engine's degraded-fallback envelope (eq.-8 shape).
    expect_clean(cpa::SporadicEnvelopeModel(rnd.range(0, 100)), "envelope");
  }
}

// AX1-AX13 sweep over whole analysed systems: every per-task model the
// engine publishes (activation, output, hierarchical frame output) from 10
// seeded synth systems — half of them in the packed/hierarchical regime —
// must satisfy every axiom, both lazily and after compilation.
TEST(ModelCheckerProperty, AnalysedSynthSystemsSatisfyAllAxioms) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    scenarios::SynthParams params;
    params.resources = 5;
    params.tasks = 15;
    params.layers = 3;
    params.seed = seed;
    params.packed_permille = seed % 2 == 0 ? 300 : 0;
    const cpa::System sys = scenarios::build_synth_system(params);
    cpa::EngineOptions eopts;
    eopts.jobs = 1;
    const cpa::AnalysisReport report = cpa::CpaEngine(sys, eopts).run();
    ASSERT_TRUE(report.converged) << "seed " << seed;

    CheckerOptions copts;
    copts.horizon = 24;  // 15 tasks x several models per task: keep it quick
    ModelChecker checker(copts);
    rtc::CompileOptions lower;
    lower.max_horizon = 24;
    for (const cpa::TaskResult& task : report.tasks) {
      const std::string base = "seed" + std::to_string(seed) + "/" + task.name;
      const std::pair<ModelPtr, const char*> models[] = {{task.activation, "/act"},
                                                         {task.output, "/out"}};
      for (const auto& [model, what] : models) {
        if (model == nullptr) continue;
        checker.check_model(*model, base + what);
        model->ensure_compiled(lower);
        checker.check_compiled(*model, base + what);
      }
      if (task.hem_output != nullptr) {
        checker.check_hierarchical(*task.hem_output, base + "/hem",
                                   /*outer_bounds_inner=*/false);
      }
    }
    EXPECT_TRUE(checker.ok()) << checker.format();
  }
}

TEST(ModelCheckerProperty, PackOutputsAndInnerUpdatesSatisfyHierarchicalAxioms) {
  Rand rnd(0xDA7E2008ull);
  for (int round = 0; round < 20; ++round) {
    const ModelPtr trig = StandardEventModel::periodic_with_jitter(
        rnd.range(50, 500), rnd.range(0, 100));
    const ModelPtr pend = StandardEventModel::periodic(rnd.range(50, 2000));
    const bool with_timer = rnd.range(0, 1) == 1;
    const ModelPtr timer =
        with_timer ? StandardEventModel::periodic(rnd.range(50, 1000)) : nullptr;

    const HemPtr hem = pack({{trig, SignalCoupling::kTriggering},
                             {pend, SignalCoupling::kPending}},
                            timer);

    // Pack outputs (Def. 8): per-model axioms + outer-bounds-inners (AX9).
    ModelChecker checker(options());
    checker.check_hierarchical(*hem, "pack", /*outer_bounds_inner=*/true);
    EXPECT_TRUE(checker.ok()) << checker.format();

    // The standalone pending inner model (eqs. 7-8).
    expect_clean(PendingSignalModel(pend, hem->outer()), "pending");

    // After a response-time operation: per-model axioms on every component
    // plus the Def.-9 relation between each old and new inner stream.
    const Time r_minus = rnd.range(0, 40);
    const Time r_plus = r_minus + rnd.range(0, 80);
    const HemPtr after = hem->after_response(r_minus, r_plus);
    ModelChecker after_checker(options());
    after_checker.check_hierarchical(*after, "after", /*outer_bounds_inner=*/false);
    for (std::size_t i = 0; i < hem->inner_count(); ++i)
      after_checker.check_inner_update(*hem->inner(i), *after->inner(i), r_minus, r_plus,
                                       "after.inner[" + std::to_string(i) + "]");
    EXPECT_TRUE(after_checker.ok()) << after_checker.format();

    // ResponseUpdatedInnerModel standalone (Def. 9).
    const Count k = rnd.range(1, 3);
    const ResponseUpdatedInnerModel upd(trig, r_minus, r_plus, k);
    expect_clean(upd, "inner-upd");
    ModelChecker upd_checker(options());
    upd_checker.check_inner_update(*trig, upd, r_minus, r_plus, "inner-upd");
    EXPECT_TRUE(upd_checker.ok()) << upd_checker.format();
  }
}

// ---------------------------------------------------------------------------
// Negative tests: a deliberately broken mock fires every axiom id.
// ---------------------------------------------------------------------------

class BrokenModel final : public EventModel {
 public:
  enum class Mode {
    kDminDecreasing,      // AX1
    kDplusDecreasing,     // AX2
    kDminAboveDplus,      // AX3
    kEtaPlusNonMonotone,  // AX4
    kEtaMinusNonMonotone, // AX5
    kEtaMinusTooLarge,    // AX6 + AX8
    kEtaPlusTooSmall,     // AX7
  };

  explicit BrokenModel(Mode mode) : mode_(mode) {}

  [[nodiscard]] std::string describe() const override { return "Broken"; }

 protected:
  [[nodiscard]] Time delta_min_raw(Count n) const override {
    switch (mode_) {
      case Mode::kDminDecreasing:
        return 10000 - 10 * n;
      case Mode::kDminAboveDplus:
        return 10 * (n - 1);
      case Mode::kDplusDecreasing:
        return 0;
      default:
        return 10 * (n - 1);  // well-formed periodic-10 floor
    }
  }

  [[nodiscard]] Time delta_plus_raw(Count n) const override {
    switch (mode_) {
      case Mode::kDminDecreasing:
        return 100000 * (n - 1);  // stays above the decreasing delta-
      case Mode::kDplusDecreasing:
        return 10000 - 10 * n;
      case Mode::kDminAboveDplus:
        return 5 * (n - 1);
      default:
        return 10 * (n - 1);
    }
  }

  [[nodiscard]] Count eta_plus_raw(Time dt) const override {
    switch (mode_) {
      case Mode::kEtaPlusNonMonotone:
        return dt % 2 == 0 ? 100 : 1;
      case Mode::kEtaPlusTooSmall:
        return 1;
      default:
        return EventModel::eta_plus_raw(dt);
    }
  }

  [[nodiscard]] Count eta_minus_raw(Time dt) const override {
    switch (mode_) {
      case Mode::kEtaMinusNonMonotone:
        return dt % 2 == 0 ? 50 : 0;
      case Mode::kEtaMinusTooLarge:
        return 50;
      default:
        return EventModel::eta_minus_raw(dt);
    }
  }

 private:
  Mode mode_;
};

ModelChecker check_broken(BrokenModel::Mode mode) {
  ModelChecker checker(options());
  checker.check_model(BrokenModel(mode), "broken");
  return checker;
}

TEST(ModelCheckerNegative, DeltaMinDecreasingFiresAX1) {
  const auto checker = check_broken(BrokenModel::Mode::kDminDecreasing);
  EXPECT_TRUE(fired(checker, "AX1")) << checker.format();
}

TEST(ModelCheckerNegative, DeltaPlusDecreasingFiresAX2) {
  const auto checker = check_broken(BrokenModel::Mode::kDplusDecreasing);
  EXPECT_TRUE(fired(checker, "AX2")) << checker.format();
}

TEST(ModelCheckerNegative, DeltaMinAboveDeltaPlusFiresAX3) {
  const auto checker = check_broken(BrokenModel::Mode::kDminAboveDplus);
  EXPECT_TRUE(fired(checker, "AX3")) << checker.format();
}

TEST(ModelCheckerNegative, NonMonotoneEtaPlusFiresAX4) {
  const auto checker = check_broken(BrokenModel::Mode::kEtaPlusNonMonotone);
  EXPECT_TRUE(fired(checker, "AX4")) << checker.format();
}

TEST(ModelCheckerNegative, NonMonotoneEtaMinusFiresAX5) {
  const auto checker = check_broken(BrokenModel::Mode::kEtaMinusNonMonotone);
  EXPECT_TRUE(fired(checker, "AX5")) << checker.format();
}

TEST(ModelCheckerNegative, EtaMinusAboveEtaPlusFiresAX6AndAX8) {
  const auto checker = check_broken(BrokenModel::Mode::kEtaMinusTooLarge);
  EXPECT_TRUE(fired(checker, "AX6")) << checker.format();
  EXPECT_TRUE(fired(checker, "AX8")) << checker.format();
}

TEST(ModelCheckerNegative, EtaPlusBelowPseudoInverseFiresAX7) {
  const auto checker = check_broken(BrokenModel::Mode::kEtaPlusTooSmall);
  EXPECT_TRUE(fired(checker, "AX7")) << checker.format();
}

TEST(ModelCheckerNegative, InnerFasterThanOuterFiresAX9) {
  // A direct (checker-bypassing) HEM construction whose inner stream emits
  // 10x faster than its outer stream — impossible for a subsequence.
  const HierarchicalEventModel hem(StandardEventModel::periodic(100),
                                   {StandardEventModel::periodic(10)}, PackRule::instance());
  ModelChecker checker(options());
  checker.check_hierarchical(hem, "bad-hem", /*outer_bounds_inner=*/true);
  EXPECT_TRUE(fired(checker, "AX9")) << checker.format();
  EXPECT_THROW(enforce_pack_contract(hem, "test"), ContractViolation);
}

TEST(ModelCheckerNegative, UpdatedInnerBelowSerialisationFloorFiresAX10) {
  // "Updated" inner spaced 1 apart cannot result from an operation with
  // r- = 5 (the eq.-8 fallback guarantees (n-1)*5); delta+ = inf keeps
  // AX11 quiet so the modes are exercised independently.
  const auto before = StandardEventModel::periodic(100);
  const LeakyBucketModel after(4, 1);
  ModelChecker checker(options());
  checker.check_inner_update(*before, after, 5, 9, "bad-update");
  EXPECT_TRUE(fired(checker, "AX10")) << checker.format();
  EXPECT_FALSE(fired(checker, "AX11")) << checker.format();
  EXPECT_THROW(enforce_inner_update_contract(*before, after, 5, 9, "test"), ContractViolation);
}

TEST(ModelCheckerNegative, UpdatedInnerWithShrunkDeltaPlusFiresAX11) {
  // Losing the jitter spread shrinks delta+ — a response operation can
  // only widen it.  delta- is unchanged-periodic, so AX10 stays quiet.
  const auto before = StandardEventModel::periodic_with_jitter(100, 50);
  const auto after = StandardEventModel::periodic(100);
  ModelChecker checker(options());
  checker.check_inner_update(*before, *after, 5, 9, "bad-update");
  EXPECT_TRUE(fired(checker, "AX11")) << checker.format();
  EXPECT_FALSE(fired(checker, "AX10")) << checker.format();
}

TEST(ModelCheckerNegative, ViolationReportsCarryPathAxiomAndWitness) {
  const auto checker = check_broken(BrokenModel::Mode::kDminAboveDplus);
  ASSERT_FALSE(checker.ok());
  const AxiomViolation& v = checker.violations().front();
  EXPECT_EQ(v.axiom, "AX3");
  EXPECT_NE(v.model.find("broken"), std::string::npos);
  EXPECT_NE(v.model.find("Broken"), std::string::npos);  // describe() appended
  EXPECT_GE(v.witness, 2);
  EXPECT_NE(v.detail.find("delta-"), std::string::npos);
  EXPECT_NE(checker.format().find("AX3"), std::string::npos);
}

TEST(ModelCheckerNegative, OneReportPerAxiomAndModel) {
  // The broken curve is wrong at every n; the checker must not flood.
  const auto checker = check_broken(BrokenModel::Mode::kDminAboveDplus);
  const auto ax3 = std::count_if(checker.violations().begin(), checker.violations().end(),
                                 [](const AxiomViolation& v) { return v.axiom == "AX3"; });
  EXPECT_EQ(ax3, 1);
}

// ---------------------------------------------------------------------------
// Compilation axioms AX12/AX13 (rtc/compile.hpp lowering).
// ---------------------------------------------------------------------------

/// Mock models exercising the ways a lowering can go wrong.  The compiled
/// form derives its eta inversions and curve tails from delta samples, so
/// each mode breaks exactly one side of the contract:
///  * kBrokenLazyEta — correct deltas, lying eta accessors: the compiled
///    inversion is right, the lazy path is not, AX12 must see the split;
///  * kSubadditiveDmin — delta- flattens out, violating the
///    superadditivity the lower-curve tail slope relies on: the affine
///    tail overtakes the true curve beyond the horizon, AX13 (lower);
///  * kSuperadditiveDplus — delta+ grows quadratically, violating the
///    subadditivity behind the upper tail: AX13 (upper).
class BrokenCompileModel final : public EventModel {
 public:
  enum class Mode { kBrokenLazyEta, kSubadditiveDmin, kSuperadditiveDplus };

  explicit BrokenCompileModel(Mode mode) : mode_(mode) {}

  [[nodiscard]] std::string describe() const override { return "BrokenCompile"; }

 protected:
  [[nodiscard]] Time delta_min_raw(Count n) const override {
    if (mode_ == Mode::kSubadditiveDmin) return 100;  // flat: delta-(n+1) < delta-(n)+delta-(2)
    return 10 * (n - 1);
  }

  [[nodiscard]] Time delta_plus_raw(Count n) const override {
    if (mode_ == Mode::kSuperadditiveDplus) return sat_mul(n - 1, n - 1);  // quadratic
    return sat_mul(10, n - 1);
  }

  [[nodiscard]] Count eta_plus_raw(Time dt) const override {
    if (mode_ == Mode::kBrokenLazyEta) return 1;  // ignores the delta curves entirely
    return EventModel::eta_plus_raw(dt);
  }

 private:
  Mode mode_;
};

ModelChecker check_broken_compile(BrokenCompileModel::Mode mode) {
  const BrokenCompileModel model(mode);
  // Small horizon so the AX13 tail probes reach past it cheaply.
  rtc::CompileOptions copts;
  copts.max_horizon = 8;
  model.ensure_compiled(copts);
  ModelChecker checker(options());
  checker.check_compiled(model, "broken-compile");
  return checker;
}

TEST(ModelCheckerNegative, CompiledLazyEtaDisagreementFiresAX12) {
  const auto checker = check_broken_compile(BrokenCompileModel::Mode::kBrokenLazyEta);
  EXPECT_TRUE(fired(checker, "AX12")) << checker.format();
}

TEST(ModelCheckerNegative, NonSuperadditiveDminBreaksLowerTailFiresAX13) {
  const auto checker = check_broken_compile(BrokenCompileModel::Mode::kSubadditiveDmin);
  EXPECT_TRUE(fired(checker, "AX13")) << checker.format();
  EXPECT_FALSE(fired(checker, "AX12")) << checker.format();  // samples still agree
}

TEST(ModelCheckerNegative, NonSubadditiveDplusBreaksUpperTailFiresAX13) {
  const auto checker = check_broken_compile(BrokenCompileModel::Mode::kSuperadditiveDplus);
  EXPECT_TRUE(fired(checker, "AX13")) << checker.format();
}

}  // namespace
}  // namespace hem::verify
