// Tests of the differential verification subsystem (verify/differential.hpp):
// the built-in oracle registry stays clean on healthy systems (the paper
// example and seeded synth systems, plain and packed), every deliberately
// broken model kind is caught, bucket ids are stable across runs, and the
// ddmin shrinker reduces a failing config while preserving its bucket.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "model/cpa_engine.hpp"
#include "model/textual_config.hpp"
#include "scenarios/synth.hpp"
#include "verify/differential.hpp"
#include "verify/shrink.hpp"

namespace hem::verify {
namespace {

using cpa::ParsedSystem;
using cpa::System;

scenarios::SynthParams small_params(std::uint64_t seed, int packed_permille = 0) {
  scenarios::SynthParams p;
  p.resources = 4;
  p.tasks = 14;
  p.layers = 2;
  p.seed = seed;
  p.packed_permille = packed_permille;
  return p;
}

DiffOptions fast_options() {
  DiffOptions opts;
  opts.sim_horizon = 20'000;
  opts.probe_points = 8;
  opts.checker_horizon = 16;
  return opts;
}

std::string dump(const std::vector<OracleFinding>& findings) {
  std::ostringstream os;
  for (const OracleFinding& f : findings) {
    os << f.oracle << " / " << f.fingerprint << " : " << f.detail << "\n";
  }
  return os.str();
}

TEST(OracleRegistryTest, BuiltinFamiliesPresentInOrder) {
  const OracleRegistry registry = OracleRegistry::with_builtin_oracles();
  ASSERT_EQ(registry.oracles().size(), 4u);
  EXPECT_EQ(registry.oracles()[0]->name(), "dominance");
  EXPECT_EQ(registry.oracles()[1]->name(), "determinism");
  EXPECT_EQ(registry.oracles()[2]->name(), "compilation");
  EXPECT_EQ(registry.oracles()[3]->name(), "degradation");
  EXPECT_NE(registry.find("dominance"), nullptr);
  EXPECT_EQ(registry.find("no-such-oracle"), nullptr);
}

TEST(OracleRegistryTest, CleanOnHealthySynthSystems) {
  const OracleRegistry registry = OracleRegistry::with_builtin_oracles();
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const System sys =
        scenarios::build_synth_system(small_params(seed, seed % 2 == 0 ? 300 : 0));
    const std::string text = scenarios::to_config_text(sys);
    DiffInput in;
    in.system = &sys;
    in.config_text = text;
    const auto findings = registry.run(in, fast_options());
    EXPECT_TRUE(findings.empty()) << "seed " << seed << ":\n" << dump(findings);
  }
}

TEST(OracleRegistryTest, FindingsAreDeterministicAcrossRuns) {
  const OracleRegistry registry = OracleRegistry::with_builtin_oracles();
  System sys = scenarios::build_synth_system(small_params(3));
  ASSERT_GT(inject_broken_models(sys, "ax3"), 0);
  DiffInput in;
  in.system = &sys;
  const auto a = registry.run(in, fast_options());
  const auto b = registry.run(in, fast_options());
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].oracle, b[i].oracle);
    EXPECT_EQ(a[i].fingerprint, b[i].fingerprint);
    EXPECT_EQ(a[i].bucket(), b[i].bucket());
  }
}

TEST(OracleRegistryTest, EveryBrokenModelKindIsCaught) {
  const OracleRegistry registry = OracleRegistry::with_builtin_oracles();
  for (const std::string& kind : broken_model_kinds()) {
    System sys = scenarios::build_synth_system(small_params(2));
    ASSERT_GT(inject_broken_models(sys, kind), 0) << kind;
    DiffInput in;
    in.system = &sys;
    const auto findings = registry.run(in, fast_options());
    EXPECT_FALSE(findings.empty()) << "broken kind '" << kind << "' not caught";
  }
}

TEST(OracleRegistryTest, BucketsSeparateOracleFamilies) {
  OracleFinding a{"dominance", "wcrt:T3", ""};
  OracleFinding b{"compilation", "wcrt:T3", ""};
  OracleFinding c{"dominance", "wcrt:T3", "different detail, same bucket"};
  EXPECT_NE(a.bucket(), b.bucket());
  EXPECT_EQ(a.bucket(), c.bucket());
}

TEST(BrokenModelTest, UnknownKindThrows) {
  EXPECT_THROW((void)make_broken_model("no-such-kind"), std::invalid_argument);
}

TEST(ReportFingerprintTest, InsensitiveToJobCountAndIncremental) {
  const System sys = scenarios::build_synth_system(small_params(5, 300));
  cpa::EngineOptions base;
  base.jobs = 1;
  const std::uint64_t cold = report_fingerprint(cpa::CpaEngine(sys, base).run());
  cpa::EngineOptions wide = base;
  wide.jobs = 4;
  EXPECT_EQ(cold, report_fingerprint(cpa::CpaEngine(sys, wide).run()));
  cpa::EngineOptions no_inc = base;
  no_inc.incremental = false;
  EXPECT_EQ(cold, report_fingerprint(cpa::CpaEngine(sys, no_inc).run()));
}

TEST(ReportFingerprintTest, SensitiveToTheSystem) {
  const System a = scenarios::build_synth_system(small_params(1));
  const System b = scenarios::build_synth_system(small_params(2));
  cpa::EngineOptions opts;
  opts.jobs = 1;
  EXPECT_NE(report_fingerprint(cpa::CpaEngine(a, opts).run()),
            report_fingerprint(cpa::CpaEngine(b, opts).run()));
}

// --- shrinker ---------------------------------------------------------------

// A config whose failure is localised to one task; the predicate marks any
// candidate still containing that task as "failing", mimicking how hemfuzz
// re-runs the violated oracle on shrink candidates.
TEST(ShrinkConfigTest, RemovesEverythingUnrelatedToTheFailure) {
  const System sys = scenarios::build_synth_system(small_params(3, 300));
  const std::string text = scenarios::to_config_text(sys);
  // Pick a layer-0 task name out of the text: first `task ` statement.
  std::istringstream lines(text);
  std::string needle;
  for (std::string line; std::getline(lines, line);) {
    if (line.rfind("task ", 0) == 0) {
      std::istringstream t(line);
      std::string kw;
      t >> kw >> needle;
      break;
    }
  }
  ASSERT_FALSE(needle.empty());
  const auto still_fails = [&](const std::string& candidate) {
    std::istringstream in(candidate);
    try {
      (void)cpa::parse_system_config(in);
    } catch (const std::exception&) {
      return false;  // must stay parseable
    }
    return candidate.find("task " + needle + " ") != std::string::npos;
  };
  ASSERT_TRUE(still_fails(text));
  const ShrinkResult result = shrink_config(text, still_fails);
  EXPECT_TRUE(result.changed);
  EXPECT_TRUE(still_fails(result.text));
  EXPECT_LT(result.text.size(), text.size());
  // The shrunk config should be down to very few statements: the needle
  // task, its resource, and its activation source.
  int resources = 0;
  int tasks = 0;
  std::istringstream shrunk(result.text);
  for (std::string line; std::getline(shrunk, line);) {
    if (line.rfind("resource ", 0) == 0) ++resources;
    if (line.rfind("task ", 0) == 0) ++tasks;
  }
  EXPECT_LE(resources, 1);
  EXPECT_LE(tasks, 1);
}

TEST(ShrinkConfigTest, ReportsNoChangeWhenNothingCanGo) {
  const std::string text =
      "resource CPU spp\n"
      "source s periodic period=100\n"
      "task T resource=CPU priority=1 cet=10\n"
      "activate T from=s\n";
  const auto still_fails = [&](const std::string& candidate) {
    std::istringstream in(candidate);
    try {
      (void)cpa::parse_system_config(in);
    } catch (const std::exception&) {
      return false;
    }
    return candidate.find("task T ") != std::string::npos;
  };
  const ShrinkResult result = shrink_config(text, still_fails);
  EXPECT_TRUE(still_fails(result.text));
}

TEST(MutateConfigTest, DeterministicAndUsuallyParseable) {
  const System sys = scenarios::build_synth_system(small_params(6, 300));
  const std::string base = scenarios::to_config_text(sys);
  int parsed_ok = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const std::string a = mutate_config(base, seed);
    const std::string b = mutate_config(base, seed);
    EXPECT_EQ(a, b) << "mutation must be a pure function of (text, seed)";
    std::istringstream in(a);
    try {
      (void)cpa::parse_system_config(in);
      ++parsed_ok;
    } catch (const std::exception&) {
      // Some mutations legitimately produce rejected configs (duplicate
      // priorities on CAN, sem dmin > period); hemfuzz just skips those.
    }
  }
  EXPECT_GT(parsed_ok, 10) << "mutator output should mostly stay parseable";
}

}  // namespace
}  // namespace hem::verify
