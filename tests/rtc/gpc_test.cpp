#include "rtc/gpc.hpp"

#include <gtest/gtest.h>

#include "core/standard_event_model.hpp"
#include "sched/spp.hpp"

namespace hem::rtc {
namespace {

TEST(GpcTest, SingleTaskOnFullServiceIsExact) {
  // Periodic task P=10, C=3 alone: delay = 3 (one execution).
  const auto m = StandardEventModel::periodic(10);
  const auto r = greedy_processing(upper_arrival_from(*m), full_service(), 3);
  EXPECT_EQ(r.delay, 3);
  EXPECT_EQ(r.backlog_events, 1);
}

TEST(GpcTest, BurstBacklogsAndDrains) {
  // Burst of 3 simultaneous events, C=10: the third waits 30.
  const auto m = StandardEventModel::periodic_with_jitter(100, 250);
  const auto r = greedy_processing(upper_arrival_from(*m), full_service(), 10);
  EXPECT_EQ(r.delay, 30);
  EXPECT_EQ(r.backlog_events, 3);
}

TEST(GpcTest, RemainingServiceFeedsLowerPriority) {
  const auto hp = StandardEventModel::periodic(10);
  const auto r = greedy_processing(upper_arrival_from(*hp), full_service(), 3);
  // Remaining service: ~7 time units per 10.
  EXPECT_NEAR(r.remaining_service.long_run_rate(), 0.7, 0.05);
  EXPECT_EQ(r.remaining_service.value(0), 0);
}

TEST(GpcTest, OutputArrivalAtMostShiftedInput) {
  const auto m = StandardEventModel::periodic(10);
  const Curve alpha = upper_arrival_from(*m);
  const auto r = greedy_processing(alpha, full_service(), 3);
  for (Time x = 0; x <= 200; x += 7) {
    // The deconvolution bound is at least as tight as the shift bound...
    EXPECT_LE(r.output_arrival.value(x), alpha.value(x + r.delay) + 1) << x;
    // ...and the output can never admit fewer events than the input allows
    // in the same window minus what is still queued (sanity: >= alpha(x) - 1).
    EXPECT_GE(r.output_arrival.value(x), alpha.value(x) - 1) << x;
  }
  EXPECT_DOUBLE_EQ(r.output_arrival.long_run_rate(), alpha.long_run_rate());
}

TEST(GpcTest, OverloadThrows) {
  const auto m = StandardEventModel::periodic(10);
  EXPECT_THROW(greedy_processing(upper_arrival_from(*m), full_service(), 12), AnalysisError);
  EXPECT_THROW(greedy_processing(upper_arrival_from(*m), full_service(), 0),
               std::invalid_argument);
}

TEST(FpRtcTest, ChainBoundsDominateBusyWindowAnalysis) {
  // RTC delay bounds are sound but coarser than the exact busy-window SPP
  // analysis: expect WCRT_spp <= delay_rtc <= a small multiple.
  const auto hp = StandardEventModel::periodic(10);
  const auto lp = StandardEventModel::periodic(20);
  const std::vector<RtcTask> rtc_tasks{{"hp", upper_arrival_from(*hp), 3},
                                       {"lp", upper_arrival_from(*lp), 4}};
  const auto rtc = analyze_fp_rtc(rtc_tasks);

  sched::SppAnalysis spp({sched::TaskParams{"hp", 1, sched::ExecutionTime(3), hp},
                          sched::TaskParams{"lp", 2, sched::ExecutionTime(4), lp}});
  const auto exact = spp.analyze_all();

  for (std::size_t i = 0; i < rtc.size(); ++i) {
    EXPECT_GE(rtc[i].delay, exact[i].wcrt) << rtc[i].name;
    EXPECT_LE(rtc[i].delay, 4 * exact[i].wcrt) << rtc[i].name;
  }
}

TEST(FpRtcTest, PaperCpuComparison) {
  // The paper system's CPU1 with HEM-like activation rates: both analyses
  // agree on the order of magnitude; busy-window is tighter.
  const auto t1 = StandardEventModel::periodic(250);
  const auto t2 = StandardEventModel::periodic(450);
  const auto t3 = StandardEventModel::periodic(1000);
  const std::vector<RtcTask> tasks{{"T1", upper_arrival_from(*t1), 24},
                                   {"T2", upper_arrival_from(*t2), 32},
                                   {"T3", upper_arrival_from(*t3), 40}};
  const auto rtc = analyze_fp_rtc(tasks);
  EXPECT_EQ(rtc[0].delay, 24);
  EXPECT_GE(rtc[1].delay, 56);
  EXPECT_GE(rtc[2].delay, 96);
  EXPECT_LE(rtc[2].delay, 400);
}

TEST(FpRtcTest, EmptyRejected) {
  EXPECT_THROW(analyze_fp_rtc({}), std::invalid_argument);
}

}  // namespace
}  // namespace hem::rtc
