// Unit and property tests of the curve-algebra lowering pass
// (src/rtc/compile.hpp):
//
//  * the flat sample arrays reproduce the lazy DAG bit-for-bit inside the
//    compiled horizon, and the try_* accessors refuse queries beyond it;
//  * the binary-search eta inversions match the generic galloping
//    derivation of the paper's eqs. (1)/(2);
//  * the emitted curve pair is exact on the sampled grid and conservative
//    beyond it (affine tails from super-/subadditivity);
//  * `ensure_compiled` publishes once (first-publication-wins) and the
//    transparent base-class fast path stays bit-identical across the
//    horizon boundary — swept over every EventModel subclass.

#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "core/combinators.hpp"
#include "core/delta_function_model.hpp"
#include "core/grouped_stream_model.hpp"
#include "core/intersection_model.hpp"
#include "core/leaky_bucket_model.hpp"
#include "core/offset_transaction_model.hpp"
#include "core/output_model.hpp"
#include "core/shaper.hpp"
#include "core/standard_event_model.hpp"
#include "core/trace_model.hpp"
#include "model/diagnostics.hpp"
#include "rtc/compile.hpp"

namespace hem::rtc {
namespace {

CompileOptions small_budget(Count max_horizon, Time time_horizon = 0) {
  CompileOptions opts;
  opts.max_horizon = max_horizon;
  opts.time_horizon = time_horizon;
  return opts;
}

TEST(CompileTest, DeltaSamplesMatchLazyInsideHorizon) {
  const auto model = StandardEventModel::periodic_with_jitter(100, 30);
  const auto c = CompiledModel::lower(*model, small_budget(32));
  for (Count n = 0; n <= c->delta_min_horizon(); ++n) {
    Time fast = -1;
    ASSERT_TRUE(c->try_delta_min(n, fast)) << "n=" << n;
    EXPECT_EQ(fast, model->delta_min_lazy(n)) << "n=" << n;
  }
  for (Count n = 0; n <= c->delta_plus_horizon(); ++n) {
    Time fast = -1;
    ASSERT_TRUE(c->try_delta_plus(n, fast)) << "n=" << n;
    EXPECT_EQ(fast, model->delta_plus_lazy(n)) << "n=" << n;
  }
}

TEST(CompileTest, QueriesBeyondHorizonAreRefused) {
  const auto model = StandardEventModel::periodic(50);
  const auto c = CompiledModel::lower(*model, small_budget(16));
  Time out = 0;
  Count n_out = 0;
  EXPECT_EQ(c->delta_min_horizon(), 17);  // 16 samples cover n in [2, 17]
  EXPECT_FALSE(c->try_delta_min(c->delta_min_horizon() + 1, out));
  EXPECT_FALSE(c->try_delta_plus(c->delta_plus_horizon() + 1, out));
  // eta of a span larger than every compiled sample may lie beyond the
  // horizon: the compiled form must hand over to the lazy path, not guess.
  EXPECT_FALSE(c->try_eta_plus(kTimeInfinity / 2, n_out));
  EXPECT_FALSE(c->try_eta_minus(kTimeInfinity / 2, n_out));
}

TEST(CompileTest, EtaInversionsMatchLazyGalloping) {
  const auto model = StandardEventModel::sporadic(100, 40, 10);
  const auto c = CompiledModel::lower(*model, small_budget(64));
  for (Time dt = 0; dt <= 2000; ++dt) {
    Count fast = -1;
    if (c->try_eta_plus(dt, fast)) EXPECT_EQ(fast, model->eta_plus_lazy(dt)) << "dt=" << dt;
    if (c->try_eta_minus(dt, fast)) EXPECT_EQ(fast, model->eta_minus_lazy(dt)) << "dt=" << dt;
  }
}

TEST(CompileTest, EtaZeroAndNegativeSpansAreZero) {
  const auto model = StandardEventModel::periodic(10);
  const auto c = CompiledModel::lower(*model, small_budget(8));
  Count out = -1;
  ASSERT_TRUE(c->try_eta_plus(0, out));
  EXPECT_EQ(out, 0);
  ASSERT_TRUE(c->try_eta_minus(0, out));
  EXPECT_EQ(out, 0);
}

TEST(CompileTest, TimeHorizonStopsSamplingEarly) {
  const auto model = StandardEventModel::periodic(10);
  const auto c = CompiledModel::lower(*model, small_budget(1024, 100));
  // delta-(n) = 10 * (n - 1) reaches 100 at n = 11: sampling must stop
  // around there instead of burning the full 1024-sample budget.
  EXPECT_LT(c->delta_min_horizon(), 20);
  EXPECT_GE(c->delta_min_horizon(), 11);
  Time out = 0;
  ASSERT_TRUE(c->try_delta_min(11, out));
  EXPECT_EQ(out, 100);
}

TEST(CompileTest, FiniteTraceStopsAtInfinityAndHasNoUpperCurve) {
  // 5 events: delta-(n) and delta+(n) are infinite for n > 5.  The first
  // infinite sample is recorded (so n = 6 answers from the array) and then
  // sampling stops; no finite upper curve exists.
  const TraceModel model({0, 10, 25, 40, 70});
  const auto c = CompiledModel::lower(model, small_budget(64));
  EXPECT_EQ(c->delta_plus_horizon(), 6);
  EXPECT_EQ(c->upper_curve(), nullptr);
  Time out = 0;
  for (Count n = 2; n <= c->delta_min_horizon(); ++n) {
    ASSERT_TRUE(c->try_delta_min(n, out));
    EXPECT_EQ(out, model.delta_min_lazy(n));
  }
}

TEST(CompileTest, LowerCurveExactOnGridConservativeBeyond) {
  const auto model = StandardEventModel::periodic_with_jitter(100, 250);
  const auto c = CompiledModel::lower(*model, small_budget(24));
  const Curve& lo = c->lower_curve();
  for (Count n = 2; n <= c->delta_min_horizon(); ++n)
    EXPECT_EQ(lo.value(static_cast<Time>(n)), model->delta_min_lazy(n)) << "n=" << n;
  for (Count n = c->delta_min_horizon() + 1; n <= c->delta_min_horizon() + 32; ++n)
    EXPECT_LE(lo.value(static_cast<Time>(n)), model->delta_min_lazy(n)) << "n=" << n;
}

TEST(CompileTest, UpperCurveExactOnGridConservativeBeyond) {
  const auto model = StandardEventModel::periodic_with_jitter(100, 250);
  const auto c = CompiledModel::lower(*model, small_budget(24));
  ASSERT_NE(c->upper_curve(), nullptr);
  const Curve& up = *c->upper_curve();
  for (Count n = 2; n <= c->delta_plus_horizon(); ++n)
    EXPECT_EQ(up.value(static_cast<Time>(n)), model->delta_plus_lazy(n)) << "n=" << n;
  for (Count n = c->delta_plus_horizon() + 1; n <= c->delta_plus_horizon() + 32; ++n)
    EXPECT_GE(up.value(static_cast<Time>(n)), model->delta_plus_lazy(n)) << "n=" << n;
}

TEST(CompileTest, SimultaneousBurstEventsCompile) {
  // Bursts with inner distance 0 produce duplicate delta samples: the x = n
  // grid keeps them apart (one point per n), so the curve stays valid.
  const auto model = DeltaFunctionModel::periodic_burst(3, 0, 100);
  const auto c = CompiledModel::lower(*model, small_budget(32));
  for (Count n = 2; n <= c->delta_min_horizon(); ++n) {
    Time out = -1;
    ASSERT_TRUE(c->try_delta_min(n, out));
    EXPECT_EQ(out, model->delta_min_lazy(n));
  }
  for (Time dt = 0; dt <= 500; ++dt) {
    Count fast = -1;
    if (c->try_eta_plus(dt, fast)) EXPECT_EQ(fast, model->eta_plus_lazy(dt)) << "dt=" << dt;
  }
}

TEST(CompileTest, EnsureCompiledPublishesExactlyOnce) {
  const auto model = StandardEventModel::periodic(75);
  EXPECT_EQ(model->compiled(), nullptr);
  const CompiledModel& first = model->ensure_compiled(small_budget(16));
  EXPECT_EQ(model->compiled(), &first);
  // A second call with different options must return the already-published
  // form (pointer stability: callers may hold references across calls).
  const CompiledModel& second = model->ensure_compiled(small_budget(64));
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(&first.source(), model.get());
}

TEST(CompileTest, TransparentFastPathBitIdenticalAcrossHorizonBoundary) {
  // Every EventModel subclass: compile with a small horizon, then compare
  // the public (compiled-first) accessors against the lazy path on a fresh
  // twin node, across the horizon boundary where fallback kicks in.
  std::mt19937_64 rng(0xC09B11Eull);
  const auto range = [&](Time lo, Time hi) {
    return lo + static_cast<Time>(rng() % static_cast<std::uint64_t>(hi - lo + 1));
  };
  const auto make_models = [&](int which, Time p, Time j) -> std::pair<ModelPtr, ModelPtr> {
    const auto build = [&]() -> ModelPtr {
      const ModelPtr base = StandardEventModel::periodic_with_jitter(p, j);
      switch (which) {
        case 0: return base;
        case 1: return StandardEventModel::sporadic(p, j, p / 2);
        case 2: return DeltaFunctionModel::periodic_burst(3, 2, p);
        case 3: return std::make_shared<LeakyBucketModel>(4, p);
        case 4: return std::make_shared<OffsetTransactionModel>(p, std::vector<Time>{0, p / 3}, 0);
        case 5: return std::make_shared<TraceModel>(std::vector<Time>{0, p, 2 * p, 3 * p + j});
        case 6: return std::make_shared<OrModel>(base, StandardEventModel::periodic(p + 7));
        case 7: return std::make_shared<OutputModel>(base, j / 2, j / 2 + p / 4);
        case 8: return std::make_shared<MinDistanceShaper>(base, p / 2);
        case 9: return std::make_shared<IntersectionModel>(base, base);
        case 10: return std::make_shared<GroupedStreamModel>(base, 2, 5);
        case 11: return std::make_shared<cpa::SporadicEnvelopeModel>(j);
        default: return base;
      }
    };
    return {build(), build()};
  };
  for (int which = 0; which <= 11; ++which) {
    const Time p = range(10, 500);
    const Time j = range(0, 2 * p);
    const auto [compiled_one, lazy_twin] = make_models(which, p, j);
    const Count horizon = 12;
    compiled_one->ensure_compiled(small_budget(horizon));
    ASSERT_NE(compiled_one->compiled(), nullptr) << "which=" << which;
    for (Count n = 0; n <= horizon + 16; ++n) {
      EXPECT_EQ(compiled_one->delta_min(n), lazy_twin->delta_min(n))
          << "which=" << which << " n=" << n;
      EXPECT_EQ(compiled_one->delta_plus(n), lazy_twin->delta_plus(n))
          << "which=" << which << " n=" << n;
    }
    for (Time dt = 0; dt <= 4 * p; dt += std::max<Time>(1, p / 7)) {
      EXPECT_EQ(compiled_one->eta_plus(dt), lazy_twin->eta_plus(dt))
          << "which=" << which << " dt=" << dt;
      EXPECT_EQ(compiled_one->eta_minus(dt), lazy_twin->eta_minus(dt))
          << "which=" << which << " dt=" << dt;
    }
  }
}

}  // namespace
}  // namespace hem::rtc
