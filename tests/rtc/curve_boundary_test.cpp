// Boundary regressions for the Curve algebra (src/rtc/curve.hpp), added
// alongside the compilation pass whose grid curves lean on these exact
// guarantees:
//
//  * every operator (sum, clamped difference, min/max envelope, shift) is
//    exact at x = 0 and at every breakpoint of either operand — the
//    ceiling/floor interpolation only ever matters strictly between
//    breakpoints;
//  * the vertical-deviation rounding guard: two curves with identical
//    breakpoints can still differ by one unit between grid points (upper
//    rounds up, lower rounds down), which the bound must include — without
//    inflating deviations that are genuinely breakpoint-exact;
//  * constructor violations carry positioned messages naming the offending
//    index and values.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "rtc/curve.hpp"

namespace hem::rtc {
namespace {

/// Staircase-ish upper arrival: burst of 2, then one event per 10.
Curve upper_arrival() {
  return Curve(CurveKind::kUpper, {{0, 2}, {10, 3}, {30, 4}}, 1, 10);
}

/// Rate-latency lower service: nothing for 5, then slope 1 per 2.
Curve lower_service() { return Curve(CurveKind::kLower, {{0, 0}, {5, 0}}, 1, 2); }

std::vector<Time> probe_points(const Curve& a, const Curve& b) {
  std::vector<Time> xs{0};
  for (const auto& p : a.points()) xs.push_back(p.x);
  for (const auto& p : b.points()) xs.push_back(p.x);
  return xs;
}

TEST(CurveBoundaryTest, SumExactAtZeroAndEveryBreakpoint) {
  const Curve a = upper_arrival();
  const Curve b = Curve(CurveKind::kUpper, {{0, 1}, {7, 2}, {30, 5}}, 2, 3);
  const Curve sum = a.plus(b);
  for (const Time x : probe_points(a, b))
    EXPECT_EQ(sum.value(x), a.value(x) + b.value(x)) << "x=" << x;
  EXPECT_EQ(sum.value(0), a.value(0) + b.value(0));
}

TEST(CurveBoundaryTest, ClampedDifferenceExactAtZeroAndEveryBreakpoint) {
  const Curve beta = Curve(CurveKind::kLower, {{0, 0}, {4, 0}, {20, 8}}, 1, 2);
  const Curve demand = Curve(CurveKind::kLower, {{0, 0}, {6, 3}}, 1, 4);
  const Curve rem = beta.minus_clamped(demand);
  for (const Time x : probe_points(beta, demand)) {
    const Time expect = std::max<Time>(0, beta.value(x) - demand.value(x));
    EXPECT_EQ(rem.value(x), expect) << "x=" << x;
  }
  // The clamp itself at x = 0: demand above service must floor at zero.
  const Curve drained = demand.minus_clamped(beta);
  EXPECT_EQ(drained.value(0), 0);
}

TEST(CurveBoundaryTest, MinMaxEnvelopesExactAtZeroAndEveryBreakpoint) {
  const Curve a = upper_arrival();
  const Curve b = Curve(CurveKind::kUpper, {{0, 0}, {8, 6}}, 1, 20);
  const Curve lo = a.min_with(b);
  const Curve hi = a.max_with(b);
  for (const Time x : probe_points(a, b)) {
    EXPECT_EQ(lo.value(x), std::min(a.value(x), b.value(x))) << "x=" << x;
    EXPECT_EQ(hi.value(x), std::max(a.value(x), b.value(x))) << "x=" << x;
  }
}

TEST(CurveBoundaryTest, ShiftExactAtZeroAndEveryBreakpoint) {
  const Curve a = upper_arrival();
  const Time shift = 12;
  const Curve s = a.shifted_left(shift);
  EXPECT_EQ(s.value(0), a.value(shift));
  for (const auto& p : a.points()) {
    if (p.x < shift) continue;
    EXPECT_EQ(s.value(p.x - shift), p.y) << "breakpoint x=" << p.x;
  }
}

TEST(CurveBoundaryTest, AffineCarriesBurstAtZero) {
  EXPECT_EQ(Curve::affine(CurveKind::kUpper, 7, 1, 3).value(0), 7);
  EXPECT_EQ(Curve::affine(CurveKind::kLower, 0, 1, 3).value(0), 0);
  // First interior step still rounds by kind: ceil(1/3) vs floor(1/3).
  EXPECT_EQ(Curve::affine(CurveKind::kUpper, 0, 1, 3).value(1), 1);
  EXPECT_EQ(Curve::affine(CurveKind::kLower, 0, 1, 3).value(1), 0);
}

// ---------------------------------------------------------------------------
// Deviation bounds at and between breakpoints.
// ---------------------------------------------------------------------------

TEST(CurveBoundaryTest, DeviationsExactWithIntegerSlopes) {
  // alpha(x) = 2 + x, beta(x) = max(0, x - 3): unit slopes never round, so
  // both deviations are the textbook-exact values (no rounding guard).
  const Curve alpha = Curve::affine(CurveKind::kUpper, 2, 1, 1);
  const Curve beta = Curve::rate_latency(CurveKind::kLower, 3, 1, 1);
  EXPECT_EQ(alpha.max_vertical_deviation(beta), 5);
  EXPECT_EQ(alpha.max_horizontal_deviation(beta), 5);
}

TEST(CurveBoundaryTest, VerticalDeviationSeesBetweenBreakpointRounding) {
  // Identical breakpoints and rates, fractional slope 1/2: the upper curve
  // evaluates ceil(x/2), the lower floor(x/2), so the true sup of their
  // difference is 1 — attained only at odd x, strictly BETWEEN grid
  // points.  A breakpoint-only sweep reports 0; the rounding-aware bound
  // must report 1.
  const Curve up = Curve::affine(CurveKind::kUpper, 0, 1, 2);
  const Curve lo = Curve::affine(CurveKind::kLower, 0, 1, 2);
  EXPECT_EQ(up.value(3) - lo.value(3), 1);
  EXPECT_EQ(up.max_vertical_deviation(lo), 1);
}

TEST(CurveBoundaryTest, VerticalDeviationStaysExactWhenNothingRounds) {
  // Same shape with integer slope: no interior rounding, deviation 0.
  const Curve up = Curve::affine(CurveKind::kUpper, 0, 2, 1);
  const Curve lo = Curve::affine(CurveKind::kLower, 0, 2, 1);
  EXPECT_EQ(up.max_vertical_deviation(lo), 0);
}

TEST(CurveBoundaryTest, VerticalDeviationAtExactBreakpoint) {
  const Curve alpha = upper_arrival();
  const Curve beta = lower_service();
  // Max gap alpha - beta on this pair sits at the breakpoint x = 30:
  // alpha(30) = 4, beta(30) = 12 -> gap elsewhere; scan a window to get the
  // true sup and compare against the analytic bound.
  Time brute = 0;
  for (Time x = 0; x <= 200; ++x)
    brute = std::max(brute, alpha.value(x) - beta.value(x));
  EXPECT_EQ(alpha.max_vertical_deviation(beta), brute);
}

// ---------------------------------------------------------------------------
// Positioned constructor diagnostics.
// ---------------------------------------------------------------------------

std::string ctor_error(CurveKind kind, std::vector<Curve::Point> pts, Time dy, Time dx) {
  try {
    const Curve c(kind, std::move(pts), dy, dx);
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return "";
}

TEST(CurveBoundaryTest, DuplicateXIsRejectedAsSuchWithPosition) {
  const std::string msg = ctor_error(CurveKind::kUpper, {{0, 0}, {5, 3}, {5, 7}}, 1, 1);
  EXPECT_NE(msg.find("duplicate x"), std::string::npos) << msg;
  EXPECT_NE(msg.find("points[1].x = points[2].x = 5"), std::string::npos) << msg;
}

TEST(CurveBoundaryTest, DecreasingXNamesIndexAndValues) {
  const std::string msg = ctor_error(CurveKind::kUpper, {{0, 0}, {9, 1}, {2, 2}}, 1, 1);
  EXPECT_NE(msg.find("strictly increasing"), std::string::npos) << msg;
  EXPECT_NE(msg.find("points[2].x = 2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("points[1].x = 9"), std::string::npos) << msg;
}

TEST(CurveBoundaryTest, NonMonotoneYNamesIndexAndValues) {
  const std::string msg = ctor_error(CurveKind::kLower, {{0, 5}, {3, 2}}, 1, 1);
  EXPECT_NE(msg.find("non-decreasing"), std::string::npos) << msg;
  EXPECT_NE(msg.find("points[1].y = 2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("points[0].y = 5"), std::string::npos) << msg;
}

TEST(CurveBoundaryTest, NonPositiveFinalDxNamesBothSlopeComponents) {
  const std::string msg = ctor_error(CurveKind::kUpper, {{0, 0}}, 1, 0);
  EXPECT_NE(msg.find("dx > 0"), std::string::npos) << msg;
  EXPECT_NE(msg.find("dy = 1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("dx = 0"), std::string::npos) << msg;
  EXPECT_NE(ctor_error(CurveKind::kUpper, {{0, 0}}, -1, 1).find("dy >= 0"), std::string::npos);
}

TEST(CurveBoundaryTest, FirstPointMustSitAtZero) {
  const std::string msg = ctor_error(CurveKind::kUpper, {{4, 0}}, 1, 1);
  EXPECT_NE(msg.find("x=0"), std::string::npos) << msg;
  EXPECT_NE(msg.find("points[0].x = 4"), std::string::npos) << msg;
}

TEST(CurveBoundaryTest, NegativeCoordinatesNamePoint) {
  const std::string msg = ctor_error(CurveKind::kLower, {{0, 0}, {3, -2}}, 1, 1);
  // The y-monotonicity check sees the drop first; a lone negative first
  // point hits the dedicated coordinate check.
  EXPECT_FALSE(msg.empty());
  const std::string neg = ctor_error(CurveKind::kLower, {{0, -1}}, 1, 1);
  EXPECT_NE(neg.find("negative coordinates"), std::string::npos) << neg;
  EXPECT_NE(neg.find("points[0] = (0, -1)"), std::string::npos) << neg;
}

}  // namespace
}  // namespace hem::rtc
