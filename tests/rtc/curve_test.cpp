#include "rtc/curve.hpp"

#include <gtest/gtest.h>

#include "core/errors.hpp"
#include "core/standard_event_model.hpp"
#include "rtc/gpc.hpp"

namespace hem::rtc {
namespace {

TEST(CurveTest, AffineEvaluation) {
  // alpha(x) = 10 + x/5 (upper: ceiling interpolation on the tail).
  const Curve a = Curve::affine(CurveKind::kUpper, 10, 1, 5);
  EXPECT_EQ(a.value(0), 10);
  EXPECT_EQ(a.value(1), 11);  // ceil(1/5) = 1
  EXPECT_EQ(a.value(5), 11);
  EXPECT_EQ(a.value(6), 12);
  EXPECT_EQ(a.value(50), 20);
}

TEST(CurveTest, RateLatencyEvaluation) {
  // beta(x) = max(0, x - 20) at unit rate (lower: floor).
  const Curve b = Curve::rate_latency(CurveKind::kLower, 20, 1, 1);
  EXPECT_EQ(b.value(0), 0);
  EXPECT_EQ(b.value(20), 0);
  EXPECT_EQ(b.value(21), 1);
  EXPECT_EQ(b.value(100), 80);
}

TEST(CurveTest, InverseIsExact) {
  const Curve b = Curve::rate_latency(CurveKind::kLower, 20, 2, 3);
  for (Time y = 1; y <= 40; ++y) {
    const Time x = b.inverse(y);
    EXPECT_GE(b.value(x), y) << y;
    EXPECT_LT(b.value(x - 1), y) << y;
  }
  const Curve flat = Curve::zero(CurveKind::kLower);
  EXPECT_TRUE(is_infinite(flat.inverse(1)));
}

TEST(CurveTest, PlusAddsPointwise) {
  const Curve a = Curve::affine(CurveKind::kUpper, 5, 1, 2);
  const Curve b = Curve::affine(CurveKind::kUpper, 3, 1, 4);
  const Curve s = a.plus(b);
  for (Time x = 0; x <= 100; x += 7)
    EXPECT_NEAR(static_cast<double>(s.value(x)),
                static_cast<double>(a.value(x) + b.value(x)), 1.0)
        << x;
  EXPECT_DOUBLE_EQ(s.long_run_rate(), 0.75);
}

TEST(CurveTest, MinusClampedNeverNegative) {
  const Curve beta = Curve::affine(CurveKind::kLower, 0, 1, 1);
  const Curve demand = Curve::affine(CurveKind::kLower, 30, 1, 2);
  const Curve rem = beta.minus_clamped(demand);
  for (Time x = 0; x <= 200; x += 5) {
    EXPECT_GE(rem.value(x), 0);
    // Within rounding of the analytic remainder max(0, x - 30 - x/2).
    const Time expect = std::max<Time>(0, x - 30 - x / 2);
    EXPECT_NEAR(static_cast<double>(rem.value(x)), static_cast<double>(expect), 2.0) << x;
  }
}

TEST(CurveTest, EnvelopesBracketInputs) {
  const Curve a = Curve::affine(CurveKind::kUpper, 10, 1, 5);
  const Curve b = Curve::rate_latency(CurveKind::kUpper, 4, 2, 3);
  const Curve lo = a.min_with(b);
  const Curve hi = a.max_with(b);
  for (Time x = 0; x <= 150; x += 3) {
    EXPECT_LE(lo.value(x), std::min(a.value(x), b.value(x)) + 1) << x;
    EXPECT_GE(hi.value(x), std::max(a.value(x), b.value(x)) - 1) << x;
    EXPECT_LE(lo.value(x), hi.value(x) + 1) << x;
  }
}

TEST(CurveTest, ShiftedLeft) {
  const Curve b = Curve::rate_latency(CurveKind::kLower, 20, 1, 1);
  const Curve s = b.shifted_left(5);
  for (Time x = 0; x <= 100; x += 4) EXPECT_EQ(s.value(x), b.value(x + 5)) << x;
}

TEST(CurveTest, TextbookDeviations) {
  // Token bucket alpha(x) = 10 + x/5 against rate-latency beta(x) = (x-20)+
  // at unit rate: delay = T + b/R = 30, backlog = alpha(T) = 14.
  const Curve alpha = Curve::affine(CurveKind::kUpper, 10, 1, 5);
  const Curve beta = Curve::rate_latency(CurveKind::kLower, 20, 1, 1);
  EXPECT_EQ(alpha.max_horizontal_deviation(beta), 30);
  EXPECT_EQ(alpha.max_vertical_deviation(beta), 14);
}

TEST(CurveTest, DeviationUnboundedThrows) {
  const Curve alpha = Curve::affine(CurveKind::kUpper, 1, 2, 1);  // rate 2
  const Curve beta = Curve::affine(CurveKind::kLower, 0, 1, 1);   // rate 1
  EXPECT_THROW(alpha.max_vertical_deviation(beta), AnalysisError);
  EXPECT_THROW(alpha.max_horizontal_deviation(beta), AnalysisError);
}

TEST(CurveTest, MinPlusConvOfRateLatencies) {
  // Classic identity: R(x-T1)+ conv R(x-T2)+ at equal unit rates =
  // R(x - T1 - T2)+.
  const Curve a = Curve::rate_latency(CurveKind::kLower, 10, 1, 1);
  const Curve b = Curve::rate_latency(CurveKind::kLower, 15, 1, 1);
  const Curve c = a.min_plus_conv(b);
  const Curve expect = Curve::rate_latency(CurveKind::kLower, 25, 1, 1);
  for (Time x = 0; x <= 200; x += 3)
    EXPECT_NEAR(static_cast<double>(c.value(x)), static_cast<double>(expect.value(x)), 1.0)
        << x;
}

TEST(CurveTest, MinPlusConvAgainstBruteForce) {
  const Curve a = Curve::affine(CurveKind::kLower, 5, 1, 3);
  const Curve b = Curve::rate_latency(CurveKind::kLower, 7, 2, 3);
  const Curve c = a.min_plus_conv(b);
  for (Time x = 0; x <= 120; x += 4) {
    Time brute = kTimeInfinity;
    for (Time l = 0; l <= x; ++l) brute = std::min(brute, a.value(l) + b.value(x - l));
    EXPECT_NEAR(static_cast<double>(c.value(x)), static_cast<double>(brute), 1.0) << x;
  }
}

TEST(CurveTest, DeconvolutionIsOutputArrival) {
  // alpha ⊘ beta for token bucket through rate-latency: the burst grows by
  // the backlog accumulated during the latency: alpha'(0) = alpha(T) = 14.
  const Curve alpha = Curve::affine(CurveKind::kUpper, 10, 1, 5);
  const Curve beta = Curve::rate_latency(CurveKind::kLower, 20, 1, 1);
  const Curve out = alpha.min_plus_deconv(beta);
  EXPECT_EQ(out.value(0), 14);
  // Long-run rate preserved.
  EXPECT_DOUBLE_EQ(out.long_run_rate(), alpha.long_run_rate());
  // Brute force cross-check.
  for (Time x = 0; x <= 100; x += 5) {
    Time brute = 0;
    for (Time l = 0; l <= 400; ++l)
      brute = std::max(brute, alpha.value(x + l) - beta.value(l));
    EXPECT_NEAR(static_cast<double>(out.value(x)), static_cast<double>(brute), 1.0) << x;
  }
}

TEST(CurveTest, DeconvolutionUnboundedThrows) {
  const Curve fast = Curve::affine(CurveKind::kUpper, 1, 2, 1);
  const Curve slow = Curve::affine(CurveKind::kLower, 0, 1, 1);
  EXPECT_THROW(fast.min_plus_deconv(slow), AnalysisError);
}

TEST(CurveTest, ValidationErrors) {
  EXPECT_THROW(Curve(CurveKind::kUpper, {}, 1, 1), std::invalid_argument);
  EXPECT_THROW(Curve(CurveKind::kUpper, {{5, 0}}, 1, 1), std::invalid_argument);
  EXPECT_THROW(Curve(CurveKind::kUpper, {{0, 3}, {0, 4}}, 1, 1), std::invalid_argument);
  EXPECT_THROW(Curve(CurveKind::kUpper, {{0, 3}, {2, 1}}, 1, 1), std::invalid_argument);
  EXPECT_THROW(Curve(CurveKind::kUpper, {{0, 3}}, 1, 0), std::invalid_argument);
  EXPECT_THROW(Curve(CurveKind::kUpper, {{0, 3}}, -1, 1), std::invalid_argument);
}

TEST(UpperArrivalFromTest, DominatesTheEventModel) {
  const auto models = {StandardEventModel::sporadic(100, 250, 10),
                       StandardEventModel::periodic(50)};
  for (const auto& m : models) {
    const Curve alpha = upper_arrival_from(*m, 48);
    for (Time dt = 1; dt <= 3000; dt += 13)
      EXPECT_GE(alpha.value(dt), m->eta_plus(dt)) << m->describe() << " dt=" << dt;
  }
}

TEST(UpperArrivalFromTest, PeriodicIsTight) {
  const auto m = StandardEventModel::periodic(100);
  const Curve alpha = upper_arrival_from(*m, 48);
  // At the breakpoints the PWL touches the staircase.
  EXPECT_EQ(alpha.value(0), 1);
  EXPECT_EQ(alpha.value(100), 2);
  EXPECT_EQ(alpha.value(1000), 11);
}

}  // namespace
}  // namespace hem::rtc
