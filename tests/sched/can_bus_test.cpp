#include "sched/can_bus.hpp"

#include <gtest/gtest.h>

#include "core/standard_event_model.hpp"

namespace hem::sched {
namespace {

ModelPtr periodic(Time p) { return StandardEventModel::periodic(p); }

TaskParams frame(std::string name, int prio, Time c, ModelPtr act) {
  return TaskParams{std::move(name), prio, ExecutionTime(c), std::move(act)};
}

TEST(CanBusTest, HighestPriorityOnlyBlocks) {
  // Highest-priority frame: blocked by the largest lower-priority frame,
  // then transmits.
  CanBusAnalysis a({frame("hi", 1, 4, periodic(250)), frame("lo", 2, 2, periodic(400))});
  const auto r = a.analyze(0);
  EXPECT_EQ(a.blocking(0), 2);
  EXPECT_EQ(r.wcrt, 6);  // B + C = 2 + 4
  EXPECT_EQ(r.bcrt, 4);
}

TEST(CanBusTest, LowestPriorityHasNoBlocking) {
  CanBusAnalysis a({frame("hi", 1, 4, periodic(250)), frame("lo", 2, 2, periodic(400))});
  EXPECT_EQ(a.blocking(1), 0);
  // lo: waits for one hi transmission at most (periods long): w = 4, R = 6.
  EXPECT_EQ(a.analyze(1).wcrt, 6);
}

TEST(CanBusTest, PaperBusNumbers) {
  // The paper system's bus: F1 [4:4] high, F2 [2:2] low, activations from
  // Table 1 (the OR-combined trigger streams are slower than any busy
  // window here, so periodic stand-ins with the fastest period are fine).
  CanBusAnalysis a({frame("F1", 1, 4, periodic(250)), frame("F2", 2, 2, periodic(400))});
  EXPECT_EQ(a.analyze(0).wcrt, 6);
  EXPECT_EQ(a.analyze(1).wcrt, 6);
}

TEST(CanBusTest, NonPreemptiveInterferenceCountsArrivalDuringQueueing) {
  // lo (C=10, P=100) vs hi (C=10, P=25): lo queues behind repeated hi
  // frames until a gap: w: 10 -> eta_hi(11)*10 = 10 -> w=10;
  // check: w=10: hi arrivals in [0,10]: at 0 only? eta+(11) with P=25 = 1
  // -> w = 10?? With blocking 0 for hi... lo has no blocking (lowest),
  // w(1) = 0 + eta_hi(w+1)*10: w=0: eta(1)=1 -> 10; eta(11)=1 -> 10.
  // R = w + C = 20.
  CanBusAnalysis a({frame("hi", 1, 10, periodic(25)), frame("lo", 2, 10, periodic(100))});
  EXPECT_EQ(a.analyze(1).wcrt, 20);
}

TEST(CanBusTest, SaturatedBusStillBoundedWhenUtilisationBelowOne) {
  // hi: C=10, P=20 (50%), mid: C=5, P=25 (20%), lo: C=4, P=50 (8%).
  CanBusAnalysis a({frame("hi", 1, 10, periodic(20)), frame("mid", 2, 5, periodic(25)),
                    frame("lo", 3, 4, periodic(50))});
  const auto lo = a.analyze(2);
  EXPECT_GE(lo.wcrt, 19);  // at least one hi + one mid + own
  EXPECT_LT(lo.wcrt, 200);
  // mid is blocked by lo and interfered by hi.
  const auto mid = a.analyze(1);
  EXPECT_GE(mid.wcrt, 4 + 10 + 5);
}

TEST(CanBusTest, BurstTriggersQueueUp) {
  // A frame triggered by a burst of 3: instances serialise.
  const auto burst = StandardEventModel::periodic_with_jitter(300, 700);
  ASSERT_EQ(burst->eta_plus(1), 3);
  CanBusAnalysis a({frame("f", 1, 10, burst)});
  const auto r = a.analyze(0);
  EXPECT_EQ(r.wcrt, 30);  // 3rd instance waits for two predecessors
}

TEST(CanBusTest, OverloadThrows) {
  CanBusAnalysis a({frame("f", 1, 120, periodic(100))});
  EXPECT_THROW(a.analyze(0), AnalysisError);
}

TEST(CanBusTest, DistinctPrioritiesRequired) {
  EXPECT_THROW(
      CanBusAnalysis({frame("a", 1, 1, periodic(10)), frame("b", 1, 1, periodic(10))}),
      std::invalid_argument);
}

}  // namespace
}  // namespace hem::sched
