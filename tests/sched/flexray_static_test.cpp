#include "sched/flexray_static.hpp"

#include <gtest/gtest.h>

#include "core/standard_event_model.hpp"
#include "hierarchical/pack_constructor.hpp"

namespace hem::sched {
namespace {

ModelPtr periodic(Time p) { return StandardEventModel::periodic(p); }

FlexRayFrame ff(std::string name, Time cet, ModelPtr act) {
  return FlexRayFrame{TaskParams{std::move(name), 0, ExecutionTime(cet), std::move(act)}};
}

TEST(FlexRayStaticTest, SingleActivationWaitsOneCycle) {
  // Cycle 50, slot 10, C 8, sparse activations: just-missed-slot worst case.
  FlexRayStaticAnalysis a({ff("f", 8, periodic(500))}, 50, 10);
  const auto r = a.analyze(0);
  EXPECT_EQ(r.wcrt, 58);  // cycle + C
  EXPECT_EQ(r.bcrt, 8);
  EXPECT_EQ(r.activations, 1);
}

TEST(FlexRayStaticTest, BacklogDrainsOnePerCycle) {
  // Burst of 3 activations: the 3rd transmits in the 3rd cycle.
  const auto burst = StandardEventModel::periodic_with_jitter(300, 700);
  ASSERT_EQ(burst->eta_plus(1), 3);
  FlexRayStaticAnalysis a({ff("f", 8, burst)}, 50, 10);
  const auto r = a.analyze(0);
  EXPECT_EQ(r.wcrt, 3 * 50 + 8);
  EXPECT_EQ(r.backlog, 3);
}

TEST(FlexRayStaticTest, FramesAreIsolated) {
  FlexRayStaticAnalysis alone({ff("f", 8, periodic(500))}, 50, 10);
  FlexRayStaticAnalysis crowded(
      {ff("f", 8, periodic(500)), ff("noisy", 10, periodic(60))}, 50, 10);
  EXPECT_EQ(alone.analyze(0).wcrt, crowded.analyze(0).wcrt);
}

TEST(FlexRayStaticTest, OverRateFrameRejectedAtAnalysis) {
  // Activations every 30 but only one slot per 50-cycle: diverges.
  FlexRayStaticAnalysis a({ff("f", 8, periodic(30))}, 50, 10);
  EXPECT_THROW(a.analyze(0), AnalysisError);
}

TEST(FlexRayStaticTest, ValidationErrors) {
  EXPECT_THROW(FlexRayStaticAnalysis({}, 50, 10), std::invalid_argument);
  EXPECT_THROW(FlexRayStaticAnalysis({ff("f", 20, periodic(100))}, 50, 10),
               std::invalid_argument);  // C > slot
  EXPECT_THROW(FlexRayStaticAnalysis({ff("f", 5, periodic(100))}, 50, 60),
               std::invalid_argument);  // slot > cycle
  EXPECT_THROW(FlexRayStaticAnalysis({ff("f", 5, nullptr)}, 50, 10), std::invalid_argument);
}

TEST(FlexRayStaticTest, HemPacksAcrossFlexRayToo) {
  // The hierarchical model is bus-agnostic: pack signals, analyse the
  // frame on FlexRay, apply the response interval, unpack.
  const auto hem = pack({{periodic(200), SignalCoupling::kTriggering},
                         {periodic(1000), SignalCoupling::kPending}});
  FlexRayStaticAnalysis bus({ff("f", 8, hem->outer())}, 50, 10);
  const auto rt = bus.analyze(0);
  const auto out = hem->after_response(rt.bcrt, rt.wcrt);
  // The pending receiver still sees its own rate, not the frame rate.
  EXPECT_LE(out->inner(1)->eta_plus(10'000), 12);
  EXPECT_GE(out->outer()->eta_plus(10'000), 45);
}

}  // namespace
}  // namespace hem::sched
